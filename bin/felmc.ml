(* felmc: the FElm compiler and interpreter command-line tool.

   Subcommands:
     check    parse, resolve and type-check a program
     run      interpret a program against an event trace (virtual time)
     compile  emit JavaScript/HTML (the paper's Section 5 compiler)
     graph    emit the signal graph as Graphviz DOT (Figs. 7-8)
     sessions serve N isolated sessions of one program over a shared
              compiled plan and replay a trace into each *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_output out text =
  match out with
  | None -> print_string text
  | Some path ->
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let or_die f =
  try f () with
  | Felm.Lexer.Lex_error (msg, loc) ->
    Printf.eprintf "Lexical error at %s: %s\n"
      (Format.asprintf "%a" Felm.Ast.pp_loc loc)
      msg;
    exit 1
  | Felm.Parser.Parse_error (msg, loc) ->
    Printf.eprintf "Syntax error at %s: %s\n"
      (Format.asprintf "%a" Felm.Ast.pp_loc loc)
      msg;
    exit 1
  | Felm.Program.Error (msg, loc) ->
    Printf.eprintf "Error at %s: %s\n"
      (Format.asprintf "%a" Felm.Ast.pp_loc loc)
      msg;
    exit 1
  | Felm.Typecheck.Type_error (msg, loc) ->
    Printf.eprintf "Type error at %s: %s\n"
      (Format.asprintf "%a" Felm.Ast.pp_loc loc)
      msg;
    exit 1
  | Felm.Trace.Trace_error (msg, line) ->
    Printf.eprintf "Trace error on line %d: %s\n" line msg;
    exit 1

let load_checked path =
  let program = Felm.Program.of_source (read_file path) in
  let ty = Felm.Typecheck.check_program program in
  (program, ty)

(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"FElm source file.")

let check_cmd =
  let run file =
    or_die (fun () ->
        let _, ty = load_checked file in
        Printf.printf "%s : %s\n" (Filename.basename file) (Felm.Ty.to_string ty))
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse, resolve and type-check a FElm program.")
    Term.(const run $ file_arg)

let run_cmd =
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay"; "t" ] ~docv:"EVENTS" ~doc:"Event trace file to replay.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"OUT"
          ~doc:
            "Record the run with the signal-graph tracer and write a Chrome \
             trace-event JSON file to $(docv) (open it in chrome://tracing \
             or https://ui.perfetto.dev). Also prints the latency/queue \
             summary.")
  in
  let seq_arg =
    Arg.(
      value & flag
      & info [ "sequential" ]
          ~doc:"Use the non-pipelined baseline scheduler instead of the \
                paper's pipelined semantics.")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print runtime counters at exit.")
  in
  let no_fuse_arg =
    Arg.(
      value & flag
      & info [ "no-fuse" ]
          ~doc:
            "Instantiate the signal graph exactly as written, skipping the \
             build-time fusion of stateless lift chains (one thread and one \
             channel per source node, as in the paper's Fig. 10).")
  in
  let backend_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "pipelined" -> Ok (Elm_core.Runtime.Pipelined : Elm_core.Runtime.backend)
      | "compiled" -> Ok Elm_core.Runtime.Compiled
      | s ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown backend %S (expected pipelined or compiled)" s))
    in
    let print ppf (b : Elm_core.Runtime.backend) =
      Format.pp_print_string ppf
        (match b with Pipelined -> "pipelined" | Compiled -> "compiled")
    in
    Arg.conv (parse, print)
  in
  let backend_arg =
    Arg.(
      value
      & opt backend_conv Elm_core.Runtime.Compiled
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Runtime execution strategy: $(b,compiled) (default — \
             synchronous regions between async/delay boundaries are \
             compiled to straight-line step functions, one thread per \
             region) or $(b,pipelined) (the paper's Fig. 10 translation \
             verbatim, one thread per node and one channel per edge). Both \
             display the same values at the same virtual times; compiled \
             pays an order of magnitude fewer context switches and \
             messages per event.")
  in
  let policy_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "propagate" -> Ok Elm_core.Runtime.Propagate
      | "isolate" -> Ok Elm_core.Runtime.Isolate
      | s -> (
        match String.index_opt s ':' with
        | Some i when String.sub s 0 i = "restart" -> (
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt rest with
          | Some n when n >= 0 -> Ok (Elm_core.Runtime.Restart n)
          | Some _ | None ->
            Error (`Msg (Printf.sprintf "invalid restart budget %S" rest)))
        | _ ->
          Error
            (`Msg
               (Printf.sprintf
                  "unknown policy %S (expected propagate, isolate or \
                   restart:N)"
                  s)))
    in
    let print ppf = function
      | Elm_core.Runtime.Propagate -> Format.pp_print_string ppf "propagate"
      | Elm_core.Runtime.Isolate -> Format.pp_print_string ppf "isolate"
      | Elm_core.Runtime.Restart n -> Format.fprintf ppf "restart:%d" n
    in
    Arg.conv (parse, print)
  in
  let policy_arg =
    Arg.(
      value
      & opt policy_conv Elm_core.Runtime.Propagate
      & info [ "on-node-error" ] ~docv:"POLICY"
          ~doc:
            "Node supervision policy: $(b,propagate) (default — an exception \
             in a lifted function tears the session down), $(b,isolate) \
             (catch it, re-emit the node's last-good value as No_change and \
             keep the session alive) or $(b,restart:N) (isolate plus up to N \
             re-initialisations of the node's state — fresh foldp \
             accumulator, fresh fused step — before degrading to isolate). \
             Failures are counted in --stats and recorded by --trace.")
  in
  let capacity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:
            "Bound every node wakeup and source value mailbox at $(docv) \
             messages (default: unbounded). Senders block until the reader \
             drains — backpressure instead of unbounded buffering.")
  in
  let sched_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "sched-seed" ] ~docv:"SEED"
          ~doc:
            "Run under the seeded-random scheduler policy instead of FIFO: \
             at every context switch a uniformly random runnable thread is \
             chosen from a PRNG seeded with $(docv). Deterministic per seed; \
             this replays schedules printed by the exploration harness \
             (lib/check). Virtual time and, for async-free programs, the \
             displayed trace are schedule-independent.")
  in
  let sched_pct_conv =
    let parse s =
      match String.split_on_char ':' (String.trim s) with
      | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some seed, Some depth when depth >= 0 ->
          Ok (Cml.Scheduler.Pct { seed; depth })
        | _ -> Error (`Msg (Printf.sprintf "invalid PCT spec %S" s)))
      | _ ->
        Error
          (`Msg
             (Printf.sprintf "invalid PCT spec %S (expected SEED:DEPTH)" s))
    in
    let print ppf = function
      | Cml.Scheduler.Pct { seed; depth } ->
        Format.fprintf ppf "%d:%d" seed depth
      | _ -> Format.pp_print_string ppf "?"
    in
    Arg.conv (parse, print)
  in
  let sched_pct_arg =
    Arg.(
      value
      & opt (some sched_pct_conv) None
      & info [ "sched-pct" ] ~docv:"SEED:DEPTH"
          ~doc:
            "Run under the PCT (probabilistic concurrency testing) scheduler \
             policy: random thread priorities with DEPTH seeded priority \
             change points. Overrides $(b,--sched-seed).")
  in
  let run_domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"K"
          ~doc:
            "Intra-session parallel region dispatch (compiled backend \
             only): batch queued events into waves and run each wave's \
             data-independent region groups on a pool of $(docv) OCaml \
             domains, respecting the plan's region dependency DAG. \
             Displayed values and virtual times are bit-identical to the \
             sequential dispatcher for every $(docv). $(b,--domains=1) \
             runs the wave coordinator without a pool (the sequential \
             wave baseline); with $(b,--backend=pipelined), \
             $(b,--queue-capacity) or a scheduler mutation the option \
             silently falls back to the threaded dispatcher.")
  in
  let run file replay trace_out sequential print_stats no_fuse backend policy
      capacity sched_seed sched_pct domains =
    or_die (fun () ->
        let program, ty = load_checked file in
        let events =
          match replay with
          | None -> []
          | Some path ->
            let evs = Felm.Trace.parse (read_file path) in
            Felm.Trace.validate program evs;
            evs
        in
        let mode =
          if sequential then Elm_core.Runtime.Sequential
          else Elm_core.Runtime.Pipelined
        in
        let tracer =
          Option.map (fun _ -> Elm_core.Trace.create ()) trace_out
        in
        let sched_policy =
          match (sched_pct, sched_seed) with
          | Some pct, _ -> pct
          | None, Some seed -> Cml.Scheduler.Seeded_random seed
          | None, None -> Cml.Scheduler.Fifo
        in
        (match domains with
        | Some k when k < 1 ->
          raise (Invalid_argument "--domains must be >= 1")
        | _ -> ());
        let outcome =
          Felm.Interp.run ~policy:sched_policy ~backend ~mode ?tracer
            ~fuse:(not no_fuse) ~on_node_error:policy
            ?queue_capacity:capacity ?domains program ~trace:events
        in
        Printf.printf "-- %s : %s\n" (Filename.basename file) (Felm.Ty.to_string ty);
        if outcome.Felm.Interp.displays = [] then
          Printf.printf "value: %s\n" (Felm.Value.show outcome.Felm.Interp.final)
        else
          List.iter
            (fun (t, v) -> Printf.printf "[%8.3f] %s\n" t (Felm.Value.show v))
            outcome.Felm.Interp.displays;
        if outcome.Felm.Interp.skipped_events > 0 then
          Printf.printf "(%d trace events targeted unused inputs)\n"
            outcome.Felm.Interp.skipped_events;
        (match outcome.Felm.Interp.stats with
        | Some stats when print_stats ->
          Format.printf "stats: %a@." Elm_core.Stats.pp stats
        | Some _ | None -> ());
        match trace_out, tracer with
        | Some path, Some tr ->
          write_output (Some path)
            (Json.pretty (Elm_core.Trace.to_chrome_json tr) ^ "\n");
          Printf.printf "trace: wrote %s\n" path;
          Format.printf "%a@." Elm_core.Trace.pp_summary
            (Elm_core.Trace.summary tr)
        | _ -> ())
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Interpret a FElm program against an event trace.")
    Term.(
      const run $ file_arg $ replay_arg $ trace_out_arg $ seq_arg $ stats_arg
      $ no_fuse_arg $ backend_arg $ policy_arg $ capacity_arg $ sched_seed_arg
      $ sched_pct_arg $ run_domains_arg)

let compile_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output file (default: stdout).")
  in
  let js_only_arg =
    Arg.(
      value & flag
      & info [ "js" ] ~doc:"Emit plain JavaScript for embedding, not an HTML page.")
  in
  let run file out js_only =
    or_die (fun () ->
        let program, _ = load_checked file in
        let text =
          if js_only then Felm_js.Emit.compile_program program
          else Felm_js.Html.page ~title:(Filename.basename file) program
        in
        write_output out text)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile a FElm program to JavaScript/HTML (Section 5).")
    Term.(const run $ file_arg $ out_arg $ js_only_arg)

let graph_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output file (default: stdout).")
  in
  let fused_arg =
    Arg.(
      value & flag
      & info [ "fused" ]
          ~doc:
            "Render the graph the runtime actually instantiates: after the \
             build-time fusion pass, with each fused lift chain drawn as a \
             single composite box.")
  in
  let compiled_arg =
    Arg.(
      value & flag
      & info [ "compiled" ]
          ~doc:
            "Render the compiled backend's region partition: the fused \
             graph with each maximal synchronous region (delimited by \
             async/delay boundaries) drawn as a dashed cluster — what \
             $(b,run --backend=compiled) executes with one thread per \
             region. Implies $(b,--fused).")
  in
  let run file out fused compiled =
    or_die (fun () ->
        let program, _ = load_checked file in
        let g, root = Felm.Denote.run_program program in
        if fused || compiled then (
          match root with
          | Felm.Value.Vsignal root_id ->
            Felm.Sgraph.freeze g;
            let table = Felm.Interp.build_signals program g in
            let root_signal = Hashtbl.find table root_id in
            let fused_root = Elm_core.Fuse.fuse root_signal in
            if compiled then
              write_output out
                (Elm_core.Compile.to_dot
                   ~label:(Filename.basename file ^ " (compiled regions)")
                   fused_root)
            else
              write_output out
                (Elm_core.Signal.to_dot
                   ~label:(Filename.basename file ^ " (fused)")
                   fused_root)
          | _ ->
            Printf.eprintf
              "graph %s: %s is not a reactive program (main is a plain \
               value)\n"
              (if compiled then "--compiled" else "--fused")
              (Filename.basename file);
            exit 1)
        else
          let root_id =
            match root with Felm.Value.Vsignal id -> Some id | _ -> None
          in
          write_output out
            (Felm.Sgraph.to_dot ~label:(Filename.basename file) g ~root:root_id))
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:"Emit the program's signal graph as Graphviz DOT (Figs. 7-8).")
    Term.(const run $ file_arg $ out_arg $ fused_arg $ compiled_arg)

let sessions_cmd =
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay"; "t" ] ~docv:"EVENTS"
          ~doc:"Event trace file to replay into every session.")
  in
  let count_arg =
    Arg.(
      value & opt int 3
      & info [ "n"; "sessions" ] ~docv:"N"
          ~doc:"Number of sessions to open against the shared plan.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print per-session counters and accounting.")
  in
  let no_fuse_arg =
    Arg.(
      value & flag
      & info [ "no-fuse" ]
          ~doc:
            "Skip build-time fusion (clones of unfused graphs are exact; \
             see DESIGN.md).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"K"
          ~doc:
            "Drain sessions over a pool of $(docv) OCaml domains with work \
             stealing (default 1: sequential). Per-session change traces \
             are identical either way.")
  in
  let run file replay n print_stats no_fuse domains upgrade_at =
    or_die (fun () ->
        let program, ty = load_checked file in
        let events =
          match replay with
          | None -> []
          | Some path ->
            let evs = Felm.Trace.parse (read_file path) in
            Felm.Trace.validate program evs;
            evs
        in
        let g, root = Felm.Denote.run_program program in
        match root with
        | Felm.Value.Vsignal root_id ->
          Felm.Sgraph.freeze g;
          let module D = Elm_serve.Dispatcher in
          let module S = Elm_serve.Session in
          (* Sessions run synchronously against the cached plan: no
             scheduler, no threads — the whole replay is plain code.
             --domains=K > 1 shards the drain across a domain pool; the
             observable traces are the same (B18's oracle). *)
          if domains < 1 then
            raise (Invalid_argument "--domains must be >= 1");
          (* Only unfused plans promise bit-identical traces across an
             upgrade (fused composite state is re-created at the seam). *)
          let no_fuse = no_fuse || upgrade_at <> None in
          let pool =
            if domains > 1 then Some (Elm_serve.Pool.create ~domains ())
            else None
          in
          let evs = Array.of_list events in
          let n_ev = Array.length evs in
          let skipped = ref 0 in
          (* One full replay. With [upgrade_at = Some k] the first [k]
             events drain, the graph is rebuilt from the same frozen FElm
             program (structurally identical, fresh node ids) and — when
             [upgrade] — hot-swapped under the live sessions, then the
             rest replays into the new graph's inputs. [upgrade:false]
             keeps the same split and drain pattern without the swap: the
             replay-differential reference. *)
          let run_once ~upgrade =
            skipped := 0;
            let inputs_of table =
              List.map
                (fun (name, id) -> (name, Hashtbl.find table id))
                (Felm.Sgraph.inputs g)
            in
            let table = Felm.Interp.build_signals program g in
            let d =
              D.create ~fuse:(not no_fuse) ?pool (Hashtbl.find table root_id)
            in
            let sessions = List.init n (fun _ -> D.open_session d) in
            let inject inputs lo hi =
              for j = lo to hi - 1 do
                let ev = evs.(j) in
                match List.assoc_opt ev.Felm.Trace.input inputs with
                | None -> incr skipped
                | Some input ->
                  List.iter
                    (fun s -> D.inject d s input ev.Felm.Trace.value)
                    sessions
              done
            in
            let patch =
              match upgrade_at with
              | None ->
                inject (inputs_of table) 0 n_ev;
                None
              | Some k ->
                let k = max 0 (min k n_ev) in
                inject (inputs_of table) 0 k;
                ignore (D.drain d);
                let inputs', patch =
                  if upgrade then begin
                    let table' = Felm.Interp.build_signals program g in
                    let patch =
                      D.upgrade_all d (Hashtbl.find table' root_id)
                    in
                    (inputs_of table', Some patch)
                  end
                  else (inputs_of table, None)
                in
                inject inputs' k n_ev;
                patch
            in
            ignore (D.drain d);
            (d, sessions, patch)
          in
          let d, sessions, patch = run_once ~upgrade:(upgrade_at <> None) in
          Printf.printf "-- %s : %s (%d sessions)\n" (Filename.basename file)
            (Felm.Ty.to_string ty) n;
          let shown s =
            List.map
              (fun (epoch, v) -> (epoch, Felm.Value.show v))
              (S.changes s)
          in
          (match sessions with
          | [] -> ()
          | s0 :: rest ->
            List.iter
              (fun (epoch, v) -> Printf.printf "[e%04d] %s\n" epoch v)
              (shown s0);
            let reference = shown s0 in
            let agree = List.for_all (fun s -> shown s = reference) rest in
            if agree then
              Printf.printf "sessions: %d identical change traces\n" n
            else begin
              Printf.printf "sessions: TRACES DIVERGED\n";
              exit 1
            end);
          (match (upgrade_at, patch) with
          | Some k, Some p ->
            let k = max 0 (min k n_ev) in
            Printf.printf "upgrade at %d: %d slots added, %d dropped\n" k
              (List.length (Elm_core.Upgrade.added_slots p))
              (List.length (Elm_core.Upgrade.dropped_slots p));
            (* replay-differential: the same split without the swap *)
            let _, ref_sessions, _ = run_once ~upgrade:false in
            let got = match sessions with [] -> [] | s :: _ -> shown s in
            let want =
              match ref_sessions with [] -> [] | s :: _ -> shown s
            in
            if got = want then
              Printf.printf
                "upgrade at %d: trace identical to non-upgraded replay\n" k
            else begin
              Printf.printf
                "upgrade at %d: TRACE DIVERGED from non-upgraded replay\n" k;
              exit 1
            end
          | _ -> ());
          if !skipped > 0 then
            Printf.printf "(%d trace events targeted unused inputs)\n" !skipped;
          if print_stats then begin
            Format.printf "accounting: %a@." D.pp_accounting (D.accounting d);
            List.iter (fun s -> Format.printf "stats %a@." S.pp_stats s) sessions;
            (* With a pool, also show where the work ran: per-domain counter
               rows (they merge back to the session totals) and the pool's
               scheduling activity. *)
            match pool with
            | None -> ()
            | Some p ->
              Array.iteri
                (fun i st ->
                  Format.printf "stats %a@."
                    (Elm_serve.Dispatcher.Stats.pp_labeled
                       (Printf.sprintf "d%d" i))
                    st)
                (D.domain_stats d);
              Array.iteri
                (fun i w ->
                  Printf.printf
                    "domain d%d: tasks=%d steals=%d idle_probes=%d\n" i
                    w.Elm_serve.Pool.ws_tasks w.Elm_serve.Pool.ws_steals
                    w.Elm_serve.Pool.ws_idle_probes)
                (Elm_serve.Pool.worker_stats p)
          end;
          Option.iter Elm_serve.Pool.close pool
        | v ->
          Printf.printf "-- %s : %s\n" (Filename.basename file)
            (Felm.Ty.to_string ty);
          Printf.printf "value: %s\n" (Felm.Value.show v))
  in
  let upgrade_at_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "upgrade-at" ] ~docv:"N"
          ~doc:
            "After draining the first $(docv) replay events, rebuild the \
             graph from the same program (structurally identical, fresh \
             node ids) and hot-swap every live session onto it, then \
             replay the rest. The resulting trace is checked against a \
             non-upgraded replay with the same drain pattern. Implies \
             $(b,--no-fuse).")
  in
  Cmd.v
    (Cmd.info "sessions"
       ~doc:
         "Serve N isolated sessions of one FElm program over a shared \
          compiled plan: the graph is compiled once, each session is an \
          arena copy, and the same replayed trace must produce identical \
          per-session change traces. With $(b,--upgrade-at) the plan is \
          hot-swapped mid-replay and the trace must not change.")
    Term.(
      const run $ file_arg $ replay_arg $ count_arg $ stats_arg $ no_fuse_arg
      $ domains_arg $ upgrade_at_arg)

let () =
  let info =
    Cmd.info "felmc" ~version:"1.0.0"
      ~doc:"Compiler and interpreter for FElm, the core calculus of \
            'Asynchronous Functional Reactive Programming for GUIs' (PLDI 2013)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ check_cmd; run_cmd; compile_cmd; graph_cmd; sessions_cmd ]))
