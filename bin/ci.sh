#!/bin/sh
# Tier-1 gate: build + full test suite + bench smoke (B11 A/B check).
#
# Usage: bin/ci.sh [--quick]
#   --quick   build + runtest only (skip the bench smoke run)
#
# The bench smoke run is part of the gate on purpose: bench/main.exe
# exits non-zero if cone dispatch ever produces a change trace that
# differs from the flooding baseline, or if tracing perturbs the
# messages/event account by more than 10%, so a semantics regression in
# the dispatcher or tracer fails CI even if no unit test covers it.
# The same smoke run gates the fusion pass via B13: fused and unfused
# deep-chain runs must produce identical change traces, fusion must
# never increase messages/event, depth >= 8 chains must show at least a
# 2x message reduction under both dispatch strategies, and the node
# accounting (live + fused_away = original) must balance.
# B14 gates the fault-tolerance layer: zero-fault runs under
# Isolate/Restart supervision must keep change traces identical to
# Propagate with < 10% msg/ev drift, injected fault counts must match
# Stats.node_failures exactly, and the seeded flaky-Http retry session
# must be bit-identical across two invocations.
# B15 gates the schedule-exploration harness (lib/check): the clean
# B11/B13/B14 graph matrix must show zero violations across the seeded
# random/PCT schedules, and all three planted runtime mutations
# (dropped No_change, skipped epoch stamp, reordered mailbox admit)
# must be caught by the interleaving checker. --quick still runs the
# explorer in smoke proportions (8 fixed-seed schedules per cell) via
# bench/main.exe --explore-smoke, so a scheduler or dispatcher
# interleaving regression fails even the fast gate.
# B16 gates the compiled backend: across the K-chain matrix the
# compiled runtime's change trace must be bit-identical to the
# pipelined one's (fusion off and on, Pipelined and Sequential modes),
# and — both backends unfused — compiled must win at least 10x on both
# sequential switches/event and messages/event.
# B17 gates the serving layer (lib/serve): opening a session against
# the warm plan cache must be >= 10x cheaper than a cold plan compile,
# every one of the 10k live sessions must produce a change trace
# bit-identical to a dedicated single-session compiled runtime (the
# isolation oracle), clones must continue exactly as their parents,
# and serving must actually hit the plan cache.
# B18 gates domain-parallel serving (lib/serve/pool.ml): draining the
# 10k-session B17 workload over a work-stealing domain pool must keep
# every per-session change trace bit-identical to the sequential
# dispatcher at 1/2/4 domains, per-domain Stats rows must merge back
# to the session totals, and the events/sec speedup bar scales with
# the runner (2x at 4 domains only where >= 4 cores exist, 1.2x at 2
# domains on 2-3 core boxes, report-only on 1 core).
# B19 gates intra-session parallel dispatch (Runtime.start ~domains):
# on the async fan-out/fan-in workload each event's wave must expose
# > 2 data-independent region groups to the pool (pool tasks / events,
# a counter ratio), change traces must be bit-identical to the
# 1-domain run at every width, per-domain region-step attribution must
# merge back to the runtime totals, and dispatch counts must agree
# across widths; the wall-clock speedup bar is hardware-scaled like
# B18's and report-only on 1 core.
# B20 gates live graph upgrade (lib/core/upgrade): hot-swapping 10k
# live sessions onto a freshly rebuilt identical plan mid-stream must
# diff as an identity patch, drop zero events (one event per session
# is queued across the seam on purpose), and leave every per-session
# change trace bit-identical to a never-upgraded dispatcher fed the
# same events; post-upgrade throughput vs cold start is wall-clock
# and report-only.
# After the smoke gates, bench_diff compares the gated counter ratios
# (B11/B13/B16/B17/B19) against the committed bench/baseline.json and
# fails on > 20% regression — see bin/bench_diff.sh for how to accept
# an intended perf change by regenerating the baseline.
# The full run also writes BENCH_core.json (latency percentiles, trace
# summaries, B13 fusion ratios, B14 fault-injection matrix, B15
# exploration cells, B16 backend matrix, B17 serving metrics) for CI
# artifact upload.
set -eu
cd "$(dirname "$0")/.."

if ! command -v dune >/dev/null 2>&1; then
    echo "ci.sh: error: 'dune' not found in PATH." >&2
    echo "ci.sh: install an OCaml toolchain (opam install dune) or run inside 'opam exec --'." >&2
    exit 127
fi

quick=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    *)
        echo "ci.sh: error: unknown argument '$arg' (expected --quick)" >&2
        exit 2
        ;;
    esac
done

dune build
dune runtest

if [ "$quick" -eq 1 ]; then
    echo "ci.sh: --quick: bench smoke skipped; running explore smoke only"
    dune exec bench/main.exe -- --explore-smoke
    exit 0
fi

dune exec bench/main.exe -- --smoke --json
dune exec bench/main.exe -- --b20-smoke
dune exec bench/diff.exe -- bench/baseline.json BENCH_core.json
