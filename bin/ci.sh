#!/bin/sh
# Tier-1 gate: build + full test suite + bench smoke (B11 A/B check).
#
# The bench smoke run is part of the gate on purpose: bench/main.exe
# exits non-zero if cone dispatch ever produces a change trace that
# differs from the flooding baseline, so a semantics regression in the
# dispatcher fails CI even if no unit test happens to cover it.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/main.exe -- --smoke
