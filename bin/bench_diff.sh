#!/bin/sh
# Bench regression gate: compare the gated counter-based ratios of a fresh
# bench run against the committed baseline and fail on > 20% regression.
#
# Usage: bin/bench_diff.sh [BASELINE [CURRENT]]
#   BASELINE   baseline JSON (default: bench/baseline.json, committed)
#   CURRENT    an existing bench JSON to diff; when omitted, the benches
#              are (re)run with --smoke --json to produce BENCH_core.json
#
# Gated metrics are ratios of scheduler/message counters (B11 cone vs
# flood, B13 fusion off vs on, B16 pipelined vs compiled, B17 session
# open vs cold compile) — machine-independent, so a regression means the
# code got worse, not the runner. Wall-clock numbers (micro_*, churn,
# B17 events/sec, B18 domain-pool events/sec and speedup) are reported
# but only softly gated — the bench binary itself hard-gates B18's
# trace/stats oracles and its hardware-scaled speedup bar. To accept an
# intended perf change, regenerate the baseline:
#   dune exec bench/main.exe -- --json && cp BENCH_core.json bench/baseline.json
set -eu
cd "$(dirname "$0")/.."

baseline=${1:-bench/baseline.json}
current=${2:-}

if [ ! -f "$baseline" ]; then
    echo "bench_diff.sh: baseline '$baseline' not found" >&2
    exit 2
fi

if [ -z "$current" ]; then
    dune exec bench/main.exe -- --smoke --json
    current=BENCH_core.json
fi

dune exec bench/diff.exe -- "$baseline" "$current"
