(* Tests for the Arrowized FRP embedding (paper Section 4.3), including the
   arrow laws (via run_list observation) and the foldp/run equivalence. *)

module A = Automaton
module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime

let check_ints = Alcotest.(check (list int))
let check_bool = Alcotest.(check bool)

let with_world body =
  let result = ref None in
  Cml.run (fun () -> result := Some (body ()));
  Option.get !result

let test_pure () =
  check_ints "pure maps" [ 2; 4; 6 ] (A.run_list (A.pure (fun x -> x * 2)) [ 1; 2; 3 ])

let test_init_is_stateful () =
  check_ints "running sums" [ 1; 3; 6 ]
    (A.run_list (A.init ( + ) 0) [ 1; 2; 3 ])

let test_count () =
  check_ints "count" [ 1; 2; 3; 4 ] (A.run_list A.count [ (); (); (); () ])

let test_compose () =
  let a = A.(init ( + ) 0 >>> pure (fun x -> x * 10)) in
  check_ints "sum then scale" [ 10; 30; 60 ] (A.run_list a [ 1; 2; 3 ])

let test_compose_rev () =
  let a = A.(pure (fun x -> x * 10) <<< init ( + ) 0) in
  check_ints "<<< equals >>> flipped" [ 10; 30; 60 ] (A.run_list a [ 1; 2; 3 ])

let test_first_second () =
  let sums = A.init ( + ) 0 in
  let outs = A.run_list (A.first sums) [ (1, "a"); (2, "b") ] in
  Alcotest.(check (list (pair int string)))
    "first threads state on the left"
    [ (1, "a"); (3, "b") ]
    outs;
  let outs2 = A.run_list (A.second sums) [ ("a", 1); ("b", 2) ] in
  Alcotest.(check (list (pair string int)))
    "second mirrors first"
    [ ("a", 1); ("b", 3) ]
    outs2

let test_parallel_ops () =
  let a = A.(init ( + ) 0 *** count) in
  let outs = A.run_list a [ (5, ()); (7, ()) ] in
  Alcotest.(check (list (pair int int))) "***" [ (5, 1); (12, 2) ] outs;
  let b = A.(init ( + ) 0 &&& count) in
  let outs = A.run_list b [ 5; 7 ] in
  Alcotest.(check (list (pair int int))) "&&&" [ (5, 1); (12, 2) ] outs

let test_combine_dynamic_collection () =
  let autos = [ A.pure (fun x -> x); A.pure (fun x -> x * x); A.init ( + ) 0 ] in
  let outs = A.run_list (A.combine autos) [ 2; 3 ] in
  Alcotest.(check (list (list int)))
    "three automata stepped together"
    [ [ 2; 4; 2 ]; [ 3; 9; 5 ] ]
    outs

let test_loop_feedback () =
  (* Feedback computes a running maximum. *)
  let body = A.pure (fun (x, best) ->
      let best' = max x best in
      (best', best')) in
  check_ints "running max" [ 3; 3; 7; 7 ]
    (A.run_list (A.loop min_int body) [ 3; 1; 7; 2 ])

let test_average () =
  let outs = A.run_list (A.average 2) [ 1.0; 3.0; 5.0 ] in
  Alcotest.(check (list (float 1e-9))) "sliding average" [ 1.0; 2.0; 4.0 ] outs

(* Arrow laws, observed through run_list on random inputs. *)
let obs_equal xs a b = A.run_list a xs = A.run_list b xs

let small_fun = QCheck.fun1 QCheck.Observable.int QCheck.small_signed_int

let prop_arr_id =
  QCheck.Test.make ~name:"arr id = identity" ~count:100
    QCheck.(list small_signed_int)
    (fun xs -> A.run_list (A.arr Fun.id) xs = xs)

let prop_arr_compose =
  QCheck.Test.make ~name:"arr (g . f) = arr f >>> arr g" ~count:100
    QCheck.(triple (list small_signed_int) small_fun small_fun)
    (fun (xs, f, g) ->
      let f = QCheck.Fn.apply f in
      let g = QCheck.Fn.apply g in
      obs_equal xs (A.arr (fun x -> g (f x))) A.(arr f >>> arr g))

let prop_compose_assoc =
  QCheck.Test.make ~name:">>> associative" ~count:100
    QCheck.(list small_signed_int)
    (fun xs ->
      let a = A.init ( + ) 0 in
      let b = A.arr (fun x -> x * 2) in
      let c = A.init (fun x acc -> max x acc) min_int in
      obs_equal xs A.((a >>> b) >>> c) A.(a >>> (b >>> c)))

let prop_first_arr =
  QCheck.Test.make ~name:"first (arr f) = arr (f x id)" ~count:100
    QCheck.(pair (list (pair small_signed_int small_signed_int)) small_fun)
    (fun (xs, f) ->
      let f = QCheck.Fn.apply f in
      A.run_list (A.first (A.arr f)) xs
      = A.run_list (A.arr (fun (a, c) -> (f a, c))) xs)

let prop_init_equals_fold_prefixes =
  QCheck.Test.make ~name:"init f b traces fold prefixes" ~count:100
    QCheck.(list small_signed_int)
    (fun xs ->
      let outs = A.run_list (A.init ( + ) 0) xs in
      let rec prefixes acc = function
        | [] -> []
        | x :: rest ->
          let acc = acc + x in
          acc :: prefixes acc rest
      in
      outs = prefixes 0 xs)

(* The paper's equivalence: foldp and run (init ...) define each other. *)
let drive signal_of_input xs =
  with_world (fun () ->
      let src = Signal.input 0 in
      let rt = Runtime.start (signal_of_input src) in
      List.iter (fun v -> Runtime.inject rt src v) xs;
      rt)

let prop_run_equals_foldp =
  QCheck.Test.make ~name:"run (init f b) = foldp f b on signals" ~count:50
    QCheck.(list small_signed_int)
    (fun xs ->
      let via_run = drive (fun s -> A.run (A.init ( + ) 0) 0 s) xs in
      let via_foldp = drive (fun s -> Signal.foldp ( + ) 0 s) xs in
      List.map snd (Runtime.changes via_run)
      = List.map snd (Runtime.changes via_foldp))

let prop_foldp_via_run =
  QCheck.Test.make ~name:"foldp_via_run behaves like foldp" ~count:50
    QCheck.(list small_signed_int)
    (fun xs ->
      let a = drive (fun s -> A.foldp_via_run ( + ) 0 s) xs in
      let b = drive (fun s -> Signal.foldp ( + ) 0 s) xs in
      List.map snd (Runtime.changes a) = List.map snd (Runtime.changes b))

let test_run_on_signal () =
  let rt = drive (fun s -> A.run A.count 0 (Signal.lift (fun x -> x) s)) [ 9; 9; 9 ] in
  check_ints "count over signal" [ 1; 2; 3 ]
    (List.map snd (Runtime.changes rt));
  check_bool "automata do not step on other events" true true

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "automaton"
    [
      ( "stepping",
        [
          tc "pure" `Quick test_pure;
          tc "init" `Quick test_init_is_stateful;
          tc "count" `Quick test_count;
          tc "compose" `Quick test_compose;
          tc "compose rev" `Quick test_compose_rev;
          tc "first/second" `Quick test_first_second;
          tc "***/&&&" `Quick test_parallel_ops;
          tc "combine" `Quick test_combine_dynamic_collection;
          tc "loop" `Quick test_loop_feedback;
          tc "average" `Quick test_average;
        ] );
      ( "laws",
        [
          qt prop_arr_id;
          qt prop_arr_compose;
          qt prop_compose_assoc;
          qt prop_first_arr;
          qt prop_init_equals_fold_prefixes;
        ] );
      ( "signals",
        [
          qt prop_run_equals_foldp;
          qt prop_foldp_via_run;
          tc "run over signal" `Quick test_run_on_signal;
        ] );
    ]
