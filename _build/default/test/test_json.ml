(* Tests for the JSON library (paper Section 4 / Example 3's server
   responses). *)

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let parse = Json.parse

let test_literals () =
  check_bool "null" true (parse "null" = Json.Null);
  check_bool "true" true (parse "true" = Json.Bool true);
  check_bool "false" true (parse "false" = Json.Bool false);
  check_bool "int" true (parse "42" = Json.Number 42.0);
  check_bool "negative" true (parse "-7" = Json.Number (-7.0));
  check_bool "float" true (parse "3.25" = Json.Number 3.25);
  check_bool "exponent" true (parse "1e3" = Json.Number 1000.0);
  check_bool "string" true (parse "\"hi\"" = Json.String "hi")

let test_structures () =
  check_bool "array" true
    (parse "[1, 2, 3]" = Json.Array [ Json.Number 1.0; Json.Number 2.0; Json.Number 3.0 ]);
  check_bool "empty array" true (parse "[]" = Json.Array []);
  check_bool "empty object" true (parse "{}" = Json.Object []);
  check_bool "object" true
    (parse "{\"a\": 1, \"b\": [true]}"
    = Json.Object [ ("a", Json.Number 1.0); ("b", Json.Array [ Json.Bool true ]) ])

let test_whitespace_and_nesting () =
  let v = parse "  { \"a\" : [ { \"b\" : null } , 2 ] }  " in
  check_bool "nested" true
    (Json.path [ "a" ] v <> None
    && Json.(index 0 (Option.get (member "a" v))) <> None)

let test_string_escapes () =
  check_bool "basic escapes" true
    (parse {|"a\nb\t\"c\\d"|} = Json.String "a\nb\t\"c\\d");
  check_bool "unicode bmp" true (parse {|"A"|} = Json.String "A");
  (match parse {|"😀"|} with
  | Json.String s -> check_int "surrogate pair is 4 utf8 bytes" 4 (String.length s)
  | _ -> Alcotest.fail "expected string");
  check_bool "solidus" true (parse {|"\/"|} = Json.String "/")

let test_errors () =
  let rejects src =
    match Json.parse src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Json.Parse_error _ -> ()
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "{\"a\" 1}";
  rejects "\"unterminated";
  rejects "nul";
  rejects "1 2";
  rejects "{\"a\":1,}";
  rejects "\"bad \\q escape\"";
  rejects "\"control \x01 char\""

let test_error_position () =
  match Json.parse "{\n  \"a\": nope\n}" with
  | _ -> Alcotest.fail "expected error"
  | exception Json.Parse_error (_, line, _) -> check_int "line" 2 line

let test_print_compact () =
  check_str "roundtrip text" "{\"a\":[1,true,\"x\"],\"b\":null}"
    (Json.to_string
       (Json.obj
          [
            ("a", Json.of_list [ Json.of_int 1; Json.of_bool true; Json.of_string "x" ]);
            ("b", Json.Null);
          ]));
  check_str "float kept" "2.5" (Json.to_string (Json.of_float 2.5));
  check_str "integral printed as int" "7" (Json.to_string (Json.of_int 7))

let test_pretty () =
  let s = Json.pretty (parse "{\"a\": [1, 2]}") in
  check_bool "has newlines" true (String.contains s '\n');
  check_bool "re-parses" true (Json.equal (parse s) (parse "{\"a\": [1,2]}"))

let test_accessors () =
  let v = parse "{\"photos\": [{\"url\": \"http://x/1.jpg\"}, {\"url\": \"http://x/2.jpg\"}]}" in
  let first_url =
    Option.bind (Json.member "photos" v) (Json.index 0)
    |> Fun.flip Option.bind (Json.member "url")
    |> Fun.flip Option.bind Json.get_string
  in
  check_bool "path to url" true (first_url = Some "http://x/1.jpg");
  check_bool "missing member" true (Json.member "nope" v = None);
  check_bool "index out of range" true
    (Option.bind (Json.member "photos" v) (Json.index 9) = None);
  check_bool "to_int" true (Json.to_int (parse "3") = Some 3);
  check_bool "to_int rejects fraction" true (Json.to_int (parse "3.5") = None)

(* generator of random JSON values *)
let rec gen_value depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun n -> Json.Number (float_of_int n)) (int_range (-1000) 1000);
        map (fun s -> Json.String s) (string_size ~gen:(char_range 'a' 'z') (0 -- 8));
      ]
  else
    frequency
      [
        (2, gen_value 0);
        (1, map (fun vs -> Json.Array vs) (list_size (0 -- 4) (gen_value (depth - 1))));
        ( 1,
          map
            (fun kvs ->
              (* distinct keys for a stable roundtrip *)
              Json.Object (List.mapi (fun i (k, v) -> (Printf.sprintf "%s%d" k i, v)) kvs))
            (list_size (0 -- 4)
               (pair (string_size ~gen:(char_range 'a' 'z') (1 -- 5)) (gen_value (depth - 1)))) );
      ]

let arbitrary_json =
  QCheck.make ~print:Json.to_string (gen_value 3)

let test_pretty_indent_and_edges () =
  let v = Json.parse "{\"a\": []}" in
  let wide = Json.pretty ~indent:6 v in
  check_bool "custom indent respected" true
    (let needle = "      \"a\"" in
     let n = String.length needle in
     let rec go i = i + n <= String.length wide && (String.sub wide i n = needle || go (i + 1)) in
     go 0);
  check_bool "negative index" true (Json.index (-1) (Json.parse "[1]") = None);
  check_bool "member on non-object" true (Json.member "k" (Json.parse "[1]") = None)

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (to_string v) = v" ~count:300 arbitrary_json
    (fun v -> Json.equal (Json.parse (Json.to_string v)) v)

let prop_pretty_roundtrip =
  QCheck.Test.make ~name:"parse (pretty v) = v" ~count:300 arbitrary_json
    (fun v -> Json.equal (Json.parse (Json.pretty v)) v)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string escape roundtrip" ~count:300
    QCheck.(string_of_size (Gen.int_bound 30))
    (fun s ->
      match Json.parse (Json.to_string (Json.String s)) with
      | Json.String s' -> s = s'
      | _ -> false)

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "json"
    [
      ( "parse",
        [
          tc "literals" `Quick test_literals;
          tc "structures" `Quick test_structures;
          tc "whitespace/nesting" `Quick test_whitespace_and_nesting;
          tc "string escapes" `Quick test_string_escapes;
          tc "errors" `Quick test_errors;
          tc "error position" `Quick test_error_position;
        ] );
      ( "print",
        [
          tc "compact" `Quick test_print_compact;
          tc "pretty" `Quick test_pretty;
          tc "accessors" `Quick test_accessors;
          tc "pretty indent / edge accessors" `Quick test_pretty_indent_and_edges;
        ] );
      ( "properties",
        [ qt prop_roundtrip; qt prop_pretty_roundtrip; qt prop_string_roundtrip ] );
    ]
