test/test_js.mli:
