test/test_async.ml: Alcotest Cml Elm_core Elm_std List Printf
