test/test_gui.mli:
