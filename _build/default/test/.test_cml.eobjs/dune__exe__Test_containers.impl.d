test/test_containers.ml: Alcotest Elm_containers Gen List Option QCheck QCheck_alcotest
