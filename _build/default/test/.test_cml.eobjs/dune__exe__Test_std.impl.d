test/test_std.ml: Alcotest Cml Elm_core Elm_std Gui Json List Printf String
