test/test_runtime.ml: Alcotest Cml Elm_core Float Fun Gen List Option Printf QCheck QCheck_alcotest String
