test/test_felm.mli:
