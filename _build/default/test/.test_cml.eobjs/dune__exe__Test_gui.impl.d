test/test_gui.ml: Alcotest Float Gen Gui List QCheck QCheck_alcotest Stdlib String
