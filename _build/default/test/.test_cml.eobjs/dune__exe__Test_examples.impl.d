test/test_examples.ml: Alcotest Elm_core Felm Felm_js Fun List Printexc String Sys
