test/test_automaton.ml: Alcotest Automaton Cml Elm_core Fun List Option QCheck QCheck_alcotest
