test/test_json.ml: Alcotest Fun Gen Json List Option Printf QCheck QCheck_alcotest String
