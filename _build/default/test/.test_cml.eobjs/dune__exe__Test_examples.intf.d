test/test_examples.mli:
