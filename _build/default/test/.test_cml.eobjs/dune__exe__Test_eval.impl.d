test/test_eval.ml: Alcotest Elm_core Felm List Option Printf QCheck QCheck_alcotest String
