test/test_markdown.mli:
