test/test_markdown.ml: Alcotest Buffer Gen Gui List Markdown QCheck QCheck_alcotest String
