test/test_felm.ml: Alcotest Array Felm List
