test/test_cml.ml: Alcotest Buffer Cml Gen Int List Option Printf QCheck QCheck_alcotest Unix
