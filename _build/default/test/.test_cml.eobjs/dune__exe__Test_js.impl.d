test/test_js.ml: Alcotest Buffer Felm Felm_js List String
