test/test_robustness.ml: Alcotest Cml Elm_core Format List Option String
