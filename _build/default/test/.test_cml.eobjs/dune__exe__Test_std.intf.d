test/test_std.mli:
