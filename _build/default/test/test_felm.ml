(* Tests for the FElm front end: lexer, parser (Fig. 3 syntax), program
   resolution/elaboration, and the Fig. 4 type system including every
   stratification restriction of Section 3.2. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Lexer *)

let toks src = Array.to_list (Array.map (fun s -> s.Felm.Lexer.tok) (Felm.Lexer.tokenize src))

let test_lex_basic () =
  match toks "let x = 41 in x + 1" with
  | [ KW "let"; IDENT "x"; OP "="; INT 41; KW "in"; IDENT "x"; OP "+"; INT 1; EOF ] -> ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lex_operators () =
  match toks "== /= <= >= && || -> +. ^" with
  | [ OP "=="; OP "/="; OP "<="; OP ">="; OP "&&"; OP "||"; OP "->"; OP "+."; OP "^"; EOF ] -> ()
  | _ -> Alcotest.fail "operators mis-lexed"

let test_lex_dotted () =
  match toks "Mouse.x Window.width" with
  | [ DOTTED "Mouse.x"; DOTTED "Window.width"; EOF ] -> ()
  | _ -> Alcotest.fail "dotted names mis-lexed"

let test_lex_lift_family () =
  match toks "lift lift2 lift8 lift9 lifty" with
  | [ LIFT 1; LIFT 2; LIFT 8; IDENT "lift9"; IDENT "lifty"; EOF ] -> ()
  | _ -> Alcotest.fail "lift keywords mis-lexed"

let test_lex_string_escapes () =
  match toks {|"a\nb\"c"|} with
  | [ STRING "a\nb\"c"; EOF ] -> ()
  | _ -> Alcotest.fail "string escapes mis-lexed"

let test_lex_floats () =
  match toks "3.25 10 2.0" with
  | [ FLOAT 3.25; INT 10; FLOAT 2.0; EOF ] -> ()
  | _ -> Alcotest.fail "numbers mis-lexed"

let test_lex_comments () =
  match toks "1 -- line comment\n {- block {- nested -} -} 2" with
  | [ INT 1; INT 2; EOF ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lex_errors () =
  let expect_err src =
    match Felm.Lexer.tokenize src with
    | _ -> Alcotest.failf "expected lex error for %S" src
    | exception Felm.Lexer.Lex_error _ -> ()
  in
  expect_err "\"unterminated";
  expect_err "{- unterminated";
  expect_err "Mouse";
  (* upper-case word without dot *)
  expect_err "#"

let test_lex_locations () =
  let spans = Felm.Lexer.tokenize "a\n  b" in
  check_int "first line" 1 spans.(0).Felm.Lexer.tok_loc.Felm.Ast.line;
  check_int "second line" 2 spans.(1).Felm.Lexer.tok_loc.Felm.Ast.line;
  check_int "second col" 3 spans.(1).Felm.Lexer.tok_loc.Felm.Ast.col

(* ------------------------------------------------------------------ *)
(* Parser *)

let parse = Felm.Parser.parse_expression

let desc src = (parse src).Felm.Ast.desc

let test_parse_precedence () =
  check_str "mul binds tighter" "(1 + (2 * 3))" (Felm.Ast.to_string (parse "1 + 2 * 3"));
  check_str "comparison above arith" "((1 + 2) < (3 * 4))"
    (Felm.Ast.to_string (parse "1 + 2 < 3 * 4"));
  check_str "and above or" "(1 || (2 && 3))" (Felm.Ast.to_string (parse "1 || 2 && 3"))

let test_parse_application () =
  check_str "left assoc" "((f x) y)" (Felm.Ast.to_string (parse "f x y"));
  check_str "app binds tighter than ops" "((f x) + (g y))"
    (Felm.Ast.to_string (parse "f x + g y"))

let test_parse_lambda () =
  match desc "\\x y -> x + y" with
  | Felm.Ast.Lam ("x", { Felm.Ast.desc = Felm.Ast.Lam ("y", _); _ }) -> ()
  | _ -> Alcotest.fail "multi-parameter lambda should curry"

let test_parse_let_if () =
  match desc "let f x = x in if f 1 then 2 else 3" with
  | Felm.Ast.Let ("f", { Felm.Ast.desc = Felm.Ast.Lam _; _ }, { Felm.Ast.desc = Felm.Ast.If _; _ }) -> ()
  | _ -> Alcotest.fail "let-with-params or if mis-parsed"

let test_parse_reactive_forms () =
  (match desc "lift2 f Mouse.x Mouse.y" with
  | Felm.Ast.Lift (_, [ _; _ ]) -> ()
  | _ -> Alcotest.fail "lift2 arity");
  (match desc "foldp f 0 Mouse.x" with
  | Felm.Ast.Foldp (_, _, _) -> ()
  | _ -> Alcotest.fail "foldp");
  match desc "async (lift f Mouse.x)" with
  | Felm.Ast.Async { Felm.Ast.desc = Felm.Ast.Lift (_, [ _ ]); _ } -> ()
  | _ -> Alcotest.fail "async"

let test_parse_pairs_unit () =
  (match desc "()" with Felm.Ast.Unit -> () | _ -> Alcotest.fail "unit");
  (match desc "(1, 2)" with
  | Felm.Ast.Pair ({ Felm.Ast.desc = Felm.Ast.Int 1; _ }, { Felm.Ast.desc = Felm.Ast.Int 2; _ }) -> ()
  | _ -> Alcotest.fail "pair");
  match desc "fst (1, 2)" with
  | Felm.Ast.Fst _ -> ()
  | _ -> Alcotest.fail "fst"

let test_parse_negative_literals () =
  (match desc "-3" with Felm.Ast.Int (-3) -> () | _ -> Alcotest.fail "neg int");
  match desc "1 - -2" with
  | Felm.Ast.Binop (Felm.Ast.Sub, _, { Felm.Ast.desc = Felm.Ast.Int (-2); _ }) -> ()
  | _ -> Alcotest.fail "subtraction of negative literal"

let test_parse_types () =
  check_bool "signal int" true
    (Felm.Parser.parse_type "signal int" = Felm.Ty.Tsignal Felm.Ty.Tint);
  check_bool "function" true
    (Felm.Parser.parse_type "int -> int -> int"
    = Felm.Ty.Tfun (Felm.Ty.Tint, Felm.Ty.Tfun (Felm.Ty.Tint, Felm.Ty.Tint)));
  check_bool "pair" true
    (Felm.Parser.parse_type "(int, string)" = Felm.Ty.Tpair (Felm.Ty.Tint, Felm.Ty.Tstring))

let test_parse_program_decls () =
  let decls =
    Felm.Parser.parse_program
      "input words : signal string = \"\"\ndouble x = x + x\nmain = lift double Mouse.x"
  in
  check_int "three declarations" 3 (List.length decls)

let test_parse_decl_boundaries () =
  (* No separators needed: `a = f x` must not swallow `b = 2`. *)
  let decls = Felm.Parser.parse_program "a = f x\nb = 2\nmain = b" in
  check_int "three decls" 3 (List.length decls)

let test_parse_errors () =
  let expect_err src =
    match Felm.Parser.parse_expression src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Felm.Parser.Parse_error _ -> ()
  in
  expect_err "let x = in 3";
  expect_err "if 1 then 2";
  expect_err "(1, 2";
  expect_err "\\ -> 3";
  expect_err "1 +"

let test_parse_roundtrip () =
  (* to_string output re-parses to an alpha-equal term *)
  let cases =
    [ "1 + 2 * 3"; "\\x -> x + 1"; "let y = 5 in y * y";
      "lift2 (\\a b -> a + b) Mouse.x Mouse.y"; "(1, (2, 3))";
      "if 1 < 2 then \"a\" else \"b\"" ]
  in
  List.iter
    (fun src ->
      let e = parse src in
      let e' = parse (Felm.Ast.to_string e) in
      check_bool ("roundtrip " ^ src) true (Felm.Ast.alpha_equal e e'))
    cases

(* ------------------------------------------------------------------ *)
(* Program resolution *)

let test_resolution_inputs_and_prims () =
  let p = Felm.Program.of_source "main = lift (\\x -> abs x) Mouse.x" in
  check_bool "has Mouse.x input" true (Felm.Program.find_input p "Mouse.x" <> None);
  (* abs resolved to an eta-expanded builtin: the program type-checks *)
  ignore (Felm.Typecheck.check_program p)

let test_resolution_errors () =
  let expect_err src =
    match Felm.Program.of_source src with
    | _ -> Alcotest.failf "expected resolution error for %S" src
    | exception Felm.Program.Error _ -> ()
  in
  expect_err "main = nonexistent";
  expect_err "main = Bogus.input";
  expect_err "x = 1";
  (* no main *)
  expect_err "input w : int = 3\nmain = 1";
  (* input must be signal-typed *)
  expect_err "input w : signal int = \"str\"\nmain = 1"
(* default type mismatch *)

let test_shadowing_builtin () =
  (* A user binding shadows a builtin of the same name. *)
  let p = Felm.Program.of_source "abs x = x + 100\nmain = abs 1" in
  ignore (Felm.Typecheck.check_program p);
  let g, v = Felm.Denote.run_program p in
  ignore g;
  check_bool "user abs wins" true (v = Felm.Value.Vint 101)

let test_duplicate_input () =
  match
    Felm.Program.of_source "input w : signal int = 0\ninput w : signal int = 1\nmain = 1"
  with
  | _ -> Alcotest.fail "expected duplicate input error"
  | exception Felm.Program.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Type system (Fig. 4) *)

let infer_src src =
  let p = Felm.Program.of_source ("main = " ^ src) in
  Felm.Typecheck.check_program p

let infer_program src =
  let p = Felm.Program.of_source src in
  Felm.Typecheck.check_program p

let accepts src = ignore (infer_src src)

let rejects what src =
  match infer_src src with
  | ty ->
    Alcotest.failf "%s: expected type error for %S but got %s" what src
      (Felm.Ty.to_string ty)
  | exception Felm.Typecheck.Type_error _ -> ()

let ty_str src = Felm.Ty.to_string (infer_src src)

(* T-UNIT, T-NUMBER and friends *)
let test_infer_literals () =
  check_str "unit" "unit" (ty_str "()");
  check_str "int" "int" (ty_str "42");
  check_str "float" "float" (ty_str "3.5");
  check_str "string" "string" (ty_str "\"hi\"");
  check_str "pair" "(int, string)" (ty_str "(1, \"a\")")

(* T-LAM / T-APP / T-LET *)
let test_infer_functions () =
  check_str "identity applied" "int" (ty_str "(\\x -> x) 3");
  check_str "curried" "int" (ty_str "(\\x y -> x + y) 1 2");
  check_str "let" "int" (ty_str "let f = \\x -> x * 2 in f 21");
  check_str "unapplied function type" "int -> int"
    (Felm.Ty.to_string
       (Felm.Typecheck.infer
          ~input_ty:(fun _ -> None)
          (Felm.Parser.parse_expression "\\x -> x + 1")))

(* T-OP / extensions *)
let test_infer_operators () =
  check_str "int arith" "int" (ty_str "1 + 2 * 3 % 4");
  check_str "float arith" "float" (ty_str "1.0 +. 2.5 /. 2.0");
  check_str "concat" "string" (ty_str "\"a\" ^ \"b\"");
  check_str "comparison yields int" "int" (ty_str "1 < 2");
  check_str "string comparison" "int" (ty_str "\"a\" == \"b\"");
  rejects "mixing int and float" "1 + 2.0";
  rejects "float op on ints" "1 +. 2";
  rejects "comparing different types" "1 == \"a\"";
  rejects "comparing functions" "(\\x -> x + 1) == (\\x -> x + 2)"

(* T-COND *)
let test_infer_cond () =
  check_str "branches join" "int" (ty_str "if 1 then 2 else 3");
  rejects "condition must be int" "if \"s\" then 1 else 2";
  rejects "condition cannot be a signal" "if Mouse.x then 1 else 2";
  rejects "branches must agree" "if 1 then 2 else \"x\"";
  rejects "branches must be simple" "if 1 then Mouse.x else Mouse.y"

(* T-INPUT / T-LIFT *)
let test_infer_lift () =
  check_str "input" "signal int" (ty_str "Mouse.x");
  check_str "lift" "signal int" (ty_str "lift (\\x -> x * 2) Mouse.x");
  check_str "lift2" "signal int"
    (ty_str "lift2 (\\y z -> y * z) Mouse.x Window.width");
  check_str "lift to string" "signal string" (ty_str "lift (\\x -> show x) Mouse.x");
  rejects "lift of a non-function" "lift 3 Mouse.x";
  rejects "lift of non-signal" "lift (\\x -> x) 3";
  rejects "lifted function must be simple"
    "lift (\\x -> Mouse.y) Mouse.x"

(* T-FOLD *)
let test_infer_foldp () =
  check_str "counter" "signal int"
    (ty_str "foldp (\\k c -> c + 1) 0 Keyboard.lastPressed");
  check_str "fold to other type" "signal string"
    (ty_str "foldp (\\k acc -> acc ^ \"x\") \"\" Mouse.x");
  rejects "foldp accumulator mismatch" "foldp (\\k c -> c + 1) \"zero\" Mouse.x";
  rejects "foldp over non-signal" "foldp (\\k c -> c + 1) 0 7"

(* T-ASYNC *)
let test_infer_async () =
  check_str "async" "signal int" (ty_str "async Mouse.x");
  check_str "async of lift" "signal int" (ty_str "async (lift (\\x -> x) Mouse.x)");
  rejects "async of non-signal" "async 3"

(* Section 3.2: no signals of signals, and no escape hatches *)
let test_stratification () =
  rejects "signal-of-signal via lift" "lift (\\x -> Mouse.x) Mouse.y";
  rejects "signal in pair" "(Mouse.x, 1)";
  rejects "fold producing signals" "foldp (\\x acc -> Mouse.x) Mouse.y Mouse.x";
  rejects "show of a signal" "show Mouse.x";
  rejects "comparing signals" "Mouse.x == Mouse.y";
  rejects "signal-consuming function returning simple"
    "(\\s -> 5) Mouse.x"

let test_signal_let_is_allowed () =
  (* let may bind signals (T-LET has no simplicity restriction)... *)
  accepts "let s = lift (\\x -> x + 1) Mouse.x in lift2 (\\a b -> a + b) s s";
  (* ...including the pathological-but-typeable body from Section 3.3.1 *)
  accepts "let y = Mouse.x in (\\x -> let z = y in 5) 3"

let test_infer_prims () =
  check_str "work" "int" (ty_str "work 1.5 42");
  check_str "translate" "string" (ty_str "translate \"hello\"");
  check_str "prims are first-class" "signal string"
    (ty_str "lift translate (lift (\\x -> show x) Mouse.x)");
  rejects "work wants float cost" "work 2 42"

let test_program_types () =
  check_str "paper fig7 program" "signal int"
    (Felm.Ty.to_string
       (infer_program
          "relative = lift2 (\\y z -> y * 100 / z) Mouse.x Window.width\nmain = relative"));
  check_str "input decl used" "signal string"
    (Felm.Ty.to_string
       (infer_program
          "input words : signal string = \"\"\nmain = lift translate words"))

(* Let-polymorphism (Section 4: "Elm's type system allows let-polymorphism") *)
let test_let_polymorphism () =
  (* one identity used at several types *)
  check_str "id at int and string" "(int, string)"
    (Felm.Ty.to_string
       (infer_program "id x = x
main = (id 1, id \"s\")"));
  (* a polymorphic pair constructor *)
  check_str "poly pair" "((int, string), (string, int))"
    (Felm.Ty.to_string
       (infer_program
          "mkpair a b = (a, b)
main = (mkpair 1 \"x\", mkpair \"y\" 2)"));
  (* higher-order polymorphic function *)
  check_str "twice at two types" "(int, string)"
    (Felm.Ty.to_string
       (infer_program
          "twice f x = f (f x)\n\
           main = (twice (\\n -> n + 1) 0, twice (\\s -> s ^ \"!\") \"a\")"));
  (* polymorphism interacts with signals: id applies to a signal too *)
  check_str "id at a signal type" "signal int"
    (Felm.Ty.to_string
       (infer_program "id x = x
main = lift (\\v -> v + 0) (id Mouse.x)"))

let test_lambda_params_monomorphic () =
  (* lambda-bound names do not generalize *)
  match infer_program "main = (\\f -> (f 1, f \"a\")) (\\x -> x)" with
  | _ -> Alcotest.fail "lambda parameter should be monomorphic"
  | exception Felm.Typecheck.Type_error _ -> ()

let test_value_restriction () =
  (* a non-value right-hand side must stay monomorphic *)
  match infer_program "g = (\\x -> x) (\\y -> y)
main = (g 1, g \"a\")" with
  | _ -> Alcotest.fail "value restriction should reject this"
  | exception Felm.Typecheck.Type_error _ -> ()

let test_poly_evaluates () =
  (* the two-stage semantics agree with the polymorphic typing *)
  let p = Felm.Program.of_source "id x = x
main = (id 7, id \"ok\")" in
  ignore (Felm.Typecheck.check_program p);
  let _, v = Felm.Denote.run_program p in
  check_bool "evaluates" true
    (v = Felm.Value.Vpair (Felm.Value.Vint 7, Felm.Value.Vstring "ok"))

(* Lists (Section 4 extension) *)
let test_list_types () =
  check_str "list literal" "list int" (ty_str "[1, 2, 3]");
  check_str "empty list is polymorphic but defaults" "list int" (ty_str "[]");
  check_str "nested" "list (list string)" (ty_str "[[\"a\"], []]");
  check_str "cons" "list int" (ty_str "cons 1 [2, 3]");
  check_str "head" "int" (ty_str "head [7]");
  check_str "tail" "list string" (ty_str "tail [\"a\", \"b\"]");
  check_str "length" "int" (ty_str "length [1.5, 2.5]");
  check_str "take" "list int" (ty_str "take 2 [1, 2, 3]");
  check_str "show list" "string" (ty_str "show [1, 2]");
  rejects "heterogeneous list" "[1, \"a\"]";
  rejects "list of signals" "[Mouse.x]";
  rejects "cons type mismatch" "cons 1.5 [1, 2]"

let test_list_prims_polymorphic () =
  (* the same builtin used at two element types in one program *)
  check_str "cons at int and string" "(list int, list string)"
    (ty_str "(cons 1 [], cons \"a\" [])")

let test_list_signals () =
  let p =
    Felm.Program.of_source
      "recent = foldp (\\x acc -> take 2 (cons x acc)) [] Mouse.x\nmain = recent"
  in
  check_str "signal of lists" "signal (list int)"
    (Felm.Ty.to_string (Felm.Typecheck.check_program p))

let test_option_types () =
  check_str "none is polymorphic, defaults" "option int" (ty_str "none");
  check_str "some" "option string" (ty_str "some \"x\"");
  check_str "withDefault" "int" (ty_str "withDefault 0 (some 3)");
  check_str "isNone" "int" (ty_str "isNone (some 1.5)");
  check_str "nested" "option (option int)" (ty_str "some (some 1)");
  rejects "option of signal" "some Mouse.x";
  rejects "withDefault mismatch" "withDefault \"s\" (some 3)"

let test_main_not_function () =
  match infer_program "main = \\x -> x + 1" with
  | _ -> Alcotest.fail "main as function should be rejected"
  | exception Felm.Typecheck.Type_error _ -> ()

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "felm-front"
    [
      ( "lexer",
        [
          tc "basic" `Quick test_lex_basic;
          tc "operators" `Quick test_lex_operators;
          tc "dotted" `Quick test_lex_dotted;
          tc "lift family" `Quick test_lex_lift_family;
          tc "string escapes" `Quick test_lex_string_escapes;
          tc "floats" `Quick test_lex_floats;
          tc "comments" `Quick test_lex_comments;
          tc "errors" `Quick test_lex_errors;
          tc "locations" `Quick test_lex_locations;
        ] );
      ( "parser",
        [
          tc "precedence" `Quick test_parse_precedence;
          tc "application" `Quick test_parse_application;
          tc "lambda" `Quick test_parse_lambda;
          tc "let/if" `Quick test_parse_let_if;
          tc "reactive forms" `Quick test_parse_reactive_forms;
          tc "pairs/unit" `Quick test_parse_pairs_unit;
          tc "negative literals" `Quick test_parse_negative_literals;
          tc "types" `Quick test_parse_types;
          tc "program decls" `Quick test_parse_program_decls;
          tc "decl boundaries" `Quick test_parse_decl_boundaries;
          tc "errors" `Quick test_parse_errors;
          tc "roundtrip" `Quick test_parse_roundtrip;
        ] );
      ( "resolution",
        [
          tc "inputs and prims" `Quick test_resolution_inputs_and_prims;
          tc "errors" `Quick test_resolution_errors;
          tc "shadowing builtins" `Quick test_shadowing_builtin;
          tc "duplicate input" `Quick test_duplicate_input;
        ] );
      ( "typing",
        [
          tc "literals" `Quick test_infer_literals;
          tc "functions" `Quick test_infer_functions;
          tc "operators" `Quick test_infer_operators;
          tc "conditionals (T-COND)" `Quick test_infer_cond;
          tc "lift (T-LIFT)" `Quick test_infer_lift;
          tc "foldp (T-FOLD)" `Quick test_infer_foldp;
          tc "async (T-ASYNC)" `Quick test_infer_async;
          tc "stratification" `Quick test_stratification;
          tc "signal lets" `Quick test_signal_let_is_allowed;
          tc "builtins" `Quick test_infer_prims;
          tc "programs" `Quick test_program_types;
          tc "main not function" `Quick test_main_not_function;
        ] );
      ( "let-polymorphism",
        [
          tc "generalization" `Quick test_let_polymorphism;
          tc "lambda params mono" `Quick test_lambda_params_monomorphic;
          tc "value restriction" `Quick test_value_restriction;
          tc "poly programs run" `Quick test_poly_evaluates;
          tc "list types" `Quick test_list_types;
          tc "list prims polymorphic" `Quick test_list_prims_polymorphic;
          tc "signals of lists" `Quick test_list_signals;
          tc "option types" `Quick test_option_types;
        ] );
    ]
