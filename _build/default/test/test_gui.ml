(* Tests for the purely functional graphics libraries (Sections 2 and 4.1):
   colors, styled text, element layout algebra, forms, and the three
   renderers. *)

module Color = Gui.Color
module Text = Gui.Text
module E = Gui.Element
module F = Gui.Form

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains haystack needle =
  let n = String.length needle in
  let m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: expected to find %S in:\n%s" what needle hay

(* ------------------------------------------------------------------ *)
(* Color *)

let test_color_clamping () =
  let c = Color.rgb 300 (-5) 100 in
  check_int "red clamped" 255 c.Color.red;
  check_int "green clamped" 0 c.Color.green;
  check_int "blue kept" 100 c.Color.blue

let test_color_css () =
  check_str "opaque" "rgb(204,0,0)" (Color.to_css Color.red);
  check_str "alpha" "rgba(1,2,3,0.5)" (Color.to_css (Color.rgba 1 2 3 0.5))

let test_hsv_primaries () =
  check_bool "hue 0 is red" true (Color.equal (Color.hsv 0.0 1.0 1.0) (Color.rgb 255 0 0));
  check_bool "hue 120 is green" true
    (Color.equal (Color.hsv 120.0 1.0 1.0) (Color.rgb 0 255 0));
  check_bool "hue 240 is blue" true
    (Color.equal (Color.hsv 240.0 1.0 1.0) (Color.rgb 0 0 255))

let test_complement_involution () =
  let c = Color.rgb 10 200 40 in
  let cc = Color.complement (Color.complement c) in
  (* involutive up to rounding: each channel within 2 *)
  check_bool "complement twice ~ id" true
    (abs (c.Color.red - cc.Color.red) <= 2
    && abs (c.Color.green - cc.Color.green) <= 2
    && abs (c.Color.blue - cc.Color.blue) <= 2)

let prop_hsv_roundtrip =
  QCheck.Test.make ~name:"rgb -> hsv -> rgb roundtrip (within rounding)"
    ~count:300
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (r, g, b) ->
      let c = Color.rgb r g b in
      let h, s, v = Color.to_hsv c in
      let c' = Color.hsv h s v in
      abs (c.Color.red - c'.Color.red) <= 1
      && abs (c.Color.green - c'.Color.green) <= 1
      && abs (c.Color.blue - c'.Color.blue) <= 1)

let prop_hsv_in_range =
  QCheck.Test.make ~name:"to_hsv ranges" ~count:300
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (r, g, b) ->
      let h, s, v = Color.to_hsv (Color.rgb r g b) in
      h >= 0.0 && h < 360.0 && s >= 0.0 && s <= 1.0 && v >= 0.0 && v <= 1.0)

(* ------------------------------------------------------------------ *)
(* Text *)

let test_text_styles_whole_value () =
  let t = Text.(of_string "a" ++ italic (of_string "b")) in
  let t = Text.bold t in
  match Text.runs t with
  | [ (s1, "a"); (s2, "b") ] ->
    check_bool "both bold" true (s1.Text.bold && s2.Text.bold);
    check_bool "only second italic" true ((not s1.Text.italic) && s2.Text.italic)
  | _ -> Alcotest.fail "expected two runs"

let test_text_measure_lines () =
  let one = Text.of_string "hello" in
  let w1, h1 = Text.measure one in
  check_int "5 chars at default metric" (5 * Text.char_width 14.0) w1;
  check_int "one line" (Text.line_height 14.0) h1;
  let two = Text.of_string "hello\nhi" in
  let w2, h2 = Text.measure two in
  check_int "widest line wins" w1 w2;
  check_int "two lines" (2 * Text.line_height 14.0) h2

let test_text_height_changes_metrics () =
  let small = Text.of_string "abc" in
  let big = Text.height 28.0 small in
  let ws, _ = Text.measure small in
  let wb, _ = Text.measure big in
  check_bool "bigger text is wider" true (wb > ws)

let prop_concat_measure_monotone =
  QCheck.Test.make ~name:"appending text never shrinks width" ~count:200
    QCheck.(pair (string_of_size (Gen.int_bound 20)) (string_of_size (Gen.int_bound 20)))
    (fun (a, b) ->
      let wa, _ = Text.measure (Text.of_string a) in
      let wab, _ = Text.measure Text.(of_string a ++ of_string b) in
      wab >= wa)

let test_wrap_words () =
  Alcotest.(check (list string))
    "greedy wrap" [ "aa bb"; "cc dd" ]
    (Text.wrap_words ~max_chars:5 "aa bb cc dd");
  Alcotest.(check (list string))
    "long word on its own line" [ "a"; "verylongword"; "b" ]
    (Text.wrap_words ~max_chars:3 "a verylongword b");
  Alcotest.(check (list string)) "empty" [] (Text.wrap_words ~max_chars:10 "");
  Alcotest.(check (list string))
    "fits on one line" [ "short text" ]
    (Text.wrap_words ~max_chars:50 "short text")

let prop_wrap_preserves_words =
  QCheck.Test.make ~name:"wrapping preserves the words" ~count:200
    QCheck.(pair (int_range 1 20) (string_of_size (Gen.int_bound 60)))
    (fun (w, s) ->
      let words src = List.filter (fun x -> x <> "") (String.split_on_char ' ' src) in
      words (String.concat " " (Text.wrap_words ~max_chars:w s)) = words s)

let test_paragraph_element () =
  let e = E.paragraph 100 "one two three four five six seven eight nine" in
  check_bool "width respected" true (E.width_of e >= 100);
  check_bool "taller than one line" true (E.height_of e > Text.line_height 14.0)

(* ------------------------------------------------------------------ *)
(* Element layout algebra *)

let box w h = E.spacer w h

let test_flow_down_sizes () =
  let e = E.flow E.Down [ box 10 5; box 30 7; box 20 11 ] in
  check_int "width is max" 30 (E.width_of e);
  check_int "height is sum" 23 (E.height_of e)

let test_flow_right_sizes () =
  let e = E.flow E.Right [ box 10 5; box 30 7 ] in
  check_int "width is sum" 40 (E.width_of e);
  check_int "height is max" 7 (E.height_of e)

let test_layers_sizes () =
  let e = E.layers [ box 10 50; box 30 7 ] in
  check_int "width is max" 30 (E.width_of e);
  check_int "height is max" 50 (E.height_of e)

let test_above_beside () =
  let a = box 10 10 in
  let b = box 20 5 in
  check_int "above sums heights" 15 (E.height_of (E.above a b));
  check_int "beside sums widths" 30 (E.width_of (E.beside a b));
  check_int "below is above flipped" 15 (E.height_of (E.below a b))

let test_container_positions () =
  let pos p = E.position_offset p (100, 60) (20, 10) in
  Alcotest.(check (pair int int)) "top_left" (0, 0) (pos E.Top_left);
  Alcotest.(check (pair int int)) "middle" (40, 25) (pos E.Middle);
  Alcotest.(check (pair int int)) "bottom_right" (80, 50) (pos E.Bottom_right);
  Alcotest.(check (pair int int)) "mid_top" (40, 0) (pos E.Mid_top);
  Alcotest.(check (pair int int)) "mid_left" (0, 25) (pos E.Mid_left);
  Alcotest.(check (pair int int)) "at" (7, 9) (pos (E.At (7, 9)))

let test_image_aspect_ratio () =
  let img = E.image 100 50 "pic.png" in
  let wider = E.width 200 img in
  check_int "height scales with width" 100 (E.height_of wider);
  let taller = E.height 100 img in
  check_int "width scales with height" 200 (E.width_of taller)

let test_size_setters () =
  let e = E.size 5 6 (box 1 1) in
  Alcotest.(check (pair int int)) "size" (5, 6) (E.size_of e);
  let e = E.opacity 0.5 e in
  Alcotest.(check (float 1e-9)) "opacity" 0.5 (E.opacity_of e);
  let e = E.color Color.red e in
  check_bool "background" true (E.background_of e = Some Color.red);
  let e = E.link "http://x" e in
  check_bool "href" true (E.href_of e = Some "http://x")

let prop_flow_down_height_is_sum =
  QCheck.Test.make ~name:"flow Down: height = sum, width = max" ~count:200
    QCheck.(list (pair (int_bound 50) (int_bound 50)))
    (fun sizes ->
      let children = List.map (fun (w, h) -> box w h) sizes in
      let e = E.flow E.Down children in
      E.height_of e = List.fold_left (fun acc (_, h) -> acc + h) 0 sizes
      && E.width_of e = List.fold_left (fun acc (w, _) -> Stdlib.max acc w) 0 sizes)

let prop_flow_assoc_size =
  QCheck.Test.make ~name:"flow Right size = flow of flows size" ~count:200
    QCheck.(pair (list (pair (int_bound 30) (int_bound 30))) (list (pair (int_bound 30) (int_bound 30))))
    (fun (xs, ys) ->
      let bs = List.map (fun (w, h) -> box w h) in
      let flat = E.flow E.Right (bs xs @ bs ys) in
      let nested = E.flow E.Right [ E.flow E.Right (bs xs); E.flow E.Right (bs ys) ] in
      E.width_of flat = E.width_of nested)

let test_empty_is_zero () =
  Alcotest.(check (pair int int)) "empty" (0, 0) (E.size_of E.empty)

(* ------------------------------------------------------------------ *)
(* Forms *)

let test_ngon_points () =
  check_int "pentagon has 5 points" 5 (List.length (F.ngon 5 20.0));
  check_int "ngon clamps to 3" 3 (List.length (F.ngon 1 20.0))

let test_rect_corners () =
  match F.rect 70.0 70.0 with
  | [ (x1, y1); _; (x3, y3); _ ] ->
    Alcotest.(check (float 1e-9)) "left" (-35.0) x1;
    Alcotest.(check (float 1e-9)) "bottom" (-35.0) y1;
    Alcotest.(check (float 1e-9)) "right" 35.0 x3;
    Alcotest.(check (float 1e-9)) "top" 35.0 y3
  | _ -> Alcotest.fail "rect should have 4 corners"

let test_degrees_turns () =
  Alcotest.(check (float 1e-9)) "180 degrees" (4.0 *. atan 1.0) (F.degrees 180.0);
  Alcotest.(check (float 1e-9)) "half turn" (4.0 *. atan 1.0) (F.turns 0.5)

let test_transform_point () =
  let f = F.move (10.0, 20.0) (F.rotate (F.degrees 90.0) (F.filled Color.red (F.square 2.0))) in
  let x, y = F.transform_point f (1.0, 0.0) in
  Alcotest.(check (float 1e-9)) "rotated x" 10.0 x;
  Alcotest.(check (float 1e-6)) "rotated y" 21.0 y

let test_scale_compounds () =
  let f = F.scale 2.0 (F.scale 3.0 (F.filled Color.red (F.square 1.0))) in
  Alcotest.(check (float 1e-9)) "scales multiply" 6.0 f.E.form_scale

let test_move_accumulates () =
  let f = F.move (1.0, 2.0) (F.move (10.0, 20.0) (F.filled Color.red (F.square 1.0))) in
  Alcotest.(check (float 1e-9)) "x" 11.0 f.E.form_x;
  Alcotest.(check (float 1e-9)) "y" 22.0 f.E.form_y

let test_bounding_box () =
  match F.bounding_box (F.move (5.0, 0.0) (F.filled Color.red (F.square 10.0))) with
  | Some ((lx, ly), (hx, hy)) ->
    Alcotest.(check (float 1e-9)) "lx" 0.0 lx;
    Alcotest.(check (float 1e-9)) "ly" (-5.0) ly;
    Alcotest.(check (float 1e-9)) "hx" 10.0 hx;
    Alcotest.(check (float 1e-9)) "hy" 5.0 hy
  | None -> Alcotest.fail "square has a bounding box"

let prop_rotate_preserves_bbox_diagonal =
  QCheck.Test.make ~name:"rotation preserves distances from origin" ~count:200
    QCheck.(pair (float_bound_exclusive 6.28) (pair (float_bound_exclusive 10.0) (float_bound_exclusive 10.0)))
    (fun (angle, (x, y)) ->
      let f = F.rotate angle (F.filled Color.red (F.square 1.0)) in
      let x', y' = F.transform_point f (x, y) in
      let d = sqrt ((x *. x) +. (y *. y)) in
      let d' = sqrt ((x' *. x') +. (y' *. y')) in
      Float.abs (d -. d') < 1e-6)

let test_group_bounding_box () =
  let g =
    F.group
      [ F.filled Color.red (F.square 2.0); F.move (10.0, 0.0) (F.filled Color.blue (F.square 2.0)) ]
  in
  match F.bounding_box g with
  | Some ((lx, _), (hx, _)) ->
    Alcotest.(check (float 1e-9)) "lx" (-1.0) lx;
    Alcotest.(check (float 1e-9)) "hx" 11.0 hx
  | None -> Alcotest.fail "group has a bounding box"

(* ------------------------------------------------------------------ *)
(* Renderers *)

(* Fig. 1 / Example 1 of the paper. *)
let fig1 () =
  let content =
    E.flow E.Down
      [
        E.plain_text "Welcome to Elm!";
        E.image 150 50 "flower.jpg";
        E.as_text "[9,8,7,6,5,4,3,2,1]";
      ]
  in
  E.container 180 100 E.Middle content

let test_html_fig1 () =
  let html = Gui.Html_render.render (fig1 ()) in
  check_contains "outer container" html "width:180px;height:100px";
  check_contains "text present" html "Welcome to Elm!";
  check_contains "image present" html "flower.jpg";
  check_contains "list text present" html "[9,8,7,6,5,4,3,2,1]"

let test_html_page () =
  let page = Gui.Html_render.to_page ~title:"t<est" (E.plain_text "hi") in
  check_contains "doctype" page "<!DOCTYPE html>";
  check_contains "title escaped" page "t&lt;est";
  check_contains "body" page "hi"

let test_html_escaping () =
  let html = Gui.Html_render.render (E.plain_text "<script>&") in
  check_bool "no raw tag" false (contains html "<script>");
  check_contains "escaped" html "&lt;script&gt;&amp;"

let test_html_flow_positions () =
  let html = Gui.Html_render.render (E.flow E.Down [ box 10 20; box 10 30 ]) in
  check_contains "first at 0" html "left:0px;top:0px;width:10px;height:20px";
  check_contains "second below" html "left:0px;top:20px;width:10px;height:30px"

let test_html_flow_up_reverses () =
  let html = Gui.Html_render.render (E.flow E.Up [ box 10 20; box 10 30 ]) in
  (* first child ends at the bottom *)
  check_contains "first at bottom" html "left:0px;top:30px;width:10px;height:20px"

(* Fig. 12 of the paper. *)
let fig12 () =
  let square = F.rect 70.0 70.0 in
  let pentagon = F.ngon 5 20.0 in
  let circle = F.oval 50.0 50.0 in
  let zigzag = F.path [ (0.0, 0.0); (10.0, 10.0); (0.0, 30.0); (10.0, 40.0) ] in
  E.collage 140 140
    [
      F.filled Color.green pentagon;
      F.outlined (F.dashed Color.blue) circle;
      F.rotate (F.degrees 70.0) (F.outlined (F.solid Color.black) square);
      F.move (40.0, 40.0) (F.traced (F.solid Color.red) zigzag);
    ]

let test_svg_fig12 () =
  let svg = Gui.Svg_render.render_forms ~width:140 ~height:140 (
    match E.prim_of (fig12 ()) with
    | E.Prim_collage forms -> forms
    | _ -> []) in
  check_contains "svg root" svg "<svg xmlns";
  check_contains "centered flip" svg "translate(70.00 70.00) scale(1,-1)";
  check_contains "pentagon filled green" svg "fill=\"rgb(0,153,0)\"";
  check_contains "dashed circle" svg "stroke-dasharray=\"8,4\"";
  check_contains "rotated square" svg "rotate(70.00)";
  check_contains "zigzag is a polyline" svg "<polyline";
  check_contains "zigzag moved" svg "translate(40.00 40.00)"

let test_svg_gradients () =
  let lin = F.gradient (F.linear (0.0, -35.0) (0.0, 35.0)
                          [ (0.0, Color.blue); (1.0, Color.white) ])
      (F.square 70.0) in
  let rad = F.gradient (F.radial (0.0, 0.0) 30.0
                          [ (0.0, Color.yellow); (1.0, Color.red) ])
      (F.circle 30.0) in
  let svg = Gui.Svg_render.render_forms ~width:100 ~height:100 [ lin; rad ] in
  check_contains "defs emitted" svg "<defs>";
  check_contains "linear gradient" svg "<linearGradient id=\"grad1\"";
  check_contains "radial gradient" svg "<radialGradient id=\"grad2\"";
  check_contains "linear referenced" svg "fill=\"url(#grad1)\"";
  check_contains "radial referenced" svg "fill=\"url(#grad2)\"";
  check_contains "stops" svg "stop-color=\"rgb(255,255,0)\"";
  (* no gradients -> no defs *)
  let plain = Gui.Svg_render.render_forms ~width:10 ~height:10
      [ F.filled Color.red (F.square 4.0) ] in
  check_bool "no defs when unused" false (contains plain "<defs>")

let test_svg_escape () =
  check_str "escape" "&lt;a&gt;&amp;&quot;&#39;" (Gui.Svg_render.escape "<a>&\"'")

let test_ascii_fig1 () =
  let art = Gui.Ascii_render.render (fig1 ()) in
  check_contains "text row" art "Welcome to Elm!";
  check_contains "image box" art "img:flower.jpg";
  check_bool "art is non-empty" true (String.length art > 0)

let test_ascii_flow_order () =
  let art =
    Gui.Ascii_render.render
      (E.flow E.Down [ E.plain_text "first"; E.plain_text "second" ])
  in
  let lines = String.split_on_char '\n' art in
  let index_of needle =
    let rec go i = function
      | [] -> -1
      | l :: rest -> if contains l needle then i else go (i + 1) rest
    in
    go 0 lines
  in
  check_bool "first above second" true (index_of "first" < index_of "second")

let test_ascii_empty () =
  check_str "empty renders empty" "" (Gui.Ascii_render.render E.empty)

(* ------------------------------------------------------------------ *)
(* Transform2D / group_transform *)

module T2 = Gui.Transform2d

let test_t2_basics () =
  check_bool "identity" true (T2.apply T2.identity (3.0, 4.0) = (3.0, 4.0));
  check_bool "translation" true (T2.apply (T2.translation 1.0 2.0) (3.0, 4.0) = (4.0, 6.0));
  let x, y = T2.apply (T2.rotation (F.degrees 90.0)) (1.0, 0.0) in
  check_bool "rotation" true (Float.abs x < 1e-9 && Float.abs (y -. 1.0) < 1e-9);
  check_bool "scale_xy" true (T2.apply (T2.scale_xy 2.0 3.0) (1.0, 1.0) = (2.0, 3.0));
  check_bool "shear" true (T2.apply (T2.shear 1.0 0.0) (0.0, 1.0) = (1.0, 1.0))

let test_t2_multiply_order () =
  (* multiply m n applies n first *)
  let m = T2.multiply (T2.translation 10.0 0.0) (T2.scale 2.0) in
  check_bool "scale then translate" true (T2.apply m (1.0, 1.0) = (12.0, 2.0))

let prop_t2_invert =
  QCheck.Test.make ~name:"invert m . m = identity (on points)" ~count:200
    QCheck.(triple (float_range (-3.0) 3.0) (float_range (-3.0) 3.0)
              (pair (float_range (-5.0) 5.0) (float_range (-5.0) 5.0)))
    (fun (angle, t, p) ->
      let m =
        T2.multiply (T2.rotation angle)
          (T2.multiply (T2.translation t (-.t)) (T2.scale 1.5))
      in
      match T2.invert m with
      | None -> false
      | Some inv ->
        let x, y = T2.apply inv (T2.apply m p) in
        let px, py = p in
        Float.abs (x -. px) < 1e-6 && Float.abs (y -. py) < 1e-6)

let test_t2_singular () =
  check_bool "singular not invertible" true (T2.invert (T2.scale 0.0) = None)

let test_group_transform_render () =
  let shear_group =
    F.group_transform (T2.shear 0.5 0.0) [ F.filled Color.red (F.square 10.0) ]
  in
  let svg = Gui.Svg_render.render_forms ~width:50 ~height:50 [ shear_group ] in
  check_contains "matrix transform emitted" svg "matrix(1.00 0.00 0.50 1.00 0.00 0.00)";
  match F.bounding_box shear_group with
  | Some ((lx, _), (hx, _)) ->
    (* sheared square widens: x range is [-7.5, 7.5] *)
    check_bool "sheared bbox" true (Float.abs (lx +. 7.5) < 1e-9 && Float.abs (hx -. 7.5) < 1e-9)
  | None -> Alcotest.fail "bounding box expected"

(* ------------------------------------------------------------------ *)
(* Plot (the Section 5 "graphing library": cartesian and radial) *)

module Plot = Gui.Plot

let test_plot_range () =
  let (xmin, xmax), (ymin, ymax) = Plot.range [ (1.0, 5.0); (3.0, -2.0); (2.0, 0.0) ] in
  Alcotest.(check (float 1e-9)) "xmin" 1.0 xmin;
  Alcotest.(check (float 1e-9)) "xmax" 3.0 xmax;
  Alcotest.(check (float 1e-9)) "ymin" (-2.0) ymin;
  Alcotest.(check (float 1e-9)) "ymax" 5.0 ymax

let test_plot_range_degenerate () =
  let (xmin, xmax), (ymin, ymax) = Plot.range [ (2.0, 3.0) ] in
  check_bool "x widened" true (xmax -. xmin > 0.0);
  check_bool "y widened" true (ymax -. ymin > 0.0);
  let (exmin, exmax), _ = Plot.range [] in
  check_bool "empty has a range" true (exmax > exmin)

let test_plot_project () =
  let proj = Plot.project ~plot_w:100.0 ~plot_h:50.0 ~xrange:(0.0, 10.0) ~yrange:(0.0, 10.0) in
  let x, y = proj (0.0, 0.0) in
  Alcotest.(check (float 1e-9)) "min corner x" (-50.0) x;
  Alcotest.(check (float 1e-9)) "min corner y" (-25.0) y;
  let x, y = proj (10.0, 10.0) in
  Alcotest.(check (float 1e-9)) "max corner x" 50.0 x;
  Alcotest.(check (float 1e-9)) "max corner y" 25.0 y;
  let x, y = proj (5.0, 5.0) in
  Alcotest.(check (float 1e-9)) "center x" 0.0 x;
  Alcotest.(check (float 1e-9)) "center y" 0.0 y

let plot_forms e =
  match E.prim_of e with
  | E.Prim_flow (_, plot :: _) -> (
    match E.prim_of plot with E.Prim_collage forms -> forms | _ -> [])
  | E.Prim_collage forms -> forms
  | _ -> []

let test_plot_cartesian_structure () =
  let data = [ (0.0, 0.0); (1.0, 2.0); (2.0, 1.0) ] in
  let e = Plot.cartesian ~draw_points:true [ Plot.series ~label:"d" ~color:Color.red data ] in
  let forms = plot_forms e in
  (* 2 axes + 12 ticks + 1 trace + 3 markers *)
  check_int "form count" 18 (List.length forms);
  let svg = Gui.Svg_render.render_forms ~width:300 ~height:200 forms in
  check_contains "series color present" svg (Color.to_css Color.red);
  check_contains "has a polyline trace" svg "<polyline"

let test_plot_scatter_and_bar () =
  let e = Plot.scatter [ Plot.series [ (0.0, 0.0); (1.0, 1.0) ] ] in
  check_bool "scatter has forms" true (List.length (plot_forms e) > 2);
  let b = Plot.bar [ ("a", 3.0); ("b", 1.0) ] in
  check_bool "bar sized" true (E.width_of b > 0 && E.height_of b > 0);
  let forms = plot_forms b in
  (* 2 bars on top of the axes *)
  check_bool "bars present" true (List.length forms >= 16)

let test_plot_radial_structure () =
  let pts = List.init 13 (fun i -> (Float.pi *. float_of_int i /. 6.0, 1.0)) in
  let e = Plot.radial [ Plot.series pts ] in
  let forms = plot_forms e in
  (* 3 rings + 6 spokes + 1 trace *)
  check_int "rings+spokes+trace" 10 (List.length forms)

let test_plot_legend_present () =
  let e = Plot.cartesian [ Plot.series ~label:"visible-label" [ (0.0, 0.0); (1.0, 1.0) ] ] in
  check_contains "legend text" (Gui.Ascii_render.render e) "visible-label"

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "gui"
    [
      ( "color",
        [
          tc "clamping" `Quick test_color_clamping;
          tc "css" `Quick test_color_css;
          tc "hsv primaries" `Quick test_hsv_primaries;
          tc "complement involution" `Quick test_complement_involution;
          qt prop_hsv_roundtrip;
          qt prop_hsv_in_range;
        ] );
      ( "text",
        [
          tc "styles whole value" `Quick test_text_styles_whole_value;
          tc "measure lines" `Quick test_text_measure_lines;
          tc "height changes metrics" `Quick test_text_height_changes_metrics;
          qt prop_concat_measure_monotone;
          tc "wrap words" `Quick test_wrap_words;
          qt prop_wrap_preserves_words;
          tc "paragraph" `Quick test_paragraph_element;
        ] );
      ( "element",
        [
          tc "flow down sizes" `Quick test_flow_down_sizes;
          tc "flow right sizes" `Quick test_flow_right_sizes;
          tc "layers sizes" `Quick test_layers_sizes;
          tc "above/beside/below" `Quick test_above_beside;
          tc "container positions" `Quick test_container_positions;
          tc "image aspect ratio" `Quick test_image_aspect_ratio;
          tc "setters" `Quick test_size_setters;
          tc "empty" `Quick test_empty_is_zero;
          qt prop_flow_down_height_is_sum;
          qt prop_flow_assoc_size;
        ] );
      ( "form",
        [
          tc "ngon" `Quick test_ngon_points;
          tc "rect corners" `Quick test_rect_corners;
          tc "degrees/turns" `Quick test_degrees_turns;
          tc "transform point" `Quick test_transform_point;
          tc "scale compounds" `Quick test_scale_compounds;
          tc "move accumulates" `Quick test_move_accumulates;
          tc "bounding box" `Quick test_bounding_box;
          tc "group bounding box" `Quick test_group_bounding_box;
          qt prop_rotate_preserves_bbox_diagonal;
        ] );
      ( "transform2d",
        [
          tc "basics" `Quick test_t2_basics;
          tc "multiply order" `Quick test_t2_multiply_order;
          qt prop_t2_invert;
          tc "singular" `Quick test_t2_singular;
          tc "group_transform" `Quick test_group_transform_render;
        ] );
      ( "plot",
        [
          tc "range" `Quick test_plot_range;
          tc "degenerate range" `Quick test_plot_range_degenerate;
          tc "projection" `Quick test_plot_project;
          tc "cartesian structure" `Quick test_plot_cartesian_structure;
          tc "scatter/bar" `Quick test_plot_scatter_and_bar;
          tc "radial structure" `Quick test_plot_radial_structure;
          tc "legend" `Quick test_plot_legend_present;
        ] );
      ( "render",
        [
          tc "html fig1" `Quick test_html_fig1;
          tc "html page" `Quick test_html_page;
          tc "html escaping" `Quick test_html_escaping;
          tc "html flow positions" `Quick test_html_flow_positions;
          tc "html flow up" `Quick test_html_flow_up_reverses;
          tc "svg fig12" `Quick test_svg_fig12;
          tc "svg gradients" `Quick test_svg_gradients;
          tc "svg escape" `Quick test_svg_escape;
          tc "ascii fig1" `Quick test_ascii_fig1;
          tc "ascii flow order" `Quick test_ascii_flow_order;
          tc "ascii empty" `Quick test_ascii_empty;
        ] );
    ]
