(* Tests for the Markdown library (Section 4: "Elm supports ... Markdown"). *)

module M = Markdown

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let html = M.render_html

let test_headings () =
  check_str "h1" "<h1>Title</h1>" (html "# Title");
  check_str "h3" "<h3>Sub</h3>" (html "### Sub");
  check_str "h6 max" "<h6>Deep</h6>" (html "###### Deep");
  (* seven hashes is not a heading *)
  check_bool "not a heading" true
    (String.length (html "####### nope") > 0
    && not (String.equal (html "####### nope") "<h7>nope</h7>"))

let test_paragraphs () =
  check_str "single" "<p>hello world</p>" (html "hello world");
  check_str "joined lines" "<p>one two</p>" (html "one\ntwo");
  check_str "split by blank" "<p>one</p>\n<p>two</p>" (html "one\n\ntwo")

let test_emphasis () =
  check_str "em" "<p><em>it</em></p>" (html "*it*");
  check_str "strong" "<p><strong>bold</strong></p>" (html "**bold**");
  check_str "nested" "<p><strong>a <em>b</em></strong></p>" (html "**a *b***");
  check_str "mixed text" "<p>say <em>hi</em> now</p>" (html "say *hi* now");
  check_str "unclosed stays literal" "<p>2 * 3</p>" (html "2 * 3")

let test_code () =
  check_str "inline" "<p>run <code>make</code></p>" (html "run `make`");
  check_str "fenced"
    "<pre><code>let x = 1\nx + x</code></pre>"
    (html "```\nlet x = 1\nx + x\n```");
  check_str "fenced with language"
    "<pre><code class=\"language-ocaml\">let x = ()</code></pre>"
    (html "```ocaml\nlet x = ()\n```");
  check_str "code escapes html"
    "<p><code>a &lt; b &amp; c</code></p>" (html "`a < b & c`")

let test_links_images () =
  check_str "link" "<p><a href=\"http://x\">here</a></p>" (html "[here](http://x)");
  check_str "styled label" "<p><a href=\"u\"><em>em</em></a></p>" (html "[*em*](u)");
  check_str "image" "<p><img src=\"pic.jpg\" alt=\"alt\"></p>" (html "![alt](pic.jpg)");
  check_str "bare bracket literal" "<p>[not a link</p>" (html "[not a link")

let test_lists () =
  check_str "unordered"
    "<ul><li>a</li><li>b</li></ul>" (html "- a\n- b");
  check_str "star bullets"
    "<ul><li>a</li><li>b</li></ul>" (html "* a\n* b");
  check_str "ordered"
    "<ol><li>one</li><li>two</li></ol>" (html "1. one\n2. two");
  check_str "inline markup in items"
    "<ul><li><strong>x</strong></li></ul>" (html "- **x**")

let test_quote_rule () =
  check_str "quote" "<blockquote><p>wisdom</p></blockquote>" (html "> wisdom");
  check_str "rule" "<hr>" (html "---");
  check_str "quote then para" "<blockquote><p>q</p></blockquote>\n<p>after</p>"
    (html "> q\n\nafter")

let test_escaping () =
  check_str "html escaped" "<p>a &lt;script&gt; &amp; b</p>" (html "a <script> & b")

let test_document () =
  let doc =
    "# Report\n\nSome *text* with `code`.\n\n- item one\n- item two\n\n```\nverbatim\n```\n\n---\n"
  in
  let out = html doc in
  let contains needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length out && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "h1" true (contains "<h1>Report</h1>");
  check_bool "em" true (contains "<em>text</em>");
  check_bool "list" true (contains "<li>item one</li>");
  check_bool "pre" true (contains "<pre><code>verbatim</code></pre>");
  check_bool "hr" true (contains "<hr>")

let test_to_element () =
  let e = M.to_element "# Title\n\nbody text\n\n- a\n- b" in
  let module E = Gui.Element in
  check_bool "has size" true (E.width_of e > 0 && E.height_of e > 0);
  let art = Gui.Ascii_render.render e in
  let contains needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length art && (String.sub art i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "title shown" true (contains "Title");
  check_bool "bullets shown" true (contains "- a")

let test_inline_to_text_styles () =
  let t = M.inline_to_text (M.parse_inline "**b** *i* `c`") in
  let styles = List.map fst (Gui.Text.runs t) in
  check_bool "has bold run" true (List.exists (fun s -> s.Gui.Text.bold) styles);
  check_bool "has italic run" true (List.exists (fun s -> s.Gui.Text.italic) styles);
  check_bool "has mono run" true (List.exists (fun s -> s.Gui.Text.monospace) styles)

let prop_never_raises =
  QCheck.Test.make ~name:"parser totals on arbitrary input" ~count:300
    QCheck.(string_of_size (Gen.int_bound 200))
    (fun s ->
      match M.render_html s with
      | (_ : string) -> true)

let prop_output_escaped =
  QCheck.Test.make ~name:"plain text never leaks raw angle brackets" ~count:200
    QCheck.(string_of_size (Gen.int_bound 60))
    (fun s ->
      (* feed text with no markdown delimiters: output must not contain a
         raw '<' except as part of our emitted tags *)
      let cleaned =
        String.map
          (fun c ->
            match c with
            | '*' | '`' | '[' | ']' | '(' | ')' | '#' | '>' | '-' | '!' | '\n' -> 'x'
            | c -> c)
          s
      in
      let out = M.render_html cleaned in
      (* strip our known tags, then no '<' may remain *)
      let remove needle hay =
        let n = String.length needle in
        let buf = Buffer.create (String.length hay) in
        let i = ref 0 in
        let len = String.length hay in
        while !i < len do
          if !i + n <= len && String.sub hay !i n = needle then i := !i + n
          else begin
            Buffer.add_char buf hay.[!i];
            incr i
          end
        done;
        Buffer.contents buf
      in
      let without_tags = remove "</p>" (remove "<p>" out) in
      not (String.contains without_tags '<'))

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "markdown"
    [
      ( "blocks",
        [
          tc "headings" `Quick test_headings;
          tc "paragraphs" `Quick test_paragraphs;
          tc "lists" `Quick test_lists;
          tc "quote/rule" `Quick test_quote_rule;
          tc "code" `Quick test_code;
          tc "document" `Quick test_document;
        ] );
      ( "inline",
        [
          tc "emphasis" `Quick test_emphasis;
          tc "links/images" `Quick test_links_images;
          tc "escaping" `Quick test_escaping;
        ] );
      ( "element",
        [
          tc "to_element" `Quick test_to_element;
          tc "inline styles" `Quick test_inline_to_text_styles;
        ] );
      ( "properties", [ qt prop_never_raises; qt prop_output_escaped ] );
    ]
