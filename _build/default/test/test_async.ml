(* End-to-end asynchrony tests: the paper's Example 3 (image search with a
   slow web service while the mouse stays live) and the Section 3.3.2
   wordPairs example (Fig. 8), in both synchronous and async forms. *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module Stats = Elm_core.Stats
module World = Elm_std.World
module Mouse = Elm_std.Mouse
module Input = Elm_std.Input_widgets
module Http = Elm_std.Http

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Example 3: getImage over a slow service, composed with the mouse. *)

type scene = {
  tag : string;
  pos : int * int;
  img : string;
}

let image_of_response resp =
  match resp with
  | Http.Waiting -> "(no image)"
  | Http.Success body -> (
    (* the response is a JSON object containing the image URL (Example 3) *)
    match Http.first_photo_url body with
    | Some url -> "img:" ^ url
    | None -> "(bad json)")
  | Http.Failure (code, _) -> Printf.sprintf "error:%d" code

(* The Example 3 program, parameterized on whether getImage is async. *)
let example3 ~use_async =
  World.run (fun () ->
      let field = Input.text "Enter a tag" in
      let get_image tags = Signal.lift image_of_response (Http.send_get Http.flickr tags) in
      let fetched = get_image field.Input.value in
      let fetched = if use_async then Signal.async fetched else fetched in
      let scene tag pos img = { tag; pos; img } in
      let main = Signal.lift3 scene field.Input.value Mouse.position fetched in
      let rt = Runtime.start main in
      (* The user types a tag at t=1, then keeps moving the mouse. *)
      World.script
        [
          (1.0, fun () -> field.Input.set rt "shells");
          (1.2, fun () -> Mouse.move rt (10, 10));
          (1.4, fun () -> Mouse.move rt (20, 20));
          (1.6, fun () -> Mouse.move rt (30, 30));
        ];
      rt)

let mouse_latencies rt =
  (* Virtual delay between each mouse injection and the display update
     showing that position. *)
  let injections = [ (1.2, (10, 10)); (1.4, (20, 20)); (1.6, (30, 30)) ] in
  List.filter_map
    (fun (t_inj, pos) ->
      List.find_map
        (fun (t_disp, scene) ->
          if scene.pos = pos then Some (t_disp -. t_inj) else None)
        (Runtime.changes rt))
    injections

let test_example3_sync_hangs () =
  let rt = example3 ~use_async:false in
  let lats = mouse_latencies rt in
  check_int "all mouse updates eventually displayed" 3 (List.length lats);
  (* Flickr latency is 2s: mouse positions are stuck behind the fetch. *)
  check_bool "first mouse update delayed by the fetch" true
    (List.nth lats 0 > 1.0)

let test_example3_async_responsive () =
  let rt = example3 ~use_async:true in
  let lats = mouse_latencies rt in
  check_int "all mouse updates displayed" 3 (List.length lats);
  List.iteri
    (fun i lat ->
      check_bool (Printf.sprintf "mouse update %d immediate" i) true (lat < 0.1))
    lats;
  (* ... and the image still arrives. *)
  check_bool "image fetched" true
    (List.exists
       (fun (_, scene) -> scene.img = "img:http://img.example/shells.jpg")
       (Runtime.changes rt))

let test_example3_image_arrival_time () =
  let rt = example3 ~use_async:true in
  match
    List.find_opt (fun (_, s) -> s.img <> "(no image)") (Runtime.changes rt)
  with
  | Some (t, _) -> check_bool "image after 2s latency" true (t >= 3.0)
  | None -> Alcotest.fail "image never arrived"

(* ------------------------------------------------------------------ *)
(* Section 3.3.2: wordPairs — synchronization is sometimes essential. *)

let to_french = function
  | "" -> ""
  | "hello" -> "bonjour"
  | "world" -> "monde"
  | "yes" -> "oui"
  | w -> "le " ^ w

let slow_to_french armed w =
  if !armed then Cml.sleep 50.0;
  to_french w

(* wordPairs = lift2 (,) words (lift toFrench words) *)
let word_pairs armed words =
  Signal.lift2 ~name:"wordPairs"
    (fun w f -> (w, f))
    words
    (Signal.lift ~name:"toFrench" (slow_to_french armed) words)

let test_wordpairs_always_matched () =
  (* Even with a slow translator, each English word is paired with its own
     translation: the synchronous semantics the example motivates. *)
  let rt =
    World.run (fun () ->
        let armed = ref false in
        let words = Signal.input ~name:"words" "" in
        let rt = Runtime.start (word_pairs armed words) in
        armed := true;
        List.iter (fun w -> Runtime.inject rt words w) [ "hello"; "world"; "yes" ];
        rt)
  in
  check_bool "pairs line up" true
    (List.map snd (Runtime.changes rt)
    = [ ("hello", "bonjour"); ("world", "monde"); ("yes", "oui") ])

(* Fig. 8(b): combining wordPairs with the mouse synchronously stalls the
   mouse; Fig. 8(c): async lets mouse events "jump ahead". *)
let fig8 ~use_async =
  World.run (fun () ->
      let armed = ref false in
      let words = Signal.input ~name:"words" "" in
      let pairs = word_pairs armed words in
      let pairs = if use_async then Signal.async pairs else pairs in
      let main = Signal.lift2 (fun p m -> (p, m)) pairs Mouse.position in
      let rt = Runtime.start main in
      armed := true;
      World.script
        [
          (1.0, fun () -> Runtime.inject rt words "hello");
          (2.0, fun () -> Mouse.move rt (5, 5));
        ];
      rt)

let test_fig8b_mouse_stalls () =
  let rt = fig8 ~use_async:false in
  match Runtime.changes rt with
  | [ (t1, (("hello", "bonjour"), (0, 0))); (t2, (("hello", "bonjour"), (5, 5))) ] ->
    check_bool "translation first, after 50s" true (t1 >= 51.0);
    check_bool "mouse waited for translation" true (t2 >= t1)
  | _ -> Alcotest.fail "unexpected display sequence"

let test_fig8c_mouse_jumps_ahead () =
  let rt = fig8 ~use_async:true in
  match Runtime.changes rt with
  | [ (t1, (("", ""), (5, 5))); (t2, (("hello", "bonjour"), (5, 5))) ] ->
    check_bool "mouse displayed promptly" true (t1 < 2.5);
    check_bool "translation catches up later" true (t2 >= 51.0)
  | _ ->
    Alcotest.failf "unexpected display sequence (%d changes)"
      (List.length (Runtime.changes rt))

let test_fig8_event_order_between_subgraphs_relaxed () =
  (* With async, the global interleaving at the display differs from the
     injection order; within each subgraph order is preserved. *)
  let rt = fig8 ~use_async:true in
  let stats = Runtime.stats rt in
  check_int "one async re-dispatch" 1 stats.Stats.async_events;
  check_int "three events total (words, mouse, async)" 3 stats.Stats.events

(* A deep async pipeline: multiple async stages compose. *)
let test_stacked_async () =
  let rt =
    World.run (fun () ->
        let armed = ref false in
        let src = Signal.input 0 in
        let stage name s =
          Signal.async ~name
            (Signal.lift
               (fun x ->
                 if !armed then Cml.sleep 10.0;
                 x + 1)
               s)
        in
        let rt = Runtime.start (stage "a1" (stage "a2" src)) in
        armed := true;
        Runtime.inject rt src 0;
        rt)
  in
  check_bool "value passed both stages" true
    (List.map snd (Runtime.changes rt) = [ 2 ])

let test_async_of_input_is_transparent () =
  let rt =
    World.run (fun () ->
        let src = Signal.input 0 in
        let rt = Runtime.start (Signal.async src) in
        Runtime.inject rt src 7;
        Runtime.inject rt src 8;
        rt)
  in
  check_bool "same values, re-dispatched" true
    (List.map snd (Runtime.changes rt) = [ 7; 8 ])

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "async"
    [
      ( "example3",
        [
          tc "sync GUI hangs" `Quick test_example3_sync_hangs;
          tc "async GUI responsive" `Quick test_example3_async_responsive;
          tc "image arrival time" `Quick test_example3_image_arrival_time;
        ] );
      ( "wordPairs (Fig. 8)",
        [
          tc "pairs always matched" `Quick test_wordpairs_always_matched;
          tc "8b: mouse stalls" `Quick test_fig8b_mouse_stalls;
          tc "8c: mouse jumps ahead" `Quick test_fig8c_mouse_jumps_ahead;
          tc "order relaxed between subgraphs" `Quick
            test_fig8_event_order_between_subgraphs_relaxed;
        ] );
      ( "composition",
        [
          tc "stacked async" `Quick test_stacked_async;
          tc "async of input" `Quick test_async_of_input_is_transparent;
        ] );
    ]
