(* Tests for FElm's two-stage semantics (paper Section 3.3):

   Stage one (Fig. 6): each reduction rule individually, normalization to
   the Fig. 5 intermediate language, Theorem 1 (type soundness and
   normalization) as a property over generated well-typed programs, and the
   agreement of the small-step path with the independent big-step
   evaluator.

   Stage two: end-to-end runs of FElm programs on the concurrent runtime,
   driven by traces — including the paper's examples. *)

module Ast = Felm.Ast
module Eval = Felm.Eval
module Denote = Felm.Denote
module Value = Felm.Value
module Sgraph = Felm.Sgraph
module Program = Felm.Program
module Interp = Felm.Interp
module Trace = Felm.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let parse = Felm.Parser.parse_expression

let resolve src =
  (Program.of_source ("main = " ^ src)).Program.main

let strip_main (e : Ast.expr) =
  (* Elaboration wraps programs as [let main = ... in main]; since main is
     signal-bound the wrapper survives normalization. Strip it for tests
     that inspect the shape of the body. *)
  match e.Ast.desc with
  | Ast.Let ("main", rhs, { Ast.desc = Ast.Var "main"; _ }) -> rhs
  | _ -> e

let normal src = strip_main (Eval.normalize (resolve src))

(* ------------------------------------------------------------------ *)
(* Individual rules (Fig. 6) *)

let test_rule_op () =
  check_str "OP" "3" (Ast.to_string (normal "1 + 2"));
  check_str "nested OP" "14" (Ast.to_string (normal "2 + 3 * 4"));
  check_str "float OP" "3.5" (Ast.to_string (normal "1.25 +. 2.25"));
  check_str "concat" "\"ab\"" (Ast.to_string (normal "\"a\" ^ \"b\""))

let test_rule_cond () =
  check_str "COND-TRUE" "1" (Ast.to_string (normal "if 7 then 1 else 2"));
  check_str "COND-FALSE" "2" (Ast.to_string (normal "if 0 then 1 else 2"));
  check_str "condition evaluated" "1" (Ast.to_string (normal "if 3 - 2 then 1 else 2"))

let test_rule_application_creates_let () =
  (* APPLICATION: (\x. e1) e2 --> let x = e2 in e1, before e2 evaluates. *)
  let e = parse "(\\x -> x + x) (1 + 2)" in
  match Eval.step e with
  | Some { Ast.desc = Ast.Let ("x", rhs, _); _ } ->
    check_str "argument unevaluated in the let" "(1 + 2)" (Ast.to_string rhs)
  | _ -> Alcotest.fail "expected APPLICATION to produce a let"

let test_rule_reduce_only_values () =
  (* REDUCE substitutes only once the right-hand side is a value. *)
  let e = parse "let x = 1 + 2 in x * x" in
  (match Eval.step e with
  | Some { Ast.desc = Ast.Let ("x", { Ast.desc = Ast.Int 3; _ }, _); _ } -> ()
  | _ -> Alcotest.fail "rhs should evaluate first");
  check_str "then substitutes" "9" (Ast.to_string (Eval.normalize e))

let test_signal_lets_not_substituted () =
  (* A signal-bound let stays a let: signal expressions are not duplicated
     (call-by-need-like sharing, Section 3.3.1). *)
  let e = normal "let s = lift (\\x -> x + 1) Mouse.x in lift2 (\\a b -> a * b) s s" in
  match e.Ast.desc with
  | Ast.Let ("s", rhs, body) ->
    check_bool "rhs still a signal term" true (Ast.is_signal_term rhs);
    (* the body references s twice rather than copying the lift *)
    let occurrences =
      let rec count (e : Ast.expr) =
        match e.Ast.desc with
        | Ast.Var "s" -> 1
        | Ast.Lift (f, deps) -> count f + List.fold_left (fun a d -> a + count d) 0 deps
        | _ -> 0
      in
      count body
    in
    check_int "shared twice" 2 occurrences
  | _ -> Alcotest.failf "expected a let at the top, got %s" (Ast.to_string e)

let test_rule_expand () =
  (* EXPAND: F[let x = s in u] --> let x = s in F[u]. The classic case:
     applying a let-wrapped function. *)
  let e = normal "(let s = Mouse.x in \\y -> lift2 (\\a b -> a + b) s y) Mouse.y" in
  check_bool "normal form is a final term" true (Ast.is_final e);
  match e.Ast.desc with
  | Ast.Let ("s", { Ast.desc = Ast.Input "Mouse.x"; _ }, _) -> ()
  | _ -> Alcotest.failf "expected let hoisted to the top, got %s" (Ast.to_string e)

let test_expand_in_pairs () =
  (* Extension F-contexts: a signal let buried in a pair component. *)
  let e = normal "((let s = Mouse.x in 5), 3)" in
  check_bool "final" true (Ast.is_final e);
  (* the pair of values remains, with the dead signal let floated *)
  check_bool "evaluates to a final term containing (5, 3)" true
    (let rec has_pair (e : Ast.expr) =
       match e.Ast.desc with
       | Ast.Pair ({ Ast.desc = Ast.Int 5; _ }, { Ast.desc = Ast.Int 3; _ }) -> true
       | Ast.Let (_, rhs, body) -> has_pair rhs || has_pair body
       | _ -> false
     in
     has_pair e)

let test_expand_avoids_capture () =
  (* The hoisted binder must not capture a free variable of the context. *)
  let e =
    resolve
      "let s = Mouse.x in (\\f -> (let q = Mouse.y in \\z -> z) (lift f s)) (\\w -> w + 1)"
  in
  let n = Eval.normalize e in
  check_bool "normalizes to a final term" true (Ast.is_final n)

let test_rule_delta_prims () =
  check_str "abs" "3" (Ast.to_string (normal "abs (0 - 3)"));
  check_str "max" "7" (Ast.to_string (normal "max 3 7"));
  check_str "strlen" "5" (Ast.to_string (normal "strlen \"hello\""));
  check_str "translate" "\"bonjour\"" (Ast.to_string (normal "translate \"hello\""));
  check_str "show int" "\"42\"" (Ast.to_string (normal "show 42"));
  check_str "fst/snd" "3" (Ast.to_string (normal "fst (3, 4) + 0 * snd (3, 4)"))

let test_list_evaluation () =
  check_str "list of computations" "[2, 6]"
    (Ast.to_string (normal "[1 + 1, 2 * 3]"));
  check_str "cons/head/tail" "3"
    (Ast.to_string (normal "head (tail (cons 1 (cons 3 [])))"));
  check_str "take" "[1, 2]" (Ast.to_string (normal "take 2 [1, 2, 3]"));
  check_str "reverse" "[3, 2, 1]" (Ast.to_string (normal "reverse [1, 2, 3]"));
  check_str "isEmpty" "1" (Ast.to_string (normal "isEmpty []"));
  check_str "show" "\"[1, 2]\"" (Ast.to_string (normal "show [1, 2]"))

let test_list_head_of_empty () =
  match Eval.normalize (resolve "head []") with
  | _ -> Alcotest.fail "expected runtime error"
  | exception Invalid_argument _ -> ()

let test_list_program_runs () =
  let out =
    Interp.run_source
      "recent = foldp (\\x acc -> take 2 (cons x acc)) [] Mouse.x\nmain = recent"
      ~trace:"0.1 Mouse.x 1\n0.2 Mouse.x 2\n0.3 Mouse.x 3\n"
  in
  Alcotest.(check (list string))
    "windowed history"
    [ "[1]"; "[2, 1]"; "[3, 2]" ]
    (List.map (fun (_, v) -> Value.show v) out.Interp.displays)

let test_option_evaluation () =
  check_str "some evaluates inside" "(some 3)" (Ast.to_string (normal "some (1 + 2)"));
  check_str "withDefault some" "7" (Ast.to_string (normal "withDefault 0 (some 7)"));
  check_str "withDefault none" "9" (Ast.to_string (normal "withDefault 9 none"));
  check_str "isNone" "1" (Ast.to_string (normal "isNone none"));
  check_str "show option" "\"some 3\"" (Ast.to_string (normal "show (some 3)"))

let test_option_program_runs () =
  let out =
    Interp.run_source
      "first = foldp (\\x acc -> if isNone acc && x /= 0 then some x else acc) none Mouse.x\n\
       main = lift (\\o -> withDefault (-1) o) first"
      ~trace:"0.1 Mouse.x 0\n0.2 Mouse.x 5\n0.3 Mouse.x 8\n"
  in
  Alcotest.(check (list string))
    "first nonzero remembered"
    [ "-1"; "5"; "5" ]
    (List.map (fun (_, v) -> Value.show v) out.Interp.displays)

let test_division_by_zero () =
  match Eval.normalize (resolve "1 / 0") with
  | _ -> Alcotest.fail "expected runtime error"
  | exception Eval.Runtime_error _ -> ()

let test_normal_forms_are_final () =
  List.iter
    (fun src ->
      let n = normal src in
      check_bool ("final: " ^ src) true (Ast.is_final n))
    [
      "42";
      "\\x -> x + 1";
      "Mouse.x";
      "lift (\\x -> x) Mouse.x";
      "foldp (\\k c -> c + 1) 0 Keyboard.lastPressed";
      "async (lift (\\x -> x) Mouse.x)";
      "let s = Mouse.x in lift2 (\\a b -> a + b) s s";
      "(\\f -> lift f Mouse.x) (\\x -> x * 2)";
    ]

(* ------------------------------------------------------------------ *)
(* Generated well-typed programs: Theorem 1 and big-step agreement. *)

(* A generator of well-typed (expression, uses-signals) pairs built
   compositionally: integer expressions from an environment of integer
   variables, signal expressions over the standard inputs. *)
module Gen = struct
  open QCheck.Gen

  let var_pool = [ "a"; "b"; "c" ]

  (* integer-typed expression using variables from [vars] *)
  let rec int_expr vars n =
    if n <= 0 then leaf vars
    else
      frequency
        [
          (2, leaf vars);
          ( 3,
            map2
              (fun op (l, r) -> Ast.mk (Ast.Binop (op, l, r)))
              (oneofl [ Ast.Add; Ast.Sub; Ast.Mul ])
              (pair (int_expr vars (n / 2)) (int_expr vars (n / 2))) );
          ( 1,
            map3
              (fun c t e -> Ast.mk (Ast.If (c, t, e)))
              (int_expr vars (n / 3)) (int_expr vars (n / 3))
              (int_expr vars (n / 3)) );
          ( 1,
            let* x = oneofl var_pool in
            let* rhs = int_expr vars (n / 2) in
            let* body = int_expr (x :: vars) (n / 2) in
            return (Ast.mk (Ast.Let (x, rhs, body))) );
          ( 1,
            let* x = oneofl var_pool in
            let* body = int_expr (x :: vars) (n / 2) in
            let* arg = int_expr vars (n / 2) in
            return (Ast.mk (Ast.App (Ast.mk (Ast.Lam (x, body)), arg))) );
          ( 1,
            let* a = int_expr vars (n / 2) in
            let* b = int_expr vars (n / 2) in
            let* pick_fst = bool in
            return
              (Ast.mk
                 (if pick_fst then Ast.Fst (Ast.mk (Ast.Pair (a, b)))
                  else Ast.Snd (Ast.mk (Ast.Pair (a, b))))) );
          ( 1,
            (* lists: length of a literal list of int expressions *)
            let* elems = list_size (0 -- 3) (int_expr vars (n / 3)) in
            return (Ast.mk (Ast.Prim_op ("length", [ Ast.mk (Ast.List_lit elems) ]))) );
          ( 1,
            (* head (cons e es) is always defined *)
            let* x = int_expr vars (n / 2) in
            let* rest = list_size (0 -- 2) (int_expr vars (n / 3)) in
            return
              (Ast.mk
                 (Ast.Prim_op
                    ( "head",
                      [
                        Ast.mk
                          (Ast.Prim_op
                             ("cons", [ x; Ast.mk (Ast.List_lit rest) ]));
                      ] ))) );
          ( 1,
            (* strings round-trip through show/strlen *)
            let* x = int_expr vars (n / 2) in
            return
              (Ast.mk (Ast.Prim_op ("strlen", [ Ast.mk (Ast.Show x) ]))) );
        ]

  and leaf vars =
    let open QCheck.Gen in
    if vars = [] then map (fun n -> Ast.mk (Ast.Int n)) (int_range (-20) 20)
    else
      frequency
        [
          (2, map (fun n -> Ast.mk (Ast.Int n)) (int_range (-20) 20));
          (1, map (fun x -> Ast.mk (Ast.Var x)) (oneofl vars));
        ]

  (* an int -> int function value *)
  let fun1 n =
    let open QCheck.Gen in
    let* body = int_expr [ "p" ] n in
    return (Ast.mk (Ast.Lam ("p", body)))

  let fun2 n =
    let* body = int_expr [ "p"; "q" ] n in
    return (Ast.mk (Ast.Lam ("p", Ast.mk (Ast.Lam ("q", body)))))

  (* signal-of-int expression *)
  let rec signal_expr n =
    if n <= 0 then
      oneofl [ Ast.mk (Ast.Input "Mouse.x"); Ast.mk (Ast.Input "Mouse.y") ]
    else
      frequency
        [
          (1, oneofl [ Ast.mk (Ast.Input "Mouse.x"); Ast.mk (Ast.Input "Mouse.y") ]);
          ( 3,
            let* f = fun1 (n / 2) in
            let* s = signal_expr (n / 2) in
            return (Ast.mk (Ast.Lift (f, [ s ]))) );
          ( 2,
            let* f = fun2 (n / 3) in
            let* s1 = signal_expr (n / 2) in
            let* s2 = signal_expr (n / 2) in
            return (Ast.mk (Ast.Lift (f, [ s1; s2 ]))) );
          ( 2,
            let* f = fun2 (n / 3) in
            let* b = int_expr [] (n / 3) in
            let* s = signal_expr (n / 2) in
            return (Ast.mk (Ast.Foldp (f, b, s))) );
          ( 1,
            let* s = signal_expr (n - 1) in
            return (Ast.mk (Ast.Async s)) );
          ( 1,
            let* s = signal_expr (n / 2) in
            let* f = fun2 (n / 3) in
            let* s2 = signal_expr (n / 2) in
            return
              (Ast.mk
                 (Ast.Let
                    ( "shared",
                      s,
                      Ast.mk
                        (Ast.Lift (f, [ Ast.mk (Ast.Var "shared"); s2 ])) ))) );
        ]

  let program =
    let open QCheck.Gen in
    let* reactive = bool in
    if reactive then signal_expr 6 else int_expr [] 8

  let arbitrary =
    QCheck.make ~print:Ast.to_string program
end

let input_ty name =
  Option.map
    (fun (i : Felm.Builtins.input) -> i.Felm.Builtins.input_ty)
    (Felm.Builtins.find_standard_input name)

(* Theorem 1: well-typed terms normalize to a final term of the same type. *)
let prop_type_soundness_normalization =
  QCheck.Test.make ~name:"Theorem 1: soundness + normalization" ~count:300
    Gen.arbitrary (fun e ->
      match Felm.Typecheck.infer ~input_ty e with
      | exception Felm.Typecheck.Type_error _ -> QCheck.assume_fail ()
      | ty -> (
        match Eval.normalize ~fuel:200_000 e with
        | exception Eval.Runtime_error _ ->
          (* division/modulo by zero is the one legitimate fault *)
          true
        | n ->
          Ast.is_final n
          &&
          let ty' = Felm.Typecheck.infer ~input_ty n in
          Felm.Ty.to_string ty = Felm.Ty.to_string ty'))

(* The two stage-one paths agree: normalize + read-back produces a graph
   with the same observable behaviour as direct big-step evaluation. *)
let run_both e trace_events =
  let program =
    { Program.inputs = (Program.of_source "main = 1").Program.inputs; main = e }
  in
  let run_with graph_root =
    let g, root = graph_root () in
    Interp.run_graph program g root ~trace:trace_events
  in
  let big () = Denote.run_program program in
  let small () =
    let g = Sgraph.create () in
    let root = Denote.graph_of_final g (Eval.normalize e) in
    (g, root)
  in
  let a = run_with big in
  let b = run_with small in
  (a, b)

let trace_gen =
  QCheck.Gen.(
    list_size (1 -- 8)
      (map2
         (fun t v -> (t, v))
         (float_bound_exclusive 10.0)
         (int_range (-10) 10)))

let prop_small_step_equals_big_step =
  QCheck.Test.make ~name:"small-step and big-step paths agree observably"
    ~count:150
    (QCheck.pair Gen.arbitrary (QCheck.make trace_gen))
    (fun (e, raw_trace) ->
      match Felm.Typecheck.infer ~input_ty e with
      | exception Felm.Typecheck.Type_error _ -> QCheck.assume_fail ()
      | _ -> (
        let trace_events =
          List.mapi
            (fun i (t, v) ->
              {
                Trace.at = t;
                input = (if i mod 2 = 0 then "Mouse.x" else "Mouse.y");
                value = Value.Vint v;
              })
            (List.sort compare raw_trace)
        in
        match run_both e trace_events with
        | exception Eval.Runtime_error _ -> true
        | exception Denote.Error _ -> true
        | a, b ->
          List.map snd a.Interp.displays = List.map snd b.Interp.displays
          && Value.to_string a.Interp.final = Value.to_string b.Interp.final))

(* Determinism of the whole pipeline. *)
let prop_interp_deterministic =
  QCheck.Test.make ~name:"interpreter is deterministic" ~count:60
    Gen.arbitrary (fun e ->
      match Felm.Typecheck.infer ~input_ty e with
      | exception Felm.Typecheck.Type_error _ -> QCheck.assume_fail ()
      | _ -> (
        let trace =
          [
            { Trace.at = 0.5; input = "Mouse.x"; value = Value.Vint 3 };
            { Trace.at = 1.0; input = "Mouse.y"; value = Value.Vint 4 };
            { Trace.at = 1.5; input = "Mouse.x"; value = Value.Vint 5 };
          ]
        in
        let program =
          { Program.inputs = (Program.of_source "main = 1").Program.inputs; main = e }
        in
        match
          ( Interp.run program ~trace,
            Interp.run program ~trace )
        with
        | exception Denote.Error _ -> true
        | exception Eval.Runtime_error _ -> true
        | a, b ->
          List.map snd a.Interp.displays = List.map snd b.Interp.displays))

(* ------------------------------------------------------------------ *)
(* Stage two: end-to-end program runs *)

let displays outcome =
  List.map (fun (_, v) -> Value.show v) outcome.Interp.displays

let test_run_pure_program () =
  let out = Interp.run_source "main = 6 * 7" ~trace:"" in
  check_str "pure result" "42" (Value.show out.Interp.final);
  check_int "no displays" 0 (List.length out.Interp.displays)

let test_run_mouse_tracker () =
  (* Example 2: main = lift show Mouse.x *)
  let out =
    Interp.run_source "main = lift (\\p -> show p) Mouse.x"
      ~trace:"0.1 Mouse.x 3\n0.2 Mouse.x 4\n"
  in
  Alcotest.(check (list string)) "positions shown" [ "3"; "4" ] (displays out)

let test_run_counter () =
  (* Section 3.1's key-press counter. *)
  let out =
    Interp.run_source
      "main = foldp (\\k c -> c + 1) 0 Keyboard.lastPressed"
      ~trace:"0.1 Keyboard.lastPressed 65\n0.2 Keyboard.lastPressed 66\n0.3 Keyboard.lastPressed 67\n"
  in
  Alcotest.(check (list string)) "counts" [ "1"; "2"; "3" ] (displays out)

let test_run_fig7_relative_position () =
  let out =
    Interp.run_source
      "main = lift2 (\\y z -> y * 100 / z) Mouse.x Window.width"
      ~trace:"0.1 Mouse.x 512\n0.2 Window.width 2048\n"
  in
  Alcotest.(check (list string)) "relative positions" [ "50"; "25" ] (displays out)

let test_run_wordpairs () =
  let out =
    Interp.run_source
      "input words : signal string = \"\"\n\
       wordPairs = lift2 (\\a b -> (a, b)) words (lift translate words)\n\
       main = wordPairs"
      ~trace:"0.1 words \"hello\"\n0.2 words \"world\"\n"
  in
  Alcotest.(check (list string))
    "pairs matched"
    [ "(hello, bonjour)"; "(world, monde)" ]
    (displays out)

let test_run_async_responsiveness () =
  (* The Section 5 syncEg/asyncEg programs, written in FElm with `work`. *)
  let source ~async =
    Printf.sprintf
      "slow x = work 100.0 x\n\
       main = lift2 (\\a b -> (a, b)) Mouse.x (%s (lift slow Mouse.y))"
      (if async then "async" else "lift (\\v -> v)")
  in
  let trace = "1.0 Mouse.y 1\n2.0 Mouse.x 42\n" in
  let sync_out = Interp.run_source (source ~async:false) ~trace in
  let async_out = Interp.run_source (source ~async:true) ~trace in
  let time_of_x out =
    List.find_map
      (fun (t, v) ->
        match v with
        | Value.Vpair (Value.Vint 42, _) -> Some t
        | _ -> None)
      out.Interp.displays
  in
  (match time_of_x sync_out with
  | Some t -> check_bool "sync: x blocked behind work" true (t >= 100.0)
  | None -> Alcotest.fail "sync: x never displayed");
  match time_of_x async_out with
  | Some t -> check_bool "async: x prompt" true (t < 3.0)
  | None -> Alcotest.fail "async: x never displayed"

let test_run_modes_agree () =
  let src = "main = foldp (\\k c -> c + k) 0 Mouse.x" in
  let trace = "0.1 Mouse.x 1\n0.2 Mouse.x 2\n0.3 Mouse.x 3\n" in
  let a = Interp.run_source ~mode:Elm_core.Runtime.Pipelined src ~trace in
  let b = Interp.run_source ~mode:Elm_core.Runtime.Sequential src ~trace in
  check_bool "pipelined = sequential outputs" true (displays a = displays b)

let test_skipped_events () =
  let out =
    Interp.run_source "main = lift (\\x -> x) Mouse.x"
      ~trace:"0.1 Mouse.x 1\n0.2 Mouse.y 2\n"
  in
  check_int "unused input skipped" 1 out.Interp.skipped_events

let test_sharing_in_graph () =
  (* One shared node, not two, for a let-bound signal. *)
  let p =
    Program.of_source
      "s = lift (\\x -> x + 1) Mouse.x\nmain = lift2 (\\a b -> a + b) s s"
  in
  let g, _ = Denote.run_program p in
  (* nodes: input, inner lift, outer lift2 = 3 *)
  check_int "three nodes" 3 (Sgraph.size g)

let test_trace_parsing () =
  let events =
    Trace.parse "# comment\n\n0.5 Mouse.x 42\n0.25 words \"hi\"\n1.0 p (1, 2)\n"
  in
  check_int "three events" 3 (List.length events);
  (match events with
  | [ e1; e2; e3 ] ->
    check_bool "sorted by time" true
      (e1.Trace.at <= e2.Trace.at && e2.Trace.at <= e3.Trace.at);
    check_bool "string value" true (e1.Trace.value = Value.Vstring "hi");
    check_bool "pair value" true
      (e3.Trace.value = Value.Vpair (Value.Vint 1, Value.Vint 2))
  | _ -> Alcotest.fail "expected three events");
  match Trace.parse "nonsense line" with
  | _ -> Alcotest.fail "expected trace error"
  | exception Trace.Trace_error _ -> ()

let test_trace_validation () =
  let p = Program.of_source "main = lift (\\x -> x) Mouse.x" in
  let bad_input = [ { Trace.at = 0.0; input = "Nope.x"; value = Value.Vint 1 } ] in
  (match Trace.validate p bad_input with
  | _ -> Alcotest.fail "expected unknown-input error"
  | exception Trace.Trace_error _ -> ());
  let bad_type = [ { Trace.at = 0.0; input = "Mouse.x"; value = Value.Vstring "s" } ] in
  match Trace.validate p bad_type with
  | _ -> Alcotest.fail "expected type error"
  | exception Trace.Trace_error _ -> ()

let test_graph_dot () =
  let p =
    Program.of_source
      "main = lift2 (\\y z -> y * z) Mouse.x (async (lift (\\w -> w) Window.width))"
  in
  let g, root = Denote.run_program p in
  let root_id = match root with Value.Vsignal id -> Some id | _ -> None in
  let dot = Sgraph.to_dot ~label:"fig8-style" g ~root:root_id in
  let contains needle =
    let n = String.length needle in
    let m = String.length dot in
    let rec go i = i + n <= m && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "dispatcher" true (contains "Global Event");
  check_bool "mouse input" true (contains "Mouse.x");
  check_bool "async new-event edge" true (contains "new event");
  check_bool "root highlighted" true (contains "peripheries=2")

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "felm-eval"
    [
      ( "rules",
        [
          tc "OP" `Quick test_rule_op;
          tc "COND" `Quick test_rule_cond;
          tc "APPLICATION" `Quick test_rule_application_creates_let;
          tc "REDUCE" `Quick test_rule_reduce_only_values;
          tc "signal lets shared" `Quick test_signal_lets_not_substituted;
          tc "EXPAND" `Quick test_rule_expand;
          tc "EXPAND in pairs" `Quick test_expand_in_pairs;
          tc "EXPAND avoids capture" `Quick test_expand_avoids_capture;
          tc "prim deltas" `Quick test_rule_delta_prims;
          tc "division by zero" `Quick test_division_by_zero;
          tc "lists evaluate" `Quick test_list_evaluation;
          tc "head of empty" `Quick test_list_head_of_empty;
          tc "list program" `Quick test_list_program_runs;
          tc "options evaluate" `Quick test_option_evaluation;
          tc "option program" `Quick test_option_program_runs;
          tc "normal forms final" `Quick test_normal_forms_are_final;
        ] );
      ( "properties",
        [
          qt prop_type_soundness_normalization;
          qt prop_small_step_equals_big_step;
          qt prop_interp_deterministic;
        ] );
      ( "programs",
        [
          tc "pure program" `Quick test_run_pure_program;
          tc "mouse tracker (Ex. 2)" `Quick test_run_mouse_tracker;
          tc "key counter (S3.1)" `Quick test_run_counter;
          tc "relative position (Fig. 7)" `Quick test_run_fig7_relative_position;
          tc "wordPairs (S3.3.2)" `Quick test_run_wordpairs;
          tc "async responsiveness (S5)" `Quick test_run_async_responsiveness;
          tc "modes agree" `Quick test_run_modes_agree;
          tc "skipped events" `Quick test_skipped_events;
          tc "graph sharing" `Quick test_sharing_in_graph;
          tc "trace parsing" `Quick test_trace_parsing;
          tc "trace validation" `Quick test_trace_validation;
          tc "graph dot (Fig. 7/8)" `Quick test_graph_dot;
        ] );
    ]
