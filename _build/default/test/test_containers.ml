(* Tests for the persistent Dict (AVL) and Set libraries (Section 4). *)

module Dict = Elm_containers.Dict
module Set = Elm_containers.Elm_set

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

let test_dict_basic () =
  let d = Dict.of_list [ (3, "c"); (1, "a"); (2, "b") ] in
  check_int "size" 3 (Dict.size d);
  check_bool "get hit" true (Dict.get 2 d = Some "b");
  check_bool "get miss" true (Dict.get 9 d = None);
  check_bool "member" true (Dict.member 1 d);
  check_ints "keys sorted" [ 1; 2; 3 ] (Dict.keys d);
  Alcotest.(check (list string)) "values in key order" [ "a"; "b"; "c" ] (Dict.values d)

let test_dict_insert_replaces () =
  let d = Dict.insert 1 "new" (Dict.singleton 1 "old") in
  check_int "still one binding" 1 (Dict.size d);
  check_bool "replaced" true (Dict.get 1 d = Some "new")

let test_dict_remove () =
  let d = Dict.of_list (List.init 10 (fun i -> (i, i * i))) in
  let d = Dict.remove 5 d in
  check_int "one less" 9 (Dict.size d);
  check_bool "gone" true (Dict.get 5 d = None);
  check_bool "others intact" true (Dict.get 6 d = Some 36);
  check_bool "remove absent is id" true (Dict.size (Dict.remove 99 d) = 9)

let test_dict_update () =
  let d = Dict.singleton "k" 1 in
  let d = Dict.update "k" (Option.map (fun v -> v + 10)) d in
  check_bool "modified" true (Dict.get "k" d = Some 11);
  let d = Dict.update "new" (fun _ -> Some 5) d in
  check_bool "inserted" true (Dict.get "new" d = Some 5);
  let d = Dict.update "k" (fun _ -> None) d in
  check_bool "deleted" true (Dict.get "k" d = None)

let test_dict_union_left_biased () =
  let a = Dict.of_list [ (1, "a1"); (2, "a2") ] in
  let b = Dict.of_list [ (2, "b2"); (3, "b3") ] in
  let u = Dict.union a b in
  check_bool "left wins" true (Dict.get 2 u = Some "a2");
  check_int "all keys" 3 (Dict.size u)

let test_dict_intersect_diff () =
  let a = Dict.of_list [ (1, "x"); (2, "y"); (3, "z") ] in
  let b = Dict.of_list [ (2, "_"); (3, "_") ] in
  check_ints "intersect keys" [ 2; 3 ] (Dict.keys (Dict.intersect a b));
  check_ints "diff keys" [ 1 ] (Dict.keys (Dict.diff a b))

let test_dict_fold_map_filter () =
  let d = Dict.of_list (List.init 5 (fun i -> (i, i))) in
  check_int "fold sum" 10 (Dict.fold (fun _ v acc -> acc + v) d 0);
  let doubled = Dict.map (fun _ v -> v * 2) d in
  check_bool "map" true (Dict.get 3 doubled = Some 6);
  let evens = Dict.filter (fun k _ -> k mod 2 = 0) d in
  check_ints "filter" [ 0; 2; 4 ] (Dict.keys evens)

let test_dict_min_max () =
  let d = Dict.of_list [ (5, ()); (1, ()); (9, ()) ] in
  check_bool "min" true (Dict.find_min d = Some (1, ()));
  check_bool "max" true (Dict.find_max d = Some (9, ()));
  check_bool "empty min" true (Dict.find_min Dict.empty = None)

let prop_dict_model =
  (* compare against an association-list model through random operations *)
  QCheck.Test.make ~name:"dict behaves like an assoc-list model" ~count:200
    QCheck.(list (pair (int_bound 30) (option (int_bound 100))))
    (fun ops ->
      let apply_model model (k, op) =
        match op with
        | Some v -> (k, v) :: List.remove_assoc k model
        | None -> List.remove_assoc k model
      in
      let apply_dict d (k, op) =
        match op with Some v -> Dict.insert k v d | None -> Dict.remove k d
      in
      let model = List.fold_left apply_model [] ops in
      let dict = List.fold_left apply_dict Dict.empty ops in
      let sorted_model = List.sort compare model in
      Dict.to_list dict = sorted_model
      && Dict.check_balanced dict && Dict.check_ordered dict)

let prop_dict_balanced_ascending =
  QCheck.Test.make ~name:"AVL stays balanced on sorted inserts" ~count:20
    QCheck.(int_range 1 300)
    (fun n ->
      let d = Dict.of_list (List.init n (fun i -> (i, i))) in
      Dict.check_balanced d && Dict.check_ordered d && Dict.size d = n)

let prop_dict_remove_all =
  QCheck.Test.make ~name:"inserting then removing everything yields empty"
    ~count:100
    QCheck.(list_of_size Gen.(0 -- 40) small_int)
    (fun keys ->
      let d = List.fold_left (fun d k -> Dict.insert k () d) Dict.empty keys in
      let d = List.fold_left (fun d k -> Dict.remove k d) d keys in
      Dict.is_empty d)

let test_set_basic () =
  let s = Set.of_list [ 3; 1; 2; 3; 1 ] in
  check_int "dedup" 3 (Set.size s);
  check_ints "sorted" [ 1; 2; 3 ] (Set.to_list s);
  check_bool "member" true (Set.member 2 s);
  check_bool "not member" false (Set.member 9 s)

let test_set_algebra () =
  let a = Set.of_list [ 1; 2; 3 ] in
  let b = Set.of_list [ 2; 3; 4 ] in
  check_ints "union" [ 1; 2; 3; 4 ] (Set.to_list (Set.union a b));
  check_ints "intersect" [ 2; 3 ] (Set.to_list (Set.intersect a b));
  check_ints "diff" [ 1 ] (Set.to_list (Set.diff a b));
  check_bool "subset" true (Set.subset (Set.of_list [ 2; 3 ]) a);
  check_bool "not subset" false (Set.subset b a)

let test_set_map_filter_fold () =
  let s = Set.of_list [ 1; 2; 3; 4 ] in
  check_ints "map collapses" [ 0; 1 ] (Set.to_list (Set.map (fun x -> x mod 2) s));
  check_ints "filter" [ 2; 4 ] (Set.to_list (Set.filter (fun x -> x mod 2 = 0) s));
  check_int "fold" 10 (Set.fold ( + ) s 0)

let prop_set_union_commutative =
  QCheck.Test.make ~name:"set union commutative (as sets)" ~count:200
    QCheck.(pair (list small_int) (list small_int))
    (fun (xs, ys) ->
      Set.equal
        (Set.union (Set.of_list xs) (Set.of_list ys))
        (Set.union (Set.of_list ys) (Set.of_list xs)))

let prop_set_tolist_sorted_dedup =
  QCheck.Test.make ~name:"to_list = sorted dedup" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      Set.to_list (Set.of_list xs) = List.sort_uniq compare xs)

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "containers"
    [
      ( "dict",
        [
          tc "basic" `Quick test_dict_basic;
          tc "insert replaces" `Quick test_dict_insert_replaces;
          tc "remove" `Quick test_dict_remove;
          tc "update" `Quick test_dict_update;
          tc "union left-biased" `Quick test_dict_union_left_biased;
          tc "intersect/diff" `Quick test_dict_intersect_diff;
          tc "fold/map/filter" `Quick test_dict_fold_map_filter;
          tc "min/max" `Quick test_dict_min_max;
          qt prop_dict_model;
          qt prop_dict_balanced_ascending;
          qt prop_dict_remove_all;
        ] );
      ( "set",
        [
          tc "basic" `Quick test_set_basic;
          tc "algebra" `Quick test_set_algebra;
          tc "map/filter/fold" `Quick test_set_map_filter_fold;
          qt prop_set_union_commutative;
          qt prop_set_tolist_sorted_dedup;
        ] );
    ]
