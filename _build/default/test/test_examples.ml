(* Integration tests: every shipped FElm example program parses, type
   checks, runs against its shipped trace with the expected output, compiles
   to well-formed JavaScript, and produces a signal-graph DOT. This is the
   pipeline a user of `felmc` exercises. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* dune runtest runs with cwd = _build/default/test; dune exec from the
   project root. Find the examples either way. *)
let dir =
  if Sys.file_exists "../examples/felm/mouse.felm" then "../examples/felm/"
  else "examples/felm/"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load name =
  let program = Felm.Program.of_source (read_file (dir ^ name ^ ".felm")) in
  let ty = Felm.Typecheck.check_program program in
  (program, ty)

let run name =
  let program, _ = load name in
  let events = Felm.Trace.parse (read_file (dir ^ name ^ ".trace")) in
  Felm.Trace.validate program events;
  Felm.Interp.run program ~trace:events

let shown outcome =
  List.map (fun (_, v) -> Felm.Value.show v) outcome.Felm.Interp.displays

let examples =
  [ "mouse"; "counter"; "relative"; "wordpairs"; "async_search"; "poly";
    "history"; "options" ]

let test_all_check () =
  List.iter
    (fun name ->
      match load name with
      | _ -> ()
      | exception e ->
        Alcotest.failf "%s.felm failed to check: %s" name (Printexc.to_string e))
    examples

let test_mouse () =
  Alcotest.(check (list string))
    "mouse positions"
    [ "(10, 0)"; "(10, 5)"; "(20, 5)"; "(20, 9)"; "(30, 9)" ]
    (shown (run "mouse"))

let test_counter () =
  Alcotest.(check (list string)) "counts" [ "1"; "2"; "3" ] (shown (run "counter"))

let test_relative () =
  Alcotest.(check (list string)) "percentages" [ "50"; "25"; "50" ]
    (shown (run "relative"))

let test_wordpairs () =
  Alcotest.(check (list string))
    "translations"
    [ "(hello, bonjour)"; "(world, monde)"; "(thanks, merci)" ]
    (shown (run "wordpairs"))

let test_async_search_is_responsive () =
  let outcome = run "async_search" in
  (* mouse updates land promptly despite the 2s lookup... *)
  let mouse_updates =
    List.filter
      (fun (t, v) ->
        match v with
        | Felm.Value.Vpair (Felm.Value.Vint _, Felm.Value.Vstring "0") -> t < 1.5
        | _ -> false)
      outcome.Felm.Interp.displays
  in
  check_int "three prompt mouse updates" 3 (List.length mouse_updates);
  (* ... and the result arrives at t >= 3 *)
  check_bool "slow result arrives" true
    (List.exists
       (fun (t, v) ->
         match v with
         | Felm.Value.Vpair (_, Felm.Value.Vstring "6") -> t >= 3.0
         | _ -> false)
       outcome.Felm.Interp.displays)

let test_history () =
  Alcotest.(check (list string))
    "sliding window of mouse samples"
    [ "1 samples: [10]"; "2 samples: [20, 10]"; "3 samples: [30, 20, 10]";
      "3 samples: [40, 30, 20]" ]
    (shown (run "history"))

let test_poly () =
  Alcotest.(check (list string))
    "polymorphic program output"
    [ "mouse: (11, px)"; "mouse: (22, px)" ]
    (shown (run "poly"))

let test_all_compile_to_valid_js () =
  List.iter
    (fun name ->
      let program, _ = load name in
      let js = Felm_js.Emit.compile_program program in
      match Felm_js.Js_check.well_formed js with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s.felm emitted invalid JS: %s" name msg)
    examples

let test_all_emit_dot () =
  List.iter
    (fun name ->
      let program, _ = load name in
      let g, root = Felm.Denote.run_program program in
      let root_id = match root with Felm.Value.Vsignal id -> Some id | _ -> None in
      let dot = Felm.Sgraph.to_dot g ~root:root_id in
      check_bool (name ^ " dot nonempty") true (String.length dot > 50);
      check_bool (name ^ " has dispatcher") true
        (let needle = "dispatcher" in
         let n = String.length needle in
         let rec go i =
           i + n <= String.length dot && (String.sub dot i n = needle || go (i + 1))
         in
         go 0))
    examples

let test_sequential_mode_agrees_when_sync () =
  (* For programs without async, Sequential and Pipelined modes display the
     same values (the pipelining is unobservable in the output). *)
  List.iter
    (fun name ->
      let program, _ = load name in
      let events = Felm.Trace.parse (read_file (dir ^ name ^ ".trace")) in
      let a = Felm.Interp.run ~mode:Elm_core.Runtime.Pipelined program ~trace:events in
      let b = Felm.Interp.run ~mode:Elm_core.Runtime.Sequential program ~trace:events in
      check_bool (name ^ ": same outputs across modes") true
        (shown a = shown b))
    [ "mouse"; "counter"; "relative"; "wordpairs"; "poly" ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "examples"
    [
      ( "felm files",
        [
          tc "all type-check" `Quick test_all_check;
          tc "mouse" `Quick test_mouse;
          tc "counter" `Quick test_counter;
          tc "relative (Fig. 7)" `Quick test_relative;
          tc "wordpairs" `Quick test_wordpairs;
          tc "async_search responsive" `Quick test_async_search_is_responsive;
          tc "poly (let-polymorphism)" `Quick test_poly;
          tc "history (lists)" `Quick test_history;
          tc "all compile to valid JS" `Quick test_all_compile_to_valid_js;
          tc "all emit DOT" `Quick test_all_emit_dot;
          tc "modes agree (sync programs)" `Quick test_sequential_mode_agrees_when_sync;
        ] );
    ]
