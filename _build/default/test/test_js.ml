(* Tests for the Elm-to-JavaScript compiler (paper Section 5): JS AST
   printing, identifier sanitization, code generation shape, whole-program
   emission, HTML pages, and structural validation of everything emitted. *)

module J = Felm_js.Js_ast
module Emit = Felm_js.Emit
module Check = Felm_js.Js_check

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains haystack needle =
  let n = String.length needle in
  let m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: expected %S in output" what needle

let expr_str e =
  let buf = Buffer.create 64 in
  J.print_expr buf e;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JS AST printer *)

let test_print_literals () =
  check_str "int" "42" (expr_str (J.Eint 42));
  check_str "float" "2.5" (expr_str (J.Enum 2.5));
  check_str "whole float keeps a dot" "3.0" (expr_str (J.Enum 3.0));
  check_str "string escaped" "\"a\\\"b\\n\"" (expr_str (J.Estr "a\"b\n"));
  check_str "null" "null" (expr_str J.Enull);
  check_str "bool" "true" (expr_str (J.Ebool true))

let test_print_structures () =
  check_str "array" "[1, 2]" (expr_str (J.Earray [ J.Eint 1; J.Eint 2 ]));
  check_str "member" "a.b" (expr_str (J.Emember (J.Evar "a", "b")));
  check_str "index" "p[0]" (expr_str (J.Eindex (J.Evar "p", J.Eint 0)));
  check_str "binop parenthesized" "(1 + 2)"
    (expr_str (J.Ebinop ("+", J.Eint 1, J.Eint 2)));
  check_str "cond" "(c ? 1 : 2)"
    (expr_str (J.Econd (J.Evar "c", J.Eint 1, J.Eint 2)))

let test_print_functions () =
  check_str "function" "function(x) { return x;\n }"
    (expr_str (J.Efun ([ "x" ], [ J.Sreturn (J.Evar "x") ])));
  check_str "iife call wraps function" "(function() {  })()"
    (expr_str (J.iife []))

let test_sanitize () =
  check_str "dotted" "_Mouse$x" (Emit.sanitize "Mouse.x");
  check_str "plain" "_foo" (Emit.sanitize "foo");
  check_str "fresh suffix" "_x$f3" (Emit.sanitize "x%3");
  check_bool "reserved avoided" true (Emit.sanitize "var" <> "var")

(* ------------------------------------------------------------------ *)
(* Code generation shape *)

let compile_src src = Emit.compile_program (Felm.Program.of_source src)

let test_compile_lift () =
  let js = compile_src "main = lift (\\x -> x * 2) Mouse.x" in
  check_contains "lift call" js "R.lift(G, ";
  check_contains "input registration" js "R.input(G, \"Mouse.x\"";
  check_contains "display" js "R.display(G, main)";
  check_contains "browser wiring" js "R.wireBrowserEvents(G)"

let test_compile_foldp_async () =
  let js =
    compile_src "main = async (foldp (\\k c -> c + 1) 0 Keyboard.lastPressed)"
  in
  check_contains "foldp" js "R.foldp(G, ";
  check_contains "async" js "R.async(G, "

let test_compile_sharing () =
  (* let-bound signals become a single JS binding used twice *)
  let js =
    compile_src "s = lift (\\x -> x + 1) Mouse.x\nmain = lift2 (\\a b -> a + b) s s"
  in
  check_contains "binding function" js "function(_s)";
  (* R.lift for the shared node appears exactly twice: inner + outer *)
  let count_occurrences needle hay =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length hay then acc
      else if String.sub hay i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int)
    "two lift calls (program), none duplicated" 2
    (count_occurrences "R.lift(G," (String.concat "" (String.split_on_char ' ' js)))

let test_compile_operators () =
  let js = compile_src "main = if 7 / 2 == 3 then 1 else 0" in
  check_contains "integer division" js "Math.trunc";
  check_contains "deep equality" js "R.eq";
  let js2 = compile_src "main = show (1 < 2)" in
  check_contains "comparison via cmp" js2 "R.cmp";
  check_contains "show" js2 "R.show"

let test_compile_prims () =
  let js = compile_src "main = translate \"hello\"" in
  check_contains "prim call" js "R.prims.translate"

let test_compile_input_defaults () =
  let js = compile_src "input words : signal string = \"start\"\nmain = lift (\\w -> w) words" in
  check_contains "declared default" js "\"start\"";
  check_contains "input by name" js "R.input(G, \"words\""

(* ------------------------------------------------------------------ *)
(* Validation of emitted output *)

let sample_programs =
  [
    "main = 42";
    "main = lift (\\x -> show x) Mouse.x";
    "main = lift2 (\\y z -> y * 100 / z) Mouse.x Window.width";
    "main = foldp (\\k c -> c + 1) 0 Keyboard.lastPressed";
    "input words : signal string = \"\"\n\
     pairs = lift2 (\\a b -> (a, b)) words (lift translate words)\n\
     main = pairs";
    "slow x = work 50.0 x\n\
     main = lift2 (\\a b -> (a, b)) Mouse.x (async (lift slow Mouse.y))";
    "main = if 1 && 0 || 1 then \"yes\" else \"no\"";
    "main = show ((1, (2.5, \"three\")), ())";
  ]

let test_emitted_js_well_formed () =
  List.iter
    (fun src ->
      match Check.well_formed (compile_src src) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "invalid JS for %S: %s" src msg)
    sample_programs

let test_runtime_well_formed () =
  match Check.well_formed Felm_js.Runtime_js.source with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "runtime source invalid: %s" msg

let test_emission_deterministic () =
  List.iter
    (fun src ->
      check_bool "same output twice" true (compile_src src = compile_src src))
    sample_programs

let test_html_page () =
  let page = Felm_js.Html.page ~title:"x<y" (Felm.Program.of_source "main = 1") in
  check_contains "doctype" page "<!DOCTYPE html>";
  check_contains "escaped title" page "x&lt;y";
  check_contains "mount point" page "id=\"felm-main\"";
  check_contains "script" page "<script>";
  check_contains "runtime" page "var ElmRuntime"

(* ------------------------------------------------------------------ *)
(* JS tokenizer itself *)

let test_check_accepts () =
  List.iter
    (fun src ->
      match Check.well_formed src with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "rejected valid JS %S: %s" src msg)
    [
      "var x = 1; // comment";
      "/* multi\nline */ f(a, b)[0].c";
      "\"str with \\\" escape\"";
      "var s = 'single'; var t = `template\nwith newline`;";
      "1e+10 + 0x1f";
    ]

let test_check_rejects () =
  List.iter
    (fun src ->
      match Check.well_formed src with
      | Ok () -> Alcotest.failf "accepted invalid JS %S" src
      | Error _ -> ())
    [
      "f(";
      "f(]";
      "\"unterminated";
      "/* unterminated";
      "}";
      "var s = \"line\nbreak\"";
      "weird # char";
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "felm-js"
    [
      ( "printer",
        [
          tc "literals" `Quick test_print_literals;
          tc "structures" `Quick test_print_structures;
          tc "functions" `Quick test_print_functions;
          tc "sanitize" `Quick test_sanitize;
        ] );
      ( "codegen",
        [
          tc "lift" `Quick test_compile_lift;
          tc "foldp/async" `Quick test_compile_foldp_async;
          tc "sharing" `Quick test_compile_sharing;
          tc "operators" `Quick test_compile_operators;
          tc "prims" `Quick test_compile_prims;
          tc "input defaults" `Quick test_compile_input_defaults;
        ] );
      ( "validation",
        [
          tc "emitted programs" `Quick test_emitted_js_well_formed;
          tc "runtime source" `Quick test_runtime_well_formed;
          tc "deterministic" `Quick test_emission_deterministic;
          tc "html page" `Quick test_html_page;
        ] );
      ( "tokenizer",
        [
          tc "accepts" `Quick test_check_accepts;
          tc "rejects" `Quick test_check_rejects;
        ] );
    ]
