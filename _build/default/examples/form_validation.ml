(* Forms with client-side error checking — another of the Section 5
   applications. Two text fields (name, email) validate reactively: the
   error display is a pure function of the current field values, recomputed
   per keystroke by the signal graph, and the submit button only counts
   presses made while the form is valid (keep_when).

   Run with:  dune exec examples/form_validation.exe *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module World = Elm_std.World
module Input = Elm_std.Input_widgets
module E = Gui.Element

let validate_name name =
  if name = "" then Error "name is required"
  else if String.length name < 2 then Error "name is too short"
  else Ok name

let validate_email email =
  if email = "" then Error "email is required"
  else if not (String.contains email '@') then Error "email needs an @"
  else Ok email

let describe = function Ok _ -> "ok" | Error e -> "ERROR: " ^ e

let () =
  print_endline "== Reactive form validation ==";
  let submissions = ref [] in
  ignore
    (World.run (fun () ->
         let name_field = Input.text "Name" in
         let email_field = Input.text "Email" in
         let submit = Input.button "Submit" in
         let validity =
           Signal.lift2
             (fun n e -> (validate_name n, validate_email e))
             name_field.Input.value email_field.Input.value
         in
         let is_valid =
           Signal.lift (fun (n, e) -> Result.is_ok n && Result.is_ok e) validity
         in
         (* only count submit presses made while the form is valid: sample
            the validity at each press, then count the true samples.
            (keep_when would also fire when the gate opens — Elm's rising-
            edge semantics — which is not what a submit button wants.) *)
         let accepted =
           Signal.count_if Fun.id (Signal.sample_on submit.Input.presses is_valid)
         in
         let scene (vn, ve) n_accepted =
           E.flow E.Down
             [
               E.plain_text ("name:  " ^ describe vn);
               E.plain_text ("email: " ^ describe ve);
               E.plain_text (Printf.sprintf "accepted submissions: %d" n_accepted);
             ]
         in
         let main = Signal.lift2 scene validity accepted in
         let rt = Runtime.start main in
         Runtime.on_change rt (fun t e ->
             Printf.printf "[%4.1fs]\n%s\n\n" t (Gui.Ascii_render.render e));
         Runtime.on_change rt (fun t _ -> submissions := t :: !submissions);
         World.script
           [
             (1.0, fun () -> submit.Input.press rt);
             (* invalid: ignored *)
             (2.0, fun () -> name_field.Input.set rt "Ada");
             (3.0, fun () -> email_field.Input.set rt "ada");
             (* still invalid *)
             (4.0, fun () -> submit.Input.press rt);
             (5.0, fun () -> email_field.Input.set rt "ada@lovelace.org");
             (6.0, fun () -> submit.Input.press rt);
             (* accepted *)
           ];
         rt));
  print_endline "(only the final submit was accepted)"
