examples/form_validation.ml: Elm_core Elm_std Fun Gui Printf Result String
