examples/image_search.mli:
