examples/image_search.ml: Elm_core Elm_std Gui Printf
