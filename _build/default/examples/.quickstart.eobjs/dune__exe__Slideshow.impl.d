examples/slideshow.ml: Elm_core Elm_std Gui List Printf
