examples/quickstart.mli:
