examples/form_validation.mli:
