examples/pong.ml: Buffer Elm_core Elm_std Float Gui Printf
