examples/todo.mli:
