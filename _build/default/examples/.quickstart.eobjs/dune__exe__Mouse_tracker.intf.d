examples/mouse_tracker.mli:
