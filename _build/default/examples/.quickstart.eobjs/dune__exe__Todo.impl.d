examples/todo.ml: Elm_core Elm_std Gui List Printf
