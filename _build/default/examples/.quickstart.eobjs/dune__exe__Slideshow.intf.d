examples/slideshow.mli:
