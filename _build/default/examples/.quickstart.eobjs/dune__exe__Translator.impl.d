examples/translator.ml: Cml Elm_core Elm_std Felm Printf
