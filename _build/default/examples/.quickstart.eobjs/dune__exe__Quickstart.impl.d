examples/quickstart.ml: Gui List Printf String
