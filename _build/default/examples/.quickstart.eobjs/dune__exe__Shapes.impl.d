examples/shapes.ml: Gui List Printf
