examples/graphing.mli:
