examples/clock.mli:
