examples/translator.mli:
