examples/graphing.ml: Cml Elm_core Elm_std Float Gui List Printf
