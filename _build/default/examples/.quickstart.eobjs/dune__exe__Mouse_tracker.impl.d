examples/mouse_tracker.ml: Elm_core Elm_std Format Gui Printf
