examples/shapes.mli:
