examples/pong.mli:
