(* The "nine-line analog clock" the paper mentions among the Elm website
   examples (Section 5), built from Time.every + collage. The reactive part
   really is nine lines; the rest is printing.

   Run with:  dune exec examples/clock.exe *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module World = Elm_std.World
module Time = Elm_std.Time
module E = Gui.Element
module F = Gui.Form
module Color = Gui.Color

(* --- the nine lines --- *)
let hand length turn_fraction color =
  let angle = F.degrees (90.0 -. (360.0 *. turn_fraction)) in
  F.traced (F.solid color)
    (F.segment (0.0, 0.0) (length *. cos angle, length *. sin angle))

let clock_face seconds =
  E.collage 120 120
    [
      F.outlined (F.solid Color.charcoal) (F.circle 55.0);
      hand 50.0 (seconds /. 60.0) Color.red;
      hand 40.0 (seconds /. 3600.0) Color.black;
      hand 30.0 (seconds /. 43200.0) Color.gray;
    ]
(* --- end of the nine lines --- *)

let () =
  print_endline "== Analog clock: lift clockFace (Time.every second) ==";
  ignore
    (World.run (fun () ->
         let timer = Time.every (15.0 *. Time.second) in
         let main = Signal.lift clock_face (Time.signal timer) in
         let rt = Runtime.start main in
         Runtime.on_change rt (fun t face ->
             let forms =
               match E.prim_of face with E.Prim_collage fs -> fs | _ -> []
             in
             Printf.printf "\n[t=%4.0fs] clock frame (SVG, %d forms):\n" t
               (List.length forms);
             if t <= 30.0 then
               print_endline
                 (Gui.Svg_render.render_forms ~width:120 ~height:120 forms)
             else print_endline "  (svg elided)");
         Time.drive timer rt ~until:60.0;
         rt))
