(* Graphing: Section 5 lists "a graphing library that handles cartesian and
   radial coordinates" among the applications built on Elm's functional
   graphics. This example plots a live signal: the history of the mouse's
   x-coordinate, collected with foldp, rendered as a cartesian line plot and
   a radial plot, written to SVG.

   Run with:  dune exec examples/graphing.exe *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module World = Elm_std.World
module Mouse = Elm_std.Mouse
module E = Gui.Element
module Plot = Gui.Plot

let () =
  print_endline "== Graphing a signal: plot (history Mouse.x) ==";
  let final = ref E.empty in
  ignore
    (World.run (fun () ->
         (* collect (time, x) samples with foldp *)
         let history =
           Signal.foldp
             (fun x acc -> (Cml.now (), float_of_int x) :: acc)
             [] Mouse.x
         in
         let plot samples =
           let points = List.rev_map (fun (t, x) -> (t, x)) samples in
           Plot.cartesian ~width:320 ~height:200 ~draw_points:true
             [ Plot.series ~label:"Mouse.x over time" ~color:Gui.Color.blue points ]
         in
         let main = Signal.lift plot history in
         let rt = Runtime.start main in
         Runtime.on_change rt (fun _ e -> final := e);
         World.script
           (List.mapi
              (fun i x -> (0.25 *. float_of_int (i + 1), fun () -> Mouse.move rt (x, 0)))
              [ 10; 40; 25; 70; 55; 90; 60; 120 ]);
         rt));
  let collage = !final in
  Printf.printf "final plot element: %dx%d\n" (E.width_of collage)
    (E.height_of collage);
  let svg_of e =
    match E.prim_of e with
    | E.Prim_flow (_, plot :: _) -> (
      match E.prim_of plot with
      | E.Prim_collage forms ->
        Gui.Svg_render.render_forms ~width:(E.width_of plot)
          ~height:(E.height_of plot) forms
      | _ -> "")
    | _ -> ""
  in
  let oc = open_out "mouse_plot.svg" in
  output_string oc (svg_of collage);
  close_out oc;
  print_endline "(cartesian plot written to mouse_plot.svg)";

  (* and a radial plot of a rose curve, r = cos(3 theta) *)
  let rose =
    List.init 121 (fun i ->
        let theta = Float.pi *. float_of_int i /. 60.0 in
        (theta, Float.abs (cos (3.0 *. theta))))
  in
  let radial = Plot.radial [ Plot.series ~label:"r = |cos 3t|" rose ] in
  let oc = open_out "rose_plot.svg" in
  output_string oc (svg_of radial);
  close_out oc;
  print_endline "(radial plot written to rose_plot.svg)";
  Printf.printf "radial element: %dx%d\n" (E.width_of radial) (E.height_of radial)
