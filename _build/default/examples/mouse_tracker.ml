(* Example 2 (Fig. 2): main = lift asText Mouse.position.

   A scripted user sweeps the mouse; every display update is printed with
   its virtual timestamp. Run with:  dune exec examples/mouse_tracker.exe *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module World = Elm_std.World
module Mouse = Elm_std.Mouse
module E = Gui.Element

let () =
  print_endline "== Example 2 (Fig. 2): main = lift asText Mouse.position ==";
  let rt =
    World.run (fun () ->
        let main =
          Signal.lift
            (fun (x, y) -> E.as_text (Printf.sprintf "(%d,%d)" x y))
            Mouse.position
        in
        let rt = Runtime.start main in
        Runtime.on_change rt (fun t element ->
            Printf.printf "[%5.2fs] screen now shows: %s\n" t
              (Gui.Ascii_render.render element));
        World.script
          [
            (0.25, fun () -> Mouse.move rt (10, 4));
            (0.50, fun () -> Mouse.move rt (25, 12));
            (0.75, fun () -> Mouse.move rt (40, 30));
            (1.00, fun () -> Mouse.move rt (55, 31));
          ];
        rt)
  in
  let stats = Runtime.stats rt in
  Format.printf "\nruntime counters: %a@." Elm_core.Stats.pp stats
