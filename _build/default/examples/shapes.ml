(* Fig. 12: creating and combining shapes with the collage API.

     square   = rect 70 70
     pentagon = ngon 5 20
     circle   = oval 50 50
     zigzag   = path [ (0,0), (10,10), (0,30), (10,40) ]
     main = collage 140 140
       [ filled green pentagon,
         outlined (dashed blue) circle,
         rotate (degrees 70) (outlined (solid black) square),
         move 40 40 (trace (solid red) zigzag) ]

   Writes the collage as SVG to shapes.svg and prints it.
   Run with:  dune exec examples/shapes.exe *)

module E = Gui.Element
module F = Gui.Form
module Color = Gui.Color

let () =
  let square = F.rect 70.0 70.0 in
  let pentagon = F.ngon 5 20.0 in
  let circle = F.oval 50.0 50.0 in
  let zigzag = F.path [ (0.0, 0.0); (10.0, 10.0); (0.0, 30.0); (10.0, 40.0) ] in
  let main =
    E.collage 140 140
      [
        F.filled Color.green pentagon;
        F.outlined (F.dashed Color.blue) circle;
        F.rotate (F.degrees 70.0) (F.outlined (F.solid Color.black) square);
        F.move (40.0, 40.0) (F.traced (F.solid Color.red) zigzag);
      ]
  in
  let forms = match E.prim_of main with E.Prim_collage fs -> fs | _ -> [] in
  let svg = Gui.Svg_render.render_forms ~width:140 ~height:140 forms in
  print_endline "== Fig. 12: shapes combined with collage ==";
  print_endline svg;
  let oc = open_out "shapes.svg" in
  output_string oc svg;
  close_out oc;
  print_endline "\n(written to shapes.svg)";
  List.iteri
    (fun i f ->
      match F.bounding_box f with
      | Some ((lx, ly), (hx, hy)) ->
        Printf.printf "form %d bounding box: (%.1f,%.1f) .. (%.1f,%.1f)\n" i lx
          ly hx hy
      | None -> ())
    forms
