(* Section 3.3.2's wordPairs example (Fig. 8): why FRP must be synchronous,
   and where async is safe.

     wordPairs = lift2 (,) words (lift toFrench words)           -- Fig. 8(a)
     lift2 (,) wordPairs Mouse.position                          -- Fig. 8(b)
     lift2 (,) (async wordPairs) Mouse.position                  -- Fig. 8(c)

   Run with:  dune exec examples/translator.exe *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module World = Elm_std.World
module Mouse = Elm_std.Mouse

let translation_cost = 5.0

let armed = ref false

let to_french w =
  if !armed then Cml.sleep translation_cost;
  Felm.Builtins.translate_word w

let word_pairs words =
  Signal.lift2 ~name:"wordPairs" (fun w f -> (w, f)) words
    (Signal.lift ~name:"toFrench" to_french words)

let print_graph () =
  armed := false;
  (* defaults are computed during construction; no scheduler here *)
  let words = Signal.input ~name:"words" "" in
  let program = Signal.lift2 ~name:"scene" (fun p m -> (p, m))
      (Signal.async (word_pairs words)) Mouse.position in
  print_endline "-- Fig. 8(c) as Graphviz DOT --";
  print_endline (Signal.to_dot ~label:"Fig. 8(c): async wordPairs" program)

let session ~use_async =
  Printf.printf "\n-- %s --\n"
    (if use_async then "Fig. 8(c): async wordPairs, mouse can jump ahead"
     else "Fig. 8(b): synchronous, mouse waits for the translator");
  armed := false;
  ignore
    (World.run (fun () ->
         let words = Signal.input ~name:"words" "" in
         let pairs = word_pairs words in
         let pairs = if use_async then Signal.async pairs else pairs in
         let main = Signal.lift2 (fun p m -> (p, m)) pairs Mouse.position in
         let rt = Runtime.start main in
         armed := true;
         Runtime.on_change rt (fun t ((en, fr), (mx, my)) ->
             Printf.printf "[%6.2fs] pair=(%s,%s) mouse=(%d,%d)\n" t en fr mx my);
         World.script
           [
             (1.0, fun () -> Runtime.inject rt words "hello");
             (2.0, fun () -> Mouse.move rt (5, 5));
             (3.0, fun () -> Runtime.inject rt words "world");
             (4.0, fun () -> Mouse.move rt (9, 9));
           ];
         rt))

let () =
  print_endline "== wordPairs: synchronization vs. asynchrony (Section 3.3.2) ==";
  Printf.printf "(each translation costs %.0fs of virtual time)\n" translation_cost;
  session ~use_async:false;
  session ~use_async:true;
  print_endline "";
  print_graph ()
