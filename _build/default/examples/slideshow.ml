(* Fig. 14: a slide show reacting to three different user inputs.

     pics = [ "shells.jpg", "car.jpg", "book.jpg" ]
     display i = image 475 315 (ith (i `mod` length pics) pics)
     index1 = count Mouse.clicks
     index2 = count (Time.every (3 * second))
     index3 = count Keyboard.lastPressed
     main = lift display index1

   Run with:  dune exec examples/slideshow.exe *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module World = Elm_std.World
module Mouse = Elm_std.Mouse
module Keyboard = Elm_std.Keyboard
module Time = Elm_std.Time
module E = Gui.Element

let pics = [ "shells.jpg"; "car.jpg"; "book.jpg" ]

let display i = E.image 475 315 (List.nth pics (i mod List.length pics))

let show_slide t element =
  match E.prim_of element with
  | E.Prim_image { src; _ } -> Printf.printf "[%5.2fs] showing %s\n" t src
  | _ -> ()

let with_clicks () =
  print_endline "\n-- index1 = count Mouse.clicks --";
  ignore
    (World.run (fun () ->
         let main = Signal.lift display (Signal.count Mouse.clicks) in
         let rt = Runtime.start main in
         Runtime.on_change rt show_slide;
         World.script
           (List.map (fun t -> (t, fun () -> Mouse.click rt)) [ 0.5; 1.0; 1.5; 2.0 ]);
         rt))

let with_timer () =
  print_endline "\n-- index2 = count (Time.every (3 * second)) --";
  ignore
    (World.run (fun () ->
         let timer = Time.every (3.0 *. Time.second) in
         let main = Signal.lift display (Signal.count (Time.signal timer)) in
         let rt = Runtime.start main in
         Runtime.on_change rt show_slide;
         Time.drive timer rt ~until:10.0;
         rt))

let with_keys () =
  print_endline "\n-- index3 = count Keyboard.lastPressed --";
  ignore
    (World.run (fun () ->
         let main = Signal.lift display (Signal.count Keyboard.last_pressed) in
         let rt = Runtime.start main in
         Runtime.on_change rt show_slide;
         World.script
           [
             (0.3, fun () -> Keyboard.tap rt 32);
             (0.6, fun () -> Keyboard.tap rt 32);
           ];
         rt))

let () =
  print_endline "== Fig. 14: a slide show from three kinds of input ==";
  with_clicks ();
  with_timer ();
  with_keys ()
