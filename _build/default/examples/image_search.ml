(* Example 3: fetch an image for a tag from a slow web service while the
   mouse position keeps updating.

     (inputField, tags) = Input.text "Enter a tag"
     getImage tags = lift (fittedImage 300 200) (syncGet (lift requestTag tags))
     scene input pos img = flow down [ input, asText pos, img ]
     main = lift3 scene inputField Mouse.position (async (getImage tags))

   Runs the program twice — with and without `async` — and prints the
   display timeline of each, showing that only the async version stays
   responsive. Run with:  dune exec examples/image_search.exe *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module World = Elm_std.World
module Mouse = Elm_std.Mouse
module Input = Elm_std.Input_widgets
module Http = Elm_std.Http
module E = Gui.Element

let fitted_image_of_response resp =
  match resp with
  | Http.Waiting -> E.as_text "(fetching...)"
  | Http.Success body -> (
    (* the server answers with JSON containing the image URL (the paper:
       requestTag -> syncGet -> "a signal of JSON objects") *)
    match Http.first_photo_url body with
    | Some url -> E.fitted_image 300 200 url
    | None -> E.as_text "(malformed response)")
  | Http.Failure (code, _) -> E.as_text (Printf.sprintf "(error %d)" code)

let describe_scene scene =
  (* one-line summary of what the screen shows *)
  match E.prim_of scene with
  | E.Prim_flow (_, [ _input; pos; img ]) ->
    let text_of e =
      match E.prim_of e with
      | E.Prim_text t -> Gui.Text.to_string t
      | E.Prim_fitted_image _ -> "[image]"
      | _ -> "?"
    in
    Printf.sprintf "pos=%s img=%s" (text_of pos) (text_of img)
  | _ -> "?"

let session ~use_async =
  Printf.printf "\n-- %s --\n"
    (if use_async then "with async (the paper's program)"
     else "without async (global ordering enforced)");
  let rt =
    World.run (fun () ->
        let input_field = Input.text "Enter a tag" in
        let get_image tags =
          Signal.lift fitted_image_of_response (Http.send_get Http.flickr tags)
        in
        let image = get_image input_field.Input.value in
        let image = if use_async then Signal.async image else image in
        let scene field pos img =
          E.flow E.Down [ field; E.as_text (Printf.sprintf "(%d,%d)" (fst pos) (snd pos)); img ]
        in
        let main = Signal.lift3 scene input_field.Input.field Mouse.position image in
        let rt = Runtime.start main in
        Runtime.on_change rt (fun t scene ->
            Printf.printf "[%5.2fs] %s\n" t (describe_scene scene));
        World.script
          [
            (1.0, fun () -> input_field.Input.set rt "shells");
            (1.2, fun () -> Mouse.move rt (10, 10));
            (1.5, fun () -> Mouse.move rt (20, 20));
            (1.8, fun () -> Mouse.move rt (30, 30));
          ];
        rt)
  in
  ignore rt

let () =
  print_endline "== Example 3: image search over a 2s-latency web service ==";
  session ~use_async:false;
  session ~use_async:true;
  print_endline
    "\nWithout async, mouse positions queue behind the fetch (all updates at\n\
     t>=3s); with async they appear immediately and the image catches up."
