(* Pong: "Elm has also been used to make Pong and other games, which require
   highly interactive GUIs" (Section 5).

   The game state is a foldp over merged inputs (frame ticks and paddle
   commands from Keyboard.arrows), the classic Elm game architecture:

     input = merge (FrameTick <$ Time.fps 10) (Paddle <$> Keyboard.arrows)
     state = foldp step initial_state input
     main  = lift render state

   A scripted player defends for a while; frames render as ASCII.
   Run with:  dune exec examples/pong.exe *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module World = Elm_std.World
module Keyboard = Elm_std.Keyboard
module Time = Elm_std.Time
module E = Gui.Element

let width = 40
let height = 12

type state = {
  ball_x : int;
  ball_y : int;
  dx : int;
  dy : int;
  paddle : int;  (** y of paddle top, left wall; 3 cells tall *)
  score : int;
  balls_lost : int;
}

let initial =
  { ball_x = 20; ball_y = 6; dx = -1; dy = 1; paddle = 5; score = 0; balls_lost = 0 }

type event =
  | Tick
  | Move of int  (** -1 up, +1 down *)

let step event st =
  match event with
  | Move d -> { st with paddle = max 0 (min (height - 3) (st.paddle + d)) }
  | Tick ->
    let x = st.ball_x + st.dx in
    let y = st.ball_y + st.dy in
    let dy = if y <= 0 || y >= height - 1 then -st.dy else st.dy in
    let y = max 0 (min (height - 1) y) in
    if x <= 0 then
      if y >= st.paddle && y < st.paddle + 3 then
        (* bounce off the paddle *)
        { st with ball_x = 1; ball_y = y; dx = 1; dy; score = st.score + 1 }
      else
        (* missed: serve a new ball *)
        { st with ball_x = width / 2; ball_y = 3; dx = -1; dy = 1;
          balls_lost = st.balls_lost + 1 }
    else if x >= width - 1 then { st with ball_x = width - 2; ball_y = y; dx = -1; dy }
    else { st with ball_x = x; ball_y = y; dx = st.dx; dy }

let render st =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "score: %d   lost: %d\n" st.score st.balls_lost);
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let c =
        if x = st.ball_x && y = st.ball_y then 'o'
        else if x = 0 && y >= st.paddle && y < st.paddle + 3 then '|'
        else if y = 0 || y = height - 1 then '-'
        else ' '
      in
      Buffer.add_char buf c
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let () =
  print_endline "== Pong on the signal runtime ==";
  let final = ref initial in
  ignore
    (World.run (fun () ->
         let fps = Time.fps 10.0 in
         let ticks = Signal.lift (fun _ -> Tick) (Time.signal fps) in
         let moves =
           Signal.lift (fun (_, dy) -> Move (-dy)) Keyboard.arrows
         in
         let events = Signal.merge moves ticks in
         let state = Signal.foldp step initial events in
         let main = Signal.lift (fun st -> (st, E.as_text (render st))) state in
         let rt = Runtime.start main in
         Runtime.on_change rt (fun t (st, _) ->
             final := st;
             (* print a frame twice a second *)
             if Float.rem t 0.5 < 0.05 then
               Printf.printf "[t=%4.1f]\n%s\n" t (render st));
         Time.drive fps rt ~until:6.0;
         (* the scripted player chases the ball *)
         World.script
           [
             (0.9, fun () -> Keyboard.tap rt Keyboard.up_arrow);
             (1.6, fun () -> Keyboard.tap rt Keyboard.up_arrow);
             (2.8, fun () -> Keyboard.tap rt Keyboard.down_arrow);
             (4.0, fun () -> Keyboard.tap rt Keyboard.down_arrow);
             (5.0, fun () -> Keyboard.tap rt Keyboard.up_arrow);
           ];
         rt));
  Printf.printf "final: %d returns, %d balls lost\n" !final.score
    !final.balls_lost
