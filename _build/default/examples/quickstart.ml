(* Quickstart: the paper's Example 1 (Fig. 1).

     content = flow down [ plainText "Welcome to Elm!"
                         , image 150 50 "flower.jpg"
                         , asText (reverse [1..9]) ]
     main = container 180 100 middle content

   Prints the layout as ASCII art and as the HTML page the real Elm runtime
   would build. Run with:  dune exec examples/quickstart.exe *)

module E = Gui.Element

let () =
  let reversed_list =
    "["
    ^ String.concat "," (List.rev_map string_of_int [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ])
    ^ "]"
  in
  let content =
    E.flow E.Down
      [
        E.plain_text "Welcome to Elm!";
        E.image 150 50 "flower.jpg";
        E.as_text reversed_list;
      ]
  in
  let main = E.container 180 100 E.Middle content in
  print_endline "== Example 1 (Fig. 1): purely functional layout ==";
  Printf.printf "content: %dx%d, container: %dx%d\n\n"
    (E.width_of content) (E.height_of content) (E.width_of main)
    (E.height_of main);
  print_endline (Gui.Ascii_render.render main);
  print_endline "\n-- The same element as HTML (truncated) --";
  let html = Gui.Html_render.to_page ~title:"Example 1" main in
  print_endline (String.sub html 0 (min 400 (String.length html)));
  Printf.printf "... (%d bytes total)\n" (String.length html)
