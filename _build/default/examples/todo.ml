(* A todo-list application in the classic Elm architecture, a decade before
   it had the name: user interactions become one merged event signal, the
   model is a foldp over it, and the view is a pure function of the model.

     events = merge (Add <$ sampleOn addClicks field.value)
                    (merge (Toggle <$> digitKeys) (ClearDone <$ clearClicks))
     model  = foldp step [] events
     main   = lift render model

   Run with:  dune exec examples/todo.exe *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module World = Elm_std.World
module Keyboard = Elm_std.Keyboard
module Input = Elm_std.Input_widgets
module E = Gui.Element

type item = {
  title : string;
  completed : bool;
}

type event =
  | Add of string
  | Toggle of int  (** 1-based item index. *)
  | Clear_done
  | Noop

let step event model =
  match event with
  | Add "" | Noop -> model
  | Add title -> model @ [ { title; completed = false } ]
  | Toggle n ->
    List.mapi
      (fun i item ->
        if i + 1 = n then { item with completed = not item.completed } else item)
      model
  | Clear_done -> List.filter (fun item -> not item.completed) model

let render model =
  let remaining = List.length (List.filter (fun i -> not i.completed) model) in
  E.flow E.Down
    (E.plain_text (Printf.sprintf "todo (%d remaining)" remaining)
     :: E.plain_text "-----------------------"
     :: List.mapi
          (fun i item ->
            E.plain_text
              (Printf.sprintf "%d.[%s] %s" (i + 1)
                 (if item.completed then "x" else " ")
                 item.title))
          model)

let () =
  print_endline "== Todo: merged events -> foldp model -> pure view ==";
  ignore
    (World.run (fun () ->
         let field = Input.text "What needs doing?" in
         let add = Input.button "Add" in
         let clear = Input.button "Clear completed" in
         let adds =
           Signal.lift (fun title -> Add title)
             (Signal.sample_on add.Input.presses field.Input.value)
         in
         let toggles =
           Signal.lift
             (fun k -> if k >= 49 && k <= 57 then Toggle (k - 48) else Noop)
             Keyboard.last_pressed
         in
         let clears = Signal.lift (fun () -> Clear_done) clear.Input.presses in
         let events = Signal.merge adds (Signal.merge toggles clears) in
         let model = Signal.foldp step [] events in
         let main = Signal.lift render model in
         let rt = Runtime.start main in
         Runtime.on_change rt (fun t view ->
             Printf.printf "[%4.1fs]\n%s\n\n" t (Gui.Ascii_render.render view));
         World.script
           [
             (1.0, fun () -> field.Input.set rt "buy milk");
             (1.1, fun () -> add.Input.press rt);
             (2.0, fun () -> field.Input.set rt "write FRP paper");
             (2.1, fun () -> add.Input.press rt);
             (3.0, fun () -> Keyboard.tap rt 49);
             (* toggle item 1 *)
             (4.0, fun () -> clear.Input.press rt);
           ];
         rt));
  print_endline "(item 1 was completed and cleared)"
