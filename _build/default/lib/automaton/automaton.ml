module Signal = Elm_core.Signal

type ('a, 'b) t = Step of ('a -> ('a, 'b) t * 'b)

let step input (Step f) = f input

let rec pure f = Step (fun a -> (pure f, f a))

let rec init f state = Step (fun a ->
    let state' = f a state in
    (init f state', state'))

(* Verbatim from Section 4.3:
     run automaton base inputs =
       let step' input (Step f, _) = f input
       in lift snd (foldp step' (automaton, base) inputs) *)
let run automaton base inputs =
  let step' input (Step f, _) = f input in
  Signal.lift ~name:"run" snd (Signal.foldp step' (automaton, base) inputs)

let run_list automaton inputs =
  let rec go acc auto = function
    | [] -> List.rev acc
    | x :: rest ->
      let auto', y = step x auto in
      go (y :: acc) auto' rest
  in
  go [] automaton inputs

(* Also verbatim: foldp f base inputs = run (init f base) base inputs *)
let foldp_via_run f base inputs = run (init f base) base inputs

let arr = pure

let rec ( >>> ) (Step f) (Step g) =
  Step (fun a ->
      let f', b = f a in
      let g', c = g b in
      (f' >>> g', c))

let ( <<< ) g f = f >>> g

let rec first (Step f) =
  Step (fun (a, c) ->
      let f', b = f a in
      (first f', (b, c)))

let rec second (Step f) =
  Step (fun (c, a) ->
      let f', b = f a in
      (second f', (c, b)))

let rec ( *** ) (Step f) (Step g) =
  Step (fun (a, c) ->
      let f', b = f a in
      let g', d = g c in
      (f' *** g', (b, d)))

let rec ( &&& ) (Step f) (Step g) =
  Step (fun a ->
      let f', b = f a in
      let g', c = g a in
      (f' &&& g', (b, c)))

let rec combine autos =
  Step (fun a ->
      let stepped = List.map (step a) autos in
      (combine (List.map fst stepped), List.map snd stepped))

let rec loop state (Step f) =
  Step (fun a ->
      let f', (b, state') = f (a, state) in
      (loop state' f', b))

(* Written as a syntactic value so the type generalizes ('a, int) t. *)
let rec count_from c = Step (fun _ -> (count_from (c + 1), c + 1))
let count = Step (fun _ -> (count_from 1, 1))

let average window =
  let push x (queue, sum, len) =
    let queue = queue @ [ x ] in
    let sum = sum +. x in
    if len < window then (queue, sum, len + 1)
    else
      match queue with
      | oldest :: rest -> (rest, sum -. oldest, len)
      | [] -> (queue, sum, len)
  in
  let rec go state =
    Step
      (fun x ->
        let (_, sum, len) as state' = push x state in
        (go state', sum /. float_of_int len))
  in
  go ([], 0.0, 0)
