(** Discrete Arrowized FRP embedded in Elm (paper Section 4.3).

    An [('a, 'b) t] is a signal function: a pure data structure that, given
    an input ['a], produces an output ['b] and its own next step. Because an
    automaton has no innate dependency on inputs, it can be created
    dynamically, collected in lists, and switched in and out of a program —
    all without signals-of-signals. This is the paper's [Automaton] library,
    "based on the naive continuation-based implementation described in the
    first AFRP paper". *)

type ('a, 'b) t = Step of ('a -> ('a, 'b) t * 'b)

val step : 'a -> ('a, 'b) t -> ('a, 'b) t * 'b
(** Feed one input; get the next automaton and the output. *)

val pure : ('a -> 'b) -> ('a, 'b) t
(** A stateless automaton applying the same function forever. *)

val init : ('a -> 'b -> 'b) -> 'b -> ('a, 'b) t
(** [init f b] is a stateful automaton: on input [a] the state [b] becomes
    [f a b], which is also the output. Note the similarity with
    {!Elm_core.Signal.foldp} — the paper defines each in terms of the
    other. *)

val run : ('a, 'b) t -> 'b -> 'a Elm_core.Signal.t -> 'b Elm_core.Signal.t
(** Feed a signal through an automaton, stepping on every change: the
    paper's [run], defined with [foldp] exactly as printed in Section 4.3. *)

val run_list : ('a, 'b) t -> 'a list -> 'b list
(** Step an automaton through a list of inputs (no signals involved);
    convenient for tests and property checks. *)

val foldp_via_run : ('a -> 'b -> 'b) -> 'b -> 'a Elm_core.Signal.t -> 'b Elm_core.Signal.t
(** The other direction of the paper's equivalence: [foldp] defined from
    {!run} and {!init}: [foldp f base inputs = run (init f base) base inputs]. *)

(** {1 Arrow combinators} *)

val ( >>> ) : ('a, 'b) t -> ('b, 'c) t -> ('a, 'c) t
(** Left-to-right composition. *)

val ( <<< ) : ('b, 'c) t -> ('a, 'b) t -> ('a, 'c) t

val arr : ('a -> 'b) -> ('a, 'b) t
(** Synonym for {!pure} (the classic arrow name). *)

val first : ('a, 'b) t -> ('a * 'c, 'b * 'c) t
val second : ('a, 'b) t -> ('c * 'a, 'c * 'b) t

val ( *** ) : ('a, 'b) t -> ('c, 'd) t -> ('a * 'c, 'b * 'd) t
(** Pair two automata side by side. *)

val ( &&& ) : ('a, 'b) t -> ('a, 'c) t -> ('a, 'b * 'c) t
(** Fan out one input to two automata. *)

val combine : ('a, 'b) t list -> ('a, 'b list) t
(** A dynamic collection: step every automaton with the same input. *)

val loop : 'c -> ('a * 'c, 'b * 'c) t -> ('a, 'b) t
(** Feed part of the output back as state on the next step (one-step
    feedback, the discrete analogue of the arrow [loop]). *)

(** {1 Stock automata (the Elm Automaton library)} *)

val count : ('a, int) t
(** Number of inputs seen so far. *)

val average : int -> (float, float) t
(** Sliding average over a window of the given size. *)
