(** Markdown (paper Section 4: "Elm supports JSON data structures and
    Markdown (making text creation easier)").

    A self-contained implementation of the common core: ATX headings,
    paragraphs, unordered and ordered lists, fenced and indented code
    blocks, block quotes, horizontal rules; inline emphasis
    ([*em*]/[**strong**]), inline code, links and images. Renders to HTML
    (what Elm's runtime produces) and to {!Gui.Element} (so markdown can be
    composed into a purely functional layout). *)

type inline =
  | Text of string
  | Emph of inline list
  | Strong of inline list
  | Code of string
  | Link of inline list * string  (** label, url. *)
  | Image of string * string  (** alt, url. *)

type block =
  | Heading of int * inline list  (** level 1-6. *)
  | Paragraph of inline list
  | Code_block of string * string  (** language ("" if none), contents. *)
  | Unordered_list of inline list list
  | Ordered_list of inline list list
  | Quote of block list
  | Rule

val parse : string -> block list

val parse_inline : string -> inline list
(** Parse inline markup only (exposed for tests). *)

val to_html : block list -> string

val render_html : string -> string
(** [to_html (parse s)]. *)

val to_element : string -> Gui.Element.t
(** Markdown as a laid-out element: headings sized by level, code
    monospaced, lists bulleted. *)

val inline_to_text : inline list -> Gui.Text.t
