type inline =
  | Text of string
  | Emph of inline list
  | Strong of inline list
  | Code of string
  | Link of inline list * string
  | Image of string * string

type block =
  | Heading of int * inline list
  | Paragraph of inline list
  | Code_block of string * string
  | Unordered_list of inline list list
  | Ordered_list of inline list list
  | Quote of block list
  | Rule

(* ------------------------------------------------------------------ *)
(* Inline parsing *)

let starts_with s i prefix =
  let n = String.length prefix in
  i + n <= String.length s && String.sub s i n = prefix

(* Find the next occurrence of [delim] at or after [i]; None if absent. *)
let find_delim s i delim =
  let n = String.length delim in
  let limit = String.length s - n in
  let rec go j =
    if j > limit then None
    else if String.sub s j n = delim then Some j
    else go (j + 1)
  in
  go i

let rec parse_inline_range s i stop acc_text acc =
  let flush () =
    if acc_text = "" then acc else Text acc_text :: acc
  in
  if i >= stop then List.rev (flush ())
  else if starts_with s i "**" then
    match find_delim s (i + 2) "**" with
    | Some j when j <= stop - 2 && j > i + 2 ->
      (* at "***" prefer the later closing pair so the inner single '*'
         can match: **a *b*** and ***x*** both nest correctly *)
      let j = if j + 2 <= stop - 1 && j + 2 < String.length s && s.[j + 2] = '*' then j + 1 else j in
      let inner = parse_inline_range s (i + 2) j "" [] in
      parse_inline_range s (j + 2) stop "" (Strong inner :: flush ())
    | Some _ | None ->
      parse_inline_range s (i + 2) stop (acc_text ^ "**") acc
  else
    match s.[i] with
    | '*' -> (
      match find_delim s (i + 1) "*" with
      | Some j when j <= stop - 1 && j > i + 1 ->
        let inner = parse_inline_range s (i + 1) j "" [] in
        parse_inline_range s (j + 1) stop "" (Emph inner :: flush ())
      | Some _ | None -> parse_inline_range s (i + 1) stop (acc_text ^ "*") acc)
    | '`' -> (
      match find_delim s (i + 1) "`" with
      | Some j when j <= stop - 1 ->
        let code = String.sub s (i + 1) (j - i - 1) in
        parse_inline_range s (j + 1) stop "" (Code code :: flush ())
      | Some _ | None -> parse_inline_range s (i + 1) stop (acc_text ^ "`") acc)
    | '!' when starts_with s i "![" -> (
      match parse_link_parts s (i + 1) stop with
      | Some (label, url, next) ->
        parse_inline_range s next stop ""
          (Image (label, url) :: flush ())
      | None -> parse_inline_range s (i + 1) stop (acc_text ^ "!") acc)
    | '[' -> (
      match parse_link_parts s i stop with
      | Some (label, url, next) ->
        let label_inlines = parse_inline_range label 0 (String.length label) "" [] in
        parse_inline_range s next stop "" (Link (label_inlines, url) :: flush ())
      | None -> parse_inline_range s (i + 1) stop (acc_text ^ "[") acc)
    | c -> parse_inline_range s (i + 1) stop (acc_text ^ String.make 1 c) acc

(* [text](url): returns (label, url, position after the closing paren). *)
and parse_link_parts s i stop =
  if i >= stop || s.[i] <> '[' then None
  else
    match find_delim s (i + 1) "]" with
    | Some close when close < stop && close + 1 < stop && s.[close + 1] = '(' -> (
      match find_delim s (close + 2) ")" with
      | Some paren when paren <= stop - 1 ->
        let label = String.sub s (i + 1) (close - i - 1) in
        let url = String.sub s (close + 2) (paren - close - 2) in
        Some (label, url, paren + 1)
      | Some _ | None -> None)
    | Some _ | None -> None

let parse_inline s = parse_inline_range s 0 (String.length s) "" []

(* ------------------------------------------------------------------ *)
(* Block parsing *)

let is_blank line = String.trim line = ""

let strip_prefix prefix line =
  if starts_with line 0 prefix then
    Some (String.sub line (String.length prefix) (String.length line - String.length prefix))
  else None

let heading_level line =
  let rec count i = if i < String.length line && line.[i] = '#' then count (i + 1) else i in
  let level = count 0 in
  if level >= 1 && level <= 6 && level < String.length line && line.[level] = ' '
  then Some (level, String.sub line (level + 1) (String.length line - level - 1))
  else None

let is_rule line =
  let t = String.trim line in
  String.length t >= 3
  && (String.for_all (fun c -> c = '-') t || String.for_all (fun c -> c = '*') t)

let bullet_item line =
  match strip_prefix "- " line with
  | Some rest -> Some rest
  | None -> strip_prefix "* " line

let ordered_item line =
  let rec digits i =
    if i < String.length line && line.[i] >= '0' && line.[i] <= '9' then digits (i + 1)
    else i
  in
  let d = digits 0 in
  if d > 0 && d + 1 < String.length line && line.[d] = '.' && line.[d + 1] = ' '
  then Some (String.sub line (d + 2) (String.length line - d - 2))
  else None

(* Consume consecutive lines matched by [item]; returns matched (projected)
   lines and the remainder. *)
let take_items item first rest =
  let rec go acc = function
    | l :: ls when item l <> None -> go (Option.get (item l) :: acc) ls
    | ls -> (List.rev acc, ls)
  in
  go [ first ] rest

let rec parse_blocks lines =
  match lines with
  | [] -> []
  | line :: rest when is_blank line -> parse_blocks rest
  | line :: rest when is_rule line -> Rule :: parse_blocks rest
  | line :: rest ->
    let try_heading () =
      Option.map
        (fun (level, text) ->
          Heading (level, parse_inline (String.trim text)) :: parse_blocks rest)
        (heading_level line)
    in
    let try_code () =
      Option.map
        (fun lang ->
          let lang = String.trim lang in
          let rec code acc = function
            | [] -> (List.rev acc, [])
            | l :: ls when starts_with l 0 "```" -> (List.rev acc, ls)
            | l :: ls -> code (l :: acc) ls
          in
          let body, rest = code [] rest in
          Code_block (lang, String.concat "\n" body) :: parse_blocks rest)
        (strip_prefix "```" line)
    in
    let try_quote () =
      Option.map
        (fun first ->
          let dequote l =
            if is_blank l then None
            else Some (Option.value ~default:l (strip_prefix "> " l))
          in
          let body, rest = take_items dequote first rest in
          Quote (parse_blocks body) :: parse_blocks rest)
        (strip_prefix "> " line)
    in
    let try_bullets () =
      Option.map
        (fun first ->
          let all, rest = take_items bullet_item first rest in
          Unordered_list (List.map (fun i -> parse_inline (String.trim i)) all)
          :: parse_blocks rest)
        (bullet_item line)
    in
    let try_ordered () =
      Option.map
        (fun first ->
          let all, rest = take_items ordered_item first rest in
          Ordered_list (List.map (fun i -> parse_inline (String.trim i)) all)
          :: parse_blocks rest)
        (ordered_item line)
    in
    let paragraph () =
      (* consume until a blank line or any block starter *)
      let stops l =
        is_blank l || is_rule l
        || heading_level l <> None
        || bullet_item l <> None
        || ordered_item l <> None
        || starts_with l 0 "```" || starts_with l 0 "> "
      in
      let rec para acc = function
        | l :: ls when not (stops l) -> para (l :: acc) ls
        | ls -> (List.rev acc, ls)
      in
      let body, rest = para [ line ] rest in
      Paragraph (parse_inline (String.trim (String.concat " " body)))
      :: parse_blocks rest
    in
    let first_some options =
      List.fold_left
        (fun acc opt -> match acc with Some _ -> acc | None -> opt ())
        None options
    in
    (match
       first_some [ try_heading; try_code; try_quote; try_bullets; try_ordered ]
     with
    | Some blocks -> blocks
    | None -> paragraph ())

let parse src = parse_blocks (String.split_on_char '\n' src)

(* ------------------------------------------------------------------ *)
(* HTML rendering *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec inline_html inline =
  match inline with
  | Text s -> html_escape s
  | Emph inner -> "<em>" ^ inlines_html inner ^ "</em>"
  | Strong inner -> "<strong>" ^ inlines_html inner ^ "</strong>"
  | Code s -> "<code>" ^ html_escape s ^ "</code>"
  | Link (label, url) ->
    Printf.sprintf "<a href=\"%s\">%s</a>" (html_escape url) (inlines_html label)
  | Image (alt, url) ->
    Printf.sprintf "<img src=\"%s\" alt=\"%s\">" (html_escape url) (html_escape alt)

and inlines_html inlines = String.concat "" (List.map inline_html inlines)

let rec block_html block =
  match block with
  | Heading (level, inlines) ->
    Printf.sprintf "<h%d>%s</h%d>" level (inlines_html inlines) level
  | Paragraph inlines -> "<p>" ^ inlines_html inlines ^ "</p>"
  | Code_block (lang, body) ->
    let cls = if lang = "" then "" else Printf.sprintf " class=\"language-%s\"" (html_escape lang) in
    Printf.sprintf "<pre><code%s>%s</code></pre>" cls (html_escape body)
  | Unordered_list items ->
    "<ul>"
    ^ String.concat "" (List.map (fun i -> "<li>" ^ inlines_html i ^ "</li>") items)
    ^ "</ul>"
  | Ordered_list items ->
    "<ol>"
    ^ String.concat "" (List.map (fun i -> "<li>" ^ inlines_html i ^ "</li>") items)
    ^ "</ol>"
  | Quote blocks -> "<blockquote>" ^ to_html blocks ^ "</blockquote>"
  | Rule -> "<hr>"

and to_html blocks = String.concat "\n" (List.map block_html blocks)

let render_html src = to_html (parse src)

(* ------------------------------------------------------------------ *)
(* Element rendering *)

let rec inline_to_text inlines =
  Gui.Text.concat
    (List.map
       (fun inline ->
         match inline with
         | Text s -> Gui.Text.of_string s
         | Emph inner -> Gui.Text.italic (inline_to_text inner)
         | Strong inner -> Gui.Text.bold (inline_to_text inner)
         | Code s -> Gui.Text.monospace (Gui.Text.of_string s)
         | Link (label, url) -> Gui.Text.link url (inline_to_text label)
         | Image (alt, _) -> Gui.Text.of_string ("[" ^ alt ^ "]"))
       inlines)

let heading_height = function
  | 1 -> 28.0
  | 2 -> 24.0
  | 3 -> 20.0
  | 4 -> 18.0
  | 5 -> 16.0
  | _ -> 15.0

let rec block_to_element block =
  let module E = Gui.Element in
  match block with
  | Heading (level, inlines) ->
    E.text
      (Gui.Text.bold (Gui.Text.height (heading_height level) (inline_to_text inlines)))
  | Paragraph inlines -> E.text (inline_to_text inlines)
  | Code_block (_, body) -> E.text (Gui.Text.monospace (Gui.Text.of_string body))
  | Unordered_list items ->
    E.flow E.Down
      (List.map
         (fun i ->
           E.text Gui.Text.(of_string "  - " ++ inline_to_text i))
         items)
  | Ordered_list items ->
    E.flow E.Down
      (List.mapi
         (fun n i ->
           E.text
             Gui.Text.(of_string (Printf.sprintf "  %d. " (n + 1)) ++ inline_to_text i))
         items)
  | Quote blocks ->
    E.flow E.Right [ E.spacer 16 1; blocks_to_element blocks ]
  | Rule -> E.color Gui.Color.gray (E.spacer 400 2)

and blocks_to_element blocks =
  Gui.Element.flow Gui.Element.Down (List.map block_to_element blocks)

let to_element src = blocks_to_element (parse src)
