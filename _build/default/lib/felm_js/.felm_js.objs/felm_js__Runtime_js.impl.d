lib/felm_js/runtime_js.ml:
