lib/felm_js/js_check.mli:
