lib/felm_js/html.ml: Buffer Emit Printf String
