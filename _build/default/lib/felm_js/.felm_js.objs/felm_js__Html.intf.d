lib/felm_js/html.mli: Felm
