lib/felm_js/runtime_js.mli:
