lib/felm_js/js_check.ml: List Printf String
