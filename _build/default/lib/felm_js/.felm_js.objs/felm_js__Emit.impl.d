lib/felm_js/emit.ml: Buffer Char Felm Js_ast List Printf Runtime_js String
