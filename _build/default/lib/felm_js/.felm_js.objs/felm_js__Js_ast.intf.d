lib/felm_js/js_ast.mli: Buffer
