lib/felm_js/js_ast.ml: Buffer Char Float List Printf String
