lib/felm_js/emit.mli: Felm Js_ast
