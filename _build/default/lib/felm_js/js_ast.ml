type expr =
  | Enum of float
  | Eint of int
  | Estr of string
  | Ebool of bool
  | Enull
  | Evar of string
  | Efun of string list * stmt list
  | Ecall of expr * expr list
  | Emember of expr * string
  | Eindex of expr * expr
  | Earray of expr list
  | Eobject of (string * expr) list
  | Ebinop of string * expr * expr
  | Eunop of string * expr
  | Econd of expr * expr * expr

and stmt =
  | Svar of string * expr
  | Sexpr of expr
  | Sreturn of expr
  | Sif of expr * stmt list * stmt list

let iife body = Ecall (Efun ([], body), [])

let let_in x rhs body = Ecall (Efun ([ x ], [ Sreturn body ]), [ rhs ])

let string_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec print_expr buf e =
  let pr = Buffer.add_string buf in
  match e with
  | Enum f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      pr (Printf.sprintf "%.1f" f)
    else pr (Printf.sprintf "%.17g" f)
  | Eint n -> pr (string_of_int n)
  | Estr s ->
    pr "\"";
    pr (string_escape s);
    pr "\""
  | Ebool b -> pr (if b then "true" else "false")
  | Enull -> pr "null"
  | Evar x -> pr x
  | Efun (params, body) ->
    pr "function(";
    pr (String.concat ", " params);
    pr ") { ";
    List.iter (fun s -> print_stmt buf s) body;
    pr " }"
  | Ecall (f, args) ->
    (match f with
    | Efun _ ->
      pr "(";
      print_expr buf f;
      pr ")"
    | _ -> print_expr buf f);
    pr "(";
    List.iteri
      (fun i a ->
        if i > 0 then pr ", ";
        print_expr buf a)
      args;
    pr ")"
  | Emember (o, field) ->
    print_expr buf o;
    pr ".";
    pr field
  | Eindex (o, i) ->
    print_expr buf o;
    pr "[";
    print_expr buf i;
    pr "]"
  | Earray es ->
    pr "[";
    List.iteri
      (fun i a ->
        if i > 0 then pr ", ";
        print_expr buf a)
      es;
    pr "]"
  | Eobject fields ->
    pr "{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then pr ", ";
        pr "\"";
        pr (string_escape k);
        pr "\": ";
        print_expr buf v)
      fields;
    pr "}"
  | Ebinop (op, a, b) ->
    pr "(";
    print_expr buf a;
    pr " ";
    pr op;
    pr " ";
    print_expr buf b;
    pr ")"
  | Eunop (op, a) ->
    pr "(";
    pr op;
    print_expr buf a;
    pr ")"
  | Econd (c, t, f) ->
    pr "(";
    print_expr buf c;
    pr " ? ";
    print_expr buf t;
    pr " : ";
    print_expr buf f;
    pr ")"

and print_stmt buf s =
  let pr = Buffer.add_string buf in
  match s with
  | Svar (x, e) ->
    pr "var ";
    pr x;
    pr " = ";
    print_expr buf e;
    pr ";\n"
  | Sexpr e ->
    print_expr buf e;
    pr ";\n"
  | Sreturn e ->
    pr "return ";
    print_expr buf e;
    pr ";\n"
  | Sif (c, t, f) ->
    pr "if (";
    print_expr buf c;
    pr ") {\n";
    List.iter (fun s -> print_stmt buf s) t;
    pr "}";
    (match f with
    | [] -> pr "\n"
    | _ ->
      pr " else {\n";
      List.iter (fun s -> print_stmt buf s) f;
      pr "}\n")

let program_to_string stmts =
  let buf = Buffer.create 1024 in
  List.iter (fun s -> print_stmt buf s) stmts;
  Buffer.contents buf
