module Ast = Felm.Ast
module J = Js_ast

let js_reserved =
  [ "var"; "function"; "return"; "if"; "else"; "new"; "delete"; "typeof";
    "in"; "instanceof"; "this"; "null"; "true"; "false"; "let"; "const";
    "class"; "for"; "while"; "do"; "switch"; "case"; "default"; "throw";
    "try"; "catch"; "finally"; "void"; "with"; "yield" ]

let sanitize name =
  let buf = Buffer.create (String.length name + 2) in
  Buffer.add_string buf "_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | '.' -> Buffer.add_string buf "$"
      | '%' -> Buffer.add_string buf "$f"
      | '\'' -> Buffer.add_string buf "$q"
      | c -> Buffer.add_string buf (Printf.sprintf "$%02x" (Char.code c)))
    name;
  let s = Buffer.contents buf in
  if List.mem s js_reserved then s ^ "$" else s

let runtime = J.Evar "R"
let graph = J.Evar "G"

let rt_call name args = J.Ecall (J.Emember (runtime, name), graph :: args)

let bool_to_int e = J.Econd (e, J.Eint 1, J.Eint 0)

let truthy e = J.Ebinop ("!==", e, J.Eint 0)

let rec compile_expr (e : Ast.expr) : J.expr =
  match e.Ast.desc with
  | Ast.Unit -> J.Enull
  | Ast.Int n -> J.Eint n
  | Ast.Float f -> J.Enum f
  | Ast.String s -> J.Estr s
  | Ast.Var x -> J.Evar (sanitize x)
  | Ast.Input name ->
    (* default values are filled in by the prologue's input registration *)
    rt_call "input" [ J.Estr name; J.Emember (J.Evar "defaults", sanitize name) ]
  | Ast.Lam (x, body) -> J.Efun ([ sanitize x ], [ J.Sreturn (compile_expr body) ])
  | Ast.App (f, a) -> J.Ecall (compile_expr f, [ compile_expr a ])
  | Ast.Binop (op, a, b) -> compile_binop op (compile_expr a) (compile_expr b)
  | Ast.If (c, t, f) -> J.Econd (truthy (compile_expr c), compile_expr t, compile_expr f)
  | Ast.Let (x, rhs, body) ->
    (* binding by function application keeps signal nodes shared *)
    J.let_in (sanitize x) (compile_expr rhs) (compile_expr body)
  | Ast.Pair (a, b) -> J.Earray [ compile_expr a; compile_expr b ]
  | Ast.List_lit elems -> J.Earray (List.map compile_expr elems)
  | Ast.None_lit -> J.Earray []
  | Ast.Some_e a -> J.Earray [ compile_expr a ]
  | Ast.Fst a -> J.Eindex (compile_expr a, J.Eint 0)
  | Ast.Snd a -> J.Eindex (compile_expr a, J.Eint 1)
  | Ast.Show a -> J.Ecall (J.Emember (runtime, "show"), [ compile_expr a ])
  | Ast.Prim_op (name, args) ->
    J.Ecall (J.Emember (J.Emember (runtime, "prims"), name), List.map compile_expr args)
  | Ast.Lift (f, deps) ->
    (* FElm's lifted functions are curried; the runtime applies positionally,
       so wrap into an uncurried adapter. *)
    let params = List.mapi (fun i _ -> Printf.sprintf "a%d" i) deps in
    let applied =
      List.fold_left
        (fun acc p -> J.Ecall (acc, [ J.Evar p ]))
        (J.Evar "f") params
    in
    let uncurried =
      J.let_in "f" (compile_expr f) (J.Efun (params, [ J.Sreturn applied ]))
    in
    rt_call "lift" [ uncurried; J.Earray (List.map compile_expr deps) ]
  | Ast.Foldp (f, b, s) ->
    let stepper =
      J.let_in "f" (compile_expr f)
        (J.Efun
           ( [ "v"; "acc" ],
             [ J.Sreturn (J.Ecall (J.Ecall (J.Evar "f", [ J.Evar "v" ]), [ J.Evar "acc" ])) ] ))
    in
    rt_call "foldp" [ stepper; compile_expr b; compile_expr s ]
  | Ast.Async s -> rt_call "async" [ compile_expr s ]

and compile_binop op a b =
  let cmp_int rel = bool_to_int (J.Ebinop (rel, J.Ecall (J.Emember (runtime, "cmp"), [ a; b ]), J.Eint 0)) in
  match op with
  | Ast.Add -> J.Ebinop ("+", a, b)
  | Ast.Sub -> J.Ebinop ("-", a, b)
  | Ast.Mul -> J.Ebinop ("*", a, b)
  | Ast.Div -> J.Ecall (J.Emember (J.Evar "Math", "trunc"), [ J.Ebinop ("/", a, b) ])
  | Ast.Mod -> J.Ebinop ("%", a, b)
  | Ast.Fadd -> J.Ebinop ("+", a, b)
  | Ast.Fsub -> J.Ebinop ("-", a, b)
  | Ast.Fmul -> J.Ebinop ("*", a, b)
  | Ast.Fdiv -> J.Ebinop ("/", a, b)
  | Ast.Cat -> J.Ebinop ("+", a, b)
  | Ast.And -> bool_to_int (J.Ebinop ("&&", truthy a, truthy b))
  | Ast.Or -> bool_to_int (J.Ebinop ("||", truthy a, truthy b))
  | Ast.Eq -> bool_to_int (J.Ecall (J.Emember (runtime, "eq"), [ a; b ]))
  | Ast.Ne -> bool_to_int (J.Eunop ("!", J.Ecall (J.Emember (runtime, "eq"), [ a; b ])))
  | Ast.Lt -> cmp_int "<"
  | Ast.Le -> cmp_int "<="
  | Ast.Gt -> cmp_int ">"
  | Ast.Ge -> cmp_int ">="

let default_to_js (v : Felm.Value.t) : J.expr =
  let rec go v =
    match v with
    | Felm.Value.Vunit -> J.Enull
    | Felm.Value.Vint n -> J.Eint n
    | Felm.Value.Vfloat f -> J.Enum f
    | Felm.Value.Vstring s -> J.Estr s
    | Felm.Value.Vpair (a, b) -> J.Earray [ go a; go b ]
    | Felm.Value.Vlist elems -> J.Earray (List.map go elems)
    | Felm.Value.Voption None -> J.Earray []
    | Felm.Value.Voption (Some v) -> J.Earray [ go v ]
    | Felm.Value.Vclosure _ | Felm.Value.Vsignal _ -> J.Enull
  in
  go v

let compile_program (p : Felm.Program.t) =
  let defaults =
    J.Eobject
      (List.map
         (fun (i : Felm.Program.input_decl) ->
           (sanitize i.Felm.Program.name, default_to_js i.Felm.Program.default))
         p.Felm.Program.inputs)
  in
  let body =
    [
      J.Svar ("R", J.Evar "ElmRuntime");
      J.Svar ("G", J.Ecall (J.Emember (runtime, "newGraph"), []));
      J.Svar ("defaults", defaults);
      J.Svar ("main", compile_expr p.Felm.Program.main);
      J.Sexpr (rt_call "display" [ J.Evar "main" ]);
      J.Sexpr (J.Ecall (J.Emember (runtime, "wireBrowserEvents"), [ graph ]));
    ]
  in
  Runtime_js.source ^ "\n" ^ J.program_to_string [ J.Sexpr (J.iife body) ]
