type token =
  | Num of string
  | Str of string
  | Ident of string
  | Punct of string

exception Invalid of string

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let brackets = ref [] in
  let emit t = toks := t :: !toks in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let rec eol j = if j < n && src.[j] <> '\n' then eol (j + 1) else j in
        go (eol (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let rec close j =
          if j + 1 >= n then raise (Invalid "unterminated block comment")
          else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
          else close (j + 1)
        in
        go (close (i + 2))
      | ('"' | '\'' | '`') as quote ->
        let rec close j acc =
          if j >= n then raise (Invalid "unterminated string")
          else if src.[j] = '\\' then
            if j + 1 >= n then raise (Invalid "trailing backslash")
            else close (j + 2) acc
          else if src.[j] = quote then begin
            emit (Str acc);
            j + 1
          end
          else if src.[j] = '\n' && quote <> '`' then
            raise (Invalid "newline in string literal")
          else close (j + 1) (acc ^ String.make 1 src.[j])
        in
        go (close (i + 1) "")
      | ('(' | '[' | '{') as c ->
        brackets := c :: !brackets;
        emit (Punct (String.make 1 c));
        go (i + 1)
      | (')' | ']' | '}') as c ->
        let expected =
          match c with ')' -> '(' | ']' -> '[' | _ -> '{'
        in
        (match !brackets with
        | top :: rest when top = expected ->
          brackets := rest;
          emit (Punct (String.make 1 c));
          go (i + 1)
        | top :: _ ->
          raise (Invalid (Printf.sprintf "mismatched bracket: %c closed by %c" top c))
        | [] -> raise (Invalid (Printf.sprintf "unmatched closing %c" c)))
      | c when is_digit c ->
        let rec num j =
          if j >= n then j
          else if
            is_digit src.[j] || src.[j] = '.' || src.[j] = 'x'
            || (src.[j] >= 'a' && src.[j] <= 'f')
            || (src.[j] >= 'A' && src.[j] <= 'F')
          then num (j + 1)
          else if
            (src.[j] = '+' || src.[j] = '-')
            && (src.[j - 1] = 'e' || src.[j - 1] = 'E')
          then num (j + 1)
          else j
        in
        let j = num (i + 1) in
        emit (Num (String.sub src i (j - i)));
        go j
      | c when is_ident_start c ->
        let rec word j = if j < n && is_ident_char src.[j] then word (j + 1) else j in
        let j = word (i + 1) in
        emit (Ident (String.sub src i (j - i)));
        go j
      | ('+' | '-' | '*' | '/' | '%' | '=' | '<' | '>' | '!' | '&' | '|' | '?'
        | ':' | ';' | ',' | '.' | '^' | '~') as c ->
        emit (Punct (String.make 1 c));
        go (i + 1)
      | c -> raise (Invalid (Printf.sprintf "unexpected character %C" c))
  in
  go 0;
  (match !brackets with
  | [] -> ()
  | c :: _ -> raise (Invalid (Printf.sprintf "unclosed bracket %c" c)));
  List.rev !toks

let well_formed src =
  match tokenize src with
  | _ -> Ok ()
  | exception Invalid msg -> Error msg
