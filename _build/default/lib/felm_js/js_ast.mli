(** A small JavaScript subset: the compiler's target language.

    Enough of ES5 to express compiled FElm programs and the runtime calls
    they make. The printer is deterministic and conservatively
    parenthesized, so output is stable for golden tests. *)

type expr =
  | Enum of float
  | Eint of int
  | Estr of string
  | Ebool of bool
  | Enull
  | Evar of string
  | Efun of string list * stmt list
  | Ecall of expr * expr list
  | Emember of expr * string
  | Eindex of expr * expr
  | Earray of expr list
  | Eobject of (string * expr) list
  | Ebinop of string * expr * expr
  | Eunop of string * expr
  | Econd of expr * expr * expr

and stmt =
  | Svar of string * expr
  | Sexpr of expr
  | Sreturn of expr
  | Sif of expr * stmt list * stmt list

val iife : stmt list -> expr
(** [(function(){ ... })()]. *)

val let_in : string -> expr -> expr -> expr
(** Expression-level binding: [(function(x){ return body; })(rhs)]. *)

val string_escape : string -> string
(** Escape for inclusion inside double quotes. *)

val print_expr : Buffer.t -> expr -> unit

val print_stmt : Buffer.t -> stmt -> unit

val program_to_string : stmt list -> string
