(** The JavaScript runtime embedded in compiled output (paper Section 5).

    A compact re-implementation of the signal-graph semantics for the
    browser: rank-ordered synchronous propagation with Change/NoChange
    memoization per event, [foldp] state, [async] re-dispatch through the
    macrotask queue (the paper's compiler likewise supports "concurrent
    execution only for asynchronous requests" because JavaScript lacks
    lightweight threads), DOM event wiring for the standard inputs, and a
    display loop writing [main] to the page. *)

val source : string
(** The runtime as JavaScript source. Exposes a global [ElmRuntime]. *)
