(** Code generation: checked FElm programs to JavaScript (paper Section 5).

    Compilation strategy: the emitted program performs stage-one evaluation
    at initialization time in JavaScript — reactive primitives become calls
    into the {!Runtime_js} graph constructors ([R.input]/[R.lift]/
    [R.foldp]/[R.async]), [let] becomes a binding function application so
    signal sharing is preserved, and everything else is a direct
    translation. The result registers [main] with the runtime's display
    loop and wires browser events. *)

val compile_expr : Felm.Ast.expr -> Js_ast.expr
(** Translate one resolved FElm expression ([R] and [G] in scope). *)

val compile_program : Felm.Program.t -> string
(** Complete JavaScript: runtime followed by the program IIFE. The program
    must already be resolved (it is, by {!Felm.Program.of_source}); callers
    should have type-checked it. *)

val sanitize : string -> string
(** Make a FElm identifier a valid JavaScript identifier. *)
