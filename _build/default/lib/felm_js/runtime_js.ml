let source =
  {js|// FElm runtime (compiled output support library).
// Mirrors the CML translation of the paper (Fig. 9-11): every node relays
// exactly one Change/NoChange message per event; foldp steps only on
// Change; async subgraph results re-enter as fresh events.
var ElmRuntime = (function () {
  "use strict";

  function newGraph() {
    return { nodes: [], inputs: {}, displayNode: null, queue: [], dispatching: false };
  }

  function addNode(g, node) {
    node.id = g.nodes.length;
    g.nodes.push(node);
    return node;
  }

  function input(g, name, defaultValue) {
    if (g.inputs[name]) { return g.inputs[name]; }
    var node = addNode(g, {
      kind: "input", name: name, rank: 0, value: defaultValue, pending: null
    });
    g.inputs[name] = node;
    return node;
  }

  function maxRank(deps) {
    var r = 0;
    for (var i = 0; i < deps.length; i++) { if (deps[i].rank > r) { r = deps[i].rank; } }
    return r;
  }

  function lift(g, fn, deps) {
    var args = deps.map(function (d) { return d.value; });
    return addNode(g, {
      kind: "lift", fn: fn, deps: deps, rank: maxRank(deps) + 1,
      value: fn.apply(null, args)
    });
  }

  function foldp(g, fn, base, dep) {
    return addNode(g, {
      kind: "foldp", fn: fn, deps: [dep], rank: dep.rank + 1, value: base
    });
  }

  function async(g, dep) {
    // A source node; changes of the inner subgraph become new events.
    var node = addNode(g, {
      kind: "async", name: "async#" + g.nodes.length, rank: 0,
      value: dep.value, pending: null
    });
    node.watch = dep;
    g.inputs[node.name] = node;
    return node;
  }

  // One synchronous pass: the [sourceId] node fires with [value]; every
  // other node recomputes only if an upstream dependency changed.
  function dispatch(g, sourceId, value) {
    var changed = {};
    var i, node;
    var byRank = g.nodes.slice().sort(function (a, b) { return a.rank - b.rank; });
    for (i = 0; i < byRank.length; i++) {
      node = byRank[i];
      if (node.kind === "input" || node.kind === "async") {
        if (node.id === sourceId) {
          node.value = value;
          changed[node.id] = true;
        }
      } else {
        var depChanged = false;
        for (var j = 0; j < node.deps.length; j++) {
          if (changed[node.deps[j].id]) { depChanged = true; }
        }
        if (depChanged) {
          if (node.kind === "lift") {
            node.value = node.fn.apply(null, node.deps.map(function (d) { return d.value; }));
          } else { // foldp
            node.value = node.fn(node.deps[0].value, node.value);
          }
          changed[node.id] = true;
        }
      }
    }
    // async nodes watch their subgraph output and queue a fresh event.
    for (i = 0; i < g.nodes.length; i++) {
      node = g.nodes[i];
      if (node.kind === "async" && node.watch && changed[node.watch.id]) {
        (function (n, v) {
          setTimeout(function () { notify(g, n.id, v); }, 0);
        })(node, node.watch.value);
      }
    }
    if (g.displayNode !== null && changed[g.displayNode.id]) {
      render(g, g.displayNode.value);
    }
  }

  function notify(g, sourceId, value) {
    // FIFO event queue standing in for the newEvent mailbox.
    g.queue.push([sourceId, value]);
    if (g.dispatching) { return; }
    g.dispatching = true;
    while (g.queue.length > 0) {
      var ev = g.queue.shift();
      dispatch(g, ev[0], ev[1]);
    }
    g.dispatching = false;
  }

  function show(v) {
    if (v === null) { return "()"; }
    if (Array.isArray(v)) { return "(" + show(v[0]) + ", " + show(v[1]) + ")"; }
    if (typeof v === "function") { return "<function>"; }
    return String(v);
  }

  function eq(a, b) {
    if (Array.isArray(a) && Array.isArray(b)) { return eq(a[0], b[0]) && eq(a[1], b[1]); }
    return a === b;
  }

  function cmp(a, b) {
    if (Array.isArray(a) && Array.isArray(b)) {
      var c = cmp(a[0], b[0]);
      return c !== 0 ? c : cmp(a[1], b[1]);
    }
    return a < b ? -1 : (a > b ? 1 : 0);
  }

  function render(g, value) {
    if (typeof document !== "undefined") {
      var el = document.getElementById("felm-main");
      if (el) { el.textContent = show(value); }
    }
  }

  function display(g, node) {
    g.displayNode = node;
    render(g, node.value);
  }

  function wireBrowserEvents(g) {
    if (typeof document === "undefined") { return; }
    document.addEventListener("mousemove", function (e) {
      if (g.inputs["Mouse.x"]) { notify(g, g.inputs["Mouse.x"].id, e.pageX); }
      if (g.inputs["Mouse.y"]) { notify(g, g.inputs["Mouse.y"].id, e.pageY); }
    });
    document.addEventListener("keydown", function (e) {
      if (g.inputs["Keyboard.lastPressed"]) {
        notify(g, g.inputs["Keyboard.lastPressed"].id, e.keyCode);
      }
    });
    window.addEventListener("resize", function () {
      if (g.inputs["Window.width"]) { notify(g, g.inputs["Window.width"].id, window.innerWidth); }
      if (g.inputs["Window.height"]) { notify(g, g.inputs["Window.height"].id, window.innerHeight); }
    });
    if (g.inputs["Time.seconds"]) {
      setInterval(function () {
        notify(g, g.inputs["Time.seconds"].id, Date.now() / 1000);
      }, 1000);
    }
  }

  var prims = {
    not: function (a) { return a === 0 ? 1 : 0; },
    abs: function (a) { return Math.abs(a); },
    min: function (a, b) { return Math.min(a, b); },
    max: function (a, b) { return Math.max(a, b); },
    sqrt: function (a) { return Math.sqrt(a); },
    intToFloat: function (a) { return a; },
    round: function (a) { return Math.round(a); },
    strlen: function (s) { return s.length; },
    translate: function (s) {
      var dict = { "": "", hello: "bonjour", world: "monde", yes: "oui",
        no: "non", cat: "chat", dog: "chien", house: "maison",
        water: "eau", thanks: "merci" };
      return Object.prototype.hasOwnProperty.call(dict, s) ? dict[s] : "le " + s;
    },
    work: function (cost, x) { return x; }, // cost is real only in the simulator
    cons: function (x, xs) { return [x].concat(xs); },
    head: function (xs) { return xs[0]; },
    tail: function (xs) { return xs.slice(1); },
    isEmpty: function (xs) { return xs.length === 0 ? 1 : 0; },
    length: function (xs) { return xs.length; },
    take: function (n, xs) { return xs.slice(0, Math.max(0, n)); },
    reverse: function (xs) { return xs.slice().reverse(); },
    isNone: function (o) { return o.length === 0 ? 1 : 0; },
    withDefault: function (d, o) { return o.length === 0 ? d : o[0]; }
  };

  return {
    newGraph: newGraph, input: input, lift: lift, foldp: foldp,
    async: async, notify: notify, display: display, show: show,
    eq: eq, cmp: cmp, prims: prims, wireBrowserEvents: wireBrowserEvents
  };
})();
|js}
