(** HTML page emission: "the output of compiling an Elm program is an HTML
    file" (Section 5), with the runtime and compiled program inlined. The
    compiler "can also output a JavaScript file for embedding an Elm
    program into an existing project" — that is {!Emit.compile_program}
    directly. *)

val page : ?title:string -> Felm.Program.t -> string
(** A complete HTML document running the compiled program. *)
