let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let page ?(title = "FElm program") program =
  let js = Emit.compile_program program in
  Printf.sprintf
    "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>%s</title>\n\
     </head>\n<body>\n<div id=\"felm-main\"></div>\n<script>\n%s</script>\n</body>\n</html>\n"
    (escape title) js
