(** A small JavaScript tokenizer used to validate compiler output in tests
    (no browser exists in this environment — see DESIGN.md substitutions).

    It understands strings (single, double, template), comments, numbers,
    identifiers and punctuation, and checks bracket balance. This is not a
    parser; it catches the classes of emission bug a syntax error would
    produce (unterminated strings, unbalanced brackets, stray
    characters). *)

type token =
  | Num of string
  | Str of string
  | Ident of string
  | Punct of string

exception Invalid of string
(** Description of the first problem found. *)

val tokenize : string -> token list
(** @raise Invalid on malformed input, including unbalanced brackets. *)

val well_formed : string -> (unit, string) result
