open Element

type t = Element.form

type shape = Element.point list

type path = Element.point list

let pi = 4.0 *. atan 1.0

let rect w h =
  let hw = w /. 2.0 in
  let hh = h /. 2.0 in
  [ (-.hw, -.hh); (hw, -.hh); (hw, hh); (-.hw, hh) ]

let square s = rect s s

(* A fixed 32-gon keeps the approximation deterministic; renderers special-
   case ovals into true ellipses by recognizing this construction is not
   needed — they receive the polygon and the shape looks smooth enough. *)
let oval w h =
  let n = 32 in
  List.init n (fun i ->
      let angle = 2.0 *. pi *. float_of_int i /. float_of_int n in
      (w /. 2.0 *. cos angle, h /. 2.0 *. sin angle))

let circle r = oval (2.0 *. r) (2.0 *. r)

let ngon n r =
  let n = Stdlib.max 3 n in
  List.init n (fun i ->
      let angle = 2.0 *. pi *. float_of_int i /. float_of_int n in
      (r *. cos angle, r *. sin angle))

let polygon points = points

let path points = points

let segment p1 p2 = [ p1; p2 ]

let default_line =
  {
    line_color = Color.black;
    line_width = 1.0;
    cap = Flat;
    join = Sharp;
    dashing = [];
  }

let solid color = { default_line with line_color = color }

let dashed color = { default_line with line_color = color; dashing = [ 8; 4 ] }

let dotted color = { default_line with line_color = color; dashing = [ 3; 3 ] }

let basic basic_form =
  {
    theta = 0.0;
    form_scale = 1.0;
    form_x = 0.0;
    form_y = 0.0;
    form_alpha = 1.0;
    basic = basic_form;
  }

let filled color shape = basic (Form_shape (Filled color, shape))

let gradient g shape = basic (Form_shape (Gradient g, shape))

let linear g_start g_end stops = Linear { g_start; g_end; stops }

let radial center radius stops = Radial { center; radius; stops }

let textured src shape = basic (Form_shape (Textured src, shape))

let outlined style shape = basic (Form_shape (Outline style, shape))

let traced style p = basic (Form_path (style, p))

let form_text txt = basic (Form_text txt)

let to_form element = basic (Form_element element)

let group forms = basic (Form_group forms)

let group_transform m forms = basic (Form_group_transform (m, forms))

let move (dx, dy) f = { f with form_x = f.form_x +. dx; form_y = f.form_y +. dy }

let move_x dx f = { f with form_x = f.form_x +. dx }

let move_y dy f = { f with form_y = f.form_y +. dy }

let rotate angle f = { f with theta = f.theta +. angle }

let scale s f = { f with form_scale = f.form_scale *. s }

let alpha a f = { f with form_alpha = a }

let degrees d = d *. pi /. 180.0

let turns t = 2.0 *. pi *. t

let transform_point f (x, y) =
  let x = x *. f.form_scale in
  let y = y *. f.form_scale in
  let c = cos f.theta in
  let s = sin f.theta in
  ((x *. c) -. (y *. s) +. f.form_x, (x *. s) +. (y *. c) +. f.form_y)

let rec local_points f =
  match f.basic with
  | Form_path (_, pts) | Form_shape (_, pts) -> pts
  | Form_text txt ->
    let w, h = Text.measure txt in
    let hw = float_of_int w /. 2.0 in
    let hh = float_of_int h /. 2.0 in
    [ (-.hw, -.hh); (hw, hh) ]
  | Form_element e ->
    let hw = float_of_int (width_of e) /. 2.0 in
    let hh = float_of_int (height_of e) /. 2.0 in
    [ (-.hw, -.hh); (hw, hh) ]
  | Form_group forms ->
    List.concat_map
      (fun inner ->
        List.map (transform_point inner) (local_points inner))
      forms
  | Form_group_transform (m, forms) ->
    List.concat_map
      (fun inner ->
        List.map
          (fun p -> Transform2d.apply m (transform_point inner p))
          (local_points inner))
      forms

let bounding_box f =
  match List.map (transform_point f) (local_points f) with
  | [] -> None
  | (x0, y0) :: rest ->
    let lo, hi =
      List.fold_left
        (fun ((lx, ly), (hx, hy)) (x, y) ->
          ((Float.min lx x, Float.min ly y), (Float.max hx x, Float.max hy y)))
        ((x0, y0), (x0, y0))
        rest
    in
    Some (lo, hi)
