(** Free-form 2D graphics (paper Section 4.1, Fig. 12).

    A form is "an arbitrary 2D shape (including lines, shapes, text, and
    images)" that can be moved, rotated and scaled, and combined with
    {!Element.collage}. Coordinates put the origin at the collage center
    with y pointing up; angles are in radians (use {!degrees}). *)

type t = Element.form

type shape = Element.point list
(** A closed outline. *)

type path = Element.point list
(** An open polyline. *)

(** {1 Shapes and paths} *)

val rect : float -> float -> shape
(** [rect w h], centered on the origin. *)

val square : float -> shape

val oval : float -> float -> shape
(** [oval w h], approximated by a fixed polygon; renderers emit a true
    ellipse. *)

val circle : float -> shape
(** [circle radius]. *)

val ngon : int -> float -> shape
(** [ngon n radius]: regular polygon with [n] sides (Fig. 12's pentagon). *)

val polygon : Element.point list -> shape

val path : Element.point list -> path
val segment : Element.point -> Element.point -> path

(** {1 Line styles} *)

val default_line : Element.line_style
(** Solid black, width 1. *)

val solid : Color.t -> Element.line_style
val dashed : Color.t -> Element.line_style
val dotted : Color.t -> Element.line_style

(** {1 Turning shapes into forms} *)

val filled : Color.t -> shape -> t
val gradient : Element.gradient -> shape -> t
(** Fill with a gradient ("several functions allow lines and shapes to be
    given different colors, fills, and rendering", Section 4.1). *)

val linear :
  Element.point -> Element.point -> (float * Color.t) list -> Element.gradient
(** [linear from to stops] with stop offsets in [0, 1]. *)

val radial : Element.point -> float -> (float * Color.t) list -> Element.gradient

val textured : string -> shape -> t
val outlined : Element.line_style -> shape -> t
val traced : Element.line_style -> path -> t
val form_text : Text.t -> t
val to_form : Element.t -> t
(** Embed a rectangular element among free-form shapes. *)

val group : t list -> t

val group_transform : Transform2d.t -> t list -> t
(** Elm's [groupTransform]: place a group of forms under an arbitrary
    affine transform (non-uniform scaling, shearing — things
    {!move}/{!rotate}/{!scale} cannot express). *)

(** {1 Transforms} *)

val move : float * float -> t -> t
val move_x : float -> t -> t
val move_y : float -> t -> t
val rotate : float -> t -> t
(** Rotation in radians, counter-clockwise. *)

val scale : float -> t -> t
val alpha : float -> t -> t

val degrees : float -> float
(** Convert degrees to radians, as in [rotate (degrees 70)]. *)

val turns : float -> float
(** Whole turns to radians. *)

(** {1 Geometry} *)

val transform_point : t -> Element.point -> Element.point
(** Apply a form's scale, rotation and translation to a point in its local
    coordinates. *)

val bounding_box : t -> (Element.point * Element.point) option
(** [(min_xy, max_xy)] of the form's geometry, if it has any. Text and
    embedded elements are measured by their layout size. *)
