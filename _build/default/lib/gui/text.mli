(** Styled text (Elm's [Text] library, Section 4.1).

    A text value is a sequence of styled runs. Style functions apply to the
    whole value, so [bold (of_string "a" ++ italic (of_string "b"))] bolds
    both runs while only the second is italic.

    {b Measurement.} Browsers measure text against real font metrics; this
    container has none, so layout uses a deterministic approximation: a
    character is [0.6 * height] pixels wide and a line is [1.2 * height]
    pixels tall (height defaults to 14). DESIGN.md records this
    substitution; every renderer and test shares the same metric, so layout
    is exact within the model. *)

type style = {
  typeface : string;
  height : float;
  color : Color.t;
  bold : bool;
  italic : bool;
  underline : bool;
  monospace : bool;
  link : string option;
}

type t

val default_style : style

val of_string : string -> t
(** Plain text in the default style. *)

val styled : style -> string -> t

val runs : t -> (style * string) list

val to_string : t -> string
(** The unstyled contents. *)

val append : t -> t -> t
val ( ++ ) : t -> t -> t
val concat : t list -> t

(** {1 Styling} *)

val bold : t -> t
val italic : t -> t
val underline : t -> t
val monospace : t -> t
val color : Color.t -> t -> t
val height : float -> t -> t
val typeface : string -> t -> t
val link : string -> t -> t

(** {1 Measurement} *)

val char_width : float -> int
(** Width in pixels of one character at a given text height. *)

val line_height : float -> int

val wrap_words : max_chars:int -> string -> string list
(** Greedy word wrap; words longer than the limit get their own line. *)

val measure : t -> int * int
(** [(width, height)] in pixels of the rendered text block: the widest line
    by the number of lines (runs may contain ['\n']). *)
