open Element

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&#39;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float x =
  (* Avoid "-0." and trailing noise for stable golden output. *)
  let x = if Float.abs x < 1e-9 then 0.0 else x in
  Printf.sprintf "%.2f" x

let points_attr pts =
  String.concat " "
    (List.map (fun (x, y) -> Printf.sprintf "%s,%s" (fmt_float x) (fmt_float y)) pts)

let cap_attr = function
  | Flat -> "butt"
  | Round -> "round"
  | Padded -> "square"

let join_attr = function
  | Smooth -> "round"
  | Sharp -> "miter"
  | Clipped -> "bevel"

let line_attrs style =
  let dash =
    match style.dashing with
    | [] -> ""
    | ds ->
      Printf.sprintf " stroke-dasharray=\"%s\""
        (String.concat "," (List.map string_of_int ds))
  in
  Printf.sprintf
    "stroke=\"%s\" stroke-width=\"%s\" stroke-linecap=\"%s\" stroke-linejoin=\"%s\"%s"
    (Color.to_css style.line_color)
    (fmt_float style.line_width)
    (cap_attr style.cap) (join_attr style.join) dash

(* Gradients become SVG <defs> entries referenced by generated ids; a
   context threads the defs through a render pass. *)
type ctx = {
  defs : Buffer.t;
  mutable next_grad : int;
}

let new_ctx () = { defs = Buffer.create 64; next_grad = 0 }

let stop_elems stops =
  String.concat ""
    (List.map
       (fun (offset, color) ->
         Printf.sprintf "<stop offset=\"%s\" stop-color=\"%s\"/>" (fmt_float offset)
           (Color.to_css color))
       stops)

let gradient_ref ctx g =
  ctx.next_grad <- ctx.next_grad + 1;
  let id = Printf.sprintf "grad%d" ctx.next_grad in
  (match g with
  | Linear { g_start = x1, y1; g_end = x2, y2; stops } ->
    Buffer.add_string ctx.defs
      (Printf.sprintf
         "<linearGradient id=\"%s\" gradientUnits=\"userSpaceOnUse\" x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\">%s</linearGradient>"
         id (fmt_float x1) (fmt_float y1) (fmt_float x2) (fmt_float y2)
         (stop_elems stops))
  | Radial { center = cx, cy; radius; stops } ->
    Buffer.add_string ctx.defs
      (Printf.sprintf
         "<radialGradient id=\"%s\" gradientUnits=\"userSpaceOnUse\" cx=\"%s\" cy=\"%s\" r=\"%s\">%s</radialGradient>"
         id (fmt_float cx) (fmt_float cy) (fmt_float radius) (stop_elems stops)));
  Printf.sprintf "url(#%s)" id

let rec render_basic ctx = function
  | Form_path (style, pts) ->
    Printf.sprintf "<polyline points=\"%s\" fill=\"none\" %s/>" (points_attr pts)
      (line_attrs style)
  | Form_shape (Filled color, pts) ->
    Printf.sprintf "<polygon points=\"%s\" fill=\"%s\"/>" (points_attr pts)
      (Color.to_css color)
  | Form_shape (Gradient g, pts) ->
    Printf.sprintf "<polygon points=\"%s\" fill=\"%s\"/>" (points_attr pts)
      (gradient_ref ctx g)
  | Form_shape (Textured src, pts) ->
    (* No image decoding in this substrate: textures keep their source as an
       attribute over a neutral fill (see DESIGN.md substitutions). *)
    Printf.sprintf
      "<polygon points=\"%s\" fill=\"%s\" data-texture=\"%s\"/>"
      (points_attr pts)
      (Color.to_css Color.gray)
      (escape src)
  | Form_shape (Outline style, pts) ->
    Printf.sprintf "<polygon points=\"%s\" fill=\"none\" %s/>" (points_attr pts)
      (line_attrs style)
  | Form_text txt ->
    (* Re-flip locally so text is not mirrored by the global y-flip. *)
    let style =
      match Text.runs txt with (st, _) :: _ -> st | [] -> Text.default_style
    in
    Printf.sprintf
      "<text transform=\"scale(1,-1)\" text-anchor=\"middle\" font-size=\"%s\" \
       fill=\"%s\">%s</text>"
      (fmt_float style.Text.height)
      (Color.to_css style.Text.color)
      (escape (Text.to_string txt))
  | Form_element e ->
    let w = width_of e in
    let h = height_of e in
    Printf.sprintf
      "<g transform=\"scale(1,-1)\"><foreignObject x=\"%d\" y=\"%d\" width=\"%d\" \
       height=\"%d\">%s</foreignObject></g>"
      (-w / 2) (-h / 2) w h
      (escape (Printf.sprintf "element %dx%d" w h))
  | Form_group forms -> String.concat "" (List.map (render_form ctx) forms)
  | Form_group_transform (m, forms) ->
    (* SVG matrix(a b c d e f): x' = a x + c y + e, y' = b x + d y + f *)
    Printf.sprintf "<g transform=\"matrix(%s %s %s %s %s %s)\">%s</g>"
      (fmt_float m.Transform2d.a) (fmt_float m.Transform2d.c)
      (fmt_float m.Transform2d.b) (fmt_float m.Transform2d.d)
      (fmt_float m.Transform2d.x) (fmt_float m.Transform2d.y)
      (String.concat "" (List.map (render_form ctx) forms))

and render_form ctx f =
  let rotation = f.theta *. 180.0 /. (4.0 *. atan 1.0) in
  Printf.sprintf "<g transform=\"translate(%s %s) rotate(%s) scale(%s)\" opacity=\"%s\">%s</g>"
    (fmt_float f.form_x) (fmt_float f.form_y) (fmt_float rotation)
    (fmt_float f.form_scale) (fmt_float f.form_alpha)
    (render_basic ctx f.basic)

let form_to_svg f = render_form (new_ctx ()) f

let render_forms ~width ~height forms =
  let cx = float_of_int width /. 2.0 in
  let cy = float_of_int height /. 2.0 in
  let ctx = new_ctx () in
  let body = String.concat "\n" (List.map (render_form ctx) forms) in
  let defs =
    if Buffer.length ctx.defs = 0 then ""
    else Printf.sprintf "<defs>%s</defs>\n" (Buffer.contents ctx.defs)
  in
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\">\n%s<g transform=\"translate(%s %s) scale(1,-1)\">\n%s\n</g>\n</svg>"
    width height width height defs (fmt_float cx) (fmt_float cy)
    body
