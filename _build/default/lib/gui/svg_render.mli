(** SVG rendering of collages.

    The paper's runtime draws forms on an HTML canvas; here they become SVG,
    which is deterministic text (golden-testable) and viewable in any
    browser. Collage coordinates (origin at the center, y up) are mapped by
    a global translate/flip. *)

val render_forms : width:int -> height:int -> Element.form list -> string
(** A complete standalone [<svg>] document of the given size. *)

val form_to_svg : Element.form -> string
(** A single form as an SVG fragment (a [<g>] element). *)

val escape : string -> string
(** XML-escape text content. *)
