(** HTML rendering of elements.

    Generates the absolutely-positioned div structure the real Elm runtime
    builds in the DOM, as a deterministic string: every element becomes a
    [<div>] with explicit width/height, flows position their children along
    the flow axis, containers use {!Element.position_offset}, and collages
    embed inline SVG from {!Svg_render}. *)

val render : Element.t -> string
(** The element as an HTML fragment. *)

val to_page : ?title:string -> Element.t -> string
(** A complete HTML document (what the paper's compiler emits for a
    program's [main], Section 5). *)
