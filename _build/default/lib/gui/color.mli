(** Colors for Elm's graphics libraries (Section 4.1).

    Components are 8-bit channels plus an alpha in [0, 1]. Includes the Elm
    named palette, HSV conversion, and CSS serialization used by the HTML
    and SVG renderers. *)

type t = {
  red : int;
  green : int;
  blue : int;
  alpha : float;
}

val rgb : int -> int -> int -> t
(** Channels are clamped to [0, 255]; alpha is 1. *)

val rgba : int -> int -> int -> float -> t

val hsv : float -> float -> float -> t
(** [hsv hue saturation value]: hue in degrees (wrapped into [0, 360)),
    saturation and value in [0, 1]. *)

val hsva : float -> float -> float -> float -> t

val to_hsv : t -> float * float * float

val complement : t -> t
(** Rotate the hue by 180 degrees. *)

val gray_scale : float -> t
(** [gray_scale v] with [v] in [0,1]; 0 is black. *)

val to_css : t -> string
(** ["rgba(r,g,b,a)"] suitable for CSS and SVG attributes. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Named colors (the Elm palette)} *)

val red : t
val orange : t
val yellow : t
val green : t
val blue : t
val purple : t
val brown : t
val black : t
val white : t
val gray : t
val grey : t
val light_gray : t
val dark_gray : t
val charcoal : t
val pink : t
val cyan : t
val magenta : t
val transparent : t
