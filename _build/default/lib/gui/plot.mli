(** A small graphing library over the collage API.

    Section 5 lists "a graphing library that handles cartesian and radial
    coordinates" among the applications built with Elm's purely functional
    graphics; this module reproduces that capability: line/scatter plots on
    cartesian axes, bar charts, and radial (polar) plots, all producing
    ordinary {!Element.t} values that compose with any other layout. *)

type series = {
  label : string;
  color : Color.t;
  points : (float * float) list;
}

val series : ?label:string -> ?color:Color.t -> (float * float) list -> series

val cartesian :
  ?width:int ->
  ?height:int ->
  ?draw_points:bool ->
  series list ->
  Element.t
(** Line plot with axes and tick marks. The data range (with a small
    margin) is mapped onto the drawing area; each series is traced in its
    color, optionally with point markers. A legend of labelled series is
    stacked under the plot. *)

val scatter : ?width:int -> ?height:int -> series list -> Element.t
(** Points only. *)

val bar : ?width:int -> ?height:int -> ?color:Color.t -> (string * float) list -> Element.t
(** Vertical bars with labels underneath. *)

val radial : ?width:int -> ?height:int -> series list -> Element.t
(** Polar plot: each point is (angle in radians, radius); radii are
    normalized to the largest value. Draws reference rings and spokes. *)

(** {1 Internals exposed for tests} *)

val range : (float * float) list -> (float * float) * (float * float)
(** [((xmin, xmax), (ymin, ymax))] of a point set; degenerate ranges are
    widened so projection never divides by zero. *)

val project :
  plot_w:float ->
  plot_h:float ->
  xrange:float * float ->
  yrange:float * float ->
  float * float ->
  float * float
(** Map a data point into collage coordinates (origin at the center). *)
