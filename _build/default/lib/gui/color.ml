type t = {
  red : int;
  green : int;
  blue : int;
  alpha : float;
}

let clamp_channel c = if c < 0 then 0 else if c > 255 then 255 else c

let clamp_unit a = if a < 0.0 then 0.0 else if a > 1.0 then 1.0 else a

let rgba r g b a =
  {
    red = clamp_channel r;
    green = clamp_channel g;
    blue = clamp_channel b;
    alpha = clamp_unit a;
  }

let rgb r g b = rgba r g b 1.0

let hsva hue s v a =
  let s = clamp_unit s in
  let v = clamp_unit v in
  let hue = Float.rem (Float.rem hue 360.0 +. 360.0) 360.0 in
  let c = v *. s in
  let h' = hue /. 60.0 in
  let x = c *. (1.0 -. Float.abs (Float.rem h' 2.0 -. 1.0)) in
  let r', g', b' =
    if h' < 1.0 then (c, x, 0.0)
    else if h' < 2.0 then (x, c, 0.0)
    else if h' < 3.0 then (0.0, c, x)
    else if h' < 4.0 then (0.0, x, c)
    else if h' < 5.0 then (x, 0.0, c)
    else (c, 0.0, x)
  in
  let m = v -. c in
  let ch f = int_of_float (Float.round ((f +. m) *. 255.0)) in
  rgba (ch r') (ch g') (ch b') a

let hsv hue s v = hsva hue s v 1.0

let to_hsv { red; green; blue; _ } =
  let r = float_of_int red /. 255.0 in
  let g = float_of_int green /. 255.0 in
  let b = float_of_int blue /. 255.0 in
  let v = Float.max r (Float.max g b) in
  let m = Float.min r (Float.min g b) in
  let c = v -. m in
  let hue =
    if c = 0.0 then 0.0
    else if v = r then 60.0 *. Float.rem ((g -. b) /. c) 6.0
    else if v = g then 60.0 *. (((b -. r) /. c) +. 2.0)
    else 60.0 *. (((r -. g) /. c) +. 4.0)
  in
  let hue = if hue < 0.0 then hue +. 360.0 else hue in
  let s = if v = 0.0 then 0.0 else c /. v in
  (hue, s, v)

let complement color =
  let h, s, v = to_hsv color in
  hsva (h +. 180.0) s v color.alpha

let gray_scale v =
  let v = clamp_unit v in
  let ch = int_of_float (Float.round (v *. 255.0)) in
  rgb ch ch ch

let to_css { red; green; blue; alpha } =
  if alpha >= 1.0 then Printf.sprintf "rgb(%d,%d,%d)" red green blue
  else Printf.sprintf "rgba(%d,%d,%d,%g)" red green blue alpha

let equal a b =
  a.red = b.red && a.green = b.green && a.blue = b.blue
  && Float.abs (a.alpha -. b.alpha) < 1e-9

let pp ppf c = Format.pp_print_string ppf (to_css c)

let red = rgb 204 0 0
let orange = rgb 255 165 0
let yellow = rgb 255 255 0
let green = rgb 0 153 0
let blue = rgb 0 0 204
let purple = rgb 128 0 128
let brown = rgb 139 69 19
let black = rgb 0 0 0
let white = rgb 255 255 255
let gray = rgb 128 128 128
let grey = gray
let light_gray = rgb 211 211 211
let dark_gray = rgb 90 90 90
let charcoal = rgb 54 69 79
let pink = rgb 255 192 203
let cyan = rgb 0 255 255
let magenta = rgb 255 0 255
let transparent = rgba 0 0 0 0.0
