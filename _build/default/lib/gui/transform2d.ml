type t = {
  a : float;
  b : float;
  c : float;
  d : float;
  x : float;
  y : float;
}

let identity = { a = 1.0; b = 0.0; c = 0.0; d = 1.0; x = 0.0; y = 0.0 }

let matrix a b c d x y = { a; b; c; d; x; y }

let translation x y = { identity with x; y }

let rotation theta =
  let co = cos theta in
  let si = sin theta in
  { a = co; b = -.si; c = si; d = co; x = 0.0; y = 0.0 }

let scale s = { identity with a = s; d = s }

let scale_xy sx sy = { identity with a = sx; d = sy }

let shear kx ky = { identity with b = kx; c = ky }

let multiply m n =
  {
    a = (m.a *. n.a) +. (m.b *. n.c);
    b = (m.a *. n.b) +. (m.b *. n.d);
    c = (m.c *. n.a) +. (m.d *. n.c);
    d = (m.c *. n.b) +. (m.d *. n.d);
    x = (m.a *. n.x) +. (m.b *. n.y) +. m.x;
    y = (m.c *. n.x) +. (m.d *. n.y) +. m.y;
  }

let apply m (u, v) = ((m.a *. u) +. (m.b *. v) +. m.x, (m.c *. u) +. (m.d *. v) +. m.y)

let determinant m = (m.a *. m.d) -. (m.b *. m.c)

let invert m =
  let det = determinant m in
  if Float.abs det < 1e-12 then None
  else
    let ia = m.d /. det in
    let ib = -.m.b /. det in
    let ic = -.m.c /. det in
    let id = m.a /. det in
    Some
      {
        a = ia;
        b = ib;
        c = ic;
        d = id;
        x = -.((ia *. m.x) +. (ib *. m.y));
        y = -.((ic *. m.x) +. (id *. m.y));
      }

let equal ?(eps = 1e-9) m n =
  let close p q = Float.abs (p -. q) <= eps in
  close m.a n.a && close m.b n.b && close m.c n.c && close m.d n.d
  && close m.x n.x && close m.y n.y

let pp ppf m =
  Format.fprintf ppf "[%g %g %g; %g %g %g]" m.a m.b m.x m.c m.d m.y
