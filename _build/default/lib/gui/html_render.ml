open Element

let escape = Svg_render.escape

let style_of_text_style (st : Text.style) =
  let buf = Buffer.create 64 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "font-family:%s;" (if st.Text.monospace then "monospace" else st.Text.typeface);
  add "font-size:%gpx;" st.Text.height;
  add "color:%s;" (Color.to_css st.Text.color);
  if st.Text.bold then add "font-weight:bold;";
  if st.Text.italic then add "font-style:italic;";
  if st.Text.underline then add "text-decoration:underline;";
  Buffer.contents buf

let render_text txt =
  let render_run (st, s) =
    let span =
      Printf.sprintf "<span style=\"%s\">%s</span>" (style_of_text_style st)
        (escape s)
    in
    match st.Text.link with
    | Some url -> Printf.sprintf "<a href=\"%s\">%s</a>" (escape url) span
    | None -> span
  in
  String.concat "" (List.map render_run (Text.runs txt))

let rec render_at ?(x = 0) ?(y = 0) e =
  let w = width_of e in
  let h = height_of e in
  let base_style =
    let bg =
      match background_of e with
      | Some c -> Printf.sprintf "background-color:%s;" (Color.to_css c)
      | None -> ""
    in
    let op =
      if opacity_of e < 1.0 then Printf.sprintf "opacity:%g;" (opacity_of e)
      else ""
    in
    Printf.sprintf
      "position:absolute;left:%dpx;top:%dpx;width:%dpx;height:%dpx;overflow:hidden;%s%s"
      x y w h bg op
  in
  let wrap inner = Printf.sprintf "<div style=\"%s\">%s</div>" base_style inner in
  let body =
    match prim_of e with
    | Prim_empty | Prim_spacer -> wrap ""
    | Prim_text txt -> wrap (render_text txt)
    | Prim_image { src; _ } ->
      wrap
        (Printf.sprintf "<img src=\"%s\" style=\"width:%dpx;height:%dpx\">"
           (escape src) w h)
    | Prim_fitted_image { src; _ } ->
      wrap
        (Printf.sprintf
           "<img src=\"%s\" style=\"width:%dpx;height:%dpx;object-fit:cover\">"
           (escape src) w h)
    | Prim_cropped_image { src; img_w; img_h; off_x; off_y } ->
      wrap
        (Printf.sprintf
           "<img src=\"%s\" style=\"width:%dpx;height:%dpx;margin-left:%dpx;margin-top:%dpx\">"
           (escape src) img_w img_h (-off_x) (-off_y))
    | Prim_video src ->
      wrap
        (Printf.sprintf
           "<video src=\"%s\" style=\"width:%dpx;height:%dpx\" controls></video>"
           (escape src) w h)
    | Prim_flow (dir, children) ->
      let render_children () =
        let _, htmls =
          List.fold_left
            (fun (cursor, acc) child ->
              let cw = width_of child in
              let ch = height_of child in
              let cx, cy = child_offset dir (w, h) (cursor, 0) (cw, ch) in
              let advance =
                match dir with
                | Left | Right -> cw
                | Up | Down -> ch
                | Inward | Outward -> 0
              in
              (cursor + advance, render_at ~x:cx ~y:cy child :: acc))
            (0, []) children
        in
        List.rev htmls
      in
      let children_html =
        match dir with
        | Inward -> List.rev (render_children ())
        | _ -> render_children ()
      in
      wrap (String.concat "" children_html)
    | Prim_container (pos, child) ->
      let cx, cy = position_offset pos (w, h) (size_of child) in
      wrap (render_at ~x:cx ~y:cy child)
    | Prim_collage forms -> wrap (Svg_render.render_forms ~width:w ~height:h forms)
  in
  match href_of e with
  | Some url -> Printf.sprintf "<a href=\"%s\">%s</a>" (escape url) body
  | None -> body

let render e = render_at e

let to_page ?(title = "Elm") e =
  Printf.sprintf
    "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>%s</title>\n\
     </head>\n<body style=\"margin:0\">\n<div style=\"position:relative;width:%dpx;height:%dpx\">\n\
     %s\n</div>\n</body>\n</html>\n"
    (escape title) (width_of e) (height_of e) (render e)
