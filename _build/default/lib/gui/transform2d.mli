(** 2D affine transforms (Elm's [Matrix2D] library, used with
    [groupTransform] to place whole groups of forms).

    A transform is the matrix

    {v
      | a b x |
      | c d y |
    v}

    applied as [(u, v) -> (a u + b v + x, c u + d v + y)]. *)

type t = {
  a : float;
  b : float;
  c : float;
  d : float;
  x : float;
  y : float;
}

val identity : t

val matrix : float -> float -> float -> float -> float -> float -> t
(** [matrix a b c d x y]. *)

val translation : float -> float -> t

val rotation : float -> t
(** Counter-clockwise, radians. *)

val scale : float -> t

val scale_xy : float -> float -> t
(** Non-uniform scaling (not expressible with {!Form.scale}). *)

val shear : float -> float -> t

val multiply : t -> t -> t
(** [multiply m n] applies [n] first, then [m]. *)

val apply : t -> float * float -> float * float

val invert : t -> t option
(** [None] for singular matrices. *)

val determinant : t -> float

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
