type direction =
  | Up
  | Down
  | Left
  | Right
  | Inward
  | Outward

type position =
  | Top_left
  | Mid_top
  | Top_right
  | Mid_left
  | Middle
  | Mid_right
  | Bottom_left
  | Mid_bottom
  | Bottom_right
  | At of int * int

type point = float * float

type line_cap =
  | Flat
  | Round
  | Padded

type line_join =
  | Smooth
  | Sharp
  | Clipped

type line_style = {
  line_color : Color.t;
  line_width : float;
  cap : line_cap;
  join : line_join;
  dashing : int list;
}

type gradient =
  | Linear of {
      g_start : point;
      g_end : point;
      stops : (float * Color.t) list;
    }
  | Radial of {
      center : point;
      radius : float;
      stops : (float * Color.t) list;
    }

type fill_style =
  | Filled of Color.t
  | Textured of string
  | Gradient of gradient
  | Outline of line_style

type t = {
  w : int;
  h : int;
  elem_opacity : float;
  background : Color.t option;
  href : string option;
  prim : primitive;
}

and form = {
  theta : float;
  form_scale : float;
  form_x : float;
  form_y : float;
  form_alpha : float;
  basic : basic_form;
}

and basic_form =
  | Form_path of line_style * point list
  | Form_shape of fill_style * point list
  | Form_text of Text.t
  | Form_element of t
  | Form_group of form list
  | Form_group_transform of Transform2d.t * form list

and primitive =
  | Prim_empty
  | Prim_text of Text.t
  | Prim_image of { src : string; img_w : int; img_h : int }
  | Prim_fitted_image of { src : string; img_w : int; img_h : int }
  | Prim_cropped_image of {
      src : string;
      img_w : int;
      img_h : int;
      off_x : int;
      off_y : int;
    }
  | Prim_video of string
  | Prim_spacer
  | Prim_flow of direction * t list
  | Prim_container of position * t
  | Prim_collage of form list

let width_of e = e.w
let height_of e = e.h
let size_of e = (e.w, e.h)
let prim_of e = e.prim
let opacity_of e = e.elem_opacity
let background_of e = e.background
let href_of e = e.href

let make w h prim =
  {
    w = Stdlib.max 0 w;
    h = Stdlib.max 0 h;
    elem_opacity = 1.0;
    background = None;
    href = None;
    prim;
  }

let empty = make 0 0 Prim_empty

let text txt =
  let w, h = Text.measure txt in
  make w h (Prim_text txt)

let plain_text s = text (Text.of_string s)

let as_text s = text (Text.monospace (Text.of_string s))

let image w h src = make w h (Prim_image { src; img_w = w; img_h = h })

let fitted_image w h src =
  make w h (Prim_fitted_image { src; img_w = w; img_h = h })

let cropped_image w h (off_x, off_y) src =
  make w h (Prim_cropped_image { src; img_w = w; img_h = h; off_x; off_y })

let video w h src = make w h (Prim_video src)

let spacer w h = make w h Prim_spacer

let paragraph width s =
  let max_chars = Stdlib.max 1 (width / Text.char_width Text.default_style.Text.height) in
  let lines = Text.wrap_words ~max_chars s in
  let e = text (Text.of_string (String.concat "\n" lines)) in
  { e with w = Stdlib.max e.w width }

let flow dir children =
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 children in
  let maxi f = List.fold_left (fun acc e -> Stdlib.max acc (f e)) 0 children in
  let w, h =
    match dir with
    | Left | Right -> (sum width_of, maxi height_of)
    | Up | Down -> (maxi width_of, sum height_of)
    | Inward | Outward -> (maxi width_of, maxi height_of)
  in
  make w h (Prim_flow (dir, children))

let above a b = flow Down [ a; b ]
let below a b = flow Down [ b; a ]
let beside a b = flow Right [ a; b ]
let layers es = flow Outward es

let container w h pos child = make w h (Prim_container (pos, child))

let collage w h forms = make w h (Prim_collage forms)

let width new_w e =
  match e.prim with
  | Prim_image { img_h; img_w; _ } when img_w > 0 ->
    (* plain images keep their aspect ratio *)
    { e with w = new_w; h = img_h * new_w / img_w }
  | _ -> { e with w = new_w }

let height new_h e =
  match e.prim with
  | Prim_image { img_h; img_w; _ } when img_h > 0 ->
    { e with h = new_h; w = img_w * new_h / img_h }
  | _ -> { e with h = new_h }

let size w h e = { e with w; h }

let opacity o e = { e with elem_opacity = o }

let color c e = { e with background = Some c }

let link url e = { e with href = Some url }

let position_offset pos (w, h) (cw, ch) =
  let center x total = (total - x) / 2 in
  match pos with
  | Top_left -> (0, 0)
  | Mid_top -> (center cw w, 0)
  | Top_right -> (w - cw, 0)
  | Mid_left -> (0, center ch h)
  | Middle -> (center cw w, center ch h)
  | Mid_right -> (w - cw, center ch h)
  | Bottom_left -> (0, h - ch)
  | Mid_bottom -> (center cw w, h - ch)
  | Bottom_right -> (w - cw, h - ch)
  | At (x, y) -> (x, y)

let child_offset dir (w, h) (cursor_main, _max_other) (cw, ch) =
  match dir with
  | Right -> (cursor_main, 0)
  | Left -> (w - cursor_main - cw, 0)
  | Down -> (0, cursor_main)
  | Up -> (0, h - cursor_main - ch)
  | Inward | Outward -> (0, 0)
