(** Purely functional graphical layout (paper Sections 2 and 4.1).

    An {!t} ("Element") is a rectangle with a known width and height that can
    contain text, images or video, and composes with other elements through
    {!flow}, {!container} and {!layers} — "making layout easy to reason
    about". Forms (free-form 2D shapes, {!form}) live in {!Form}; they enter
    the rectangular world through {!collage} and leave it through
    {!Form.to_form}. The two types are mutually recursive, so both are
    defined here and re-exported by {!Form}. *)

type direction =
  | Up
  | Down
  | Left
  | Right
  | Inward  (** Stack, first element on top. *)
  | Outward  (** Stack, last element on top. *)

(** One of the nine container positions of Section 2 ("topLeft, midTop,
    topRight, midLeft, middle, and so on"), or an absolute offset. *)
type position =
  | Top_left
  | Mid_top
  | Top_right
  | Mid_left
  | Middle
  | Mid_right
  | Bottom_left
  | Mid_bottom
  | Bottom_right
  | At of int * int  (** Absolute offset of the child's top-left corner. *)

type t

(** {1 Forms (defined here for mutual recursion; see {!Form})} *)

type point = float * float

type line_cap =
  | Flat
  | Round
  | Padded

type line_join =
  | Smooth
  | Sharp
  | Clipped

type line_style = {
  line_color : Color.t;
  line_width : float;
  cap : line_cap;
  join : line_join;
  dashing : int list;
}

type gradient =
  | Linear of {
      g_start : point;
      g_end : point;
      stops : (float * Color.t) list;
    }
  | Radial of {
      center : point;
      radius : float;
      stops : (float * Color.t) list;
    }

type fill_style =
  | Filled of Color.t
  | Textured of string
  | Gradient of gradient
  | Outline of line_style

type form = {
  theta : float;  (** Rotation in radians, counter-clockwise. *)
  form_scale : float;
  form_x : float;
  form_y : float;
  form_alpha : float;
  basic : basic_form;
}

and basic_form =
  | Form_path of line_style * point list
  | Form_shape of fill_style * point list
  | Form_text of Text.t
  | Form_element of t
  | Form_group of form list
  | Form_group_transform of Transform2d.t * form list

(** {1 Element structure (exposed for the renderers)} *)

type primitive =
  | Prim_empty
  | Prim_text of Text.t
  | Prim_image of { src : string; img_w : int; img_h : int }
  | Prim_fitted_image of { src : string; img_w : int; img_h : int }
  | Prim_cropped_image of {
      src : string;
      img_w : int;
      img_h : int;
      off_x : int;
      off_y : int;
    }
  | Prim_video of string
  | Prim_spacer
  | Prim_flow of direction * t list
  | Prim_container of position * t
  | Prim_collage of form list

val width_of : t -> int
val height_of : t -> int
val size_of : t -> int * int
val prim_of : t -> primitive
val opacity_of : t -> float
val background_of : t -> Color.t option
val href_of : t -> string option

(** {1 Creation} *)

val empty : t
(** A zero-by-zero element. *)

val text : Text.t -> t
(** Sized with {!Text.measure}. *)

val plain_text : string -> t
(** [text (Text.of_string s)]. *)

val as_text : string -> t
(** Monospaced text, the style Elm's [asText] uses for printed values. *)

val image : int -> int -> string -> t
(** [image w h src]. *)

val fitted_image : int -> int -> string -> t
(** Image scaled to fit the given area, as in Example 3. *)

val cropped_image : int -> int -> int * int -> string -> t

val video : int -> int -> string -> t

val spacer : int -> int -> t

val paragraph : int -> string -> t
(** [paragraph width s]: word-wrapped text fitting the given pixel width
    (using the deterministic {!Text} metrics). *)

(** {1 Composition} *)

val flow : direction -> t list -> t
(** Lay out elements in a direction. Perpendicular size is the maximum of
    the children's; parallel size is their sum ([Inward]/[Outward] take the
    maximum in both axes). *)

val above : t -> t -> t
(** [a above b = flow Down [a; b]]. *)

val below : t -> t -> t
val beside : t -> t -> t
val layers : t list -> t

val container : int -> int -> position -> t -> t
(** A [w] by [h] area with the child placed at the given position — the
    paper's answer to CSS centering (Example 1). *)

val collage : int -> int -> form list -> t
(** Combine forms in an unstructured way into an element (Section 4.1).
    The coordinate system has its origin at the center, y pointing up. *)

(** {1 Adjustment} *)

val width : int -> t -> t
(** Set the width. Plain images keep their aspect ratio, like Elm. *)

val height : int -> t -> t
val size : int -> int -> t -> t
val opacity : float -> t -> t
val color : Color.t -> t -> t
(** Set a background color. *)

val link : string -> t -> t

(** {1 Inspection helpers} *)

val child_offset : direction -> int * int -> (int * int) -> int * int -> int * int
(** [child_offset dir (w, h) (cursor_main, max_other) (cw, ch)] is used by
    renderers to place flow children; exposed for testing. Returns the
    (x, y) of a child whose running position along the flow axis is
    [cursor_main]. *)

val position_offset : position -> int * int -> int * int -> int * int
(** [position_offset pos (w, h) (cw, ch)] is the top-left offset of a child
    of size [(cw, ch)] positioned in a container of size [(w, h)]. *)
