type style = {
  typeface : string;
  height : float;
  color : Color.t;
  bold : bool;
  italic : bool;
  underline : bool;
  monospace : bool;
  link : string option;
}

type t = { text_runs : (style * string) list }

let default_style =
  {
    typeface = "sans-serif";
    height = 14.0;
    color = Color.black;
    bold = false;
    italic = false;
    underline = false;
    monospace = false;
    link = None;
  }

let of_string s = { text_runs = [ (default_style, s) ] }

let styled style s = { text_runs = [ (style, s) ] }

let runs t = t.text_runs

let to_string t = String.concat "" (List.map snd t.text_runs)

let append a b = { text_runs = a.text_runs @ b.text_runs }

let ( ++ ) = append

let concat ts = { text_runs = List.concat_map (fun t -> t.text_runs) ts }

let map_style f t = { text_runs = List.map (fun (st, s) -> (f st, s)) t.text_runs }

let bold t = map_style (fun st -> { st with bold = true }) t
let italic t = map_style (fun st -> { st with italic = true }) t
let underline t = map_style (fun st -> { st with underline = true }) t
let monospace t = map_style (fun st -> { st with monospace = true }) t
let color c t = map_style (fun st -> { st with color = c }) t
let height h t = map_style (fun st -> { st with height = h }) t
let typeface face t = map_style (fun st -> { st with typeface = face }) t
let link url t = map_style (fun st -> { st with link = Some url }) t

let char_width h = Stdlib.max 1 (int_of_float (Float.round (0.6 *. h)))

let line_height h = Stdlib.max 1 (int_of_float (Float.round (1.2 *. h)))

(* Measure by lines: runs are concatenated, then split on newlines; each
   line's width is the sum of its fragments measured in their own style. *)
let measure t =
  let max_height =
    List.fold_left (fun acc (st, _) -> Float.max acc st.height) 0.0 t.text_runs
  in
  let max_height = if max_height = 0.0 then default_style.height else max_height in
  let lines = ref [ 0 ] in
  let add_width w =
    match !lines with
    | current :: rest -> lines := (current + w) :: rest
    | [] -> lines := [ w ]
  in
  List.iter
    (fun (st, s) ->
      let cw = char_width st.height in
      String.iter
        (fun c -> if c = '\n' then lines := 0 :: !lines else add_width cw)
        s)
    t.text_runs;
  let widths = !lines in
  let width = List.fold_left Stdlib.max 0 widths in
  let nlines = List.length widths in
  (width, nlines * line_height max_height)

let wrap_words ~max_chars s =
  let words = List.filter (fun w -> w <> "") (String.split_on_char ' ' s) in
  let lines, current =
    List.fold_left
      (fun (lines, current) word ->
        if current = "" then (lines, word)
        else if String.length current + 1 + String.length word <= max_chars then
          (lines, current ^ " " ^ word)
        else (current :: lines, word))
      ([], "") words
  in
  List.rev (if current = "" then lines else current :: lines)
