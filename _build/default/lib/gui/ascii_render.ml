open Element

let cell_w = 8
let cell_h = 16

let cells_w px = (px + cell_w - 1) / cell_w

let cells_h px = (px + cell_h - 1) / cell_h

type grid = {
  cols : int;
  rows : int;
  cells : Bytes.t;
}

let grid_create cols rows =
  { cols; rows; cells = Bytes.make (Stdlib.max 0 (cols * rows)) ' ' }

let grid_put g col row c =
  if col >= 0 && col < g.cols && row >= 0 && row < g.rows then
    Bytes.set g.cells ((row * g.cols) + col) c

let grid_string g col row s =
  String.iteri (fun i c -> grid_put g (col + i) row c) s

let grid_box g col row w h label =
  if w >= 2 && h >= 1 then begin
    for i = 0 to w - 1 do
      grid_put g (col + i) row '-';
      grid_put g (col + i) (row + h - 1) '-'
    done;
    for j = 0 to h - 1 do
      grid_put g col (row + j) '|';
      grid_put g (col + w - 1) (row + j) '|'
    done;
    grid_put g col row '+';
    grid_put g (col + w - 1) row '+';
    grid_put g col (row + h - 1) '+';
    grid_put g (col + w - 1) (row + h - 1) '+';
    let label =
      if String.length label > w - 2 then String.sub label 0 (Stdlib.max 0 (w - 2))
      else label
    in
    if h >= 3 then grid_string g (col + 1) (row + (h / 2)) label
    else if h >= 1 && w > String.length label + 2 then
      grid_string g (col + 1) row label
  end

let rec draw g ~x ~y e =
  let col = x / cell_w in
  let row = y / cell_h in
  let wc = cells_w (width_of e) in
  let hc = cells_h (height_of e) in
  match prim_of e with
  | Prim_empty | Prim_spacer -> ()
  | Prim_text txt ->
    let lines = String.split_on_char '\n' (Text.to_string txt) in
    List.iteri (fun i line -> grid_string g col (row + i) line) lines
  | Prim_image { src; _ } | Prim_fitted_image { src; _ }
  | Prim_cropped_image { src; _ } ->
    grid_box g col row wc hc ("img:" ^ Filename.basename src)
  | Prim_video src -> grid_box g col row wc hc ("video:" ^ Filename.basename src)
  | Prim_collage forms ->
    grid_box g col row wc hc (Printf.sprintf "collage[%d]" (List.length forms))
  | Prim_flow (dir, children) ->
    let w = width_of e in
    let h = height_of e in
    ignore
      (List.fold_left
         (fun cursor child ->
           let cw = width_of child in
           let ch = height_of child in
           let cx, cy = child_offset dir (w, h) (cursor, 0) (cw, ch) in
           draw g ~x:(x + cx) ~y:(y + cy) child;
           cursor
           +
           match dir with
           | Left | Right -> cw
           | Up | Down -> ch
           | Inward | Outward -> 0)
         0 children)
  | Prim_container (pos, child) ->
    let cx, cy = position_offset pos (size_of e) (size_of child) in
    draw g ~x:(x + cx) ~y:(y + cy) child

let render e =
  let g = grid_create (cells_w (width_of e)) (cells_h (height_of e)) in
  draw g ~x:0 ~y:0 e;
  let rows =
    List.init g.rows (fun r ->
        let line = Bytes.sub_string g.cells (r * g.cols) g.cols in
        (* right-trim *)
        let len = ref (String.length line) in
        while !len > 0 && line.[!len - 1] = ' ' do
          decr len
        done;
        String.sub line 0 !len)
  in
  String.concat "\n" rows
