lib/gui/html_render.ml: Buffer Color Element List Printf String Svg_render Text
