lib/gui/text.mli: Color
