lib/gui/text.ml: Color Float List Stdlib String
