lib/gui/plot.ml: Array Color Element Float Form List Printf Stdlib
