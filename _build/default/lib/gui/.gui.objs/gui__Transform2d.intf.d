lib/gui/transform2d.mli: Format
