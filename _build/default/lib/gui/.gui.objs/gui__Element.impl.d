lib/gui/element.ml: Color List Stdlib String Text Transform2d
