lib/gui/plot.mli: Color Element
