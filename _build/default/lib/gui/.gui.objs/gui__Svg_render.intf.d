lib/gui/svg_render.mli: Element
