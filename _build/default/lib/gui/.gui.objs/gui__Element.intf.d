lib/gui/element.mli: Color Text Transform2d
