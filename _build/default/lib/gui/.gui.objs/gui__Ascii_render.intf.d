lib/gui/ascii_render.mli: Element
