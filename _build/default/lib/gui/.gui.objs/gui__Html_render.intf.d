lib/gui/html_render.mli: Element
