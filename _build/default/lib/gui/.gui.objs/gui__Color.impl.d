lib/gui/color.ml: Float Format Printf
