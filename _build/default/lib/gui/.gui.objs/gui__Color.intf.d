lib/gui/color.mli: Format
