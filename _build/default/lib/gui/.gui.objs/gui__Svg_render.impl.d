lib/gui/svg_render.ml: Buffer Color Element Float List Printf String Text Transform2d
