lib/gui/form.ml: Color Element Float List Stdlib Text Transform2d
