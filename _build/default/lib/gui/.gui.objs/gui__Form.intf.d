lib/gui/form.mli: Color Element Text Transform2d
