lib/gui/transform2d.ml: Float Format
