lib/gui/ascii_render.ml: Bytes Element Filename List Printf Stdlib String Text
