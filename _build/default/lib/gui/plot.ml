type series = {
  label : string;
  color : Color.t;
  points : (float * float) list;
}

let palette = [| Color.blue; Color.red; Color.green; Color.purple; Color.orange |]

let series_count = ref 0

let series ?label ?color points =
  incr series_count;
  let label =
    match label with Some l -> l | None -> Printf.sprintf "series %d" !series_count
  in
  let color =
    match color with
    | Some c -> c
    | None -> palette.((!series_count - 1) mod Array.length palette)
  in
  { label; color; points }

let range points =
  match points with
  | [] -> ((0.0, 1.0), (0.0, 1.0))
  | (x0, y0) :: rest ->
    let (xmin, xmax), (ymin, ymax) =
      List.fold_left
        (fun ((xl, xh), (yl, yh)) (x, y) ->
          ((Float.min xl x, Float.max xh x), (Float.min yl y, Float.max yh y)))
        ((x0, x0), (y0, y0))
        rest
    in
    let widen lo hi = if hi -. lo < 1e-9 then (lo -. 0.5, hi +. 0.5) else (lo, hi) in
    (widen xmin xmax, widen ymin ymax)

let project ~plot_w ~plot_h ~xrange:(xmin, xmax) ~yrange:(ymin, ymax) (x, y) =
  let fx = (x -. xmin) /. (xmax -. xmin) in
  let fy = (y -. ymin) /. (ymax -. ymin) in
  ((fx -. 0.5) *. plot_w, (fy -. 0.5) *. plot_h)

let axis_style = Form.solid Color.charcoal

let tick_count = 5

let axes ~plot_w ~plot_h =
  let hw = plot_w /. 2.0 in
  let hh = plot_h /. 2.0 in
  let x_axis = Form.traced axis_style (Form.segment (-.hw, -.hh) (hw, -.hh)) in
  let y_axis = Form.traced axis_style (Form.segment (-.hw, -.hh) (-.hw, hh)) in
  let ticks =
    List.concat
      (List.init (tick_count + 1) (fun i ->
           let f = float_of_int i /. float_of_int tick_count in
           let x = ((f -. 0.5) *. plot_w) in
           let y = ((f -. 0.5) *. plot_h) in
           [
             Form.traced axis_style (Form.segment (x, -.hh) (x, -.hh -. 4.0));
             Form.traced axis_style (Form.segment (-.hw, y) (-.hw -. 4.0, y));
           ]))
  in
  (x_axis :: y_axis :: ticks)

let dot color (x, y) =
  Form.move (x, y) (Form.filled color (Form.circle 2.5))

let legend all_series =
  Element.flow Element.Down
    (List.map
       (fun s ->
         Element.flow Element.Right
           [
             Element.color s.color (Element.spacer 10 10);
             Element.spacer 4 1;
             Element.plain_text s.label;
           ])
       all_series)

let plot_area ~width ~height = (float_of_int width *. 0.85, float_of_int height *. 0.8)

let cartesian_forms ~draw_points ~plot_w ~plot_h all_series =
  let all_points = List.concat_map (fun s -> s.points) all_series in
  let xrange, yrange = range all_points in
  let proj = project ~plot_w ~plot_h ~xrange ~yrange in
  let traces =
    List.concat_map
      (fun s ->
        let projected = List.map proj s.points in
        let line =
          match projected with
          | [] | [ _ ] -> []
          | _ -> [ Form.traced (Form.solid s.color) (Form.path projected) ]
        in
        let markers = if draw_points then List.map (dot s.color) projected else [] in
        line @ markers)
      all_series
  in
  axes ~plot_w ~plot_h @ traces

let framed ~width ~height forms all_series =
  Element.flow Element.Down
    [ Element.collage width height forms; legend all_series ]

let cartesian ?(width = 300) ?(height = 200) ?(draw_points = false) all_series =
  let plot_w, plot_h = plot_area ~width ~height in
  framed ~width ~height
    (cartesian_forms ~draw_points ~plot_w ~plot_h all_series)
    all_series

let scatter ?(width = 300) ?(height = 200) all_series =
  let plot_w, plot_h = plot_area ~width ~height in
  let all_points = List.concat_map (fun s -> s.points) all_series in
  let xrange, yrange = range all_points in
  let proj = project ~plot_w ~plot_h ~xrange ~yrange in
  let markers =
    List.concat_map (fun s -> List.map (dot s.color) (List.map proj s.points)) all_series
  in
  framed ~width ~height (axes ~plot_w ~plot_h @ markers) all_series

let bar ?(width = 300) ?(height = 200) ?(color = Color.blue) data =
  let plot_w, plot_h = plot_area ~width ~height in
  let n = List.length data in
  let vmax =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-9 data
  in
  let slot = plot_w /. float_of_int (Stdlib.max 1 n) in
  let bars =
    List.mapi
      (fun i (_, v) ->
        let h = v /. vmax *. plot_h in
        let x = ((float_of_int i +. 0.5) *. slot) -. (plot_w /. 2.0) in
        Form.move
          (x, (h /. 2.0) -. (plot_h /. 2.0))
          (Form.filled color (Form.rect (slot *. 0.7) h)))
      data
  in
  let labels =
    Element.flow Element.Right
      (List.map
         (fun (label, _) ->
           Element.container (int_of_float slot) 16 Element.Mid_top
             (Element.plain_text label))
         data)
  in
  Element.flow Element.Down
    [ Element.collage width height (axes ~plot_w ~plot_h @ bars); labels ]

let radial ?(width = 240) ?(height = 240) all_series =
  let radius = float_of_int (Stdlib.min width height) /. 2.0 *. 0.85 in
  let rmax =
    List.fold_left
      (fun acc s -> List.fold_left (fun acc (_, r) -> Float.max acc r) acc s.points)
      1e-9 all_series
  in
  let rings =
    List.init 3 (fun i ->
        let f = float_of_int (i + 1) /. 3.0 in
        Form.outlined (Form.solid Color.light_gray) (Form.circle (radius *. f)))
  in
  let spokes =
    List.init 6 (fun i ->
        let angle = Float.pi *. float_of_int i /. 6.0 in
        let dx = radius *. cos angle in
        let dy = radius *. sin angle in
        Form.traced (Form.solid Color.light_gray) (Form.segment (-.dx, -.dy) (dx, dy)))
  in
  let polar (theta, r) =
    let rr = r /. rmax *. radius in
    (rr *. cos theta, rr *. sin theta)
  in
  let traces =
    List.filter_map
      (fun s ->
        match List.map polar s.points with
        | [] | [ _ ] -> None
        | pts -> Some (Form.traced (Form.solid s.color) (Form.path pts)))
      all_series
  in
  framed ~width ~height (rings @ spokes @ traces) all_series
