(** Character-grid preview of elements.

    There is no display in this container, so terminal examples draw the
    layout as ASCII art: one cell per 8x16 pixels, text rendered literally,
    images and collages as labelled boxes. Layout decisions (flow offsets,
    container positioning) use the same arithmetic as the HTML renderer, so
    what you see in the terminal is the same geometry a browser would
    show. *)

val cell_w : int
val cell_h : int

val render : Element.t -> string
(** Multi-line string; rows are right-trimmed. *)
