(** Extracted signal graphs.

    The result of stage-one evaluation, in the form the paper visualizes
    (Figs. 7-8): input nodes, lift nodes, foldp nodes and async source
    nodes, with let-bound sharing preserved (a node referenced twice appears
    once). Node functions are stage-one values ({!Value.t} closures). *)

type node =
  | Ninput of string
  | Nlift of Value.t * int list  (** function, dependency node ids. *)
  | Nfoldp of Value.t * Value.t * int  (** function, initial accumulator, dep. *)
  | Nasync of int

type t

val create : unit -> t

val input : t -> string -> int
(** The node id for an input signal, allocating it on first use (all
    occurrences of an input identifier denote the same source node). *)

val add : t -> node -> int
(** Allocate a fresh node.
    @raise Invalid_argument if the graph is frozen. *)

val freeze : t -> unit
(** Forbid further allocation. Stage-two computation must not create nodes
    (the type system guarantees it never tries). *)

val nodes : t -> (int * node) list
(** In creation order, so dependencies precede dependents. *)

val find : t -> int -> node

val inputs : t -> (string * int) list

val size : t -> int

val to_dot : ?label:string -> t -> root:int option -> string
(** Graphviz rendering in the paper's Fig. 7/8 style. *)
