lib/felm/builtins.ml: Ast Cml Float List Printf Stdlib String Ty Value
