lib/felm/value.ml: Ast Float Format List Option Printf String
