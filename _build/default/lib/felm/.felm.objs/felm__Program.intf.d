lib/felm/program.mli: Ast Parser Ty Value
