lib/felm/eval.ml: Ast Builtins Float List Printf String Value
