lib/felm/ast.mli: Format Hashtbl
