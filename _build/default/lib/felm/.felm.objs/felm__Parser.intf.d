lib/felm/parser.mli: Ast Ty
