lib/felm/denote.ml: Ast Builtins Eval List Printf Program Sgraph Value
