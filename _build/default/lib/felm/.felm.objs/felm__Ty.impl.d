lib/felm/ty.ml: Format Hashtbl List
