lib/felm/trace.mli: Program Value
