lib/felm/interp.mli: Elm_core Program Sgraph Trace Value
