lib/felm/sgraph.ml: Buffer Hashtbl List Printf String Value
