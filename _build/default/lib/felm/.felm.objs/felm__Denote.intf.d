lib/felm/denote.mli: Ast Program Sgraph Value
