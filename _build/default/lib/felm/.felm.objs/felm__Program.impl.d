lib/felm/program.ml: Ast Builtins List Option Parser Printf String Ty Value
