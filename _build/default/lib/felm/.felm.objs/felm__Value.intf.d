lib/felm/value.mli: Ast Format
