lib/felm/sgraph.mli: Value
