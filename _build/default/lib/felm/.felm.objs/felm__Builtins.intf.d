lib/felm/builtins.mli: Ast Ty Value
