lib/felm/lexer.mli: Ast
