lib/felm/ast.ml: Float Format Hashtbl List Printf String
