lib/felm/trace.ml: Float Lexer List Parser Printf Program String Ty Value
