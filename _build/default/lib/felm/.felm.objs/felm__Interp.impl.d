lib/felm/interp.ml: Builtins Cml Denote Elm_core Hashtbl List Program Sgraph Trace Typecheck Value
