lib/felm/parser.ml: Array Ast Lexer List Printf Ty
