lib/felm/ty.mli: Format
