lib/felm/lexer.ml: Array Ast Buffer Char List Printf String
