lib/felm/eval.mli: Ast
