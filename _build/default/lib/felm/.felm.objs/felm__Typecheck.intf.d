lib/felm/typecheck.mli: Ast Program Ty
