lib/felm/typecheck.ml: Ast Builtins List Printf Program Ty
