(** Stage one: functional evaluation (paper Fig. 6).

    A small-step reduction relation over closed, resolved expressions,
    implementing the paper's rules — CONTEXT (left-to-right call-by-value
    through the E contexts), OP, COND-TRUE/FALSE, APPLICATION (binding the
    argument with a [let]), REDUCE (beta for [let]-bound {e simple values}
    only, so signal expressions are never duplicated), and EXPAND (floating
    a signal-bound [let] out of any F context that needs a simple value,
    alpha-renaming to avoid capture). The F contexts are the paper's plus
    the positions of the documented extensions (pair components,
    [fst]/[snd]/[show], builtin arguments).

    By Theorem 1 every well-typed program normalizes to a final term
    [u ::= v | s] of the Fig. 5 intermediate language. *)

exception Runtime_error of string * Ast.loc
(** An ill-typed redex (unreachable from type-checked programs). *)

exception No_fuel of Ast.expr
(** [normalize] exceeded its step budget (diverging input — only possible
    for ill-typed programs). *)

val step : Ast.expr -> Ast.expr option
(** One reduction step; [None] when the expression is a final term (or is
    stuck, which type checking precludes). *)

val normalize : ?fuel:int -> Ast.expr -> Ast.expr
(** Iterate {!step} to a final term. Default fuel: 1_000_000 steps. *)

val steps_to_normal : ?fuel:int -> Ast.expr -> int
(** Number of steps to normalize (for tests and benches). *)

val eval_binop : Ast.binop -> Ast.expr -> Ast.expr -> Ast.expr
(** The OP rule's delta on literal operands (exposed for tests).
    @raise Runtime_error on non-literals. *)
