open Lexer

type decl =
  | Dinput of {
      name : string;
      ty : Ty.t;
      default : Ast.expr;
      dloc : Ast.loc;
    }
  | Ddef of {
      name : string;
      body : Ast.expr;
      dloc : Ast.loc;
    }

exception Parse_error of string * Ast.loc

type state = {
  toks : spanned array;
  mutable pos : int;
}

let peek st = st.toks.(st.pos).tok

let peek_at st k =
  let i = st.pos + k in
  if i < Array.length st.toks then st.toks.(i).tok else EOF

let here st = st.toks.(st.pos).tok_loc

let error st msg = raise (Parse_error (msg, here st))

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st tok what =
  if peek st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found '%s'" what
         (token_to_string (peek st)))

let expect_ident st what =
  match peek st with
  | IDENT x ->
    advance st;
    x
  | t -> error st (Printf.sprintf "expected %s but found '%s'" what (token_to_string t))

(* Does the token stream begin a new top-level declaration here? Layout
   rule: declarations start at column 1 ([input], or a definition head like
   [f x y =]); continuation lines of an expression must be indented. This
   disambiguates [f x] followed by [main = ...] without separators. *)
let at_decl_boundary st =
  st.toks.(st.pos).tok_loc.Ast.col = 1
  &&
  match peek st with
  | KW "input" -> true
  | IDENT _ ->
    let rec scan k =
      match peek_at st k with
      | IDENT _ -> scan (k + 1)
      | OP "=" -> true
      | _ -> false
    in
    scan 1
  | _ -> false

let atom_starts = function
  | INT _ | FLOAT _ | STRING _ | IDENT _ | DOTTED _ | LPAREN | LBRACKET
  | KW "none" ->
    true
  | KW _ | LIFT _ | OP _ | RPAREN | RBRACKET | COMMA | EOF -> false

(* ------------------------------------------------------------------ *)
(* Types *)

let rec parse_ty st =
  let lhs = parse_ty_atom st in
  match peek st with
  | OP "->" ->
    advance st;
    Ty.Tfun (lhs, parse_ty st)
  | _ -> lhs

and parse_ty_atom st =
  match peek st with
  | IDENT "list" ->
    advance st;
    Ty.Tlist (parse_ty_atom st)
  | IDENT "option" ->
    advance st;
    Ty.Toption (parse_ty_atom st)
  | IDENT "unit" -> advance st; Ty.Tunit
  | IDENT "int" -> advance st; Ty.Tint
  | IDENT "float" -> advance st; Ty.Tfloat
  | IDENT "string" -> advance st; Ty.Tstring
  | KW "signal" ->
    advance st;
    Ty.Tsignal (parse_ty_atom st)
  | LPAREN -> (
    advance st;
    let first = parse_ty st in
    match peek st with
    | COMMA ->
      advance st;
      let second = parse_ty st in
      expect st RPAREN "')'";
      Ty.Tpair (first, second)
    | RPAREN ->
      advance st;
      first
    | t -> error st (Printf.sprintf "expected ',' or ')' in type, found '%s'" (token_to_string t)))
  | t -> error st (Printf.sprintf "expected a type, found '%s'" (token_to_string t))

(* ------------------------------------------------------------------ *)
(* Expressions *)

let mk st desc = Ast.mk ~loc:(here st) desc

let rec parse_expr st =
  match peek st with
  | OP "\\" -> parse_lambda st
  | KW "let" -> parse_let st
  | KW "if" -> parse_if st
  | _ -> parse_or st

and parse_lambda st =
  let loc = here st in
  expect st (OP "\\") "'\\'";
  let rec params acc =
    match peek st with
    | IDENT x ->
      advance st;
      params (x :: acc)
    | OP "->" ->
      advance st;
      List.rev acc
    | t -> error st (Printf.sprintf "expected parameter or '->', found '%s'" (token_to_string t))
  in
  let ps = params [] in
  if ps = [] then raise (Parse_error ("lambda needs at least one parameter", loc));
  let body = parse_expr st in
  List.fold_right (fun x acc -> Ast.mk ~loc (Ast.Lam (x, acc))) ps body

and parse_let st =
  let loc = here st in
  expect st (KW "let") "'let'";
  let name = expect_ident st "a variable name" in
  (* sugar: let f x y = e in ... *)
  let rec params acc =
    match peek st with
    | IDENT x ->
      advance st;
      params (x :: acc)
    | _ -> List.rev acc
  in
  let ps = params [] in
  expect st (OP "=") "'='";
  let rhs = parse_expr st in
  let rhs = List.fold_right (fun x acc -> Ast.mk ~loc (Ast.Lam (x, acc))) ps rhs in
  expect st (KW "in") "'in'";
  let body = parse_expr st in
  Ast.mk ~loc (Ast.Let (name, rhs, body))

and parse_if st =
  let loc = here st in
  expect st (KW "if") "'if'";
  let cond = parse_expr st in
  expect st (KW "then") "'then'";
  let e2 = parse_expr st in
  expect st (KW "else") "'else'";
  let e3 = parse_expr st in
  Ast.mk ~loc (Ast.If (cond, e2, e3))

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | OP "||" ->
    let loc = here st in
    advance st;
    Ast.mk ~loc (Ast.Binop (Ast.Or, lhs, parse_or st))
  | _ -> lhs

and parse_and st =
  let lhs = parse_cmp st in
  match peek st with
  | OP "&&" ->
    let loc = here st in
    advance st;
    Ast.mk ~loc (Ast.Binop (Ast.And, lhs, parse_and st))
  | _ -> lhs

and parse_cmp st =
  let lhs = parse_cat st in
  let op =
    match peek st with
    | OP "==" -> Some Ast.Eq
    | OP "/=" -> Some Ast.Ne
    | OP "<" -> Some Ast.Lt
    | OP "<=" -> Some Ast.Le
    | OP ">" -> Some Ast.Gt
    | OP ">=" -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | Some op ->
    let loc = here st in
    advance st;
    Ast.mk ~loc (Ast.Binop (op, lhs, parse_cat st))
  | None -> lhs

and parse_cat st =
  let lhs = parse_add st in
  match peek st with
  | OP "^" ->
    let loc = here st in
    advance st;
    Ast.mk ~loc (Ast.Binop (Ast.Cat, lhs, parse_cat st))
  | _ -> lhs

and parse_add st =
  let rec go lhs =
    let op =
      match peek st with
      | OP "+" -> Some Ast.Add
      | OP "-" -> Some Ast.Sub
      | OP "+." -> Some Ast.Fadd
      | OP "-." -> Some Ast.Fsub
      | _ -> None
    in
    match op with
    | Some op ->
      let loc = here st in
      advance st;
      go (Ast.mk ~loc (Ast.Binop (op, lhs, parse_mul st)))
    | None -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    let op =
      match peek st with
      | OP "*" -> Some Ast.Mul
      | OP "/" -> Some Ast.Div
      | OP "%" -> Some Ast.Mod
      | OP "*." -> Some Ast.Fmul
      | OP "/." -> Some Ast.Fdiv
      | _ -> None
    in
    match op with
    | Some op ->
      let loc = here st in
      advance st;
      go (Ast.mk ~loc (Ast.Binop (op, lhs, parse_app st)))
    | None -> lhs
  in
  go (parse_app st)

and parse_app st =
  match peek st with
  | LIFT n ->
    let loc = here st in
    advance st;
    let f = parse_atom st in
    let deps = List.init n (fun _ -> parse_atom st) in
    Ast.mk ~loc (Ast.Lift (f, deps))
  | KW "foldp" ->
    let loc = here st in
    advance st;
    let f = parse_atom st in
    let b = parse_atom st in
    let s = parse_atom st in
    Ast.mk ~loc (Ast.Foldp (f, b, s))
  | KW "async" ->
    let loc = here st in
    advance st;
    Ast.mk ~loc (Ast.Async (parse_atom st))
  | KW "some" ->
    let loc = here st in
    advance st;
    Ast.mk ~loc (Ast.Some_e (parse_atom st))
  | KW "fst" ->
    let loc = here st in
    advance st;
    Ast.mk ~loc (Ast.Fst (parse_atom st))
  | KW "snd" ->
    let loc = here st in
    advance st;
    Ast.mk ~loc (Ast.Snd (parse_atom st))
  | KW "show" ->
    let loc = here st in
    advance st;
    Ast.mk ~loc (Ast.Show (parse_atom st))
  | _ ->
    let rec apply head =
      if atom_starts (peek st) && not (at_decl_boundary st) then begin
        let loc = here st in
        let arg = parse_atom st in
        apply (Ast.mk ~loc (Ast.App (head, arg)))
      end
      else head
    in
    apply (parse_atom st)

and parse_atom st =
  match peek st with
  | KW "none" ->
    let e = mk st Ast.None_lit in
    advance st;
    e
  | INT n ->
    let e = mk st (Ast.Int n) in
    advance st;
    e
  | FLOAT f ->
    let e = mk st (Ast.Float f) in
    advance st;
    e
  | STRING s ->
    let e = mk st (Ast.String s) in
    advance st;
    e
  | IDENT x ->
    let e = mk st (Ast.Var x) in
    advance st;
    e
  | DOTTED x ->
    let e = mk st (Ast.Var x) in
    advance st;
    e
  | OP "-" -> (
    (* negative literal *)
    let loc = here st in
    advance st;
    match peek st with
    | INT n ->
      advance st;
      Ast.mk ~loc (Ast.Int (-n))
    | FLOAT f ->
      advance st;
      Ast.mk ~loc (Ast.Float (-.f))
    | t ->
      error st
        (Printf.sprintf "expected a number after unary '-', found '%s'"
           (token_to_string t)))
  | LBRACKET -> (
    let loc = here st in
    advance st;
    match peek st with
    | RBRACKET ->
      advance st;
      Ast.mk ~loc (Ast.List_lit [])
    | _ ->
      let rec elements acc =
        let e = parse_expr st in
        match peek st with
        | COMMA ->
          advance st;
          elements (e :: acc)
        | RBRACKET ->
          advance st;
          List.rev (e :: acc)
        | t ->
          error st
            (Printf.sprintf "expected ',' or ']', found '%s'" (token_to_string t))
      in
      Ast.mk ~loc (Ast.List_lit (elements [])))
  | LPAREN -> (
    advance st;
    match peek st with
    | RPAREN ->
      let e = mk st Ast.Unit in
      advance st;
      e
    | _ -> (
      let first = parse_expr st in
      match peek st with
      | COMMA ->
        let loc = here st in
        advance st;
        let second = parse_expr st in
        expect st RPAREN "')'";
        Ast.mk ~loc (Ast.Pair (first, second))
      | RPAREN ->
        advance st;
        first
      | t ->
        error st
          (Printf.sprintf "expected ',' or ')', found '%s'" (token_to_string t))))
  | t -> error st (Printf.sprintf "expected an expression, found '%s'" (token_to_string t))

(* ------------------------------------------------------------------ *)
(* Declarations *)

let parse_decl st =
  let dloc = here st in
  match peek st with
  | KW "input" ->
    advance st;
    let name =
      match peek st with
      | IDENT x | DOTTED x ->
        advance st;
        x
      | t -> error st (Printf.sprintf "expected input name, found '%s'" (token_to_string t))
    in
    expect st (OP ":") "':'";
    let ty = parse_ty st in
    expect st (OP "=") "'='";
    let default = parse_expr st in
    Dinput { name; ty; default; dloc }
  | IDENT _ ->
    let name = expect_ident st "a definition name" in
    let rec params acc =
      match peek st with
      | IDENT x ->
        advance st;
        params (x :: acc)
      | _ -> List.rev acc
    in
    let ps = params [] in
    expect st (OP "=") "'='";
    let body = parse_expr st in
    let body =
      List.fold_right (fun x acc -> Ast.mk ~loc:dloc (Ast.Lam (x, acc))) ps body
    in
    Ddef { name; body; dloc }
  | t -> error st (Printf.sprintf "expected a declaration, found '%s'" (token_to_string t))

let parse_program src =
  let st = { toks = Lexer.tokenize src; pos = 0 } in
  let rec go acc =
    match peek st with
    | EOF -> List.rev acc
    | OP ";" ->
      advance st;
      go acc
    | _ -> go (parse_decl st :: acc)
  in
  go []

let parse_expression src =
  let st = { toks = Lexer.tokenize src; pos = 0 } in
  let e = parse_expr st in
  (match peek st with
  | EOF -> ()
  | t -> error st (Printf.sprintf "unexpected trailing '%s'" (token_to_string t)));
  e

let parse_type src =
  let st = { toks = Lexer.tokenize src; pos = 0 } in
  let t = parse_ty st in
  (match peek st with
  | EOF -> ()
  | tok -> error st (Printf.sprintf "unexpected trailing '%s'" (token_to_string tok)));
  t
