(** The FElm type system (paper Fig. 4).

    Monomorphic inference by unification, followed by the stratification
    checks of Section 3.2: every type mentioned by the program must be
    well-formed under {!Ty.kind} — in particular no signals of signals, no
    pairs of signals, no functions from signals to simple types — plus the
    rule-specific side conditions (conditionals are on [int] with simple
    branches, [liftn] takes a simple function over simple types, [foldp]'s
    accumulator and element types are simple, comparisons never compare
    functions or signals). *)

exception Type_error of string * Ast.loc

val infer :
  input_ty:(string -> Ty.t option) -> Ast.expr -> Ty.t
(** Infer the type of a closed (resolved) expression and run all deferred
    well-formedness checks. Returns the zonked type.
    @raise Type_error on any violation, with source location. *)

val check_program : Program.t -> Ty.t
(** Type of the program's [main]. Also validates that [main] is
    displayable: a simple type or [signal ι]. *)
