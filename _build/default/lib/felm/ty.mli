(** FElm types (paper Fig. 3) with unification variables.

    The paper stratifies types into simple types ι and signal types σ:

    {v
      ι ::= unit | int | ι -> ι'            (+ float, string, pairs)
      σ ::= signal ι | ι -> σ | σ -> σ'
    v}

    We represent both with one syntax plus mutable unification variables
    (Elm "supports type inference"; FElm is monomorphic, so this is plain
    unification with an occurs check, no generalization). The stratification
    is enforced by {!kind} on zonked types: [signal] may only carry a simple
    type, and a function from a signal type cannot return a simple type —
    together these rule out signals of signals (Section 3.2). *)

type t =
  | Tunit
  | Tint
  | Tfloat
  | Tstring
  | Tpair of t * t
  | Tlist of t
  | Toption of t
  | Tfun of t * t
  | Tsignal of t
  | Tvar of var ref

and var =
  | Unbound of uvar
  | Link of t

and uvar = {
  id : int;
  mutable level : int;  (** Binding depth, for let-generalization. *)
}

val fresh : unit -> t
(** A fresh unification variable at the current level. *)

(** {1 Let-polymorphism support}

    The full Elm language "allows let-polymorphism" (Section 4); we
    implement it with the standard level discipline: variables created
    while inferring a [let] right-hand side sit at a deeper level, and
    those still unbound afterwards generalize. Unification lowers levels so
    variables that escape into the environment are never generalized. *)

val enter_level : unit -> unit
val leave_level : unit -> unit
val current_level : unit -> int

val generalizable_ids : t -> int list
(** Ids of unbound variables in [t] whose level is deeper than the current
    one — the variables a [let] may quantify. *)

val lower_to_current : t -> unit
(** Pull every unbound variable of [t] up to the current level (used by the
    value restriction: a non-value [let] right-hand side must stay
    monomorphic). *)

val instantiate : quantified:int list -> t -> t
(** Copy [t] with fresh variables substituted for the quantified ones;
    unquantified variables stay shared. *)

val repr : t -> t
(** Follow links (with path compression) to the representative. *)

exception Unify_error of t * t

val unify : t -> t -> unit
(** @raise Unify_error on constructor clash or occurs-check failure. *)

val zonk : t -> t
(** Resolve all links; remaining unconstrained variables default to
    [Tint]. The result contains no [Tvar]. *)

type kind =
  | Simple
  | Signal
  | Ill_formed of string

val kind : t -> kind
(** Stratification of a zonked type. [Ill_formed] carries the reason:
    a signal of a non-simple type, a pair containing a signal, or a
    function from a signal type to a simple type. *)

val is_simple : t -> bool
(** [kind t = Simple]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool
(** Structural equality of zonked types. *)
