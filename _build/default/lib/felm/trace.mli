(** Event traces: the scripted user of a FElm session.

    Text format, one event per line:

    {v
      # comments and blank lines are ignored
      0.5  Mouse.x        42
      1.0  words          "hello"
      2.25 Window.width   800
    v}

    The value is any literal FElm expression (unit, numbers, strings,
    pairs). Events are replayed in timestamp order. *)

type event = {
  at : float;
  input : string;
  value : Value.t;
}

exception Trace_error of string * int  (** message, line number. *)

val parse : string -> event list
(** @raise Trace_error on malformed lines. Events are sorted by time
    (stably, so same-instant events keep file order). *)

val validate : Program.t -> event list -> unit
(** Check every event names a known input and carries a value of its type.
    @raise Trace_error otherwise. *)
