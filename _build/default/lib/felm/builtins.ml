open Ty
open Value

type prim = {
  prim_name : string;
  arity : int;
  prim_ty : unit -> Ty.t;
  impl : Value.t list -> Value.t;
}

let bad name = invalid_arg ("builtin " ^ name ^ ": ill-typed application")

(* The interpreter turns [work] off while instantiating the signal graph:
   defaults are computed eagerly at construction (Section 3.1) and must not
   be charged simulated time. *)
let work_enabled = ref true

let int1 name f = function [ Vint a ] -> Vint (f a) | _ -> bad name

let int2 name f = function
  | [ Vint a; Vint b ] -> Vint (f a b)
  | _ -> bad name

let float1 name f = function [ Vfloat a ] -> Vfloat (f a) | _ -> bad name

let translate_word w =
  (* Deterministic toy French (the paper's toFrench): a small dictionary,
     with a stable fallback for unknown words. *)
  match w with
  | "" -> ""
  | "hello" -> "bonjour"
  | "world" -> "monde"
  | "yes" -> "oui"
  | "no" -> "non"
  | "cat" -> "chat"
  | "dog" -> "chien"
  | "house" -> "maison"
  | "water" -> "eau"
  | "thanks" -> "merci"
  | w -> "le " ^ w

let prims =
  [
    {
      prim_name = "not";
      arity = 1;
      prim_ty = (fun () -> Tfun (Tint, Tint));
      impl = int1 "not" (fun a -> if a = 0 then 1 else 0);
    };
    {
      prim_name = "abs";
      arity = 1;
      prim_ty = (fun () -> Tfun (Tint, Tint));
      impl = int1 "abs" abs;
    };
    {
      prim_name = "min";
      arity = 2;
      prim_ty = (fun () -> Tfun (Tint, Tfun (Tint, Tint)));
      impl = int2 "min" Stdlib.min;
    };
    {
      prim_name = "max";
      arity = 2;
      prim_ty = (fun () -> Tfun (Tint, Tfun (Tint, Tint)));
      impl = int2 "max" Stdlib.max;
    };
    {
      prim_name = "sqrt";
      arity = 1;
      prim_ty = (fun () -> Tfun (Tfloat, Tfloat));
      impl = float1 "sqrt" Float.sqrt;
    };
    {
      prim_name = "intToFloat";
      arity = 1;
      prim_ty = (fun () -> Tfun (Tint, Tfloat));
      impl = (function [ Vint a ] -> Vfloat (float_of_int a) | _ -> bad "intToFloat");
    };
    {
      prim_name = "round";
      arity = 1;
      prim_ty = (fun () -> Tfun (Tfloat, Tint));
      impl =
        (function
        | [ Vfloat a ] -> Vint (int_of_float (Float.round a))
        | _ -> bad "round");
    };
    {
      prim_name = "strlen";
      arity = 1;
      prim_ty = (fun () -> Tfun (Tstring, Tint));
      impl = (function [ Vstring s ] -> Vint (String.length s) | _ -> bad "strlen");
    };
    {
      prim_name = "translate";
      arity = 1;
      prim_ty = (fun () -> Tfun (Tstring, Tstring));
      impl =
        (function [ Vstring s ] -> Vstring (translate_word s) | _ -> bad "translate");
    };
    {
      (* The long-running computation of the Section 5 examples: costs the
         given amount of virtual time, then returns its second argument. *)
      prim_name = "work";
      arity = 2;
      prim_ty = (fun () -> Tfun (Tfloat, Tfun (Tint, Tint)));
      impl =
        (function
        | [ Vfloat cost; Vint x ] ->
          if !work_enabled && Cml.running () && cost > 0.0 then Cml.sleep cost;
          Vint x
        | _ -> bad "work");
    };
  ]

(* List operations (Section 4: "options, lists, sets, and dictionaries").
   These are polymorphic: their types are generated fresh per use, enabled
   by the let-polymorphism machinery. *)
let list_prims =
  [
    {
      prim_name = "cons";
      arity = 2;
      prim_ty =
        (fun () ->
          let a = Ty.fresh () in
          Tfun (a, Tfun (Tlist a, Tlist a)));
      impl =
        (function [ x; Vlist xs ] -> Vlist (x :: xs) | _ -> bad "cons");
    };
    {
      prim_name = "head";
      arity = 1;
      prim_ty =
        (fun () ->
          let a = Ty.fresh () in
          Tfun (Tlist a, a));
      impl =
        (function
        | [ Vlist (x :: _) ] -> x
        | [ Vlist [] ] -> invalid_arg "head of an empty list"
        | _ -> bad "head");
    };
    {
      prim_name = "tail";
      arity = 1;
      prim_ty =
        (fun () ->
          let a = Ty.fresh () in
          Tfun (Tlist a, Tlist a));
      impl =
        (function
        | [ Vlist (_ :: xs) ] -> Vlist xs
        | [ Vlist [] ] -> invalid_arg "tail of an empty list"
        | _ -> bad "tail");
    };
    {
      prim_name = "isEmpty";
      arity = 1;
      prim_ty =
        (fun () ->
          let a = Ty.fresh () in
          Tfun (Tlist a, Tint));
      impl =
        (function [ Vlist xs ] -> Vint (if xs = [] then 1 else 0) | _ -> bad "isEmpty");
    };
    {
      prim_name = "length";
      arity = 1;
      prim_ty =
        (fun () ->
          let a = Ty.fresh () in
          Tfun (Tlist a, Tint));
      impl = (function [ Vlist xs ] -> Vint (List.length xs) | _ -> bad "length");
    };
    {
      prim_name = "take";
      arity = 2;
      prim_ty =
        (fun () ->
          let a = Ty.fresh () in
          Tfun (Tint, Tfun (Tlist a, Tlist a)));
      impl =
        (function
        | [ Vint n; Vlist xs ] ->
          let rec take n = function
            | x :: rest when n > 0 -> x :: take (n - 1) rest
            | _ -> []
          in
          Vlist (take n xs)
        | _ -> bad "take");
    };
    {
      prim_name = "reverse";
      arity = 1;
      prim_ty =
        (fun () ->
          let a = Ty.fresh () in
          Tfun (Tlist a, Tlist a));
      impl = (function [ Vlist xs ] -> Vlist (List.rev xs) | _ -> bad "reverse");
    };
  ]

(* Option operations (Section 4: "options"). *)
let option_prims =
  [
    {
      prim_name = "isNone";
      arity = 1;
      prim_ty =
        (fun () ->
          let a = Ty.fresh () in
          Tfun (Toption a, Tint));
      impl =
        (function
        | [ Voption None ] -> Vint 1
        | [ Voption (Some _) ] -> Vint 0
        | _ -> bad "isNone");
    };
    {
      prim_name = "withDefault";
      arity = 2;
      prim_ty =
        (fun () ->
          let a = Ty.fresh () in
          Tfun (a, Tfun (Toption a, a)));
      impl =
        (function
        | [ d; Voption None ] -> d
        | [ _; Voption (Some v) ] -> v
        | _ -> bad "withDefault");
    };
  ]

let prims = prims @ list_prims @ option_prims

let find_prim name = List.find_opt (fun p -> p.prim_name = name) prims

let eta_expand p =
  let params = List.init p.arity (fun i -> Printf.sprintf "p%d" i) in
  let args = List.map (fun x -> Ast.mk (Ast.Var x)) params in
  let body = Ast.mk (Ast.Prim_op (p.prim_name, args)) in
  List.fold_right (fun x acc -> Ast.mk (Ast.Lam (x, acc))) params body

let apply_prim p args =
  if List.length args <> p.arity then bad p.prim_name else p.impl args

type input = {
  input_name : string;
  input_ty : Ty.t;
  default : Value.t;
}

let standard_inputs =
  [
    { input_name = "Mouse.x"; input_ty = Tsignal Tint; default = Vint 0 };
    { input_name = "Mouse.y"; input_ty = Tsignal Tint; default = Vint 0 };
    {
      input_name = "Window.width";
      input_ty = Tsignal Tint;
      default = Vint 1024;
    };
    {
      input_name = "Window.height";
      input_ty = Tsignal Tint;
      default = Vint 768;
    };
    {
      input_name = "Keyboard.lastPressed";
      input_ty = Tsignal Tint;
      default = Vint 0;
    };
    {
      input_name = "Time.seconds";
      input_ty = Tsignal Tfloat;
      default = Vfloat 0.0;
    };
  ]

let find_standard_input name =
  List.find_opt (fun i -> i.input_name = name) standard_inputs
