exception Error of string * Ast.loc

let fail loc fmt = Printf.ksprintf (fun msg -> raise (Error (msg, loc))) fmt

let value_binop op (a : Value.t) (b : Value.t) loc : Value.t =
  (* Delegate to the small-step delta via literal round-tripping, so both
     evaluators share one arithmetic. *)
  match Value.to_literal a, Value.to_literal b with
  | Some ea, Some eb -> (
    match Value.of_literal (Eval.eval_binop op ea eb) with
    | Some v -> v
    | None -> fail loc "operator %s produced a non-literal" (Ast.binop_name op))
  | _ -> fail loc "operator %s applied to a non-literal" (Ast.binop_name op)

let rec eval g env (e : Ast.expr) : Value.t =
  let loc = e.Ast.loc in
  match e.Ast.desc with
  | Ast.Unit -> Value.Vunit
  | Ast.Int n -> Value.Vint n
  | Ast.Float f -> Value.Vfloat f
  | Ast.String s -> Value.Vstring s
  | Ast.Var x -> (
    match List.assoc_opt x env with
    | Some v -> v
    | None -> fail loc "unbound variable %s" x)
  | Ast.Input name -> Value.Vsignal (Sgraph.input g name)
  | Ast.Lam (x, body) -> Value.Vclosure (env, x, body)
  | Ast.App (f, a) ->
    let vf = eval g env f in
    let va = eval g env a in
    apply_in g vf va loc
  | Ast.Binop (op, a, b) -> value_binop op (eval g env a) (eval g env b) loc
  | Ast.If (c, e2, e3) -> (
    match eval g env c with
    | Value.Vint 0 -> eval g env e3
    | Value.Vint _ -> eval g env e2
    | _ -> fail loc "if condition must be an int")
  | Ast.Let (x, rhs, body) ->
    let v = eval g env rhs in
    eval g ((x, v) :: env) body
  | Ast.Pair (a, b) -> Value.Vpair (eval g env a, eval g env b)
  | Ast.List_lit elems -> Value.Vlist (List.map (eval g env) elems)
  | Ast.None_lit -> Value.Voption None
  | Ast.Some_e a -> Value.Voption (Some (eval g env a))
  | Ast.Fst a -> (
    match eval g env a with
    | Value.Vpair (x, _) -> x
    | _ -> fail loc "fst of a non-pair")
  | Ast.Snd a -> (
    match eval g env a with
    | Value.Vpair (_, y) -> y
    | _ -> fail loc "snd of a non-pair")
  | Ast.Show a -> Value.Vstring (Value.show (eval g env a))
  | Ast.Prim_op (name, args) -> (
    match Builtins.find_prim name with
    | None -> fail loc "unknown builtin %s" name
    | Some p -> Builtins.apply_prim p (List.map (eval g env) args))
  | Ast.Lift (f, deps) ->
    let vf = eval g env f in
    let ids = List.map (fun d -> expect_signal (eval g env d) d.Ast.loc) deps in
    Value.Vsignal (Sgraph.add g (Sgraph.Nlift (vf, ids)))
  | Ast.Foldp (f, b, s) ->
    let vf = eval g env f in
    let vb = eval g env b in
    let id = expect_signal (eval g env s) s.Ast.loc in
    Value.Vsignal (Sgraph.add g (Sgraph.Nfoldp (vf, vb, id)))
  | Ast.Async s ->
    let id = expect_signal (eval g env s) s.Ast.loc in
    Value.Vsignal (Sgraph.add g (Sgraph.Nasync id))

and expect_signal v loc =
  match v with
  | Value.Vsignal id -> id
  | _ -> fail loc "expected a signal"

and apply_in g vf va loc =
  match vf with
  | Value.Vclosure (cenv, x, body) -> eval g ((x, va) :: cenv) body
  | _ -> fail loc "application of a non-function"

let frozen_graph =
  let g = Sgraph.create () in
  Sgraph.freeze g;
  g

let apply vf args =
  List.fold_left (fun f a -> apply_in frozen_graph f a Ast.dummy_loc) vf args

let graph_of_final g (u : Ast.expr) : Value.t =
  let rec go env (u : Ast.expr) =
    if Ast.is_value u then eval g env u
    else
      match u.Ast.desc with
      | Ast.Var x -> (
        match List.assoc_opt x env with
        | Some v -> v
        | None -> fail u.Ast.loc "unbound signal variable %s" x)
      | Ast.Input name -> Value.Vsignal (Sgraph.input g name)
      | Ast.Let (x, rhs, body) ->
        let v = go env rhs in
        go ((x, v) :: env) body
      | Ast.Lift (f, deps) ->
        let vf = eval g env f in
        let ids =
          List.map (fun d -> expect_signal (go env d) d.Ast.loc) deps
        in
        Value.Vsignal (Sgraph.add g (Sgraph.Nlift (vf, ids)))
      | Ast.Foldp (f, b, s) ->
        let vf = eval g env f in
        let vb = eval g env b in
        let id = expect_signal (go env s) s.Ast.loc in
        Value.Vsignal (Sgraph.add g (Sgraph.Nfoldp (vf, vb, id)))
      | Ast.Async s ->
        let id = expect_signal (go env s) s.Ast.loc in
        Value.Vsignal (Sgraph.add g (Sgraph.Nasync id))
      | _ -> fail u.Ast.loc "not a final term: %s" (Ast.to_string u)
  in
  go [] u

let run_program (p : Program.t) =
  let g = Sgraph.create () in
  let v = eval g [] p.Program.main in
  (g, v)
