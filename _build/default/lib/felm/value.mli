(** Runtime values for the FElm interpreter.

    Stage two of the semantics runs the extracted signal graph; node
    functions are closures applied to these values. [Vsignal] is an opaque
    reference to a graph node: well-typed programs can bind one (via a
    signal [let] captured in a closure) but never consume it in a simple
    computation, so stage-two evaluation treats it as inert data. *)

type t =
  | Vunit
  | Vint of int
  | Vfloat of float
  | Vstring of string
  | Vpair of t * t
  | Vlist of t list
  | Voption of t option
  | Vclosure of env * string * Ast.expr
  | Vsignal of int  (** Graph node id (see {!Sgraph}). *)

and env = (string * t) list

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val show : t -> string
(** The rendering used by FElm's [show] form (Elm's [asText]). Closures
    print as ["<function>"]. *)

val equal : t -> t -> bool
(** Structural equality; raises [Invalid_argument] on closures (the type
    system keeps them out of comparisons). *)

val of_literal : Ast.expr -> t option
(** Convert a literal value term (unit, numbers, strings, pairs thereof) —
    [None] on lambdas or non-values. *)

val to_literal : t -> Ast.expr option
(** Inverse of {!of_literal} for first-order values. *)
