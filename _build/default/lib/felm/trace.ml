type event = {
  at : float;
  input : string;
  value : Value.t;
}

exception Trace_error of string * int

let fail line fmt = Printf.ksprintf (fun msg -> raise (Trace_error (msg, line))) fmt

let split_fields line =
  (* first two whitespace-separated fields, then the rest verbatim *)
  let n = String.length line in
  let rec skip_ws i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip_ws (i + 1) else i in
  let rec take_word i = if i < n && line.[i] <> ' ' && line.[i] <> '\t' then take_word (i + 1) else i in
  let s1 = skip_ws 0 in
  let e1 = take_word s1 in
  let s2 = skip_ws e1 in
  let e2 = take_word s2 in
  let s3 = skip_ws e2 in
  if e1 = s1 || e2 = s2 || s3 >= n then None
  else Some (String.sub line s1 (e1 - s1), String.sub line s2 (e2 - s2), String.sub line s3 (n - s3))

let parse text =
  let events = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let trimmed = String.trim line in
      if trimmed <> "" && trimmed.[0] <> '#' then
        match split_fields trimmed with
        | None -> fail lineno "expected: <time> <input> <value>"
        | Some (time_s, input, value_s) -> (
          let at =
            match float_of_string_opt time_s with
            | Some t -> t
            | None -> fail lineno "bad timestamp %s" time_s
          in
          if at < 0.0 then fail lineno "negative timestamp";
          let expr =
            try Parser.parse_expression value_s with
            | Parser.Parse_error (msg, _) -> fail lineno "bad value: %s" msg
            | Lexer.Lex_error (msg, _) -> fail lineno "bad value: %s" msg
          in
          match Value.of_literal expr with
          | Some value -> events := { at; input; value } :: !events
          | None -> fail lineno "trace values must be literals"))
    (String.split_on_char '\n' text);
  List.stable_sort (fun a b -> Float.compare a.at b.at) (List.rev !events)

let validate program events =
  List.iteri
    (fun idx ev ->
      match Program.find_input program ev.input with
      | None -> fail (idx + 1) "unknown input %s" ev.input
      | Some decl ->
        if not (Program.value_matches ev.value decl.Program.value_ty) then
          fail (idx + 1) "value %s does not match type %s of input %s"
            (Value.to_string ev.value)
            (Ty.to_string decl.Program.value_ty)
            ev.input)
    events
