(** Abstract syntax of FElm (paper Fig. 3).

    The expression forms are exactly the paper's — unit, integers,
    variables, lambdas, application, binary operators, conditionals, [let],
    input signals, [liftn], [foldp], [async] — plus the documented
    extensions: floats, strings, pairs with [fst]/[snd], [show] (the typed
    syntactic form behind Elm's [asText]), and builtin operations
    ([Prim_op], which resolution eta-expands into lambdas so they are
    ordinary values). *)

type loc = {
  line : int;
  col : int;
}

val dummy_loc : loc

val pp_loc : Format.formatter -> loc -> unit

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Cat  (** String concatenation, [^]. *)

val binop_name : binop -> string

type expr = {
  desc : desc;
  loc : loc;
}

and desc =
  | Unit
  | Int of int
  | Float of float
  | String of string
  | Var of string
  | Input of string  (** A resolved input-signal identifier [i]. *)
  | Lam of string * expr
  | App of expr * expr
  | Binop of binop * expr * expr
  | If of expr * expr * expr
  | Let of string * expr * expr
  | Pair of expr * expr
  | List_lit of expr list
  | None_lit
  | Some_e of expr
  | Fst of expr
  | Snd of expr
  | Show of expr
  | Prim_op of string * expr list
      (** Saturated builtin application (produced by resolution). *)
  | Lift of expr * expr list  (** [liftn e e1 ... en], n >= 1. *)
  | Foldp of expr * expr * expr
  | Async of expr

val mk : ?loc:loc -> desc -> expr

(** {1 Classification (paper Fig. 5: the intermediate language)} *)

val is_value : expr -> bool
(** Simple values [v]: unit, literals, pairs of values, lambdas. *)

val is_signal_term : expr -> bool
(** Signal terms [s]: variables, [let x = s in u], inputs, [liftn v s...],
    [foldp v v s], [async s]. A bare variable in a closed final term can
    only denote a let-bound signal, hence counts as a signal term. *)

val is_final : expr -> bool
(** Final terms [u ::= v | s]. *)

(** {1 Variables and substitution} *)

val free_vars : expr -> (string, unit) Hashtbl.t -> unit
(** Accumulate free variables into the table. *)

val fv : expr -> string list

val is_free_in : string -> expr -> bool

val fresh_name : string -> string
(** A name with a fresh numeric suffix, for alpha-renaming. *)

val subst : string -> expr -> expr -> expr
(** [subst x v e]: capture-avoiding substitution of [v] for [x] in [e]. *)

(** {1 Printing and equality} *)

val pp : Format.formatter -> expr -> unit

val to_string : expr -> string

val alpha_equal : expr -> expr -> bool
(** Structural equality up to bound-variable renaming (locations
    ignored). *)
