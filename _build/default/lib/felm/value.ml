type t =
  | Vunit
  | Vint of int
  | Vfloat of float
  | Vstring of string
  | Vpair of t * t
  | Vlist of t list
  | Voption of t option
  | Vclosure of env * string * Ast.expr
  | Vsignal of int

and env = (string * t) list

let rec pp ppf = function
  | Vunit -> Format.pp_print_string ppf "()"
  | Vint n -> Format.pp_print_int ppf n
  | Vfloat f -> Format.fprintf ppf "%g" f
  | Vstring s -> Format.fprintf ppf "%S" s
  | Vpair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | Vlist elems ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp)
      elems
  | Voption None -> Format.pp_print_string ppf "none"
  | Voption (Some v) -> Format.fprintf ppf "(some %a)" pp v
  | Vclosure (_, x, _) -> Format.fprintf ppf "<fun %s>" x
  | Vsignal id -> Format.fprintf ppf "<signal %d>" id

let to_string v = Format.asprintf "%a" pp v

let rec show = function
  | Vunit -> "()"
  | Vint n -> string_of_int n
  | Vfloat f -> Printf.sprintf "%g" f
  | Vstring s -> s
  | Vpair (a, b) -> Printf.sprintf "(%s, %s)" (show a) (show b)
  | Vlist elems -> "[" ^ String.concat ", " (List.map show elems) ^ "]"
  | Voption None -> "none"
  | Voption (Some v) -> "some " ^ show v
  | Vclosure _ -> "<function>"
  | Vsignal _ -> "<signal>"

let rec equal v1 v2 =
  match v1, v2 with
  | Vunit, Vunit -> true
  | Vint a, Vint b -> a = b
  | Vfloat a, Vfloat b -> Float.equal a b
  | Vstring a, Vstring b -> String.equal a b
  | Vpair (a1, b1), Vpair (a2, b2) -> equal a1 a2 && equal b1 b2
  | Vlist xs, Vlist ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Voption None, Voption None -> true
  | Voption (Some a), Voption (Some b) -> equal a b
  | Vsignal a, Vsignal b -> a = b
  | Vclosure _, _ | _, Vclosure _ ->
    invalid_arg "Value.equal: cannot compare closures"
  | ( ( Vunit | Vint _ | Vfloat _ | Vstring _ | Vpair _ | Vlist _
      | Voption _ | Vsignal _ ),
      _ ) ->
    false

let rec of_literal (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Unit -> Some Vunit
  | Ast.Int n -> Some (Vint n)
  | Ast.Float f -> Some (Vfloat f)
  | Ast.String s -> Some (Vstring s)
  | Ast.Pair (a, b) -> (
    match of_literal a, of_literal b with
    | Some va, Some vb -> Some (Vpair (va, vb))
    | _, _ -> None)
  | Ast.List_lit elems ->
    let vs = List.map of_literal elems in
    if List.for_all Option.is_some vs then
      Some (Vlist (List.map Option.get vs))
    else None
  | Ast.None_lit -> Some (Voption None)
  | Ast.Some_e a -> Option.map (fun v -> Voption (Some v)) (of_literal a)
  | _ -> None

let rec to_literal v =
  match v with
  | Vunit -> Some (Ast.mk Ast.Unit)
  | Vint n -> Some (Ast.mk (Ast.Int n))
  | Vfloat f -> Some (Ast.mk (Ast.Float f))
  | Vstring s -> Some (Ast.mk (Ast.String s))
  | Vpair (a, b) -> (
    match to_literal a, to_literal b with
    | Some ea, Some eb -> Some (Ast.mk (Ast.Pair (ea, eb)))
    | _, _ -> None)
  | Vlist elems ->
    let es = List.map to_literal elems in
    if List.for_all Option.is_some es then
      Some (Ast.mk (Ast.List_lit (List.map Option.get es)))
    else None
  | Voption None -> Some (Ast.mk Ast.None_lit)
  | Voption (Some v) ->
    Option.map (fun e -> Ast.mk (Ast.Some_e e)) (to_literal v)
  | Vclosure _ | Vsignal _ -> None
