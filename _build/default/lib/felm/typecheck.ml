open Ty

exception Type_error of string * Ast.loc

let fail loc fmt = Printf.ksprintf (fun msg -> raise (Type_error (msg, loc))) fmt

type deferred = {
  mutable all : (Ty.t * Ast.loc) list;  (** every subexpression's type *)
  mutable simple : (Ty.t * Ast.loc * string) list;
  mutable comparable : (Ty.t * Ast.loc) list;
}

(* Type schemes for let-polymorphism (the full language "allows
   let-polymorphism", Section 4). Quantified variables are instantiated at
   each use; lambda parameters are monomorphic. *)
type scheme = {
  qvars : int list;
  body : Ty.t;
}

let mono t = { qvars = []; body = t }

(* Value restriction: only syntactic values generalize. Signal expressions
   in particular stay monomorphic — a shared node has one value type. *)
let rec generalizable_rhs (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Var _ -> true
  | Ast.Pair (a, b) -> generalizable_rhs a && generalizable_rhs b
  | Ast.List_lit elems -> List.for_all generalizable_rhs elems
  | _ -> Ast.is_value e

let unify_at loc expected actual what =
  try Ty.unify expected actual
  with Ty.Unify_error (a, b) ->
    fail loc "%s: cannot match %s with %s" what (Ty.to_string a) (Ty.to_string b)

let rec infer_desc d (env : (string * scheme) list) input_ty (e : Ast.expr) : Ty.t =
  let loc = e.Ast.loc in
  let ty =
    match e.Ast.desc with
    | Ast.Unit -> Tunit
    | Ast.Int _ -> Tint
    | Ast.Float _ -> Tfloat
    | Ast.String _ -> Tstring
    | Ast.Var x -> (
      match List.assoc_opt x env with
      | Some { qvars; body } -> Ty.instantiate ~quantified:qvars body
      | None -> fail loc "unbound variable %s" x)
    | Ast.Input i -> (
      match input_ty i with
      | Some t -> t
      | None -> fail loc "unknown input signal %s" i)
    | Ast.Lam (x, body) ->
      let arg = Ty.fresh () in
      Tfun (arg, infer_desc d ((x, mono arg) :: env) input_ty body)
    | Ast.App (f, a) ->
      let tf = infer_desc d env input_ty f in
      let ta = infer_desc d env input_ty a in
      let res = Ty.fresh () in
      unify_at loc tf (Tfun (ta, res)) "application";
      res
    | Ast.Binop (op, a, b) -> infer_binop d env input_ty loc op a b
    | Ast.If (c, e2, e3) ->
      (* T-COND: the test is an int and the branches share a simple type. *)
      let tc = infer_desc d env input_ty c in
      unify_at c.Ast.loc tc Tint "if condition";
      let t2 = infer_desc d env input_ty e2 in
      let t3 = infer_desc d env input_ty e3 in
      unify_at loc t2 t3 "if branches";
      d.simple <- (t2, loc, "if branches") :: d.simple;
      t2
    | Ast.Let (x, rhs, body) ->
      Ty.enter_level ();
      let trhs = infer_desc d env input_ty rhs in
      Ty.leave_level ();
      let qvars =
        if generalizable_rhs rhs then Ty.generalizable_ids trhs
        else begin
          Ty.lower_to_current trhs;
          []
        end
      in
      infer_desc d ((x, { qvars; body = trhs }) :: env) input_ty body
    | Ast.Pair (a, b) ->
      let ta = infer_desc d env input_ty a in
      let tb = infer_desc d env input_ty b in
      Tpair (ta, tb)
    | Ast.List_lit elems ->
      let elem_ty = Ty.fresh () in
      List.iter
        (fun el ->
          let t = infer_desc d env input_ty el in
          unify_at el.Ast.loc t elem_ty "list element")
        elems;
      Tlist elem_ty
    | Ast.None_lit -> Toption (Ty.fresh ())
    | Ast.Some_e a -> Toption (infer_desc d env input_ty a)
    | Ast.Fst a ->
      let ta = infer_desc d env input_ty a in
      let l = Ty.fresh () in
      let r = Ty.fresh () in
      unify_at loc ta (Tpair (l, r)) "fst";
      l
    | Ast.Snd a ->
      let ta = infer_desc d env input_ty a in
      let l = Ty.fresh () in
      let r = Ty.fresh () in
      unify_at loc ta (Tpair (l, r)) "snd";
      r
    | Ast.Show a ->
      let ta = infer_desc d env input_ty a in
      d.simple <- (ta, loc, "show argument") :: d.simple;
      Tstring
    | Ast.Prim_op (name, args) -> (
      match Builtins.find_prim name with
      | None -> fail loc "unknown builtin %s" name
      | Some p ->
        let result =
          List.fold_left
            (fun fn_ty arg ->
              let targ = infer_desc d env input_ty arg in
              let res = Ty.fresh () in
              unify_at loc fn_ty (Tfun (targ, res)) ("builtin " ^ name);
              res)
            (p.Builtins.prim_ty ()) args
        in
        result)
    | Ast.Lift (f, deps) ->
      (* T-LIFT: f : ι1 -> ... -> ιn -> ι, each dep : signal ιi. *)
      let tf = infer_desc d env input_ty f in
      let elem_tys = List.map (fun _ -> Ty.fresh ()) deps in
      let result = Ty.fresh () in
      let expected =
        List.fold_right (fun a acc -> Tfun (a, acc)) elem_tys result
      in
      unify_at f.Ast.loc tf expected "lift function";
      List.iter2
        (fun dep elem ->
          let tdep = infer_desc d env input_ty dep in
          unify_at dep.Ast.loc tdep (Tsignal elem) "lift argument";
          d.simple <- (elem, dep.Ast.loc, "lifted signal element") :: d.simple)
        deps elem_tys;
      d.simple <- (result, loc, "lift result") :: d.simple;
      d.simple <- (tf, f.Ast.loc, "lift function") :: d.simple;
      Tsignal result
    | Ast.Foldp (f, b, s) ->
      (* T-FOLD: f : ι -> ι' -> ι', b : ι', s : signal ι. *)
      let elem = Ty.fresh () in
      let acc = Ty.fresh () in
      let tf = infer_desc d env input_ty f in
      unify_at f.Ast.loc tf (Tfun (elem, Tfun (acc, acc))) "foldp function";
      let tb = infer_desc d env input_ty b in
      unify_at b.Ast.loc tb acc "foldp initial value";
      let ts = infer_desc d env input_ty s in
      unify_at s.Ast.loc ts (Tsignal elem) "foldp signal";
      d.simple <- (elem, s.Ast.loc, "foldp element") :: d.simple;
      d.simple <- (acc, b.Ast.loc, "foldp accumulator") :: d.simple;
      Tsignal acc
    | Ast.Async s ->
      (* T-ASYNC: signal ι -> signal ι. *)
      let elem = Ty.fresh () in
      let ts = infer_desc d env input_ty s in
      unify_at s.Ast.loc ts (Tsignal elem) "async";
      Tsignal elem
  in
  d.all <- (ty, loc) :: d.all;
  ty

and infer_binop d env input_ty loc op a b =
  let ta = infer_desc d env input_ty a in
  let tb = infer_desc d env input_ty b in
  let both t =
    unify_at a.Ast.loc ta t "operand";
    unify_at b.Ast.loc tb t "operand"
  in
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.And | Ast.Or ->
    both Tint;
    Tint
  | Ast.Fadd | Ast.Fsub | Ast.Fmul | Ast.Fdiv ->
    both Tfloat;
    Tfloat
  | Ast.Cat ->
    both Tstring;
    Tstring
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    unify_at loc ta tb "comparison";
    d.comparable <- (ta, loc) :: d.comparable;
    Tint

let rec contains_fun t =
  match t with
  | Tfun _ -> true
  | Tpair (a, b) -> contains_fun a || contains_fun b
  | Tsignal a | Tlist a | Toption a -> contains_fun a
  | Tunit | Tint | Tfloat | Tstring | Tvar _ -> false

let rec contains_signal t =
  match t with
  | Tsignal _ -> true
  | Tpair (a, b) | Tfun (a, b) -> contains_signal a || contains_signal b
  | Tlist a | Toption a -> contains_signal a
  | Tunit | Tint | Tfloat | Tstring | Tvar _ -> false

let run_deferred d =
  List.iter
    (fun (t, loc, what) ->
      let z = Ty.zonk t in
      if not (Ty.is_simple z) then
        fail loc "%s must have a simple type, but has type %s" what
          (Ty.to_string z))
    d.simple;
  List.iter
    (fun (t, loc) ->
      let z = Ty.zonk t in
      if contains_fun z then fail loc "cannot compare functions";
      if contains_signal z then fail loc "cannot compare signals")
    d.comparable;
  List.iter
    (fun (t, loc) ->
      match Ty.kind (Ty.zonk t) with
      | Ty.Ill_formed reason -> fail loc "ill-formed type %s: %s" (Ty.to_string (Ty.zonk t)) reason
      | Ty.Simple | Ty.Signal -> ())
    d.all

let infer ~input_ty expr =
  let d = { all = []; simple = []; comparable = [] } in
  let ty = infer_desc d [] input_ty expr in
  run_deferred d;
  Ty.zonk ty

let check_program (p : Program.t) =
  let ty = infer ~input_ty:(Program.input_ty p) p.Program.main in
  (match Ty.kind ty with
  | Ty.Simple | Ty.Signal -> ()
  | Ty.Ill_formed reason -> fail Ast.dummy_loc "main has ill-formed type: %s" reason);
  (match ty with
  | Tfun _ -> fail Ast.dummy_loc "main must be a displayable value or signal, not a function"
  | _ -> ());
  ty
