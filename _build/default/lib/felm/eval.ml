exception Runtime_error of string * Ast.loc

exception No_fuel of Ast.expr

let fail loc fmt = Printf.ksprintf (fun msg -> raise (Runtime_error (msg, loc))) fmt

let eval_binop op (a : Ast.expr) (b : Ast.expr) : Ast.expr =
  let loc = a.Ast.loc in
  let int_of e =
    match e.Ast.desc with
    | Ast.Int n -> n
    | _ -> fail loc "operator %s expects an int" (Ast.binop_name op)
  in
  let float_of e =
    match e.Ast.desc with
    | Ast.Float f -> f
    | _ -> fail loc "operator %s expects a float" (Ast.binop_name op)
  in
  let string_of e =
    match e.Ast.desc with
    | Ast.String s -> s
    | _ -> fail loc "operator %s expects a string" (Ast.binop_name op)
  in
  let bool_int b = if b then 1 else 0 in
  let compare_values () =
    (* Comparison on literals of the same base type (typing guarantees). *)
    match a.Ast.desc, b.Ast.desc with
    | Ast.Int x, Ast.Int y -> compare x y
    | Ast.Float x, Ast.Float y -> Float.compare x y
    | Ast.String x, Ast.String y -> String.compare x y
    | Ast.Unit, Ast.Unit -> 0
    | Ast.Pair _, Ast.Pair _ -> (
      match Value.of_literal a, Value.of_literal b with
      | Some va, Some vb -> compare va vb
      | _ -> fail loc "cannot compare these values")
    | _ -> fail loc "cannot compare these values"
  in
  let mk d = Ast.mk ~loc d in
  match op with
  | Ast.Add -> mk (Ast.Int (int_of a + int_of b))
  | Ast.Sub -> mk (Ast.Int (int_of a - int_of b))
  | Ast.Mul -> mk (Ast.Int (int_of a * int_of b))
  | Ast.Div ->
    let d = int_of b in
    if d = 0 then fail loc "division by zero" else mk (Ast.Int (int_of a / d))
  | Ast.Mod ->
    let d = int_of b in
    if d = 0 then fail loc "modulo by zero" else mk (Ast.Int (int_of a mod d))
  | Ast.Fadd -> mk (Ast.Float (float_of a +. float_of b))
  | Ast.Fsub -> mk (Ast.Float (float_of a -. float_of b))
  | Ast.Fmul -> mk (Ast.Float (float_of a *. float_of b))
  | Ast.Fdiv -> mk (Ast.Float (float_of a /. float_of b))
  | Ast.Cat -> mk (Ast.String (string_of a ^ string_of b))
  | Ast.And -> mk (Ast.Int (bool_int (int_of a <> 0 && int_of b <> 0)))
  | Ast.Or -> mk (Ast.Int (bool_int (int_of a <> 0 || int_of b <> 0)))
  | Ast.Eq -> mk (Ast.Int (bool_int (compare_values () = 0)))
  | Ast.Ne -> mk (Ast.Int (bool_int (compare_values () <> 0)))
  | Ast.Lt -> mk (Ast.Int (bool_int (compare_values () < 0)))
  | Ast.Le -> mk (Ast.Int (bool_int (compare_values () <= 0)))
  | Ast.Gt -> mk (Ast.Int (bool_int (compare_values () > 0)))
  | Ast.Ge -> mk (Ast.Int (bool_int (compare_values () >= 0)))

let show_literal (e : Ast.expr) =
  match Value.of_literal e with
  | Some v -> Value.show v
  | None -> (
    match e.Ast.desc with
    | Ast.Lam _ -> "<function>"
    | _ -> "<value>")

let delta_prim name args loc =
  match Builtins.find_prim name with
  | None -> fail loc "unknown builtin %s" name
  | Some p -> (
    let values =
      List.map
        (fun a ->
          match Value.of_literal a with
          | Some v -> v
          | None -> fail loc "builtin %s applied to a non-literal" name)
        args
    in
    match Value.to_literal (Builtins.apply_prim p values) with
    | Some lit -> { lit with Ast.loc = loc }
    | None -> fail loc "builtin %s returned a non-literal" name)

(* EXPAND: F[let x = s in u] --> let x = s in F[u], for a signal-bound let.
   [rebuild] plugs the freed body back into the context; [context_exprs] are
   the other pieces of F, used for the x ∉ fv(F) side condition. *)
let expand_signal_let (e : Ast.expr) ~(rebuild : Ast.expr -> Ast.desc)
    ~(context_exprs : Ast.expr list) : Ast.expr option =
  match e.Ast.desc with
  | Ast.Let (x, rhs, body) when Ast.is_signal_term rhs ->
    let x, body =
      if List.exists (Ast.is_free_in x) context_exprs then begin
        let x' = Ast.fresh_name x in
        (x', Ast.subst x (Ast.mk (Ast.Var x')) body)
      end
      else (x, body)
    in
    Some (Ast.mk ~loc:e.Ast.loc (Ast.Let (x, rhs, Ast.mk ~loc:e.Ast.loc (rebuild body))))
  | _ -> None

let rec step (e : Ast.expr) : Ast.expr option =
  let loc = e.Ast.loc in
  let with_desc d = { e with Ast.desc = d } in
  match e.Ast.desc with
  | Ast.Unit | Ast.Int _ | Ast.Float _ | Ast.String _ | Ast.Lam _
  | Ast.Var _ | Ast.Input _ | Ast.None_lit ->
    None
  | Ast.App (f, a) -> (
    match step f with
    | Some f' -> Some (with_desc (Ast.App (f', a)))
    | None -> (
      match f.Ast.desc with
      | Ast.Lam (x, body) ->
        (* APPLICATION: (\x. e1) e2 --> let x = e2 in e1 *)
        Some (with_desc (Ast.Let (x, a, body)))
      | Ast.Let _ ->
        expand_signal_let f ~rebuild:(fun u -> Ast.App (u, a)) ~context_exprs:[ a ]
      | _ -> None))
  | Ast.Binop (op, a, b) -> (
    match step a with
    | Some a' -> Some (with_desc (Ast.Binop (op, a', b)))
    | None ->
      if not (Ast.is_value a) then
        expand_signal_let a
          ~rebuild:(fun u -> Ast.Binop (op, u, b))
          ~context_exprs:[ b ]
      else (
        match step b with
        | Some b' -> Some (with_desc (Ast.Binop (op, a, b')))
        | None ->
          if not (Ast.is_value b) then
            expand_signal_let b
              ~rebuild:(fun u -> Ast.Binop (op, a, u))
              ~context_exprs:[ a ]
          else Some (eval_binop op a b)))
  | Ast.If (c, e2, e3) -> (
    match step c with
    | Some c' -> Some (with_desc (Ast.If (c', e2, e3)))
    | None ->
      if not (Ast.is_value c) then
        expand_signal_let c
          ~rebuild:(fun u -> Ast.If (u, e2, e3))
          ~context_exprs:[ e2; e3 ]
      else (
        match c.Ast.desc with
        | Ast.Int 0 -> Some e3 (* COND-FALSE *)
        | Ast.Int _ -> Some e2 (* COND-TRUE *)
        | _ -> fail loc "if condition must be an int"))
  | Ast.Let (x, rhs, body) -> (
    match step rhs with
    | Some rhs' -> Some (with_desc (Ast.Let (x, rhs', body)))
    | None ->
      if Ast.is_value rhs then
        (* REDUCE: only simple values are substituted. *)
        Some (Ast.subst x rhs body)
      else (
        (* let x = s in E: evaluate the body without substitution. *)
        match step body with
        | Some body' -> Some (with_desc (Ast.Let (x, rhs, body')))
        | None -> None))
  | Ast.Pair (a, b) -> (
    match step a with
    | Some a' -> Some (with_desc (Ast.Pair (a', b)))
    | None ->
      if not (Ast.is_value a) then
        expand_signal_let a ~rebuild:(fun u -> Ast.Pair (u, b)) ~context_exprs:[ b ]
      else (
        match step b with
        | Some b' -> Some (with_desc (Ast.Pair (a, b')))
        | None ->
          if not (Ast.is_value b) then
            expand_signal_let b
              ~rebuild:(fun u -> Ast.Pair (a, u))
              ~context_exprs:[ a ]
          else None))
  | Ast.Fst a -> step_unary e a ~rebuild:(fun u -> Ast.Fst u) ~reduce:(fun v ->
      match v.Ast.desc with
      | Ast.Pair (x, _) -> x
      | _ -> fail loc "fst of a non-pair")
  | Ast.Snd a -> step_unary e a ~rebuild:(fun u -> Ast.Snd u) ~reduce:(fun v ->
      match v.Ast.desc with
      | Ast.Pair (_, y) -> y
      | _ -> fail loc "snd of a non-pair")
  | Ast.Show a ->
    step_unary e a ~rebuild:(fun u -> Ast.Show u) ~reduce:(fun v ->
        Ast.mk ~loc (Ast.String (show_literal v)))
  | Ast.Some_e a -> (
    (* a constructor: evaluates its argument, then is a value *)
    match step a with
    | Some a' -> Some (with_desc (Ast.Some_e a'))
    | None ->
      if Ast.is_value a then None
      else
        expand_signal_let a ~rebuild:(fun u -> Ast.Some_e u) ~context_exprs:[])
  | Ast.List_lit elems -> (
    (* evaluate elements left to right, hoisting signal lets *)
    let rec scan before = function
      | [] -> None
      | el :: rest -> (
        if Ast.is_value el then scan (el :: before) rest
        else
          match step el with
          | Some el' ->
            Some (with_desc (Ast.List_lit (List.rev_append before (el' :: rest))))
          | None ->
            expand_signal_let el
              ~rebuild:(fun u -> Ast.List_lit (List.rev_append before (u :: rest)))
              ~context_exprs:(List.rev_append before rest))
    in
    scan [] elems)
  | Ast.Prim_op (name, args) -> (
    (* evaluate arguments left to right, hoisting signal lets *)
    let rec scan before = function
      | [] -> None
      | arg :: rest -> (
        if Ast.is_value arg then scan (arg :: before) rest
        else
          match step arg with
          | Some arg' ->
            Some
              (with_desc (Ast.Prim_op (name, List.rev_append before (arg' :: rest))))
          | None ->
            expand_signal_let arg
              ~rebuild:(fun u ->
                Ast.Prim_op (name, List.rev_append before (u :: rest)))
              ~context_exprs:(List.rev_append before rest))
    in
    match scan [] args with
    | Some stepped -> Some stepped
    | None ->
      if List.for_all Ast.is_value args then Some (delta_prim name args loc)
      else None)
  | Ast.Lift (f, deps) -> (
    match step f with
    | Some f' -> Some (with_desc (Ast.Lift (f', deps)))
    | None ->
      if not (Ast.is_value f) then
        expand_signal_let f
          ~rebuild:(fun u -> Ast.Lift (u, deps))
          ~context_exprs:deps
      else (
        (* liftn v s1 ... E ... en: dependencies evaluate to signal terms. *)
        let rec scan before = function
          | [] -> None
          | dep :: rest -> (
            match step dep with
            | Some dep' ->
              Some (with_desc (Ast.Lift (f, List.rev_append before (dep' :: rest))))
            | None -> scan (dep :: before) rest)
        in
        scan [] deps))
  | Ast.Foldp (f, b, s) -> (
    match step f with
    | Some f' -> Some (with_desc (Ast.Foldp (f', b, s)))
    | None ->
      if not (Ast.is_value f) then
        expand_signal_let f
          ~rebuild:(fun u -> Ast.Foldp (u, b, s))
          ~context_exprs:[ b; s ]
      else (
        match step b with
        | Some b' -> Some (with_desc (Ast.Foldp (f, b', s)))
        | None ->
          if not (Ast.is_value b) then
            expand_signal_let b
              ~rebuild:(fun u -> Ast.Foldp (f, u, s))
              ~context_exprs:[ f; s ]
          else (
            match step s with
            | Some s' -> Some (with_desc (Ast.Foldp (f, b, s')))
            | None -> None)))
  | Ast.Async s -> (
    match step s with
    | Some s' -> Some (with_desc (Ast.Async s'))
    | None -> None)

and step_unary e a ~rebuild ~reduce =
  match step a with
  | Some a' -> Some { e with Ast.desc = rebuild a' }
  | None ->
    if Ast.is_value a then Some (reduce a)
    else expand_signal_let a ~rebuild:(fun u -> rebuild u) ~context_exprs:[]

let normalize ?(fuel = 1_000_000) e =
  let rec go n e =
    if n <= 0 then raise (No_fuel e)
    else
      match step e with
      | Some e' -> go (n - 1) e'
      | None -> e
  in
  go fuel e

let steps_to_normal ?(fuel = 1_000_000) e =
  let rec go n e =
    if n >= fuel then raise (No_fuel e)
    else
      match step e with
      | Some e' -> go (n + 1) e'
      | None -> n
  in
  go 0 e
