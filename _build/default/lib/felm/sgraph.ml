type node =
  | Ninput of string
  | Nlift of Value.t * int list
  | Nfoldp of Value.t * Value.t * int
  | Nasync of int

type t = {
  mutable next_id : int;
  mutable rev_nodes : (int * node) list;
  input_ids : (string, int) Hashtbl.t;
  mutable frozen : bool;
}

let create () =
  { next_id = 0; rev_nodes = []; input_ids = Hashtbl.create 8; frozen = false }

let add g node =
  if g.frozen then
    invalid_arg "Sgraph.add: signal created during stage-two evaluation";
  let id = g.next_id in
  g.next_id <- id + 1;
  g.rev_nodes <- (id, node) :: g.rev_nodes;
  id

let input g name =
  match Hashtbl.find_opt g.input_ids name with
  | Some id -> id
  | None ->
    let id = add g (Ninput name) in
    Hashtbl.add g.input_ids name id;
    id

let freeze g = g.frozen <- true

let nodes g = List.rev g.rev_nodes

let find g id = List.assoc id g.rev_nodes

let inputs g =
  Hashtbl.fold (fun name id acc -> (name, id) :: acc) g.input_ids []
  |> List.sort compare

let size g = List.length g.rev_nodes

let deps_of = function
  | Ninput _ -> []
  | Nlift (_, ds) -> ds
  | Nfoldp (_, _, d) -> [ d ]
  | Nasync d -> [ d ]

let label_of = function
  | Ninput name -> name
  | Nlift (f, ds) -> Printf.sprintf "lift%d %s" (List.length ds) (Value.to_string f)
  | Nfoldp (f, b, _) ->
    Printf.sprintf "foldp %s %s" (Value.to_string f) (Value.to_string b)
  | Nasync _ -> "async"

let is_source = function
  | Ninput _ | Nasync _ -> true
  | Nlift _ | Nfoldp _ -> false

let to_dot ?(label = "signal graph") g ~root =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph felm {\n";
  pr "  label=%S;\n" label;
  pr "  dispatcher [label=\"Global Event\\nDispatcher\", shape=box, style=dashed];\n";
  List.iter
    (fun (id, node) ->
      let shape = if is_source node then "ellipse" else "box" in
      let quoted = String.concat "'" (String.split_on_char '"' (label_of node)) in
      let peripheries = if root = Some id then ", peripheries=2" else "" in
      pr "  n%d [label=\"%s\", shape=%s%s];\n" id quoted shape peripheries;
      if is_source node then pr "  dispatcher -> n%d [style=dashed];\n" id;
      match node with
      | Nasync dep -> pr "  n%d -> dispatcher [style=dotted, label=\"new event\"];\n" dep
      | _ -> List.iter (fun dep -> pr "  n%d -> n%d;\n" dep id) (deps_of node))
    (nodes g);
  pr "}\n";
  Buffer.contents buf
