type t =
  | Tunit
  | Tint
  | Tfloat
  | Tstring
  | Tpair of t * t
  | Tlist of t
  | Toption of t
  | Tfun of t * t
  | Tsignal of t
  | Tvar of var ref

and var =
  | Unbound of uvar
  | Link of t

and uvar = {
  id : int;
  mutable level : int;
}

let var_counter = ref 0

let level = ref 0

let enter_level () = incr level

let leave_level () = decr level

let current_level () = !level

let fresh () =
  incr var_counter;
  Tvar (ref (Unbound { id = !var_counter; level = !level }))

let rec repr t =
  match t with
  | Tvar ({ contents = Link inner } as r) ->
    let t' = repr inner in
    r := Link t';
    t'
  | Tunit | Tint | Tfloat | Tstring | Tpair _ | Tlist _ | Toption _ | Tfun _
  | Tsignal _
  | Tvar { contents = Unbound _ } ->
    t

exception Unify_error of t * t

(* Occurs check combined with level adjustment: any variable inside [t]
   deeper than [max_level] is pulled up, so it cannot later be generalized
   by a let it escaped from. *)
let rec occurs_adjust r max_level t =
  match repr t with
  | Tvar r' -> (
    if r == r' then true
    else (
      match !r' with
      | Unbound u ->
        if u.level > max_level then u.level <- max_level;
        false
      | Link _ -> false))
  | Tpair (a, b) | Tfun (a, b) ->
    occurs_adjust r max_level a || occurs_adjust r max_level b
  | Tsignal a | Tlist a | Toption a -> occurs_adjust r max_level a
  | Tunit | Tint | Tfloat | Tstring -> false

let rec unify t1 t2 =
  let t1 = repr t1 in
  let t2 = repr t2 in
  match t1, t2 with
  | Tunit, Tunit | Tint, Tint | Tfloat, Tfloat | Tstring, Tstring -> ()
  | Tvar r1, Tvar r2 when r1 == r2 -> ()
  | Tvar r, t | t, Tvar r ->
    let var_level = match !r with Unbound u -> u.level | Link _ -> max_int in
    if occurs_adjust r var_level t then raise (Unify_error (t1, t2));
    r := Link t
  | Tpair (a1, b1), Tpair (a2, b2) | Tfun (a1, b1), Tfun (a2, b2) ->
    unify a1 a2;
    unify b1 b2
  | Tsignal a, Tsignal b | Tlist a, Tlist b | Toption a, Toption b -> unify a b
  | ( ( Tunit | Tint | Tfloat | Tstring | Tpair _ | Tlist _ | Toption _
      | Tfun _ | Tsignal _ ),
      _ ) ->
    raise (Unify_error (t1, t2))

let rec zonk t =
  match repr t with
  | Tvar _ -> Tint (* unconstrained: any simple type will do *)
  | Tunit -> Tunit
  | Tint -> Tint
  | Tfloat -> Tfloat
  | Tstring -> Tstring
  | Tpair (a, b) -> Tpair (zonk a, zonk b)
  | Tlist a -> Tlist (zonk a)
  | Toption a -> Toption (zonk a)
  | Tfun (a, b) -> Tfun (zonk a, zonk b)
  | Tsignal a -> Tsignal (zonk a)

type kind =
  | Simple
  | Signal
  | Ill_formed of string

let rec kind t =
  match t with
  | Tunit | Tint | Tfloat | Tstring -> Simple
  | Tvar _ -> Simple (* only reached on non-zonked types; treated as int *)
  | Tpair (a, b) -> (
    match kind a, kind b with
    | Simple, Simple -> Simple
    | (Ill_formed _ as ill), _ | _, (Ill_formed _ as ill) -> ill
    | _ -> Ill_formed "pairs may not contain signals")
  | Tlist a -> (
    match kind a with
    | Simple -> Simple
    | Signal -> Ill_formed "lists may not contain signals"
    | Ill_formed _ as ill -> ill)
  | Toption a -> (
    match kind a with
    | Simple -> Simple
    | Signal -> Ill_formed "options may not contain signals"
    | Ill_formed _ as ill -> ill)
  | Tsignal a -> (
    match kind a with
    | Simple -> Signal
    | Signal -> Ill_formed "signals of signals are not allowed"
    | Ill_formed _ as ill -> ill)
  | Tfun (a, b) -> (
    match kind a, kind b with
    | Simple, Simple -> Simple
    | Simple, Signal | Signal, Signal -> Signal
    | Signal, Simple ->
      Ill_formed "a function taking a signal must return a signal type"
    | (Ill_formed _ as ill), _ | _, (Ill_formed _ as ill) -> ill)

let is_simple t = kind t = Simple

let rec pp ppf t =
  match repr t with
  | Tunit -> Format.pp_print_string ppf "unit"
  | Tint -> Format.pp_print_string ppf "int"
  | Tfloat -> Format.pp_print_string ppf "float"
  | Tstring -> Format.pp_print_string ppf "string"
  | Tvar { contents = Unbound u } -> Format.fprintf ppf "'t%d" u.id
  | Tvar { contents = Link _ } -> assert false
  | Tpair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | Tlist a -> Format.fprintf ppf "list %a" pp_atom a
  | Toption a -> Format.fprintf ppf "option %a" pp_atom a
  | Tsignal a -> Format.fprintf ppf "signal %a" pp_atom a
  | Tfun (a, b) -> Format.fprintf ppf "%a -> %a" pp_arg a pp b

and pp_arg ppf t =
  match repr t with
  | Tfun _ -> Format.fprintf ppf "(%a)" pp t
  | _ -> pp ppf t

and pp_atom ppf t =
  match repr t with
  | Tfun _ | Tsignal _ | Tlist _ | Toption _ -> Format.fprintf ppf "(%a)" pp t
  | _ -> pp ppf t

let to_string t = Format.asprintf "%a" pp t

let rec equal t1 t2 =
  match repr t1, repr t2 with
  | Tunit, Tunit | Tint, Tint | Tfloat, Tfloat | Tstring, Tstring -> true
  | Tpair (a1, b1), Tpair (a2, b2) | Tfun (a1, b1), Tfun (a2, b2) ->
    equal a1 a2 && equal b1 b2
  | Tsignal a, Tsignal b | Tlist a, Tlist b | Toption a, Toption b -> equal a b
  | Tvar r1, Tvar r2 -> r1 == r2
  | ( ( Tunit | Tint | Tfloat | Tstring | Tpair _ | Tlist _ | Toption _
      | Tfun _ | Tsignal _ | Tvar _ ),
      _ ) ->
    false

let generalizable_ids t =
  let acc = ref [] in
  let rec go t =
    match repr t with
    | Tvar { contents = Unbound u } ->
      if u.level > !level && not (List.mem u.id !acc) then acc := u.id :: !acc
    | Tvar { contents = Link _ } -> assert false
    | Tpair (a, b) | Tfun (a, b) ->
      go a;
      go b
    | Tsignal a | Tlist a | Toption a -> go a
    | Tunit | Tint | Tfloat | Tstring -> ()
  in
  go t;
  List.rev !acc

let lower_to_current t =
  let rec go t =
    match repr t with
    | Tvar { contents = Unbound u } -> if u.level > !level then u.level <- !level
    | Tvar { contents = Link _ } -> assert false
    | Tpair (a, b) | Tfun (a, b) ->
      go a;
      go b
    | Tsignal a | Tlist a | Toption a -> go a
    | Tunit | Tint | Tfloat | Tstring -> ()
  in
  go t

let instantiate ~quantified t =
  if quantified = [] then t
  else begin
    let mapping = Hashtbl.create 8 in
    let rec go t =
      match repr t with
      | Tvar ({ contents = Unbound u } as r) ->
        if List.mem u.id quantified then (
          match Hashtbl.find_opt mapping u.id with
          | Some v -> v
          | None ->
            let v = fresh () in
            Hashtbl.add mapping u.id v;
            v)
        else Tvar r
      | Tvar { contents = Link _ } -> assert false
      | Tunit -> Tunit
      | Tint -> Tint
      | Tfloat -> Tfloat
      | Tstring -> Tstring
      | Tpair (a, b) -> Tpair (go a, go b)
      | Tlist a -> Tlist (go a)
      | Toption a -> Toption (go a)
      | Tfun (a, b) -> Tfun (go a, go b)
      | Tsignal a -> Tsignal (go a)
    in
    go t
  end
