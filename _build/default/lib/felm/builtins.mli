(** Builtin environment: primitive functions and standard input signals.

    FElm is simply typed, so every builtin is monomorphic. Primitives are
    exposed to programs as ordinary identifiers that resolution eta-expands
    into lambdas over {!Ast.Prim_op}, making them first-class values that
    can be passed to [liftn].

    The standard input signals are the Fig. 13 identifiers the FElm examples
    use ([Mouse.x], [Window.width], ...); programs can declare more with
    [input name : signal ty = default]. *)

type prim = {
  prim_name : string;
  arity : int;  (** 1 or 2. *)
  prim_ty : unit -> Ty.t;
      (** Generates the type at each use so polymorphic builtins (the list
          operations) instantiate fresh variables per occurrence. *)
  impl : Value.t list -> Value.t;
}

val work_enabled : bool ref
(** When false, [work] costs no virtual time. The interpreter clears this
    while instantiating the graph (default computation) and restores it
    before replaying the trace. *)

val prims : prim list

val find_prim : string -> prim option

val eta_expand : prim -> Ast.expr
(** The lambda value a primitive identifier resolves to. *)

val apply_prim : prim -> Value.t list -> Value.t
(** @raise Invalid_argument on arity or type mismatch (unreachable from
    well-typed programs). *)

type input = {
  input_name : string;
  input_ty : Ty.t;  (** Always [Tsignal _]. *)
  default : Value.t;
}

val standard_inputs : input list

val find_standard_input : string -> input option

val translate_word : string -> string
(** The deterministic toy translation used by the [translate] primitive
    (the paper's [toFrench]). *)
