type input_decl = {
  name : string;
  value_ty : Ty.t;
  default : Value.t;
}

type t = {
  inputs : input_decl list;
  main : Ast.expr;
}

exception Error of string * Ast.loc

let rec value_matches v (ty : Ty.t) =
  match v, Ty.repr ty with
  | Value.Vunit, Ty.Tunit -> true
  | Value.Vint _, Ty.Tint -> true
  | Value.Vfloat _, Ty.Tfloat -> true
  | Value.Vstring _, Ty.Tstring -> true
  | Value.Vpair (a, b), Ty.Tpair (ta, tb) ->
    value_matches a ta && value_matches b tb
  | Value.Vlist elems, Ty.Tlist telem ->
    List.for_all (fun v -> value_matches v telem) elems
  | Value.Voption None, Ty.Toption _ -> true
  | Value.Voption (Some v), Ty.Toption telem -> value_matches v telem
  | ( ( Value.Vunit | Value.Vint _ | Value.Vfloat _ | Value.Vstring _
      | Value.Vpair _ | Value.Vlist _ | Value.Voption _ | Value.Vclosure _
      | Value.Vsignal _ ),
      _ ) ->
    false

(* Resolve free identifiers: input names (dotted or declared) become Input
   leaves, builtins become eta-expanded lambdas, anything else unbound is an
   error. Bound variables shadow everything. *)
let resolve inputs expr =
  let is_input name = List.exists (fun i -> i.name = name) inputs in
  let rec go bound (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Unit | Ast.Int _ | Ast.Float _ | Ast.String _ | Ast.Input _
    | Ast.None_lit ->
      e
    | Ast.Var x ->
      if List.mem x bound then e
      else if is_input x then { e with Ast.desc = Ast.Input x }
      else (
        match Builtins.find_prim x with
        | Some p -> { e with Ast.desc = (Builtins.eta_expand p).Ast.desc }
        | None ->
          if String.contains x '.' then
            raise (Error ("unknown input signal " ^ x, e.Ast.loc))
          else raise (Error ("unbound variable " ^ x, e.Ast.loc)))
    | Ast.Lam (x, body) -> { e with Ast.desc = Ast.Lam (x, go (x :: bound) body) }
    | Ast.App (a, b) -> { e with Ast.desc = Ast.App (go bound a, go bound b) }
    | Ast.Binop (op, a, b) ->
      { e with Ast.desc = Ast.Binop (op, go bound a, go bound b) }
    | Ast.If (a, b, c) ->
      { e with Ast.desc = Ast.If (go bound a, go bound b, go bound c) }
    | Ast.Let (x, rhs, body) ->
      { e with Ast.desc = Ast.Let (x, go bound rhs, go (x :: bound) body) }
    | Ast.Pair (a, b) -> { e with Ast.desc = Ast.Pair (go bound a, go bound b) }
    | Ast.List_lit elems ->
      { e with Ast.desc = Ast.List_lit (List.map (go bound) elems) }
    | Ast.Some_e a -> { e with Ast.desc = Ast.Some_e (go bound a) }
    | Ast.Fst a -> { e with Ast.desc = Ast.Fst (go bound a) }
    | Ast.Snd a -> { e with Ast.desc = Ast.Snd (go bound a) }
    | Ast.Show a -> { e with Ast.desc = Ast.Show (go bound a) }
    | Ast.Prim_op (name, args) ->
      { e with Ast.desc = Ast.Prim_op (name, List.map (go bound) args) }
    | Ast.Lift (f, deps) ->
      { e with Ast.desc = Ast.Lift (go bound f, List.map (go bound) deps) }
    | Ast.Foldp (a, b, c) ->
      { e with Ast.desc = Ast.Foldp (go bound a, go bound b, go bound c) }
    | Ast.Async a -> { e with Ast.desc = Ast.Async (go bound a) }
  in
  go [] expr

let standard_input_decls =
  List.map
    (fun (i : Builtins.input) ->
      let value_ty =
        match i.Builtins.input_ty with
        | Ty.Tsignal t -> t
        | t -> t
      in
      { name = i.Builtins.input_name; value_ty; default = i.Builtins.default })
    Builtins.standard_inputs

let of_decls decls =
  let declared =
    List.filter_map
      (fun d ->
        match d with
        | Parser.Dinput { name; ty; default; dloc } ->
          let value_ty =
            match Ty.repr ty with
            | Ty.Tsignal inner ->
              if Ty.is_simple inner then inner
              else raise (Error ("input " ^ name ^ " must carry a simple type", dloc))
            | _ -> raise (Error ("input " ^ name ^ " must have a signal type", dloc))
          in
          let default =
            match Value.of_literal default with
            | Some v -> v
            | None ->
              raise (Error ("input default must be a literal value", dloc))
          in
          if not (value_matches default value_ty) then
            raise
              (Error
                 ( Printf.sprintf "default for input %s does not match type %s"
                     name (Ty.to_string value_ty),
                   dloc ));
          Some { name; value_ty; default }
        | Parser.Ddef _ -> None)
      decls
  in
  (match
     List.find_opt
       (fun i -> List.exists (fun j -> i != j && i.name = j.name) declared)
       declared
   with
  | Some i -> raise (Error ("duplicate input declaration " ^ i.name, Ast.dummy_loc))
  | None -> ());
  let inputs =
    declared
    @ List.filter
        (fun std -> not (List.exists (fun d -> d.name = std.name) declared))
        standard_input_decls
  in
  let defs =
    List.filter_map
      (fun d ->
        match d with
        | Parser.Ddef { name; body; dloc } -> Some (name, body, dloc)
        | Parser.Dinput _ -> None)
      decls
  in
  if not (List.exists (fun (n, _, _) -> n = "main") defs) then
    raise (Error ("program has no main declaration", Ast.dummy_loc));
  let body =
    List.fold_right
      (fun (name, body, dloc) acc ->
        Ast.mk ~loc:dloc (Ast.Let (name, body, acc)))
      defs
      (Ast.mk (Ast.Var "main"))
  in
  { inputs; main = resolve inputs body }

let of_source src = of_decls (Parser.parse_program src)

let find_input t name = List.find_opt (fun i -> i.name = name) t.inputs

let input_ty t name =
  Option.map (fun i -> Ty.Tsignal i.value_ty) (find_input t name)
