(** Recursive-descent parser for FElm programs.

    A program is a sequence of declarations:

    {v
      input words : signal string = "";     -- input signal with default
      double x = x + x                       -- function definition
      main = lift double Mouse.x             -- the displayed signal
    v}

    Declarations may be separated by [;] or simply by juxtaposition (the
    parser recognizes a following [name args... =] as a new declaration).
    Expressions follow Fig. 3: lambdas [\x -> e], [let .. in ..],
    [if .. then .. else ..], [liftn f s1 .. sn], [foldp f b s], [async s],
    binary operators, plus pairs, [fst]/[snd]/[show] and literals. *)

type decl =
  | Dinput of {
      name : string;
      ty : Ty.t;
      default : Ast.expr;
      dloc : Ast.loc;
    }
  | Ddef of {
      name : string;
      body : Ast.expr;
      dloc : Ast.loc;
    }

exception Parse_error of string * Ast.loc

val parse_program : string -> decl list
(** @raise Parse_error / {!Lexer.Lex_error} on malformed input. *)

val parse_expression : string -> Ast.expr
(** Parse a single expression (used for traces and tests). *)

val parse_type : string -> Ty.t
