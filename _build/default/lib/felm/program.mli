(** Whole programs: resolution and elaboration.

    A parsed declaration list becomes a single closed expression — top-level
    definitions nest into [let]s around [main] (FElm has no recursion, so
    order of declaration is binding order) — together with the table of
    input signals the program may reference (standard Fig. 13 inputs plus
    its own [input] declarations). Resolution turns free identifiers into
    {!Ast.Input} leaves or eta-expanded builtins. *)

type input_decl = {
  name : string;
  value_ty : Ty.t;  (** The carried simple type ι, not [signal ι]. *)
  default : Value.t;
}

type t = {
  inputs : input_decl list;
  main : Ast.expr;  (** Closed except for {!Ast.Input} leaves. *)
}

exception Error of string * Ast.loc

val of_source : string -> t
(** Parse, resolve and elaborate. Requires a [main] declaration.
    @raise Error on unbound identifiers, missing [main], duplicate or
    ill-formed [input] declarations.
    @raise Parser.Parse_error / Lexer.Lex_error on syntax errors. *)

val of_decls : Parser.decl list -> t

val find_input : t -> string -> input_decl option

val input_ty : t -> string -> Ty.t option
(** The full signal type of an input, for the type checker. *)

val value_matches : Value.t -> Ty.t -> bool
(** Does a first-order value inhabit a simple type? Used to validate input
    defaults and trace events. *)
