(** Hand-written lexer for FElm source (Fig. 3 syntax plus the full
    language's sugar: Elm-style comments, floats, strings, dotted input
    identifiers). *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string  (** Lowercase identifier. *)
  | DOTTED of string  (** Qualified input name, e.g. [Mouse.x]. *)
  | KW of string
      (** Keywords: [let in if then else input foldp async fst snd show
          signal]. *)
  | LIFT of int  (** [lift] (= [lift1]), [lift2] ... [lift8]. *)
  | OP of string  (** Operators, [->], [\ ], [=], [:], [;]. *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | EOF

type spanned = {
  tok : token;
  tok_loc : Ast.loc;
}

exception Lex_error of string * Ast.loc

val tokenize : string -> spanned array
(** The token stream, ending with a single [EOF].
    @raise Lex_error on malformed input (unterminated string or comment,
    stray character). *)

val token_to_string : token -> string
