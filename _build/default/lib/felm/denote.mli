(** Big-step evaluation and signal-graph extraction.

    Two independent paths from a program to its {!Sgraph}:

    - {!eval}: a direct environment-based big-step evaluator over the
      source expression, allocating graph nodes as it meets reactive
      primitives. This is the production path used by the interpreter and
      compiler.
    - {!graph_of_final}: a reader of stage-one {e normal forms}
      (Fig. 5 final terms produced by {!Eval.normalize}), which rebuilds
      the same graph from the paper's small-step semantics.

    Property tests check the two paths agree — a strong executable
    validation of the Fig. 6 rules. *)

exception Error of string * Ast.loc

val eval : Sgraph.t -> Value.env -> Ast.expr -> Value.t
(** Big-step evaluation; reactive primitives allocate nodes in the graph
    and evaluate to [Vsignal]. *)

val graph_of_final : Sgraph.t -> Ast.expr -> Value.t
(** Interpret a Fig. 5 final term into the graph: values evaluate,
    signal terms allocate nodes ([let]-sharing preserved).
    @raise Error if the term is not final. *)

val apply : Value.t -> Value.t list -> Value.t
(** Stage-two application of a node function to event values. Runs with a
    frozen empty graph: a well-typed program cannot create signals at this
    stage, and an attempt raises. *)

val run_program : Program.t -> Sgraph.t * Value.t
(** Evaluate a resolved program: the extracted graph (possibly empty) and
    the final value ([Vsignal] for reactive programs). *)
