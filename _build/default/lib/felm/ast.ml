type loc = {
  line : int;
  col : int;
}

let dummy_loc = { line = 0; col = 0 }

let pp_loc ppf { line; col } = Format.fprintf ppf "line %d, column %d" line col

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Cat

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Fadd -> "+."
  | Fsub -> "-."
  | Fmul -> "*."
  | Fdiv -> "/."
  | Eq -> "=="
  | Ne -> "/="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"
  | Cat -> "^"

type expr = {
  desc : desc;
  loc : loc;
}

and desc =
  | Unit
  | Int of int
  | Float of float
  | String of string
  | Var of string
  | Input of string
  | Lam of string * expr
  | App of expr * expr
  | Binop of binop * expr * expr
  | If of expr * expr * expr
  | Let of string * expr * expr
  | Pair of expr * expr
  | List_lit of expr list
  | None_lit
  | Some_e of expr
  | Fst of expr
  | Snd of expr
  | Show of expr
  | Prim_op of string * expr list
  | Lift of expr * expr list
  | Foldp of expr * expr * expr
  | Async of expr

let mk ?(loc = dummy_loc) desc = { desc; loc }

let rec is_value e =
  match e.desc with
  | Unit | Int _ | Float _ | String _ | Lam _ | None_lit -> true
  | Some_e a -> is_value a
  | Pair (a, b) -> is_value a && is_value b
  | List_lit elems -> List.for_all is_value elems
  | Var _ | Input _ | App _ | Binop _ | If _ | Let _ | Fst _ | Snd _ | Show _
  | Prim_op _ | Lift _ | Foldp _ | Async _ ->
    false

let rec is_signal_term e =
  match e.desc with
  | Var _ | Input _ -> true
  | Let (_, s, u) -> is_signal_term s && is_final u
  | Lift (f, deps) -> is_value f && List.for_all is_signal_term deps
  | Foldp (f, b, s) -> is_value f && is_value b && is_signal_term s
  | Async s -> is_signal_term s
  | Unit | Int _ | Float _ | String _ | Lam _ | App _ | Binop _ | If _
  | Pair _ | List_lit _ | None_lit | Some_e _ | Fst _ | Snd _ | Show _
  | Prim_op _ ->
    false

and is_final e = is_value e || is_signal_term e

let rec free_vars e bound =
  (* [bound] accumulates free names; shadowing is handled by the local
     [without] wrapper. *)
  match e.desc with
  | Unit | Int _ | Float _ | String _ | Input _ | None_lit -> ()
  | Var x -> Hashtbl.replace bound x ()
  | Lam (x, body) -> without x body bound
  | App (a, b) | Binop (_, a, b) | Pair (a, b) ->
    free_vars a bound;
    free_vars b bound
  | If (a, b, c) | Foldp (a, b, c) ->
    free_vars a bound;
    free_vars b bound;
    free_vars c bound
  | Let (x, rhs, body) ->
    free_vars rhs bound;
    without x body bound
  | Fst a | Snd a | Show a | Async a | Some_e a -> free_vars a bound
  | Prim_op (_, args) | List_lit args ->
    List.iter (fun a -> free_vars a bound) args
  | Lift (f, deps) ->
    free_vars f bound;
    List.iter (fun d -> free_vars d bound) deps

and without x body acc =
  let inner = Hashtbl.create 8 in
  free_vars body inner;
  Hashtbl.remove inner x;
  Hashtbl.iter (fun k () -> Hashtbl.replace acc k ()) inner

let fv e =
  let tbl = Hashtbl.create 8 in
  free_vars e tbl;
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let is_free_in x e = List.mem x (fv e)

let fresh_counter = ref 0

let fresh_name base =
  incr fresh_counter;
  let base =
    match String.index_opt base '%' with
    | Some i -> String.sub base 0 i
    | None -> base
  in
  Printf.sprintf "%s%%%d" base !fresh_counter

let rec subst x v e =
  match e.desc with
  | Unit | Int _ | Float _ | String _ | Input _ | None_lit -> e
  | Var y -> if y = x then v else e
  | Lam (y, body) ->
    if y = x then e
    else if is_free_in y v then begin
      let y' = fresh_name y in
      let body' = subst y (mk (Var y')) body in
      { e with desc = Lam (y', subst x v body') }
    end
    else { e with desc = Lam (y, subst x v body) }
  | App (a, b) -> { e with desc = App (subst x v a, subst x v b) }
  | Binop (op, a, b) -> { e with desc = Binop (op, subst x v a, subst x v b) }
  | If (a, b, c) -> { e with desc = If (subst x v a, subst x v b, subst x v c) }
  | Let (y, rhs, body) ->
    let rhs' = subst x v rhs in
    if y = x then { e with desc = Let (y, rhs', body) }
    else if is_free_in y v then begin
      let y' = fresh_name y in
      let body' = subst y (mk (Var y')) body in
      { e with desc = Let (y', rhs', subst x v body') }
    end
    else { e with desc = Let (y, rhs', subst x v body) }
  | Pair (a, b) -> { e with desc = Pair (subst x v a, subst x v b) }
  | List_lit elems -> { e with desc = List_lit (List.map (subst x v) elems) }
  | Some_e a -> { e with desc = Some_e (subst x v a) }
  | Fst a -> { e with desc = Fst (subst x v a) }
  | Snd a -> { e with desc = Snd (subst x v a) }
  | Show a -> { e with desc = Show (subst x v a) }
  | Prim_op (name, args) ->
    { e with desc = Prim_op (name, List.map (subst x v) args) }
  | Lift (f, deps) ->
    { e with desc = Lift (subst x v f, List.map (subst x v) deps) }
  | Foldp (a, b, c) ->
    { e with desc = Foldp (subst x v a, subst x v b, subst x v c) }
  | Async a -> { e with desc = Async (subst x v a) }

let rec pp ppf e =
  match e.desc with
  | Unit -> Format.pp_print_string ppf "()"
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "%S" s
  | Var x -> Format.pp_print_string ppf x
  | Input i -> Format.pp_print_string ppf i
  | Lam (x, body) -> Format.fprintf ppf "(\\%s -> %a)" x pp body
  | App (a, b) -> Format.fprintf ppf "(%a %a)" pp a pp b
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | If (a, b, c) ->
    Format.fprintf ppf "(if %a then %a else %a)" pp a pp b pp c
  | Let (x, rhs, body) ->
    Format.fprintf ppf "(let %s = %a in %a)" x pp rhs pp body
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | List_lit elems ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp)
      elems
  | None_lit -> Format.pp_print_string ppf "none"
  | Some_e a -> Format.fprintf ppf "(some %a)" pp a
  | Fst a -> Format.fprintf ppf "(fst %a)" pp a
  | Snd a -> Format.fprintf ppf "(snd %a)" pp a
  | Show a -> Format.fprintf ppf "(show %a)" pp a
  | Prim_op (name, args) ->
    Format.fprintf ppf "(#%s%a)" name
      (fun ppf -> List.iter (Format.fprintf ppf " %a" pp))
      args
  | Lift (f, deps) ->
    Format.fprintf ppf "(lift%d %a%a)" (List.length deps) pp f
      (fun ppf -> List.iter (Format.fprintf ppf " %a" pp))
      deps
  | Foldp (a, b, c) -> Format.fprintf ppf "(foldp %a %a %a)" pp a pp b pp c
  | Async a -> Format.fprintf ppf "(async %a)" pp a

let to_string e = Format.asprintf "%a" pp e

let alpha_equal e1 e2 =
  (* Compare under an environment mapping binders of e1 to binders of e2. *)
  let rec go env a b =
    match a.desc, b.desc with
    | Unit, Unit -> true
    | Int m, Int n -> m = n
    | Float m, Float n -> Float.equal m n
    | String m, String n -> m = n
    | Var x, Var y -> (
      match List.assoc_opt x env with
      | Some y' -> y = y'
      | None -> x = y && not (List.exists (fun (_, v) -> v = y) env))
    | Input i, Input j -> i = j
    | Lam (x, bx), Lam (y, by) -> go ((x, y) :: env) bx by
    | App (a1, a2), App (b1, b2) -> go env a1 b1 && go env a2 b2
    | Binop (op1, a1, a2), Binop (op2, b1, b2) ->
      op1 = op2 && go env a1 b1 && go env a2 b2
    | If (a1, a2, a3), If (b1, b2, b3) ->
      go env a1 b1 && go env a2 b2 && go env a3 b3
    | Let (x, r1, b1), Let (y, r2, b2) ->
      go env r1 r2 && go ((x, y) :: env) b1 b2
    | Pair (a1, a2), Pair (b1, b2) -> go env a1 b1 && go env a2 b2
    | List_lit xs, List_lit ys ->
      List.length xs = List.length ys && List.for_all2 (go env) xs ys
    | None_lit, None_lit -> true
    | Some_e a, Some_e b -> go env a b
    | Fst a, Fst b | Snd a, Snd b | Show a, Show b | Async a, Async b ->
      go env a b
    | Prim_op (n1, args1), Prim_op (n2, args2) ->
      n1 = n2
      && List.length args1 = List.length args2
      && List.for_all2 (go env) args1 args2
    | Lift (f1, d1), Lift (f2, d2) ->
      go env f1 f2
      && List.length d1 = List.length d2
      && List.for_all2 (go env) d1 d2
    | Foldp (a1, a2, a3), Foldp (b1, b2, b3) ->
      go env a1 b1 && go env a2 b2 && go env a3 b3
    | ( ( Unit | Int _ | Float _ | String _ | Var _ | Input _ | Lam _ | App _
        | Binop _ | If _ | Let _ | Pair _ | List_lit _ | None_lit | Some_e _
        | Fst _ | Snd _ | Show _ | Prim_op _ | Lift _ | Foldp _ | Async _ ),
        _ ) ->
      false
  in
  go [] e1 e2
