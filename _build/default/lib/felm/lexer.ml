type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | DOTTED of string
  | KW of string
  | LIFT of int
  | OP of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | EOF

type spanned = {
  tok : token;
  tok_loc : Ast.loc;
}

exception Lex_error of string * Ast.loc

let keywords =
  [ "let"; "in"; "if"; "then"; "else"; "input"; "foldp"; "async"; "fst";
    "snd"; "show"; "signal"; "none"; "some" ]

let is_digit c = c >= '0' && c <= '9'
let is_lower c = (c >= 'a' && c <= 'z') || c = '_'
let is_upper c = c >= 'A' && c <= 'Z'
let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '\''

let classify_word w =
  if List.mem w keywords then KW w
  else if w = "lift" then LIFT 1
  else if String.length w = 5 && String.sub w 0 4 = "lift" && is_digit w.[4] then begin
    let n = Char.code w.[4] - Char.code '0' in
    if n >= 1 && n <= 8 then LIFT n else IDENT w
  end
  else IDENT w

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> Printf.sprintf "%g" f
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s | DOTTED s | KW s | OP s -> s
  | LIFT 1 -> "lift"
  | LIFT n -> Printf.sprintf "lift%d" n
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | EOF -> "<eof>"

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** Offset of the beginning of the current line. *)
}

let loc st = { Ast.line = st.line; col = st.pos - st.bol + 1 }

let peek st k =
  let i = st.pos + k in
  if i < String.length st.src then Some st.src.[i] else None

let advance st =
  (match peek st 0 with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let rec skip_block_comment st depth start_loc =
  if depth = 0 then ()
  else
    match peek st 0, peek st 1 with
    | None, _ -> raise (Lex_error ("unterminated comment", start_loc))
    | Some '{', Some '-' ->
      advance st;
      advance st;
      skip_block_comment st (depth + 1) start_loc
    | Some '-', Some '}' ->
      advance st;
      advance st;
      skip_block_comment st (depth - 1) start_loc
    | Some _, _ ->
      advance st;
      skip_block_comment st depth start_loc

let read_string st =
  let start = loc st in
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st 0 with
    | None -> raise (Lex_error ("unterminated string", start))
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' -> (
      advance st;
      match peek st 0 with
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
      | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
      | Some c -> raise (Lex_error (Printf.sprintf "bad escape '\\%c'" c, loc st))
      | None -> raise (Lex_error ("unterminated string", start)))
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let read_while st pred =
  let start = st.pos in
  while (match peek st 0 with Some c -> pred c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let read_number st =
  let at = loc st in
  let int_part = read_while st is_digit in
  match peek st 0, peek st 1 with
  | Some '.', Some c when is_digit c ->
    advance st;
    let frac = read_while st is_digit in
    FLOAT (float_of_string (int_part ^ "." ^ frac))
  | _ -> (
    match int_of_string_opt int_part with
    | Some n -> INT n
    | None -> raise (Lex_error ("bad number " ^ int_part, at)))

(* A word starting lowercase is an identifier/keyword; starting uppercase it
   must be a dotted input name like Mouse.x (module-qualified identifiers
   are only used for input signals in FElm). *)
let read_word st =
  let at = loc st in
  let first = read_while st is_ident_char in
  if is_upper first.[0] then
    match peek st 0 with
    | Some '.' ->
      advance st;
      let rest = read_while st is_ident_char in
      if rest = "" then raise (Lex_error ("expected name after '.'", loc st))
      else DOTTED (first ^ "." ^ rest)
    | _ -> raise (Lex_error ("expected '.' after module name " ^ first, at))
  else classify_word first

let operator_start = "+-*/%<>=&|^\\:;"

let read_operator st =
  let at = loc st in
  let two a b = peek st 0 = Some a && peek st 1 = Some b in
  let take2 s = advance st; advance st; OP s in
  let take1 s = advance st; OP s in
  if two '-' '>' then take2 "->"
  else if two '-' '-' then assert false (* comments handled by caller *)
  else if two '=' '=' then take2 "=="
  else if two '/' '=' then take2 "/="
  else if two '<' '=' then take2 "<="
  else if two '>' '=' then take2 ">="
  else if two '&' '&' then take2 "&&"
  else if two '|' '|' then take2 "||"
  else if two '+' '.' then take2 "+."
  else if two '-' '.' then take2 "-."
  else if two '*' '.' then take2 "*."
  else if two '/' '.' then take2 "/."
  else
    match peek st 0 with
    | Some (('+' | '-' | '*' | '/' | '%' | '<' | '>' | '=' | '^' | '\\' | ':' | ';') as c) ->
      take1 (String.make 1 c)
    | Some c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, at))
    | None -> raise (Lex_error ("unexpected end of input", at))

let tokenize src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let toks = ref [] in
  let emit tok tok_loc = toks := { tok; tok_loc } :: !toks in
  let rec go () =
    match peek st 0 with
    | None -> emit EOF (loc st)
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      go ()
    | Some '-' when peek st 1 = Some '-' ->
      while peek st 0 <> None && peek st 0 <> Some '\n' do
        advance st
      done;
      go ()
    | Some '{' when peek st 1 = Some '-' ->
      let at = loc st in
      advance st;
      advance st;
      skip_block_comment st 1 at;
      go ()
    | Some '"' ->
      let at = loc st in
      emit (STRING (read_string st)) at;
      go ()
    | Some '(' ->
      emit LPAREN (loc st);
      advance st;
      go ()
    | Some ')' ->
      emit RPAREN (loc st);
      advance st;
      go ()
    | Some '[' ->
      emit LBRACKET (loc st);
      advance st;
      go ()
    | Some ']' ->
      emit RBRACKET (loc st);
      advance st;
      go ()
    | Some ',' ->
      emit COMMA (loc st);
      advance st;
      go ()
    | Some c when is_digit c ->
      let at = loc st in
      emit (read_number st) at;
      go ()
    | Some c when is_lower c || is_upper c ->
      let at = loc st in
      emit (read_word st) at;
      go ()
    | Some c when String.contains operator_start c ->
      let at = loc st in
      emit (read_operator st) at;
      go ()
    | Some c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, loc st))
  in
  go ();
  Array.of_list (List.rev !toks)
