(** Buffered channel with non-blocking send, CML's [mailbox].

    The paper's translation (Fig. 9-10) publishes every signal node's output
    on a mailbox and feeds the global event dispatcher through one: "the
    newEvent mailbox is a FIFO queue, preserving the order of events". *)

type 'a t

val create : ?name:string -> unit -> 'a t

val name : 'a t -> string option

val send : 'a t -> 'a -> unit
(** Enqueue a value. Never blocks. If a thread is blocked in {!recv}, it is
    scheduled to receive this value (FIFO among waiting readers). *)

val recv : 'a t -> 'a
(** Dequeue the oldest value, blocking the calling thread until one is
    available. *)

val recv_opt : 'a t -> 'a option
(** Non-blocking variant: [None] when the mailbox is empty. *)

val length : 'a t -> int
(** Number of buffered (undelivered) values. *)
