(** Purely functional pairing-heap priority queue.

    Used by the scheduler's timer wheel, where priorities are
    [(wake_time, sequence_number)] pairs so that timers firing at the same
    virtual instant preserve FIFO order. *)

type ('p, 'a) t
(** A min-priority queue with priorities of type ['p] and elements of type
    ['a]. *)

val empty : compare:('p -> 'p -> int) -> ('p, 'a) t
(** The empty queue ordered by [compare]. *)

val is_empty : ('p, 'a) t -> bool

val size : ('p, 'a) t -> int
(** Number of elements. O(1). *)

val insert : ('p, 'a) t -> 'p -> 'a -> ('p, 'a) t
(** [insert q p x] adds element [x] with priority [p]. O(1). *)

val min : ('p, 'a) t -> ('p * 'a) option
(** Minimum-priority binding, if any. O(1). *)

val pop_min : ('p, 'a) t -> ('p * 'a * ('p, 'a) t) option
(** Remove and return the minimum-priority binding. Amortized O(log n). *)

val merge : ('p, 'a) t -> ('p, 'a) t -> ('p, 'a) t
(** Meld two queues that were created with the same comparison. O(1). *)

val of_list : compare:('p -> 'p -> int) -> ('p * 'a) list -> ('p, 'a) t

val to_sorted_list : ('p, 'a) t -> ('p * 'a) list
(** All bindings in increasing priority order. *)
