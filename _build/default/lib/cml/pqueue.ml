type ('p, 'a) heap =
  | Empty
  | Node of 'p * 'a * ('p, 'a) heap list

type ('p, 'a) t = {
  compare : 'p -> 'p -> int;
  heap : ('p, 'a) heap;
  size : int;
}

let empty ~compare = { compare; heap = Empty; size = 0 }

let is_empty q = q.size = 0

let size q = q.size

let meld compare h1 h2 =
  match h1, h2 with
  | Empty, h | h, Empty -> h
  | Node (p1, x1, c1), Node (p2, x2, c2) ->
    if compare p1 p2 <= 0 then Node (p1, x1, h2 :: c1)
    else Node (p2, x2, h1 :: c2)

let insert q p x =
  { q with heap = meld q.compare q.heap (Node (p, x, [])); size = q.size + 1 }

let min q =
  match q.heap with
  | Empty -> None
  | Node (p, x, _) -> Some (p, x)

(* Two-pass pairing: meld children left-to-right in pairs, then fold the
   results right-to-left. This gives the amortized O(log n) bound. *)
let rec meld_pairs compare = function
  | [] -> Empty
  | [ h ] -> h
  | h1 :: h2 :: rest -> meld compare (meld compare h1 h2) (meld_pairs compare rest)

let pop_min q =
  match q.heap with
  | Empty -> None
  | Node (p, x, children) ->
    let heap = meld_pairs q.compare children in
    Some (p, x, { q with heap; size = q.size - 1 })

let merge q1 q2 =
  { q1 with heap = meld q1.compare q1.heap q2.heap; size = q1.size + q2.size }

let of_list ~compare bindings =
  List.fold_left (fun q (p, x) -> insert q p x) (empty ~compare) bindings

let to_sorted_list q =
  let rec drain acc q =
    match pop_min q with
    | None -> List.rev acc
    | Some (p, x, q') -> drain ((p, x) :: acc) q'
  in
  drain [] q
