(** Synchronous (rendezvous) channel, CML's basic [channel].

    Both {!send} and {!recv} block until a partner arrives. Completes the CML
    substrate; the signal runtime itself uses {!Mailbox} and {!Multicast}. *)

type 'a t

val create : ?name:string -> unit -> 'a t

val name : 'a t -> string option

val send : 'a t -> 'a -> unit
(** Block until a receiver takes the value. *)

val recv : 'a t -> 'a
(** Block until a sender provides a value. *)

val select_recv : 'a t list -> 'a
(** Receive from whichever channel has a sender ready first. If several are
    ready, the earliest channel in the list wins; otherwise the caller blocks
    until the first send on any of them. Senders on the losing channels are
    left untouched. *)
