lib/cml/pqueue.mli:
