lib/cml/multicast.ml: List Mailbox
