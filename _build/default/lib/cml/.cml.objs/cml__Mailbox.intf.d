lib/cml/mailbox.mli:
