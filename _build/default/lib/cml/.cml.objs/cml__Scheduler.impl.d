lib/cml/scheduler.ml: Effect Float Fun Int Pqueue Printf Queue
