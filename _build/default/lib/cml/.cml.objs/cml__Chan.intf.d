lib/cml/chan.mli:
