lib/cml/chan.ml: List Queue Scheduler
