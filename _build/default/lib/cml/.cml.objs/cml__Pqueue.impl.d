lib/cml/pqueue.ml: List
