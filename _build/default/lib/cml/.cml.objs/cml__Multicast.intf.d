lib/cml/multicast.mli:
