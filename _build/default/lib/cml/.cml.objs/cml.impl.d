lib/cml/cml.ml: Chan Mailbox Multicast Pqueue Scheduler
