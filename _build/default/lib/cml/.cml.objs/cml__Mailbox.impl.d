lib/cml/mailbox.ml: Queue Scheduler
