lib/cml/scheduler.mli:
