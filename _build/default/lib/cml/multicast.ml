type 'a port = 'a Mailbox.t

type 'a t = {
  mutable ports : 'a port list; (* reverse subscription order *)
  name : string option;
}

let create ?name () = { ports = []; name }

let port t =
  let p = Mailbox.create ?name:t.name () in
  t.ports <- p :: t.ports;
  p

let send t v = List.iter (fun p -> Mailbox.send p v) (List.rev t.ports)

let recv = Mailbox.recv

let port_length = Mailbox.length

let port_count t = List.length t.ports
