(** JSON values, parsing and printing (paper Section 4: "Elm supports JSON
    data structures"; Example 3's image-search responses are "a signal of
    JSON objects returned by the server requests; the JSON objects contain
    image URLs").

    A complete standalone implementation: recursive-descent parser with
    positions and full escape handling (including [\uXXXX] with surrogate
    pairs encoded to UTF-8), compact and pretty printers, and accessors in
    the style of Elm's JavaScript.Experimental/Json library. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string * int * int
(** message, line, column. *)

val parse : string -> t
(** @raise Parse_error on malformed input, trailing garbage included. *)

val parse_opt : string -> t option

val to_string : t -> string
(** Compact serialization. *)

val pretty : ?indent:int -> t -> string
(** Multi-line serialization (default indent 2). *)

val equal : t -> t -> bool
(** Structural; object field order is significant (Elm's objects are
    records). *)

val pp : Format.formatter -> t -> unit

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an object. *)

val path : string list -> t -> t option
(** Chained {!member}. *)

val index : int -> t -> t option
(** Element of an array. *)

val to_float : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val get_string : t -> string option
val to_list : t -> t list option

(** {1 Construction helpers} *)

val of_int : int -> t
val of_float : float -> t
val of_string : string -> t
val of_bool : bool -> t
val of_list : t list -> t
val obj : (string * t) list -> t
