type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string * int * int

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;
}

let fail st msg = raise (Parse_error (msg, st.line, st.pos - st.bol + 1))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (if st.pos < String.length st.src && st.src.[st.pos] = '\n' then begin
     st.line <- st.line + 1;
     st.bol <- st.pos + 1
   end);
  st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some _ | None -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %C, found %C" c c')
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let expect_word st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    for _ = 1 to n do
      advance st
    done;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* Encode a Unicode code point as UTF-8. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "invalid hex digit in \\u escape"

let parse_hex4 st =
  let value = ref 0 in
  for _ = 1 to 4 do
    match peek st with
    | Some c ->
      value := (!value * 16) + hex_digit st c;
      advance st
    | None -> fail st "unterminated \\u escape"
  done;
  !value

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
      | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
      | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
      | Some 'u' ->
        advance st;
        let cp = parse_hex4 st in
        let cp =
          (* surrogate pair *)
          if cp >= 0xD800 && cp <= 0xDBFF then begin
            expect st '\\';
            expect st 'u';
            let low = parse_hex4 st in
            if low < 0xDC00 || low > 0xDFFF then
              fail st "invalid low surrogate"
            else 0x10000 + ((cp - 0xD800) lsl 10) + (low - 0xDC00)
          end
          else cp
        in
        add_utf8 buf cp;
        go ()
      | Some c -> fail st (Printf.sprintf "invalid escape \\%c" c)
      | None -> fail st "unterminated escape")
    | Some c when Char.code c < 0x20 -> fail st "control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let consume pred =
    while (match peek st with Some c -> pred c | None -> false) do
      advance st
    done
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  consume (fun c -> c >= '0' && c <= '9');
  (match peek st with
  | Some '.' ->
    advance st;
    consume (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    consume (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Number f
  | None -> fail st (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> expect_word st "null" Null
  | Some 't' -> expect_word st "true" (Bool true)
  | Some 'f' -> expect_word st "false" (Bool false)
  | Some '"' -> String (parse_string_body st)
  | Some '[' -> parse_array st
  | Some '{' -> parse_object st
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

and parse_array st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    Array []
  end
  else begin
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        elements (v :: acc)
      | Some ']' ->
        advance st;
        Array (List.rev (v :: acc))
      | _ -> fail st "expected ',' or ']'"
    in
    elements []
  end

and parse_object st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Object []
  end
  else begin
    let rec fields acc =
      skip_ws st;
      let key = parse_string_body st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        fields ((key, v) :: acc)
      | Some '}' ->
        advance st;
        Object (List.rev ((key, v) :: acc))
      | _ -> fail st "expected ',' or '}'"
    in
    fields []
  end

let parse src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | None -> ()
  | Some c -> fail st (Printf.sprintf "trailing input starting with %C" c));
  v

let parse_opt src = match parse src with v -> Some v | exception Parse_error _ -> None

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number f -> Buffer.add_string buf (number_to_string f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | Array elems ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char buf ',';
        write buf e)
      elems;
    Buffer.add_char buf ']'
  | Object fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, e) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\":";
        write buf e)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 64 in
  write buf v;
  Buffer.contents buf

let pretty ?(indent = 2) v =
  let buf = Buffer.create 128 in
  let pad level = Buffer.add_string buf (String.make (level * indent) ' ') in
  let rec go level v =
    match v with
    | Null | Bool _ | Number _ | String _ | Array [] | Object [] ->
      write buf v
    | Array elems ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (level + 1);
          go (level + 1) e)
        elems;
      Buffer.add_char buf '\n';
      pad level;
      Buffer.add_char buf ']'
    | Object fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, e) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\": ";
          go (level + 1) e)
        fields;
      Buffer.add_char buf '\n';
      pad level;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Number x, Number y -> Float.equal x y
  | String x, String y -> String.equal x y
  | Array xs, Array ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Object xs, Object ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) xs ys
  | (Null | Bool _ | Number _ | String _ | Array _ | Object _), _ -> false

let pp ppf v = Format.pp_print_string ppf (to_string v)

let member key = function
  | Object fields -> List.assoc_opt key fields
  | Null | Bool _ | Number _ | String _ | Array _ -> None

let path keys v =
  List.fold_left (fun acc k -> Option.bind acc (member k)) (Some v) keys

let index i = function
  | Array elems when i >= 0 -> List.nth_opt elems i
  | Array _ | Null | Bool _ | Number _ | String _ | Object _ -> None

let to_float = function Number f -> Some f | _ -> None

let to_int = function
  | Number f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let get_string = function String s -> Some s | _ -> None

let to_list = function Array elems -> Some elems | _ -> None

let of_int n = Number (float_of_int n)
let of_float f = Number f
let of_string s = String s
let of_bool b = Bool b
let of_list elems = Array elems
let obj fields = Object fields
