module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime

type touch = {
  id : int;
  x : int;
  y : int;
  x0 : int;
  y0 : int;
  t0 : float;
}

let touches = Signal.input ~name:"Touch.touches" []
let taps = Signal.input ~name:"Touch.taps" (0, 0)

(* Ongoing touches per runtime generation (same pattern as Keyboard.held). *)
let ongoing : (int, touch list) Hashtbl.t = Hashtbl.create 8

let ongoing_for rt =
  Option.value ~default:[] (Hashtbl.find_opt ongoing (Runtime.generation rt))

let set_ongoing rt ts =
  Hashtbl.replace ongoing (Runtime.generation rt) ts;
  ignore (Runtime.try_inject rt touches ts)

let touch_start rt ~id (x, y) =
  let t = { id; x; y; x0 = x; y0 = y; t0 = Cml.now () } in
  set_ongoing rt (t :: List.filter (fun t -> t.id <> id) (ongoing_for rt))

let touch_move rt ~id (x, y) =
  let ts =
    List.map (fun t -> if t.id = id then { t with x; y } else t) (ongoing_for rt)
  in
  set_ongoing rt ts

let touch_end rt ~id =
  set_ongoing rt (List.filter (fun t -> t.id <> id) (ongoing_for rt))

let tap rt pos = Runtime.inject rt taps pos
