let run body = Cml.run_value body

let at time action =
  Cml.spawn (fun () ->
      let delay = time -. Cml.now () in
      if delay > 0.0 then Cml.sleep delay;
      action ())

let every dt ~until f =
  Cml.spawn (fun () ->
      let rec tick () =
        Cml.sleep dt;
        let now = Cml.now () in
        if now <= until then begin
          f now;
          tick ()
        end
      in
      tick ())

let script actions = List.iter (fun (t, action) -> at t action) actions
