(** Simulated HTTP (paper Example 3, Section 2).

    The paper fetches images from a web service "which may take significant
    time"; this container has no network, so a {!server} is a pure function
    plus a latency model on the virtual clock (see DESIGN.md
    substitutions). {!send_get} is the paper's [syncGet]: it issues each
    request from the requests signal and {e blocks the signal node} for the
    server's latency — which is exactly why one wraps it in
    [Signal.async]. *)

type response =
  | Waiting  (** Initial value, before any request completes. *)
  | Success of string
  | Failure of int * string

type server

val server : ?latency:(string -> float) -> (string -> (string, int * string) result) -> server
(** A simulated remote service. Default latency: 1 second per request. *)

val flickr : server
(** The image-search service of Example 3: maps a tag query to a JSON
    response containing an image URL (the paper: "a signal of JSON objects
    returned by the server requests; the JSON objects contain image URLs").
    2s latency; unknown tags still succeed (deterministic synthetic URL). *)

val first_photo_url : string -> string option
(** Extract the first photo URL from a {!flickr}-style JSON response
    body. *)

val send_get : server -> string Elm_core.Signal.t -> response Elm_core.Signal.t
(** [syncGet]: a signal of requests to a signal of responses, in request
    order, blocking for the latency of each. The node does not contact the
    server for the requests signal's default value (the session starts
    [Waiting]). *)

val response_to_string : response -> string

val request_count : server -> int
(** How many requests the server has actually served (for tests that check
    memoization: unchanged inputs must not re-trigger requests). *)
