module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module E = Gui.Element
module Text = Gui.Text
module Color = Gui.Color

type text_field = {
  field : E.t Signal.t;
  value : string Signal.t;
  set : 'a. 'a Runtime.t -> string -> unit;
}

let render_field placeholder content =
  let shown, color =
    if content = "" then (placeholder, Color.gray) else (content, Color.black)
  in
  let txt = Text.color color (Text.of_string shown) in
  E.color Color.white
    (E.container 150 24 (E.At (4, 4)) (E.text txt))

let text placeholder =
  let value = Signal.input ~name:"Input.text" "" in
  let field =
    Signal.lift ~name:"Input.text.field" (render_field placeholder) value
  in
  { field; value; set = (fun rt s -> Runtime.inject rt value s) }

type button = {
  button_elem : E.t Signal.t;
  presses : unit Signal.t;
  press : 'a. 'a Runtime.t -> unit;
}

let button label =
  let presses = Signal.input ~name:"Input.button" () in
  let elem =
    E.color Color.light_gray
      (E.container (8 * String.length label + 16) 24 E.Middle (E.plain_text label))
  in
  {
    button_elem = Signal.constant ~name:"Input.button.elem" elem;
    presses;
    press = (fun rt -> Runtime.inject rt presses ());
  }

type checkbox = {
  box_elem : E.t Signal.t;
  checked : bool Signal.t;
  set_checked : 'a. 'a Runtime.t -> bool -> unit;
}

let checkbox initial =
  let checked = Signal.input ~name:"Input.checkbox" initial in
  let render b = E.as_text (if b then "[x]" else "[ ]") in
  {
    box_elem = Signal.lift ~name:"Input.checkbox.elem" render checked;
    checked;
    set_checked = (fun rt b -> Runtime.inject rt checked b);
  }

type slider = {
  slider_elem : E.t Signal.t;
  ratio : float Signal.t;
  slide : 'a. 'a Runtime.t -> float -> unit;
}

let slider initial =
  let clamp r = Float.max 0.0 (Float.min 1.0 r) in
  let ratio = Signal.input ~name:"Input.slider" (clamp initial) in
  let render r =
    let width = 100 in
    let knob_at = int_of_float (r *. float_of_int (width - 8)) in
    E.layers
      [
        E.color Color.light_gray (E.spacer width 8);
        E.container width 8 (E.At (knob_at, 0)) (E.color Color.charcoal (E.spacer 8 8));
      ]
  in
  {
    slider_elem = Signal.lift ~name:"Input.slider.elem" render ratio;
    ratio;
    slide = (fun rt r -> Runtime.inject rt ratio (clamp r));
  }
