module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime

type kind =
  | Every of float  (** interval: inject the absolute time *)
  | Fps of float  (** frame period: inject the delta *)

type timer = {
  node : float Signal.t;
  kind : kind;
}

let every interval = { node = Signal.input ~name:"Time.every" 0.0; kind = Every interval }

let fps rate =
  let period = 1.0 /. rate in
  { node = Signal.input ~name:"Time.fps" 0.0; kind = Fps period }

let signal t = t.node

let drive t rt ~until =
  let interval = match t.kind with Every i -> i | Fps p -> p in
  Cml.spawn (fun () ->
      let rec tick last =
        Cml.sleep interval;
        let now = Cml.now () in
        if now <= until then begin
          (match t.kind with
          | Every _ -> Runtime.inject rt t.node now
          | Fps _ -> Runtime.inject rt t.node (now -. last));
          tick now
        end
      in
      tick (Cml.now ()))

let millisecond = 0.001
let second = 1.0
let minute = 60.0
let hour = 3600.0

let in_seconds t = t
let in_milliseconds t = t *. 1000.0
