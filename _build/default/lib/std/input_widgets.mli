(** Input components (paper Section 4.2): "text boxes, buttons, and sliders
    are represented as a pair of signals: an element (for the graphical
    component) and a value (for the value input)."

    Each widget returns its element signal, its value signal, and a driver
    used by tests/examples to play the user. *)

type text_field = {
  field : Gui.Element.t Elm_core.Signal.t;
      (** The rendered input box, updating as the text changes. *)
  value : string Elm_core.Signal.t;  (** The current user input. *)
  set : 'a. 'a Elm_core.Runtime.t -> string -> unit;
      (** Driver: the user replaces the field's content. *)
}

val text : string -> text_field
(** [text placeholder] — the paper's [Input.text "Enter a tag"]. The
    placeholder shows greyed-out while the value is empty. *)

type button = {
  button_elem : Gui.Element.t Elm_core.Signal.t;
  presses : unit Elm_core.Signal.t;
  press : 'a. 'a Elm_core.Runtime.t -> unit;
}

val button : string -> button

type checkbox = {
  box_elem : Gui.Element.t Elm_core.Signal.t;
  checked : bool Elm_core.Signal.t;
  set_checked : 'a. 'a Elm_core.Runtime.t -> bool -> unit;
}

val checkbox : bool -> checkbox

type slider = {
  slider_elem : Gui.Element.t Elm_core.Signal.t;
  ratio : float Elm_core.Signal.t;  (** In [0, 1]. *)
  slide : 'a. 'a Elm_core.Runtime.t -> float -> unit;
}

val slider : float -> slider
