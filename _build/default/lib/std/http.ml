module Signal = Elm_core.Signal

type response =
  | Waiting
  | Success of string
  | Failure of int * string

type server = {
  latency : string -> float;
  respond : string -> (string, int * string) result;
  mutable served : int;
}

let server ?(latency = fun _ -> 1.0) respond = { latency; respond; served = 0 }

(* Example 3's image service: responses are JSON objects containing image
   URLs, exactly as the paper describes ("a signal of JSON objects returned
   by the server requests; the JSON objects contain image URLs"). *)
let flickr =
  server
    ~latency:(fun _ -> 2.0)
    (fun tag ->
      if tag = "" then Error (404, "no tag")
      else
        Ok
          (Json.to_string
             (Json.obj
                [
                  ("stat", Json.of_string "ok");
                  ( "photos",
                    Json.of_list
                      [
                        Json.obj
                          [
                            ("title", Json.of_string tag);
                            ( "url",
                              Json.of_string
                                (Printf.sprintf "http://img.example/%s.jpg" tag)
                            );
                          ];
                      ] );
                ])))

(* Pull the first photo URL out of a flickr-style JSON response. *)
let first_photo_url body =
  match Json.parse_opt body with
  | None -> None
  | Some v ->
    Option.bind (Json.member "photos" v) (Json.index 0)
    |> Fun.flip Option.bind (Json.member "url")
    |> Fun.flip Option.bind Json.get_string

let perform srv req =
  srv.served <- srv.served + 1;
  Cml.sleep (srv.latency req);
  match srv.respond req with
  | Ok body -> Success body
  | Error (code, msg) -> Failure (code, msg)

let send_get srv requests =
  (* The default request must not hit the server: defaults are computed at
     graph construction (Section 3.1), and a session begins Waiting. *)
  let default_request = Signal.default requests in
  let started = ref false in
  Signal.lift ~name:"syncGet"
    (fun req ->
      if (not !started) && req = default_request then Waiting
      else begin
        started := true;
        perform srv req
      end)
    requests

let response_to_string = function
  | Waiting -> "waiting"
  | Success body -> "ok:" ^ body
  | Failure (code, msg) -> Printf.sprintf "error %d: %s" code msg

let request_count srv = srv.served
