(** Window attribute signals (paper Fig. 13). *)

val dimensions : (int * int) Elm_core.Signal.t
(** Current dimensions of the window. Default [(1024, 768)]. *)

val width : int Elm_core.Signal.t
val height : int Elm_core.Signal.t

val resize : _ Elm_core.Runtime.t -> int * int -> unit
(** Driver: the simulated user resizes the window. *)
