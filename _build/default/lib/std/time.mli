(** Time signals (paper Fig. 13): [Time.every] for time-indexed animation
    and [Time.fps] for time-stepped animation.

    In the paper these are input signals whose events the runtime system
    generates; here a {!drive} thread plays that role on the virtual clock.
    Each call to {!every}/{!fps} creates a fresh timer (its own input
    node). *)

type timer

val every : float -> timer
(** [every t]: the current time, updated every [t] seconds (paper:
    milliseconds — use the {!second}/{!ms} constants and it reads the
    same). The signal's values are absolute virtual times. *)

val fps : float -> timer
(** [fps n]: time deltas at [n] frames per second, "making it easy to do
    time-stepped animations". Values are the elapsed time since the last
    frame. *)

val signal : timer -> float Elm_core.Signal.t

val drive : timer -> _ Elm_core.Runtime.t -> until:float -> unit
(** Start this timer's event thread, firing until the given virtual time.
    ("The frame rate is managed by the Elm runtime system" — here, by the
    simulation driver.) *)

(** {1 Units (seconds)} *)

val millisecond : float
val second : float
val minute : float
val hour : float

val in_seconds : float -> float
val in_milliseconds : float -> float
