module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime

let position = Signal.input ~name:"Mouse.position" (0, 0)
let x = Signal.lift ~name:"Mouse.x" fst position
let y = Signal.lift ~name:"Mouse.y" snd position
let clicks = Signal.input ~name:"Mouse.clicks" ()
let is_down = Signal.input ~name:"Mouse.isDown" false

let move rt pos = ignore (Runtime.try_inject rt position pos)
let click rt = ignore (Runtime.try_inject rt clicks ())
let set_down rt down = ignore (Runtime.try_inject rt is_down down)
