lib/std/window.mli: Elm_core
