lib/std/http.ml: Cml Elm_core Fun Json Option Printf
