lib/std/time.mli: Elm_core
