lib/std/input_widgets.ml: Elm_core Float Gui String
