lib/std/time.ml: Cml Elm_core
