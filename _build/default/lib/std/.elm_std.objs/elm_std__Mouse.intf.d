lib/std/mouse.mli: Elm_core
