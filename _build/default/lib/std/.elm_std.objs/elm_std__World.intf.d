lib/std/world.mli:
