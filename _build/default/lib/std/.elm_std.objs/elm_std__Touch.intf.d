lib/std/touch.mli: Elm_core
