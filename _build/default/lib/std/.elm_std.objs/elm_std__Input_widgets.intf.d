lib/std/input_widgets.mli: Elm_core Gui
