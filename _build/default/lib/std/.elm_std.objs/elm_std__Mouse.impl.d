lib/std/mouse.ml: Elm_core
