lib/std/world.ml: Cml List
