lib/std/keyboard.mli: Elm_core
