lib/std/keyboard.ml: Elm_core Hashtbl List Option
