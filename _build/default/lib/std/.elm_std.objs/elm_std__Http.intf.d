lib/std/http.mli: Elm_core
