lib/std/touch.ml: Cml Elm_core Hashtbl List Option
