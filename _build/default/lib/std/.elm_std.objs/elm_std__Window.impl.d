lib/std/window.ml: Elm_core
