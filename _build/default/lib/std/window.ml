module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime

let dimensions = Signal.input ~name:"Window.dimensions" (1024, 768)
let width = Signal.lift ~name:"Window.width" fst dimensions
let height = Signal.lift ~name:"Window.height" snd dimensions

let resize rt dims = ignore (Runtime.try_inject rt dimensions dims)
