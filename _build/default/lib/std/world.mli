(** Driving simulated GUI sessions.

    The paper's programs run in a browser fed by real user input; here a
    session is a virtual-time run in which scripted events play the user.
    [World] is a thin layer over {!Cml}: build the signal graph, start a
    {!Elm_core.Runtime}, then schedule injections at absolute virtual
    times. *)

val run : (unit -> 'a) -> 'a
(** Run a session to quiescence and return the body's result. The body
    builds graphs, starts runtimes and schedules events.
    @raise Cml.Scheduler.Stuck if the body itself blocks forever. *)

val at : float -> (unit -> unit) -> unit
(** Schedule an action at an absolute virtual time (must not be in the
    past). Actions scheduled for the same instant run in scheduling
    order. *)

val every : float -> until:float -> (float -> unit) -> unit
(** [every dt ~until f] calls [f now] at [dt, 2dt, ...] while [now <=
    until]. *)

val script : (float * (unit -> unit)) list -> unit
(** Schedule a list of timestamped actions. *)
