(** Mouse input signals (paper Fig. 13).

    The signals are global, like Elm's [Mouse] module; a runtime
    instantiates whichever of them its program uses. The [move]/[click]
    driver functions play the role of the browser: they inject events into a
    running session. *)

val position : (int * int) Elm_core.Signal.t
(** Current coordinates of the mouse. Default [(0, 0)]. *)

val x : int Elm_core.Signal.t
val y : int Elm_core.Signal.t

val clicks : unit Elm_core.Signal.t
(** Triggers on mouse clicks. *)

val is_down : bool Elm_core.Signal.t
(** Whether the left button is currently pressed. *)

(** {1 Drivers (the simulated user)} *)

val move : _ Elm_core.Runtime.t -> int * int -> unit
val click : _ Elm_core.Runtime.t -> unit
val set_down : _ Elm_core.Runtime.t -> bool -> unit
