type 'a t = ('a, unit) Dict.t

let empty = Dict.empty
let singleton x = Dict.singleton x ()
let is_empty = Dict.is_empty
let size = Dict.size
let insert x s = Dict.insert x () s
let remove = Dict.remove
let member = Dict.member
let union = Dict.union
let intersect = Dict.intersect
let diff = Dict.diff
let fold f s acc = Dict.fold (fun x () acc -> f x acc) s acc
let filter pred = Dict.filter (fun x () -> pred x)
let to_list s = Dict.keys s
let of_list xs = List.fold_left (fun s x -> insert x s) empty xs
let map f s = of_list (List.map f (to_list s))
let subset a b = fold (fun x ok -> ok && member x b) a true
let equal a b = to_list a = to_list b
