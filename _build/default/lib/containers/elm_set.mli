(** Persistent sets over comparable elements (paper Section 4), implemented
    on {!Dict}. *)

type 'a t

val empty : 'a t
val singleton : 'a -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val insert : 'a -> 'a t -> 'a t
val remove : 'a -> 'a t -> 'a t
val member : 'a -> 'a t -> bool
val union : 'a t -> 'a t -> 'a t
val intersect : 'a t -> 'a t -> 'a t
val diff : 'a t -> 'a t -> 'a t
val fold : ('a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val filter : ('a -> bool) -> 'a t -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val to_list : 'a t -> 'a list
(** In increasing order. *)

val of_list : 'a list -> 'a t
val subset : 'a t -> 'a t -> bool
val equal : 'a t -> 'a t -> bool
