type ('k, 'v) t =
  | Leaf
  | Node of {
      left : ('k, 'v) t;
      key : 'k;
      value : 'v;
      right : ('k, 'v) t;
      height : int;
    }

let empty = Leaf

let height = function Leaf -> 0 | Node { height; _ } -> height

let mk left key value right =
  Node { left; key; value; right; height = 1 + Stdlib.max (height left) (height right) }

let singleton key value = mk Leaf key value Leaf

let is_empty = function Leaf -> true | Node _ -> false

let rec size = function
  | Leaf -> 0
  | Node { left; right; _ } -> 1 + size left + size right

(* Standard AVL rebalancing: [balance l k v r] assumes l and r are valid AVL
   trees whose heights differ by at most 2. *)
let balance l k v r =
  let hl = height l in
  let hr = height r in
  if hl > hr + 1 then
    match l with
    | Node { left = ll; key = lk; value = lv; right = lr; _ } ->
      if height ll >= height lr then mk ll lk lv (mk lr k v r)
      else (
        match lr with
        | Node { left = lrl; key = lrk; value = lrv; right = lrr; _ } ->
          mk (mk ll lk lv lrl) lrk lrv (mk lrr k v r)
        | Leaf -> assert false)
    | Leaf -> assert false
  else if hr > hl + 1 then
    match r with
    | Node { left = rl; key = rk; value = rv; right = rr; _ } ->
      if height rr >= height rl then mk (mk l k v rl) rk rv rr
      else (
        match rl with
        | Node { left = rll; key = rlk; value = rlv; right = rlr; _ } ->
          mk (mk l k v rll) rlk rlv (mk rlr rk rv rr)
        | Leaf -> assert false)
    | Leaf -> assert false
  else mk l k v r

let rec insert key value = function
  | Leaf -> singleton key value
  | Node { left; key = k; value = v; right; _ } ->
    let c = Stdlib.compare key k in
    if c = 0 then mk left key value right
    else if c < 0 then balance (insert key value left) k v right
    else balance left k v (insert key value right)

let rec find_min = function
  | Leaf -> None
  | Node { left = Leaf; key; value; _ } -> Some (key, value)
  | Node { left; _ } -> find_min left

let rec find_max = function
  | Leaf -> None
  | Node { right = Leaf; key; value; _ } -> Some (key, value)
  | Node { right; _ } -> find_max right

let rec remove_min = function
  | Leaf -> Leaf
  | Node { left = Leaf; right; _ } -> right
  | Node { left; key; value; right; _ } -> balance (remove_min left) key value right

let rec remove key = function
  | Leaf -> Leaf
  | Node { left; key = k; value = v; right; _ } ->
    let c = Stdlib.compare key k in
    if c < 0 then balance (remove key left) k v right
    else if c > 0 then balance left k v (remove key right)
    else (
      match right with
      | Leaf -> left
      | Node _ -> (
        match find_min right with
        | Some (sk, sv) -> balance left sk sv (remove_min right)
        | None -> assert false))

let rec get key = function
  | Leaf -> None
  | Node { left; key = k; value; right; _ } ->
    let c = Stdlib.compare key k in
    if c = 0 then Some value else if c < 0 then get key left else get key right

let member key d = get key d <> None

let update key f d =
  match f (get key d) with
  | Some v -> insert key v d
  | None -> remove key d

let rec fold f d acc =
  match d with
  | Leaf -> acc
  | Node { left; key; value; right; _ } ->
    fold f right (f key value (fold f left acc))

let rec map f = function
  | Leaf -> Leaf
  | Node { left; key; value; right; height } ->
    Node { left = map f left; key; value = f key value; right = map f right; height }

let to_list d = List.rev (fold (fun k v acc -> (k, v) :: acc) d [])

let of_list bindings =
  List.fold_left (fun d (k, v) -> insert k v d) empty bindings

let filter pred d =
  fold (fun k v acc -> if pred k v then insert k v acc else acc) d empty

(* left-biased: bindings of [a] win on common keys, like Elm's Dict.union *)
let union a b =
  fold (fun k v acc -> if member k acc then acc else insert k v acc) b a

let intersect a b = filter (fun k _ -> member k b) a

let diff a b = filter (fun k _ -> not (member k b)) a

let keys d = List.rev (fold (fun k _ acc -> k :: acc) d [])

let values d = List.rev (fold (fun _ v acc -> v :: acc) d [])

let rec check_balanced = function
  | Leaf -> true
  | Node { left; right; height = h; _ } ->
    abs (height left - height right) <= 1
    && h = 1 + Stdlib.max (height left) (height right)
    && check_balanced left && check_balanced right

let check_ordered d =
  let ks = keys d in
  let rec strictly_increasing = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Stdlib.compare a b < 0 && strictly_increasing rest
  in
  strictly_increasing ks
