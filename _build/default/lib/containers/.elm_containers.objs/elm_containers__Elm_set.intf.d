lib/containers/elm_set.mli:
