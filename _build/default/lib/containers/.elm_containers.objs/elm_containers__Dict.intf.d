lib/containers/dict.mli:
