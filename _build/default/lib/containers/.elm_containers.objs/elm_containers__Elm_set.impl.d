lib/containers/elm_set.ml: Dict List
