lib/containers/dict.ml: List Stdlib
