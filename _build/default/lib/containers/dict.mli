(** Persistent dictionaries (paper Section 4: "Elm libraries provide data
    structures such as options, lists, sets, and dictionaries").

    An AVL tree over polymorphic keys compared with [Stdlib.compare] (Elm's
    [Dict] is likewise restricted to comparable keys). All operations are
    purely functional. *)

type ('k, 'v) t

val empty : ('k, 'v) t

val singleton : 'k -> 'v -> ('k, 'v) t

val is_empty : ('k, 'v) t -> bool

val size : ('k, 'v) t -> int
(** O(n). *)

val insert : 'k -> 'v -> ('k, 'v) t -> ('k, 'v) t
(** Replaces an existing binding. O(log n). *)

val update : 'k -> ('v option -> 'v option) -> ('k, 'v) t -> ('k, 'v) t
(** Elm's [update]: transform the binding (insert, modify or delete). *)

val remove : 'k -> ('k, 'v) t -> ('k, 'v) t
(** O(log n); identity when absent. *)

val get : 'k -> ('k, 'v) t -> 'v option

val member : 'k -> ('k, 'v) t -> bool

val find_min : ('k, 'v) t -> ('k * 'v) option

val find_max : ('k, 'v) t -> ('k * 'v) option

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** In increasing key order. *)

val map : ('k -> 'v -> 'w) -> ('k, 'v) t -> ('k, 'w) t

val filter : ('k -> 'v -> bool) -> ('k, 'v) t -> ('k, 'v) t

val union : ('k, 'v) t -> ('k, 'v) t -> ('k, 'v) t
(** Left-biased, like Elm. *)

val intersect : ('k, 'v) t -> ('k, 'v) t -> ('k, 'v) t
(** Keep left bindings whose key is also in the right dict. *)

val diff : ('k, 'v) t -> ('k, 'v) t -> ('k, 'v) t

val keys : ('k, 'v) t -> 'k list
val values : ('k, 'v) t -> 'v list
val to_list : ('k, 'v) t -> ('k * 'v) list
val of_list : ('k * 'v) list -> ('k, 'v) t

(** {1 Structural checks (for property tests)} *)

val check_balanced : ('k, 'v) t -> bool
(** AVL invariant: every node's children differ in height by at most 1. *)

val check_ordered : ('k, 'v) t -> bool
(** Strict key ordering in-order. *)
