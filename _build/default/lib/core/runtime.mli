(** Instantiation and execution of signal graphs.

    {!start} performs the paper's Fig. 10 translation at runtime: every node
    of the {!Signal.t} DAG gets its own green thread and a multicast output
    channel; source nodes subscribe to the global [eventNotify] broadcast;
    and the Fig. 11 runtime loops — the global event dispatcher and the
    display loop — are spawned alongside. All of it runs on the {!Cml}
    cooperative scheduler and must therefore be called inside {!Cml.run}.

    {b Execution modes.} The paper's semantics is synchronous but
    {e pipelined}: an event's value need not have fully propagated before the
    next event enters the graph, yet every node processes events in global
    order. That is [Pipelined], the default. [Sequential] is the
    non-pipelined baseline used by the Section 5 comparison: the dispatcher
    waits for the display loop to acknowledge each event before dispatching
    the next, so at most one event is in flight.

    [memoize:false] disables the [No_change] short-circuit in lift nodes
    (they re-apply their function on unchanged inputs, counted in
    {!Stats.t.recomputations}) while preserving output semantics; it is the
    pull-style recomputation baseline of experiment B3. *)

type mode =
  | Pipelined  (** Paper semantics: nodes run concurrently, FIFO edges. *)
  | Sequential  (** Baseline: one event fully displayed before the next. *)

type 'a t
(** A running instantiation of a signal graph with output type ['a]. *)

val start : ?mode:mode -> ?memoize:bool -> 'a Signal.t -> 'a t
(** Instantiate the graph and spawn its threads. Must be called inside
    {!Cml.run}. A signal node belongs to at most one live runtime; starting a
    new runtime over the same nodes re-instantiates them.
    @raise Invalid_argument outside a running scheduler. *)

val inject : _ t -> 'b Signal.t -> 'b -> unit
(** [inject rt input v] delivers an external event: the new value [v] for
    [input] (a node created with {!Signal.input}) is queued and a global
    event is registered with the dispatcher. Events are processed in
    injection order (the [newEvent] mailbox "is a FIFO queue, preserving the
    order of events", Fig. 11).
    @raise Invalid_argument if [input] is not an input node of this
    runtime. *)

val try_inject : _ t -> 'b Signal.t -> 'b -> bool
(** Like {!inject} but returns [false] when the node is not an input of
    this runtime. Input-library drivers use this: a browser fires mouse and
    key events whether or not the program subscribes to them. *)

val current : 'a t -> 'a
(** Latest displayed value (the default until the first change). *)

val changes : 'a t -> (float * 'a) list
(** Every [Change] received by the display loop, oldest first, with the
    virtual time of its arrival. This is the observable behaviour used
    throughout tests and benches: what the screen showed, and when. *)

val message_log : 'a t -> (float * 'a Event.t) list
(** Every message (including [No_change]) at the display loop, oldest
    first. One entry per dispatched event, which tests use to check the
    "exactly one message per node per event" invariant. *)

val on_change : 'a t -> (float -> 'a -> unit) -> unit
(** Register a callback run by the display loop on each change. *)

val stats : _ t -> Stats.t

val generation : _ t -> int
(** A number unique to this runtime instance; used by input libraries that
    keep per-runtime driver state (e.g. the set of held keys). *)

val source_ids : _ t -> (int * string) list
(** Identifier and name of every source node registered with the
    dispatcher. *)
