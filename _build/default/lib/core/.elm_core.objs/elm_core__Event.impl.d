lib/core/event.ml: Format
