lib/core/runtime.mli: Event Signal Stats
