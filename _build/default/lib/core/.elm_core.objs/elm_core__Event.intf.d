lib/core/event.mli: Format
