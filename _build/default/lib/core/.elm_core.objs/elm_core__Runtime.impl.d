lib/core/runtime.ml: Cml Event List Printf Signal Stats
