lib/core/signal.mli: Cml Event
