lib/core/signal.ml: Buffer Cml Event Fun Hashtbl List Printf String
