module Mailbox = Cml.Mailbox
module Multicast = Cml.Multicast

type mode =
  | Pipelined
  | Sequential

type 'a t = {
  gen : int;
  mode : mode;
  stats : Stats.t;
  new_event : int Mailbox.t;
  mutable current : 'a;
  mutable rev_changes : (float * 'a) list;
  mutable rev_messages : (float * 'a Event.t) list;
  mutable listeners : (float -> 'a -> unit) list;
  mutable sources : (int * string) list;
}

type ctx = {
  rt_gen : int;
  memoize : bool;
  c_stats : Stats.t;
  c_new_event : int Mailbox.t;
  notify : int Multicast.t;
  mutable c_sources : (int * string) list;
}

let generation = ref 0

let emit ctx out msg =
  ctx.c_stats.messages <- ctx.c_stats.messages + 1;
  Multicast.send out msg

(* Source nodes (inputs, constants, async): the Fig. 10 translation of
   ⟨id, mc, v⟩. The thread answers every dispatcher notification with exactly
   one message: the freshly arrived value when the event is its own, a
   [No_change] of the latest value otherwise. *)
let source_node ctx ~source_id ~name ~default ~value_mb =
  let out = Multicast.create () in
  let notify_port = Multicast.port ctx.notify in
  ctx.c_sources <- (source_id, name) :: ctx.c_sources;
  Cml.spawn (fun () ->
      let rec loop prev =
        let eid = Multicast.recv notify_port in
        let msg =
          if eid = source_id then Event.Change (Mailbox.recv value_mb)
          else Event.No_change prev
        in
        emit ctx out msg;
        loop (Event.body msg)
      in
      loop default);
  out

(* Lift-style nodes share this loop. [round] blocks until one message per
   incoming edge is available and returns whether any of them changed plus a
   thunk recomputing the node's function on the current input bodies. *)
let lift_node ctx ~default ~round =
  let out = Multicast.create () in
  Cml.spawn (fun () ->
      let rec loop prev =
        let changed, compute = round () in
        let msg =
          if changed then begin
            ctx.c_stats.applications <- ctx.c_stats.applications + 1;
            Event.Change (compute ())
          end
          else begin
            if not ctx.memoize then begin
              ctx.c_stats.recomputations <- ctx.c_stats.recomputations + 1;
              ignore (compute ())
            end;
            Event.No_change prev
          end
        in
        emit ctx out msg;
        loop (Event.body msg)
      in
      loop default);
  out

let rec build : type b. ctx -> b Signal.t -> b Signal.inst =
 fun ctx s ->
  match Signal.get_inst s with
  | Some i when i.gen = ctx.rt_gen -> i
  | Some _ | None ->
    let i = build_fresh ctx s in
    Signal.set_inst s i;
    i

and build_fresh : type b. ctx -> b Signal.t -> b Signal.inst =
 fun ctx s ->
  let default = Signal.default s in
  let plain out = { Signal.gen = ctx.rt_gen; out; push = None } in
  match Signal.kind s with
  | Signal.Constant ->
    (* A constant is a source whose event never fires: it answers every
       notification with [No_change default]. *)
    let value_mb = Mailbox.create () in
    plain
      (source_node ctx ~source_id:(Signal.id s) ~name:(Signal.name s) ~default
         ~value_mb)
  | Signal.Input ->
    let value_mb = Mailbox.create () in
    let source_id = Signal.id s in
    let out = source_node ctx ~source_id ~name:(Signal.name s) ~default ~value_mb in
    let push v =
      (* Value first, notification second: when the dispatcher broadcasts
         this event id, the source thread finds the value waiting. *)
      Mailbox.send value_mb v;
      Mailbox.send ctx.c_new_event source_id
    in
    { Signal.gen = ctx.rt_gen; out; push = Some push }
  | Signal.Lift1 (f, a) ->
    let ia = build ctx a in
    let pa = Multicast.port ia.out in
    let round () =
      let ma = Multicast.recv pa in
      (Event.is_change ma, fun () -> f (Event.body ma))
    in
    plain (lift_node ctx ~default ~round)
  | Signal.Lift2 (f, a, b) ->
    let ia = build ctx a in
    let ib = build ctx b in
    let pa = Multicast.port ia.out in
    let pb = Multicast.port ib.out in
    let round () =
      let ma = Multicast.recv pa in
      let mb = Multicast.recv pb in
      ( Event.is_change ma || Event.is_change mb,
        fun () -> f (Event.body ma) (Event.body mb) )
    in
    plain (lift_node ctx ~default ~round)
  | Signal.Lift3 (f, a, b, c) ->
    let ia = build ctx a in
    let ib = build ctx b in
    let ic = build ctx c in
    let pa = Multicast.port ia.out in
    let pb = Multicast.port ib.out in
    let pc = Multicast.port ic.out in
    let round () =
      let ma = Multicast.recv pa in
      let mb = Multicast.recv pb in
      let mc = Multicast.recv pc in
      ( Event.is_change ma || Event.is_change mb || Event.is_change mc,
        fun () -> f (Event.body ma) (Event.body mb) (Event.body mc) )
    in
    plain (lift_node ctx ~default ~round)
  | Signal.Lift4 (f, a, b, c, d) ->
    let ia = build ctx a in
    let ib = build ctx b in
    let ic = build ctx c in
    let idd = build ctx d in
    let pa = Multicast.port ia.out in
    let pb = Multicast.port ib.out in
    let pc = Multicast.port ic.out in
    let pd = Multicast.port idd.out in
    let round () =
      let ma = Multicast.recv pa in
      let mb = Multicast.recv pb in
      let mc = Multicast.recv pc in
      let md = Multicast.recv pd in
      ( Event.is_change ma || Event.is_change mb || Event.is_change mc
        || Event.is_change md,
        fun () ->
          f (Event.body ma) (Event.body mb) (Event.body mc) (Event.body md) )
    in
    plain (lift_node ctx ~default ~round)
  | Signal.Lift_list (_, []) ->
    (* No incoming edges: a node loop would spin. Behave as a constant. *)
    let value_mb = Mailbox.create () in
    plain
      (source_node ctx ~source_id:(Signal.id s) ~name:(Signal.name s) ~default
         ~value_mb)
  | Signal.Lift_list (f, ds) ->
    let ports =
      List.map
        (fun d ->
          let i = build ctx d in
          Multicast.port i.Signal.out)
        ds
    in
    let round () =
      let msgs = List.map Multicast.recv ports in
      ( List.exists Event.is_change msgs,
        fun () -> f (List.map Event.body msgs) )
    in
    plain (lift_node ctx ~default ~round)
  | Signal.Foldp (f, src) ->
    let isrc = build ctx src in
    let p = Multicast.port isrc.out in
    let out = Multicast.create () in
    Cml.spawn (fun () ->
        let rec loop acc =
          let msg =
            match Multicast.recv p with
            | Event.Change v ->
              ctx.c_stats.fold_steps <- ctx.c_stats.fold_steps + 1;
              Event.Change (f v acc)
            | Event.No_change _ -> Event.No_change acc
          in
          emit ctx out msg;
          loop (Event.body msg)
        in
        loop default);
    plain out
  | Signal.Async inner ->
    (* Fig. 10's async translation: build the inner subgraph normally, then
       forward each of its changes to a fresh source node by registering a
       new global event. Ordering between the subgraph and the rest of the
       program is thereby relaxed, but preserved within each. *)
    let iinner = build ctx inner in
    let inner_port = Multicast.port iinner.out in
    let value_mb = Mailbox.create () in
    let source_id = Signal.id s in
    let out =
      source_node ctx ~source_id ~name:(Signal.name s) ~default ~value_mb
    in
    Cml.spawn (fun () ->
        let rec forward () =
          (match Multicast.recv inner_port with
          | Event.No_change _ -> ()
          | Event.Change v ->
            Mailbox.send value_mb v;
            ctx.c_stats.async_events <- ctx.c_stats.async_events + 1;
            Mailbox.send ctx.c_new_event source_id);
          forward ()
        in
        forward ());
    plain out
  | Signal.Delay (d, inner) ->
    (* Like async, but each change re-enters the dispatcher [d] virtual
       seconds later. One thread per pending value keeps delivery at the
       right absolute time while preserving order (equal delays). *)
    let iinner = build ctx inner in
    let inner_port = Multicast.port iinner.Signal.out in
    let value_mb = Mailbox.create () in
    let source_id = Signal.id s in
    let out =
      source_node ctx ~source_id ~name:(Signal.name s) ~default ~value_mb
    in
    Cml.spawn (fun () ->
        let rec forward () =
          (match Multicast.recv inner_port with
          | Event.No_change _ -> ()
          | Event.Change v ->
            Cml.spawn (fun () ->
                Cml.sleep d;
                Mailbox.send value_mb v;
                ctx.c_stats.async_events <- ctx.c_stats.async_events + 1;
                Mailbox.send ctx.c_new_event source_id));
          forward ()
        in
        forward ());
    plain out
  | Signal.Merge (a, b) ->
    let ia = build ctx a in
    let ib = build ctx b in
    let pa = Multicast.port ia.out in
    let pb = Multicast.port ib.out in
    let out = Multicast.create () in
    Cml.spawn (fun () ->
        let rec loop prev =
          let ma = Multicast.recv pa in
          let mb = Multicast.recv pb in
          let msg =
            match ma, mb with
            | Event.Change v, _ -> Event.Change v
            | Event.No_change _, Event.Change v -> Event.Change v
            | Event.No_change _, Event.No_change _ -> Event.No_change prev
          in
          emit ctx out msg;
          loop (Event.body msg)
        in
        loop default);
    plain out
  | Signal.Drop_repeats (eq, src) ->
    let isrc = build ctx src in
    let p = Multicast.port isrc.out in
    let out = Multicast.create () in
    Cml.spawn (fun () ->
        let rec loop prev =
          let msg =
            match Multicast.recv p with
            | Event.Change v when not (eq v prev) -> Event.Change v
            | Event.Change v | Event.No_change v ->
              ignore v;
              Event.No_change prev
          in
          emit ctx out msg;
          loop (Event.body msg)
        in
        loop default);
    plain out
  | Signal.Sample_on (ticks, src) ->
    let iticks = build ctx ticks in
    let isrc = build ctx src in
    let pt = Multicast.port iticks.Signal.out in
    let ps = Multicast.port isrc.out in
    let out = Multicast.create () in
    Cml.spawn (fun () ->
        let rec loop prev =
          let mt = Multicast.recv pt in
          let ms = Multicast.recv ps in
          let msg =
            if Event.is_change mt then Event.Change (Event.body ms)
            else Event.No_change prev
          in
          emit ctx out msg;
          loop (Event.body msg)
        in
        loop default);
    plain out
  | Signal.Keep_when (gate, src, _base) ->
    let igate = build ctx gate in
    let isrc = build ctx src in
    let pg = Multicast.port igate.Signal.out in
    let ps = Multicast.port isrc.out in
    let out = Multicast.create () in
    Cml.spawn (fun () ->
        (* Emits while the gate is open, and also on the gate's rising edge
           so the kept signal resynchronizes with its source. *)
        let rec loop gate_prev prev =
          let mg = Multicast.recv pg in
          let ms = Multicast.recv ps in
          let gate_now = Event.body mg in
          let rising = gate_now && not gate_prev in
          let msg =
            if gate_now && (Event.is_change ms || rising) then
              Event.Change (Event.body ms)
            else Event.No_change prev
          in
          emit ctx out msg;
          loop gate_now (Event.body msg)
        in
        loop (Signal.default gate) default);
    plain out

let start ?(mode = Pipelined) ?(memoize = true) root =
  if not (Cml.running ()) then
    invalid_arg "Runtime.start: must be called inside Cml.run";
  incr generation;
  let stats = Stats.create () in
  let new_event = Mailbox.create ~name:"newEvent" () in
  let notify = Multicast.create ~name:"eventNotify" () in
  let ctx =
    {
      rt_gen = !generation;
      memoize;
      c_stats = stats;
      c_new_event = new_event;
      notify;
      c_sources = [];
    }
  in
  let root_inst = build ctx root in
  let rt =
    {
      gen = ctx.rt_gen;
      mode;
      stats;
      new_event;
      current = Signal.default root;
      rev_changes = [];
      rev_messages = [];
      listeners = [];
      sources = List.rev ctx.c_sources;
    }
  in
  let ack = Mailbox.create ~name:"displayAck" () in
  (* Display loop (Fig. 11): funnel values from the root's channel to the
     "screen" (here: the runtime record and registered listeners). *)
  let display_port = Multicast.port root_inst.Signal.out in
  Cml.spawn (fun () ->
      let rec display () =
        let msg = Multicast.recv display_port in
        let time = Cml.now () in
        rt.rev_messages <- (time, msg) :: rt.rev_messages;
        (match msg with
        | Event.Change v ->
          rt.current <- v;
          rt.rev_changes <- (time, v) :: rt.rev_changes;
          List.iter (fun f -> f time v) (List.rev rt.listeners)
        | Event.No_change _ -> ());
        (match mode with
        | Sequential -> Mailbox.send ack ()
        | Pipelined -> ());
        display ()
      in
      display ());
  (* Global event dispatcher (Fig. 11). In [Sequential] mode it waits for
     the display loop's acknowledgement, serializing whole-graph passes. *)
  Cml.spawn (fun () ->
      let rec dispatch () =
        let eid = Mailbox.recv new_event in
        stats.events <- stats.events + 1;
        Multicast.send notify eid;
        (match mode with
        | Sequential -> Mailbox.recv ack
        | Pipelined -> ());
        dispatch ()
      in
      dispatch ());
  rt

let try_inject rt input v =
  match Signal.get_inst input with
  | Some { Signal.gen; push = Some push; _ } when gen = rt.gen ->
    push v;
    true
  | Some _ | None -> false

let inject rt input v =
  if not (try_inject rt input v) then
    invalid_arg
      (Printf.sprintf "Runtime.inject: %s (node %d) is not an input of this runtime"
         (Signal.name input) (Signal.id input))

let generation rt = rt.gen
let current rt = rt.current
let changes rt = List.rev rt.rev_changes
let message_log rt = List.rev rt.rev_messages
let on_change rt f = rt.listeners <- rt.listeners @ [ f ]
let stats rt = rt.stats
let source_ids rt = rt.sources
