(** Counters instrumenting a runtime instance.

    These back the paper's efficiency claims: push-based evaluation avoids
    needless recomputation (Sections 1-2), and [No_change] propagation is the
    memoization that makes this observable. [recomputations] counts the extra
    function applications performed when memoization is disabled (the
    pull-style baseline of experiment B3). *)

type t = {
  mutable events : int;  (** Events dispatched by the global dispatcher. *)
  mutable messages : int;  (** Edge messages sent by node threads. *)
  mutable applications : int;
      (** Lifted-function applications triggered by a [Change]. *)
  mutable recomputations : int;
      (** Applications forced only by [memoize:false] (all-[No_change] rounds). *)
  mutable fold_steps : int;  (** [foldp] accumulator updates. *)
  mutable async_events : int;  (** Events originating from [async] nodes. *)
}

val create : unit -> t

val pp : Format.formatter -> t -> unit

val total_computations : t -> int
(** [applications + recomputations]: everything a pull system would pay. *)
