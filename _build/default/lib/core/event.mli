(** Per-event messages flowing along signal-graph edges (paper Fig. 9).

    For every dispatched event, {e every} node emits exactly one message:
    [Change v] when its value was recomputed, [No_change v] carrying the
    latest (unchanged) value otherwise. [No_change] is simultaneously a
    memoization device and a correctness requirement for [foldp] (Section
    3.3.2: a key-press counter must only step on actual key events). *)

type 'a t =
  | Change of 'a
  | No_change of 'a

val is_change : 'a t -> bool
(** The paper's [change] helper. *)

val body : 'a t -> 'a
(** The paper's [bodyOf] helper: the carried value either way. *)

val map : ('a -> 'b) -> 'a t -> 'b t

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
