type t = {
  mutable events : int;
  mutable messages : int;
  mutable applications : int;
  mutable recomputations : int;
  mutable fold_steps : int;
  mutable async_events : int;
}

let create () =
  {
    events = 0;
    messages = 0;
    applications = 0;
    recomputations = 0;
    fold_steps = 0;
    async_events = 0;
  }

let pp ppf s =
  Format.fprintf ppf
    "events=%d messages=%d applications=%d recomputations=%d fold_steps=%d \
     async_events=%d"
    s.events s.messages s.applications s.recomputations s.fold_steps
    s.async_events

let total_computations s = s.applications + s.recomputations
