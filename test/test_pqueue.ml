(* Direct coverage for the pairing heap (lib/cml/pqueue.ml), previously
   tested only through the scheduler's timer wheel: the heap-order
   property (pop_min drains in non-decreasing priority order, preserving
   the multiset), min/insert interaction, and the duplicate-priority
   story — a raw pairing heap does NOT promise FIFO among equal
   priorities, which is exactly why the scheduler keys its timers with
   [(time, sequence)] pairs; the unit tests pin both facts down. *)

module Pqueue = Cml.Pqueue

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))

let of_list xs =
  Pqueue.of_list ~compare:Int.compare (List.map (fun (p, v) -> (p, v)) xs)

let drain q =
  let rec go acc q =
    match Pqueue.pop_min q with
    | None -> List.rev acc
    | Some (p, v, q') -> go ((p, v) :: acc) q'
  in
  go [] q

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_bindings =
  QCheck.(list (pair (int_bound 20) small_int))
(* small priority range on purpose: collisions are the interesting case *)

let prop_heap_order =
  QCheck.Test.make ~name:"pop_min drains in non-decreasing priority order"
    ~count:300 arb_bindings (fun xs ->
      let drained = drain (of_list xs) in
      let rec non_decreasing = function
        | (p1, _) :: ((p2, _) :: _ as rest) -> p1 <= p2 && non_decreasing rest
        | _ -> true
      in
      non_decreasing drained)

let prop_multiset_preserved =
  QCheck.Test.make ~name:"pop_min drains exactly the inserted multiset"
    ~count:300 arb_bindings (fun xs ->
      List.sort compare (drain (of_list xs)) = List.sort compare xs)

let prop_sorted_matches_list_sort =
  QCheck.Test.make ~name:"to_sorted_list priorities = List.sort" ~count:300
    arb_bindings (fun xs ->
      List.map fst (Pqueue.to_sorted_list (of_list xs))
      = List.map fst (List.sort (fun (a, _) (b, _) -> Int.compare a b) xs))

let prop_min_is_running_minimum =
  QCheck.Test.make ~name:"min tracks the running minimum across inserts"
    ~count:300
    QCheck.(list_of_size Gen.(1 -- 40) (int_bound 100))
    (fun ps ->
      let _, ok =
        List.fold_left
          (fun (q, ok) p ->
            let q = Pqueue.insert q p () in
            let expected =
              match Pqueue.to_sorted_list q with
              | (m, ()) :: _ -> m
              | [] -> assert false
            in
            (q, ok && Pqueue.min q = Some (expected, ())))
          (Pqueue.empty ~compare:Int.compare, true)
          ps
      in
      ok)

let prop_size_tracks =
  QCheck.Test.make ~name:"size is maintained by insert/pop_min/merge"
    ~count:200
    QCheck.(pair arb_bindings arb_bindings)
    (fun (xs, ys) ->
      let q = Pqueue.merge (of_list xs) (of_list ys) in
      let n = List.length xs + List.length ys in
      Pqueue.size q = n
      &&
      match Pqueue.pop_min q with
      | None -> n = 0
      | Some (_, _, q') -> Pqueue.size q' = n - 1)

(* ------------------------------------------------------------------ *)
(* Duplicate priorities *)

let test_duplicates_all_preserved () =
  (* Equal priorities never shadow each other: every binding survives. *)
  let q = of_list [ (1, 10); (1, 20); (1, 30); (0, 99); (1, 40) ] in
  check_int "size" 5 (Pqueue.size q);
  let drained = drain q in
  check_int "head is the strict minimum" 99 (snd (List.hd drained));
  check_ints "all duplicate-priority values drained"
    [ 10; 20; 30; 40 ]
    (List.sort compare (List.map snd (List.tl drained)))

let test_duplicates_not_fifo_raw () =
  (* Document the sharp edge: a raw pairing heap reorders equal-priority
     entries (two-pass melding makes the last sibling win the pair round),
     so insertion order is NOT preserved. If this ever starts passing in
     FIFO order, the heap changed and the scheduler's tie-breaking scheme
     should be revisited. *)
  let q = of_list [ (1, 1); (1, 2); (1, 3) ] in
  let order = List.map snd (drain q) in
  check_ints "multiset intact" [ 1; 2; 3 ] (List.sort compare order);
  check_bool "raw heap does not promise FIFO on duplicates" true
    (order = [ 1; 3; 2 ])

let test_duplicates_fifo_with_seq_key () =
  (* The scheduler's timer-wheel scheme: key by (priority, seq) and FIFO
     order among equal priorities is restored. This is the stability
     contract the virtual clock's same-instant test relies on. *)
  let compare_keyed (p1, s1) (p2, s2) =
    match Int.compare p1 p2 with 0 -> Int.compare s1 s2 | c -> c
  in
  let q =
    List.fold_left
      (fun (q, seq) (p, v) -> (Pqueue.insert q (p, seq) v, seq + 1))
      (Pqueue.empty ~compare:compare_keyed, 0)
      [ (1, 10); (2, 99); (1, 20); (1, 30); (1, 40) ]
    |> fst
  in
  check_ints "FIFO among equal priorities, priority order overall"
    [ 10; 20; 30; 40; 99 ]
    (List.map snd (Pqueue.to_sorted_list q))

let test_merge_with_duplicates () =
  let q1 = of_list [ (1, 1); (3, 3) ] in
  let q2 = of_list [ (1, 100); (2, 2) ] in
  let merged = Pqueue.merge q1 q2 in
  check_int "merged size" 4 (Pqueue.size merged);
  check_ints "priorities in order" [ 1; 1; 2; 3 ]
    (List.map fst (Pqueue.to_sorted_list merged))

let test_empty_edges () =
  let e = Pqueue.empty ~compare:Int.compare in
  check_bool "empty" true (Pqueue.is_empty e);
  check_bool "min of empty" true (Pqueue.min e = None);
  check_bool "pop of empty" true (Pqueue.pop_min e = None);
  check_bool "merge with empty is identity-ish" true
    (Pqueue.to_sorted_list (Pqueue.merge e (of_list [ (5, 5) ])) = [ (5, 5) ])

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "pqueue"
    [
      ( "properties",
        [
          qt prop_heap_order;
          qt prop_multiset_preserved;
          qt prop_sorted_matches_list_sort;
          qt prop_min_is_running_minimum;
          qt prop_size_tracks;
        ] );
      ( "duplicates",
        [
          tc "all preserved" `Quick test_duplicates_all_preserved;
          tc "raw heap is not FIFO" `Quick test_duplicates_not_fifo_raw;
          tc "(priority, seq) key restores FIFO" `Quick
            test_duplicates_fifo_with_seq_key;
          tc "merge with duplicates" `Quick test_merge_with_duplicates;
          tc "empty edges" `Quick test_empty_edges;
        ] );
    ]
