(* Intra-session parallel region dispatch (Runtime.start ~domains / ~pool).

   The oracle is determinism: one event wave may fan its region groups out
   over a domain pool, but admission order, epoch assignment and effect
   flushing are coordinator-side and plan-deterministic, so the observable
   behaviour — change trace (virtual times included), message log and
   counter totals — must be bit-identical for every domain count and every
   pool schedule seed. The properties here check exactly that over the
   shared gen_graph catalogue, plus the satellite fixes that ride along:
   Pool.run_dag's scheduling contract, atomic generation minting under
   Domain.spawn, and the Keyboard/Touch per-generation tables returning to
   baseline after open/run/stop churn. *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module Stats = Elm_core.Stats
module Pool = Elm_core.Pool
module World = Elm_std.World
module Keyboard = Elm_std.Keyboard
module Touch = Elm_std.Touch
module Explore = Elm_check.Explore

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Shared pools, one per width, reused across cases and Cml worlds
   (workers never touch the scheduler, so reuse across [Cml.run] instances
   is part of the contract under test). Closed at process exit. *)
let pools : (int, Pool.t) Hashtbl.t = Hashtbl.create 4

let pool_of k =
  match Hashtbl.find_opt pools k with
  | Some p -> p
  | None ->
    let p = Pool.create ~domains:k () in
    Hashtbl.replace pools k p;
    p

let () = at_exit (fun () -> Hashtbl.iter (fun _ p -> Pool.close p) pools)

(* The full observable behaviour of one run: change trace with virtual
   times, message log, and the counters that must not depend on who ran
   the regions. *)
let observe rt =
  let s = Runtime.stats rt in
  ( Runtime.changes rt,
    Runtime.message_log rt,
    ( s.Stats.events,
      s.Stats.messages,
      s.Stats.elided_messages,
      s.Stats.async_events,
      s.Stats.region_steps,
      s.Stats.notified_nodes ) )

let run_wave ?policy ?dispatch ~config shape events =
  let domains, pool =
    match config with
    | `Inline -> (Some 1, None)
    | `Pool k -> (None, Some (pool_of k))
  in
  observe
    (Gen_graph.run_shape ~backend:Runtime.Compiled ?policy ?dispatch ?domains
       ?pool shape events)

(* Tentpole oracle: over the whole catalogue (async and delay shapes
   included), the trace is a function of the program and the scheduler
   policy alone — never of the domain count or pool width. *)
let prop_domain_count_invisible =
  QCheck.Test.make
    ~name:"wave trace independent of domain count (full catalogue, 3 seeds)"
    ~count:8 Gen_graph.arb_shape_events
    (fun (shape, events) ->
      List.for_all
        (fun policy ->
          let reference = run_wave ~policy ~config:`Inline shape events in
          List.for_all
            (fun k -> run_wave ~policy ~config:(`Pool k) shape events = reference)
            [ 1; 2; 4 ])
        [
          Cml.Scheduler.Fifo;
          Cml.Scheduler.Seeded_random 1;
          Cml.Scheduler.Seeded_random 2;
        ])

(* Wave mode vs the sequential compiled dispatcher: for deterministic
   (async-free) shapes the wave path must reproduce the legacy trace
   exactly, under both dispatch strategies. *)
let prop_wave_matches_sequential =
  QCheck.Test.make
    ~name:"wave = sequential compiled dispatcher (deterministic shapes)"
    ~count:12 Gen_graph.arb_deterministic_shape_events
    (fun (shape, events) ->
      List.for_all
        (fun dispatch ->
          let legacy =
            observe
              (Gen_graph.run_shape ~backend:Runtime.Compiled ~dispatch shape
                 events)
          in
          run_wave ~dispatch ~config:`Inline shape events = legacy
          && run_wave ~dispatch ~config:(`Pool 2) shape events = legacy)
        [ Runtime.Cone; Runtime.Flood ])

(* A runtime-owned pool ([~domains:K], K > 1): created at start, closed by
   [Runtime.stop] (run_shape stops its runtime), same trace as inline. *)
let test_owned_pool_roundtrip () =
  let events = [ (true, 1); (false, 2); (true, 3); (true, 3); (false, 5) ] in
  for shape = 0 to Gen_graph.shape_count - 1 do
    let inline = run_wave ~config:`Inline shape events in
    let owned =
      observe
        (Gen_graph.run_shape ~backend:Runtime.Compiled ~domains:2 shape events)
    in
    check_bool
      (Printf.sprintf "shape %d: owned pool trace = inline" shape)
      true
      (owned = inline)
  done

(* ------------------------------------------------------------------ *)
(* Pool.run_dag scheduling contract *)

let record_order () =
  let lock = Mutex.create () in
  let log = ref [] in
  let record i =
    Mutex.lock lock;
    log := i :: !log;
    Mutex.unlock lock
  in
  (record, fun () -> List.rev !log)

let test_run_dag_chain_order () =
  let pool = pool_of 2 in
  let record, order = record_order () in
  let n = 6 in
  let deps = Array.init n (fun i -> if i = 0 then [] else [ i - 1 ]) in
  let tasks = Array.init n (fun i -> fun _w -> record i) in
  Pool.run_dag pool ~deps tasks;
  Alcotest.(check (list int))
    "linear chain runs in dependency order"
    [ 0; 1; 2; 3; 4; 5 ]
    (order ())

let test_run_dag_diamond () =
  let pool = pool_of 4 in
  let record, order = record_order () in
  let deps = [| []; [ 0 ]; [ 0 ]; [ 1; 2 ] |] in
  let tasks = Array.init 4 (fun i -> fun _w -> record i) in
  (* vary the root-rotation seed: the partial order must hold under all *)
  for seed = 0 to 5 do
    Pool.run_dag ~seed pool ~deps tasks
  done;
  let runs = order () in
  check_int "every task ran every time" 24 (List.length runs);
  (* check each batch of 4 respects the diamond *)
  let rec batches = function
    | a :: b :: c :: d :: rest ->
      check_int "root first" 0 a;
      check_int "join last" 3 d;
      check_bool "middle is the two arms" true
        (List.sort compare [ b; c ] = [ 1; 2 ]);
      batches rest
    | [] -> ()
    | _ -> Alcotest.fail "batch not a multiple of 4"
  in
  batches runs

let test_run_dag_rejects_bad_input () =
  let pool = pool_of 2 in
  let noop = fun _w -> () in
  check_bool "cycle rejected" true
    (try
       Pool.run_dag pool ~deps:[| [ 1 ]; [ 0 ] |] [| noop; noop |];
       false
     with Invalid_argument _ -> true);
  check_bool "length mismatch rejected" true
    (try
       Pool.run_dag pool ~deps:[| [] |] [| noop; noop |];
       false
     with Invalid_argument _ -> true);
  check_bool "dependency index out of range rejected" true
    (try
       Pool.run_dag pool ~deps:[| [ 7 ] |] [| noop |];
       false
     with Invalid_argument _ -> true);
  (* self-edges are ignored, not cycles *)
  Pool.run_dag pool ~deps:[| [ 0 ] |] [| noop |]

let test_run_dag_error_releases_dependents () =
  let pool = pool_of 2 in
  let record, order = record_order () in
  let deps = [| []; [ 0 ]; [ 1 ] |] in
  let tasks =
    [|
      (fun _w -> record 0);
      (fun _w ->
        record 1;
        failwith "task 1 boom");
      (fun _w -> record 2);
    |]
  in
  check_bool "task error re-raised after the barrier" true
    (try
       Pool.run_dag pool ~deps tasks;
       false
     with Failure _ -> true);
  Alcotest.(check (list int))
    "failed task still releases its dependents"
    [ 0; 1; 2 ]
    (order ());
  (* the pool survives a failed batch *)
  Pool.run_dag pool ~deps:[| [] |] [| (fun _w -> ()) |]

(* ------------------------------------------------------------------ *)
(* Satellite: atomic generation minting *)

let test_generation_unique_across_domains () =
  let n_domains = 4 and per = 500 in
  let mint () = Array.init per (fun _ -> Runtime.fresh_generation ()) in
  let spawned = Array.init n_domains (fun _ -> Domain.spawn mint) in
  let own = mint () in
  let minted =
    own :: Array.to_list (Array.map Domain.join spawned) |> Array.concat
  in
  let distinct = List.sort_uniq compare (Array.to_list minted) in
  check_int "concurrent mints never collide"
    ((n_domains + 1) * per)
    (List.length distinct)

(* ------------------------------------------------------------------ *)
(* Satellite: Keyboard/Touch per-generation tables drain on stop *)

let test_std_tables_return_to_baseline () =
  let kb0 = Keyboard.held_table_size () in
  let tc0 = Touch.ongoing_table_size () in
  for _cycle = 1 to 8 do
    let rt =
      World.run (fun () ->
          let rt = Runtime.start Keyboard.arrows in
          Keyboard.press rt Keyboard.up_arrow;
          Keyboard.press rt Keyboard.left_arrow;
          rt)
    in
    check_bool "held entry live while the runtime runs" true
      (Keyboard.held_table_size () > kb0);
    Runtime.stop rt;
    check_int "held entry dropped by stop" kb0 (Keyboard.held_table_size ());
    let rt =
      World.run (fun () ->
          let rt = Runtime.start (Signal.lift List.length Touch.touches) in
          Touch.touch_start rt ~id:1 (0, 0);
          Touch.touch_move rt ~id:1 (3, 4);
          rt)
    in
    check_bool "ongoing entry live while the runtime runs" true
      (Touch.ongoing_table_size () > tc0);
    Runtime.stop rt;
    check_int "ongoing entry dropped by stop" tc0 (Touch.ongoing_table_size ())
  done;
  check_int "held table at baseline after churn" kb0
    (Keyboard.held_table_size ());
  check_int "ongoing table at baseline after churn" tc0
    (Touch.ongoing_table_size ());
  (* stop is idempotent and safe on never-pressed runtimes *)
  let rt = World.run (fun () -> Runtime.start Keyboard.arrows) in
  Runtime.stop rt;
  Runtime.stop rt;
  check_int "idempotent stop leaves baseline" kb0 (Keyboard.held_table_size ())

(* ------------------------------------------------------------------ *)
(* Explorer Domains axis: chaos schedules over the wave runtime *)

let test_explore_domains_smoke () =
  let prog =
    Explore.program ~name:"domains-smoke" ~show:string_of_int (fun () ->
        let a = Signal.input ~name:"a" 0 in
        let b = Signal.input ~name:"b" 0 in
        let root =
          Signal.foldp ( + ) 0
            (Signal.lift2 (fun x y -> (x * 31) + y) a
               (Signal.drop_repeats (Signal.lift (fun y -> y / 2) b)))
        in
        {
          Explore.root;
          drive =
            (fun rt ->
              for i = 1 to 5 do
                Runtime.inject rt a i;
                Runtime.inject rt b (7 - i)
              done);
        })
  in
  let r = Explore.run ~schedules:4 ~backend:Runtime.Compiled ~domains:2 prog in
  check_bool "wave runtime clean under chaos schedules" true (Explore.ok r);
  (* cross-domain-count oracle: reports agree run to run *)
  let r1 = Explore.run ~schedules:4 ~backend:Runtime.Compiled ~domains:1 prog in
  check_bool "domains=1 equally clean" true (Explore.ok r1)

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "domains"
    [
      ( "wave",
        [
          qc prop_domain_count_invisible;
          qc prop_wave_matches_sequential;
          tc "owned pool round-trip (~domains:2)" `Quick
            test_owned_pool_roundtrip;
        ] );
      ( "run_dag",
        [
          tc "linear chain order" `Quick test_run_dag_chain_order;
          tc "diamond partial order, all seeds" `Quick test_run_dag_diamond;
          tc "bad input rejected" `Quick test_run_dag_rejects_bad_input;
          tc "task error releases dependents" `Quick
            test_run_dag_error_releases_dependents;
        ] );
      ( "generation",
        [
          tc "atomic minting unique across domains" `Quick
            test_generation_unique_across_domains;
        ] );
      ( "std-tables",
        [
          tc "Keyboard/Touch tables drain on stop" `Quick
            test_std_tables_return_to_baseline;
        ] );
      ( "explore",
        [ tc "Domains axis smoke" `Quick test_explore_domains_smoke ] );
    ]
