(* Tests for the serving layer (Elm_serve): many sessions over one shared
   compiled plan. The properties that matter: a session's change trace is
   bit-identical to a dedicated single-session compiled runtime fed the
   same event sequence, no matter how injections into other sessions
   interleave (isolation); clones continue exactly where their parent
   stood; bounded input queues refuse instead of growing; the per-session
   elision invariant balances; and shared tracers report per-session
   rows. *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module Stats = Elm_core.Stats
module Trace = Elm_core.Trace
module Compile = Elm_core.Compile
module Session = Elm_serve.Session
module Dispatcher = Elm_serve.Dispatcher
module Pool = Elm_serve.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))

let session_values s = List.map snd (Session.changes s)

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Isolation units *)

let counter_graph () =
  let a = Signal.input ~name:"a" 0 in
  let root = Signal.foldp ( + ) 0 (Signal.lift succ a) in
  (a, root)

let test_sessions_isolated () =
  let a, root = counter_graph () in
  let d = Dispatcher.create root in
  let s1 = Dispatcher.open_session d in
  let s2 = Dispatcher.open_session d in
  List.iter (fun v -> Dispatcher.inject d s1 a v) [ 1; 2; 3 ];
  ignore (Dispatcher.drain d);
  check_ints "s1 accumulated" [ 2; 5; 9 ] (session_values s1);
  check_int "s2 never moved" 0 (Session.current s2);
  check_int "s2 saw no events" 0 (Session.stats s2).Stats.events;
  Dispatcher.inject d s2 a 10;
  ignore (Dispatcher.drain d);
  check_ints "s2 folds from its own default" [ 11 ] (session_values s2);
  check_int "s1 unaffected by s2's event" 9 (Session.current s1)

(* The same per-session event sequence produces the same per-session trace
   regardless of how injections into other sessions interleave — checked
   against a dedicated compiled Runtime fed the identical sequence, across
   seeded interleavings (the serving analogue of the schedule explorer's
   seeded schedules) and interior drains. *)
let prop_isolated_under_interleavings =
  QCheck.Test.make
    ~name:"session trace = single-session runtime, any interleaving"
    ~count:30 Gen_graph.arb_deterministic_shape_events
    (fun (shape, events) ->
      let reference =
        Gen_graph.values
          (Gen_graph.run_shape ~backend:Runtime.Compiled shape events)
      in
      List.for_all
        (fun seed ->
          let st = Random.State.make [| seed; shape |] in
          let a, b, root = Gen_graph.build_shape shape in
          let d = Dispatcher.create root in
          let sessions = Array.init 3 (fun _ -> Dispatcher.open_session d) in
          let remaining = Array.make 3 events in
          let left () =
            Array.exists (fun l -> l <> []) remaining
          in
          while left () do
            let i = Random.State.int st 3 in
            (match remaining.(i) with
            | [] -> ()
            | (to_a, v) :: rest ->
              remaining.(i) <- rest;
              Dispatcher.inject d sessions.(i) (if to_a then a else b) v);
            if Random.State.int st 4 = 0 then ignore (Dispatcher.drain d)
          done;
          ignore (Dispatcher.drain d);
          Array.for_all
            (fun s -> session_values s = reference)
            sessions)
        [ 1; 2; 3; 4; 5 ])

(* Per-session elision invariant: the root display message is the only real
   one per event; everything else is elided in place or by the cone gap. *)
let prop_session_accounting =
  QCheck.Test.make ~name:"per session: messages + elided = nodes * events"
    ~count:30 Gen_graph.arb_deterministic_shape_events
    (fun (shape, events) ->
      let a, b, root = Gen_graph.build_shape shape in
      let d = Dispatcher.create root in
      let s = Dispatcher.open_session d in
      List.iter
        (fun (to_a, v) -> Dispatcher.inject d s (if to_a then a else b) v)
        events;
      ignore (Dispatcher.drain d);
      let st = Session.stats s in
      st.Stats.messages + st.Stats.elided_messages
      = Compile.node_count (Dispatcher.plan d) * st.Stats.events)

(* ------------------------------------------------------------------ *)
(* Cloning *)

let test_clone_at_birth_equal () =
  let a, root = counter_graph () in
  let d = Dispatcher.create root in
  let s1 = Dispatcher.open_session d in
  let s2 = Dispatcher.clone d s1 in
  List.iter
    (fun v ->
      Dispatcher.inject d s1 a v;
      Dispatcher.inject d s2 a v)
    [ 4; 5; 6 ];
  ignore (Dispatcher.drain d);
  check_bool "fresh clone behaves like a fresh session" true
    (session_values s1 = session_values s2)

let test_clone_resumes_parent_state () =
  (* Unfused so every stateful slot (foldp accumulator, drop_repeats
     previous value) is plain arena data and the clone is exact. *)
  let a = Signal.input ~name:"a" 0 in
  let root =
    Signal.foldp ( + ) 0 (Signal.drop_repeats (Signal.lift (fun x -> x / 2) a))
  in
  let d = Dispatcher.create ~fuse:false root in
  let s1 = Dispatcher.open_session d in
  List.iter (fun v -> Dispatcher.inject d s1 a v) [ 2; 3; 4 ];
  ignore (Dispatcher.drain d);
  (* values seen: 1, 1 (dropped), 2 -> changes 1, 3 *)
  let s2 = Dispatcher.clone d s1 in
  check_int "clone starts at the parent's current" (Session.current s1)
    (Session.current s2);
  check_bool "clone inherits the change history" true
    (Session.changes s1 = Session.changes s2);
  (* Same suffix to both: identical continuations, including the
     drop_repeats previous value (6/2 = 3 was never seen, 4/2 = 2 was). *)
  List.iter
    (fun v ->
      Dispatcher.inject d s1 a v;
      Dispatcher.inject d s2 a v)
    [ 4; 6; 7 ];
  ignore (Dispatcher.drain d);
  check_bool "identical traces after the clone point" true
    (session_values s1 = session_values s2);
  (* and they are independent after the fork *)
  Dispatcher.inject d s1 a 100;
  ignore (Dispatcher.drain d);
  check_bool "post-fork events do not leak" true
    (Session.current s1 <> Session.current s2)

let test_clone_requires_idle () =
  let a, root = counter_graph () in
  let d = Dispatcher.create root in
  let s = Dispatcher.open_session d in
  Dispatcher.inject d s a 1;
  check_bool "pending event blocks clone" true
    (try
       ignore (Dispatcher.clone d s);
       false
     with Invalid_argument _ -> true);
  ignore (Dispatcher.drain d);
  check_bool "idle again: clone allowed" true
    (Session.is_idle s
    && Session.id (Dispatcher.clone d s) <> Session.id s)

(* ------------------------------------------------------------------ *)
(* Bounded queues and memory *)

let test_bounded_input_queue () =
  let a, root = counter_graph () in
  let d = Dispatcher.create ~queue_capacity:2 root in
  let s = Dispatcher.open_session d in
  check_bool "first two accepted" true
    (Dispatcher.try_inject d s a 1 && Dispatcher.try_inject d s a 2);
  check_bool "third refused" false (Dispatcher.try_inject d s a 3);
  check_int "drop counted" 1 (Session.dropped s);
  check_bool "inject raises Queue_full" true
    (try
       Dispatcher.inject d s a 3;
       false
     with Session.Queue_full -> true);
  ignore (Dispatcher.drain d);
  check_ints "accepted events all dispatched" [ 2; 5 ] (session_values s);
  check_bool "queue drained: accepts again" true (Dispatcher.try_inject d s a 9)

let test_idle_footprint_stable () =
  let a, root = counter_graph () in
  let d = Dispatcher.create ~history:0 root in
  let s = Dispatcher.open_session d in
  Dispatcher.inject d s a 1;
  ignore (Dispatcher.drain d);
  let w1 = Session.footprint_words s in
  for v = 2 to 200 do
    Dispatcher.inject d s a v;
    ignore (Dispatcher.drain d)
  done;
  let w2 = Session.footprint_words s in
  check_int "idle footprint does not grow with traffic" w1 w2

(* ------------------------------------------------------------------ *)
(* Async/delay boundaries inside sessions *)

let test_delay_virtual_clock () =
  let b = Signal.input ~name:"b" 0 in
  let root = Signal.delay 5.0 (Signal.lift (fun x -> (2 * x) + 1) b) in
  let d = Dispatcher.create root in
  let s = Dispatcher.open_session d in
  Dispatcher.inject d s b 1;
  Dispatcher.inject d s b 2;
  check_int "nothing dispatched yet" 0 (Session.stats s).Stats.events;
  ignore (Dispatcher.drain d);
  check_ints "delayed changes in order" [ 3; 5 ] (session_values s);
  check_bool "virtual clock advanced to the due time" true
    (Dispatcher.now d = 5.0);
  check_bool "session idle after drain" true (Session.is_idle s)

let test_async_per_source_order () =
  let a = Signal.input ~name:"a" 0 in
  let b = Signal.input ~name:"b" 1 in
  let root =
    Signal.merge
      (Signal.lift (fun x -> 2 * x) a)
      (Signal.async (Signal.lift (fun x -> (2 * x) + 1) b))
  in
  let d = Dispatcher.create root in
  let s = Dispatcher.open_session d in
  for i = 1 to 4 do
    Dispatcher.inject d s a i;
    Dispatcher.inject d s b i
  done;
  ignore (Dispatcher.drain d);
  let vs = session_values s in
  let evens = List.filter (fun v -> v mod 2 = 0) vs in
  let odds = List.filter (fun v -> v mod 2 = 1) vs in
  check_ints "synchronous side in order" [ 2; 4; 6; 8 ] evens;
  check_ints "async side in order" [ 3; 5; 7; 9 ] odds

(* ------------------------------------------------------------------ *)
(* Accounting and reporting *)

let test_dispatcher_accounting () =
  let a, root = counter_graph () in
  let d = Dispatcher.create root in
  let s1 = Dispatcher.open_session d in
  let s2 = Dispatcher.open_session d in
  let s3 = Dispatcher.clone d s1 in
  Dispatcher.inject d s1 a 1;
  let acc = Dispatcher.accounting d in
  check_int "live" 3 acc.Dispatcher.live;
  check_int "opened counts clones" 3 acc.Dispatcher.opened;
  check_int "routed" 1 acc.Dispatcher.routed;
  check_int "idle excludes the loaded session" 2 acc.Dispatcher.idle;
  check_int "pending" 1 acc.Dispatcher.pending_events;
  ignore (Dispatcher.drain d);
  Dispatcher.close d s2;
  let acc = Dispatcher.accounting d in
  check_int "closed" 1 acc.Dispatcher.closed;
  check_int "live after close" 2 acc.Dispatcher.live;
  check_int "all idle after drain" 2 acc.Dispatcher.idle;
  check_bool "find resolves live ids" true
    (Dispatcher.find d (Session.id s1) <> None);
  check_bool "find misses closed ids" true
    (Dispatcher.find d (Session.id s2) = None);
  ignore s3

let test_closed_session_ignored () =
  let a, root = counter_graph () in
  let d = Dispatcher.create root in
  let s = Dispatcher.open_session d in
  Dispatcher.inject d s a 1;
  Dispatcher.close d s;
  ignore (Dispatcher.drain d);
  check_int "no event dispatched into a closed session" 0
    (Session.stats s).Stats.events;
  check_bool "inject into closed session rejected" true
    (try
       Dispatcher.inject d s a 2;
       false
     with Invalid_argument _ -> true)

let test_shared_tracer_per_session_rows () =
  let tracer = Trace.create () in
  let a, root = counter_graph () in
  let d = Dispatcher.create ~tracer root in
  let s1 = Dispatcher.open_session d in
  let s2 = Dispatcher.open_session d in
  Dispatcher.inject d s1 a 1;
  Dispatcher.inject d s2 a 2;
  ignore (Dispatcher.drain d);
  let summary = Trace.summary tracer in
  let names = List.map (fun ns -> ns.Trace.node_name) summary.Trace.nodes in
  check_bool "session 0 has its own rows" true
    (List.exists (fun n -> contains n "s0:region:") names);
  check_bool "session 1 has its own rows" true
    (List.exists (fun n -> contains n "s1:region:") names);
  (* ids are offset by the plan's stride, so rows never collide *)
  let ids = List.map (fun ns -> ns.Trace.node_id) summary.Trace.nodes in
  let uniq = List.sort_uniq compare ids in
  check_int "node ids unique across sessions" (List.length ids)
    (List.length uniq);
  List.iter
    (fun ns ->
      check_bool
        (Printf.sprintf "row %s processed rounds" ns.Trace.node_name)
        true (ns.Trace.rounds > 0))
    summary.Trace.nodes;
  check_bool "labeled stats lines distinguish sessions" true
    (contains (Format.asprintf "%a" Session.pp_stats s1) "s0: events="
    && contains (Format.asprintf "%a" Session.pp_stats s2) "s1: events=")

(* ------------------------------------------------------------------ *)
(* Parallel drain: domain pool vs the sequential dispatcher *)

(* Shared pools, one per width, reused across cases (workers are persistent
   and park between runs, so reuse also exercises the epoch protocol).
   Closed at process exit. *)
let pools : (int, Pool.t) Hashtbl.t = Hashtbl.create 4

let pool_of k =
  match Hashtbl.find_opt pools k with
  | Some p -> p
  | None ->
    let p = Pool.create ~domains:k () in
    Hashtbl.replace pools k p;
    p

let () = at_exit (fun () -> Hashtbl.iter (fun _ p -> Pool.close p) pools)

(* One deterministic serving run over 4 sessions of [shape]: the same
   injection schedule (uniform round-robin with interior drains, or bursty
   — everything into a hot session first) is replayed sequentially and
   under every pool width/seed, and per-session change traces must agree
   bit-for-bit, epochs included. The catalogue's async and delay shapes
   ride along, so boundary re-entries and virtual-clock delivery cross the
   pool path too. *)
let run_serving ?pool ?(intra = false) ?(seed = 0) ~bursty shape events =
  let a, b, root = Gen_graph.build_shape shape in
  let d = Dispatcher.create ?pool ~intra root in
  let sessions = Array.init 4 (fun _ -> Dispatcher.open_session d) in
  let drain () =
    match pool with
    | Some _ when intra -> ignore (Dispatcher.drain_intra ~seed d)
    | Some _ -> ignore (Dispatcher.drain_parallel ~seed d)
    | None -> ignore (Dispatcher.drain d)
  in
  let inject i e =
    let to_a, v = e in
    Dispatcher.inject d sessions.(i) (if to_a then a else b) v
  in
  if bursty then begin
    List.iter (inject 0) events;
    List.iteri (fun i e -> inject (1 + (i mod 3)) e) events;
    drain ();
    List.iteri (fun i e -> inject (i mod 4) e) events;
    drain ()
  end
  else begin
    List.iteri
      (fun i e ->
        inject (i mod 4) e;
        if i mod 5 = 4 then drain ())
      events;
    drain ()
  end;
  (Array.map Session.changes sessions, d)

let prop_pool_matches_sequential =
  QCheck.Test.make
    ~name:"pool drain = sequential drain, any width/seed/arrival pattern"
    ~count:10 Gen_graph.arb_shape_events
    (fun (shape, events) ->
      List.for_all
        (fun bursty ->
          let reference, _ = run_serving ~bursty shape events in
          List.for_all
            (fun k ->
              let pool = pool_of k in
              List.for_all
                (fun seed ->
                  let got, _ =
                    run_serving ~pool ~seed ~bursty shape events
                  in
                  got = reference)
                [ 0; 1; 2 ])
            [ 1; 2; 4 ])
        [ false; true ])

(* Intra-session parallelism: the same oracle with the finer task grain —
   one pool task per (session, active region group) under the plan's group
   DAG — must still reproduce the sequential traces bit-for-bit. *)
let prop_intra_matches_sequential =
  QCheck.Test.make
    ~name:"intra-session group drain = sequential drain, any width/seed"
    ~count:8 Gen_graph.arb_shape_events
    (fun (shape, events) ->
      List.for_all
        (fun bursty ->
          let reference, _ = run_serving ~bursty shape events in
          List.for_all
            (fun k ->
              let pool = pool_of k in
              List.for_all
                (fun seed ->
                  let got, _ =
                    run_serving ~pool ~intra:true ~seed ~bursty shape events
                  in
                  got = reference)
                [ 0; 1; 2 ])
            [ 1; 2; 4 ])
        [ false; true ])

(* Counter totals under the intra drain: admission billing is
   coordinator-side and group work merges back through scratch deltas, so
   per-session stats must equal the sequential drain's, and the elision
   invariant must balance. ([create ~intra] also routes plain [drain]
   through the intra path — that seam is what this exercises.) *)
let test_intra_totals_match_sequential () =
  let run pool =
    let a, root = counter_graph () in
    let d = Dispatcher.create ?pool ~intra:(pool <> None) root in
    let sessions = Array.init 6 (fun _ -> Dispatcher.open_session d) in
    for round = 1 to 3 do
      Array.iter (fun s -> Dispatcher.inject d s a round) sessions;
      ignore (Dispatcher.drain d)
    done;
    ( Array.map
        (fun s ->
          let st = Session.stats s in
          ( st.Stats.events,
            st.Stats.messages,
            st.Stats.elided_messages,
            st.Stats.region_steps ))
        sessions,
      d )
  in
  let seq, _ = run None in
  let par, d = run (Some (pool_of 2)) in
  check_bool "per-session counter totals identical" true (seq = par);
  let totals = Stats.create () in
  Dispatcher.iter_sessions d (fun s -> Stats.merge totals (Session.stats s));
  check_int "elision invariant balances under intra drain"
    (Compile.node_count (Dispatcher.plan d) * totals.Stats.events)
    (totals.Stats.messages + totals.Stats.elided_messages);
  check_bool "intra without a pool rejected" true
    (try
       let _, root = counter_graph () in
       ignore (Dispatcher.create ~intra:true root);
       false
     with Invalid_argument _ -> true)

(* Counter attribution: the per-domain accumulators, merged, must equal
   the per-session totals (the sessions did all the work; the domain rows
   are just who ran it), and the merged elision invariant must balance. *)
let test_domain_stats_balance () =
  let a, root = counter_graph () in
  let pool = pool_of 2 in
  let d = Dispatcher.create ~pool root in
  let sessions = Array.init 6 (fun _ -> Dispatcher.open_session d) in
  for round = 1 to 3 do
    Array.iter (fun s -> Dispatcher.inject d s a round) sessions;
    ignore (Dispatcher.drain_parallel ~seed:round d)
  done;
  let merged = Stats.create () in
  Array.iter (fun ds -> Stats.merge merged ds) (Dispatcher.domain_stats d);
  let by_session = Stats.create () in
  Array.iter (fun s -> Stats.merge by_session (Session.stats s)) sessions;
  check_int "merged domain events = session events" by_session.Stats.events
    merged.Stats.events;
  check_int "merged domain messages = session messages"
    by_session.Stats.messages merged.Stats.messages;
  check_int "merged domain elided = session elided"
    by_session.Stats.elided_messages merged.Stats.elided_messages;
  check_int "merged elision invariant balances"
    (Compile.node_count (Dispatcher.plan d) * merged.Stats.events)
    (merged.Stats.messages + merged.Stats.elided_messages);
  check_int "every event attributed to exactly one domain" 18
    merged.Stats.events;
  (* the pool did run tasks (6 per round, 3 rounds) *)
  let ws = Pool.worker_stats pool in
  check_bool "worker task counters advanced" true
    (Array.fold_left (fun acc w -> acc + w.Pool.ws_tasks) 0 ws >= 18)

let test_stats_merge_unit () =
  let s1 = Stats.create () and s2 = Stats.create () in
  s1.Stats.events <- 3;
  s1.Stats.messages <- 7;
  s1.Stats.elided_messages <- 2;
  s2.Stats.events <- 5;
  s2.Stats.messages <- 1;
  s2.Stats.node_failures <- 4;
  Stats.merge s1 s2;
  check_int "events add" 8 s1.Stats.events;
  check_int "messages add" 8 s1.Stats.messages;
  check_int "elided add" 2 s1.Stats.elided_messages;
  check_int "failures add" 4 s1.Stats.node_failures;
  check_int "src untouched" 5 s2.Stats.events;
  (* add_delta credits exactly the work between two snapshots *)
  let live = Stats.create () in
  live.Stats.events <- 10;
  let before = Stats.copy live in
  live.Stats.events <- 14;
  live.Stats.fold_steps <- 3;
  let acc = Stats.create () in
  acc.Stats.events <- 100;
  Stats.add_delta acc ~before ~after:live;
  check_int "delta events" 104 acc.Stats.events;
  check_int "delta fold_steps" 3 acc.Stats.fold_steps

(* A shared tracer under the pool: per-domain shards must merge into the
   same per-session rows a sequential drain produces. *)
let test_tracer_under_pool () =
  let run pool =
    let tracer = Trace.create () in
    let a, root = counter_graph () in
    let d = Dispatcher.create ~tracer ?pool root in
    let s1 = Dispatcher.open_session d in
    let s2 = Dispatcher.open_session d in
    for i = 1 to 5 do
      Dispatcher.inject d s1 a i;
      Dispatcher.inject d s2 a (10 * i)
    done;
    ignore (Dispatcher.drain d);
    Trace.summary tracer
  in
  let seq = run None in
  let par = run (Some (pool_of 2)) in
  check_int "events survive the shard merge" seq.Trace.events par.Trace.events;
  check_int "displays survive the shard merge" seq.Trace.displays
    par.Trace.displays;
  check_int "changes survive the shard merge" seq.Trace.changes
    par.Trace.changes;
  let names su =
    List.sort compare (List.map (fun ns -> ns.Trace.node_name) su.Trace.nodes)
  in
  check_bool "per-session rows identical" true (names seq = names par);
  let rounds su =
    List.sort compare
      (List.map (fun ns -> (ns.Trace.node_name, ns.Trace.rounds)) su.Trace.nodes)
  in
  check_bool "per-row round counts identical" true (rounds seq = rounds par)

(* Lifecycle is frozen while workers run: not directly reachable from a
   task, but the guard must at least reject a reentrant drain. *)
let test_pool_misuse_rejected () =
  let _, root = counter_graph () in
  let d = Dispatcher.create root in
  check_bool "drain_parallel without a pool rejected" true
    (try
       ignore (Dispatcher.drain_parallel d);
       false
     with Invalid_argument _ -> true);
  check_bool "zero-width pool rejected" true
    (try
       ignore (Pool.create ~domains:0 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "serve"
    [
      ( "isolation",
        [
          tc "sessions never observe each other's foldp state" `Quick
            test_sessions_isolated;
          qc prop_isolated_under_interleavings;
          qc prop_session_accounting;
        ] );
      ( "clone",
        [
          tc "clone at birth equals a fresh session" `Quick
            test_clone_at_birth_equal;
          tc "clone resumes the parent's exact state" `Quick
            test_clone_resumes_parent_state;
          tc "clone requires an idle session" `Quick test_clone_requires_idle;
        ] );
      ( "bounds",
        [
          tc "bounded input queue refuses overflow" `Quick
            test_bounded_input_queue;
          tc "idle footprint stable under traffic" `Quick
            test_idle_footprint_stable;
        ] );
      ( "boundaries",
        [
          tc "delay delivers on the virtual clock" `Quick
            test_delay_virtual_clock;
          tc "async preserves per-source order" `Quick
            test_async_per_source_order;
        ] );
      ( "accounting",
        [
          tc "dispatcher accounting tracks lifecycle" `Quick
            test_dispatcher_accounting;
          tc "closed sessions ignore events" `Quick test_closed_session_ignored;
          tc "shared tracer reports per-session rows" `Quick
            test_shared_tracer_per_session_rows;
        ] );
      ( "parallel",
        [
          qc prop_pool_matches_sequential;
          qc prop_intra_matches_sequential;
          tc "intra drain counter totals match sequential" `Quick
            test_intra_totals_match_sequential;
          tc "per-domain stats merge to session totals" `Quick
            test_domain_stats_balance;
          tc "Stats.merge / add_delta arithmetic" `Quick test_stats_merge_unit;
          tc "shared tracer shards merge cleanly" `Quick test_tracer_under_pool;
          tc "pool misuse rejected" `Quick test_pool_misuse_rejected;
        ] );
    ]
