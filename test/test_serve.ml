(* Tests for the serving layer (Elm_serve): many sessions over one shared
   compiled plan. The properties that matter: a session's change trace is
   bit-identical to a dedicated single-session compiled runtime fed the
   same event sequence, no matter how injections into other sessions
   interleave (isolation); clones continue exactly where their parent
   stood; bounded input queues refuse instead of growing; the per-session
   elision invariant balances; and shared tracers report per-session
   rows. *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module Stats = Elm_core.Stats
module Trace = Elm_core.Trace
module Compile = Elm_core.Compile
module Session = Elm_serve.Session
module Dispatcher = Elm_serve.Dispatcher

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))

let session_values s = List.map snd (Session.changes s)

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Isolation units *)

let counter_graph () =
  let a = Signal.input ~name:"a" 0 in
  let root = Signal.foldp ( + ) 0 (Signal.lift succ a) in
  (a, root)

let test_sessions_isolated () =
  let a, root = counter_graph () in
  let d = Dispatcher.create root in
  let s1 = Dispatcher.open_session d in
  let s2 = Dispatcher.open_session d in
  List.iter (fun v -> Dispatcher.inject d s1 a v) [ 1; 2; 3 ];
  ignore (Dispatcher.drain d);
  check_ints "s1 accumulated" [ 2; 5; 9 ] (session_values s1);
  check_int "s2 never moved" 0 (Session.current s2);
  check_int "s2 saw no events" 0 (Session.stats s2).Stats.events;
  Dispatcher.inject d s2 a 10;
  ignore (Dispatcher.drain d);
  check_ints "s2 folds from its own default" [ 11 ] (session_values s2);
  check_int "s1 unaffected by s2's event" 9 (Session.current s1)

(* The same per-session event sequence produces the same per-session trace
   regardless of how injections into other sessions interleave — checked
   against a dedicated compiled Runtime fed the identical sequence, across
   seeded interleavings (the serving analogue of the schedule explorer's
   seeded schedules) and interior drains. *)
let prop_isolated_under_interleavings =
  QCheck.Test.make
    ~name:"session trace = single-session runtime, any interleaving"
    ~count:30 Gen_graph.arb_deterministic_shape_events
    (fun (shape, events) ->
      let reference =
        Gen_graph.values
          (Gen_graph.run_shape ~backend:Runtime.Compiled shape events)
      in
      List.for_all
        (fun seed ->
          let st = Random.State.make [| seed; shape |] in
          let a, b, root = Gen_graph.build_shape shape in
          let d = Dispatcher.create root in
          let sessions = Array.init 3 (fun _ -> Dispatcher.open_session d) in
          let remaining = Array.make 3 events in
          let left () =
            Array.exists (fun l -> l <> []) remaining
          in
          while left () do
            let i = Random.State.int st 3 in
            (match remaining.(i) with
            | [] -> ()
            | (to_a, v) :: rest ->
              remaining.(i) <- rest;
              Dispatcher.inject d sessions.(i) (if to_a then a else b) v);
            if Random.State.int st 4 = 0 then ignore (Dispatcher.drain d)
          done;
          ignore (Dispatcher.drain d);
          Array.for_all
            (fun s -> session_values s = reference)
            sessions)
        [ 1; 2; 3; 4; 5 ])

(* Per-session elision invariant: the root display message is the only real
   one per event; everything else is elided in place or by the cone gap. *)
let prop_session_accounting =
  QCheck.Test.make ~name:"per session: messages + elided = nodes * events"
    ~count:30 Gen_graph.arb_deterministic_shape_events
    (fun (shape, events) ->
      let a, b, root = Gen_graph.build_shape shape in
      let d = Dispatcher.create root in
      let s = Dispatcher.open_session d in
      List.iter
        (fun (to_a, v) -> Dispatcher.inject d s (if to_a then a else b) v)
        events;
      ignore (Dispatcher.drain d);
      let st = Session.stats s in
      st.Stats.messages + st.Stats.elided_messages
      = Compile.node_count (Dispatcher.plan d) * st.Stats.events)

(* ------------------------------------------------------------------ *)
(* Cloning *)

let test_clone_at_birth_equal () =
  let a, root = counter_graph () in
  let d = Dispatcher.create root in
  let s1 = Dispatcher.open_session d in
  let s2 = Dispatcher.clone d s1 in
  List.iter
    (fun v ->
      Dispatcher.inject d s1 a v;
      Dispatcher.inject d s2 a v)
    [ 4; 5; 6 ];
  ignore (Dispatcher.drain d);
  check_bool "fresh clone behaves like a fresh session" true
    (session_values s1 = session_values s2)

let test_clone_resumes_parent_state () =
  (* Unfused so every stateful slot (foldp accumulator, drop_repeats
     previous value) is plain arena data and the clone is exact. *)
  let a = Signal.input ~name:"a" 0 in
  let root =
    Signal.foldp ( + ) 0 (Signal.drop_repeats (Signal.lift (fun x -> x / 2) a))
  in
  let d = Dispatcher.create ~fuse:false root in
  let s1 = Dispatcher.open_session d in
  List.iter (fun v -> Dispatcher.inject d s1 a v) [ 2; 3; 4 ];
  ignore (Dispatcher.drain d);
  (* values seen: 1, 1 (dropped), 2 -> changes 1, 3 *)
  let s2 = Dispatcher.clone d s1 in
  check_int "clone starts at the parent's current" (Session.current s1)
    (Session.current s2);
  check_bool "clone inherits the change history" true
    (Session.changes s1 = Session.changes s2);
  (* Same suffix to both: identical continuations, including the
     drop_repeats previous value (6/2 = 3 was never seen, 4/2 = 2 was). *)
  List.iter
    (fun v ->
      Dispatcher.inject d s1 a v;
      Dispatcher.inject d s2 a v)
    [ 4; 6; 7 ];
  ignore (Dispatcher.drain d);
  check_bool "identical traces after the clone point" true
    (session_values s1 = session_values s2);
  (* and they are independent after the fork *)
  Dispatcher.inject d s1 a 100;
  ignore (Dispatcher.drain d);
  check_bool "post-fork events do not leak" true
    (Session.current s1 <> Session.current s2)

let test_clone_requires_idle () =
  let a, root = counter_graph () in
  let d = Dispatcher.create root in
  let s = Dispatcher.open_session d in
  Dispatcher.inject d s a 1;
  check_bool "pending event blocks clone" true
    (try
       ignore (Dispatcher.clone d s);
       false
     with Invalid_argument _ -> true);
  ignore (Dispatcher.drain d);
  check_bool "idle again: clone allowed" true
    (Session.is_idle s
    && Session.id (Dispatcher.clone d s) <> Session.id s)

(* ------------------------------------------------------------------ *)
(* Bounded queues and memory *)

let test_bounded_input_queue () =
  let a, root = counter_graph () in
  let d = Dispatcher.create ~queue_capacity:2 root in
  let s = Dispatcher.open_session d in
  check_bool "first two accepted" true
    (Dispatcher.try_inject d s a 1 && Dispatcher.try_inject d s a 2);
  check_bool "third refused" false (Dispatcher.try_inject d s a 3);
  check_int "drop counted" 1 (Session.dropped s);
  check_bool "inject raises Queue_full" true
    (try
       Dispatcher.inject d s a 3;
       false
     with Session.Queue_full -> true);
  ignore (Dispatcher.drain d);
  check_ints "accepted events all dispatched" [ 2; 5 ] (session_values s);
  check_bool "queue drained: accepts again" true (Dispatcher.try_inject d s a 9)

let test_idle_footprint_stable () =
  let a, root = counter_graph () in
  let d = Dispatcher.create ~history:0 root in
  let s = Dispatcher.open_session d in
  Dispatcher.inject d s a 1;
  ignore (Dispatcher.drain d);
  let w1 = Session.footprint_words s in
  for v = 2 to 200 do
    Dispatcher.inject d s a v;
    ignore (Dispatcher.drain d)
  done;
  let w2 = Session.footprint_words s in
  check_int "idle footprint does not grow with traffic" w1 w2

(* ------------------------------------------------------------------ *)
(* Async/delay boundaries inside sessions *)

let test_delay_virtual_clock () =
  let b = Signal.input ~name:"b" 0 in
  let root = Signal.delay 5.0 (Signal.lift (fun x -> (2 * x) + 1) b) in
  let d = Dispatcher.create root in
  let s = Dispatcher.open_session d in
  Dispatcher.inject d s b 1;
  Dispatcher.inject d s b 2;
  check_int "nothing dispatched yet" 0 (Session.stats s).Stats.events;
  ignore (Dispatcher.drain d);
  check_ints "delayed changes in order" [ 3; 5 ] (session_values s);
  check_bool "virtual clock advanced to the due time" true
    (Dispatcher.now d = 5.0);
  check_bool "session idle after drain" true (Session.is_idle s)

let test_async_per_source_order () =
  let a = Signal.input ~name:"a" 0 in
  let b = Signal.input ~name:"b" 1 in
  let root =
    Signal.merge
      (Signal.lift (fun x -> 2 * x) a)
      (Signal.async (Signal.lift (fun x -> (2 * x) + 1) b))
  in
  let d = Dispatcher.create root in
  let s = Dispatcher.open_session d in
  for i = 1 to 4 do
    Dispatcher.inject d s a i;
    Dispatcher.inject d s b i
  done;
  ignore (Dispatcher.drain d);
  let vs = session_values s in
  let evens = List.filter (fun v -> v mod 2 = 0) vs in
  let odds = List.filter (fun v -> v mod 2 = 1) vs in
  check_ints "synchronous side in order" [ 2; 4; 6; 8 ] evens;
  check_ints "async side in order" [ 3; 5; 7; 9 ] odds

(* ------------------------------------------------------------------ *)
(* Accounting and reporting *)

let test_dispatcher_accounting () =
  let a, root = counter_graph () in
  let d = Dispatcher.create root in
  let s1 = Dispatcher.open_session d in
  let s2 = Dispatcher.open_session d in
  let s3 = Dispatcher.clone d s1 in
  Dispatcher.inject d s1 a 1;
  let acc = Dispatcher.accounting d in
  check_int "live" 3 acc.Dispatcher.live;
  check_int "opened counts clones" 3 acc.Dispatcher.opened;
  check_int "routed" 1 acc.Dispatcher.routed;
  check_int "idle excludes the loaded session" 2 acc.Dispatcher.idle;
  check_int "pending" 1 acc.Dispatcher.pending_events;
  ignore (Dispatcher.drain d);
  Dispatcher.close d s2;
  let acc = Dispatcher.accounting d in
  check_int "closed" 1 acc.Dispatcher.closed;
  check_int "live after close" 2 acc.Dispatcher.live;
  check_int "all idle after drain" 2 acc.Dispatcher.idle;
  check_bool "find resolves live ids" true
    (Dispatcher.find d (Session.id s1) <> None);
  check_bool "find misses closed ids" true
    (Dispatcher.find d (Session.id s2) = None);
  ignore s3

let test_closed_session_ignored () =
  let a, root = counter_graph () in
  let d = Dispatcher.create root in
  let s = Dispatcher.open_session d in
  Dispatcher.inject d s a 1;
  Dispatcher.close d s;
  ignore (Dispatcher.drain d);
  check_int "no event dispatched into a closed session" 0
    (Session.stats s).Stats.events;
  check_bool "inject into closed session rejected" true
    (try
       Dispatcher.inject d s a 2;
       false
     with Invalid_argument _ -> true)

let test_shared_tracer_per_session_rows () =
  let tracer = Trace.create () in
  let a, root = counter_graph () in
  let d = Dispatcher.create ~tracer root in
  let s1 = Dispatcher.open_session d in
  let s2 = Dispatcher.open_session d in
  Dispatcher.inject d s1 a 1;
  Dispatcher.inject d s2 a 2;
  ignore (Dispatcher.drain d);
  let summary = Trace.summary tracer in
  let names = List.map (fun ns -> ns.Trace.node_name) summary.Trace.nodes in
  check_bool "session 0 has its own rows" true
    (List.exists (fun n -> contains n "s0:region:") names);
  check_bool "session 1 has its own rows" true
    (List.exists (fun n -> contains n "s1:region:") names);
  (* ids are offset by the plan's stride, so rows never collide *)
  let ids = List.map (fun ns -> ns.Trace.node_id) summary.Trace.nodes in
  let uniq = List.sort_uniq compare ids in
  check_int "node ids unique across sessions" (List.length ids)
    (List.length uniq);
  List.iter
    (fun ns ->
      check_bool
        (Printf.sprintf "row %s processed rounds" ns.Trace.node_name)
        true (ns.Trace.rounds > 0))
    summary.Trace.nodes;
  check_bool "labeled stats lines distinguish sessions" true
    (contains (Format.asprintf "%a" Session.pp_stats s1) "s0: events="
    && contains (Format.asprintf "%a" Session.pp_stats s2) "s1: events=")

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "serve"
    [
      ( "isolation",
        [
          tc "sessions never observe each other's foldp state" `Quick
            test_sessions_isolated;
          qc prop_isolated_under_interleavings;
          qc prop_session_accounting;
        ] );
      ( "clone",
        [
          tc "clone at birth equals a fresh session" `Quick
            test_clone_at_birth_equal;
          tc "clone resumes the parent's exact state" `Quick
            test_clone_resumes_parent_state;
          tc "clone requires an idle session" `Quick test_clone_requires_idle;
        ] );
      ( "bounds",
        [
          tc "bounded input queue refuses overflow" `Quick
            test_bounded_input_queue;
          tc "idle footprint stable under traffic" `Quick
            test_idle_footprint_stable;
        ] );
      ( "boundaries",
        [
          tc "delay delivers on the virtual clock" `Quick
            test_delay_virtual_clock;
          tc "async preserves per-source order" `Quick
            test_async_per_source_order;
        ] );
      ( "accounting",
        [
          tc "dispatcher accounting tracks lifecycle" `Quick
            test_dispatcher_accounting;
          tc "closed sessions ignore events" `Quick test_closed_session_ignored;
          tc "shared tracer reports per-session rows" `Quick
            test_shared_tracer_per_session_rows;
        ] );
    ]
