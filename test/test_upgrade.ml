(* Live graph upgrade (Upgrade.diff / Session.upgrade /
   Dispatcher.upgrade_all), verified replay-differentially: the oracle for
   an upgraded run is a never-upgraded run fed the same events through the
   same drain pattern. Identity upgrades must be bit-identical at every
   split point, both admission styles and domains 1/2/4; state-migrating
   upgrades must splice the foldp accumulator; detaching a subgraph must
   shrink the session footprint and leave no orphan waiters; and the three
   planted upgrade mutations (stale slot map, skipped migration, leaked
   seam mailbox) must each be caught by the explorer's upgrade sweep. *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module Compile = Elm_core.Compile
module Upgrade = Elm_core.Upgrade
module Session = Elm_serve.Session
module Dispatcher = Elm_serve.Dispatcher
module Pool = Elm_serve.Pool
module Explore = Elm_check.Explore
module Mutate = Elm_check.Mutate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_pool domains f =
  if domains <= 1 then f None
  else
    let p = Pool.create ~domains () in
    Fun.protect ~finally:(fun () -> Pool.close p) (fun () -> f (Some p))

(* ------------------------------------------------------------------ *)
(* Upgrade.diff units *)

let diamond () =
  let a = Signal.input ~name:"a" 0 in
  let b = Signal.input ~name:"b" 0 in
  let joined =
    Signal.lift2 ~name:"join"
      (fun l r -> (l * 31) + r)
      (Signal.lift ~name:"l" succ a)
      (Signal.lift ~name:"r" succ b)
  in
  (a, b, Signal.foldp ~name:"sum" ( + ) 0 joined)

let test_diff_identity () =
  let _, _, r1 = diamond () in
  let _, _, r2 = diamond () in
  let p = Upgrade.diff (Compile.plan_of r1) (Compile.plan_of r2) in
  check_bool "identity" true (Upgrade.is_identity p);
  check_int "no additions" 0 (List.length (Upgrade.added_slots p));
  check_int "no drops" 0 (List.length (Upgrade.dropped_slots p));
  check_bool "slot map total" true
    (Array.for_all (fun i -> i >= 0) (Upgrade.slot_map p))

(* Node ids are minted fresh per build, so matching must come from the
   structural keys alone — the same program at a different id range is
   still an identity upgrade. *)
let test_diff_ignores_ids () =
  let _, _, r1 = diamond () in
  (* burn a batch of ids between the two builds *)
  for _ = 1 to 100 do
    ignore (Signal.input ~name:"burn" 0)
  done;
  let _, _, r2 = diamond () in
  let p = Upgrade.diff (Compile.plan_of r1) (Compile.plan_of r2) in
  check_bool "identity despite fresh ids" true (Upgrade.is_identity p)

let test_diff_add_drop () =
  let _, _, old_root = diamond () in
  let new_root =
    (* the b arm is gone; a new "scale" node appears above the a arm *)
    let a = Signal.input ~name:"a" 0 in
    Signal.foldp ~name:"sum" ( + ) 0
      (Signal.lift ~name:"scale" (fun x -> x * 2) (Signal.lift ~name:"l" succ a))
  in
  let p = Upgrade.diff (Compile.plan_of old_root) (Compile.plan_of new_root) in
  check_bool "not identity" true (not (Upgrade.is_identity p));
  check_bool "has additions" true (Upgrade.added_slots p <> []);
  check_bool "has drops" true (Upgrade.dropped_slots p <> []);
  (* the a input and its lift survive: deps are identical *)
  check_bool "shared prefix matched" true
    (Array.exists (fun i -> i >= 0) (Upgrade.slot_map p))

let test_diff_rejects_bad_migration () =
  let _, _, r1 = diamond () in
  let _, _, r2 = diamond () in
  let migrate = [ Upgrade.migrate ~name:"no-such-node" (fun (x : int) -> x) ] in
  check_bool "unknown migration target rejected" true
    (try
       ignore (Upgrade.diff ~migrate (Compile.plan_of r1) (Compile.plan_of r2));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Replay-differential identity upgrades over the shape catalogue.

   The reference run performs the same split and drain pattern with the
   upgrade skipped (an interior drain already reorders async/delay
   deliveries, so "no upgrade, same schedule" is the honest differential).
   The property quantifies over shape, events, split point, admission
   style (quiescent / pending) and domain count. *)

let prop_identity_upgrade =
  QCheck.Test.make
    ~name:"identity upgrade: bit-identical at every split, style, domains"
    ~count:24 Gen_graph.arb_upgrade_case
    (fun (shape, events, k, quiesce) ->
      let reference, _, _, _ =
        Gen_graph.serve_upgrade_run ~quiesce ~apply:false ~upgrade_at:k shape
          events
      in
      List.for_all
        (fun domains ->
          with_pool domains (fun pool ->
              let got, s, d, patch =
                Gen_graph.serve_upgrade_run ?pool ~quiesce ~upgrade_at:k shape
                  events
              in
              let acc = Dispatcher.accounting d in
              got = reference
              && (match patch with
                 | Some p -> Upgrade.is_identity p
                 | None -> false)
              && Session.dropped s = 0
              && acc.Dispatcher.pending_events = 0
              && acc.Dispatcher.pending_delays = 0
              && Session.is_idle s))
        [ 1; 2; 4 ])

(* Upgrading is idempotent in sequence: two identity upgrades back to back
   (a plan-cache reseed in between) still replay exactly. *)
let test_double_upgrade () =
  let shape = 4 and events = [ (true, 1); (false, 2); (true, 3) ] in
  let reference, _, _, _ =
    Gen_graph.serve_upgrade_run ~apply:false ~upgrade_at:0 shape events
  in
  let a, b, root = Gen_graph.build_shape shape in
  let d = Dispatcher.create ~fuse:false root in
  let s = Dispatcher.open_session d in
  Dispatcher.inject d s a 1;
  ignore (Dispatcher.drain d);
  let _, _, root' = Gen_graph.build_shape shape in
  ignore (Dispatcher.upgrade_all d root');
  let a'', b'', root'' = Gen_graph.build_shape shape in
  ignore (Dispatcher.upgrade_all d root'');
  check_int "two upgrades recorded" 2 (Dispatcher.upgrades d);
  Dispatcher.inject d s b'' 2;
  Dispatcher.inject d s a'' 3;
  ignore (Dispatcher.drain d);
  ignore b;
  check_bool "trace identical after two upgrades" true
    (Session.changes s = reference)

(* ------------------------------------------------------------------ *)
(* State-migrating upgrade: splice the foldp accumulator. *)

let bias = 1000

let counter_old () =
  let a = Signal.input ~name:"a" 0 in
  (a, Signal.foldp ~name:"sum" ( + ) 0 (Signal.lift ~name:"inc" succ a))

(* Same program with the accumulator stored re-biased by [bias] and a view
   node undoing the bias: observationally identical iff the migration adds
   [bias] to the live accumulator at the seam. *)
let counter_new () =
  let a = Signal.input ~name:"a" 0 in
  let sum =
    Signal.foldp ~name:"sum" ( + ) bias (Signal.lift ~name:"inc" succ a)
  in
  (a, Signal.lift ~name:"view" (fun x -> x - bias) sum)

let test_migration_splice () =
  let reference =
    let a, root = counter_old () in
    let d = Dispatcher.create ~fuse:false root in
    let s = Dispatcher.open_session d in
    List.iter (fun v -> Dispatcher.inject d s a v) [ 1; 2; 3; 4; 5 ];
    ignore (Dispatcher.drain d);
    Session.changes s
  in
  let a, root = counter_old () in
  let d = Dispatcher.create ~fuse:false root in
  let s = Dispatcher.open_session d in
  List.iter (fun v -> Dispatcher.inject d s a v) [ 1; 2; 3 ];
  ignore (Dispatcher.drain d);
  let a', root' = counter_new () in
  let patch =
    Dispatcher.upgrade_all
      ~migrate:[ Upgrade.migrate ~name:"sum" (fun (acc : int) -> acc + bias) ]
      d root'
  in
  check_bool "migration is not an identity patch" true
    (not (Upgrade.is_identity patch));
  List.iter (fun v -> Dispatcher.inject d s a' v) [ 4; 5 ];
  ignore (Dispatcher.drain d);
  check_bool "spliced trace equals never-upgraded run" true
    (Session.changes s = reference)

(* Without the migration the accumulator value carries over raw: the view
   subtracts a bias that was never added, so every post-upgrade value is
   off by exactly [bias] — the observable the Skip_migration mutation
   reproduces. *)
let test_migration_skipped_is_visible () =
  let run_with migrate =
    let a, root = counter_old () in
    let d = Dispatcher.create ~fuse:false root in
    let s = Dispatcher.open_session d in
    List.iter (fun v -> Dispatcher.inject d s a v) [ 1; 2; 3 ];
    ignore (Dispatcher.drain d);
    let a', root' = counter_new () in
    ignore (Dispatcher.upgrade_all ?migrate d root');
    List.iter (fun v -> Dispatcher.inject d s a' v) [ 4; 5 ];
    ignore (Dispatcher.drain d);
    List.map snd (Session.changes s)
  in
  let good =
    run_with
      (Some [ Upgrade.migrate ~name:"sum" (fun (acc : int) -> acc + bias) ])
  in
  let bad = run_with None in
  let post g = List.filteri (fun i _ -> i >= 3) g in
  check_bool "unmigrated suffix off by exactly the bias" true
    (List.for_all2 (fun g b -> b = g - bias) (post good) (post bad))

(* ------------------------------------------------------------------ *)
(* Detach: dropping a subgraph releases its resources. *)

let test_detach_shrinks_footprint () =
  let a_old = Signal.input ~name:"a" 0 in
  let b_old = Signal.input ~name:"b" 0 in
  let old_root =
    (* the b arm crosses an async seam, so it forms its own region and the
       upgrade detaches it at region granularity *)
    Signal.lift2 ~name:"join" ( + )
      (Signal.lift ~name:"l" succ a_old)
      (Signal.async (Gen_graph.chain 2 8 b_old))
  in
  let d = Dispatcher.create ~fuse:false old_root in
  let s = Dispatcher.open_session d in
  Dispatcher.inject d s a_old 1;
  Dispatcher.inject d s b_old 2;
  ignore (Dispatcher.drain d);
  let before = Session.footprint_words s in
  (* leave an undrained event on the arm about to be detached *)
  Dispatcher.inject d s b_old 9;
  check_int "one event pending" 1 (Session.pending s);
  let new_root =
    let a = Signal.input ~name:"a" 0 in
    Signal.lift ~name:"solo" succ (Signal.lift ~name:"l" succ a)
  in
  let patch = Dispatcher.upgrade_all d new_root in
  check_bool "async arm detached as a region" true
    (Upgrade.detached_regions patch <> []);
  check_int "pending event on the detached arm released" 0 (Session.pending s);
  let after = Session.footprint_words s in
  check_bool
    (Printf.sprintf "footprint shrank (%d -> %d words)" before after)
    true (after < before);
  ignore (Dispatcher.drain d);
  let acc = Dispatcher.accounting d in
  check_int "nothing pending" 0 acc.Dispatcher.pending_events;
  check_int "no pending delays" 0 acc.Dispatcher.pending_delays;
  check_bool "session idle" true (Session.is_idle s);
  (* no green thread is left parked on a channel of the detached subgraph:
     the serve layer is thread-free and the upgrade released every waiter
     accounted to the old plan *)
  check_bool "no orphan waiters" true (Cml.Scheduler.blocked_sites () = [])

(* ------------------------------------------------------------------ *)
(* The runtime-side upgrade seam: at_quiescence runs once, settled. *)

let test_at_quiescence_hook () =
  List.iter
    (fun backend ->
      let ran = ref 0 in
      let seen = ref (-1) in
      let rt =
        Gen_graph.with_world (fun () ->
            let a = Signal.input ~name:"a" 0 in
            let root = Signal.foldp ( + ) 0 a in
            let rt = Runtime.start ~backend ~mode:Runtime.Sequential root in
            Runtime.inject rt a 1;
            Runtime.inject rt a 2;
            Runtime.at_quiescence rt (fun () ->
                incr ran;
                seen := List.length (Runtime.changes rt));
            Runtime.inject rt a 3;
            rt)
      in
      Runtime.stop rt;
      check_int "callback ran exactly once" 1 !ran;
      check_int "ran at a settled point (all three events displayed)" 3 !seen)
    [ Runtime.Pipelined; Runtime.Compiled ]

(* ------------------------------------------------------------------ *)
(* Planted upgrade bugs: the sweep must catch all three, and the clean
   victims must pass it. *)

let test_clean_victims_pass () =
  check_bool "identity victim clean" true
    (Explore.ok (Explore.run_upgrade (Mutate.upgrade_victim ())));
  check_bool "migration victim clean" true
    (Explore.ok (Explore.run_upgrade (Mutate.migration_victim ())))

let test_planted_upgrade_bugs_caught () =
  List.iter
    (fun (planted, report) ->
      check_bool
        (Printf.sprintf "planted %s caught" planted.Mutate.name)
        true
        (not (Explore.ok report)))
    (Mutate.upgrade_catches ())

let test_planted_upgrade_bugs_caught_parallel () =
  check_bool "all planted upgrade bugs caught under a pool" true
    (Mutate.upgrade_all_caught ~domains:2 ())

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "upgrade"
    [
      ( "diff",
        [
          tc "same program twice is an identity patch" `Quick
            test_diff_identity;
          tc "matching survives fresh node ids" `Quick test_diff_ignores_ids;
          tc "add/drop detected structurally" `Quick test_diff_add_drop;
          tc "migration for an unknown node rejected" `Quick
            test_diff_rejects_bad_migration;
        ] );
      ( "replay-differential",
        [
          qc prop_identity_upgrade;
          tc "two upgrades back to back still replay" `Quick
            test_double_upgrade;
        ] );
      ( "migration",
        [
          tc "foldp accumulator splices across the seam" `Quick
            test_migration_splice;
          tc "skipping the migration is observable" `Quick
            test_migration_skipped_is_visible;
        ] );
      ( "detach",
        [
          tc "detached subgraph releases footprint and waiters" `Quick
            test_detach_shrinks_footprint;
        ] );
      ( "seam",
        [ tc "at_quiescence runs once, settled" `Quick test_at_quiescence_hook ] );
      ( "mutations",
        [
          tc "clean victims pass the sweep" `Quick test_clean_victims_pass;
          tc "all planted upgrade bugs caught" `Quick
            test_planted_upgrade_bugs_caught;
          tc "caught under a worker pool too" `Quick
            test_planted_upgrade_bugs_caught_parallel;
        ] );
    ]
