(* Tests for the reactive standard library (paper Fig. 13 and Section 4.2):
   Mouse, Keyboard, Window, Touch, Time, input widgets, simulated Http, and
   the Fig. 14 slide-show program. *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module World = Elm_std.World
module Mouse = Elm_std.Mouse
module Keyboard = Elm_std.Keyboard
module Window = Elm_std.Window
module Touch = Elm_std.Touch
module Time = Elm_std.Time
module Input = Elm_std.Input_widgets
module Http = Elm_std.Http
module E = Gui.Element

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let values rt = List.map snd (Runtime.changes rt)

(* Example 2 of the paper: main = lift asText Mouse.position *)
let test_mouse_tracker () =
  let rt =
    World.run (fun () ->
        let main =
          Signal.lift
            (fun (x, y) -> Printf.sprintf "(%d,%d)" x y)
            Mouse.position
        in
        let rt = Runtime.start main in
        Mouse.move rt (3, 4);
        Mouse.move rt (5, 6);
        rt)
  in
  Alcotest.(check (list string)) "positions displayed" [ "(3,4)"; "(5,6)" ]
    (values rt)

let test_mouse_x_y () =
  let rt =
    World.run (fun () ->
        let rt = Runtime.start (Signal.pair Mouse.x Mouse.y) in
        Mouse.move rt (7, 9);
        rt)
  in
  check_bool "x/y derived" true (Runtime.current rt = (7, 9))

let test_mouse_clicks_count () =
  let rt =
    World.run (fun () ->
        let rt = Runtime.start (Signal.count Mouse.clicks) in
        Mouse.click rt;
        Mouse.click rt;
        Mouse.click rt;
        rt)
  in
  check_int "three clicks" 3 (Runtime.current rt)

let test_keyboard_arrows () =
  let rt =
    World.run (fun () ->
        let rt = Runtime.start Keyboard.arrows in
        Keyboard.press rt Keyboard.up_arrow;
        Keyboard.press rt Keyboard.right_arrow;
        rt)
  in
  check_bool "up+right is (1,1)" true (Runtime.current rt = (1, 1))

let test_keyboard_release () =
  let rt =
    World.run (fun () ->
        let rt = Runtime.start Keyboard.arrows in
        Keyboard.press rt Keyboard.left_arrow;
        Keyboard.release rt Keyboard.left_arrow;
        rt)
  in
  check_bool "released returns to 0" true (Runtime.current rt = (0, 0))

let test_keyboard_shift () =
  let rt =
    World.run (fun () ->
        let rt = Runtime.start Keyboard.shift in
        Keyboard.press rt Keyboard.shift_key;
        rt)
  in
  check_bool "shift detected" true (Runtime.current rt)

let test_keyboard_last_pressed () =
  let rt =
    World.run (fun () ->
        let rt = Runtime.start (Signal.count Keyboard.last_pressed) in
        Keyboard.tap rt 65;
        Keyboard.tap rt 66;
        rt)
  in
  (* Section 3.1's example: count key presses with foldp. *)
  check_int "two presses counted" 2 (Runtime.current rt)

let test_keyboard_state_isolated_between_runs () =
  let once () =
    World.run (fun () ->
        let rt = Runtime.start Keyboard.arrows in
        Keyboard.press rt Keyboard.right_arrow;
        rt)
  in
  ignore (once ());
  let rt = once () in
  check_bool "fresh session, same result" true (Runtime.current rt = (1, 0))

let test_window_resize () =
  let rt =
    World.run (fun () ->
        let rt = Runtime.start Window.width in
        Window.resize rt (800, 600);
        rt)
  in
  check_int "width tracked" 800 (Runtime.current rt)

let test_touch_gesture () =
  let rt =
    World.run (fun () ->
        let rt =
          Runtime.start
            (Signal.lift (List.map (fun t -> (t.Touch.id, t.Touch.x, t.Touch.y)))
               Touch.touches)
        in
        Touch.touch_start rt ~id:1 (0, 0);
        Touch.touch_move rt ~id:1 (10, 5);
        Touch.touch_end rt ~id:1;
        rt)
  in
  check_bool "gesture observed" true
    (values rt = [ [ (1, 0, 0) ]; [ (1, 10, 5) ]; [] ])

let test_touch_taps () =
  let rt =
    World.run (fun () ->
        let rt = Runtime.start Touch.taps in
        Touch.tap rt (12, 34);
        rt)
  in
  check_bool "tap position" true (Runtime.current rt = (12, 34))

let test_time_every () =
  let rt =
    World.run (fun () ->
        let timer = Time.every (3.0 *. Time.second) in
        let rt = Runtime.start (Signal.count (Time.signal timer)) in
        Time.drive timer rt ~until:10.0;
        rt)
  in
  (* ticks at 3, 6, 9 *)
  check_int "three ticks in 10s" 3 (Runtime.current rt)

let test_time_every_values_are_times () =
  let rt =
    World.run (fun () ->
        let timer = Time.every 2.0 in
        let rt = Runtime.start (Time.signal timer) in
        Time.drive timer rt ~until:5.0;
        rt)
  in
  Alcotest.(check (list (float 1e-6))) "tick times" [ 2.0; 4.0 ] (values rt)

let test_time_fps_deltas () =
  let rt =
    World.run (fun () ->
        let timer = Time.fps 10.0 in
        let rt = Runtime.start (Time.signal timer) in
        Time.drive timer rt ~until:0.35;
        rt)
  in
  Alcotest.(check (list (float 1e-6))) "deltas" [ 0.1; 0.1; 0.1 ] (values rt)

let test_world_script () =
  let rt =
    World.run (fun () ->
        let rt = Runtime.start Mouse.x in
        World.script
          [ (1.0, fun () -> Mouse.move rt (10, 0)); (2.0, fun () -> Mouse.move rt (20, 0)) ];
        rt)
  in
  match Runtime.changes rt with
  | [ (t1, 10); (t2, 20) ] ->
    check_bool "timestamps honor the script" true (t1 >= 1.0 && t1 < 2.0 && t2 >= 2.0)
  | _ -> Alcotest.fail "expected two changes"

let test_world_every () =
  let count = ref 0 in
  World.run (fun () -> World.every 1.0 ~until:5.5 (fun _ -> incr count));
  check_int "five periodic actions" 5 !count

(* Input widgets (Section 4.2) *)

let test_input_text_pair_of_signals () =
  let rt =
    World.run (fun () ->
        let field = Input.text "Enter a tag" in
        let main = Signal.pair field.Input.field field.Input.value in
        let rt = Runtime.start main in
        field.Input.set rt "shells";
        rt)
  in
  let _, value = Runtime.current rt in
  Alcotest.(check string) "value signal" "shells" value

let test_input_text_placeholder () =
  let shown = ref "" in
  ignore
    (World.run (fun () ->
         let field = Input.text "Enter a tag" in
         let rt = Runtime.start field.Input.field in
         shown := Gui.Ascii_render.render (Runtime.current rt);
         rt));
  check_bool "placeholder visible when empty" true
    (String.length !shown > 0
    &&
    let rec contains i =
      i + 5 <= String.length !shown
      && (String.sub !shown i 5 = "Enter" || contains (i + 1))
    in
    contains 0)

let test_button_presses () =
  let rt =
    World.run (fun () ->
        let b = Input.button "Go" in
        let rt = Runtime.start (Signal.count b.Input.presses) in
        b.Input.press rt;
        b.Input.press rt;
        rt)
  in
  check_int "two presses" 2 (Runtime.current rt)

let test_checkbox_and_slider () =
  let rt =
    World.run (fun () ->
        let c = Input.checkbox false in
        let s = Input.slider 0.0 in
        let main = Signal.pair c.Input.checked s.Input.ratio in
        let rt = Runtime.start main in
        c.Input.set_checked rt true;
        s.Input.slide rt 0.75;
        s.Input.slide rt 1.5;
        (* clamped *)
        rt)
  in
  let checked, ratio = Runtime.current rt in
  check_bool "checked" true checked;
  check_bool "ratio clamped" true (ratio = 1.0)

(* Http (Example 3's substrate) *)

let test_http_sync_get () =
  let srv = Http.server ~latency:(fun _ -> 5.0) (fun q -> Ok ("<" ^ q ^ ">")) in
  let rt =
    World.run (fun () ->
        let reqs = Signal.input ~name:"reqs" "" in
        let rt = Runtime.start (Http.send_get srv reqs) in
        Runtime.inject rt reqs "cats";
        rt)
  in
  (match Runtime.changes rt with
  | [ (t, Http.Success "<cats>") ] ->
    check_bool "latency applied" true (t >= 5.0)
  | _ -> Alcotest.fail "expected one successful response");
  check_int "one request served" 1 (Http.request_count srv)

let test_http_default_is_waiting () =
  let srv = Http.server (fun _ -> Ok "x") in
  ignore
    (World.run (fun () ->
         let reqs = Signal.input ~name:"reqs" "" in
         let resp = Http.send_get srv reqs in
         check_bool "default Waiting" true (Signal.default resp = Http.Waiting);
         Runtime.start resp));
  check_int "no request for the default" 0 (Http.request_count srv)

let test_http_failure () =
  let srv = Http.server (fun _ -> Error (500, "boom")) in
  let rt =
    World.run (fun () ->
        let reqs = Signal.input ~name:"reqs" "" in
        let rt = Runtime.start (Http.send_get srv reqs) in
        Runtime.inject rt reqs "x";
        rt)
  in
  check_bool "failure propagated" true
    (Runtime.current rt = Http.Failure (500, "boom"))

let test_http_flickr () =
  let response =
    World.run (fun () ->
        let reqs = Signal.input ~name:"reqs" "" in
        let rt = Runtime.start (Http.send_get Http.flickr reqs) in
        Runtime.inject rt reqs "sea";
        rt)
    |> Runtime.current
  in
  match response with
  | Http.Success body ->
    (* the paper: responses are JSON objects containing image URLs *)
    check_bool "body is JSON" true (Json.parse_opt body <> None);
    Alcotest.(check (option string))
      "url extracted from the JSON"
      (Some "http://img.example/sea.jpg")
      (Http.first_photo_url body)
  | Http.Waiting | Http.Failure _ -> Alcotest.fail "expected a JSON response"

let test_http_first_photo_url_robust () =
  check_bool "bad json" true (Http.first_photo_url "{oops" = None);
  check_bool "missing fields" true (Http.first_photo_url "{\"a\":1}" = None)

let test_http_response_to_string () =
  check_bool "waiting" true (Http.response_to_string Http.Waiting = "waiting");
  check_bool "success" true (Http.response_to_string (Http.Success "b") = "ok:b");
  check_bool "failure" true
    (Http.response_to_string (Http.Failure (500, "x")) = "error 500: x")

let test_http_event_equal_to_default_is_served () =
  (* Only the construction-time default computation is exempt from hitting
     the server; a genuine event that happens to carry the same string as
     the default is a real request and must be served (this used to be
     swallowed as Waiting forever). *)
  let srv = Http.server ~latency:(fun _ -> 1.0) (fun q -> Ok ("<" ^ q ^ ">")) in
  let rt =
    World.run (fun () ->
        let reqs = Signal.input ~name:"reqs" "cats" in
        let rt = Runtime.start (Http.send_get srv reqs) in
        Runtime.inject rt reqs "cats";
        rt)
  in
  check_bool "default-valued event served" true
    (Runtime.current rt = Http.Success "<cats>");
  check_int "exactly one request (not zero, not two)" 1 (Http.request_count srv)

let test_http_timeout () =
  let srv = Http.server ~latency:(fun _ -> 10.0) (fun q -> Ok q) in
  let rt =
    World.run (fun () ->
        let reqs = Signal.input ~name:"reqs" "" in
        let rt = Runtime.start (Http.send_get ~timeout:3.0 srv reqs) in
        Runtime.inject rt reqs "slow";
        rt)
  in
  (match Runtime.changes rt with
  | [ (t, Http.Failure (0, "timeout")) ] ->
    Alcotest.(check (float 1e-9)) "gave up after exactly the timeout" 3.0 t
  | _ -> Alcotest.fail "expected a timeout failure");
  check_int "attempt still counted" 1 (Http.request_count srv)

let test_http_retry_backoff () =
  (* Two failures then success: with retries:3 and backoff:1 the response
     lands at 1s (attempt) + 1s (2^0 backoff) + 1s + 2s (2^1) + 1s = 6s. *)
  let attempts = ref 0 in
  let srv =
    Http.server ~latency:(fun _ -> 1.0) (fun q ->
        incr attempts;
        if !attempts <= 2 then Error (503, "unavailable") else Ok ("<" ^ q ^ ">"))
  in
  let rt =
    World.run (fun () ->
        let reqs = Signal.input ~name:"reqs" "" in
        let rt =
          Runtime.start (Http.send_get ~retries:3 ~backoff:1.0 srv reqs)
        in
        Runtime.inject rt reqs "x";
        rt)
  in
  (match Runtime.changes rt with
  | [ (t, Http.Success "<x>") ] ->
    Alcotest.(check (float 1e-9)) "deterministic exponential backoff" 6.0 t
  | _ -> Alcotest.fail "expected eventual success");
  check_int "three attempts served" 3 (Http.request_count srv)

let test_http_retries_exhausted () =
  let srv = Http.server ~latency:(fun _ -> 1.0) (fun _ -> Error (500, "down")) in
  let rt =
    World.run (fun () ->
        let reqs = Signal.input ~name:"reqs" "" in
        let rt = Runtime.start (Http.send_get ~retries:2 srv reqs) in
        Runtime.inject rt reqs "x";
        rt)
  in
  check_bool "last failure reported" true
    (Runtime.current rt = Http.Failure (500, "down"));
  check_int "initial attempt + 2 retries" 3 (Http.request_count srv)

let test_time_until_zero () =
  let rt =
    World.run (fun () ->
        let timer = Time.every 1.0 in
        let rt = Runtime.start (Signal.count (Time.signal timer)) in
        Time.drive timer rt ~until:0.5;
        rt)
  in
  check_int "no ticks before the horizon" 0 (Runtime.current rt)

let test_world_at_in_past () =
  (* scheduling "in the past" fires immediately rather than deadlocking *)
  let fired = ref false in
  World.run (fun () ->
      Cml.sleep 5.0;
      World.at 1.0 (fun () -> fired := true));
  check_bool "ran immediately" true !fired

(* Fig. 14: the slide show, all three index variants. *)
let pics = [ "shells.jpg"; "car.jpg"; "book.jpg" ]

let display i = List.nth pics (i mod List.length pics)

let test_slideshow_clicks () =
  let rt =
    World.run (fun () ->
        let index = Signal.count Mouse.clicks in
        let rt = Runtime.start (Signal.lift display index) in
        Mouse.click rt;
        Mouse.click rt;
        Mouse.click rt;
        Mouse.click rt;
        rt)
  in
  Alcotest.(check (list string))
    "cycles through pictures"
    [ "car.jpg"; "book.jpg"; "shells.jpg"; "car.jpg" ]
    (values rt)

let test_slideshow_timer () =
  let rt =
    World.run (fun () ->
        let timer = Time.every (3.0 *. Time.second) in
        let index = Signal.count (Time.signal timer) in
        let rt = Runtime.start (Signal.lift display index) in
        Time.drive timer rt ~until:7.0;
        rt)
  in
  Alcotest.(check (list string)) "advances every 3s" [ "car.jpg"; "book.jpg" ]
    (values rt)

let test_slideshow_keys () =
  let rt =
    World.run (fun () ->
        let index = Signal.count Keyboard.last_pressed in
        let rt = Runtime.start (Signal.lift display index) in
        Keyboard.tap rt 65;
        rt)
  in
  Alcotest.(check (list string)) "advances on key" [ "car.jpg" ] (values rt)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "std"
    [
      ( "mouse",
        [
          tc "tracker (Example 2)" `Quick test_mouse_tracker;
          tc "x/y" `Quick test_mouse_x_y;
          tc "clicks count" `Quick test_mouse_clicks_count;
        ] );
      ( "keyboard",
        [
          tc "arrows" `Quick test_keyboard_arrows;
          tc "release" `Quick test_keyboard_release;
          tc "shift" `Quick test_keyboard_shift;
          tc "last pressed count" `Quick test_keyboard_last_pressed;
          tc "state isolated per run" `Quick test_keyboard_state_isolated_between_runs;
        ] );
      ( "window/touch",
        [
          tc "resize" `Quick test_window_resize;
          tc "touch gesture" `Quick test_touch_gesture;
          tc "taps" `Quick test_touch_taps;
        ] );
      ( "time",
        [
          tc "every" `Quick test_time_every;
          tc "every values" `Quick test_time_every_values_are_times;
          tc "fps deltas" `Quick test_time_fps_deltas;
          tc "world script" `Quick test_world_script;
          tc "world every" `Quick test_world_every;
        ] );
      ( "widgets",
        [
          tc "Input.text pair" `Quick test_input_text_pair_of_signals;
          tc "placeholder" `Quick test_input_text_placeholder;
          tc "button" `Quick test_button_presses;
          tc "checkbox/slider" `Quick test_checkbox_and_slider;
        ] );
      ( "http",
        [
          tc "syncGet" `Quick test_http_sync_get;
          tc "default waiting" `Quick test_http_default_is_waiting;
          tc "failure" `Quick test_http_failure;
          tc "flickr returns JSON" `Quick test_http_flickr;
          tc "url extraction robust" `Quick test_http_first_photo_url_robust;
          tc "response_to_string" `Quick test_http_response_to_string;
          tc "default-valued event served" `Quick
            test_http_event_equal_to_default_is_served;
          tc "timeout" `Quick test_http_timeout;
          tc "retry with backoff" `Quick test_http_retry_backoff;
          tc "retries exhausted" `Quick test_http_retries_exhausted;
          tc "timer horizon" `Quick test_time_until_zero;
          tc "script in the past" `Quick test_world_at_in_past;
        ] );
      ( "slideshow (Fig. 14)",
        [
          tc "clicks" `Quick test_slideshow_clicks;
          tc "timer" `Quick test_slideshow_timer;
          tc "keys" `Quick test_slideshow_keys;
        ] );
    ]
