(* Semantics tests for the signal engine: the Fig. 10/11 translation,
   Change/NoChange propagation, foldp, async, execution modes. *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module Event = Elm_core.Event
module Stats = Elm_core.Stats
module Reach = Elm_core.Reach

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))
let check_float = Alcotest.(check (float 1e-9))

(* Run [body] inside a scheduler, let everything settle, return result of
   [read] applied after quiescence. Shared with the other suites; honours
   FELM_SCHED_SEED for schedule replay. *)
let with_world body = Gen_graph.with_world body
let values = Gen_graph.values

(* ------------------------------------------------------------------ *)
(* Basic propagation *)

let test_default_value () =
  let got =
    with_world (fun () ->
        let m = Signal.input 0 in
        let rt = Runtime.start (Signal.lift (fun x -> x * 2) m) in
        rt)
  in
  check_int "default induced through lift" 0 (Runtime.current got);
  check_ints "no changes yet" [] (values got)

let test_lift_applies_per_event () =
  let rt =
    with_world (fun () ->
        let m = Signal.input 1 in
        let s = Signal.lift (fun x -> x + 10) m in
        let rt = Runtime.start s in
        Runtime.inject rt m 5;
        Runtime.inject rt m 7;
        rt)
  in
  check_ints "each event transformed" [ 15; 17 ] (values rt);
  check_int "current" 17 (Runtime.current rt)

let test_lift2_combines () =
  let rt =
    with_world (fun () ->
        let a = Signal.input 10 in
        let b = Signal.input 2 in
        let s = Signal.lift2 (fun x y -> x / y) a b in
        let rt = Runtime.start s in
        Runtime.inject rt a 100;
        Runtime.inject rt b 4;
        rt)
  in
  (* Relative-position example of Fig. 7: recomputed on either input. *)
  check_ints "recomputed per event" [ 50; 25 ] (values rt)

let test_one_message_per_event () =
  let rt =
    with_world (fun () ->
        let a = Signal.input 0 in
        let b = Signal.input 0 in
        let s = Signal.lift2 ( + ) a b in
        let rt = Runtime.start s in
        Runtime.inject rt a 1;
        Runtime.inject rt b 2;
        Runtime.inject rt a 3;
        rt)
  in
  (* Every dispatched event yields exactly one message at the display. *)
  check_int "three events, three sink messages" 3
    (List.length (Runtime.message_log rt));
  check_int "three events dispatched" 3 (Runtime.stats rt).Stats.events

let test_unrelated_input_no_change () =
  let rt =
    with_world (fun () ->
        let a = Signal.input 0 in
        let b = Signal.input 0 in
        let doubled = Signal.lift (fun x -> x * 2) a in
        (* b is in the graph but doubled only depends on a. *)
        let s = Signal.lift2 (fun x _ -> x) doubled b in
        let rt = Runtime.start s in
        Runtime.inject rt b 1;
        Runtime.inject rt b 2;
        rt)
  in
  let stats = Runtime.stats rt in
  (* The [doubled] node must not recompute for b's events. *)
  check_int "lift2 recomputes twice, doubled never" 2 stats.Stats.applications

let test_lift3_lift4 () =
  let rt =
    with_world (fun () ->
        let a = Signal.input 1 in
        let b = Signal.input 2 in
        let c = Signal.input 3 in
        let d = Signal.input 4 in
        let s = Signal.lift4 (fun w x y z -> (w * 1000) + (x * 100) + (y * 10) + z) a b c d in
        let rt = Runtime.start s in
        Runtime.inject rt c 9;
        rt)
  in
  check_ints "lift4 result" [ 1294 ] (values rt);
  let rt3 =
    with_world (fun () ->
        let a = Signal.input 1 in
        let b = Signal.input 2 in
        let c = Signal.input 3 in
        let s = Signal.lift3 (fun x y z -> (x * 100) + (y * 10) + z) a b c in
        let rt = Runtime.start s in
        Runtime.inject rt a 7;
        rt)
  in
  check_ints "lift3 result" [ 723 ] (values rt3)

let test_lift5_to_lift8 () =
  let default = ref 0 in
  let rt =
    with_world (fun () ->
        let mk v = Signal.input v in
        let i1, i2, i3, i4, i5 = (mk 1, mk 1, mk 1, mk 1, mk 1) in
        let i6, i7, i8 = (mk 1, mk 1, mk 1) in
        let sum8 a b c d e f g h = a + b + c + d + e + f + g + h in
        let s = Signal.lift8 sum8 i1 i2 i3 i4 i5 i6 i7 i8 in
        default := Signal.default s;
        let rt = Runtime.start s in
        Runtime.inject rt i5 10;
        rt)
  in
  check_int "default is sum of defaults" 8 !default;
  check_ints "change propagates through derived arity" [ 17 ] (values rt)

let test_lift_list () =
  let rt =
    with_world (fun () ->
        let ins = List.init 5 (fun i -> Signal.input i) in
        let s = Signal.lift_list (List.fold_left ( + ) 0) ins in
        let rt = Runtime.start s in
        Runtime.inject rt (List.nth ins 2) 100;
        rt)
  in
  check_ints "lift_list sums" [ 108 ] (values rt)

let test_sharing_one_node () =
  (* Using the same signal twice shares one node (let/multicast semantics):
     the shared node computes once per event, not twice. *)
  let rt =
    with_world (fun () ->
        let a = Signal.input 1 in
        let shared = Signal.lift ~name:"shared" (fun x -> x * 2) a in
        let s = Signal.lift2 ( + ) shared shared in
        let rt = Runtime.start s in
        Runtime.inject rt a 5;
        rt)
  in
  check_ints "diamond result" [ 20 ] (values rt);
  (* one application in `shared`, one in the lift2 *)
  check_int "shared node computed once" 2 (Runtime.stats rt).Stats.applications

(* ------------------------------------------------------------------ *)
(* foldp *)

let test_foldp_counts_only_its_events () =
  (* Section 3.3.2: "a foldp term that counts the number of key presses
     should increment the counter only when a key is actually pressed, not
     every time any event occurs." *)
  let rt =
    with_world (fun () ->
        let keys = Signal.input 0 in
        let mouse = Signal.input (0, 0) in
        let presses = Signal.count keys in
        let s = Signal.lift2 (fun c _ -> c) presses mouse in
        let rt = Runtime.start s in
        Runtime.inject rt keys 65;
        Runtime.inject rt mouse (1, 1);
        Runtime.inject rt mouse (2, 2);
        Runtime.inject rt keys 66;
        rt)
  in
  check_int "two key presses counted" 2 (Runtime.current rt);
  check_int "fold stepped exactly twice" 2 (Runtime.stats rt).Stats.fold_steps

let test_foldp_accumulates () =
  let rt =
    with_world (fun () ->
        let src = Signal.input 0 in
        let s = Signal.foldp ( + ) 0 src in
        let rt = Runtime.start s in
        List.iter (fun v -> Runtime.inject rt src v) [ 1; 2; 3; 4 ];
        rt)
  in
  check_ints "running sums" [ 1; 3; 6; 10 ] (values rt)

let prop_foldp_is_list_fold =
  QCheck.Test.make ~name:"foldp over a burst equals List.fold_left" ~count:100
    QCheck.(list small_signed_int)
    (fun xs ->
      let rt =
        with_world (fun () ->
            let src = Signal.input 0 in
            let s = Signal.foldp ( + ) 0 src in
            let rt = Runtime.start s in
            List.iter (fun v -> Runtime.inject rt src v) xs;
            rt)
      in
      Runtime.current rt = List.fold_left ( + ) 0 xs)

(* ------------------------------------------------------------------ *)
(* Extended combinators *)

let test_merge_left_bias () =
  let rt =
    with_world (fun () ->
        let a = Signal.input 0 in
        let b = Signal.input 100 in
        let s = Signal.merge a b in
        let rt = Runtime.start s in
        Runtime.inject rt a 1;
        Runtime.inject rt b 2;
        Runtime.inject rt a 3;
        rt)
  in
  check_ints "merge interleaves" [ 1; 2; 3 ] (values rt);
  check_int "default is left default" 0
    (match Runtime.message_log rt with _ -> 0)

let test_drop_repeats () =
  let rt =
    with_world (fun () ->
        let a = Signal.input 0 in
        let s = Signal.drop_repeats a in
        let rt = Runtime.start s in
        List.iter (fun v -> Runtime.inject rt a v) [ 1; 1; 2; 2; 2; 3; 1 ];
        rt)
  in
  check_ints "repeats dropped" [ 1; 2; 3; 1 ] (values rt)

let test_sample_on () =
  let rt =
    with_world (fun () ->
        let ticks = Signal.input () in
        let data = Signal.input 0 in
        let s = Signal.sample_on ticks data in
        let rt = Runtime.start s in
        Runtime.inject rt data 5;
        Runtime.inject rt ticks ();
        Runtime.inject rt data 9;
        Runtime.inject rt data 12;
        Runtime.inject rt ticks ();
        rt)
  in
  check_ints "sampled at ticks" [ 5; 12 ] (values rt)

let test_keep_when () =
  let rt =
    with_world (fun () ->
        let gate = Signal.input false in
        let data = Signal.input 0 in
        let s = Signal.keep_when gate (-1) data in
        let rt = Runtime.start s in
        Runtime.inject rt data 1;
        (* gate closed: dropped *)
        Runtime.inject rt gate true;
        (* rising edge: resync to current value *)
        Runtime.inject rt data 2;
        Runtime.inject rt gate false;
        Runtime.inject rt data 3;
        (* closed again: dropped *)
        rt)
  in
  check_ints "gated" [ 1; 2 ] (values rt);
  check_int "default from base when closed" (-1)
    (match Runtime.changes rt with [] -> -1 | _ -> -1)

let test_keep_when_default () =
  with_world (fun () ->
      let gate = Signal.input false in
      let data = Signal.input 42 in
      let s = Signal.keep_when gate (-1) data in
      check_int "closed gate: base default" (-1) (Signal.default s);
      let gate2 = Signal.input true in
      let s2 = Signal.keep_when gate2 (-1) data in
      check_int "open gate: signal default" 42 (Signal.default s2))

let test_count_if () =
  let rt =
    with_world (fun () ->
        let src = Signal.input 0 in
        let s = Signal.count_if (fun v -> v mod 2 = 0) src in
        let rt = Runtime.start s in
        List.iter (fun v -> Runtime.inject rt src v) [ 1; 2; 3; 4; 5; 6 ];
        rt)
  in
  check_int "three evens" 3 (Runtime.current rt)

let test_delay1 () =
  let rt =
    with_world (fun () ->
        let src = Signal.input 0 in
        let s = Signal.delay1 (-1) src in
        let rt = Runtime.start s in
        List.iter (fun v -> Runtime.inject rt src v) [ 1; 2; 3 ];
        rt)
  in
  check_ints "shifted by one" [ -1; 1; 2 ] (values rt)

let test_combine () =
  let rt =
    with_world (fun () ->
        let ins = List.init 3 (fun i -> Signal.input (i * 10)) in
        let rt = Runtime.start (Signal.combine ins) in
        Runtime.inject rt (List.nth ins 1) 99;
        rt)
  in
  check_bool "default is the defaults" true
    (match Runtime.message_log rt with
    | (_, first) :: _ -> Event.body first = [ 0; 99; 20 ]
    | [] -> false);
  check_bool "combined change" true (Runtime.current rt = [ 0; 99; 20 ])

let test_constant_never_changes () =
  let rt =
    with_world (fun () ->
        let a = Signal.input 0 in
        let k = Signal.constant 7 in
        let s = Signal.lift2 ( + ) a k in
        let rt = Runtime.start s in
        Runtime.inject rt a 1;
        Runtime.inject rt a 2;
        rt)
  in
  check_ints "constant participates" [ 8; 9 ] (values rt)

let test_timestamp () =
  let rt =
    with_world (fun () ->
        let a = Signal.input 0 in
        let s = Signal.timestamp a in
        let rt = Runtime.start s in
        Cml.sleep 3.5;
        Runtime.inject rt a 1;
        rt)
  in
  match values rt with
  | [ (t, 1) ] -> check_float "stamped at injection time" 3.5 t
  | _ -> Alcotest.fail "expected one timestamped change"

(* ------------------------------------------------------------------ *)
(* async (Section 3.3.2) *)

(* Defaults are computed eagerly at construction (Section 3.1: input
   defaults "induce" defaults for other signals), so cost functions in tests
   are armed only once the graph is built. *)
let costly armed cost f x =
  if !armed then Cml.sleep cost;
  f x

let test_async_preserves_values () =
  let armed = ref false in
  let rt =
    with_world (fun () ->
        let a = Signal.input 0 in
        let s = Signal.async (Signal.lift (costly armed 10.0 (fun x -> x * 2)) a) in
        armed := true;
        let rt = Runtime.start s in
        Runtime.inject rt a 1;
        Runtime.inject rt a 2;
        rt)
  in
  check_ints "async delivers all changes" [ 2; 4 ] (values rt)

let test_async_events_counted () =
  let rt =
    with_world (fun () ->
        let a = Signal.input 0 in
        let s = Signal.async (Signal.lift (fun x -> x + 1) a) in
        let rt = Runtime.start s in
        Runtime.inject rt a 1;
        rt)
  in
  let stats = Runtime.stats rt in
  check_int "one async-origin event" 1 stats.Stats.async_events;
  (* the external event + the async re-dispatch *)
  check_int "two dispatched events" 2 stats.Stats.events

let test_async_is_source () =
  let a = Signal.input 0 in
  let inner = Signal.lift (fun x -> x) a in
  let s = Signal.async inner in
  check_bool "async is a source" true (Signal.is_source s);
  check_bool "lift is not" false (Signal.is_source inner)

(* The Section 5 responsiveness example: syncEg blocks mouse updates behind
   the slow f, asyncEg does not. *)
let responsiveness ~use_async =
  with_world (fun () ->
      let armed = ref false in
      let mouse_x = Signal.input 0 in
      let mouse_y = Signal.input 0 in
      let slow_branch = Signal.lift (costly armed 100.0 Fun.id) mouse_y in
      let branch = if use_async then Signal.async slow_branch else slow_branch in
      let s = Signal.pair mouse_x branch in
      let rt = Runtime.start s in
      armed := true;
      Runtime.inject rt mouse_y 1;
      (* a y event triggering slow computation *)
      Cml.sleep 1.0;
      Runtime.inject rt mouse_x 42;
      (* then a quick x event *)
      rt)

let test_sync_blocks () =
  let rt = responsiveness ~use_async:false in
  (* The x update cannot be displayed until the slow y computation ends. *)
  match Runtime.changes rt with
  | [ (t1, (0, 1)); (t2, (42, 1)) ] ->
    check_bool "slow change first, at t>=100" true (t1 >= 100.0);
    check_bool "x blocked behind it" true (t2 >= t1)
  | _ -> Alcotest.fail "expected two changes"

let test_async_does_not_block () =
  let rt = responsiveness ~use_async:true in
  match Runtime.changes rt with
  | [ (t1, (42, 0)); (t2, (42, 1)) ] ->
    check_bool "x displayed promptly" true (t1 < 10.0);
    check_bool "slow result arrives later" true (t2 >= 100.0)
  | _ ->
    Alcotest.failf "unexpected changes: %s"
      (String.concat ";"
         (List.map
            (fun (t, (x, y)) -> Printf.sprintf "(%.1f,(%d,%d))" t x y)
            (Runtime.changes rt)))

let test_async_order_within_subgraph () =
  (* Event order is maintained within the async subgraph. *)
  let rt =
    with_world (fun () ->
        let a = Signal.input 0 in
        let inner = Signal.lift (fun x -> x) a in
        let s = Signal.async inner in
        let rt = Runtime.start s in
        List.iter (fun v -> Runtime.inject rt a v) [ 1; 2; 3; 4; 5 ];
        rt)
  in
  check_ints "subgraph order preserved" [ 1; 2; 3; 4; 5 ] (values rt)

let test_delay_shifts_time () =
  let rt =
    with_world (fun () ->
        let src = Signal.input 0 in
        let s = Signal.delay 5.0 src in
        let rt = Runtime.start s in
        Cml.spawn (fun () ->
            Cml.sleep 1.0;
            Runtime.inject rt src 10;
            Cml.sleep 1.0;
            Runtime.inject rt src 20);
        rt)
  in
  match Runtime.changes rt with
  | [ (t1, 10); (t2, 20) ] ->
    check_float "first shifted by 5" 6.0 t1;
    check_float "second shifted by 5" 7.0 t2
  | _ -> Alcotest.fail "expected two delayed changes"

let test_delay_preserves_order () =
  let rt =
    with_world (fun () ->
        let src = Signal.input 0 in
        let rt = Runtime.start (Signal.delay 3.0 src) in
        List.iter (fun v -> Runtime.inject rt src v) [ 1; 2; 3; 4 ];
        rt)
  in
  check_ints "order kept" [ 1; 2; 3; 4 ] (values rt)

let test_delay_does_not_block_siblings () =
  (* delay is a source: the undelayed branch keeps its timing *)
  let rt =
    with_world (fun () ->
        let src = Signal.input 0 in
        let s = Signal.pair src (Signal.delay 100.0 src) in
        let rt = Runtime.start s in
        Cml.spawn (fun () ->
            Cml.sleep 1.0;
            Runtime.inject rt src 7);
        rt)
  in
  match Runtime.changes rt with
  | [ (t1, (7, 0)); (t2, (7, 7)) ] ->
    check_bool "undelayed branch prompt" true (t1 < 2.0);
    check_float "delayed branch at +100" 101.0 t2
  | _ -> Alcotest.fail "expected two changes"

(* ------------------------------------------------------------------ *)
(* Execution modes *)

let chain_makespan ~mode ~depth ~events ~cost =
  with_world (fun () ->
      let armed = ref false in
      let src = Signal.input 0 in
      let rec build s n =
        if n = 0 then s
        else build (Signal.lift (costly armed cost (fun x -> x + 1)) s) (n - 1)
      in
      (* ~fuse:false — this test measures pipelined overlap *within* the
         chain, which fusion deliberately trades away by collapsing the
         chain into one node. *)
      let rt = Runtime.start ~mode ~fuse:false (build src depth) in
      armed := true;
      for i = 1 to events do
        Runtime.inject rt src i
      done;
      rt)

let test_pipelining_overlaps () =
  let depth = 5 in
  let events = 4 in
  let cost = 1.0 in
  let seq = chain_makespan ~mode:Runtime.Sequential ~depth ~events ~cost in
  let pipe = chain_makespan ~mode:Runtime.Pipelined ~depth ~events ~cost in
  let finish rt =
    match List.rev (Runtime.changes rt) with
    | (t, _) :: _ -> t
    | [] -> 0.0
  in
  check_float "sequential makespan = events * depth * cost"
    (float_of_int (depth * events) *. cost)
    (finish seq);
  check_float "pipelined makespan = (depth + events - 1) * cost"
    (float_of_int (depth + events - 1) *. cost)
    (finish pipe);
  check_bool "same outputs" true (values seq = values pipe)

let test_memoize_off_counts_recomputations () =
  let run ~memoize =
    with_world (fun () ->
        let a = Signal.input 0 in
        let b = Signal.input 0 in
        let expensive = Signal.lift (fun x -> x * x) a in
        let s = Signal.lift2 (fun x y -> x + y) expensive b in
        let rt = Runtime.start ~memoize s in
        for i = 1 to 10 do
          Runtime.inject rt b i
        done;
        rt)
  in
  let memo = run ~memoize:true in
  let pull = run ~memoize:false in
  check_bool "same behaviour" true (values memo = values pull);
  check_int "memoized: expensive node idle" 10
    (Runtime.stats memo).Stats.applications;
  check_int "no memoization: everything recomputes" 10
    (Runtime.stats pull).Stats.recomputations

let test_inject_non_input_rejected () =
  with_world (fun () ->
      let a = Signal.input 0 in
      let s = Signal.lift (fun x -> x) a in
      let rt = Runtime.start s in
      match Runtime.inject rt s 3 with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_start_outside_run_rejected () =
  let a = Signal.input 0 in
  match Runtime.start a with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_two_runtimes_sequentially () =
  (* The same graph can be re-instantiated by a later runtime. *)
  let run () =
    with_world (fun () ->
        let a = Signal.input 0 in
        let s = Signal.lift (fun x -> x + 1) a in
        let rt = Runtime.start s in
        Runtime.inject rt a 41;
        rt)
  in
  check_ints "first run" [ 42 ] (values (run ()));
  check_ints "second run" [ 42 ] (values (run ()))

let test_source_ids_registered () =
  let rt =
    with_world (fun () ->
        let a = Signal.input ~name:"Mouse.x" 0 in
        let k = Signal.constant 1 in
        let s = Signal.async (Signal.lift2 ( + ) a k) in
        Runtime.start s)
  in
  let names = List.map snd (Runtime.source_ids rt) in
  check_bool "input registered" true (List.mem "Mouse.x" names);
  check_bool "constant registered" true (List.mem "constant" names);
  check_bool "async registered" true (List.mem "async" names);
  check_int "three sources" 3 (List.length names)

(* ------------------------------------------------------------------ *)
(* Graph introspection / DOT *)

let fig7_graph () =
  let mouse_x = Signal.input ~name:"Mouse.x" 0 in
  let window_w = Signal.input ~name:"Window.width" 1920 in
  (mouse_x, window_w, Signal.lift2 ~name:"div" ( / ) mouse_x window_w)

let test_reachable_topological () =
  let _, _, g = fig7_graph () in
  let order = Signal.reachable g in
  check_int "three nodes" 3 (List.length order);
  (* dependencies come before dependents *)
  match List.rev order with
  | Signal.Pack last :: _ -> check_int "root last" (Signal.id g) (Signal.id last)
  | [] -> Alcotest.fail "empty order"

let contains_substring haystack needle =
  let n = String.length needle in
  let m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_to_dot_fig7 () =
  let _, _, g = fig7_graph () in
  let dot = Signal.to_dot ~label:"Figure 7" g in
  let contains needle = contains_substring dot needle in
  check_bool "has dispatcher" true (contains "Global Event");
  check_bool "mouse source dashed" true (contains "Mouse.x");
  check_bool "has div node" true (contains "div")

let prop_async_preserves_subgraph_order =
  QCheck.Test.make ~name:"async delivers subgraph changes in order" ~count:100
    QCheck.(list small_signed_int)
    (fun xs ->
      let rt =
        with_world (fun () ->
            let src = Signal.input 0 in
            let s = Signal.async (Signal.lift (fun x -> x) src) in
            let rt = Runtime.start s in
            List.iter (fun v -> Runtime.inject rt src v) xs;
            rt)
      in
      values rt = xs)

let prop_drop_repeats_idempotent =
  QCheck.Test.make ~name:"drop_repeats is idempotent" ~count:100
    QCheck.(list (int_bound 3))
    (fun xs ->
      let run mk =
        let rt =
          with_world (fun () ->
              let src = Signal.input 0 in
              let rt = Runtime.start (mk src) in
              List.iter (fun v -> Runtime.inject rt src v) xs;
              rt)
        in
        values rt
      in
      run (fun s -> Signal.drop_repeats s)
      = run (fun s -> Signal.drop_repeats (Signal.drop_repeats s)))

let prop_merge_sees_every_event =
  QCheck.Test.make ~name:"merge of two inputs shows every injection in order"
    ~count:100
    QCheck.(list (pair bool small_signed_int))
    (fun events ->
      let rt =
        with_world (fun () ->
            let a = Signal.input 0 in
            let b = Signal.input 0 in
            let rt = Runtime.start (Signal.merge a b) in
            List.iter
              (fun (left, v) -> Runtime.inject rt (if left then a else b) v)
              events;
            rt)
      in
      values rt = List.map snd events)

let prop_delay_exact_shift =
  QCheck.Test.make ~name:"delay shifts every change by exactly d" ~count:50
    QCheck.(pair (float_range 0.5 20.0) (list_of_size Gen.(1 -- 6) small_signed_int))
    (fun (d, xs) ->
      let rt =
        with_world (fun () ->
            let src = Signal.input 0 in
            let rt = Runtime.start (Signal.delay d src) in
            Cml.spawn (fun () ->
                List.iter
                  (fun v ->
                    Cml.sleep 1.0;
                    Runtime.inject rt src v)
                  xs);
            rt)
      in
      let changes = Runtime.changes rt in
      List.length changes = List.length xs
      && List.for_all2
           (fun (t, v) (i, x) ->
             v = x && Float.abs (t -. (float_of_int i +. d)) < 1e-6)
           changes
           (List.mapi (fun i x -> (i + 1, x)) xs))

let prop_random_graph_runs =
  (* Random DAGs of lifts/folds over two inputs always settle, produce one
     sink message per event, and are deterministic. *)
  let gen = QCheck.(pair (list_of_size Gen.(0 -- 20) small_int) (int_bound 4)) in
  QCheck.Test.make ~name:"random graphs settle deterministically" ~count:50 gen
    (fun (events, shape) ->
      let build () =
        with_world (fun () ->
            let a = Signal.input 0 in
            let b = Signal.input 0 in
            let base = Signal.lift2 ( + ) a b in
            let s =
              match shape with
              | 0 -> base
              | 1 -> Signal.lift (fun x -> x - 1) base
              | 2 -> Signal.foldp ( + ) 0 base
              | 3 -> Signal.lift2 ( * ) base (Signal.count a)
              | _ -> Signal.merge base (Signal.lift (fun x -> x * 2) base)
            in
            let rt = Runtime.start s in
            List.iteri
              (fun i v ->
                Runtime.inject rt (if i mod 2 = 0 then a else b) v)
              events;
            rt)
      in
      let r1 = build () in
      let r2 = build () in
      List.length (Runtime.message_log r1) = List.length events
      && values r1 = values r2)

(* ------------------------------------------------------------------ *)
(* Affected-cone dispatch vs the Fig. 11 flooding baseline.

   The cone dispatcher must be observationally identical to flooding: same
   [changes] (values and virtual times), a display message log that is the
   flood log minus elided [No_change] rows, and an exact message account:
   cone messages + elided messages = flood messages = nodes * events. *)

(* Randomized graph shapes over two inputs, drawn from the shared
   Gen_graph catalogue: lifts, foldp, merge, async, delay, sample_on,
   drop_repeats, shared subgraphs, plus sparse chain layouts where most of
   the graph is unreachable from one input. *)

let run_shape ~dispatch shape events =
  Gen_graph.run_shape ~fuse:true ~dispatch shape events

let is_subseq = Gen_graph.is_subseq
let entry_equal = Gen_graph.entry_equal

let prop_cone_trace_equals_flood =
  QCheck.Test.make
    ~name:"cone dispatch: identical changes, flood log minus elided NoChange"
    ~count:100 Gen_graph.arb_shape_events
    (fun (shape, events) ->
      let flood = run_shape ~dispatch:Runtime.Flood shape events in
      let cone = run_shape ~dispatch:Runtime.Cone shape events in
      Runtime.changes flood = Runtime.changes cone
      && is_subseq entry_equal (Runtime.message_log cone)
           (Runtime.message_log flood))

let prop_cone_message_accounting =
  QCheck.Test.make
    ~name:"cone messages + elided = flood messages = nodes * events" ~count:100
    Gen_graph.arb_shape_events
    (fun (shape, events) ->
      let flood = run_shape ~dispatch:Runtime.Flood shape events in
      let cone = run_shape ~dispatch:Runtime.Cone shape events in
      let sf = Runtime.stats flood in
      let sc = Runtime.stats cone in
      sf.Stats.events = sc.Stats.events
      && sf.Stats.elided_messages = 0
      && sf.Stats.messages = Runtime.node_count flood * sf.Stats.events
      && Stats.total_flood_messages sc = sf.Stats.messages)

let sparse_chains ~dispatch ~chains ~depth ~events =
  with_world (fun () ->
      let inputs = List.init chains (fun i -> Signal.input ~name:(Printf.sprintf "in%d" i) 0) in
      let rec chain n s =
        if n = 0 then s else chain (n - 1) (Signal.lift (fun x -> x + 1) s)
      in
      let tops = List.map (chain depth) inputs in
      let rt = Runtime.start ~dispatch (Signal.combine tops) in
      let first = List.hd inputs in
      for i = 1 to events do
        Runtime.inject rt first i
      done;
      rt)

let test_cone_elides_quiescent_chains () =
  (* Events into one of eight depth-32 chains: flooding pays every node,
     cone pays one chain plus the combining root. *)
  let chains = 8 and depth = 32 and events = 50 in
  let flood = sparse_chains ~dispatch:Runtime.Flood ~chains ~depth ~events in
  let cone = sparse_chains ~dispatch:Runtime.Cone ~chains ~depth ~events in
  check_bool "same displayed changes" true
    (Runtime.changes flood = Runtime.changes cone);
  let sf = Runtime.stats flood and sc = Runtime.stats cone in
  check_int "flood pays nodes*events"
    (Runtime.node_count flood * events)
    sf.Stats.messages;
  check_int "account balances: cone + elided = flood" sf.Stats.messages
    (Stats.total_flood_messages sc);
  check_bool "cone sends >= 4x fewer messages" true
    (sf.Stats.messages >= 4 * sc.Stats.messages);
  check_bool "cone wakes >= 4x fewer nodes" true
    (sf.Stats.notified_nodes >= 4 * sc.Stats.notified_nodes)

let test_cone_foldp_alignment () =
  (* The Section 3.3.2 correctness property survives elision: a key counter
     in a graph with an unrelated chatty input steps only on key events,
     and the chatty events never even wake it. *)
  let rt =
    with_world (fun () ->
        let keys = Signal.input 0 in
        let mouse = Signal.input (0, 0) in
        let presses = Signal.count keys in
        let s = Signal.lift2 (fun c _ -> c) presses mouse in
        let rt = Runtime.start ~dispatch:Runtime.Cone s in
        Runtime.inject rt keys 65;
        for i = 1 to 100 do
          Runtime.inject rt mouse (i, i)
        done;
        Runtime.inject rt keys 66;
        rt)
  in
  check_int "two key presses counted" 2 (Runtime.current rt);
  check_int "fold stepped exactly twice" 2 (Runtime.stats rt).Stats.fold_steps;
  check_bool "mouse events elided messages" true
    ((Runtime.stats rt).Stats.elided_messages > 0)

let test_sequential_cone_no_deadlock () =
  (* In Sequential mode the dispatcher waits for a display ack — but an
     event whose source cannot reach the root produces no display message,
     so the dispatcher must not wait for one. *)
  let rt =
    with_world (fun () ->
        let a = Signal.input 0 in
        let b = Signal.input 0 in
        let s = Signal.pair (Signal.lift (fun x -> x + 1) a) (Signal.async b) in
        let rt =
          Runtime.start ~mode:Runtime.Sequential ~dispatch:Runtime.Cone s
        in
        Runtime.inject rt b 7;
        (* b's event reaches only the async inner subgraph *)
        Runtime.inject rt a 1;
        rt)
  in
  check_bool "run settles with both values" true (Runtime.current rt = (2, 7));
  check_bool "a's event displayed before the async catch-up" true
    (List.map snd (Runtime.changes rt) = [ (2, 0); (2, 7) ])

let test_dispatch_default_and_memoize_interaction () =
  let got =
    with_world (fun () ->
        let a = Signal.input 0 in
        let s = Signal.lift (fun x -> x) a in
        let rt_memo = Runtime.start s in
        let rt_pull = Runtime.start ~memoize:false s in
        let rt_forced = Runtime.start ~memoize:false ~dispatch:Runtime.Cone s in
        ( Runtime.dispatch_of rt_memo,
          Runtime.dispatch_of rt_pull,
          Runtime.dispatch_of rt_forced ))
  in
  check_bool "memoized default is Cone" true
    (match got with Runtime.Cone, _, _ -> true | _ -> false);
  check_bool "pull baseline defaults to Flood" true
    (match got with _, Runtime.Flood, _ -> true | _ -> false);
  check_bool "explicit dispatch wins" true
    (match got with _, _, Runtime.Cone -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Reach analysis *)

let test_reach_basic () =
  let a = Signal.input 0 in
  let b = Signal.input 0 in
  let la = Signal.lift (fun x -> x + 1) a in
  let s = Signal.lift2 ( + ) la b in
  let r = Reach.analyze s in
  check_int "four nodes" 4 (Reach.node_count r);
  check_bool "a reaches la" true
    (Reach.affects r ~source:(Signal.id a) ~node:(Signal.id la));
  check_bool "b does not reach la" false
    (Reach.affects r ~source:(Signal.id b) ~node:(Signal.id la));
  check_bool "both reach root" true
    (Reach.affects r ~source:(Signal.id a) ~node:(Signal.id s)
    && Reach.affects r ~source:(Signal.id b) ~node:(Signal.id s));
  check_int "a's cone: a, la, root" 3 (Reach.cone_size r (Signal.id a));
  check_int "b's cone: b, root" 2 (Reach.cone_size r (Signal.id b))

let test_reach_async_cuts () =
  (* An async node is a source: its inner subgraph reaches the rest of the
     program only through the dispatcher, so the input's cone stops at the
     inner subgraph and the async node's own id drives the downstream. *)
  let a = Signal.input 0 in
  let inner = Signal.lift (fun x -> x) a in
  let asy = Signal.async inner in
  let root = Signal.lift (fun x -> x) asy in
  let r = Reach.analyze root in
  check_bool "a reaches inner" true
    (Reach.affects r ~source:(Signal.id a) ~node:(Signal.id inner));
  check_bool "a does not reach past async" false
    (Reach.affects r ~source:(Signal.id a) ~node:(Signal.id root));
  check_bool "async id reaches root" true
    (Reach.affects r ~source:(Signal.id asy) ~node:(Signal.id root));
  check_bool "async registered as source" true
    (List.mem (Signal.id asy) (Reach.sources r))

let test_reach_constants_and_empty_lifts () =
  let a = Signal.input 0 in
  let k = Signal.constant 7 in
  let empty = Signal.lift_list (fun _ -> 9) [] in
  let s = Signal.lift3 (fun x y z -> x + y + z) a k empty in
  let r = Reach.analyze s in
  check_bool "constant is its own source" true
    (Reach.affects r ~source:(Signal.id k) ~node:(Signal.id k));
  check_bool "empty lift_list treated as source" true
    (List.mem (Signal.id empty) (Reach.sources r));
  check_int "a's cone excludes constants" 2 (Reach.cone_size r (Signal.id a))

(* ------------------------------------------------------------------ *)
(* Bounded history *)

let bounded_run ?history () =
  with_world (fun () ->
      let a = Signal.input 0 in
      let s = Signal.lift (fun x -> x * 10) a in
      let rt = Runtime.start ?history s in
      for i = 1 to 10 do
        Runtime.inject rt a i
      done;
      rt)

let test_history_unbounded_default () =
  let rt = bounded_run () in
  check_int "all ten changes kept" 10 (List.length (Runtime.changes rt))

let test_history_cap_keeps_most_recent () =
  let rt = bounded_run ~history:3 () in
  check_ints "last three changes" [ 80; 90; 100 ] (values rt);
  check_int "message log equally capped" 3
    (List.length (Runtime.message_log rt));
  check_int "current unaffected" 100 (Runtime.current rt)

let test_history_zero_disables_logging () =
  let rt = bounded_run ~history:0 () in
  check_ints "no changes logged" [] (values rt);
  check_int "no messages logged" 0 (List.length (Runtime.message_log rt));
  check_int "current still tracked" 100 (Runtime.current rt);
  check_int "stats still counted" 10 (Runtime.stats rt).Stats.events

let test_history_negative_rejected () =
  with_world (fun () ->
      let a = Signal.input 0 in
      match Runtime.start ~history:(-1) a with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_listeners_in_registration_order () =
  let order = ref [] in
  let _rt =
    with_world (fun () ->
        let a = Signal.input 0 in
        let rt = Runtime.start a in
        Runtime.on_change rt (fun _ v -> order := (`First, v) :: !order);
        Runtime.on_change rt (fun _ v -> order := (`Second, v) :: !order);
        Runtime.inject rt a 5;
        rt)
  in
  check_bool "both called, registration order" true
    (List.rev !order = [ (`First, 5); (`Second, 5) ])

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "runtime"
    [
      ( "propagation",
        [
          tc "default value" `Quick test_default_value;
          tc "lift per event" `Quick test_lift_applies_per_event;
          tc "lift2 combines" `Quick test_lift2_combines;
          tc "one message per event" `Quick test_one_message_per_event;
          tc "NoChange skips recompute" `Quick test_unrelated_input_no_change;
          tc "lift3/lift4" `Quick test_lift3_lift4;
          tc "lift5..8 derived" `Quick test_lift5_to_lift8;
          tc "lift_list" `Quick test_lift_list;
          tc "sharing" `Quick test_sharing_one_node;
          tc "constants" `Quick test_constant_never_changes;
          tc "combine" `Quick test_combine;
        ] );
      ( "foldp",
        [
          tc "counts only its events" `Quick test_foldp_counts_only_its_events;
          tc "accumulates" `Quick test_foldp_accumulates;
          qt prop_foldp_is_list_fold;
        ] );
      ( "combinators",
        [
          tc "merge" `Quick test_merge_left_bias;
          tc "drop_repeats" `Quick test_drop_repeats;
          tc "sample_on" `Quick test_sample_on;
          tc "keep_when" `Quick test_keep_when;
          tc "keep_when default" `Quick test_keep_when_default;
          tc "count_if" `Quick test_count_if;
          tc "delay1" `Quick test_delay1;
          tc "timestamp" `Quick test_timestamp;
          tc "delay shifts time" `Quick test_delay_shifts_time;
          tc "delay preserves order" `Quick test_delay_preserves_order;
          tc "delay is a source" `Quick test_delay_does_not_block_siblings;
        ] );
      ( "async",
        [
          tc "values preserved" `Quick test_async_preserves_values;
          tc "async events counted" `Quick test_async_events_counted;
          tc "async is source" `Quick test_async_is_source;
          tc "sync blocks (syncEg)" `Quick test_sync_blocks;
          tc "async responsive (asyncEg)" `Quick test_async_does_not_block;
          tc "order within subgraph" `Quick test_async_order_within_subgraph;
        ] );
      ( "modes",
        [
          tc "pipelining overlaps" `Quick test_pipelining_overlaps;
          tc "memoize off counts" `Quick test_memoize_off_counts_recomputations;
          tc "inject non-input" `Quick test_inject_non_input_rejected;
          tc "start outside run" `Quick test_start_outside_run_rejected;
          tc "re-instantiation" `Quick test_two_runtimes_sequentially;
          tc "sources registered" `Quick test_source_ids_registered;
        ] );
      ( "graph",
        [
          tc "topological order" `Quick test_reachable_topological;
          tc "fig7 dot" `Quick test_to_dot_fig7;
          qt prop_random_graph_runs;
          qt prop_async_preserves_subgraph_order;
          qt prop_drop_repeats_idempotent;
          qt prop_merge_sees_every_event;
          qt prop_delay_exact_shift;
        ] );
      ( "cone dispatch",
        [
          tc "elides quiescent chains" `Quick test_cone_elides_quiescent_chains;
          tc "foldp alignment under elision" `Quick test_cone_foldp_alignment;
          tc "sequential cone no deadlock" `Quick
            test_sequential_cone_no_deadlock;
          tc "dispatch defaults" `Quick
            test_dispatch_default_and_memoize_interaction;
          qt prop_cone_trace_equals_flood;
          qt prop_cone_message_accounting;
        ] );
      ( "reach",
        [
          tc "basic cones" `Quick test_reach_basic;
          tc "async cuts reachability" `Quick test_reach_async_cuts;
          tc "constants and empty lifts" `Quick
            test_reach_constants_and_empty_lifts;
        ] );
      ( "history",
        [
          tc "unbounded default" `Quick test_history_unbounded_default;
          tc "cap keeps most recent" `Quick test_history_cap_keeps_most_recent;
          tc "zero disables logging" `Quick test_history_zero_disables_logging;
          tc "negative rejected" `Quick test_history_negative_rejected;
          tc "listeners in order" `Quick test_listeners_in_registration_order;
        ] );
    ]
