(* Tests for the build-time fusion pass (Elm_core.Fuse): the fused runtime
   must be observationally identical to the unfused one across every
   mode x dispatch combination, sharing and stateful barriers must never be
   fused through, and the node accounting (fused_nodes + live = original)
   must balance. Also covers the Signal.to_dot escaping fix and composite
   rendering. *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module Event = Elm_core.Event
module Stats = Elm_core.Stats
module Fuse = Elm_core.Fuse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))
let check_str = Alcotest.(check string)

let with_world body = Gen_graph.with_world body
let values = Gen_graph.values

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Randomized fused-vs-unfused trace equivalence over the shared
   Gen_graph shape catalogue: deep pure chains, drop_repeats inside
   chains, shared subgraphs, constants absorbed into lift2, and every
   fusion barrier (foldp, async, delay, merge, sample_on, fan-out). Chain
   functions are injective and cost no virtual time, so fusion must be
   bit-identical: same change values, same virtual times, same display
   message log. *)

let prop_fused_equals_unfused =
  QCheck.Test.make
    ~name:"fusion: identical changes/current/log across mode x dispatch"
    ~count:60 Gen_graph.arb_shape_events
    (fun (shape, events) ->
      List.for_all
        (fun (mode, dispatch) ->
          let off =
            Gen_graph.run_shape ~fuse:false ~mode ~dispatch shape events
          in
          let on =
            Gen_graph.run_shape ~fuse:true ~mode ~dispatch shape events
          in
          let log_off = Runtime.message_log off in
          let log_on = Runtime.message_log on in
          Runtime.changes off = Runtime.changes on
          && Runtime.current off = Runtime.current on
          && List.length log_off = List.length log_on
          && List.for_all2 Gen_graph.entry_equal log_off log_on)
        Gen_graph.all_combos)

let prop_node_accounting =
  QCheck.Test.make
    ~name:"fusion: fused_nodes + live nodes = original node count" ~count:60
    QCheck.(int_bound (Gen_graph.shape_count - 1))
    (fun shape ->
      let original =
        let _, _, s = Gen_graph.build_shape shape in
        List.length (Signal.reachable s)
      in
      let rt =
        Gen_graph.run_shape ~fuse:true ~mode:Runtime.Pipelined
          ~dispatch:Runtime.Cone shape []
      in
      (Runtime.stats rt).Stats.fused_nodes + Runtime.node_count rt = original)

(* ------------------------------------------------------------------ *)
(* Sharing is a hard barrier *)

let test_sharing_never_fused () =
  (* shared has two subscribers (the d-chain and the root); the chain above
     it fuses, but shared itself must stay a distinct node computed once
     per event — fusing it into both consumers would double the work and
     break the paper's let-sharing semantics. *)
  let rt =
    with_world (fun () ->
        let x = Signal.input ~name:"x" 1 in
        let shared = Signal.lift ~name:"shared" (fun v -> v * v) x in
        let d2 =
          Signal.lift ~name:"d2" (fun v -> v * 3) shared
          |> Signal.lift ~name:"d3" succ
        in
        let root = Signal.lift2 ~name:"root" (fun u v -> (u, v)) shared d2 in
        let rt = Runtime.start root in
        for i = 2 to 11 do
          Runtime.inject rt x i
        done;
        rt)
  in
  let st = Runtime.stats rt in
  (* Original: x, shared, d2, d3, root = 5. The d2 -> d3 chain fuses to one
     composite: live = 4, eliminated = 1. *)
  check_int "one node fused away" 1 st.Stats.fused_nodes;
  check_int "live nodes" 4 (Runtime.node_count rt);
  (* 10 events x 3 computing nodes (shared, composite, root): shared is
     applied once per event, not once per consumer. *)
  check_int "shared computed once per event" 30 st.Stats.applications;
  check_bool "values correct" true
    (Runtime.current rt = (121, (121 * 3) + 1))

let test_fan_out_chains_fuse_per_arm () =
  (* Each arm above the shared node fuses independently. *)
  let original, rt =
    with_world (fun () ->
        let x = Signal.input 1 in
        let shared = Signal.lift (fun v -> v + 10) x in
        let rec chain n s =
          if n = 0 then s else chain (n - 1) (Signal.lift succ s)
        in
        let root = Signal.lift2 ( + ) (chain 4 shared) (chain 3 shared) in
        let original = List.length (Signal.reachable root) in
        let rt = Runtime.start root in
        Runtime.inject rt x 5;
        (original, rt))
  in
  check_int "original: x+shared+4+3+root" 10 original;
  (* fused: x, shared, two composites, root *)
  check_int "live after fusion" 5 (Runtime.node_count rt);
  check_int "eliminated" 5 (Runtime.stats rt).Stats.fused_nodes;
  check_int "value" ((15 + 4) + (15 + 3)) (Runtime.current rt)

(* ------------------------------------------------------------------ *)
(* Unit behaviour of the pass itself *)

let test_length_one_chain_untouched () =
  (* A single lift is not worth a composite: the pass returns the graph
     as-is (physically), so node ids, names and counts are unchanged. *)
  let x = Signal.input ~name:"x" 0 in
  let s = Signal.lift ~name:"only" succ x in
  let fused = Fuse.fuse s in
  check_bool "root returned unchanged" true (fused == s)

let test_composite_name_joins_chain () =
  let x = Signal.input ~name:"x" 0 in
  let s =
    Signal.lift ~name:"h" succ
      (Signal.lift ~name:"g" succ (Signal.lift ~name:"f" succ x))
  in
  let fused = Fuse.fuse s in
  check_str "kind" "composite" (Signal.kind_name fused);
  check_str "input-side-first chain name" "f\u{2218}g\u{2218}h"
    (Signal.name fused);
  check_int "still rooted at the input" 1
    (List.length (Signal.deps fused))

let test_constant_absorbed () =
  let rt =
    with_world (fun () ->
        let x = Signal.input 0 in
        let s =
          Signal.lift (fun v -> v + 1)
            (Signal.lift2 ( + ) (Signal.lift (fun v -> v * 2) x) (Signal.constant 5))
        in
        let rt = Runtime.start s in
        Runtime.inject rt x 1;
        Runtime.inject rt x 10;
        rt)
  in
  (* x, lift, lift2, constant, lift -> x, composite *)
  check_int "three nodes eliminated (incl. the constant)" 3
    (Runtime.stats rt).Stats.fused_nodes;
  check_int "two live nodes" 2 (Runtime.node_count rt);
  check_ints "constant's value closed over correctly" [ 8; 26 ] (values rt)

let test_drop_repeats_fused_behaviour () =
  let run fuse =
    with_world (fun () ->
        let x = Signal.input 0 in
        let s =
          Signal.lift (fun v -> v * 10)
            (Signal.drop_repeats (Signal.lift (fun v -> v / 2) x))
        in
        let rt = Runtime.start ~fuse s in
        List.iter (fun v -> Runtime.inject rt x v) [ 1; 2; 3; 2; 3; 7; 6 ];
        rt)
  in
  let on = run true and off = run false in
  check_ints "fused drop_repeats elides repeats identically"
    (values off) (values on);
  check_int "same display rounds"
    (List.length (Runtime.message_log off))
    (List.length (Runtime.message_log on));
  check_bool "repeats were actually elided" true
    (List.length (values on) < 7)

let test_fused_state_fresh_per_runtime () =
  (* comp_make is a factory: restarting a graph containing a fused
     drop_repeats must start from the default again, not from the previous
     runtime's last value. *)
  let drive () =
    with_world (fun () ->
        let x = Signal.input 0 in
        let s = Signal.lift (fun v -> v + 100) (Signal.drop_repeats (Signal.lift (fun v -> v / 2) x)) in
        let rt = Runtime.start s in
        List.iter (fun v -> Runtime.inject rt x v) [ 0; 1; 2; 2; 5 ];
        rt)
  in
  let first = values (drive ()) in
  let second = values (drive ()) in
  check_ints "second runtime replays identically" first second

(* ------------------------------------------------------------------ *)
(* DOT rendering: composite boxes and name escaping *)

let test_dot_escapes_names () =
  let x = Signal.input ~name:"say \"hi\" <now> {x|y}" 0 in
  let s = Signal.lift ~name:"back\\slash" succ x in
  let dot = Signal.to_dot ~label:"quote \" label" s in
  check_bool "quotes escaped" true (contains dot "say \\\"hi\\\"");
  check_bool "angle brackets escaped" true (contains dot "\\<now\\>");
  check_bool "record specials escaped" true (contains dot "\\{x\\|y\\}");
  check_bool "backslash escaped" true (contains dot "back\\\\slash");
  check_bool "label escaped" true (contains dot "label=\"quote \\\" label\"");
  (* no raw quote may survive inside a label: every '"' is preceded by
     '\\' or is the label delimiter following '=' or preceding ',' / ']' *)
  check_bool "still one statement per node" true (contains dot "shape=ellipse")

let test_dot_composite_single_box () =
  let x = Signal.input ~name:"x" 0 in
  let s =
    Signal.lift ~name:"g" succ (Signal.lift ~name:"f" succ x)
  in
  let dot = Signal.to_dot (Fuse.fuse s) in
  check_bool "composite drawn as one box3d" true (contains dot "box3d");
  check_bool "labelled with the fused chain" true
    (contains dot "f\u{2218}g");
  check_bool "annotated with fused size" true (contains dot "(2 nodes fused)");
  check_bool "interior nodes gone" true
    (not (contains dot "label=\"f\", shape=box"))

(* ------------------------------------------------------------------ *)
(* The felm interpreter path: lift_list chains fuse, outcomes unchanged *)

let test_felm_interp_fuses () =
  let src =
    "input n : signal int = 0\n\
     main = lift (\\x -> x + 1) (lift (\\x -> x * 2) (lift (\\x -> x + 3) n))\n"
  in
  let trace = "0.1 n 5\n0.2 n 7\n" in
  let on = Felm.Interp.run_source src ~trace in
  let off = Felm.Interp.run_source ~fuse:false src ~trace in
  Alcotest.(check (list (pair (float 1e-9) string)))
    "displays identical"
    (List.map (fun (t, v) -> (t, Felm.Value.show v)) off.Felm.Interp.displays)
    (List.map (fun (t, v) -> (t, Felm.Value.show v)) on.Felm.Interp.displays);
  let fused_of o =
    match o.Felm.Interp.stats with
    | Some st -> st.Stats.fused_nodes
    | None -> -1
  in
  check_int "three lifts fused into one composite" 2 (fused_of on);
  check_int "unfused run fused nothing" 0 (fused_of off)

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "fuse"
    [
      ( "equivalence",
        [ qc prop_fused_equals_unfused; qc prop_node_accounting ] );
      ( "barriers",
        [
          tc "sharing never fused through" `Quick test_sharing_never_fused;
          tc "fan-out arms fuse independently" `Quick
            test_fan_out_chains_fuse_per_arm;
        ] );
      ( "pass",
        [
          tc "length-1 chain untouched" `Quick test_length_one_chain_untouched;
          tc "composite name joins the chain" `Quick
            test_composite_name_joins_chain;
          tc "constants absorbed" `Quick test_constant_absorbed;
          tc "drop_repeats fused behaviour" `Quick
            test_drop_repeats_fused_behaviour;
          tc "fused state fresh per runtime" `Quick
            test_fused_state_fresh_per_runtime;
        ] );
      ( "dot",
        [
          tc "names escaped" `Quick test_dot_escapes_names;
          tc "composite single box" `Quick test_dot_composite_single_box;
        ] );
      ("felm", [ tc "interpreted chains fuse" `Quick test_felm_interp_fuses ]);
    ]
