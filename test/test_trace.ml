(* Tests for the signal-graph tracer (Elm_core.Trace): span nesting, latency
   metrics, Chrome trace-event export, and the zero-overhead guarantee of
   the untraced path. Also covers the Stats empty-run (events = 0) guard. *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module Trace = Elm_core.Trace
module Stats = Elm_core.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))

let with_world body =
  let result = ref None in
  Cml.run (fun () -> result := Some (body ()));
  Option.get !result

(* A small diamond graph driven by [events] injections, optionally traced. *)
let diamond_run ?tracer events =
  with_world (fun () ->
      let a = Signal.input ~name:"a" 0 in
      let left = Signal.lift ~name:"left" (fun x -> x * 2) a in
      let right = Signal.lift ~name:"right" (fun x -> x + 1) a in
      let top = Signal.lift2 ~name:"top" ( + ) left right in
      let rt = Runtime.start ?tracer top in
      List.iter (fun v -> Runtime.inject rt a v) events;
      rt)

(* ------------------------------------------------------------------ *)
(* Span structure *)

let test_spans_well_nested () =
  let tracer = Trace.create () in
  ignore (diamond_run ~tracer [ 1; 2; 3; 4; 5 ]);
  let open_spans = Hashtbl.create 8 in
  let starts = ref 0 in
  let ends = ref 0 in
  List.iter
    (fun (r : Trace.record) ->
      match r.Trace.kind with
      | Trace.Node_start ->
        incr starts;
        check_bool "no start while a span is open on this node" false
          (Hashtbl.mem open_spans r.Trace.node);
        Hashtbl.replace open_spans r.Trace.node r.Trace.epoch
      | Trace.Node_end ->
        incr ends;
        (match Hashtbl.find_opt open_spans r.Trace.node with
        | None -> Alcotest.fail "Node_end without a matching Node_start"
        | Some epoch ->
          check_int "end epoch matches start epoch" epoch r.Trace.epoch);
        Hashtbl.remove open_spans r.Trace.node
      | _ -> ())
    (Trace.records tracer);
  check_int "every span closed" 0 (Hashtbl.length open_spans);
  check_bool "spans were recorded" true (!starts > 0);
  check_int "starts = ends" !starts !ends;
  (* 4 nodes, 5 events, all in the single source's cone *)
  check_int "one span per node per event" 20 !starts

let test_timestamps_monotone () =
  let tracer = Trace.create () in
  ignore (diamond_run ~tracer [ 1; 2; 3 ]);
  let rec monotone last = function
    | [] -> true
    | (r : Trace.record) :: rest ->
      r.Trace.ts >= last && monotone r.Trace.ts rest
  in
  check_bool "virtual timestamps never go backwards" true
    (monotone 0.0 (Trace.records tracer))

let test_ring_eviction () =
  let tracer = Trace.create ~capacity:16 () in
  ignore (diamond_run ~tracer (List.init 20 Fun.id));
  check_int "ring keeps at most capacity records" 16
    (List.length (Trace.records tracer));
  check_bool "eviction reported" true (Trace.dropped tracer > 0);
  (* Aggregates live outside the ring and must survive eviction. *)
  check_int "summary still counts every event" 20
    (Trace.summary tracer).Trace.events

(* ------------------------------------------------------------------ *)
(* Latency metrics *)

let latency_with_delay delay =
  let tracer = Trace.create () in
  ignore
    (with_world (fun () ->
         let armed = ref false in
         let a = Signal.input ~name:"a" 0 in
         let slow =
           Signal.lift ~name:"slow"
             (fun x ->
               if !armed then Cml.sleep delay;
               x + 1)
             a
         in
         let rt = Runtime.start ~tracer slow in
         armed := true;
         Runtime.inject rt a 1;
         rt));
  Trace.summary tracer

let test_latency_monotone_in_delay () =
  let s0 = latency_with_delay 0.0 in
  let s1 = latency_with_delay 0.5 in
  let s2 = latency_with_delay 2.0 in
  check_bool "delay 0.5 >= delay 0" true (s1.Trace.p95 >= s0.Trace.p95);
  check_bool "delay 2.0 > delay 0.5" true (s2.Trace.p95 > s1.Trace.p95);
  Alcotest.(check (float 1e-9)) "p95 equals the injected delay" 0.5 s1.Trace.p95;
  Alcotest.(check (float 1e-9)) "max agrees" 2.0 s2.Trace.max

let test_summary_counts () =
  let tracer = Trace.create () in
  ignore (diamond_run ~tracer [ 1; 2; 3 ]);
  let s = Trace.summary tracer in
  check_int "events" 3 s.Trace.events;
  check_int "displays" 3 s.Trace.displays;
  check_int "changes" 3 s.Trace.changes;
  check_int "all four nodes reported" 4 (List.length s.Trace.nodes);
  check_bool "node names registered" true
    (List.exists (fun n -> n.Trace.node_name = "top") s.Trace.nodes);
  check_bool "queue peaks observed" true (s.Trace.queue_peaks <> []);
  check_bool "switches sampled" true (s.Trace.switches > 0)

let test_empty_tracer_summary () =
  let s = Trace.summary (Trace.create ()) in
  check_int "no events" 0 s.Trace.events;
  Alcotest.(check (float 0.0)) "p50 is 0, not nan" 0.0 s.Trace.p50;
  Alcotest.(check (float 0.0)) "p95 is 0, not nan" 0.0 s.Trace.p95;
  check_bool "pp_summary does not raise" true
    (String.length (Format.asprintf "%a" Trace.pp_summary s) > 0)

(* ------------------------------------------------------------------ *)
(* Chrome export *)

let test_chrome_json_roundtrip () =
  let tracer = Trace.create () in
  ignore (diamond_run ~tracer [ 1; 2 ]);
  let doc = Trace.to_chrome_json tracer in
  (* Round-trip through our own JSON printer and parser. *)
  let reparsed = Json.parse (Json.to_string doc) in
  check_bool "compact round-trip" true (Json.equal doc reparsed);
  let reparsed_pretty = Json.parse (Json.pretty doc) in
  check_bool "pretty round-trip" true (Json.equal doc reparsed_pretty);
  let events =
    match Json.member "traceEvents" reparsed with
    | Some (Json.Array evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing or not an array"
  in
  check_bool "has events" true (List.length events > 0);
  List.iter
    (fun ev ->
      check_bool "every event has ph" true
        (Option.is_some (Json.member "ph" ev));
      check_bool "every event has pid" true
        (Option.is_some (Json.member "pid" ev));
      match Json.member "ph" ev with
      | Some (Json.String "M") -> ()
      | _ ->
        check_bool "non-metadata events have a numeric ts" true
          (match Json.member "ts" ev with
          | Some (Json.Number _) -> true
          | _ -> false))
    events;
  let has ph name =
    List.exists
      (fun ev ->
        Json.member "ph" ev = Some (Json.String ph)
        && Json.member "name" ev = Some (Json.String name))
      events
  in
  check_bool "B span for a node" true (has "B" "top");
  check_bool "E span for a node" true (has "E" "top");
  check_bool "dispatch instants" true (has "i" "dispatch");
  check_bool "display instants" true (has "i" "display");
  check_bool "thread names" true
    (List.exists
       (fun ev -> Json.member "name" ev = Some (Json.String "thread_name"))
       events)

(* ------------------------------------------------------------------ *)
(* Tracing must not perturb the run *)

let values rt = List.map snd (Runtime.changes rt)

let test_tracing_does_not_change_behaviour () =
  let events = List.init 25 (fun i -> (i * 7) mod 13) in
  let plain = diamond_run events in
  let tracer = Trace.create () in
  let traced = diamond_run ~tracer events in
  check_ints "identical change values" (values plain) (values traced);
  Alcotest.(check (list (pair (float 1e-12) int)))
    "identical change timestamps" (Runtime.changes plain)
    (Runtime.changes traced);
  check_int "identical message counts"
    (Runtime.stats plain).Stats.messages
    (Runtime.stats traced).Stats.messages;
  check_int "identical event counts"
    (Runtime.stats plain).Stats.events
    (Runtime.stats traced).Stats.events

(* ------------------------------------------------------------------ *)
(* Stats empty-run guard (satellite: divide-by-zero when events = 0) *)

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let test_stats_empty_run () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "per_event guards 0 events" 0.0
    (Stats.per_event 42 s);
  let printed = Format.asprintf "%a" Stats.pp s in
  check_bool "pp prints guarded msg/ev ratio" true
    (contains printed "msg/ev=0.0");
  check_bool "pp prints guarded sw/ev ratio" true (contains printed "sw/ev=0.0");
  check_bool "no nan/inf in output" true
    (not (contains printed "nan" || contains printed "inf"))

let test_stats_pp_ratios () =
  let s = Stats.create () in
  s.Stats.events <- 4;
  s.Stats.messages <- 10;
  s.Stats.switches <- 8;
  let printed = Format.asprintf "%a" Stats.pp s in
  check_bool "msg/ev computed" true (contains printed "msg/ev=2.5");
  check_bool "sw/ev computed" true (contains printed "sw/ev=2.0")

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "trace"
    [
      ( "spans",
        [
          tc "well nested per node" `Quick test_spans_well_nested;
          tc "timestamps monotone" `Quick test_timestamps_monotone;
          tc "ring eviction" `Quick test_ring_eviction;
        ] );
      ( "latency",
        [
          tc "monotone in injected delay" `Quick test_latency_monotone_in_delay;
          tc "summary counts" `Quick test_summary_counts;
          tc "empty tracer" `Quick test_empty_tracer_summary;
        ] );
      ("chrome", [ tc "json round-trip" `Quick test_chrome_json_roundtrip ]);
      ( "isolation",
        [
          tc "tracing-off byte-identical to tracing-on" `Quick
            test_tracing_does_not_change_behaviour;
        ] );
      ( "stats",
        [
          tc "empty run guarded" `Quick test_stats_empty_run;
          tc "ratios computed" `Quick test_stats_pp_ratios;
        ] );
    ]
