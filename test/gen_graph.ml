(* Shared random signal-graph generator for the property-test suites.

   One catalogue of graph shapes over two int inputs, covering every node
   kind the runtime treats specially — deep pure chains (the fusion sweet
   spot), drop_repeats mid-chain, shared subgraphs, foldp barriers,
   constants absorbed into lift2, merge, sample_on, unary lift_list, plus
   the async/delay boundary shapes. test_fuse (fused-vs-unfused),
   test_runtime (cone-vs-flood) and test_robustness (supervision under
   chaos schedules) all draw from it, so a new node kind added here is
   exercised by every equivalence property at once.

   Shapes [0, deterministic_count) are async/delay-free: their change
   traces are schedule-independent, so they may be compared across
   scheduler policies bit-for-bit. The remaining shapes cross an async
   boundary, where only per-source ordering is promised (see DESIGN.md).

   [with_world] honours FELM_SCHED_SEED / FELM_SCHED_PCT, which is how the
   replay seed printed by a Check.Explore violation reaches this suite. *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module Event = Elm_core.Event

(* Run [body] inside a scheduler, let everything settle, return its result.
   The policy defaults to the environment's (FIFO when unset). *)
let with_world ?policy body =
  let policy =
    match policy with Some p -> p | None -> (
      match Elm_check.Explore.policy_of_env () with
      | Some p -> p
      | None -> Cml.Scheduler.Fifo)
  in
  let result = ref None in
  Cml.run ~policy (fun () -> result := Some (body ()));
  Option.get !result

let values rt = List.map snd (Runtime.changes rt)

(* An injective, virtual-time-free chain of [n] named lifts. *)
let rec chain k n s =
  if n = 0 then s
  else
    chain k (n - 1)
      (Signal.lift ~name:(Printf.sprintf "f%d.%d" k n) (fun x -> (x * k) + n) s)

let comb x y = (x * 31) + y

let shape_count = 12
let deterministic_count = 10
let shape_deterministic shape = shape mod shape_count < deterministic_count

let build_shape shape =
  let a = Signal.input ~name:"a" 0 in
  let b = Signal.input ~name:"b" 0 in
  let s =
    match shape mod shape_count with
    | 0 ->
      (* the minimal two-input join *)
      Signal.lift2 ( + ) a b
    | 1 ->
      (* one deep pure chain (the fusion sweet spot) beside a short one *)
      Signal.lift2 comb (chain 3 12 a) (chain 5 1 b)
    | 2 ->
      (* drop_repeats fused mid-chain: exercises the stateful None path *)
      Signal.lift2 comb
        (chain 2 3 (Signal.drop_repeats (Signal.lift (fun x -> x / 4) a)))
        (chain 3 1 b)
    | 3 ->
      (* shared subgraph: [shared] has two subscribers and is a barrier *)
      let shared = Signal.lift ~name:"shared" (fun x -> x * x) a in
      Signal.lift2 comb
        (Signal.lift2 comb (chain 7 2 shared) (chain 11 3 shared))
        (chain 2 1 b)
    | 4 ->
      (* foldp barrier with fusable chains below and above *)
      Signal.lift2 comb
        (chain 5 2 (Signal.foldp ( + ) 0 (chain 3 3 a)))
        (chain 2 1 b)
    | 5 ->
      (* the bare stateful join *)
      Signal.foldp ( + ) 0 (Signal.lift2 ( + ) a b)
    | 6 ->
      (* constant absorbed into a lift2 mid-chain *)
      Signal.lift2 comb
        (chain 2 2 (Signal.lift2 comb (chain 3 2 a) (Signal.constant 7)))
        (chain 2 1 b)
    | 7 -> Signal.merge (chain 2 3 a) (chain 3 3 b)
    | 8 -> Signal.sample_on a (chain 2 3 b)
    | 9 ->
      (* unary lift_list (the shape every felm-interpreted lift has) over a
         drop_repeats + foldp pair *)
      Signal.lift2 comb
        (Signal.lift_list (List.fold_left ( + ) 1)
           [ Signal.drop_repeats (Signal.lift2 ( + ) a b) ])
        (Signal.foldp ( + ) 0 (chain 2 2 a))
    | 10 ->
      (* async boundary: the inner chain fuses, the boundary survives *)
      Signal.lift2 comb (chain 3 2 a) (Signal.async (chain 2 4 b))
    | _ ->
      (* timer boundary *)
      Signal.lift2 comb (Signal.count a) (Signal.delay 1.0 (chain 2 2 b))
  in
  (a, b, s)

let run_shape ?(backend : Runtime.backend = Runtime.Pipelined)
    ?(fuse = true) ?(mode = Runtime.Pipelined) ?(dispatch = Runtime.Cone)
    ?policy ?on_node_error ?queue_capacity ?domains ?pool shape events =
  let rt =
    with_world ?policy (fun () ->
        let a, b, s = build_shape shape in
        let rt =
          Runtime.start ~backend ~fuse ~mode ~dispatch ?on_node_error
            ?queue_capacity ?domains ?pool s
        in
        List.iter
          (fun (left, v) -> Runtime.inject rt (if left then a else b) v)
          events;
        rt)
  in
  (* Release any runtime-owned domain pool (and run std-lib stop hooks);
     the change log stays readable after stop. *)
  Runtime.stop rt;
  rt

let entry_equal (t1, m1) (t2, m2) = t1 = t2 && Event.equal ( = ) m1 m2

let rec is_subseq eq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' ->
    if eq x y then is_subseq eq xs' ys' else is_subseq eq xs ys'

let all_combos =
  [
    (Runtime.Pipelined, Runtime.Flood);
    (Runtime.Pipelined, Runtime.Cone);
    (Runtime.Sequential, Runtime.Flood);
    (Runtime.Sequential, Runtime.Cone);
  ]

(* QCheck generators: a shape index and an event list (which input, value).
   Values stay small so drop_repeats arms actually see repeats. *)
let arb_shape_events =
  QCheck.(pair (int_bound (shape_count - 1)) (list (pair bool (int_bound 7))))

let arb_deterministic_shape_events =
  QCheck.(
    pair (int_bound (deterministic_count - 1)) (list (pair bool (int_bound 7))))

(* ------------------------------------------------------------------ *)
(* Replay-differential upgrade harness (serve layer).

   Record a trace, split the event stream, upgrade the live dispatcher to
   a freshly rebuilt graph at the split, replay the suffix: the serve
   drains are deterministic (parallel drains are bit-identical to
   sequential — the B18/B19 oracles), so for an identity upgrade the
   resulting trace must equal the never-upgraded run's at EVERY split
   point, every [quiesce] style and every domain count. test_upgrade
   drives this over the whole shape catalogue; the serve layer is
   synchronous, so even the async/delay shapes compare bit-for-bit. *)

module Serve_dispatcher = Elm_serve.Dispatcher
module Serve_session = Elm_serve.Session
module Serve_pool = Elm_serve.Pool

(* Run [shape]'s graph through a dispatcher, upgrading to a freshly
   rebuilt graph before event [k = upgrade_at mod (n+1)] ([quiesce]
   selects whether the prefix drains first or stays queued across the
   upgrade; [apply:false] performs the same split and drain pattern but
   skips the upgrade itself — the replay-differential reference, since an
   interior drain already reorders delay/async deliveries relative to the
   single-drain run). Returns the change trace, the session, the
   dispatcher and the applied patch. [fuse] defaults to [false]: only
   unfused plans promise bit-identical traces across an upgrade
   (composite step state is re-created, as in [Compile.clone_arena]). *)
let serve_upgrade_run ?(fuse = false) ?pool ?(quiesce = true) ?migrate ?mutate
    ?(apply = true) ~upgrade_at shape events =
  let a, b, root = build_shape shape in
  let d = Serve_dispatcher.create ~fuse ?pool root in
  let drain () =
    ignore
      (match pool with
      | Some _ -> Serve_dispatcher.drain_parallel d
      | None -> Serve_dispatcher.drain d)
  in
  let s = Serve_dispatcher.open_session d in
  let evs = Array.of_list events in
  let n = Array.length evs in
  let inject a b lo hi =
    for j = lo to hi - 1 do
      let left, v = evs.(j) in
      Serve_dispatcher.inject d s (if left then a else b) v
    done
  in
  let k = if n = 0 then 0 else upgrade_at mod (n + 1) in
  inject a b 0 k;
  if quiesce then drain ();
  (* Post-upgrade injections must target the *new* graph's inputs: the old
     signal ids are not in the new plan. *)
  let patch =
    if apply then begin
      let a', b', root' = build_shape shape in
      let patch = Serve_dispatcher.upgrade_all ?migrate ?mutate d root' in
      inject a' b' k n;
      Some patch
    end
    else begin
      inject a b k n;
      None
    end
  in
  drain ();
  (Serve_session.changes s, s, d, patch)

(* Shape, events, split point and quiesce style for the identity-upgrade
   property. *)
let arb_upgrade_case =
  QCheck.(
    quad
      (int_bound (shape_count - 1))
      (list (pair bool (int_bound 7)))
      small_nat bool)
