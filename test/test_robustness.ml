(* Robustness and edge-case tests: failure injection (exceptions inside node
   functions), the Event/Stats helper modules, mode interactions
   (Sequential + async), graph introspection, and scheduler edge
   behaviours. *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module Event = Elm_core.Event
module Stats = Elm_core.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let with_world body =
  let result = ref None in
  Cml.run (fun () -> result := Some (body ()));
  Option.get !result

(* ------------------------------------------------------------------ *)
(* Event *)

let test_event_helpers () =
  check_bool "is_change" true (Event.is_change (Event.Change 1));
  check_bool "no_change" false (Event.is_change (Event.No_change 1));
  check_int "body of change" 5 (Event.body (Event.Change 5));
  check_int "body of no_change" 5 (Event.body (Event.No_change 5));
  check_bool "map change" true (Event.map succ (Event.Change 1) = Event.Change 2);
  check_bool "map keeps flavor" true
    (Event.map succ (Event.No_change 1) = Event.No_change 2);
  check_bool "equal" true (Event.equal ( = ) (Event.Change 3) (Event.Change 3));
  check_bool "not equal across flavors" false
    (Event.equal ( = ) (Event.Change 3) (Event.No_change 3));
  check_str "pp change" "Change 7"
    (Format.asprintf "%a" (Event.pp Format.pp_print_int) (Event.Change 7));
  check_str "pp nochange" "NoChange 7"
    (Format.asprintf "%a" (Event.pp Format.pp_print_int) (Event.No_change 7))

let test_stats_pp_and_totals () =
  let s = Stats.create () in
  s.Stats.applications <- 3;
  s.Stats.recomputations <- 4;
  check_int "total computations" 7 (Stats.total_computations s);
  let printed = Format.asprintf "%a" Stats.pp s in
  check_bool "pp mentions applications" true
    (let needle = "applications=3" in
     let n = String.length needle in
     let rec go i =
       i + n <= String.length printed
       && (String.sub printed i n = needle || go (i + 1))
     in
     go 0)

(* ------------------------------------------------------------------ *)
(* Failure injection *)

exception Node_crashed

let test_node_exception_propagates () =
  (* A crash inside a lifted function surfaces out of the session rather
     than being swallowed by the runtime. *)
  let run () =
    Cml.run (fun () ->
        let src = Signal.input 0 in
        let s =
          Signal.lift (fun x -> if x = 13 then raise Node_crashed else x) src
        in
        let rt = Runtime.start s in
        Runtime.inject rt src 1;
        Runtime.inject rt src 13)
  in
  Alcotest.check_raises "crash escapes Cml.run" Node_crashed run

let test_crash_during_default () =
  (* Defaults are computed at construction; a crash there is immediate. *)
  Alcotest.check_raises "default crash" Node_crashed (fun () ->
      Cml.run (fun () ->
          let src = Signal.input 13 in
          ignore (Signal.lift (fun x -> if x = 13 then raise Node_crashed else x) src)))

let test_foldp_crash () =
  Alcotest.check_raises "foldp crash escapes" Node_crashed (fun () ->
      Cml.run (fun () ->
          let src = Signal.input 0 in
          let s = Signal.foldp (fun _ _ -> raise Node_crashed) 0 src in
          let rt = Runtime.start s in
          Runtime.inject rt src 1))

let test_listener_crash () =
  Alcotest.check_raises "listener crash escapes" Node_crashed (fun () ->
      Cml.run (fun () ->
          let src = Signal.input 0 in
          let rt = Runtime.start src in
          Runtime.on_change rt (fun _ _ -> raise Node_crashed);
          Runtime.inject rt src 1))

(* ------------------------------------------------------------------ *)
(* Mode interactions *)

let test_sequential_with_async () =
  (* Sequential mode barriers each dispatched event on the display ack; an
     async re-dispatch is just another event and must not deadlock. *)
  let rt =
    with_world (fun () ->
        let src = Signal.input 0 in
        let s = Signal.async (Signal.lift (fun x -> x * 2) src) in
        let rt = Runtime.start ~mode:Runtime.Sequential s in
        Runtime.inject rt src 1;
        Runtime.inject rt src 2;
        rt)
  in
  check_bool "async values delivered under Sequential" true
    (List.map snd (Runtime.changes rt) = [ 2; 4 ])

let test_sequential_latency_vs_pipelined () =
  (* Make the distinction observable: in Sequential mode the second event's
     processing starts only after the first is displayed. *)
  let run mode =
    with_world (fun () ->
        let armed = ref false in
        let src = Signal.input 0 in
        let s =
          Signal.lift
            (fun x ->
              if !armed then Cml.sleep 10.0;
              x)
            src
        in
        let rt = Runtime.start ~mode s in
        armed := true;
        Runtime.inject rt src 1;
        Runtime.inject rt src 2;
        rt)
  in
  let last rt = fst (List.nth (Runtime.changes rt) 1) in
  Alcotest.(check (float 1e-6))
    "sequential: 2 * cost" 20.0
    (last (run Runtime.Sequential));
  Alcotest.(check (float 1e-6))
    "pipelined: cost overlapped" 20.0
    (last (run Runtime.Pipelined));
  (* with a two-stage chain the pipelining becomes visible *)
  let chain mode =
    with_world (fun () ->
        let armed = ref false in
        let src = Signal.input 0 in
        let slow name s =
          Signal.lift ~name
            (fun x ->
              if !armed then Cml.sleep 10.0;
              x)
            s
        in
        (* ~fuse:false — pipelined overlap between the two slow stages is
           exactly what fusing the chain would remove. *)
        let rt = Runtime.start ~mode ~fuse:false (slow "b" (slow "a" src)) in
        armed := true;
        Runtime.inject rt src 1;
        Runtime.inject rt src 2;
        rt)
  in
  Alcotest.(check (float 1e-6))
    "sequential two-stage" 40.0
    (last (chain Runtime.Sequential));
  Alcotest.(check (float 1e-6))
    "pipelined two-stage" 30.0
    (last (chain Runtime.Pipelined))

(* ------------------------------------------------------------------ *)
(* Introspection *)

let test_kind_names () =
  let i = Signal.input 0 in
  check_str "input" "input" (Signal.kind_name i);
  check_str "lift" "lift" (Signal.kind_name (Signal.lift succ i));
  check_str "foldp" "foldp" (Signal.kind_name (Signal.foldp ( + ) 0 i));
  check_str "async" "async" (Signal.kind_name (Signal.async i));
  check_str "merge" "merge" (Signal.kind_name (Signal.merge i i));
  check_str "constant" "constant" (Signal.kind_name (Signal.constant 3))

let test_deps_and_sources () =
  let a = Signal.input 0 in
  let b = Signal.input 0 in
  let s = Signal.lift2 ( + ) a b in
  check_int "two deps" 2 (List.length (Signal.deps s));
  check_bool "input is source" true (Signal.is_source a);
  check_bool "lift2 is not" false (Signal.is_source s);
  check_int "ids distinct" 2
    (List.length (List.sort_uniq compare [ Signal.id a; Signal.id b ]))

let test_names_default_and_custom () =
  let i = Signal.input ~name:"My.input" 0 in
  check_str "custom name" "My.input" (Signal.name i);
  check_str "fallback name" "lift" (Signal.name (Signal.lift succ i))

(* ------------------------------------------------------------------ *)
(* Scheduler edges *)

let test_zero_sleep_is_yield () =
  let log = ref [] in
  Cml.run (fun () ->
      Cml.spawn (fun () ->
          Cml.sleep 0.0;
          log := "slept" :: !log);
      Cml.spawn (fun () -> log := "ran" :: !log));
  Alcotest.(check (list string))
    "zero sleep yields, keeps time" [ "ran"; "slept" ]
    (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock unmoved" 0.0 (Cml.now ())

let test_nested_run_rejected () =
  Alcotest.check_raises "no nested schedulers" Cml.Scheduler.Already_running
    (fun () -> Cml.run (fun () -> Cml.run (fun () -> ())))

let test_many_events_burst () =
  (* A large burst exercises mailbox buffering and FIFO order end to end. *)
  let n = 5000 in
  let rt =
    with_world (fun () ->
        let src = Signal.input 0 in
        let rt = Runtime.start (Signal.foldp ( + ) 0 src) in
        for i = 1 to n do
          Runtime.inject rt src i
        done;
        rt)
  in
  check_int "sum of burst" (n * (n + 1) / 2) (Runtime.current rt);
  check_int "every event displayed" n (List.length (Runtime.changes rt))

let test_empty_lift_list_is_constant () =
  let rt =
    with_world (fun () ->
        let other = Signal.input 0 in
        let k = Signal.lift_list (fun _ -> 42) [] in
        let s = Signal.lift2 (fun a b -> a + b) k other in
        let rt = Runtime.start s in
        Runtime.inject rt other 1;
        rt)
  in
  check_bool "constant-like node participates" true
    (List.map snd (Runtime.changes rt) = [ 43 ])

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "robustness"
    [
      ( "helpers",
        [
          tc "event module" `Quick test_event_helpers;
          tc "stats" `Quick test_stats_pp_and_totals;
        ] );
      ( "failure injection",
        [
          tc "lift crash" `Quick test_node_exception_propagates;
          tc "default crash" `Quick test_crash_during_default;
          tc "foldp crash" `Quick test_foldp_crash;
          tc "listener crash" `Quick test_listener_crash;
        ] );
      ( "modes",
        [
          tc "sequential + async" `Quick test_sequential_with_async;
          tc "sequential latency" `Quick test_sequential_latency_vs_pipelined;
        ] );
      ( "introspection",
        [
          tc "kind names" `Quick test_kind_names;
          tc "deps/sources" `Quick test_deps_and_sources;
          tc "names" `Quick test_names_default_and_custom;
        ] );
      ( "scheduler edges",
        [
          tc "zero sleep" `Quick test_zero_sleep_is_yield;
          tc "nested run" `Quick test_nested_run_rejected;
          tc "burst of 5000" `Quick test_many_events_burst;
          tc "empty lift_list" `Quick test_empty_lift_list_is_constant;
        ] );
    ]
