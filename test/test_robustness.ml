(* Robustness and edge-case tests: failure injection (exceptions inside node
   functions), the Event/Stats helper modules, mode interactions
   (Sequential + async), graph introspection, and scheduler edge
   behaviours. *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module Event = Elm_core.Event
module Stats = Elm_core.Stats
module Mailbox = Cml.Mailbox
module Http = Elm_std.Http

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Shared harness: honours FELM_SCHED_SEED / FELM_SCHED_PCT replay vars. *)
let with_world body = Gen_graph.with_world body

(* ------------------------------------------------------------------ *)
(* Event *)

let test_event_helpers () =
  check_bool "is_change" true (Event.is_change (Event.Change 1));
  check_bool "no_change" false (Event.is_change (Event.No_change 1));
  check_int "body of change" 5 (Event.body (Event.Change 5));
  check_int "body of no_change" 5 (Event.body (Event.No_change 5));
  check_bool "map change" true (Event.map succ (Event.Change 1) = Event.Change 2);
  check_bool "map keeps flavor" true
    (Event.map succ (Event.No_change 1) = Event.No_change 2);
  check_bool "equal" true (Event.equal ( = ) (Event.Change 3) (Event.Change 3));
  check_bool "not equal across flavors" false
    (Event.equal ( = ) (Event.Change 3) (Event.No_change 3));
  check_str "pp change" "Change 7"
    (Format.asprintf "%a" (Event.pp Format.pp_print_int) (Event.Change 7));
  check_str "pp nochange" "NoChange 7"
    (Format.asprintf "%a" (Event.pp Format.pp_print_int) (Event.No_change 7))

let test_stats_pp_and_totals () =
  let s = Stats.create () in
  s.Stats.applications <- 3;
  s.Stats.recomputations <- 4;
  check_int "total computations" 7 (Stats.total_computations s);
  let printed = Format.asprintf "%a" Stats.pp s in
  check_bool "pp mentions applications" true
    (let needle = "applications=3" in
     let n = String.length needle in
     let rec go i =
       i + n <= String.length printed
       && (String.sub printed i n = needle || go (i + 1))
     in
     go 0)

(* ------------------------------------------------------------------ *)
(* Failure injection *)

exception Node_crashed

let test_node_exception_propagates () =
  (* A crash inside a lifted function surfaces out of the session rather
     than being swallowed by the runtime. *)
  let run () =
    Cml.run (fun () ->
        let src = Signal.input 0 in
        let s =
          Signal.lift (fun x -> if x = 13 then raise Node_crashed else x) src
        in
        let rt = Runtime.start s in
        Runtime.inject rt src 1;
        Runtime.inject rt src 13)
  in
  Alcotest.check_raises "crash escapes Cml.run" Node_crashed run

let test_crash_during_default () =
  (* Defaults are computed at construction; a crash there is immediate. *)
  Alcotest.check_raises "default crash" Node_crashed (fun () ->
      Cml.run (fun () ->
          let src = Signal.input 13 in
          ignore (Signal.lift (fun x -> if x = 13 then raise Node_crashed else x) src)))

let test_foldp_crash () =
  Alcotest.check_raises "foldp crash escapes" Node_crashed (fun () ->
      Cml.run (fun () ->
          let src = Signal.input 0 in
          let s = Signal.foldp (fun _ _ -> raise Node_crashed) 0 src in
          let rt = Runtime.start s in
          Runtime.inject rt src 1))

let test_listener_crash () =
  Alcotest.check_raises "listener crash escapes" Node_crashed (fun () ->
      Cml.run (fun () ->
          let src = Signal.input 0 in
          let rt = Runtime.start src in
          Runtime.on_change rt (fun _ _ -> raise Node_crashed);
          Runtime.inject rt src 1))

(* ------------------------------------------------------------------ *)
(* Node supervision: Isolate / Restart *)

(* Two independent branches: a crashing one fed by [a] (the crash kind —
   plain lift, foldp step or fused composite chain — is the parameter) and a
   clean one fed by [b] whose applications are recorded. [a] values that are
   multiples of 3 crash when [faulty]; both branches join at the root so the
   session exercises partial-failure dispatch. Returns the clean branch's
   application log (newest first) and the runtime. *)
let supervised_session ~kind ~policy ~mode ~dispatch ~faulty =
  let clean_log = ref [] in
  let rt =
    with_world (fun () ->
        let a = Signal.input ~name:"a" 0 in
        let b = Signal.input ~name:"b" 0 in
        (* [x > 0]: the construction-time default (0) must not crash. *)
        let boom x =
          if faulty && x > 0 && x mod 3 = 0 then raise Node_crashed else x * 10
        in
        let crashing =
          match kind with
          | `Lift -> Signal.lift ~name:"boom" boom a
          | `Foldp ->
            Signal.foldp ~name:"boom"
              (fun x acc -> boom x + acc)
              0 a
          | `Fused ->
            (* A two-stage stateless chain: the fusion pass collapses it
               into one composite node, so the crash happens inside a fused
               step and must isolate the composite as a unit. *)
            Signal.lift ~name:"post" (fun x -> x + 1)
              (Signal.lift ~name:"boom" boom a)
        in
        let clean =
          Signal.lift ~name:"clean"
            (fun y ->
              clean_log := y :: !clean_log;
              y + 100)
            b
        in
        let root = Signal.lift2 ~name:"root" ( + ) crashing clean in
        let rt = Runtime.start ~mode ~dispatch ~on_node_error:policy root in
        for i = 1 to 9 do
          Runtime.inject rt a i;
          Runtime.inject rt b i
        done;
        rt)
  in
  (!clean_log, rt)

let test_supervision_matrix () =
  List.iter
    (fun kind ->
      List.iter
        (fun policy ->
          List.iter
            (fun mode ->
              List.iter
                (fun dispatch ->
                  let label =
                    Printf.sprintf "%s/%s/%s/%s"
                      (match kind with
                      | `Lift -> "lift"
                      | `Foldp -> "foldp"
                      | `Fused -> "fused")
                      (match policy with
                      | Runtime.Isolate -> "isolate"
                      | Runtime.Restart n -> Printf.sprintf "restart:%d" n
                      | Runtime.Propagate -> "propagate")
                      (match mode with
                      | Runtime.Pipelined -> "pipelined"
                      | Runtime.Sequential -> "sequential")
                      (match dispatch with
                      | Runtime.Flood -> "flood"
                      | Runtime.Cone -> "cone")
                  in
                  let clean_ok, _ =
                    supervised_session ~kind ~policy ~mode ~dispatch
                      ~faulty:false
                  in
                  let clean_faulty, rt =
                    supervised_session ~kind ~policy ~mode ~dispatch
                      ~faulty:true
                  in
                  (* The session completed (we got here), every injected
                     crash was counted, and the unaffected branch's
                     applications are bit-identical to the no-fault run. *)
                  check_int (label ^ ": failures counted") 3
                    (Runtime.stats rt).Stats.node_failures;
                  check_bool (label ^ ": clean branch unaffected") true
                    (clean_faulty = clean_ok))
                [ Runtime.Flood; Runtime.Cone ])
            [ Runtime.Pipelined; Runtime.Sequential ])
        [ Runtime.Isolate; Runtime.Restart 1; Runtime.Restart 10 ])
    [ `Lift; `Foldp; `Fused ]

let test_isolate_emits_last_good () =
  let rt =
    with_world (fun () ->
        let src = Signal.input 0 in
        let s =
          Signal.lift (fun x -> if x = 2 then raise Node_crashed else x * 10) src
        in
        let rt = Runtime.start ~on_node_error:Runtime.Isolate s in
        Runtime.inject rt src 1;
        Runtime.inject rt src 2;
        Runtime.inject rt src 3;
        rt)
  in
  (* The crashed round is a No_change of the last good value: no display
     change, no corrupted downstream value. *)
  check_bool "changes skip the crashed round" true
    (List.map snd (Runtime.changes rt) = [ 10; 30 ]);
  check_int "one failure" 1 (Runtime.stats rt).Stats.node_failures;
  check_int "no restarts under Isolate" 0 (Runtime.stats rt).Stats.node_restarts

let run_crashing_foldp policy injections =
  with_world (fun () ->
      let src = Signal.input 0 in
      let s =
        Signal.foldp
          (fun x acc -> if x = 99 then raise Node_crashed else acc + x)
          0 src
      in
      let rt = Runtime.start ~on_node_error:policy s in
      List.iter (fun v -> Runtime.inject rt src v) injections;
      rt)

let test_restart_resets_foldp () =
  (* Isolate keeps the accumulator across the crash; Restart re-seeds it
     from the signal default. *)
  let isolated = run_crashing_foldp Runtime.Isolate [ 1; 2; 99; 4 ] in
  check_bool "isolate keeps accumulator" true
    (List.map snd (Runtime.changes isolated) = [ 1; 3; 7 ]);
  let restarted = run_crashing_foldp (Runtime.Restart 1) [ 1; 2; 99; 4 ] in
  check_bool "restart re-seeds accumulator" true
    (List.map snd (Runtime.changes restarted) = [ 1; 3; 4 ]);
  check_int "restart counted" 1 (Runtime.stats restarted).Stats.node_restarts

let test_restart_budget_degrades_to_isolate () =
  let rt = run_crashing_foldp (Runtime.Restart 1) [ 1; 99; 2; 99; 3 ] in
  (* First crash restarts (acc back to 0); the second exhausts the budget,
     so the accumulator survives it. *)
  check_bool "budget spent, then isolate" true
    (List.map snd (Runtime.changes rt) = [ 1; 2; 5 ]);
  check_int "both failures counted" 2 (Runtime.stats rt).Stats.node_failures;
  check_int "only one restart" 1 (Runtime.stats rt).Stats.node_restarts

(* Supervision x scheduling: the Restart budget is a semantic property of
   the signal graph, not of the interleaving. Under every scheduler policy
   the node restarts exactly [min budget crashes] times and then degrades
   to Isolate, with a bit-identical change trace. *)

let policies_under_test seed =
  [
    Cml.Scheduler.Fifo;
    Cml.Scheduler.Seeded_random seed;
    Cml.Scheduler.Pct { seed; depth = 3 };
  ]

let run_crashing_foldp_under ~policy supervision injections =
  Gen_graph.with_world ~policy (fun () ->
      let src = Signal.input 0 in
      let s =
        Signal.foldp
          (fun x acc -> if x = 99 then raise Node_crashed else acc + x)
          0 src
      in
      let rt = Runtime.start ~on_node_error:supervision s in
      List.iter (fun v -> Runtime.inject rt src v) injections;
      rt)

let prop_restart_budget_exact_under_all_policies =
  QCheck.Test.make
    ~name:"Restart n degrades to Isolate after exactly n restarts (all policies)"
    ~count:40
    QCheck.(triple (int_range 1 3) (int_range 1 5) small_nat)
    (fun (budget, crashes, seed) ->
      let injections =
        List.concat (List.init crashes (fun i -> [ i + 1; 99 ])) @ [ 7 ]
      in
      let results =
        List.map
          (fun policy ->
            let rt =
              run_crashing_foldp_under ~policy (Runtime.Restart budget)
                injections
            in
            ( Runtime.changes rt,
              (Runtime.stats rt).Stats.node_restarts,
              (Runtime.stats rt).Stats.node_failures ))
          (policies_under_test seed)
      in
      match results with
      | (fifo_changes, fifo_restarts, fifo_failures) :: rest ->
        fifo_restarts = min budget crashes
        && fifo_failures = crashes
        && List.for_all
             (fun (c, r, f) ->
               c = fifo_changes && r = fifo_restarts && f = fifo_failures)
             rest
      | [] -> false)

let prop_zero_fault_supervised_bit_identical =
  QCheck.Test.make
    ~name:"zero-fault runs bit-identical to FIFO under Seeded_random with \
           supervision on"
    ~count:40
    QCheck.(pair Gen_graph.arb_deterministic_shape_events small_nat)
    (fun ((shape, events), seed) ->
      let run policy =
        Gen_graph.run_shape ~policy ~on_node_error:(Runtime.Restart 2) shape
          events
      in
      let fifo = run Cml.Scheduler.Fifo in
      let chaos = run (Cml.Scheduler.Seeded_random seed) in
      let log_f = Runtime.message_log fifo in
      let log_c = Runtime.message_log chaos in
      Runtime.changes fifo = Runtime.changes chaos
      && Runtime.current fifo = Runtime.current chaos
      && (Runtime.stats fifo).Stats.node_failures = 0
      && (Runtime.stats chaos).Stats.node_failures = 0
      && List.length log_f = List.length log_c
      && List.for_all2 Gen_graph.entry_equal log_f log_c)

let test_propagate_still_default () =
  (* The seed behaviour is untouched: no policy given, the crash escapes. *)
  Alcotest.check_raises "default is Propagate" Node_crashed (fun () ->
      Cml.run (fun () ->
          let src = Signal.input 0 in
          let s = Signal.lift (fun x -> if x = 2 then raise Node_crashed else x) src in
          let rt = Runtime.start s in
          Runtime.inject rt src 2))

(* ------------------------------------------------------------------ *)
(* Bounded mailboxes *)

let test_mailbox_drop_oldest () =
  Cml.run (fun () ->
      let mb = Mailbox.create ~capacity:2 ~overflow:Mailbox.Drop_oldest () in
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Mailbox.send mb 3;
      check_int "depth capped" 2 (Mailbox.length mb);
      check_int "oldest dropped" 2 (Mailbox.recv mb);
      check_int "newest kept" 3 (Mailbox.recv mb))

let test_mailbox_fail () =
  Alcotest.check_raises "overflow raises Full" (Mailbox.Full (Some "mb"))
    (fun () ->
      Cml.run (fun () ->
          let mb =
            Mailbox.create ~name:"mb" ~capacity:1 ~overflow:Mailbox.Fail ()
          in
          Mailbox.send mb 1;
          Mailbox.send mb 2))

let test_mailbox_block_backpressure () =
  let sent_at_park = ref [] in
  let received = ref [] in
  let max_depth = ref 0 in
  Cml.run (fun () ->
      Cml.Probe.set
        {
          Cml.Probe.on_send =
            (fun _ depth -> if depth > !max_depth then max_depth := depth);
          on_recv = (fun _ _ -> ());
          on_switch = (fun _ -> ());
        };
      let mb = Mailbox.create ~name:"bp" ~capacity:2 ~overflow:Mailbox.Block () in
      let progress = ref 0 in
      Cml.spawn (fun () ->
          for i = 1 to 5 do
            Mailbox.send mb i;
            progress := i
          done);
      Cml.spawn (fun () ->
          Cml.sleep 1.0;
          (* By now the sender has filled the two slots and parked on the
             third send: backpressure suspended it before [progress := 3]. *)
          sent_at_park := [ !progress ];
          for _ = 1 to 5 do
            received := Mailbox.recv mb :: !received
          done));
  check_bool "sender suspended at capacity" true (!sent_at_park = [ 2 ]);
  check_bool "FIFO across parked senders" true
    (List.rev !received = [ 1; 2; 3; 4; 5 ]);
  check_bool "probe-observed depth never exceeds capacity" true (!max_depth <= 2)

let test_recv_opt_fires_probe_and_drains () =
  Cml.run (fun () ->
      let recvs = ref 0 in
      Cml.Probe.set
        {
          Cml.Probe.on_send = (fun _ _ -> ());
          on_recv = (fun _ _ -> incr recvs);
          on_switch = (fun _ -> ());
        };
      let mb = Mailbox.create ~name:"m" ~capacity:1 ~overflow:Mailbox.Block () in
      Mailbox.send mb 1;
      Cml.spawn (fun () -> Mailbox.send mb 2);
      Cml.sleep 0.0;
      (* the spawned sender is now parked on the full mailbox *)
      check_bool "first value" true (Mailbox.recv_opt mb = Some 1);
      check_int "recv_opt reported to probe" 1 !recvs;
      check_int "parked sender admitted into freed slot" 1 (Mailbox.length mb);
      check_bool "second value" true (Mailbox.recv_opt mb = Some 2);
      check_bool "empty" true (Mailbox.recv_opt mb = None);
      check_int "empty poll not reported" 2 !recvs)

let test_mailbox_capacity_validation () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Mailbox.create: capacity must be >= 1") (fun () ->
      ignore (Mailbox.create ~capacity:0 ()));
  check_bool "capacity introspection" true
    (Mailbox.capacity (Mailbox.create ~capacity:7 () : int Mailbox.t) = Some 7);
  check_bool "unbounded introspection" true
    (Mailbox.capacity (Mailbox.create () : int Mailbox.t) = None)

let test_runtime_bounded_equals_unbounded () =
  let session capacity tracer =
    with_world (fun () ->
        let src = Signal.input 0 in
        let s = Signal.foldp ( + ) 0 (Signal.lift (fun x -> x * 2) src) in
        let rt = Runtime.start ?queue_capacity:capacity ?tracer s in
        for i = 1 to 200 do
          Runtime.inject rt src i
        done;
        rt)
  in
  let unbounded = session None None in
  let tracer = Elm_core.Trace.create () in
  let bounded = session (Some 2) (Some tracer) in
  check_bool "observable behaviour identical under backpressure" true
    (Runtime.changes bounded = Runtime.changes unbounded);
  let summary = Elm_core.Trace.summary tracer in
  List.iter
    (fun (chan, peak) ->
      let bounded_chan =
        String.length chan >= 5
        && (String.sub chan 0 5 = "wake:" || String.sub chan 0 6 = "value:")
      in
      if bounded_chan then
        check_bool (Printf.sprintf "peak of %s within capacity" chan) true
          (peak <= 2))
    summary.Elm_core.Trace.queue_peaks

(* ------------------------------------------------------------------ *)
(* Http resilience: flaky servers, retries, determinism *)

let run_http srv =
  let rt =
    with_world (fun () ->
        let req = Signal.input ~name:"req" "" in
        let resp = Http.send_get ~timeout:5.0 ~retries:40 ~backoff:0.01 srv req in
        let rt = Runtime.start resp in
        List.iter (fun q -> Runtime.inject rt req q) [ "a"; "b"; "c" ];
        rt)
  in
  (Runtime.current rt, List.map snd (Runtime.changes rt))

let prop_flaky_converges =
  QCheck.Test.make ~name:"flaky server + retries converge to reliable result"
    ~count:30
    QCheck.(
      triple small_nat
        (float_bound_inclusive 0.3)
        (float_bound_inclusive 0.3))
    (fun (seed, drop_rate, error_rate) ->
      let reliable () =
        Http.server ~latency:(fun _ -> 1.0) (fun q -> Ok ("R:" ^ q))
      in
      let flaky () =
        Http.flaky ~seed ~drop_rate ~spike_rate:0.2 ~error_rate ~error_burst:2
          (reliable ())
      in
      let ref_final, ref_changes = run_http (reliable ()) in
      let f1, c1 = run_http (flaky ()) in
      let f2, c2 = run_http (flaky ()) in
      (* Retries absorb the faults: same final Success and same displayed
         sequence as the reliable server — and deterministically so, twice. *)
      f1 = ref_final && c1 = ref_changes && f2 = f1 && c2 = c1)

let test_flaky_deterministic_served_count () =
  let mk () =
    Http.flaky ~seed:7 ~drop_rate:0.2 ~spike_rate:0.2 ~error_rate:0.2
      ~error_burst:2
      (Http.server ~latency:(fun _ -> 1.0) (fun q -> Ok q))
  in
  let srv1 = mk () in
  let r1 = run_http srv1 in
  let srv2 = mk () in
  let r2 = run_http srv2 in
  check_bool "same outcome" true (r1 = r2);
  check_int "same attempt count" (Http.request_count srv1)
    (Http.request_count srv2);
  check_bool "faults actually injected (retries happened)" true
    (Http.request_count srv1 > 3)

(* ------------------------------------------------------------------ *)
(* Mode interactions *)

let test_sequential_with_async () =
  (* Sequential mode barriers each dispatched event on the display ack; an
     async re-dispatch is just another event and must not deadlock. *)
  let rt =
    with_world (fun () ->
        let src = Signal.input 0 in
        let s = Signal.async (Signal.lift (fun x -> x * 2) src) in
        let rt = Runtime.start ~mode:Runtime.Sequential s in
        Runtime.inject rt src 1;
        Runtime.inject rt src 2;
        rt)
  in
  check_bool "async values delivered under Sequential" true
    (List.map snd (Runtime.changes rt) = [ 2; 4 ])

let test_sequential_latency_vs_pipelined () =
  (* Make the distinction observable: in Sequential mode the second event's
     processing starts only after the first is displayed. *)
  let run mode =
    with_world (fun () ->
        let armed = ref false in
        let src = Signal.input 0 in
        let s =
          Signal.lift
            (fun x ->
              if !armed then Cml.sleep 10.0;
              x)
            src
        in
        let rt = Runtime.start ~mode s in
        armed := true;
        Runtime.inject rt src 1;
        Runtime.inject rt src 2;
        rt)
  in
  let last rt = fst (List.nth (Runtime.changes rt) 1) in
  Alcotest.(check (float 1e-6))
    "sequential: 2 * cost" 20.0
    (last (run Runtime.Sequential));
  Alcotest.(check (float 1e-6))
    "pipelined: cost overlapped" 20.0
    (last (run Runtime.Pipelined));
  (* with a two-stage chain the pipelining becomes visible *)
  let chain mode =
    with_world (fun () ->
        let armed = ref false in
        let src = Signal.input 0 in
        let slow name s =
          Signal.lift ~name
            (fun x ->
              if !armed then Cml.sleep 10.0;
              x)
            s
        in
        (* ~fuse:false — pipelined overlap between the two slow stages is
           exactly what fusing the chain would remove. *)
        let rt = Runtime.start ~mode ~fuse:false (slow "b" (slow "a" src)) in
        armed := true;
        Runtime.inject rt src 1;
        Runtime.inject rt src 2;
        rt)
  in
  Alcotest.(check (float 1e-6))
    "sequential two-stage" 40.0
    (last (chain Runtime.Sequential));
  Alcotest.(check (float 1e-6))
    "pipelined two-stage" 30.0
    (last (chain Runtime.Pipelined))

(* ------------------------------------------------------------------ *)
(* Introspection *)

let test_kind_names () =
  let i = Signal.input 0 in
  check_str "input" "input" (Signal.kind_name i);
  check_str "lift" "lift" (Signal.kind_name (Signal.lift succ i));
  check_str "foldp" "foldp" (Signal.kind_name (Signal.foldp ( + ) 0 i));
  check_str "async" "async" (Signal.kind_name (Signal.async i));
  check_str "merge" "merge" (Signal.kind_name (Signal.merge i i));
  check_str "constant" "constant" (Signal.kind_name (Signal.constant 3))

let test_deps_and_sources () =
  let a = Signal.input 0 in
  let b = Signal.input 0 in
  let s = Signal.lift2 ( + ) a b in
  check_int "two deps" 2 (List.length (Signal.deps s));
  check_bool "input is source" true (Signal.is_source a);
  check_bool "lift2 is not" false (Signal.is_source s);
  check_int "ids distinct" 2
    (List.length (List.sort_uniq compare [ Signal.id a; Signal.id b ]))

let test_names_default_and_custom () =
  let i = Signal.input ~name:"My.input" 0 in
  check_str "custom name" "My.input" (Signal.name i);
  check_str "fallback name" "lift" (Signal.name (Signal.lift succ i))

(* ------------------------------------------------------------------ *)
(* Scheduler edges *)

let test_zero_sleep_is_yield () =
  let log = ref [] in
  Cml.run (fun () ->
      Cml.spawn (fun () ->
          Cml.sleep 0.0;
          log := "slept" :: !log);
      Cml.spawn (fun () -> log := "ran" :: !log));
  Alcotest.(check (list string))
    "zero sleep yields, keeps time" [ "ran"; "slept" ]
    (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock unmoved" 0.0 (Cml.now ())

let test_nested_run_rejected () =
  Alcotest.check_raises "no nested schedulers" Cml.Scheduler.Already_running
    (fun () -> Cml.run (fun () -> Cml.run (fun () -> ())))

let test_many_events_burst () =
  (* A large burst exercises mailbox buffering and FIFO order end to end. *)
  let n = 5000 in
  let rt =
    with_world (fun () ->
        let src = Signal.input 0 in
        let rt = Runtime.start (Signal.foldp ( + ) 0 src) in
        for i = 1 to n do
          Runtime.inject rt src i
        done;
        rt)
  in
  check_int "sum of burst" (n * (n + 1) / 2) (Runtime.current rt);
  check_int "every event displayed" n (List.length (Runtime.changes rt))

let test_empty_lift_list_is_constant () =
  let rt =
    with_world (fun () ->
        let other = Signal.input 0 in
        let k = Signal.lift_list (fun _ -> 42) [] in
        let s = Signal.lift2 (fun a b -> a + b) k other in
        let rt = Runtime.start s in
        Runtime.inject rt other 1;
        rt)
  in
  check_bool "constant-like node participates" true
    (List.map snd (Runtime.changes rt) = [ 43 ])

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "robustness"
    [
      ( "helpers",
        [
          tc "event module" `Quick test_event_helpers;
          tc "stats" `Quick test_stats_pp_and_totals;
        ] );
      ( "failure injection",
        [
          tc "lift crash" `Quick test_node_exception_propagates;
          tc "default crash" `Quick test_crash_during_default;
          tc "foldp crash" `Quick test_foldp_crash;
          tc "listener crash" `Quick test_listener_crash;
        ] );
      ( "supervision",
        [
          tc "policy matrix" `Quick test_supervision_matrix;
          tc "isolate emits last-good" `Quick test_isolate_emits_last_good;
          tc "restart resets foldp" `Quick test_restart_resets_foldp;
          tc "restart budget degrades" `Quick
            test_restart_budget_degrades_to_isolate;
          tc "propagate still default" `Quick test_propagate_still_default;
          QCheck_alcotest.to_alcotest prop_restart_budget_exact_under_all_policies;
          QCheck_alcotest.to_alcotest prop_zero_fault_supervised_bit_identical;
        ] );
      ( "bounded mailboxes",
        [
          tc "drop_oldest" `Quick test_mailbox_drop_oldest;
          tc "fail" `Quick test_mailbox_fail;
          tc "block backpressure" `Quick test_mailbox_block_backpressure;
          tc "recv_opt probe + drain" `Quick
            test_recv_opt_fires_probe_and_drains;
          tc "capacity validation" `Quick test_mailbox_capacity_validation;
          tc "bounded runtime equivalence" `Quick
            test_runtime_bounded_equals_unbounded;
        ] );
      ( "http resilience",
        [
          QCheck_alcotest.to_alcotest prop_flaky_converges;
          tc "deterministic flaky runs" `Quick
            test_flaky_deterministic_served_count;
        ] );
      ( "modes",
        [
          tc "sequential + async" `Quick test_sequential_with_async;
          tc "sequential latency" `Quick test_sequential_latency_vs_pipelined;
        ] );
      ( "introspection",
        [
          tc "kind names" `Quick test_kind_names;
          tc "deps/sources" `Quick test_deps_and_sources;
          tc "names" `Quick test_names_default_and_custom;
        ] );
      ( "scheduler edges",
        [
          tc "zero sleep" `Quick test_zero_sleep_is_yield;
          tc "nested run" `Quick test_nested_run_rejected;
          tc "burst of 5000" `Quick test_many_events_burst;
          tc "empty lift_list" `Quick test_empty_lift_list_is_constant;
        ] );
    ]
