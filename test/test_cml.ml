(* Tests for the CML substrate: priority queue, scheduler (incl. virtual
   time), mailboxes, synchronous channels and multicast channels. *)

module Sched = Cml.Scheduler
module Mailbox = Cml.Mailbox
module Chan = Cml.Chan
module Multicast = Cml.Multicast
module Pqueue = Cml.Pqueue

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_ints = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_basic () =
  let q = Pqueue.empty ~compare:Int.compare in
  check_bool "empty" true (Pqueue.is_empty q);
  let q = Pqueue.insert q 3 "c" in
  let q = Pqueue.insert q 1 "a" in
  let q = Pqueue.insert q 2 "b" in
  check_int "size" 3 (Pqueue.size q);
  (match Pqueue.min q with
  | Some (1, "a") -> ()
  | _ -> Alcotest.fail "min should be (1, a)");
  match Pqueue.pop_min q with
  | Some (1, "a", q') -> check_int "size after pop" 2 (Pqueue.size q')
  | _ -> Alcotest.fail "pop_min should yield (1, a)"

let test_pqueue_sorted () =
  let bindings = [ (5, ()); (1, ()); (4, ()); (2, ()); (3, ()) ] in
  let q = Pqueue.of_list ~compare:Int.compare bindings in
  let keys = List.map fst (Pqueue.to_sorted_list q) in
  check_ints "sorted" [ 1; 2; 3; 4; 5 ] keys

let test_pqueue_merge () =
  let q1 = Pqueue.of_list ~compare:Int.compare [ (1, "a"); (3, "c") ] in
  let q2 = Pqueue.of_list ~compare:Int.compare [ (2, "b"); (0, "z") ] in
  let q = Pqueue.merge q1 q2 in
  check_int "merged size" 4 (Pqueue.size q);
  let keys = List.map fst (Pqueue.to_sorted_list q) in
  check_ints "merged order" [ 0; 1; 2; 3 ] keys

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue sorts like List.sort" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let q =
        Pqueue.of_list ~compare:Int.compare (List.map (fun x -> (x, ())) xs)
      in
      List.map fst (Pqueue.to_sorted_list q) = List.sort Int.compare xs)

let prop_pqueue_min_is_minimum =
  QCheck.Test.make ~name:"pqueue min is list minimum" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) small_int)
    (fun xs ->
      let q =
        Pqueue.of_list ~compare:Int.compare (List.map (fun x -> (x, ())) xs)
      in
      match Pqueue.min q with
      | Some (m, ()) -> m = List.fold_left min (List.hd xs) xs
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let test_run_value () =
  check_int "run_value returns" 42 (Sched.run_value (fun () -> 42))

let test_spawn_fifo () =
  let log = ref [] in
  Sched.run (fun () ->
      Sched.spawn (fun () -> log := 1 :: !log);
      Sched.spawn (fun () -> log := 2 :: !log);
      Sched.spawn (fun () -> log := 3 :: !log));
  check_ints "FIFO spawn order" [ 1; 2; 3 ] (List.rev !log)

let test_yield_interleaves () =
  let log = Buffer.create 16 in
  Sched.run (fun () ->
      Sched.spawn (fun () ->
          Buffer.add_string log "a1.";
          Sched.yield ();
          Buffer.add_string log "a2.");
      Sched.spawn (fun () ->
          Buffer.add_string log "b1.";
          Sched.yield ();
          Buffer.add_string log "b2."));
  Alcotest.(check string) "interleaving" "a1.b1.a2.b2." (Buffer.contents log)

let test_virtual_clock () =
  let times = ref [] in
  Sched.run (fun () ->
      Sched.spawn (fun () ->
          Sched.sleep 2.0;
          times := ("late", Sched.now ()) :: !times);
      Sched.spawn (fun () ->
          Sched.sleep 1.0;
          times := ("early", Sched.now ()) :: !times));
  match List.rev !times with
  | [ ("early", t1); ("late", t2) ] ->
    check_float "first wake" 1.0 t1;
    check_float "second wake" 2.0 t2
  | _ -> Alcotest.fail "expected two wakeups in virtual-time order"

let test_sleep_is_virtual () =
  (* A large virtual sleep must not take real time. *)
  let t0 = Unix.gettimeofday () in
  Sched.run (fun () -> Sched.sleep 1_000_000.0);
  let elapsed = Unix.gettimeofday () -. t0 in
  check_bool "virtual sleep is instantaneous" true (elapsed < 1.0)

let test_same_instant_fifo () =
  let log = ref [] in
  Sched.run (fun () ->
      Sched.spawn (fun () ->
          Sched.sleep 1.0;
          log := "first" :: !log);
      Sched.spawn (fun () ->
          Sched.sleep 1.0;
          log := "second" :: !log));
  Alcotest.(check (list string))
    "same-instant timers keep FIFO order" [ "first"; "second" ]
    (List.rev !log)

let test_now_outside_run () =
  (* The clock persists after a run, reporting the final virtual time. *)
  Sched.run (fun () -> Sched.sleep 5.0);
  check_float "clock keeps final time" 5.0 (Sched.now ())

let test_not_running () =
  check_bool "not running" false (Sched.running ());
  Alcotest.check_raises "sleep outside run" Sched.Not_running (fun () ->
      Sched.sleep 1.0)

let test_exception_propagates () =
  Alcotest.check_raises "thread exception escapes run" Exit (fun () ->
      Sched.run (fun () -> Sched.spawn (fun () -> raise Exit)))

let test_max_switches () =
  Alcotest.check_raises "livelock detected"
    (Sched.Stuck "exceeded 10 context switches") (fun () ->
      Sched.run ~max_switches:10 (fun () ->
          let rec spin () =
            Sched.yield ();
            spin ()
          in
          spin ()))

let test_run_counts () =
  Sched.run (fun () ->
      Sched.spawn (fun () -> ());
      Sched.spawn (fun () -> ()));
  (* main + 2 spawns *)
  check_int "spawned" 3 (Sched.spawned_count ());
  check_bool "switches counted" true (Sched.switch_count () >= 3)

let test_blocked_threads_dropped () =
  (* A thread blocked forever on a mailbox does not prevent quiescence. *)
  let mb = Mailbox.create () in
  Sched.run (fun () -> Sched.spawn (fun () -> ignore (Mailbox.recv mb)));
  check_bool "run returned" true true

let test_run_value_stuck () =
  (* The main thread parked on an unnamed mailbox is still accounted for:
     it shows up as an <anonymous> waiter instead of vanishing. *)
  let mb = Mailbox.create () in
  Alcotest.check_raises "stuck main detected"
    (Sched.Stuck
       "main thread blocked forever; 1 thread(s) still waiting: <anonymous>")
    (fun () -> ignore (Sched.run_value (fun () -> Mailbox.recv mb)))

let test_run_value_stuck_names_sites () =
  (* With named channels, the Stuck message says who is blocked where
     instead of just "blocked forever". *)
  let got = ref "" in
  (try
     ignore
       (Sched.run_value (fun () ->
            let lonely = Mailbox.create ~name:"lonely" () in
            Sched.spawn (fun () ->
                ignore (Mailbox.recv (Mailbox.create ~name:"orphan" ())));
            Mailbox.recv lonely))
   with Sched.Stuck msg -> got := msg);
  let contains needle haystack =
    let n = String.length needle in
    let h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "mentions blocking" true (contains "blocked forever" !got);
  check_bool "names main's wait site" true (contains "recv lonely" !got);
  check_bool "names the spawned thread's wait site" true
    (contains "recv orphan" !got)

let test_anonymous_blocked_counted () =
  (* Threads parked on unnamed channels must not vanish from the report. *)
  let got = ref "" in
  (try
     ignore
       (Sched.run_value (fun () ->
            let named = Mailbox.create ~name:"named" () in
            Sched.spawn (fun () -> ignore (Mailbox.recv (Mailbox.create ())));
            Sched.spawn (fun () -> ignore (Mailbox.recv (Mailbox.create ())));
            Mailbox.recv named))
   with Sched.Stuck msg -> got := msg);
  let sites = Sched.blocked_sites () in
  check_int "three waiters listed" 3 (List.length sites);
  check_int "two anonymous" 2
    (List.length (List.filter (( = ) "<anonymous>") sites));
  check_bool "report counts all three" true
    (let contains needle haystack =
       let n = String.length needle in
       let h = String.length haystack in
       let rec go i =
         i + n <= h && (String.sub haystack i n = needle || go (i + 1))
       in
       go 0
     in
     contains "3 thread(s) still waiting" !got
     && contains "<anonymous>" !got)

(* ------------------------------------------------------------------ *)
(* Scheduler policies *)

(* A little racy workload: several threads interleave appends to a log via
   yields; the final order is a fingerprint of the schedule. *)
let policy_fingerprint policy =
  let log = Buffer.create 64 in
  Sched.run ~policy (fun () ->
      for t = 1 to 4 do
        Sched.spawn (fun () ->
            for i = 1 to 3 do
              Buffer.add_string log (Printf.sprintf "%d.%d;" t i);
              Sched.yield ()
            done)
      done);
  Buffer.contents log

let test_policy_default_is_fifo () =
  (* No policy and an explicit Fifo must coincide, and Fifo records no
     decision log (its decisions are implied). *)
  let a = policy_fingerprint Sched.Fifo in
  let log = Buffer.create 64 in
  Sched.run (fun () ->
      for t = 1 to 4 do
        Sched.spawn (fun () ->
            for i = 1 to 3 do
              Buffer.add_string log (Printf.sprintf "%d.%d;" t i);
              Sched.yield ()
            done)
      done);
  Alcotest.(check string) "default = Fifo" a (Buffer.contents log);
  check_ints "fifo decision log empty" [] (Sched.decision_log ())

let test_seeded_random_deterministic () =
  let a = policy_fingerprint (Sched.Seeded_random 42) in
  let log_a = Sched.decision_log () in
  let b = policy_fingerprint (Sched.Seeded_random 42) in
  let log_b = Sched.decision_log () in
  Alcotest.(check string) "same seed, same schedule" a b;
  check_ints "same seed, same decision log" log_a log_b;
  check_bool "log non-trivial" true (List.exists (fun i -> i > 0) log_a);
  let c = policy_fingerprint (Sched.Seeded_random 43) in
  check_bool "different seed explores a different interleaving" true (a <> c)

let test_pct_deterministic () =
  let a = policy_fingerprint (Sched.Pct { seed = 7; depth = 3 }) in
  let b = policy_fingerprint (Sched.Pct { seed = 7; depth = 3 }) in
  Alcotest.(check string) "same seed, same schedule" a b;
  check_bool "pct differs from fifo on a racy workload" true
    (a <> policy_fingerprint Sched.Fifo)

let test_replay_reproduces () =
  let chaotic = policy_fingerprint (Sched.Seeded_random 99) in
  let log = Sched.decision_log () in
  let replayed = policy_fingerprint (Sched.Replay log) in
  Alcotest.(check string) "replaying the decision log reproduces" chaotic
    replayed;
  (* A truncated log replays its prefix and continues FIFO: still a valid
     run (same multiset of appends), just a different order. *)
  let prefix = List.filteri (fun i _ -> i < 3) log in
  let partial = policy_fingerprint (Sched.Replay prefix) in
  let sorted s = List.sort compare (String.split_on_char ';' s) in
  check_bool "prefix replay preserves the work" true
    (sorted partial = sorted chaotic)

let test_policy_virtual_time_independent () =
  (* Timers fire at the same virtual instants whatever the policy. *)
  let times policy =
    let log = ref [] in
    Sched.run ~policy (fun () ->
        for t = 1 to 3 do
          Sched.spawn (fun () ->
              Sched.sleep (float_of_int t);
              log := (t, Sched.now ()) :: !log)
        done);
    List.rev !log
  in
  let reference = times Sched.Fifo in
  List.iter
    (fun p ->
      Alcotest.(check (list (pair int (float 1e-9))))
        "virtual wakeups schedule-independent" reference (times p))
    [ Sched.Seeded_random 5; Sched.Pct { seed = 5; depth = 2 } ]

(* ------------------------------------------------------------------ *)
(* Mailbox *)

let test_mailbox_buffering () =
  let out =
    Sched.run_value (fun () ->
        let mb = Mailbox.create () in
        Mailbox.send mb 1;
        Mailbox.send mb 2;
        Mailbox.send mb 3;
        let a = Mailbox.recv mb in
        let b = Mailbox.recv mb in
        let c = Mailbox.recv mb in
        [ a; b; c ])
  in
  check_ints "FIFO buffer" [ 1; 2; 3 ] out

let test_mailbox_blocking_recv () =
  let got = ref None in
  Sched.run (fun () ->
      let mb = Mailbox.create () in
      Sched.spawn (fun () -> got := Some (Mailbox.recv mb));
      Sched.spawn (fun () -> Mailbox.send mb 99));
  check_int "blocked recv woken" 99 (Option.get !got)

let test_mailbox_multiple_readers_fifo () =
  let log = ref [] in
  Sched.run (fun () ->
      let mb = Mailbox.create () in
      let reader tag =
        Sched.spawn (fun () ->
            let v = Mailbox.recv mb in
            log := (tag, v) :: !log)
      in
      reader "r1";
      reader "r2";
      Sched.spawn (fun () ->
          Mailbox.send mb 1;
          Mailbox.send mb 2));
  Alcotest.(check (list (pair string int)))
    "readers served in arrival order"
    [ ("r1", 1); ("r2", 2) ]
    (List.rev !log)

let test_mailbox_recv_opt () =
  Sched.run (fun () ->
      let mb = Mailbox.create () in
      check_bool "empty" true (Mailbox.recv_opt mb = None);
      Mailbox.send mb 7;
      check_int "length" 1 (Mailbox.length mb);
      check_bool "nonempty" true (Mailbox.recv_opt mb = Some 7))

(* ------------------------------------------------------------------ *)
(* Chan *)

let test_chan_rendezvous () =
  let log = ref [] in
  Sched.run (fun () ->
      let ch = Chan.create () in
      Sched.spawn (fun () ->
          log := "sending" :: !log;
          Chan.send ch 5;
          log := "sent" :: !log);
      Sched.spawn (fun () ->
          let v = Chan.recv ch in
          log := Printf.sprintf "received %d" v :: !log));
  Alcotest.(check (list string))
    "send blocks until recv"
    [ "sending"; "received 5"; "sent" ]
    (List.rev !log)

let test_chan_recv_first () =
  let got = ref 0 in
  Sched.run (fun () ->
      let ch = Chan.create () in
      Sched.spawn (fun () -> got := Chan.recv ch);
      Sched.spawn (fun () -> Chan.send ch 11));
  check_int "recv-then-send" 11 !got

let test_chan_select () =
  let got = ref 0 in
  Sched.run (fun () ->
      let c1 = Chan.create () in
      let c2 = Chan.create () in
      Sched.spawn (fun () -> got := Chan.select_recv [ c1; c2 ]);
      Sched.spawn (fun () -> Chan.send c2 22));
  check_int "select picks ready channel" 22 !got

let test_chan_select_leaves_losers () =
  (* After a select_recv completes via c2, a later send on c1 must still be
     receivable by someone else (the dead waiter is skipped). *)
  let first = ref 0 in
  let second = ref 0 in
  Sched.run (fun () ->
      let c1 = Chan.create () in
      let c2 = Chan.create () in
      Sched.spawn (fun () -> first := Chan.select_recv [ c1; c2 ]);
      Sched.spawn (fun () -> Chan.send c2 1);
      Sched.spawn (fun () -> second := Chan.recv c1);
      Sched.spawn (fun () -> Chan.send c1 2));
  check_int "select got c2" 1 !first;
  check_int "later recv got c1" 2 !second

(* ------------------------------------------------------------------ *)
(* Multicast *)

let test_multicast_all_ports () =
  let r1 = ref [] in
  let r2 = ref [] in
  Sched.run (fun () ->
      let mc = Multicast.create () in
      let p1 = Multicast.port mc in
      let p2 = Multicast.port mc in
      let drain port cell =
        Sched.spawn (fun () ->
            let a = Multicast.recv port in
            let b = Multicast.recv port in
            cell := [ a; b ])
      in
      drain p1 r1;
      drain p2 r2;
      Multicast.send mc 1;
      Multicast.send mc 2);
  check_ints "port 1 sees all" [ 1; 2 ] !r1;
  check_ints "port 2 sees all" [ 1; 2 ] !r2

let test_multicast_late_port () =
  let late = ref [] in
  Sched.run (fun () ->
      let mc = Multicast.create () in
      let _early = Multicast.port mc in
      Multicast.send mc 1;
      let p = Multicast.port mc in
      Multicast.send mc 2;
      late := [ Multicast.recv p ]);
  check_ints "late port misses earlier sends" [ 2 ] !late;
  ()

let prop_pqueue_merge_contains_all =
  QCheck.Test.make ~name:"merge drains both queues" ~count:100
    QCheck.(pair (list small_int) (list small_int))
    (fun (xs, ys) ->
      let mk zs = Pqueue.of_list ~compare:Int.compare (List.map (fun z -> (z, ())) zs) in
      let merged = Pqueue.merge (mk xs) (mk ys) in
      List.map fst (Pqueue.to_sorted_list merged)
      = List.sort Int.compare (xs @ ys))

let test_port_length_counts_buffer () =
  Sched.run (fun () ->
      let mc = Multicast.create () in
      let p = Multicast.port mc in
      Multicast.send mc 1;
      Multicast.send mc 2;
      check_int "two buffered" 2 (Multicast.port_length p);
      ignore (Multicast.recv p);
      check_int "one left" 1 (Multicast.port_length p))

let test_multicast_port_count () =
  let mc = Multicast.create () in
  check_int "no ports" 0 (Multicast.port_count mc);
  let _p1 = Multicast.port mc in
  let _p2 = Multicast.port mc in
  check_int "two ports" 2 (Multicast.port_count mc)

(* Producer/consumer pipeline through mailboxes: end-to-end determinism. *)
let test_pipeline_determinism () =
  let run_once () =
    let log = ref [] in
    Sched.run (fun () ->
        let a = Mailbox.create () in
        let b = Mailbox.create () in
        Sched.spawn (fun () ->
            for i = 1 to 5 do
              Mailbox.send a i;
              Sched.sleep 0.1
            done);
        Sched.spawn (fun () ->
            let rec loop n =
              if n > 0 then begin
                let v = Mailbox.recv a in
                Mailbox.send b (v * 10);
                loop (n - 1)
              end
            in
            loop 5);
        Sched.spawn (fun () ->
            let rec loop n =
              if n > 0 then begin
                log := (Sched.now (), Mailbox.recv b) :: !log;
                loop (n - 1)
              end
            in
            loop 5));
    List.rev !log
  in
  let first = run_once () in
  let second = run_once () in
  check_bool "two runs identical" true (first = second);
  check_ints "values in order" [ 10; 20; 30; 40; 50 ] (List.map snd first)

let prop_scheduler_deterministic =
  QCheck.Test.make ~name:"scheduler deterministic under random sleeps"
    ~count:50
    QCheck.(list_of_size Gen.(1 -- 10) (pair (float_bound_exclusive 5.0) small_int))
    (fun jobs ->
      let run_once () =
        let log = ref [] in
        Sched.run (fun () ->
            List.iter
              (fun (d, v) ->
                Sched.spawn (fun () ->
                    Sched.sleep d;
                    log := v :: !log))
              jobs);
        List.rev !log
      in
      run_once () = run_once ())

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "cml"
    [
      ( "pqueue",
        [
          tc "basic" `Quick test_pqueue_basic;
          tc "sorted drain" `Quick test_pqueue_sorted;
          tc "merge" `Quick test_pqueue_merge;
          qt prop_pqueue_sorts;
          qt prop_pqueue_min_is_minimum;
        ] );
      ( "scheduler",
        [
          tc "run_value" `Quick test_run_value;
          tc "spawn FIFO" `Quick test_spawn_fifo;
          tc "yield interleaves" `Quick test_yield_interleaves;
          tc "virtual clock" `Quick test_virtual_clock;
          tc "sleep is virtual" `Quick test_sleep_is_virtual;
          tc "same-instant timers FIFO" `Quick test_same_instant_fifo;
          tc "now outside run" `Quick test_now_outside_run;
          tc "not running" `Quick test_not_running;
          tc "exceptions propagate" `Quick test_exception_propagates;
          tc "max switches" `Quick test_max_switches;
          tc "counters" `Quick test_run_counts;
          tc "blocked threads dropped" `Quick test_blocked_threads_dropped;
          tc "stuck main" `Quick test_run_value_stuck;
          tc "stuck main names sites" `Quick test_run_value_stuck_names_sites;
          tc "anonymous waiters counted" `Quick test_anonymous_blocked_counted;
          qt prop_scheduler_deterministic;
        ] );
      ( "policy",
        [
          tc "default is FIFO" `Quick test_policy_default_is_fifo;
          tc "seeded random deterministic" `Quick
            test_seeded_random_deterministic;
          tc "pct deterministic" `Quick test_pct_deterministic;
          tc "replay reproduces" `Quick test_replay_reproduces;
          tc "virtual time policy-independent" `Quick
            test_policy_virtual_time_independent;
        ] );
      ( "mailbox",
        [
          tc "buffering FIFO" `Quick test_mailbox_buffering;
          tc "blocking recv" `Quick test_mailbox_blocking_recv;
          tc "readers FIFO" `Quick test_mailbox_multiple_readers_fifo;
          tc "recv_opt/length" `Quick test_mailbox_recv_opt;
        ] );
      ( "chan",
        [
          tc "rendezvous" `Quick test_chan_rendezvous;
          tc "recv first" `Quick test_chan_recv_first;
          tc "select" `Quick test_chan_select;
          tc "select leaves losers" `Quick test_chan_select_leaves_losers;
        ] );
      ( "multicast",
        [
          tc "all ports" `Quick test_multicast_all_ports;
          tc "late port" `Quick test_multicast_late_port;
          tc "port count" `Quick test_multicast_port_count;
          tc "port length" `Quick test_port_length_counts_buffer;
          qt prop_pqueue_merge_contains_all;
          tc "pipeline determinism" `Quick test_pipeline_determinism;
        ] );
    ]
