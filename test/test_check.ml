(* Tests for the schedule-exploration harness (lib/check): clean programs
   survive many seeded interleavings with zero violations, the planted
   runtime mutations are caught (with a shrunk, replayable schedule
   prefix), per-source ordering across async boundaries holds while global
   ordering deliberately does not, and the FELM_SCHED_* replay plumbing
   parses. Runs in smoke proportions (~8 schedules per graph, fixed
   seeds); bench B15 runs the same matrix at >= 200 schedules. *)

module Explore = Elm_check.Explore
module Mutate = Elm_check.Mutate
module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module Sched = Cml.Scheduler

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let smoke_schedules = 8
let fixed_events = [ (true, 1); (false, 2); (true, 3); (true, 3); (false, 5); (true, 0); (false, 2); (true, 7) ]

let shape_program shape =
  Explore.program
    ~name:(Printf.sprintf "shape-%d" shape)
    ~deterministic:(Gen_graph.shape_deterministic shape)
    ~show:string_of_int
    (fun () ->
      let a, b, s = Gen_graph.build_shape shape in
      {
        Explore.root = s;
        drive =
          (fun rt ->
            List.iter
              (fun (left, v) -> Runtime.inject rt (if left then a else b) v)
              fixed_events);
      })

let report_str r = Format.asprintf "%a" Explore.pp_report r

(* ------------------------------------------------------------------ *)
(* Clean programs: zero violations across the shape catalogue *)

let test_clean_shapes_zero_violations () =
  for shape = 0 to Gen_graph.shape_count - 1 do
    let r =
      Explore.run ~schedules:smoke_schedules ~seed:(100 + shape)
        (shape_program shape)
    in
    if not (Explore.ok r) then
      Alcotest.failf "shape %d produced violations:\n%s" shape (report_str r)
  done

let test_clean_shapes_both_dispatches () =
  (* The explorer threads runtime options through: the same shapes stay
     clean under Flood, Sequential mode, and with supervision enabled. *)
  List.iter
    (fun shape ->
      List.iter
        (fun (mode, dispatch) ->
          let r =
            Explore.run ~schedules:4 ~seed:7 ~mode ~dispatch
              (shape_program shape)
          in
          if not (Explore.ok r) then
            Alcotest.failf "shape %d (%s) violations:\n%s" shape
              (match dispatch with
              | Runtime.Flood -> "flood"
              | Runtime.Cone -> "cone")
              (report_str r))
        Gen_graph.all_combos)
    [ 1; 4; 9 ]

let test_supervised_program_clean () =
  (* A program whose node crashes deterministically, supervised by
     Isolate: failures are value-driven, so chaos schedules must see the
     identical failure count and trace. *)
  let prog =
    Explore.program ~name:"supervised" ~show:string_of_int (fun () ->
        let x = Signal.input ~name:"x" 1 in
        let risky =
          Signal.lift ~name:"risky"
            (fun v -> if v mod 3 = 0 then failwith "boom" else v * 10)
            x
        in
        let root = Signal.foldp ~name:"sum" ( + ) 0 risky in
        {
          Explore.root;
          drive =
            (fun rt ->
              for i = 1 to 9 do
                Runtime.inject rt x i
              done);
        })
  in
  let r =
    Explore.run ~schedules:smoke_schedules ~seed:3
      ~on_node_error:Runtime.Isolate prog
  in
  if not (Explore.ok r) then Alcotest.failf "violations:\n%s" (report_str r)

(* ------------------------------------------------------------------ *)
(* Async: per-source order holds; global order genuinely varies *)

(* Two async sources with disjoint value ranges merged at the root: class
   0 events carry values < 1000, class 1 events >= 1000. The projection of
   the change trace onto each class must match FIFO exactly; the global
   interleaving of the two classes is schedule-dependent by design. *)
let async_merge_program () =
  Explore.program ~name:"async-merge" ~deterministic:false
    ~classify:(fun v -> Some (if v < 1000 then 0 else 1))
    ~show:string_of_int
    (fun () ->
      let a = Signal.input ~name:"a" 0 in
      let b = Signal.input ~name:"b" 1000 in
      let left = Signal.async (Signal.lift (fun x -> x + 1) a) in
      let right = Signal.async (Signal.lift (fun x -> x + 1000) b) in
      let root = Signal.merge left right in
      {
        Explore.root;
        drive =
          (fun rt ->
            for i = 1 to 6 do
              Runtime.inject rt a (10 * i);
              Runtime.inject rt b (10 * i)
            done);
      })

let test_async_per_source_order () =
  let r =
    Explore.run ~schedules:(2 * smoke_schedules) ~seed:11
      (async_merge_program ())
  in
  if not (Explore.ok r) then Alcotest.failf "violations:\n%s" (report_str r)

let test_async_global_order_varies () =
  (* Sanity for the DESIGN note: if we (wrongly) demanded full trace
     equality of an async program, chaos schedules would fail it — the
     invariant must be per-source, not global. *)
  let prog_strict =
    Explore.program ~name:"async-strict" ~deterministic:true
      ~show:string_of_int
      (fun () ->
        let a = Signal.input ~name:"a" 0 in
        let b = Signal.input ~name:"b" 1000 in
        let left = Signal.async (Signal.lift (fun x -> x + 1) a) in
        let right = Signal.async (Signal.lift (fun x -> x + 1000) b) in
        let root = Signal.merge left right in
        {
          Explore.root;
          drive =
            (fun rt ->
              for i = 1 to 6 do
                Runtime.inject rt a (10 * i);
                Runtime.inject rt b (10 * i)
              done);
        })
  in
  let r = Explore.run ~schedules:(2 * smoke_schedules) ~seed:11 prog_strict in
  check_bool "global trace equality fails across async boundaries" false
    (Explore.ok r);
  (* and every such violation is replayable *)
  List.iter
    (fun v ->
      check_bool "replay hint names a seed" true
        (String.length (Explore.replay_hint v) > 0))
    r.Explore.r_violations

(* ------------------------------------------------------------------ *)
(* Planted mutations are caught, with shrunk prefixes printed *)

let test_mutations_caught () =
  let results = Mutate.catches ~schedules:2 ~seed:5 () in
  check_int "three planted mutations" 3 (List.length results);
  List.iter
    (fun ({ Mutate.name; _ }, report) ->
      if Explore.ok report then
        Alcotest.failf "planted mutation %s was NOT caught" name;
      (* the report must print a shrunk prefix and a replay line *)
      let s = report_str report in
      let contains needle =
        let n = String.length needle and h = String.length s in
        let rec go i =
          i + n <= h && (String.sub s i n = needle || go (i + 1))
        in
        go 0
      in
      check_bool "prints shrunk prefix" true
        (contains "shrunk schedule prefix");
      check_bool "prints replay guidance" true
        (contains "replay" || contains "FIFO"))
    results

let test_victim_clean_without_mutation () =
  let r = Explore.run ~schedules:smoke_schedules ~seed:5 (Mutate.victim ()) in
  if not (Explore.ok r) then
    Alcotest.failf "victim without mutation should be clean:\n%s"
      (report_str r)

let test_explorer_deterministic () =
  (* Same program, same seed: identical report. The whole point is
     replayability. *)
  let run () =
    Explore.run ~schedules:6 ~seed:21 ~mutate:(Runtime.Skip_epoch 9)
      (Mutate.victim ())
  in
  let a = run () and b = run () in
  check_bool "two explorations identical" true
    (report_str a = report_str b)

(* ------------------------------------------------------------------ *)
(* Replay plumbing *)

let test_policy_of_env () =
  Unix.putenv "FELM_SCHED_SEED" "12";
  check_bool "seed parsed" true
    (Explore.policy_of_env () = Some (Sched.Seeded_random 12));
  Unix.putenv "FELM_SCHED_SEED" "nonsense";
  Unix.putenv "FELM_SCHED_PCT" "3:4";
  check_bool "malformed seed falls through to pct" true
    (Explore.policy_of_env () = Some (Sched.Pct { seed = 3; depth = 4 }));
  Unix.putenv "FELM_SCHED_PCT" "3:4:5";
  check_bool "malformed pct ignored" true (Explore.policy_of_env () = None);
  (* leave the environment inert for any later with_world user *)
  Unix.putenv "FELM_SCHED_PCT" "";
  Unix.putenv "FELM_SCHED_SEED" ""

let test_env_policy_drives_suite_harness () =
  (* The printed FELM_SCHED_SEED really changes how with_world schedules:
     a deterministic shape keeps its trace; the scheduler visibly explores
     (decision log non-trivial). *)
  Unix.putenv "FELM_SCHED_SEED" "77";
  let chaos = Gen_graph.run_shape 1 fixed_events in
  let log = Sched.decision_log () in
  Unix.putenv "FELM_SCHED_SEED" "";
  let fifo = Gen_graph.run_shape 1 fixed_events in
  check_bool "seeded harness run explored a non-FIFO schedule" true
    (List.exists (fun i -> i > 0) log);
  check_bool "deterministic shape keeps its trace under the seed" true
    (Runtime.changes chaos = Runtime.changes fifo)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "check"
    [
      ( "clean",
        [
          tc "shapes: zero violations" `Quick test_clean_shapes_zero_violations;
          tc "mode x dispatch matrix" `Quick test_clean_shapes_both_dispatches;
          tc "supervised program" `Quick test_supervised_program_clean;
        ] );
      ( "async",
        [
          tc "per-source order holds" `Quick test_async_per_source_order;
          tc "global order varies (by design)" `Quick
            test_async_global_order_varies;
        ] );
      ( "mutations",
        [
          tc "all three caught" `Quick test_mutations_caught;
          tc "victim clean without mutation" `Quick
            test_victim_clean_without_mutation;
          tc "explorer deterministic" `Quick test_explorer_deterministic;
        ] );
      ( "replay",
        [
          tc "policy_of_env parses" `Quick test_policy_of_env;
          tc "env seed drives the suite harness" `Quick
            test_env_policy_drives_suite_harness;
        ] );
    ]
