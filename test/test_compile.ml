(* Tests for the compiled backend (Elm_core.Compile): synchronous regions
   between async/delay boundaries compiled to straight-line step functions.
   The compiled runtime must be observationally identical to the pipelined
   one across the whole shape catalogue x mode x dispatch x fusion matrix,
   region partitioning must cover the graph exactly, arena state must be
   fresh per runtime, and the accounting/tracing surfaces must report
   regions instead of stale per-member rows. The schedule explorer and the
   planted-mutation coverage suite both run against the compiled backend. *)

module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime
module Event = Elm_core.Event
module Stats = Elm_core.Stats
module Compile = Elm_core.Compile
module Fuse = Elm_core.Fuse
module Trace = Elm_core.Trace
module Explore = Elm_check.Explore
module Mutate = Elm_check.Mutate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))

let with_world body = Gen_graph.with_world body
let values = Gen_graph.values

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Randomized compiled-vs-pipelined trace equivalence over the shared
   Gen_graph catalogue, across mode x dispatch and with fusion both on and
   off. Chain functions are injective and cost no virtual time, so the
   compiled backend must be bit-identical: same change values, same virtual
   times, same display message log. *)

let equivalent shape events (mode, dispatch) fuse =
  let pipelined =
    Gen_graph.run_shape ~backend:Runtime.Pipelined ~fuse ~mode ~dispatch shape
      events
  in
  let compiled =
    Gen_graph.run_shape ~backend:Runtime.Compiled ~fuse ~mode ~dispatch shape
      events
  in
  let log_p = Runtime.message_log pipelined in
  let log_c = Runtime.message_log compiled in
  Runtime.changes pipelined = Runtime.changes compiled
  && Runtime.current pipelined = Runtime.current compiled
  && List.length log_p = List.length log_c
  && List.for_all2 Gen_graph.entry_equal log_p log_c

let prop_compiled_equals_pipelined =
  QCheck.Test.make
    ~name:"compiled: identical changes/current/log across mode x dispatch x \
           fuse"
    ~count:40 Gen_graph.arb_shape_events
    (fun (shape, events) ->
      List.for_all
        (fun combo ->
          List.for_all (equivalent shape events combo) [ false; true ])
        Gen_graph.all_combos)

(* The elision invariant holds for the compiled backend too: the root's
   display emission is the only real message, everything else is accounted
   as elided, and the per-event sum still equals node_count. *)
let prop_compiled_accounting =
  QCheck.Test.make ~name:"compiled: messages + elided = nodes * events"
    ~count:40 Gen_graph.arb_shape_events
    (fun (shape, events) ->
      let rt =
        Gen_graph.run_shape ~backend:Runtime.Compiled shape events
      in
      let st = Runtime.stats rt in
      st.Stats.messages + st.Stats.elided_messages
      = Runtime.node_count rt * st.Stats.events)

(* ------------------------------------------------------------------ *)
(* Region partitioning units *)

let test_pure_graph_single_region () =
  let a = Signal.input ~name:"a" 0 in
  let b = Signal.input ~name:"b" 0 in
  let root = Signal.foldp ( + ) 0 (Signal.lift2 ( + ) a b) in
  let plan = Compile.plan root in
  check_int "one region" 1 (List.length (Compile.regions plan));
  check_int "no cut edges" 0 (List.length (Compile.cuts plan));
  let rg = List.hd (Compile.regions plan) in
  check_int "all four nodes are members" 4 (List.length rg.Compile.rg_members)

let test_async_graph_two_regions () =
  let a = Signal.input ~name:"a" 0 in
  let b = Signal.input ~name:"b" 0 in
  let inner = Signal.lift succ b in
  let root = Signal.lift2 ( + ) a (Signal.async inner) in
  let plan = Compile.plan root in
  check_int "two regions" 2 (List.length (Compile.regions plan));
  check_int "one cut edge" 1 (List.length (Compile.cuts plan));
  let inner_id = Signal.id inner in
  let cut_inner, _ = List.hd (Compile.cuts plan) in
  check_int "the cut edge leaves the async's inner node" inner_id cut_inner;
  (* b and its lift are one region; a, the async source and the root the
     other. The async node belongs to the downstream region: its mailbox is
     a source for the region that reads it. *)
  let region_idx id = Option.get (Compile.region_of plan id) in
  check_bool "inner chain separated from the consumer" true
    (region_idx (Signal.id b) <> region_idx (Signal.id root));
  check_bool "async node lives with its consumer" true
    (region_idx (Signal.id root) <> region_idx inner_id)

let test_partition_covers_every_shape () =
  for shape = 0 to Gen_graph.shape_count - 1 do
    let _, _, s = Gen_graph.build_shape shape in
    let root = Fuse.fuse s in
    let plan = Compile.plan root in
    let all = Signal.reachable root in
    (* every node is in exactly one region *)
    List.iter
      (fun (Signal.Pack n) ->
        match Compile.region_of plan (Signal.id n) with
        | None ->
          Alcotest.failf "shape %d: node %d in no region" shape (Signal.id n)
        | Some _ -> ())
      all;
    let member_total =
      List.fold_left
        (fun acc rg -> acc + List.length rg.Compile.rg_members)
        0 (Compile.regions plan)
    in
    check_int
      (Printf.sprintf "shape %d: members partition the graph" shape)
      (List.length all) member_total;
    (* the representative is a member of its own region *)
    List.iter
      (fun rg ->
        check_bool
          (Printf.sprintf "shape %d: rep is a member" shape)
          true
          (List.mem rg.Compile.rg_rep rg.Compile.rg_member_ids))
      (Compile.regions plan)
  done

let test_compiled_dot_shows_regions () =
  let a = Signal.input ~name:"a" 0 in
  let b = Signal.input ~name:"b" 0 in
  let root = Signal.lift2 ( + ) a (Signal.async (Signal.lift succ b)) in
  let dot = Compile.to_dot ~label:"regions" root in
  check_bool "has a cluster per region" true
    (contains dot "cluster_region_0" && contains dot "cluster_region_1");
  check_bool "clusters are dashed" true (contains dot "style=dashed";);
  check_bool "dispatcher re-entry edge drawn" true
    (contains dot "new event")

(* ------------------------------------------------------------------ *)
(* Arena state: foldp accumulators live in generation-stamped cells, so a
   second runtime over the same nodes must start from the defaults. *)

let test_foldp_state_fresh_per_runtime () =
  let a = Signal.input ~name:"a" 0 in
  let root = Signal.foldp ( + ) 0 (Signal.lift succ a) in
  let drive () =
    with_world (fun () ->
        let rt = Runtime.start ~backend:Runtime.Compiled root in
        List.iter (fun v -> Runtime.inject rt a v) [ 1; 2; 3 ];
        rt)
  in
  let first = drive () in
  check_ints "first run accumulates" [ 2; 5; 9 ] (values first);
  let second = drive () in
  check_ints "second runtime starts from the default accumulator"
    [ 2; 5; 9 ] (values second)

(* ------------------------------------------------------------------ *)
(* Stats and tracing surfaces *)

let test_stats_report_regions () =
  let run backend =
    Gen_graph.run_shape ~backend 10 [ (true, 1); (false, 2); (true, 3) ]
  in
  let compiled = Runtime.stats (run Runtime.Compiled) in
  let pipelined = Runtime.stats (run Runtime.Pipelined) in
  check_bool "compiled regions counted" true
    (compiled.Stats.compiled_regions >= 2);
  check_bool "region steps counted" true (compiled.Stats.region_steps > 0);
  check_int "pipelined reports no regions" 0 pipelined.Stats.compiled_regions;
  let pp st = Format.asprintf "%a" Stats.pp st in
  check_bool "compiled pp shows regions" true (contains (pp compiled) "regions=");
  check_bool "pipelined pp omits regions" true
    (not (contains (pp pipelined) "regions="))

let test_trace_reports_region_rows () =
  let tracer = Trace.create () in
  let _rt =
    with_world (fun () ->
        let a = Signal.input ~name:"a" 0 in
        let b = Signal.input ~name:"b" 0 in
        let root =
          Signal.lift2 ~name:"join" ( + ) (Signal.lift ~name:"inc" succ a)
            (Signal.async (Signal.lift ~name:"dbl" (fun x -> x * 2) b))
        in
        let rt = Runtime.start ~backend:Runtime.Compiled ~tracer root in
        List.iter (fun v -> Runtime.inject rt a v) [ 1; 2 ];
        Runtime.inject rt b 5;
        rt)
  in
  let s = Trace.summary tracer in
  check_bool "at least one region row" true (List.length s.Trace.nodes >= 1);
  List.iter
    (fun ns ->
      check_bool
        (Printf.sprintf "row %s is a region" ns.Trace.node_name)
        true
        (String.length ns.Trace.node_name >= 7
        && String.sub ns.Trace.node_name 0 7 = "region:");
      check_bool
        (Printf.sprintf "row %s processed rounds (no stale zero rows)"
           ns.Trace.node_name)
        true (ns.Trace.rounds > 0))
    s.Trace.nodes

(* memoize:false is the pull-style baseline that re-runs steps on quiescent
   rounds — incompatible with the dirty-bit skip, so the compiled backend
   silently falls back to pipelined, like fusion does. *)
let test_memoize_false_falls_back () =
  let rt =
    with_world (fun () ->
        let a = Signal.input ~name:"a" 0 in
        let root = Signal.lift succ a in
        let rt =
          Runtime.start ~backend:Runtime.Compiled ~memoize:false root
        in
        Runtime.inject rt a 1;
        rt)
  in
  check_int "no compiled regions under memoize:false" 0
    (Runtime.stats rt).Stats.compiled_regions;
  check_ints "still runs" [ 2 ] (values rt)

(* ------------------------------------------------------------------ *)
(* Plan cache: compiling a graph shape is paid once; later runtimes over
   the same built graph reuse the cached plan (keyed on the fused root, so
   Runtime.start's default fusion still hits). Clearing the cache forces a
   recompile that must be observationally invisible. *)

let test_plan_cache_hit_across_runtimes () =
  let a = Signal.input ~name:"a" 0 in
  let root = Signal.foldp ( + ) 0 (Signal.lift succ a) in
  let drive () =
    with_world (fun () ->
        let rt = Runtime.start ~backend:Runtime.Compiled root in
        List.iter (fun v -> Runtime.inject rt a v) [ 1; 2; 3 ];
        rt)
  in
  Compile.clear_plan_cache ();
  let before = Compile.plan_cache_stats () in
  let first = drive () in
  let after_first = Compile.plan_cache_stats () in
  check_bool "first start compiles the plan (a miss)" true
    (after_first.Compile.misses > before.Compile.misses);
  let second = drive () in
  let after_second = Compile.plan_cache_stats () in
  check_bool "second start over the same graph hits the cache" true
    (after_second.Compile.hits > after_first.Compile.hits);
  check_int "no second compile" after_first.Compile.misses
    after_second.Compile.misses;
  check_bool "cache hit is observationally invisible" true
    (Runtime.changes first = Runtime.changes second);
  Compile.clear_plan_cache ();
  let third = drive () in
  let after_third = Compile.plan_cache_stats () in
  check_bool "cleared cache recompiles" true
    (after_third.Compile.misses > after_second.Compile.misses);
  check_bool "bit-identical traces after the recompile" true
    (Runtime.changes first = Runtime.changes third)

let test_plan_cache_shares_plan_object () =
  let a = Signal.input ~name:"a" 0 in
  let root = Signal.lift2 ( + ) (Signal.lift succ a) (Signal.input ~name:"b" 0) in
  Compile.clear_plan_cache ();
  let p1 = Compile.plan_of root in
  let p2 = Compile.plan_of root in
  check_bool "same physical plan for the same built graph" true (p1 == p2);
  check_bool "cache reports the entry" true
    ((Compile.plan_cache_stats ()).Compile.entries >= 1)

(* Concurrent compilation: several domains hammer graph construction,
   fusion memoisation and the plan cache at once. On the pre-Mutex code
   this crashed or corrupted state three separate ways — torn [fresh_id]
   increments handing two nodes one id (poisoning both memo keys),
   unguarded [node_fused] publication, and racing Hashtbl writes inside
   the bounded cache (including full [reset] churn past its capacity).
   Each domain also re-resolves a shared graph's plan repeatedly: every
   resolution must return the one canonical (physically equal) plan. *)
let test_plan_cache_concurrent_compile () =
  Compile.clear_plan_cache ();
  let shared_in = Signal.input ~name:"shared" 0 in
  let shared = Signal.foldp ( + ) 0 (Signal.lift succ shared_in) in
  let shared_fused = Fuse.fuse_cached shared in
  let canonical = Compile.plan_of shared_fused in
  let failures = Atomic.make 0 in
  let per_domain = 300 (* > max_cached_plans: forces reset churn *) in
  let worker () =
    for i = 1 to per_domain do
      (* a fresh small graph: exercises fresh_id + fuse + plan build *)
      let x = Signal.input ~name:"x" 0 in
      let root =
        Signal.lift2 ( + )
          (Signal.lift (fun v -> (v * 3) + i) x)
          (Signal.drop_repeats (Signal.lift (fun v -> v / 2) x))
      in
      let fused = Fuse.fuse_cached root in
      let pl = Compile.plan_of fused in
      if Compile.plan_of fused != pl then Atomic.incr failures;
      (* the fusion memo must publish exactly one fused root *)
      if Fuse.fuse_cached root != fused then Atomic.incr failures;
      (* the shared graph's plan stays canonical under cross-domain races
         (unless the bounded cache reset evicted it, in which case the
         fresh plan must itself be stable) *)
      let p = Compile.plan_of shared_fused in
      if Compile.plan_of shared_fused != p then Atomic.incr failures;
      ignore canonical
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  check_int "no torn plans or memo races" 0 (Atomic.get failures);
  (* distinct graphs got distinct node ids: the shared plan still resolves
     and drives a runtime correctly after the storm *)
  let rt =
    with_world (fun () ->
        let rt = Runtime.start ~backend:Runtime.Compiled shared_fused in
        List.iter (fun v -> Runtime.inject rt shared_in v) [ 1; 2 ];
        rt)
  in
  check_ints "shared graph still correct after concurrent churn" [ 2; 5 ]
    (values rt)

(* Regression: [clear_plan_cache] used to leave the [Fuse.fuse_cached]
   memos behind. A memoised fused root then outlived its plan, so the next
   [fuse_cached] hit handed back the stale root and [plan_of] silently
   repopulated the cache for it — and a live upgrade diffing "old plan vs
   new plan" could see the same physical objects on both sides. Clearing
   must drop both together. *)
let test_clear_plan_cache_clears_fuse_memos () =
  Compile.clear_plan_cache ();
  let a = Signal.input ~name:"a" 0 in
  let root =
    Signal.foldp ( + ) 0 (Signal.lift succ (Signal.lift succ (Signal.lift succ a)))
  in
  let fused1 = Fuse.fuse_cached root in
  check_bool "fusion actually rewrote the chain" true (fused1 != root);
  check_bool "memo stable before the clear" true
    (Fuse.fuse_cached root == fused1);
  let p1 = Compile.plan_of fused1 in
  Compile.clear_plan_cache ();
  check_bool "fusion memo fell with the plan cache" true
    (Fuse.fuse_cached root != fused1);
  let fused2 = Fuse.fuse_cached root in
  check_bool "plan recompiled fresh for the re-fused root" true
    (Compile.plan_of fused2 != p1)

(* ------------------------------------------------------------------ *)
(* Schedule exploration: the compiled backend's region threads interleave
   under the same chaos schedules, and every invariant must hold. *)

let explore_deterministic () =
  Explore.program ~name:"compiled-deterministic" ~show:string_of_int
    (fun () ->
      let a = Signal.input ~name:"a" 0 in
      let b = Signal.input ~name:"b" 0 in
      let joined =
        Signal.lift2 (fun x y -> (x * 31) + y)
          (Signal.drop_repeats (Signal.lift (fun x -> x / 2) a))
          (Signal.foldp ( + ) 0 b)
      in
      let root = Signal.foldp ( + ) 0 joined in
      {
        Explore.root;
        drive =
          (fun rt ->
            for i = 1 to 6 do
              Runtime.inject rt (if i mod 2 = 0 then b else a) i
            done);
      })

let explore_async () =
  Explore.program ~name:"compiled-async" ~deterministic:false
    ~classify:(fun v -> Some (v mod 2))
    ~show:string_of_int
    (fun () ->
      let a = Signal.input ~name:"a" 0 in
      let b = Signal.input ~name:"b" 1 in
      let root =
        Signal.merge
          (Signal.lift (fun x -> 2 * x) a)
          (Signal.async (Signal.lift (fun x -> (2 * x) + 1) b))
      in
      {
        Explore.root;
        drive =
          (fun rt ->
            for i = 1 to 4 do
              Runtime.inject rt a i;
              Runtime.inject rt b i
            done);
      })

let test_explore_compiled_deterministic () =
  let report =
    Explore.run ~backend:Runtime.Compiled ~schedules:12
      (explore_deterministic ())
  in
  if not (Explore.ok report) then
    Alcotest.failf "%s" (Format.asprintf "%a" Explore.pp_report report)

let test_explore_compiled_async () =
  let report =
    Explore.run ~backend:Runtime.Compiled ~schedules:12 (explore_async ())
  in
  if not (Explore.ok report) then
    Alcotest.failf "%s" (Format.asprintf "%a" Explore.pp_report report)

let test_mutations_caught_compiled () =
  check_bool "every planted mutation caught under the compiled backend" true
    (Mutate.all_caught ~backend:Runtime.Compiled ~schedules:2 ())

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "compile"
    [
      ( "equivalence",
        [ qc prop_compiled_equals_pipelined; qc prop_compiled_accounting ] );
      ( "partition",
        [
          tc "pure graph is one region" `Quick test_pure_graph_single_region;
          tc "async boundary splits regions" `Quick
            test_async_graph_two_regions;
          tc "partition covers every catalogue shape" `Quick
            test_partition_covers_every_shape;
          tc "dot renders region clusters" `Quick
            test_compiled_dot_shows_regions;
        ] );
      ( "arena",
        [
          tc "foldp state fresh per runtime" `Quick
            test_foldp_state_fresh_per_runtime;
        ] );
      ( "reporting",
        [
          tc "stats count regions and steps" `Quick test_stats_report_regions;
          tc "trace rows are regions, never stale members" `Quick
            test_trace_reports_region_rows;
          tc "memoize:false falls back to pipelined" `Quick
            test_memoize_false_falls_back;
        ] );
      ( "plan-cache",
        [
          tc "second runtime over one graph hits the cache" `Quick
            test_plan_cache_hit_across_runtimes;
          tc "plan_of shares one plan object" `Quick
            test_plan_cache_shares_plan_object;
          tc "concurrent compile storm stays canonical" `Quick
            test_plan_cache_concurrent_compile;
          tc "clear_plan_cache drops the fusion memos too" `Quick
            test_clear_plan_cache_clears_fuse_memos;
        ] );
      ( "explore",
        [
          tc "deterministic program clean under chaos" `Quick
            test_explore_compiled_deterministic;
          tc "async program clean under chaos" `Quick
            test_explore_compiled_async;
          tc "planted mutations still caught" `Quick
            test_mutations_caught_compiled;
        ] );
    ]
