(* End-to-end tests of the felmc command-line tool: the four subcommands
   against the shipped example programs, plus error reporting and exit
   codes. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let felmc =
  if Sys.file_exists "../bin/felmc.exe" then "../bin/felmc.exe"
  else "_build/default/bin/felmc.exe"

let examples_dir =
  if Sys.file_exists "../examples/felm/mouse.felm" then "../examples/felm/"
  else "examples/felm/"

let run_cmd args =
  let out_file = Filename.temp_file "felmc" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" felmc (String.concat " " args) out_file
  in
  let code = Sys.command cmd in
  let ic = open_in_bin out_file in
  let output =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove out_file)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, output)

let contains hay needle =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_check () =
  let code, out = run_cmd [ "check"; examples_dir ^ "mouse.felm" ] in
  check_int "exit 0" 0 code;
  check_bool "prints the type" true (contains out "signal string")

let test_check_type_error () =
  let bad = Filename.temp_file "bad" ".felm" in
  let oc = open_out bad in
  output_string oc "main = lift (\\x -> Mouse.y) Mouse.x\n";
  close_out oc;
  let code, out = run_cmd [ "check"; bad ] in
  Sys.remove bad;
  check_bool "nonzero exit" true (code <> 0);
  check_bool "reports a type error" true (contains out "Type error")

let test_check_syntax_error () =
  let bad = Filename.temp_file "bad" ".felm" in
  let oc = open_out bad in
  output_string oc "main = (1 +\n";
  close_out oc;
  let code, out = run_cmd [ "check"; bad ] in
  Sys.remove bad;
  check_bool "nonzero exit" true (code <> 0);
  check_bool "reports a syntax error with location" true
    (contains out "Syntax error" && contains out "line")

let test_run_with_replay () =
  let code, out =
    run_cmd
      [ "run"; examples_dir ^ "counter.felm"; "--replay"; examples_dir ^ "counter.trace" ]
  in
  check_int "exit 0" 0 code;
  check_bool "timestamped displays" true
    (contains out "[   0.100] 1" && contains out "[   0.300] 3")

let test_run_sequential_and_stats () =
  let code, out =
    run_cmd
      [
        "run"; examples_dir ^ "mouse.felm"; "--replay";
        examples_dir ^ "mouse.trace"; "--sequential"; "--stats";
      ]
  in
  check_int "exit 0" 0 code;
  check_bool "stats printed" true (contains out "events=");
  check_bool "same outputs as pipelined" true (contains out "(30, 9)")

let test_run_trace_export () =
  let trace_json = Filename.temp_file "felmc" ".json" in
  let code, out =
    run_cmd
      [
        "run"; examples_dir ^ "counter.felm"; "--replay";
        examples_dir ^ "counter.trace"; "--trace"; trace_json;
      ]
  in
  check_int "exit 0" 0 code;
  check_bool "reports the trace file" true (contains out "trace: wrote");
  check_bool "prints the latency summary" true (contains out "p95");
  let ic = open_in_bin trace_json in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove trace_json;
  (* The file must be valid Chrome trace-event JSON: parseable by our own
     parser, with a nonempty traceEvents array of pid/ph-tagged events. *)
  let doc = Json.parse text in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Array evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing or not an array"
  in
  check_bool "nonempty traceEvents" true (List.length events > 0);
  List.iter
    (fun ev ->
      check_bool "event has ph" true (Option.is_some (Json.member "ph" ev));
      check_bool "event has pid" true (Option.is_some (Json.member "pid" ev)))
    events;
  check_bool "node spans present" true
    (List.exists
       (fun ev -> Json.member "ph" ev = Some (Json.String "B"))
       events)

let test_compile_html_and_js () =
  let out_html = Filename.temp_file "out" ".html" in
  let code, _ = run_cmd [ "compile"; examples_dir ^ "mouse.felm"; "-o"; out_html ] in
  check_int "compile exit 0" 0 code;
  let ic = open_in_bin out_html in
  let html = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out_html;
  check_bool "html page" true (contains html "<!DOCTYPE html>");
  check_bool "runtime embedded" true (contains html "var ElmRuntime");
  let code, js = run_cmd [ "compile"; examples_dir ^ "mouse.felm"; "--js" ] in
  check_int "js exit 0" 0 code;
  check_bool "plain js, no html" true
    (contains js "R.display(G, main)" && not (contains js "<!DOCTYPE"))

let test_graph_dot () =
  let code, dot = run_cmd [ "graph"; examples_dir ^ "wordpairs.felm" ] in
  check_int "exit 0" 0 code;
  check_bool "digraph" true (contains dot "digraph felm");
  check_bool "dispatcher present" true (contains dot "Global Event")

(* None of the shipped examples contain a >=2-lift stateless chain, so the
   fusion CLI tests synthesize one. *)
let write_tmp suffix text =
  let path = Filename.temp_file "fuse" suffix in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  path

let chain_src =
  "input n : signal int = 0\n\
   main = lift (\\x -> x + 1) (lift (\\x -> x * 2) (lift (\\x -> x + 3) n))\n"

let chain_trace = "0.1 n 5\n0.2 n 7\n"

let display_lines out =
  String.split_on_char '\n' out
  |> List.filter (fun l -> String.length l > 0 && l.[0] = '[')

let test_run_no_fuse_identical () =
  let felm = write_tmp ".felm" chain_src in
  let trace = write_tmp ".trace" chain_trace in
  let code_on, out_on = run_cmd [ "run"; felm; "--replay"; trace; "--stats" ] in
  let code_off, out_off =
    run_cmd [ "run"; felm; "--replay"; trace; "--stats"; "--no-fuse" ]
  in
  Sys.remove felm;
  Sys.remove trace;
  check_int "exit 0 (default)" 0 code_on;
  check_int "exit 0 (--no-fuse)" 0 code_off;
  check_bool "default run fused the chain" true (contains out_on "fused=2");
  check_bool "--no-fuse fused nothing" true (contains out_off "fused=0");
  Alcotest.(check (list string))
    "timestamped displays identical" (display_lines out_off)
    (display_lines out_on)

let test_graph_fused () =
  let felm = write_tmp ".felm" chain_src in
  let code, dot = run_cmd [ "graph"; felm; "--fused" ] in
  let code_plain, plain = run_cmd [ "graph"; felm ] in
  Sys.remove felm;
  check_int "exit 0" 0 code;
  check_bool "composite drawn as one box" true (contains dot "box3d");
  check_bool "chain collapsed into it" true
    (contains dot "lift\u{2218}lift\u{2218}lift"
    && contains dot "(3 nodes fused)");
  check_int "plain graph still works" 0 code_plain;
  check_bool "plain graph has no composites" true (not (contains plain "box3d"));
  let pure = write_tmp ".felm" "main = 1 + 2\n" in
  let code_pure, err = run_cmd [ "graph"; pure; "--fused" ] in
  Sys.remove pure;
  check_bool "--fused rejects non-reactive programs" true (code_pure <> 0);
  check_bool "with a diagnostic" true (contains err "not a reactive")

let test_missing_file () =
  let code, _ = run_cmd [ "check"; "no_such_file.felm" ] in
  check_bool "nonzero exit for missing file" true (code <> 0)

let test_bad_trace () =
  let bad = Filename.temp_file "bad" ".trace" in
  let oc = open_out bad in
  output_string oc "0.5 Mouse.x \"not an int\"\n";
  close_out oc;
  let code, out =
    run_cmd [ "run"; examples_dir ^ "mouse.felm"; "--replay"; bad ]
  in
  Sys.remove bad;
  check_bool "nonzero exit" true (code <> 0);
  check_bool "trace error reported" true (contains out "Trace error")

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "cli"
    [
      ( "felmc",
        [
          tc "check" `Quick test_check;
          tc "check type error" `Quick test_check_type_error;
          tc "check syntax error" `Quick test_check_syntax_error;
          tc "run with replay" `Quick test_run_with_replay;
          tc "run sequential + stats" `Quick test_run_sequential_and_stats;
          tc "run --trace chrome export" `Quick test_run_trace_export;
          tc "compile html/js" `Quick test_compile_html_and_js;
          tc "graph dot" `Quick test_graph_dot;
          tc "run --no-fuse identical" `Quick test_run_no_fuse_identical;
          tc "graph --fused" `Quick test_graph_fused;
          tc "missing file" `Quick test_missing_file;
          tc "bad trace" `Quick test_bad_trace;
        ] );
    ]
