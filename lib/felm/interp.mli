(** Stage two: running extracted signal graphs on the concurrent runtime.

    This is the executable form of the paper's Fig. 10 translation: each
    {!Sgraph} node becomes an {!Elm_core.Signal} node (one thread, one
    output channel), the program's inputs become injectable sources, and a
    {!Trace} plays the external environment on the virtual clock. *)

type outcome = {
  displays : (float * Value.t) list;
      (** Every change shown by the display loop, with virtual times. *)
  final : Value.t;  (** Last displayed value (or the pure result). *)
  stats : Elm_core.Stats.t option;  (** [None] for non-reactive programs. *)
  skipped_events : int;
      (** Trace events naming inputs the program never uses. *)
}

val build_signals :
  Program.t -> Sgraph.t -> (int, Value.t Elm_core.Signal.t) Hashtbl.t
(** Instantiate the extracted graph as engine signal nodes (every [lift]
    becomes {!Elm_core.Signal.lift_list}), keyed by {!Sgraph} node id.
    Exposed so tools (e.g. [felmc graph --fused]) can inspect or render the
    signal graph without running it. *)

val run :
  ?policy:Cml.Scheduler.policy ->
  ?backend:Elm_core.Runtime.backend ->
  ?mode:Elm_core.Runtime.mode ->
  ?memoize:bool ->
  ?tracer:Elm_core.Trace.t ->
  ?fuse:bool ->
  ?on_node_error:Elm_core.Runtime.error_policy ->
  ?queue_capacity:int ->
  ?domains:int ->
  Program.t ->
  trace:Trace.event list ->
  outcome
(** Type-check is the caller's responsibility; ill-typed programs may raise
    {!Denote.Error}. For a program whose [main] is a simple value, the
    trace is ignored and [displays] is empty. [tracer] is handed to
    {!Elm_core.Runtime.start} (note the two unrelated "trace"s: [~trace]
    is the replayed input events, [?tracer] records the execution), and so
    are [fuse] — interpreted graphs fuse their [lift] chains by default like
    native ones — [on_node_error] (node supervision policy) and
    [queue_capacity] (bounded wake/value mailboxes). [backend] selects the
    runtime execution strategy ({!Elm_core.Runtime.backend}; [felmc run]
    defaults to [Compiled], this API to [Pipelined]). [policy] selects the
    scheduler's interleaving strategy (default {!Cml.Scheduler.Fifo});
    [Seeded_random] / [Pct] replay the schedules the exploration harness
    prints (see [felmc run --sched-seed]). [domains] enables intra-session
    parallel region dispatch on the compiled backend
    ([Runtime.start ~domains]; [felmc run --domains=K]). *)

val run_graph :
  ?policy:Cml.Scheduler.policy ->
  ?backend:Elm_core.Runtime.backend ->
  ?mode:Elm_core.Runtime.mode ->
  ?memoize:bool ->
  ?tracer:Elm_core.Trace.t ->
  ?fuse:bool ->
  ?on_node_error:Elm_core.Runtime.error_policy ->
  ?queue_capacity:int ->
  ?domains:int ->
  Program.t ->
  Sgraph.t ->
  Value.t ->
  trace:Trace.event list ->
  outcome
(** Run an already-extracted graph (e.g. one produced by the small-step
    path, {!Eval.normalize} + {!Denote.graph_of_final}). Freezes the
    graph. *)

val run_source :
  ?policy:Cml.Scheduler.policy ->
  ?backend:Elm_core.Runtime.backend ->
  ?mode:Elm_core.Runtime.mode ->
  ?fuse:bool ->
  ?on_node_error:Elm_core.Runtime.error_policy ->
  ?queue_capacity:int ->
  ?domains:int ->
  string ->
  trace:string ->
  outcome
(** Convenience: parse, resolve, type-check and run from source text. *)
