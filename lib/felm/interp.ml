module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime

type outcome = {
  displays : (float * Value.t) list;
  final : Value.t;
  stats : Elm_core.Stats.t option;
  skipped_events : int;
}

(* Instantiate the extracted graph as engine signals. Nodes are created in
   order, so dependencies are already in the table. *)
let build_signals (program : Program.t) g =
  let table : (int, Value.t Signal.t) Hashtbl.t = Hashtbl.create 16 in
  let signal_of id = Hashtbl.find table id in
  let default_of name =
    match Program.find_input program name with
    | Some decl -> decl.Program.default
    | None -> Value.Vunit
  in
  List.iter
    (fun (id, node) ->
      let s =
        match node with
        | Sgraph.Ninput name -> Signal.input ~name (default_of name)
        | Sgraph.Nlift (vf, dep_ids) ->
          Signal.lift_list ~name:"lift"
            (fun vs -> Denote.apply vf vs)
            (List.map signal_of dep_ids)
        | Sgraph.Nfoldp (vf, vb, dep) ->
          Signal.foldp ~name:"foldp"
            (fun v acc -> Denote.apply vf [ v; acc ])
            vb (signal_of dep)
        | Sgraph.Nasync dep -> Signal.async (signal_of dep)
      in
      Hashtbl.add table id s)
    (Sgraph.nodes g);
  table

let run_graph ?(policy = Cml.Scheduler.Fifo) ?backend
    ?(mode = Runtime.Pipelined) ?(memoize = true) ?tracer ?fuse ?on_node_error
    ?queue_capacity ?domains program g root ~trace =
  Sgraph.freeze g;
  match root with
  | Value.Vsignal root_id ->
    let displays = ref [] in
    let skipped = ref 0 in
    let stats = ref None in
    let final = ref (Value.Vunit) in
    Cml.run ~policy (fun () ->
        Builtins.work_enabled := false;
        let table = build_signals program g in
        Builtins.work_enabled := true;
        let root_signal = Hashtbl.find table root_id in
        let rt =
          Runtime.start ?backend ~mode ~memoize ?tracer ?fuse ?on_node_error
            ?queue_capacity ?domains root_signal
        in
        stats := Some (Runtime.stats rt);
        final := Runtime.current rt;
        let input_signals =
          List.map (fun (name, id) -> (name, Hashtbl.find table id)) (Sgraph.inputs g)
        in
        List.iter
          (fun (ev : Trace.event) ->
            match List.assoc_opt ev.Trace.input input_signals with
            | None -> incr skipped
            | Some s ->
              Cml.spawn (fun () ->
                  let delay = ev.Trace.at -. Cml.now () in
                  if delay > 0.0 then Cml.sleep delay;
                  Runtime.inject rt s ev.Trace.value))
          trace;
        (* Collect results once the session is quiescent: record via the
           change listener, then read the runtime after Cml.run returns. *)
        Runtime.on_change rt (fun t v -> displays := (t, v) :: !displays;
                               final := v));
    {
      displays = List.rev !displays;
      final = !final;
      stats = !stats;
      skipped_events = !skipped;
    }
  | v ->
    (* A non-reactive program: stage one already computed the answer. *)
    { displays = []; final = v; stats = None; skipped_events = List.length trace }

let run ?policy ?backend ?mode ?memoize ?tracer ?fuse ?on_node_error
    ?queue_capacity ?domains program ~trace =
  let g, root = Denote.run_program program in
  run_graph ?policy ?backend ?mode ?memoize ?tracer ?fuse ?on_node_error
    ?queue_capacity ?domains program g root ~trace

let run_source ?policy ?backend ?mode ?fuse ?on_node_error ?queue_capacity
    ?domains src ~trace =
  let program = Program.of_source src in
  ignore (Typecheck.check_program program);
  let events = Trace.parse trace in
  Trace.validate program events;
  run ?policy ?backend ?mode ?fuse ?on_node_error ?queue_capacity ?domains
    program ~trace:events
