(* One live instance of a shared compiled plan.

   A session is the serving layer's unit of isolation: the plan (op arrays,
   slot layout, reachability — see Compile) is shared read-only across
   every session of one graph shape; everything a session mutates lives in
   its own arena, its own pending-value queues and its own counters.
   Opening a session is therefore ~an array copy, and two sessions can
   never observe each other's foldp state because no mutable word is
   reachable from both.

   Sessions are fully synchronous: no threads, no mailboxes, no Cml
   scheduler. External events queue up (Dispatcher routes them); [step]
   runs one event to completion by sweeping the plan's regions in index
   order — which is topological order, so one sweep is exactly one settled
   round of the compiled runtime. Async taps re-enter through the
   dispatcher's ready queue ([env_fire]) and delay taps through its virtual
   delay heap ([env_delay]), preserving the paper's boundary semantics:
   order is maintained within the synchronous part and within each async
   subgraph, but not between them. *)

module Signal = Elm_core.Signal
module Event = Elm_core.Event
module Reach = Elm_core.Reach
module Stats = Elm_core.Stats
module Trace = Elm_core.Trace
module Compile = Elm_core.Compile
module Runtime = Elm_core.Runtime
module Upgrade = Elm_core.Upgrade

exception Queue_full

type env = {
  env_fire : sid:int -> source:int -> unit;
  env_delay : sid:int -> node:int -> slot:int -> seconds:float -> Obj.t -> unit;
}

(* The display sink, separated from the session record so the exec's
   display hook (created before the record) has something to write into. *)
type 'a sink = {
  mutable k_current : 'a;
  mutable k_rev_changes : (int * 'a) list;  (* (epoch, value), newest first *)
  mutable k_n_changes : int;
  k_history : int option;
}

(* Intra-session parallel stepping: the boundary effects a region-group
   task buffers instead of performing, applied by the coordinator after the
   group barrier in (admission epoch, group index) order — touching the
   dispatcher's ready queue, the delay heap and the tracer's dispatch shard
   from a worker would race (or shard-split the round). *)
type geffect =
  | G_push of int * Obj.t  (* pending value for a source slot *)
  | G_fire of int  (* async boundary: re-enter as a fresh wake *)
  | G_delay of int * int * float * Obj.t  (* node, slot, seconds, value *)
  | G_display of int * bool  (* the tracer's display instant *)

(* One region group's execution context: shares the session's arena (groups
   touch disjoint slots) but owns its scratch counters, guards and effect
   buffer, so two groups of one session can run on different domains with
   no shared mutable word. *)
type gexec = {
  g_regions : (int * Compile.region) array;  (* member regions, ascending *)
  g_exec : Compile.exec;
  g_stats : Stats.t;  (* scratch, owned by the running task *)
  mutable g_snap : Stats.t;  (* last state merged into the session stats *)
  g_epoch : int ref;  (* current round's epoch, tags buffered effects *)
  g_effects : (int * geffect) Queue.t;
  g_rounds : Compile.round Queue.t;  (* this round's work, set by [admit] *)
}

(* The plan-shaped fields are mutable for exactly one writer: [upgrade],
   which swaps a session onto a new plan's layout between event waves.
   Everything that names a slot or a node id (queues, bounds, the exec's
   op closures, the trace id offset) changes together; the sink, stats and
   epoch persist — an upgraded session keeps its history. *)
type 'a t = {
  s_id : int;
  mutable s_plan : Compile.plan;
  s_env : env;
  s_policy : Runtime.error_policy;
  mutable s_exec : Compile.exec;
  mutable s_queues : Obj.t Queue.t option array;
      (* per slot; [Some] on sources *)
  mutable s_bounded : bool array;  (* per slot; false on async/delay queues *)
  s_capacity : int option;
  s_stats : Stats.t;
  s_tracer : Trace.t option;
  mutable s_offset : int;  (* sid * id_stride: per-session trace id offset *)
  s_sink : 'a sink;
  s_inbox : int Queue.t;
      (* source-id wakes pinned to this session during a parallel drain:
         the per-session restriction of the dispatcher's global FIFO. Only
         the domain currently running this session's task touches it. *)
  mutable s_gexecs : gexec array;  (* [||] until intra-mode is first used *)
  mutable s_epoch : int;  (* session-local event counter *)
  mutable s_pending : int;  (* routed events not yet stepped *)
  mutable s_pending_delays : int;  (* values in the dispatcher's heap *)
  mutable s_dropped : int;  (* injections refused by a full queue *)
  mutable s_closed : bool;
}

(* Bounded newest-first history, as in Runtime: capped at [2*cap]
   transiently and truncated back to [cap]. *)
let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let record_change k epoch v =
  k.k_current <- v;
  match k.k_history with
  | Some 0 -> ()
  | None ->
    k.k_rev_changes <- (epoch, v) :: k.k_rev_changes;
    k.k_n_changes <- k.k_n_changes + 1
  | Some cap ->
    if k.k_n_changes + 1 > 2 * cap then begin
      k.k_rev_changes <- take cap ((epoch, v) :: k.k_rev_changes);
      k.k_n_changes <- cap
    end
    else begin
      k.k_rev_changes <- (epoch, v) :: k.k_rev_changes;
      k.k_n_changes <- k.k_n_changes + 1
    end

(* Per-slot supervisors, mirroring the runtime's [make_guard]. [Propagate]
   needs no per-node state, so every slot shares one record and opening a
   session allocates nothing here (the default serving configuration);
   [Isolate]/[Restart] carry per-node failure attribution and budgets. *)
let make_guards ~policy ~stats ~tracer ~offset pl =
  let n = Compile.node_count pl in
  match (policy : Runtime.error_policy) with
  | Runtime.Propagate ->
    Array.make n { Compile.guard = (fun ~prev:_ ~reset:_ ~epoch:_ f -> f ()) }
  | Runtime.Isolate | Runtime.Restart _ ->
    let note id epoch =
      stats.Stats.node_failures <- stats.Stats.node_failures + 1;
      match tracer with
      | None -> ()
      | Some tr -> Trace.node_failure tr ~node:(offset + id) ~epoch
    in
    Array.map
      (fun id ->
        let left =
          ref (match policy with Runtime.Restart b -> b | _ -> 0)
        in
        {
          Compile.guard =
            (fun ~prev ~reset ~epoch f ->
              try f ()
              with _ ->
                note id epoch;
                if !left > 0 then begin
                  decr left;
                  stats.Stats.node_restarts <- stats.Stats.node_restarts + 1;
                  reset ()
                end;
                Event.No_change prev);
        })
      (Compile.slot_ids pl)

let fresh_queues pl =
  let n = Compile.node_count pl in
  let queues = Array.make n None in
  let bounded = Array.make n false in
  List.iter
    (fun (_id, sl, b) ->
      queues.(sl) <- Some (Queue.create ());
      bounded.(sl) <- b)
    (Compile.queue_slots pl);
  (queues, bounded)

let queue_exn queues sl =
  match queues.(sl) with
  | Some q -> q
  | None -> invalid_arg "Serve.Session: not a source slot"

let register_regions ~tracer ~sid ~offset pl =
  match tracer with
  | None -> ()
  | Some tr ->
    List.iter
      (fun rg ->
        Trace.register_node tr
          ~id:(offset + rg.Compile.rg_rep)
          ~name:
            (Printf.sprintf "s%d:region:%s(%d)" sid rg.Compile.rg_name
               (List.length rg.Compile.rg_member_ids)))
      (Compile.regions pl)

(* The sequential execution context for one plan layout. Shared by [build]
   and [upgrade]; every closure here captures the queue array and arena it
   was built with, which is why an upgrade rebuilds the whole record rather
   than patching fields. *)
let make_exec : type r.
    sid:int ->
    env:env ->
    policy:Runtime.error_policy ->
    tracer:Trace.t option ->
    stats:Stats.t ->
    offset:int ->
    queues:Obj.t Queue.t option array ->
    sink:r sink ->
    arena:Compile.arena ->
    Compile.plan ->
    Compile.exec =
 fun ~sid ~env ~policy ~tracer ~stats ~offset ~queues ~sink ~arena pl ->
  {
      Compile.x_arena = arena;
      x_flood = false;
      x_stats = stats;
      x_guards = make_guards ~policy ~stats ~tracer ~offset pl;
      x_account =
        (fun ~node:_ ~epoch ~changed:_ ~real ->
          if real then stats.Stats.messages <- stats.Stats.messages + 1
          else stats.Stats.elided_messages <- stats.Stats.elided_messages + 1;
          Some epoch);
      x_root_stamp = None;
      x_pop = (fun sl -> Queue.pop (queue_exn queues sl));
      x_push = (fun sl v -> Queue.push v (queue_exn queues sl));
      x_fire_async =
        (fun id ->
          stats.Stats.async_events <- stats.Stats.async_events + 1;
          env.env_fire ~sid ~source:id);
      x_delay =
        (fun ~node ~slot ~seconds v ->
          env.env_delay ~sid ~node ~slot ~seconds v);
      x_display =
        (fun ~epoch ~changed v ->
          (match tracer with
          | None -> ()
          | Some tr -> Trace.display tr ~epoch ~changed);
          if changed then record_change sink epoch (Obj.obj v : r));
  }

(* Shared by [open_session] and [clone]: everything but the arena and the
   sink contents. *)
let build : type r.
    sid:int ->
    env:env ->
    policy:Runtime.error_policy ->
    capacity:int option ->
    tracer:Trace.t option ->
    stats:Stats.t ->
    sink:r sink ->
    arena:Compile.arena ->
    epoch:int ->
    plan:Compile.plan ->
    r t =
 fun ~sid ~env ~policy ~capacity ~tracer ~stats ~sink ~arena ~epoch ~plan:pl ->
  let queues, bounded = fresh_queues pl in
  let offset = sid * Compile.id_stride pl in
  register_regions ~tracer ~sid ~offset pl;
  let x =
    make_exec ~sid ~env ~policy ~tracer ~stats ~offset ~queues ~sink ~arena pl
  in
  {
    s_id = sid;
    s_plan = pl;
    s_env = env;
    s_policy = policy;
    s_exec = x;
    s_queues = queues;
    s_bounded = bounded;
    s_capacity = capacity;
    s_stats = stats;
    s_tracer = tracer;
    s_offset = offset;
    s_sink = sink;
    s_inbox = Queue.create ();
    s_gexecs = [||];
    s_epoch = epoch;
    s_pending = 0;
    s_pending_delays = 0;
    s_dropped = 0;
    s_closed = false;
  }

let open_session ~sid ~env ?tracer ?(on_node_error = Runtime.Propagate)
    ?queue_capacity ?history root =
  (match queue_capacity with
  | Some n when n < 1 ->
    invalid_arg "Serve.Session.open_session: queue_capacity must be >= 1"
  | _ -> ());
  (match history with
  | Some n when n < 0 ->
    invalid_arg "Serve.Session.open_session: negative history"
  | _ -> ());
  let pl = Compile.plan_of root in
  let sink =
    {
      k_current = Signal.default root;
      k_rev_changes = [];
      k_n_changes = 0;
      k_history = history;
    }
  in
  build ~sid ~env ~policy:on_node_error ~capacity:queue_capacity ~tracer
    ~stats:(Stats.create ()) ~sink ~arena:(Compile.new_arena pl) ~epoch:0
    ~plan:pl

(* Cloning snapshots a quiescent session: with nothing pending, every
   value/stamp/state word of the instance lives in the arena (the queues
   are empty and the dispatcher holds nothing for it), so [clone_arena]
   captures the whole observable state. In-flight events would live half in
   the dispatcher's queues and half in the arena — there is no consistent
   cut — hence the idleness requirement. *)
let clone ~sid src =
  if src.s_closed then invalid_arg "Serve.Session.clone: session is closed";
  if src.s_pending > 0 || src.s_pending_delays > 0 then
    invalid_arg "Serve.Session.clone: session has in-flight events";
  let sink =
    {
      k_current = src.s_sink.k_current;
      k_rev_changes = src.s_sink.k_rev_changes;
      k_n_changes = src.s_sink.k_n_changes;
      k_history = src.s_sink.k_history;
    }
  in
  build ~sid ~env:src.s_env ~policy:src.s_policy ~capacity:src.s_capacity
    ~tracer:src.s_tracer
    ~stats:(Stats.copy src.s_stats)
    ~sink
    ~arena:(Compile.clone_arena src.s_plan src.s_exec.Compile.x_arena)
    ~epoch:src.s_epoch ~plan:src.s_plan

let close s =
  s.s_closed <- true;
  (* Drop queued values so a closed session pins no event payloads. *)
  Array.iter (function Some q -> Queue.clear q | None -> ()) s.s_queues

(* Deliver an external value for [input]. The caller (Dispatcher.inject)
   routes the matching ready-queue entry; value first, routing second, so
   the step finds the value waiting — the same protocol as the runtime's
   input push. Returns [false] (and counts a drop) when the input's bounded
   queue is full. *)
let offer : type i. 'a t -> i Signal.t -> i -> bool =
 fun s input v ->
  if s.s_closed then invalid_arg "Serve.Session: session is closed";
  (match Signal.kind input with
  | Signal.Input -> ()
  | _ ->
    invalid_arg
      (Printf.sprintf "Serve.Session: %s (node %d) is not an input"
         (Signal.name input) (Signal.id input)));
  match Compile.slot_of s.s_plan (Signal.id input) with
  | None ->
    invalid_arg
      (Printf.sprintf "Serve.Session: %s (node %d) is not part of this plan"
         (Signal.name input) (Signal.id input))
  | Some sl -> (
    let q = queue_exn s.s_queues sl in
    match s.s_capacity with
    | Some cap when s.s_bounded.(sl) && Queue.length q >= cap ->
      s.s_dropped <- s.s_dropped + 1;
      false
    | _ ->
      Queue.push (Obj.repr v) q;
      true)

(* Run one routed event to completion: bump the session-local epoch, sweep
   the regions whose wake test passes in index (= topological) order. The
   dispatcher's bookkeeping (cone size vs node count) settles the elision
   invariant exactly as the runtime's dispatcher does, so
   [messages + elided = nodes * events] holds per session. *)
let step s ~source =
  s.s_pending <- s.s_pending - 1;
  if not s.s_closed then begin
    s.s_epoch <- s.s_epoch + 1;
    let st = s.s_stats in
    st.Stats.events <- st.Stats.events + 1;
    let r = { Compile.epoch = s.s_epoch; source } in
    let reach = Compile.reach s.s_plan in
    (match s.s_tracer with
    | None -> ()
    | Some tr ->
      Trace.dispatch tr ~source:(s.s_offset + source) ~epoch:s.s_epoch
        ~targets:(Reach.cone_size reach source));
    List.iter
      (fun rg ->
        let i = rg.Compile.rg_index in
        if Reach.set_mem source (Compile.region_sources s.s_plan i) then begin
          st.Stats.notified_nodes <- st.Stats.notified_nodes + 1;
          st.Stats.region_steps <- st.Stats.region_steps + 1;
          (match s.s_tracer with
          | None -> ()
          | Some tr ->
            Trace.node_start tr ~node:(s.s_offset + rg.Compile.rg_rep)
              ~epoch:s.s_epoch);
          Compile.run_region s.s_plan s.s_exec i r;
          match s.s_tracer with
          | None -> ()
          | Some tr ->
            Trace.node_end tr ~node:(s.s_offset + rg.Compile.rg_rep)
              ~epoch:s.s_epoch
        end)
      (Compile.regions s.s_plan);
    st.Stats.elided_messages <-
      st.Stats.elided_messages
      + (Compile.node_count s.s_plan - Reach.cone_size reach source)
  end

(* A delayed value coming back from the dispatcher's heap: park it in the
   delay node's (unbounded) queue; the dispatcher routes the wake. *)
let deliver_delayed s ~slot v =
  s.s_pending_delays <- s.s_pending_delays - 1;
  if not s.s_closed then Queue.push v (queue_exn s.s_queues slot)

(* Dispatcher bookkeeping hooks. *)
let mark_pending s = s.s_pending <- s.s_pending + 1
let mark_pending_delay s = s.s_pending_delays <- s.s_pending_delays + 1

(* A routed event / heap entry discarded across an upgrade (its source was
   detached): the matching future step/delivery will never happen, so the
   counter comes down here instead. *)
let drop_pending s = s.s_pending <- s.s_pending - 1
let drop_pending_delay s = s.s_pending_delays <- s.s_pending_delays - 1

(* Swap this session onto a new plan's layout. Called by
   [Dispatcher.upgrade_all] between event waves — never mid-step, so the
   arena is a consistent cut. Matched slots carry value/stamp (via the
   patch's migrations), attached slots seed from defaults, and pending
   values queued on matched source slots transfer to the new queue array
   (a transfer may transiently overfill a bounded queue; upgrades never
   drop accepted events). The sink, stats and epoch persist — an upgraded
   session keeps its change history and its epoch numbering. *)
let upgrade : type r.
    ?stale_map:bool ->
    ?skip_migration:bool ->
    ?leak_mailbox:bool ->
    r t ->
    Upgrade.patch ->
    unit =
 fun ?(stale_map = false) ?(skip_migration = false) ?(leak_mailbox = false) s
     patch ->
  if not s.s_closed then begin
    let np = Upgrade.new_plan patch in
    let arena =
      Upgrade.remap ~stale_map ~skip_migration patch s.s_exec.Compile.x_arena
    in
    let queues, bounded = fresh_queues np in
    (* [leak_mailbox] is the planted Leak_seam_mailbox bug: the old seam
       mailboxes (pending-value queues) are forgotten instead of
       transferred, so the ready-queue entries the dispatcher remaps
       promise values that are no longer there — the next drain pops an
       empty queue and the no-deadlock oracle trips. *)
    if not leak_mailbox then
      Array.iteri
        (fun old_sl q ->
          match q with
          | None -> ()
          | Some q -> (
            match Upgrade.new_slot_of_old patch old_sl with
            | Some nsl -> (
              match queues.(nsl) with
              | Some nq -> Queue.transfer q nq
              | None -> ())
            | None -> ()))
        s.s_queues;
    let offset = s.s_id * Compile.id_stride np in
    register_regions ~tracer:s.s_tracer ~sid:s.s_id ~offset np;
    s.s_plan <- np;
    s.s_queues <- queues;
    s.s_bounded <- bounded;
    s.s_offset <- offset;
    s.s_gexecs <- [||];  (* rebuilt lazily against the new plan's groups *)
    s.s_exec <-
      make_exec ~sid:s.s_id ~env:s.s_env ~policy:s.s_policy ~tracer:s.s_tracer
        ~stats:s.s_stats ~offset ~queues ~sink:s.s_sink ~arena np
  end

(* Parallel-drain inbox. The dispatcher moves a session's share of the
   global FIFO here before handing the session to a pool worker; async
   re-entries append while the task runs. FIFO within the queue = the
   global arrival order restricted to this session, which is all the
   paper's per-(session,source) guarantee needs. *)
let wake_push s source = Queue.push source s.s_inbox
let wake_pop s = Queue.take_opt s.s_inbox
let has_wakes s = not (Queue.is_empty s.s_inbox)

(* ------------------------------------------------------------------ *)
(* Intra-session parallel stepping.

   [admit] (coordinator) assigns the epoch and settles every deterministic
   per-event counter (events, notified, region_steps, elided, the tracer's
   dispatch row — all computable from the plan alone), queueing the round
   on each woken region's group. [run_group] (a pool task, one per active
   group, ordered by the plan's group DAG) performs the actual op
   execution, billing value-dependent counters into the group's scratch
   and buffering boundary effects. [flush_groups] (coordinator, after the
   barrier) applies the buffered effects in (epoch, group) order — the
   order a sequential [step] sweep would have performed them — and merges
   the scratch deltas, so [stats] totals match sequential stepping
   exactly. The root's sink is written directly by the root's group (the
   single writer); the coordinator only reads it after the barrier. *)

let ensure_gexecs : type r. r t -> unit =
 fun s ->
  if Array.length s.s_gexecs = 0 then begin
    let pl = s.s_plan in
    let regions = Array.of_list (Compile.regions pl) in
    s.s_gexecs <-
      Array.init (Compile.group_count pl) (fun g ->
          let g_stats = Stats.create () in
          let epoch_ref = ref 0 in
          let effects = Queue.create () in
          let x =
            {
              Compile.x_arena = s.s_exec.Compile.x_arena;
              x_flood = false;
              x_stats = g_stats;
              x_guards =
                make_guards ~policy:s.s_policy ~stats:g_stats ~tracer:s.s_tracer
                  ~offset:s.s_offset pl;
              x_account =
                (fun ~node:_ ~epoch ~changed:_ ~real ->
                  if real then g_stats.Stats.messages <- g_stats.Stats.messages + 1
                  else
                    g_stats.Stats.elided_messages <-
                      g_stats.Stats.elided_messages + 1;
                  Some epoch);
              x_root_stamp = None;
              x_pop = (fun sl -> Queue.pop (queue_exn s.s_queues sl));
              x_push =
                (fun sl v -> Queue.push (!epoch_ref, G_push (sl, v)) effects);
              x_fire_async =
                (fun id ->
                  g_stats.Stats.async_events <- g_stats.Stats.async_events + 1;
                  Queue.push (!epoch_ref, G_fire id) effects);
              x_delay =
                (fun ~node ~slot ~seconds v ->
                  Queue.push (!epoch_ref, G_delay (node, slot, seconds, v)) effects);
              x_display =
                (fun ~epoch ~changed v ->
                  if s.s_tracer <> None then
                    Queue.push (!epoch_ref, G_display (epoch, changed)) effects;
                  if changed then record_change s.s_sink epoch (Obj.obj v : r));
            }
          in
          {
            g_regions =
              Array.of_list
                (List.map (fun i -> (i, regions.(i))) (Compile.group_regions pl g));
            g_exec = x;
            g_stats;
            g_snap = Stats.copy g_stats;
            g_epoch = epoch_ref;
            g_effects = effects;
            g_rounds = Queue.create ();
          })
  end

let admit s ~source =
  s.s_pending <- s.s_pending - 1;
  if not s.s_closed then begin
    ensure_gexecs s;
    s.s_epoch <- s.s_epoch + 1;
    let st = s.s_stats in
    st.Stats.events <- st.Stats.events + 1;
    let r = { Compile.epoch = s.s_epoch; source } in
    let reach = Compile.reach s.s_plan in
    (match s.s_tracer with
    | None -> ()
    | Some tr ->
      Trace.dispatch tr ~source:(s.s_offset + source) ~epoch:s.s_epoch
        ~targets:(Reach.cone_size reach source));
    let pushed = ref [] in
    List.iter
      (fun rg ->
        let i = rg.Compile.rg_index in
        if Reach.set_mem source (Compile.region_sources s.s_plan i) then begin
          st.Stats.notified_nodes <- st.Stats.notified_nodes + 1;
          st.Stats.region_steps <- st.Stats.region_steps + 1;
          let g = Compile.group_of s.s_plan i in
          if not (List.mem g !pushed) then begin
            pushed := g :: !pushed;
            Queue.push r s.s_gexecs.(g).g_rounds
          end
        end)
      (Compile.regions s.s_plan);
    st.Stats.elided_messages <-
      st.Stats.elided_messages
      + (Compile.node_count s.s_plan - Reach.cone_size reach source)
  end

let active_groups s =
  let acc = ref [] in
  Array.iteri
    (fun g gx -> if not (Queue.is_empty gx.g_rounds) then acc := g :: !acc)
    s.s_gexecs;
  List.rev !acc

let run_group s g ~dstats =
  let gx = s.s_gexecs.(g) in
  let before = Stats.copy gx.g_stats in
  let rec go () =
    match Queue.take_opt gx.g_rounds with
    | None -> ()
    | Some r ->
      gx.g_epoch := r.Compile.epoch;
      Array.iter
        (fun (i, rg) ->
          if Reach.set_mem r.Compile.source (Compile.region_sources s.s_plan i)
          then begin
            (match s.s_tracer with
            | None -> ()
            | Some tr ->
              Trace.node_start tr ~node:(s.s_offset + rg.Compile.rg_rep)
                ~epoch:r.Compile.epoch);
            Compile.run_region s.s_plan gx.g_exec i r;
            match s.s_tracer with
            | None -> ()
            | Some tr ->
              Trace.node_end tr ~node:(s.s_offset + rg.Compile.rg_rep)
                ~epoch:r.Compile.epoch
          end)
        gx.g_regions;
      go ()
  in
  go ();
  Stats.add_delta dstats ~before ~after:gx.g_stats

let flush_groups s ~fire ~delay =
  if Array.length s.s_gexecs > 0 then begin
    let tagged = ref [] in
    Array.iteri
      (fun g gx ->
        Queue.iter (fun (ep, eff) -> tagged := (ep, g, eff) :: !tagged)
          gx.g_effects;
        Queue.clear gx.g_effects)
      s.s_gexecs;
    let ordered =
      List.stable_sort
        (fun ((e1 : int), (g1 : int), _) (e2, g2, _) ->
          if e1 <> e2 then compare e1 e2 else compare g1 g2)
        (List.rev !tagged)
    in
    List.iter
      (fun (_ep, _g, eff) ->
        match eff with
        | G_push (sl, v) -> Queue.push v (queue_exn s.s_queues sl)
        | G_fire id -> fire id
        | G_delay (node, slot, seconds, v) -> delay ~node ~slot ~seconds v
        | G_display (epoch, changed) -> (
          match s.s_tracer with
          | None -> ()
          | Some tr -> Trace.display tr ~epoch ~changed))
      ordered;
    Array.iter
      (fun gx ->
        Stats.add_delta s.s_stats ~before:gx.g_snap ~after:gx.g_stats;
        gx.g_snap <- Stats.copy gx.g_stats)
      s.s_gexecs
  end

(* ------------------------------------------------------------------ *)
(* Accessors *)

let id s = s.s_id
let current s = s.s_sink.k_current

let changes s =
  let l =
    match s.s_sink.k_history with
    | None -> s.s_sink.k_rev_changes
    | Some cap -> take cap s.s_sink.k_rev_changes
  in
  List.rev l

let stats s = s.s_stats
let epoch s = s.s_epoch
let pending s = s.s_pending
let pending_delays s = s.s_pending_delays
let dropped s = s.s_dropped
let closed s = s.s_closed
let is_idle s = s.s_pending = 0 && s.s_pending_delays = 0

let pp_stats ppf s =
  Stats.pp_labeled (Printf.sprintf "s%d" s.s_id) ppf s.s_stats

(* The session's own memory: arena + queues + history + counters. The plan
   is deliberately not behind any of these roots (ops and defaults are
   reached only through [s_exec]'s closures over the shared plan, which we
   exclude by rooting at the mutable parts), so the number approximates the
   marginal footprint of one more idle session. *)
let footprint_words s =
  Obj.reachable_words
    (Obj.repr
       ( s.s_exec.Compile.x_arena,
         s.s_queues,
         s.s_sink.k_rev_changes,
         s.s_stats ))
