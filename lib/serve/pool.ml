(* The domain pool moved to lib/core (Elm_core.Pool) so the compiled
   runtime can schedule intra-session region groups on it without a
   dependency cycle; re-exported here so serving-layer call sites
   ([Dispatcher], felmc sessions, benches) keep their [Serve.Pool] name. *)

include Elm_core.Pool
