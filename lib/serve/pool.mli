(** A work-stealing pool of OCaml 5 domains for the serving layer.

    The paper's async semantics deliberately decouple subgraphs so they may
    run concurrently without changing observable per-source ordering
    (Sections 1, 3.3); sessions — independent arenas over one shared
    immutable plan — take that decoupling to its limit: they share nothing
    mutable, so a batch of session tasks is embarrassingly parallel. This
    pool runs such batches across [N] domains with lock-free (Atomic
    cursor) work stealing for bursty imbalance, and with {e seeded} steal
    schedules so an interleaving checker can replay many placements and
    require bit-identical observable traces.

    The pool knows nothing about sessions: tasks are [int -> unit]
    closures receiving the executing worker's index (used by
    {!Dispatcher.drain_parallel} to bill per-domain {!Elm_core.Stats}).
    Tasks must not block and must not call {!run} reentrantly; a task's
    own follow-up work (async re-entries) must be folded into the task
    itself, which is exactly what draining a session inbox to quiescence
    does. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains:n ()] spawns [n - 1] persistent worker domains; the
    calling domain participates as worker 0 during {!run}. [domains]
    defaults to [Domain.recommended_domain_count ()]. Raises
    [Invalid_argument] when [n < 1]. Workers park on a condition variable
    between batches — an idle pool burns no CPU. *)

val domains : t -> int
(** Worker count, including the caller's slot 0. *)

val run : ?seed:int -> t -> (int -> unit) array -> unit
(** [run ~seed t tasks] executes every task and returns when all have
    finished (a barrier). Tasks are dealt round-robin (rotated by [seed])
    into per-worker queues; idle workers steal from the others in a
    [seed]-determined probe order, so the schedule — which domain runs
    which task — is a deterministic function of [(seed, tasks, domains)]
    up to claim races. If tasks raise, the first exception is re-raised
    here after the batch completes; the rest are dropped. Raises
    [Invalid_argument] on reentrant use or after {!close}. *)

type worker_stats = {
  ws_tasks : int;  (** Tasks this worker executed (own + stolen). *)
  ws_steals : int;  (** Tasks taken from another worker's queue. *)
  ws_idle_probes : int;
      (** Steal probes that found an empty victim queue — a unitless proxy
          for time spent looking for work rather than doing it. *)
}

val worker_stats : t -> worker_stats array
(** Lifetime per-worker counters (index = worker), summed over batches
    since creation or the last {!reset_worker_stats}. Read between runs —
    counters are owner-written during a batch. *)

val reset_worker_stats : t -> unit

val total_steals : t -> int
(** Sum of [ws_steals] over all workers. *)

val close : t -> unit
(** Wake and join every worker domain. Idempotent. The pool must be idle
    (no {!run} in progress). *)
