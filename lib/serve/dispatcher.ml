(* Multi-session event routing over one shared compiled plan.

   The dispatcher is the serving counterpart of the runtime's global event
   dispatcher (Fig. 11), generalised by a session id: external events are
   routed [(session, source)] and dispatched strictly in arrival order, so
   per-source ordering within a session is the global FIFO order restricted
   to that session — the paper's ordering guarantee, per session. Async and
   delay boundaries re-enter through the same queue (via [Session.env]),
   which relaxes ordering between a session's async subgraph and its
   synchronous part exactly as the single-session runtime does, while two
   different sessions never synchronise on anything at all.

   Delays use a virtual clock: the heap orders (due time, sequence) and
   [drain] advances [now] to each due time once the ready queue is empty —
   the same deterministic timer semantics as the Cml scheduler's wheel,
   without running a scheduler. Everything here is synchronous and
   single-threaded; no Cml.run is needed, which is what lets felmc serve
   sessions (and the benches churn 10k of them) from plain code. *)

module Signal = Elm_core.Signal
module Reach = Elm_core.Reach
module Stats = Elm_core.Stats
module Trace = Elm_core.Trace
module Fuse = Elm_core.Fuse
module Compile = Elm_core.Compile
module Runtime = Elm_core.Runtime
module Upgrade = Elm_core.Upgrade
module Pqueue = Cml.Pqueue

type delayed = {
  dl_sid : int;
  dl_node : int;  (* the delay node to wake *)
  dl_slot : int;  (* its value slot *)
  dl_value : Obj.t;
}

type 'a t = {
  mutable d_root : 'a Signal.t;
      (* the (possibly fused) graph all sessions run; [upgrade_all] swaps
         it together with the plan between event waves *)
  mutable d_plan : Compile.plan;
  d_fuse : bool;  (* replayed on the replacement graph at upgrade *)
  d_env : Session.env;
  d_sessions : (int, 'a Session.t) Hashtbl.t;
  d_ready : (int * int) Queue.t;  (* (session id, source id), FIFO *)
  d_delays : ((float * int), delayed) Pqueue.t ref;
  d_seq : int ref;  (* tie-break: equal due times stay FIFO *)
  d_now : float ref;  (* virtual clock, advanced by drain *)
  d_tracer : Trace.t option;
  d_policy : Runtime.error_policy;
  d_capacity : int option;
  d_history : int option;
  d_pool : Pool.t option;  (* present: [drain] fans out over domains *)
  d_intra : bool;
      (* split each session's work by region group (plan group DAG) so one
         session's independent groups also run concurrently; needs a pool *)
  d_in_parallel : bool ref;
      (* true while pool workers are stepping sessions: boundary re-entries
         route to session inboxes instead of [d_ready], and the delay heap
         goes behind [d_delay_lock]. A ref (not a field) because the env
         closures are built before the record. *)
  d_delay_lock : Mutex.t;  (* guards d_delays + d_seq (workers schedule) *)
  mutable d_domain_stats : Stats.t array;
      (* per-worker-slot accumulators, grown lazily to the pool width *)
  mutable d_next_sid : int;
  mutable d_opened : int;
  mutable d_closed : int;
  mutable d_routed : int;  (* external injections accepted *)
  mutable d_upgrades : int;  (* upgrade_all calls: the mutation occurrence *)
}

type accounting = {
  live : int;
  opened : int;
  closed : int;
  routed : int;
  idle : int;
  pending_events : int;
  pending_delays : int;
}

let create ?tracer ?(on_node_error = Runtime.Propagate) ?queue_capacity
    ?history ?(fuse = true) ?pool ?(intra = false) root =
  if intra && pool = None then
    invalid_arg "Serve.Dispatcher.create: intra requires a pool";
  let root = if fuse then Fuse.fuse_cached root else root in
  let plan = Compile.plan_of root in
  let sessions = Hashtbl.create 64 in
  let ready = Queue.create () in
  let delays =
    ref (Pqueue.empty ~compare:(fun (a : float * int) b -> compare a b))
  in
  let seq = ref 0 in
  let now = ref 0.0 in
  let in_parallel = ref false in
  let delay_lock = Mutex.create () in
  let env =
    {
      Session.env_fire =
        (fun ~sid ~source ->
          match Hashtbl.find_opt sessions sid with
          | Some s when not (Session.closed s) ->
            Session.mark_pending s;
            (* During a parallel round an async re-entry lands on its own
               session's inbox: only the worker currently pinned to [sid]
               calls this for [sid], so the push is single-writer, and the
               task drains the inbox before returning — the re-entry runs
               on the same domain, after everything already queued for the
               session, exactly as the global FIFO would have ordered it.
               (The sessions table is read-only while workers run:
               open/close/clone are rejected mid-drain.) *)
            if !in_parallel then Session.wake_push s source
            else Queue.push (sid, source) ready
          | Some _ | None -> ());
      env_delay =
        (fun ~sid ~node ~slot ~seconds v ->
          match Hashtbl.find_opt sessions sid with
          | Some s when not (Session.closed s) ->
            Session.mark_pending_delay s;
            (* Workers on different domains race to schedule; the lock
               makes (heap, seq) updates atomic. A session's own delays
               still get increasing seq numbers (its calls are ordered by
               its single pinned domain), so per-session heap order — the
               only order the oracle can observe — matches sequential. *)
            Mutex.lock delay_lock;
            incr seq;
            delays :=
              Pqueue.insert !delays
                (!now +. seconds, !seq)
                { dl_sid = sid; dl_node = node; dl_slot = slot; dl_value = v };
            Mutex.unlock delay_lock
          | Some _ | None -> ());
    }
  in
  {
    d_root = root;
    d_plan = plan;
    d_fuse = fuse;
    d_env = env;
    d_sessions = sessions;
    d_ready = ready;
    d_delays = delays;
    d_seq = seq;
    d_now = now;
    d_tracer = tracer;
    d_policy = on_node_error;
    d_capacity = queue_capacity;
    d_history = history;
    d_pool = pool;
    d_intra = intra;
    d_in_parallel = in_parallel;
    d_delay_lock = delay_lock;
    d_domain_stats = [||];
    d_next_sid = 0;
    d_opened = 0;
    d_closed = 0;
    d_routed = 0;
    d_upgrades = 0;
  }

let root d = d.d_root
let plan d = d.d_plan
let now d = !(d.d_now)
let pool d = d.d_pool
let domain_stats d = d.d_domain_stats

let fresh_sid d =
  let sid = d.d_next_sid in
  d.d_next_sid <- sid + 1;
  sid

(* Lifecycle mutates the sessions table, which workers read lock-free
   during a parallel round; nothing in a round can legitimately call these
   (tasks run no user code), so a violation is a programming error. *)
let check_not_parallel d what =
  if !(d.d_in_parallel) then
    invalid_arg (Printf.sprintf "Serve.Dispatcher.%s: parallel drain running" what)

let open_session d =
  check_not_parallel d "open_session";
  let sid = fresh_sid d in
  let s =
    Session.open_session ~sid ~env:d.d_env ?tracer:d.d_tracer
      ~on_node_error:d.d_policy ?queue_capacity:d.d_capacity
      ?history:d.d_history d.d_root
  in
  Hashtbl.replace d.d_sessions sid s;
  d.d_opened <- d.d_opened + 1;
  s

let clone d src =
  check_not_parallel d "clone";
  let sid = fresh_sid d in
  let s = Session.clone ~sid src in
  Hashtbl.replace d.d_sessions sid s;
  d.d_opened <- d.d_opened + 1;
  s

let close d s =
  check_not_parallel d "close";
  if not (Session.closed s) then begin
    Session.close s;
    Hashtbl.remove d.d_sessions (Session.id s);
    d.d_closed <- d.d_closed + 1
  end

let find d sid = Hashtbl.find_opt d.d_sessions sid

(* Value first, routing second: the step pops the value its ready-queue
   entry promised. One accepted injection = exactly one future [step]. *)
let try_inject d s input v =
  if Session.offer s input v then begin
    Session.mark_pending s;
    Queue.push (Session.id s, Signal.id input) d.d_ready;
    d.d_routed <- d.d_routed + 1;
    true
  end
  else false

let inject d s input v =
  if not (try_inject d s input v) then raise Session.Queue_full

(* ------------------------------------------------------------------ *)
(* Live upgrade.

   Admission is wave-boundary only: [check_not_parallel] rejects an
   upgrade while pool workers are stepping, and the synchronous drains
   never call out to user code between steps, so every session's arena is
   a consistent cut when we get here. Pending work survives: queued input
   values transfer inside [Session.upgrade], and the global ready queue
   and delay heap are rewritten below under the patch's node map — an
   upgrade drops no accepted event unless its source was detached with
   the subgraph that owned it (in which case the matching pending
   counters come down, keeping the accounting invariant exact).

   The shared plan cache is invalidated and reseeded: the old root's plan
   entry and its fusion memo are dead the moment sessions stop serving
   it, and a stale fusion memo would keep resolving future [fuse_cached]
   calls on that graph to the pre-upgrade composite (see
   Fuse.clear_memos). *)

let upgrade_all ?migrate ?mutate d new_root =
  check_not_parallel d "upgrade_all";
  d.d_upgrades <- d.d_upgrades + 1;
  let occ = d.d_upgrades in
  let planted spec =
    match (mutate : Runtime.mutation option) with
    | Some m when m = spec occ -> true
    | _ -> false
  in
  let stale_map = planted (fun n -> Runtime.Stale_slot_map n) in
  let skip_migration = planted (fun n -> Runtime.Skip_migration n) in
  let leak_mailbox = planted (fun n -> Runtime.Leak_seam_mailbox n) in
  Compile.clear_plan_cache ();
  let new_root = if d.d_fuse then Fuse.fuse_cached new_root else new_root in
  let new_plan = Compile.plan_of new_root in
  let patch = Upgrade.diff ?migrate d.d_plan new_plan in
  Hashtbl.iter
    (fun _ s -> Session.upgrade ~stale_map ~skip_migration ~leak_mailbox s patch)
    d.d_sessions;
  (* Ready queue: matched sources keep their FIFO positions under their
     new node ids; wakes of detached sources are dropped with their
     pending counters. *)
  let entries = List.of_seq (Queue.to_seq d.d_ready) in
  Queue.clear d.d_ready;
  List.iter
    (fun (sid, src) ->
      match Upgrade.node_of_old patch src with
      | Some src' -> Queue.push (sid, src') d.d_ready
      | None -> (
        match find d sid with
        | Some s -> Session.drop_pending s
        | None -> ()))
    entries;
  (* Delay heap: rebuilt under new node/slot ids, preserving (due, seq)
     keys so virtual-time order is unchanged. In-flight values of
     detached delay nodes are released with their pending counters.
     (The drains run to quiescence, so the heap is empty at every legal
     upgrade point today; the remap is kept exact anyway for any future
     partial-drain mode.) *)
  let rec drain_heap acc =
    match Pqueue.pop_min !(d.d_delays) with
    | None -> List.rev acc
    | Some (key, dl, rest) ->
      d.d_delays := rest;
      drain_heap ((key, dl) :: acc)
  in
  List.iter
    (fun (key, dl) ->
      match Upgrade.node_of_old patch dl.dl_node with
      | Some node' ->
        let slot' =
          (* a matched node's slot is matched with it *)
          match Upgrade.new_slot_of_old patch dl.dl_slot with
          | Some sl -> sl
          | None -> assert false
        in
        d.d_delays :=
          Pqueue.insert !(d.d_delays) key
            { dl with dl_node = node'; dl_slot = slot' }
      | None -> (
        match find d dl.dl_sid with
        | Some s -> Session.drop_pending_delay s
        | None -> ()))
    (drain_heap []);
  d.d_root <- new_root;
  d.d_plan <- new_plan;
  patch

let upgrades d = d.d_upgrades

(* Drain to quiescence: dispatch ready events in FIFO order; when the
   ready queue empties, advance the virtual clock to the next due delayed
   value, re-queue its wake, and continue. Terminates because every step
   consumes one queued event and delays only re-enter with strictly later
   due times (drains are finite for programs whose delay chains are). *)
let drain_sequential d =
  let dispatched = ref 0 in
  let rec loop () =
    match Queue.take_opt d.d_ready with
    | Some (sid, source) ->
      (match find d sid with
      | Some s ->
        incr dispatched;
        Session.step s ~source
      | None -> ());
      loop ()
    | None -> (
      match Pqueue.pop_min !(d.d_delays) with
      | None -> ()
      | Some ((due, _), dl, rest) ->
        d.d_delays := rest;
        if due > !(d.d_now) then d.d_now := due;
        (match find d dl.dl_sid with
        | Some s ->
          Session.deliver_delayed s ~slot:dl.dl_slot dl.dl_value;
          Session.mark_pending s;
          Queue.push (dl.dl_sid, dl.dl_node) d.d_ready
        | None -> ());
        loop ())
  in
  loop ();
  !dispatched

(* ------------------------------------------------------------------ *)
(* Parallel drain.

   Why per-session traces cannot depend on the schedule: the sequential
   drain's global FIFO, restricted to one session, is exactly that
   session's arrival order — and that restriction is all any session can
   observe (sessions share no mutable state). The parallel drain realises
   precisely the same restriction: phase 1 deals the global FIFO into
   per-session inboxes preserving order; a session task is pinned to one
   domain and drains its inbox to quiescence, with async re-entries
   appended at its own tail (same position the global queue would have
   given them); delays are delivered only at global quiescence by the
   coordinator, in (due, seq) heap order, at most one per session per
   round so a session's delay wake never overtakes the ready events that
   sequential dispatch would have drained first. Which domain runs a task,
   and in which steal order, is therefore unobservable — the B18 oracle
   checks this bit-for-bit against [drain_sequential] under many seeds. *)

let ensure_domain_stats d n =
  if Array.length d.d_domain_stats < n then
    d.d_domain_stats <-
      Array.init n (fun i ->
          if i < Array.length d.d_domain_stats then d.d_domain_stats.(i)
          else Stats.create ())

(* Deal the global ready queue into per-session inboxes, returning the
   sessions that became runnable in first-seen order (deterministic:
   depends only on queue contents). *)
let deal_ready d =
  let runnable = ref [] in
  let rec go () =
    match Queue.take_opt d.d_ready with
    | Some (sid, source) ->
      (match find d sid with
      | Some s ->
        if not (Session.has_wakes s) then runnable := s :: !runnable;
        Session.wake_push s source
      | None -> ());
      go ()
    | None -> ()
  in
  go ();
  List.rev !runnable

(* At global quiescence: deliver the earliest batch of due delays — all
   heap entries at the minimum due time, but at most one per session, in
   (due, seq) order — into inboxes, advancing the virtual clock. At most
   one per session because the sequential drain fully drains a session's
   resulting events before its next delay pops; a second same-due delivery
   in one round would let that wake overtake them. Returns the runnable
   sessions in delivery order. *)
let deliver_due_delays d =
  match Pqueue.pop_min !(d.d_delays) with
  | None -> []
  | Some ((due, _), first, rest) ->
    d.d_delays := rest;
    if due > !(d.d_now) then d.d_now := due;
    let seen = Hashtbl.create 8 in
    let batch = ref [ first ] in
    Hashtbl.replace seen first.dl_sid ();
    let rec collect () =
      match Pqueue.pop_min !(d.d_delays) with
      | Some ((due', _), dl, rest') when due' = due && not (Hashtbl.mem seen dl.dl_sid)
        ->
        d.d_delays := rest';
        Hashtbl.replace seen dl.dl_sid ();
        batch := dl :: !batch;
        collect ()
      (* First entry that is later-due or a repeat session stays in the
         heap (pop_min is non-destructive until we commit [rest']), and
         everything behind it waits for the next round with it. *)
      | Some _ | None -> ()
    in
    collect ();
    List.rev !batch
    |> List.filter_map (fun dl ->
           match find d dl.dl_sid with
           | Some s ->
             Session.deliver_delayed s ~slot:dl.dl_slot dl.dl_value;
             Session.mark_pending s;
             let fresh = not (Session.has_wakes s) in
             Session.wake_push s dl.dl_node;
             if fresh then Some s else None
           | None -> None)

let drain_parallel ?(seed = 0) d =
  let pool =
    match d.d_pool with
    | Some p -> p
    | None -> invalid_arg "Serve.Dispatcher.drain_parallel: no pool"
  in
  check_not_parallel d "drain_parallel";
  let n = Pool.domains pool in
  ensure_domain_stats d n;
  let dispatched = Atomic.make 0 in
  let task_of s w =
    let before = Stats.copy (Session.stats s) in
    let rec go () =
      match Session.wake_pop s with
      | Some source ->
        ignore (Atomic.fetch_and_add dispatched 1);
        Session.step s ~source;
        go ()
      | None -> ()
    in
    go ();
    Stats.add_delta d.d_domain_stats.(w) ~before ~after:(Session.stats s)
  in
  (* One round = one parallel sweep over the runnable sessions, then a
     coordinator-sequential delay delivery. Terminates when a round ends
     with nothing runnable and an empty (or all-future-quiet) heap — the
     same quiescence the sequential drain reaches. *)
  let rec rounds i runnable =
    (match runnable with
    | [] -> ()
    | _ :: _ ->
      d.d_in_parallel := true;
      Fun.protect
        ~finally:(fun () -> d.d_in_parallel := false)
        (fun () ->
          Pool.run ~seed:(seed + i) pool
            (Array.of_list (List.map task_of runnable))));
    match deliver_due_delays d with
    | [] -> ()
    | next -> rounds (i + 1) next
  in
  rounds 0 (deal_ready d);
  Atomic.get dispatched

(* ------------------------------------------------------------------ *)
(* Intra-session parallel drain.

   Like [drain_parallel], but each runnable session's admitted round is
   further split by region group, so data-independent groups of one
   session also run concurrently: one pool task per (session, active
   group), scheduled under the plan's group DAG via [Pool.run_dag] (edges
   only between groups of the same session — sessions stay independent).
   The coordinator owns everything order-sensitive: it admits wakes
   (assigning epochs and dispatch billing) before the barrier, and flushes
   each session's buffered async/delay re-entries after it in (admission
   epoch, group) order — so per-session traces remain bit-identical to
   [drain_sequential], which the serve tests and bench B19 gate. *)

let drain_intra ?(seed = 0) d =
  let pool =
    match d.d_pool with
    | Some p -> p
    | None -> invalid_arg "Serve.Dispatcher.drain_intra: no pool"
  in
  check_not_parallel d "drain_intra";
  ensure_domain_stats d (Pool.domains pool);
  let dispatched = ref 0 in
  let admit_all s =
    let rec go () =
      match Session.wake_pop s with
      | Some source ->
        incr dispatched;
        Session.admit s ~source;
        go ()
      | None -> ()
    in
    go ()
  in
  let schedule_delay s ~node ~slot ~seconds v =
    Session.mark_pending_delay s;
    Mutex.lock d.d_delay_lock;
    incr d.d_seq;
    d.d_delays :=
      Pqueue.insert !(d.d_delays)
        (!(d.d_now) +. seconds, !(d.d_seq))
        { dl_sid = Session.id s; dl_node = node; dl_slot = slot; dl_value = v };
    Mutex.unlock d.d_delay_lock
  in
  (* One sweep = admit every queued wake, run the (session x group) task
     DAG, flush. Async re-entries queue the next sweep; delays are
     delivered only once no session has wakes left, as in the sequential
     drain. *)
  let rec sweep i runnable =
    match runnable with
    | [] -> (
      match deliver_due_delays d with [] -> () | next -> sweep (i + 1) next)
    | _ ->
      List.iter admit_all runnable;
      let active =
        List.filter (fun s -> Session.active_groups s <> []) runnable
      in
      let pos = Hashtbl.create 32 in
      let count = ref 0 in
      let rev_tasks = ref [] in
      List.iter
        (fun s ->
          List.iter
            (fun g ->
              Hashtbl.replace pos (Session.id s, g) !count;
              incr count;
              rev_tasks := (s, g) :: !rev_tasks)
            (Session.active_groups s))
        active;
      let tasks = Array.of_list (List.rev !rev_tasks) in
      let deps =
        Array.map
          (fun (s, g) ->
            List.filter_map
              (fun p -> Hashtbl.find_opt pos (Session.id s, p))
              (Compile.group_preds d.d_plan g))
          tasks
      in
      (match tasks with
      | [||] -> ()
      | _ ->
        d.d_in_parallel := true;
        Fun.protect
          ~finally:(fun () -> d.d_in_parallel := false)
          (fun () ->
            Pool.run_dag ~seed:(seed + i) pool ~deps
              (Array.map
                 (fun (s, g) w ->
                   Session.run_group s g ~dstats:d.d_domain_stats.(w))
                 tasks)));
      let next = ref [] in
      List.iter
        (fun s ->
          Session.flush_groups s
            ~fire:(fun source ->
              Session.mark_pending s;
              let fresh = not (Session.has_wakes s) in
              Session.wake_push s source;
              if fresh then next := s :: !next)
            ~delay:(fun ~node ~slot ~seconds v ->
              schedule_delay s ~node ~slot ~seconds v))
        active;
      sweep i (List.rev !next)
  in
  sweep 0 (deal_ready d);
  !dispatched

let drain d =
  match d.d_pool with
  | Some _ when d.d_intra -> drain_intra d
  | Some _ -> drain_parallel d
  | None -> drain_sequential d

let accounting d =
  let idle = ref 0 and pend = ref 0 and pendd = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      if Session.is_idle s then incr idle;
      pend := !pend + Session.pending s;
      pendd := !pendd + Session.pending_delays s)
    d.d_sessions;
  {
    live = Hashtbl.length d.d_sessions;
    opened = d.d_opened;
    closed = d.d_closed;
    routed = d.d_routed;
    idle = !idle;
    pending_events = !pend;
    pending_delays = !pendd;
  }

let iter_sessions d f = Hashtbl.iter (fun _ s -> f s) d.d_sessions

let pp_accounting ppf a =
  Format.fprintf ppf
    "live=%d opened=%d closed=%d routed=%d idle=%d pending=%d delays=%d"
    a.live a.opened a.closed a.routed a.idle a.pending_events a.pending_delays
