(* Multi-session event routing over one shared compiled plan.

   The dispatcher is the serving counterpart of the runtime's global event
   dispatcher (Fig. 11), generalised by a session id: external events are
   routed [(session, source)] and dispatched strictly in arrival order, so
   per-source ordering within a session is the global FIFO order restricted
   to that session — the paper's ordering guarantee, per session. Async and
   delay boundaries re-enter through the same queue (via [Session.env]),
   which relaxes ordering between a session's async subgraph and its
   synchronous part exactly as the single-session runtime does, while two
   different sessions never synchronise on anything at all.

   Delays use a virtual clock: the heap orders (due time, sequence) and
   [drain] advances [now] to each due time once the ready queue is empty —
   the same deterministic timer semantics as the Cml scheduler's wheel,
   without running a scheduler. Everything here is synchronous and
   single-threaded; no Cml.run is needed, which is what lets felmc serve
   sessions (and the benches churn 10k of them) from plain code. *)

module Signal = Elm_core.Signal
module Reach = Elm_core.Reach
module Stats = Elm_core.Stats
module Trace = Elm_core.Trace
module Fuse = Elm_core.Fuse
module Compile = Elm_core.Compile
module Runtime = Elm_core.Runtime
module Pqueue = Cml.Pqueue

type delayed = {
  dl_sid : int;
  dl_node : int;  (* the delay node to wake *)
  dl_slot : int;  (* its value slot *)
  dl_value : Obj.t;
}

type 'a t = {
  d_root : 'a Signal.t;  (* the (possibly fused) graph all sessions run *)
  d_plan : Compile.plan;
  d_env : Session.env;
  d_sessions : (int, 'a Session.t) Hashtbl.t;
  d_ready : (int * int) Queue.t;  (* (session id, source id), FIFO *)
  d_delays : ((float * int), delayed) Pqueue.t ref;
  d_seq : int ref;  (* tie-break: equal due times stay FIFO *)
  d_now : float ref;  (* virtual clock, advanced by drain *)
  d_tracer : Trace.t option;
  d_policy : Runtime.error_policy;
  d_capacity : int option;
  d_history : int option;
  mutable d_next_sid : int;
  mutable d_opened : int;
  mutable d_closed : int;
  mutable d_routed : int;  (* external injections accepted *)
}

type accounting = {
  live : int;
  opened : int;
  closed : int;
  routed : int;
  idle : int;
  pending_events : int;
  pending_delays : int;
}

let create ?tracer ?(on_node_error = Runtime.Propagate) ?queue_capacity
    ?history ?(fuse = true) root =
  let root = if fuse then Fuse.fuse_cached root else root in
  let plan = Compile.plan_of root in
  let sessions = Hashtbl.create 64 in
  let ready = Queue.create () in
  let delays =
    ref (Pqueue.empty ~compare:(fun (a : float * int) b -> compare a b))
  in
  let seq = ref 0 in
  let now = ref 0.0 in
  let env =
    {
      Session.env_fire =
        (fun ~sid ~source ->
          match Hashtbl.find_opt sessions sid with
          | Some s when not (Session.closed s) ->
            Session.mark_pending s;
            Queue.push (sid, source) ready
          | Some _ | None -> ());
      env_delay =
        (fun ~sid ~node ~slot ~seconds v ->
          match Hashtbl.find_opt sessions sid with
          | Some s when not (Session.closed s) ->
            Session.mark_pending_delay s;
            incr seq;
            delays :=
              Pqueue.insert !delays
                (!now +. seconds, !seq)
                { dl_sid = sid; dl_node = node; dl_slot = slot; dl_value = v }
          | Some _ | None -> ());
    }
  in
  {
    d_root = root;
    d_plan = plan;
    d_env = env;
    d_sessions = sessions;
    d_ready = ready;
    d_delays = delays;
    d_seq = seq;
    d_now = now;
    d_tracer = tracer;
    d_policy = on_node_error;
    d_capacity = queue_capacity;
    d_history = history;
    d_next_sid = 0;
    d_opened = 0;
    d_closed = 0;
    d_routed = 0;
  }

let root d = d.d_root
let plan d = d.d_plan
let now d = !(d.d_now)

let fresh_sid d =
  let sid = d.d_next_sid in
  d.d_next_sid <- sid + 1;
  sid

let open_session d =
  let sid = fresh_sid d in
  let s =
    Session.open_session ~sid ~env:d.d_env ?tracer:d.d_tracer
      ~on_node_error:d.d_policy ?queue_capacity:d.d_capacity
      ?history:d.d_history d.d_root
  in
  Hashtbl.replace d.d_sessions sid s;
  d.d_opened <- d.d_opened + 1;
  s

let clone d src =
  let sid = fresh_sid d in
  let s = Session.clone ~sid src in
  Hashtbl.replace d.d_sessions sid s;
  d.d_opened <- d.d_opened + 1;
  s

let close d s =
  if not (Session.closed s) then begin
    Session.close s;
    Hashtbl.remove d.d_sessions (Session.id s);
    d.d_closed <- d.d_closed + 1
  end

let find d sid = Hashtbl.find_opt d.d_sessions sid

(* Value first, routing second: the step pops the value its ready-queue
   entry promised. One accepted injection = exactly one future [step]. *)
let try_inject d s input v =
  if Session.offer s input v then begin
    Session.mark_pending s;
    Queue.push (Session.id s, Signal.id input) d.d_ready;
    d.d_routed <- d.d_routed + 1;
    true
  end
  else false

let inject d s input v =
  if not (try_inject d s input v) then raise Session.Queue_full

(* Drain to quiescence: dispatch ready events in FIFO order; when the
   ready queue empties, advance the virtual clock to the next due delayed
   value, re-queue its wake, and continue. Terminates because every step
   consumes one queued event and delays only re-enter with strictly later
   due times (drains are finite for programs whose delay chains are). *)
let drain d =
  let dispatched = ref 0 in
  let rec loop () =
    match Queue.take_opt d.d_ready with
    | Some (sid, source) ->
      (match find d sid with
      | Some s ->
        incr dispatched;
        Session.step s ~source
      | None -> ());
      loop ()
    | None -> (
      match Pqueue.pop_min !(d.d_delays) with
      | None -> ()
      | Some ((due, _), dl, rest) ->
        d.d_delays := rest;
        if due > !(d.d_now) then d.d_now := due;
        (match find d dl.dl_sid with
        | Some s ->
          Session.deliver_delayed s ~slot:dl.dl_slot dl.dl_value;
          Session.mark_pending s;
          Queue.push (dl.dl_sid, dl.dl_node) d.d_ready
        | None -> ());
        loop ())
  in
  loop ();
  !dispatched

let accounting d =
  let idle = ref 0 and pend = ref 0 and pendd = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      if Session.is_idle s then incr idle;
      pend := !pend + Session.pending s;
      pendd := !pendd + Session.pending_delays s)
    d.d_sessions;
  {
    live = Hashtbl.length d.d_sessions;
    opened = d.d_opened;
    closed = d.d_closed;
    routed = d.d_routed;
    idle = !idle;
    pending_events = !pend;
    pending_delays = !pendd;
  }

let iter_sessions d f = Hashtbl.iter (fun _ s -> f s) d.d_sessions

let pp_accounting ppf a =
  Format.fprintf ppf
    "live=%d opened=%d closed=%d routed=%d idle=%d pending=%d delays=%d"
    a.live a.opened a.closed a.routed a.idle a.pending_events a.pending_delays
