(** Multi-session event routing over one shared compiled plan.

    The serving counterpart of the runtime's global event dispatcher
    (Fig. 11), generalised by a session id: external events are routed
    [(session, source)] and dispatched strictly in arrival order, so
    per-source ordering {e within} a session is preserved while sessions
    never synchronise with each other. Async and delay boundaries re-enter
    through the same queue, relaxing ordering between a session's async
    subgraph and its synchronous part exactly as the single-session
    runtime does.

    Everything is synchronous and single-threaded on a virtual clock —
    no [Cml.run] required:

    {[
      let d = Dispatcher.create root in
      let a = Dispatcher.open_session d in
      let b = Dispatcher.open_session d in
      Dispatcher.inject d a keyboard 'x';
      ignore (Dispatcher.drain d);
      assert (Session.current a <> Session.current b)  (* a moved, b did not *)
    ]} *)

module Signal = Elm_core.Signal
module Stats = Elm_core.Stats
module Trace = Elm_core.Trace
module Compile = Elm_core.Compile
module Runtime = Elm_core.Runtime
module Upgrade = Elm_core.Upgrade

type 'a t

val create :
  ?tracer:Trace.t ->
  ?on_node_error:Runtime.error_policy ->
  ?queue_capacity:int ->
  ?history:int ->
  ?fuse:bool ->
  ?pool:Pool.t ->
  ?intra:bool ->
  'a Signal.t ->
  'a t
(** Build (or fetch from the plan cache) the compiled plan for the graph
    rooted here and create an empty dispatcher over it. [fuse] (default
    true) runs {!Elm_core.Fuse.fuse_cached} first — note fused composite
    state makes {!clone} approximate; pass [~fuse:false] for exact clones.
    The options are applied to every session opened through this
    dispatcher. A shared [tracer] gets per-session node ids (offset by
    [Compile.id_stride]), so rows never collide. [intra] (default false;
    requires [pool], else [Invalid_argument]) makes {!drain} use
    {!drain_intra}: one session's data-independent region groups also run
    concurrently. *)

val root : 'a t -> 'a Signal.t
(** The graph all sessions run (after fusion, if enabled) — use its input
    nodes with {!inject}. *)

val plan : 'a t -> Compile.plan

(** {1 Session lifecycle} *)

val open_session : 'a t -> 'a Session.t
(** Open a fresh session at the graph's defaults: ~an array copy against
    the shared plan; no threads or channels. *)

val clone : 'a t -> 'a Session.t -> 'a Session.t
(** Snapshot a quiescent session under a fresh id (see
    {!Session.clone}). *)

val close : 'a t -> 'a Session.t -> unit
(** Close and unregister: queued values are dropped, later events for the
    session are ignored. *)

val find : 'a t -> int -> 'a Session.t option

(** {1 Routing} *)

val inject : 'a t -> 'a Session.t -> 'i Signal.t -> 'i -> unit
(** Queue one external event for the given session and input node; it is
    dispatched by the next {!drain}, after everything already queued.
    Raises {!Session.Queue_full} when the input's bounded queue is full,
    [Invalid_argument] if the node is not an input of the plan or the
    session is closed. *)

val try_inject : 'a t -> 'a Session.t -> 'i Signal.t -> 'i -> bool
(** Like {!inject} but returns [false] (counting a drop against the
    session) instead of raising on a full queue. *)

val drain : 'a t -> int
(** Dispatch queued events until quiescence, advancing the virtual clock
    through due delayed values once the ready queue empties. Returns the
    number of events dispatched. Sequential FIFO when the dispatcher has
    no pool; {!drain_parallel} (seed 0) when it does — per-session
    observable traces are identical either way. *)

val drain_parallel : ?seed:int -> 'a t -> int
(** Drain by fanning the runnable sessions out over the dispatcher's
    {!Pool} in rounds: each round runs one task per runnable session (a
    task drains that session's inbox to quiescence on one domain — the
    pinning that preserves per-(session,source) FIFO), then the
    coordinator delivers the earliest batch of due delayed values (at most
    one per session, in heap order) and starts the next round. [seed]
    selects the pool's deal/steal schedule; per-session change traces are
    bit-identical for every seed and equal to the sequential drain's —
    the interleaving oracle in the test suite and bench B18 check exactly
    this. Raises [Invalid_argument] if the dispatcher has no pool.
    Session lifecycle calls ([open_session]/[clone]/[close]) are rejected
    while a parallel drain is running. *)

val drain_intra : ?seed:int -> 'a t -> int
(** Drain with {e intra-session} parallelism: each sweep admits every
    queued wake coordinator-side ({!Session.admit} — epochs and dispatch
    billing are assigned before anything runs), then executes one pool
    task per (session, active region group) under the plan's group DAG
    ({!Pool.run_dag}; edges only between groups of the same session), then
    flushes each session's buffered async/delay re-entries in (admission
    epoch, group) order. Delays are delivered only at global quiescence,
    as in the other drains. Per-session change traces and counter totals
    are bit-identical to {!drain} without a pool, for every [seed] and
    domain count. Raises [Invalid_argument] if the dispatcher has no
    pool. *)

(** {1 Live upgrade} *)

val upgrade_all :
  ?migrate:Upgrade.migration list ->
  ?mutate:Runtime.mutation ->
  'a t ->
  'a Signal.t ->
  Upgrade.patch
(** Swap every live session onto the graph rooted at the replacement
    signal, between event waves. The replacement is fused iff the
    dispatcher was created with [~fuse:true], the shared plan cache (and
    the fusion memos with it) is invalidated and reseeded with the new
    plan, and the patch ({!Upgrade.diff} against the current plan, with
    the caller's [migrate] list) is applied to each session
    ({!Session.upgrade}) — then the dispatcher's own seams are rewritten:
    ready-queue entries and delay-heap wakes move to their matched new
    node ids, and wakes of detached sources are released together with
    their pending counters, so the accounting invariant stays exact and
    no accepted event of a surviving subgraph is dropped. An identity
    upgrade (structurally equal replacement, no migrations) is observably
    a no-op at any drain point.

    Admission is wave-boundary only: raises [Invalid_argument] during a
    parallel drain ([check_not_parallel]); the sequential drains never
    run user code between steps, so calling this between [drain]s — or
    from a {!Runtime.at_quiescence} hook on a runtime-driven graph —
    always sees consistent arenas.

    [mutate] plants one of the upgrade bugs of the mutation-testing
    catalogue ({!Runtime.mutation.Stale_slot_map},
    [Skip_migration], [Leak_seam_mailbox]); the occurrence [n] counts
    [upgrade_all] calls on this dispatcher. Not for applications. *)

val upgrades : 'a t -> int
(** Number of upgrades applied over this dispatcher's lifetime. *)

val pool : 'a t -> Pool.t option

val domain_stats : 'a t -> Stats.t array
(** Per-worker-slot counter accumulators: slot [w] holds the work executed
    by pool worker [w] across parallel drains (attributed via
    {!Elm_core.Stats.add_delta} snapshots around each task). Merging all
    slots with {!Elm_core.Stats.merge} reproduces the totals of the same
    drain run sequentially. Empty until the first parallel drain. *)

val now : 'a t -> float
(** The virtual clock: the due time of the latest delayed value
    delivered. *)

(** {1 Accounting} *)

type accounting = {
  live : int;  (** Currently open sessions. *)
  opened : int;  (** Sessions ever opened (including clones). *)
  closed : int;
  routed : int;  (** External injections accepted. *)
  idle : int;  (** Live sessions with nothing in flight. *)
  pending_events : int;  (** Routed events not yet dispatched. *)
  pending_delays : int;  (** Values waiting in the delay heap. *)
}

val accounting : 'a t -> accounting
val pp_accounting : Format.formatter -> accounting -> unit

val iter_sessions : 'a t -> ('a Session.t -> unit) -> unit
