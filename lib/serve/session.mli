(** One live instance of a shared compiled plan.

    A session is the serving layer's unit of isolation: the
    {!Elm_core.Compile.plan} (op arrays, slot layout, reachability) is
    shared read-only across every session of one graph shape, while
    everything a session mutates — its arena, pending-value queues,
    counters, change history — is its own. Opening a session is ~an array
    copy; no threads, mailboxes or channels are created, and two sessions
    can never observe each other's [foldp] state because no mutable word
    is reachable from both.

    Sessions are driven synchronously by a {!Dispatcher}, which owns the
    ready queue and the virtual delay heap; use that module to open, route
    and drain. The functions marked {e dispatcher protocol} below are the
    seam between the two and are not meant for application code. *)

module Signal = Elm_core.Signal
module Stats = Elm_core.Stats
module Trace = Elm_core.Trace
module Compile = Elm_core.Compile
module Runtime = Elm_core.Runtime
module Upgrade = Elm_core.Upgrade

exception Queue_full
(** Raised by [Dispatcher.inject] when the target input's bounded queue is
    full (see [queue_capacity]). *)

type env = {
  env_fire : sid:int -> source:int -> unit;
      (** An async boundary fired inside session [sid]: register a fresh
          event for [source] on the dispatcher's ready queue. *)
  env_delay : sid:int -> node:int -> slot:int -> seconds:float -> Obj.t -> unit;
      (** A delay boundary fired: schedule the value for [slot] of session
          [sid] on the dispatcher's virtual delay heap, waking [node]
          [seconds] later. *)
}
(** The session's view of its dispatcher: how boundary re-entries get back
    into the event stream. *)

type 'a t

(** {1 Lifecycle} *)

val open_session :
  sid:int ->
  env:env ->
  ?tracer:Trace.t ->
  ?on_node_error:Runtime.error_policy ->
  ?queue_capacity:int ->
  ?history:int ->
  'a Signal.t ->
  'a t
(** Open a fresh session of the graph rooted at the given (built, already
    fused if desired) signal, against the cached plan ({!Compile.plan_of}).
    [queue_capacity] bounds each {e input}'s pending-value queue (async and
    delay queues stay unbounded — their producers run on the session's own
    step path). [history] caps the retained change log as in
    [Runtime.start]. *)

val clone : sid:int -> 'a t -> 'a t
(** Snapshot a {e quiescent} session ([is_idle] true): arena, current
    value, change history and counters are copied; fresh empty queues.
    Composite step state (fused [drop_repeats]) is re-created rather than
    copied — clones of unfused graphs are exact; see DESIGN.md. Raises
    [Invalid_argument] if the session is closed or has in-flight events
    (there is no consistent cut through a half-dispatched event). *)

val close : 'a t -> unit
(** Mark the session closed and drop its queued values. Subsequent routed
    events are ignored; [offer] raises. *)

(** {1 State} *)

val id : 'a t -> int
val current : 'a t -> 'a

val changes : 'a t -> (int * 'a) list
(** Changes of the root, oldest first, stamped with the session-local
    epoch. Two sessions fed the same per-source event sequence produce
    bit-identical change lists — the B17 isolation oracle. *)

val stats : 'a t -> Stats.t
val epoch : 'a t -> int

val pending : 'a t -> int
(** Events routed to this session and not yet stepped. *)

val pending_delays : 'a t -> int
(** Values waiting in the dispatcher's delay heap for this session. *)

val dropped : 'a t -> int
(** Injections refused because a bounded input queue was full. *)

val closed : 'a t -> bool

val is_idle : 'a t -> bool
(** No pending events and no pending delays: the session is exactly the
    contents of its arena (clonable, and its footprint is stable). *)

val footprint_words : 'a t -> int
(** Heap words reachable from the session's mutable parts (arena, queues,
    history, counters) — the marginal memory of one more session; the
    shared plan is not included. *)

val pp_stats : Format.formatter -> 'a t -> unit
(** The session's counters prefixed with its id (["s3: events=..."]), so
    many sessions can report through one sink without colliding rows. *)

(** {1 Dispatcher protocol}

    Called by {!Dispatcher}; applications route through it instead. *)

val offer : 'a t -> 'i Signal.t -> 'i -> bool
(** Queue an external value for the given input node. Returns [false] (and
    counts a drop) when the input's bounded queue is full. Raises
    [Invalid_argument] if the node is not an input of the session's plan
    or the session is closed. The caller is responsible for routing the
    matching ready-queue entry {e after} a [true] return. *)

val step : 'a t -> source:int -> unit
(** Run one routed event to completion: bump the session-local epoch and
    sweep the plan's regions (wake test per region) in topological order.
    Settles the per-session elision invariant
    [messages + elided = nodes * events]. *)

val deliver_delayed : 'a t -> slot:int -> Obj.t -> unit
(** A delayed value coming due: park it in the delay node's queue; the
    dispatcher routes the wake. *)

val mark_pending : 'a t -> unit
val mark_pending_delay : 'a t -> unit

val drop_pending : 'a t -> unit
(** A routed event discarded across an upgrade (its source node was
    detached): the matching future [step] will never run, so the pending
    counter comes down here. *)

val drop_pending_delay : 'a t -> unit
(** Likewise for a discarded delay-heap entry. *)

val upgrade :
  ?stale_map:bool ->
  ?skip_migration:bool ->
  ?leak_mailbox:bool ->
  'a t ->
  Upgrade.patch ->
  unit
(** Swap the session onto the patch's new plan: remap the arena
    ({!Upgrade.remap}), rebuild queues and the execution context against
    the new slot layout, transfer pending values queued on matched source
    slots, re-register trace rows under the new id stride. The change
    history, stats and epoch numbering persist. Called by
    [Dispatcher.upgrade_all] between event waves; the flags plant the
    mutation-catalogue upgrade bugs and are not for applications. *)

val wake_push : 'a t -> int -> unit
(** Append a source-id wake to the session's parallel-drain inbox — the
    per-session restriction of the dispatcher's global FIFO. Owned by the
    domain currently running the session's task (or the coordinator
    between rounds); never touched concurrently. *)

val wake_pop : 'a t -> int option
(** Take the oldest queued wake, if any. *)

val has_wakes : 'a t -> bool

(** {2 Intra-session parallel stepping}

    The dispatcher's [intra] mode splits one session's work by region
    {e group} (the plan's SCC-condensed region dependency DAG,
    {!Compile.group_deps}) so data-independent groups of one round can run
    on different pool domains. Protocol per round: the coordinator
    {!admit}s every queued wake (assigning epochs and settling the
    deterministic per-event counters), schedules one task per
    {!active_groups} entry under the plan's group-DAG edges
    ({!Compile.group_preds}), each task calls {!run_group}, and after the
    barrier the coordinator calls {!flush_groups} to apply buffered
    async/delay re-entries in (admission epoch, group) order and merge the
    scratch counters — totals and change traces are bit-identical to
    {!step}ping the same wakes sequentially. *)

val admit : 'a t -> source:int -> unit
(** Coordinator-side admission of one routed wake: bump the session epoch,
    bill events/notified/region_steps/elided and the tracer dispatch row,
    and queue the round on each woken region's group. Closed sessions
    consume the wake without effect, as {!step} does. *)

val active_groups : 'a t -> int list
(** Groups with admitted, not-yet-run rounds, ascending. *)

val run_group : 'a t -> int -> dstats:Stats.t -> unit
(** Run every admitted round of one group (pool-task side): member regions
    in index order per round, value-dependent counters billed to the
    group's scratch, boundary effects buffered. The delta is also added to
    [dstats] — the caller's per-worker attribution slot. *)

val flush_groups :
  'a t ->
  fire:(int -> unit) ->
  delay:(node:int -> slot:int -> seconds:float -> Obj.t -> unit) ->
  unit
(** Coordinator-side: apply the buffered effects of every group in
    (admission epoch, group index) order — [fire source] for async
    re-entries, [delay] for heap scheduling — and merge each group's
    scratch delta into {!stats}. *)
