module Runtime = Elm_core.Runtime
module Signal = Elm_core.Signal
module Stats = Elm_core.Stats
module Sched = Cml.Scheduler

type 'a session = {
  root : 'a Signal.t;
  drive : 'a Runtime.t -> unit;
}

type 'a program = {
  p_name : string;
  p_deterministic : bool;
  p_classify : ('a -> int option) option;
  p_show : 'a -> string;
  p_build : unit -> 'a session;
}

let program ~name ?(deterministic = true) ?classify ~show build =
  {
    p_name = name;
    p_deterministic = deterministic;
    p_classify = classify;
    p_show = show;
    p_build = build;
  }

type invariant =
  | Trace_equal
  | Per_source_order
  | Node_epoch_order
  | Accounting
  | No_deadlock

type violation = {
  v_invariant : invariant;
  v_policy : Sched.policy;
  v_detail : string;
  v_decisions : int list;
}

type report = {
  r_program : string;
  r_schedules : int;
  r_violations : violation list;
}

let ok r = r.r_violations = []

let invariant_name = function
  | Trace_equal -> "trace-equal"
  | Per_source_order -> "per-source-order"
  | Node_epoch_order -> "node-epoch-order"
  | Accounting -> "accounting"
  | No_deadlock -> "no-deadlock"

let pp_policy ppf = function
  | Sched.Fifo -> Format.fprintf ppf "fifo"
  | Sched.Seeded_random s -> Format.fprintf ppf "random:%d" s
  | Sched.Pct { seed; depth } -> Format.fprintf ppf "pct:%d:%d" seed depth
  | Sched.Replay l -> Format.fprintf ppf "replay:%d decisions" (List.length l)

let replay_hint v =
  match v.v_policy with
  | Sched.Fifo ->
    "reproducible under the default FIFO schedule (no seed needed)"
  | Sched.Seeded_random s ->
    Printf.sprintf
      "replay: felmc run --sched-seed %d / FELM_SCHED_SEED=%d dune runtest" s s
  | Sched.Pct { seed; depth } ->
    Printf.sprintf
      "replay: felmc run --sched-pct %d:%d / FELM_SCHED_PCT=%d:%d dune runtest"
      seed depth seed depth
  | Sched.Replay _ -> "replay: feed the decision prefix back via Replay"

(* ------------------------------------------------------------------ *)
(* One observed execution, serialized so observations from different
   instantiations of the same program are comparable. *)

type obs = {
  ob_changes : (float * string) list;
  ob_classes : (int * string list) list;  (* classify projections, sorted *)
  ob_events : int;
  ob_messages : int;
  ob_elided : int;
  ob_failures : int;
  ob_nodes : int;
  ob_epochs : (int * int list) list;  (* node id -> stamped epochs, sorted *)
}

type outcome =
  | Done of obs
  | Crashed of string

type opts = {
  o_backend : Runtime.backend;
  o_mode : Runtime.mode;
  o_dispatch : Runtime.dispatch option;
  o_fuse : bool;
  o_on_node_error : Runtime.error_policy;
  o_queue_capacity : int option;
  o_max_switches : int;
  o_mutate : Runtime.mutation option;
  o_domains : int option;
      (* intra-session parallel dispatch (compiled backend): the Domains
         exploration axis — traces must not depend on the domain count *)
}

let run_once (type a) (p : a program) opts policy : outcome * int list =
  let epochs : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let observer ~node ~epoch ~changed:_ =
    match Hashtbl.find_opt epochs node with
    | Some l -> l := epoch :: !l
    | None -> Hashtbl.add epochs node (ref [ epoch ])
  in
  let rt_box = ref None in
  let stop_rt () =
    (* Release the runtime-owned domain pool (if [o_domains] made one):
       the explorer starts hundreds of runtimes, so leaking worker domains
       is not an option. Safe outside [Cml.run]; the change log and
       counters stay readable after stop. *)
    match !rt_box with
    | Some rt -> Runtime.stop rt
    | None -> ()
  in
  let outcome =
    try
      Sched.run ~policy ~max_switches:opts.o_max_switches (fun () ->
          let s = p.p_build () in
          let rt =
            Runtime.start ~backend:opts.o_backend ~mode:opts.o_mode
              ?dispatch:opts.o_dispatch
              ~fuse:opts.o_fuse ~on_node_error:opts.o_on_node_error
              ?queue_capacity:opts.o_queue_capacity ~observer
              ?mutate:opts.o_mutate ?domains:opts.o_domains s.root
          in
          rt_box := Some rt;
          s.drive rt);
      let rt = Option.get !rt_box in
      stop_rt ();
      let stats = Runtime.stats rt in
      let changes = Runtime.changes rt in
      let classes =
        match p.p_classify with
        | None -> []
        | Some classify ->
          let tbl : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun (_, v) ->
              match classify v with
              | None -> ()
              | Some c -> (
                let s = p.p_show v in
                match Hashtbl.find_opt tbl c with
                | Some l -> l := s :: !l
                | None -> Hashtbl.add tbl c (ref [ s ])))
            changes;
          Hashtbl.fold (fun c l acc -> (c, List.rev !l) :: acc) tbl []
          |> List.sort compare
      in
      Done
        {
          ob_changes = List.map (fun (t, v) -> (t, p.p_show v)) changes;
          ob_classes = classes;
          ob_events = stats.Stats.events;
          ob_messages = stats.Stats.messages;
          ob_elided = stats.Stats.elided_messages;
          ob_failures = stats.Stats.node_failures;
          ob_nodes = Runtime.node_count rt;
          ob_epochs =
            Hashtbl.fold (fun n l acc -> (n, List.rev !l) :: acc) epochs []
            |> List.sort compare;
        }
    with e ->
      stop_rt ();
      Crashed (Printexc.to_string e)
  in
  (outcome, Sched.decision_log ())

(* ------------------------------------------------------------------ *)
(* Invariant checking. Absolute checks hold for any single run; relative
   checks compare a chaos run to the FIFO reference. *)

let strictly_increasing l =
  let rec go = function
    | a :: (b :: _ as rest) -> a < b && go rest
    | _ -> true
  in
  go l

let check_absolute wanted obs =
  let vs = ref [] in
  let add inv detail = vs := (inv, detail) :: !vs in
  if List.mem Accounting wanted then begin
    let lhs = obs.ob_messages + obs.ob_elided in
    let rhs = obs.ob_nodes * obs.ob_events in
    if lhs <> rhs then
      add Accounting
        (Printf.sprintf
           "messages(%d) + elided(%d) = %d, expected nodes(%d) * events(%d) \
            = %d"
           obs.ob_messages obs.ob_elided lhs obs.ob_nodes obs.ob_events rhs)
  end;
  if List.mem Node_epoch_order wanted then
    List.iter
      (fun (node, epochs) ->
        if not (strictly_increasing epochs) then
          add Node_epoch_order
            (Printf.sprintf
               "node %d stamped epochs out of order: [%s]" node
               (String.concat "; " (List.map string_of_int epochs))))
      obs.ob_epochs;
  List.rev !vs

let check_relative p wanted ~reference obs =
  let vs = ref [] in
  let add inv detail = vs := (inv, detail) :: !vs in
  if List.mem No_deadlock wanted && obs.ob_events <> reference.ob_events then
    add No_deadlock
      (Printf.sprintf "processed %d events, reference processed %d"
         obs.ob_events reference.ob_events);
  if List.mem Trace_equal wanted && p.p_deterministic then begin
    if obs.ob_changes <> reference.ob_changes then
      add Trace_equal
        (Printf.sprintf
           "change trace diverged from FIFO reference (%d vs %d changes)"
           (List.length obs.ob_changes)
           (List.length reference.ob_changes))
    else if obs.ob_messages <> reference.ob_messages then
      add Trace_equal
        (Printf.sprintf "message count %d, reference %d" obs.ob_messages
           reference.ob_messages)
    else if obs.ob_failures <> reference.ob_failures then
      add Trace_equal
        (Printf.sprintf "node failures %d, reference %d" obs.ob_failures
           reference.ob_failures)
  end;
  (* Node ids are drawn from a global counter, so two builds of the same
     program get different absolute ids; sorted ascending they follow
     creation order, which IS stable across builds — compare positionally. *)
  if List.mem Node_epoch_order wanted && p.p_deterministic then
    if List.map snd obs.ob_epochs <> List.map snd reference.ob_epochs then
      add Node_epoch_order
        "per-node epoch sequences diverged from FIFO reference";
  if List.mem Per_source_order wanted && p.p_classify <> None then
    List.iter
      (fun (c, seq) ->
        let ref_seq =
          match List.assoc_opt c reference.ob_classes with
          | Some s -> s
          | None -> []
        in
        if seq <> ref_seq then
          add Per_source_order
            (Printf.sprintf
               "source class %d emitted [%s], reference [%s]" c
               (String.concat "; " seq)
               (String.concat "; " ref_seq)))
      obs.ob_classes;
  List.rev !vs

let check p wanted ~reference outcome =
  match (outcome, reference) with
  | Crashed msg, _ ->
    if List.mem No_deadlock wanted then
      [ (No_deadlock, Printf.sprintf "run did not complete: %s" msg) ]
    else []
  | Done obs, Some (Done ref_obs) ->
    check_absolute wanted obs @ check_relative p wanted ~reference:ref_obs obs
  | Done obs, (None | Some (Crashed _)) -> check_absolute wanted obs

(* ------------------------------------------------------------------ *)

let take n l = List.filteri (fun i _ -> i < n) l

(* Shrink a failing decision log to a minimal failing prefix: replaying a
   prefix runs those switches verbatim and continues in FIFO order. Prefix
   failure is monotone for every schedule-dependent bug we know how to
   plant, so a binary search suffices; if the midpoint probes disagree with
   monotonicity the full log is returned, which is always a valid failing
   schedule. *)
let shrink p opts wanted ~reference log =
  let violates k =
    let outcome, _ = run_once p opts (Sched.Replay (take k log)) in
    check p wanted ~reference outcome <> []
  in
  let len = List.length log in
  if violates 0 then []
  else begin
    let lo = ref 0 and hi = ref len in
    (* invariant: violates !hi, not (violates !lo) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if violates mid then hi := mid else lo := mid
    done;
    let prefix = take !hi log in
    if violates !hi then prefix else log
  end

let default_invariants p =
  [ No_deadlock; Accounting; Node_epoch_order ]
  @ (if p.p_deterministic then [ Trace_equal ] else [])
  @ match p.p_classify with Some _ -> [ Per_source_order ] | None -> []

let run ?(schedules = 50) ?(seed = 0) ?invariants
    ?(backend : Runtime.backend = Runtime.Pipelined)
    ?(mode = Runtime.Pipelined) ?dispatch ?(fuse = true)
    ?(on_node_error = Runtime.Propagate) ?queue_capacity
    ?(max_switches = 5_000_000) ?mutate ?domains p =
  if Sched.running () then
    invalid_arg "Explore.run: must be called outside Cml.run";
  let opts =
    {
      o_backend = backend;
      o_mode = mode;
      o_dispatch = dispatch;
      o_fuse = fuse;
      o_on_node_error = on_node_error;
      o_queue_capacity = queue_capacity;
      o_max_switches = max_switches;
      o_mutate = mutate;
      o_domains = domains;
    }
  in
  let wanted =
    match invariants with Some l -> l | None -> default_invariants p
  in
  let violations = ref [] in
  let record policy decisions found =
    List.iter
      (fun (inv, detail) ->
        violations :=
          {
            v_invariant = inv;
            v_policy = policy;
            v_detail = detail;
            v_decisions = decisions;
          }
          :: !violations)
      found
  in
  (* FIFO reference: checked against the absolute invariants only. *)
  let ref_outcome, _ = run_once p opts Sched.Fifo in
  record Sched.Fifo [] (check p wanted ~reference:None ref_outcome);
  let reference = Some ref_outcome in
  for i = 0 to schedules - 1 do
    let policy =
      if i mod 2 = 0 then Sched.Seeded_random (seed + i)
      else Sched.Pct { seed = seed + i; depth = 2 + (i mod 4) }
    in
    let outcome, log = run_once p opts policy in
    match check p wanted ~reference outcome with
    | [] -> ()
    | found ->
      let prefix =
        match reference with
        | Some (Done _) -> shrink p opts wanted ~reference log
        | _ -> log
      in
      record policy prefix found
  done;
  {
    r_program = p.p_name;
    r_schedules = schedules;
    r_violations = List.rev !violations;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>explore %s: %d schedules, %d violation(s)@,"
    r.r_program r.r_schedules
    (List.length r.r_violations);
  List.iter
    (fun v ->
      Format.fprintf ppf "  [%s] under %a: %s@," (invariant_name v.v_invariant)
        pp_policy v.v_policy v.v_detail;
      Format.fprintf ppf "    shrunk schedule prefix (%d decisions): [%s]@,"
        (List.length v.v_decisions)
        (String.concat "; "
           (List.map string_of_int (take 32 v.v_decisions))
        ^ if List.length v.v_decisions > 32 then "; ..." else "");
      Format.fprintf ppf "    %s@," (replay_hint v))
    r.r_violations;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Live-upgrade exploration.

   The serve layer admits upgrades only between event waves, so the
   schedule axis for upgrades is not thread interleaving but the upgrade
   point: which prefix of the event stream has been injected — and
   whether it has drained — when [Dispatcher.upgrade_all] runs.
   [run_upgrade] sweeps every split point in both styles (quiescent: the
   prefix fully drained; pending: the prefix still queued, exercising the
   ready-queue and seam-mailbox remap), runs the suffix, and compares
   each session's change trace against a never-upgraded run of the old
   program — the replay-differential oracle. The programs this axis
   accepts are those whose replacement is observationally equivalent
   under correct migration (identity upgrades trivially; state-migrating
   ones by construction, e.g. a re-biased foldp accumulator whose new
   view undoes the bias), so any divergence, crash, accounting drift or
   dropped event at any upgrade point is a bug — which is exactly how the
   planted upgrade mutations (Stale_slot_map, Skip_migration,
   Leak_seam_mailbox) get caught. *)

module Upgrade = Elm_core.Upgrade
module Dispatcher = Elm_serve.Dispatcher
module Session = Elm_serve.Session
module Pool = Elm_serve.Pool

type 'a ugraph = {
  ug_root : 'a Signal.t;
  ug_inputs : int Signal.t array;
}

type 'a uprogram = {
  u_name : string;
  u_show : 'a -> string;
  u_classify : ('a -> int option) option;
  u_old : unit -> 'a ugraph;
  u_new : unit -> 'a ugraph;
  u_migrate : unit -> Upgrade.migration list;
  u_events : (int * int) list;  (* (input index, value), arrival order *)
}

let upgrade_program ~name ?classify ~show ?(migrate = fun () -> [])
    ~old_graph ~new_graph events =
  {
    u_name = name;
    u_show = show;
    u_classify = classify;
    u_old = old_graph;
    u_new = new_graph;
    u_migrate = migrate;
    u_events = events;
  }

(* One run's observation: per-session shown change traces, per-source
   class projections, and the dispatcher's final accounting. *)
type uobs = {
  uo_traces : (int * string) list list;
  uo_classes : (int * string list) list list;
  uo_acc : Dispatcher.accounting;
  uo_dropped : int;
  uo_stepped : int;
}

let uclasses p changes =
  match p.u_classify with
  | None -> []
  | Some classify ->
    let tbl : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (_, v) ->
        match classify v with
        | None -> ()
        | Some c -> (
          let s = p.u_show v in
          match Hashtbl.find_opt tbl c with
          | Some l -> l := s :: !l
          | None -> Hashtbl.add tbl c (ref [ s ])))
      changes;
    Hashtbl.fold (fun c l acc -> (c, List.rev !l) :: acc) tbl []
    |> List.sort compare

let uobserve p d sessions =
  {
    uo_traces =
      List.map
        (fun s ->
          List.map (fun (e, v) -> (e, p.u_show v)) (Session.changes s))
        sessions;
    uo_classes = List.map (fun s -> uclasses p (Session.changes s)) sessions;
    uo_acc = Dispatcher.accounting d;
    uo_dropped = List.fold_left (fun t s -> t + Session.dropped s) 0 sessions;
    uo_stepped = List.fold_left (fun t s -> t + Session.epoch s) 0 sessions;
  }

(* Two sessions per run: upgrades must preserve isolation as well as each
   session's own trace. [upgrade_at = None] is the reference. *)
let urun p ~fuse ~pool ~mutate ~upgrade_at =
  try
    let g = p.u_old () in
    let d = Dispatcher.create ~fuse ?pool g.ug_root in
    let s1 = Dispatcher.open_session d in
    let s2 = Dispatcher.open_session d in
    let evs = Array.of_list p.u_events in
    let inject_range inputs lo hi =
      for j = lo to hi - 1 do
        let i, v = evs.(j) in
        Dispatcher.inject d s1 inputs.(i) v;
        Dispatcher.inject d s2 inputs.(i) v
      done
    in
    (match upgrade_at with
    | None -> inject_range g.ug_inputs 0 (Array.length evs)
    | Some (k, quiesce) ->
      inject_range g.ug_inputs 0 k;
      if quiesce then ignore (Dispatcher.drain d);
      let g' = p.u_new () in
      ignore
        (Dispatcher.upgrade_all ~migrate:(p.u_migrate ()) ?mutate d g'.ug_root);
      inject_range g'.ug_inputs k (Array.length evs));
    ignore (Dispatcher.drain d);
    Ok (uobserve p d [ s1; s2 ])
  with e -> Error (Printexc.to_string e)

let ucheck p ~reference outcome ~where =
  match outcome with
  | Error msg ->
    [ (No_deadlock, Printf.sprintf "%s: run did not complete: %s" where msg) ]
  | Ok obs ->
    let vs = ref [] in
    let add inv detail =
      vs := (inv, Printf.sprintf "%s: %s" where detail) :: !vs
    in
    if obs.uo_traces <> reference.uo_traces then
      add Trace_equal
        "change traces diverged from the never-upgraded reference";
    if obs.uo_stepped <> reference.uo_stepped then
      add No_deadlock
        (Printf.sprintf "stepped %d events, reference stepped %d"
           obs.uo_stepped reference.uo_stepped);
    if p.u_classify <> None && obs.uo_classes <> reference.uo_classes then
      add Per_source_order
        "per-source class projections diverged from the reference";
    let acc = obs.uo_acc in
    if
      acc.Dispatcher.pending_events <> 0
      || acc.Dispatcher.pending_delays <> 0
      || acc.Dispatcher.idle <> acc.Dispatcher.live
      || obs.uo_dropped > 0
    then
      add Accounting
        (Printf.sprintf
           "after final drain: pending=%d delays=%d idle=%d/%d dropped=%d"
           acc.Dispatcher.pending_events acc.Dispatcher.pending_delays
           acc.Dispatcher.idle acc.Dispatcher.live obs.uo_dropped);
    List.rev !vs

let run_upgrade ?(fuse = false) ?mutate ?domains p =
  if Sched.running () then
    invalid_arg "Explore.run_upgrade: must be called outside Cml.run";
  let with_pool f =
    match domains with
    | Some k when k > 1 ->
      let pool = Pool.create ~domains:k () in
      Fun.protect ~finally:(fun () -> Pool.close pool) (fun () -> f (Some pool))
    | _ -> f None
  in
  with_pool (fun pool ->
      let n = List.length p.u_events in
      match urun p ~fuse ~pool ~mutate:None ~upgrade_at:None with
      | Error msg ->
        {
          r_program = p.u_name;
          r_schedules = 0;
          r_violations =
            [
              {
                v_invariant = No_deadlock;
                v_policy = Sched.Fifo;
                v_detail = "reference run crashed: " ^ msg;
                v_decisions = [];
              };
            ];
        }
      | Ok reference ->
        let violations = ref [] in
        let runs = ref 0 in
        List.iter
          (fun quiesce ->
            for k = 0 to n do
              incr runs;
              let where =
                Printf.sprintf "upgrade at %d/%d (%s)" k n
                  (if quiesce then "quiescent" else "pending events")
              in
              let outcome =
                urun p ~fuse ~pool ~mutate ~upgrade_at:(Some (k, quiesce))
              in
              List.iter
                (fun (inv, detail) ->
                  violations :=
                    {
                      v_invariant = inv;
                      v_policy = Sched.Fifo;
                      v_detail = detail;
                      v_decisions = [ k; (if quiesce then 1 else 0) ];
                    }
                    :: !violations)
                (ucheck p ~reference outcome ~where)
            done)
          [ true; false ];
        {
          r_program = p.u_name;
          r_schedules = !runs;
          r_violations = List.rev !violations;
        })

let policy_of_env () =
  let seed =
    match Sys.getenv_opt "FELM_SCHED_SEED" with
    | Some s -> int_of_string_opt (String.trim s)
    | None -> None
  in
  match seed with
  | Some n -> Some (Sched.Seeded_random n)
  | None -> (
    (* a malformed or empty FELM_SCHED_SEED falls through to PCT *)
    match Sys.getenv_opt "FELM_SCHED_PCT" with
    | Some s -> (
      match String.split_on_char ':' (String.trim s) with
      | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some seed, Some depth -> Some (Sched.Pct { seed; depth })
        | _ -> None)
      | _ -> None)
    | None -> None)
