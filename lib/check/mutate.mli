(** Planted-bug coverage for the schedule explorer.

    A checker that never fires is indistinguishable from a checker that
    works, so this module plants each {!Elm_core.Runtime.mutation} — a
    dropped [No_change], a stale epoch stamp, an out-of-order mailbox admit
    — into a known-good signal program and asserts that {!Explore.run}
    reports violations. CI runs {!all_caught} in smoke mode; a silent
    checker regression therefore fails the build. *)

type planted = {
  name : string;
  spec : Elm_core.Runtime.mutation;
}

val all : planted list
(** The three planted ordering bugs, with occurrence indices tuned to land
    mid-run in {!victim}. *)

val victim : unit -> int Explore.program
(** A deterministic two-input diamond (chains, a [drop_repeats] arm, a
    [lift2] join, a [foldp] sum) with enough [No_change] traffic for every
    mutation to have a target. Clean by construction: exploring it without
    a mutation must report zero violations. *)

val catches :
  ?backend:Elm_core.Runtime.backend ->
  ?schedules:int ->
  ?seed:int ->
  unit ->
  (planted * Explore.report) list
(** Explore {!victim} once per planted mutation (default [4] schedules per
    mutation, plus the reference run that usually already trips).
    [backend] selects the runtime backend under test — the compiled
    backend routes emissions through the same accounting hooks, so every
    mutation must still be caught there. *)

val all_caught :
  ?backend:Elm_core.Runtime.backend -> ?schedules:int -> ?seed:int -> unit ->
  bool
(** [true] when every planted mutation produced at least one violation. *)

(** {1 Upgrade mutations}

    The same story for the live-upgrade path: each
    {!Elm_core.Runtime.mutation} upgrade bug — a rotated slot map, a
    skipped state migration, a leaked seam mailbox — is planted into
    {!Explore.run_upgrade}'s upgrade-point sweep over a known-equivalent
    replacement, and the replay-differential oracle must flag it. *)

val upgrade_all : planted list
(** The three planted upgrade bugs, occurrence [1] (each sweep run
    performs exactly one upgrade per dispatcher). *)

val upgrade_victim : unit -> int Explore.uprogram
(** Identity upgrade of an all-int two-input diamond: every slot matches,
    so the never-upgraded trace is exact at every upgrade point. Clean by
    construction without a mutation. *)

val migration_victim : unit -> int Explore.uprogram
(** State-migrating upgrade: the replacement re-biases the [foldp]
    accumulator and un-biases it in a view node, observationally identical
    under the supplied migration — and off by exactly the bias when
    [Skip_migration] drops it. *)

val upgrade_catches :
  ?domains:int -> unit -> (planted * Explore.report) list
(** Run the upgrade-point sweep once per planted upgrade bug
    ({!migration_victim} for [Skip_migration], {!upgrade_victim}
    otherwise). *)

val upgrade_all_caught : ?domains:int -> unit -> bool
(** [true] when every planted upgrade bug produced at least one
    violation. *)
