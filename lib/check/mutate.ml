module Runtime = Elm_core.Runtime
module Signal = Elm_core.Signal

type planted = {
  name : string;
  spec : Runtime.mutation;
}

(* Occurrence indices land each fault mid-run: past the first event (so
   every node has a previous epoch to mis-stamp) and well before the last
   (so the damage has rounds left in which to surface). *)
let all =
  [
    { name = "drop-no-change"; spec = Runtime.Drop_no_change 3 };
    { name = "skip-epoch"; spec = Runtime.Skip_epoch 9 };
    { name = "reorder-wakeup"; spec = Runtime.Reorder_wakeup 7 };
  ]

let chain k n s =
  let rec go n s =
    if n = 0 then s
    else go (n - 1) (Signal.lift ~name:(Printf.sprintf "add%d" k) (( + ) k) s)
  in
  go n s

(* Two sources, one arm through drop_repeats (its parity is constant under
   the injection pattern below, so it emits No_change on every round after
   the first — the Drop_no_change target), joined by lift2 and folded. *)
let victim () =
  Explore.program ~name:"mutate-victim" ~show:string_of_int (fun () ->
      let a = Signal.input ~name:"a" 0 in
      let b = Signal.input ~name:"b" 0 in
      let left = chain 1 2 a in
      let parity =
        Signal.drop_repeats ~name:"parity"
          (Signal.lift ~name:"mod2" (fun x -> x mod 2) left)
      in
      let right = chain 2 2 b in
      let joined =
        Signal.lift2 ~name:"join" (fun p r -> (p * 31) + r) parity right
      in
      let wide = Signal.lift2 ~name:"wide" ( + ) joined left in
      let root = Signal.foldp ~name:"sum" ( + ) 0 wide in
      {
        Explore.root;
        drive =
          (fun rt ->
            for i = 1 to 8 do
              (* odd values only: [parity] never changes after warm-up *)
              Runtime.inject rt (if i mod 2 = 0 then b else a) ((2 * i) + 1)
            done);
      })

let catches ?backend ?(schedules = 4) ?(seed = 0) () =
  List.map
    (fun planted ->
      ( planted,
        Explore.run ?backend ~schedules ~seed ~mutate:planted.spec (victim ())
      ))
    all

let all_caught ?backend ?schedules ?seed () =
  List.for_all
    (fun (_, report) -> not (Explore.ok report))
    (catches ?backend ?schedules ?seed ())
