module Runtime = Elm_core.Runtime
module Signal = Elm_core.Signal

type planted = {
  name : string;
  spec : Runtime.mutation;
}

(* Occurrence indices land each fault mid-run: past the first event (so
   every node has a previous epoch to mis-stamp) and well before the last
   (so the damage has rounds left in which to surface). *)
let all =
  [
    { name = "drop-no-change"; spec = Runtime.Drop_no_change 3 };
    { name = "skip-epoch"; spec = Runtime.Skip_epoch 9 };
    { name = "reorder-wakeup"; spec = Runtime.Reorder_wakeup 7 };
  ]

let chain k n s =
  let rec go n s =
    if n = 0 then s
    else go (n - 1) (Signal.lift ~name:(Printf.sprintf "add%d" k) (( + ) k) s)
  in
  go n s

(* Two sources, one arm through drop_repeats (its parity is constant under
   the injection pattern below, so it emits No_change on every round after
   the first — the Drop_no_change target), joined by lift2 and folded. *)
let victim () =
  Explore.program ~name:"mutate-victim" ~show:string_of_int (fun () ->
      let a = Signal.input ~name:"a" 0 in
      let b = Signal.input ~name:"b" 0 in
      let left = chain 1 2 a in
      let parity =
        Signal.drop_repeats ~name:"parity"
          (Signal.lift ~name:"mod2" (fun x -> x mod 2) left)
      in
      let right = chain 2 2 b in
      let joined =
        Signal.lift2 ~name:"join" (fun p r -> (p * 31) + r) parity right
      in
      let wide = Signal.lift2 ~name:"wide" ( + ) joined left in
      let root = Signal.foldp ~name:"sum" ( + ) 0 wide in
      {
        Explore.root;
        drive =
          (fun rt ->
            for i = 1 to 8 do
              (* odd values only: [parity] never changes after warm-up *)
              Runtime.inject rt (if i mod 2 = 0 then b else a) ((2 * i) + 1)
            done);
      })

let catches ?backend ?(schedules = 4) ?(seed = 0) () =
  List.map
    (fun planted ->
      ( planted,
        Explore.run ?backend ~schedules ~seed ~mutate:planted.spec (victim ())
      ))
    all

let all_caught ?backend ?schedules ?seed () =
  List.for_all
    (fun (_, report) -> not (Explore.ok report))
    (catches ?backend ?schedules ?seed ())

(* ------------------------------------------------------------------ *)
(* Upgrade mutations. Each upgrade-point sweep performs exactly one
   upgrade per dispatcher, so the occurrence index is 1 for all three. *)

let upgrade_all =
  [
    { name = "stale-slot-map"; spec = Runtime.Stale_slot_map 1 };
    { name = "skip-migration"; spec = Runtime.Skip_migration 1 };
    { name = "leak-seam-mailbox"; spec = Runtime.Leak_seam_mailbox 1 };
  ]

(* All-int slots on purpose: the stale-map mutation rotates live values
   across matched slots, and an all-int arena keeps that a value bug (a
   diverged trace) rather than a memory bug. Alternating odd injections
   keep the foldp sum strictly increasing, so every event changes the
   root — any rotation or lost mailbox value shows in the trace. *)
let upgrade_graph () =
  let a = Signal.input ~name:"a" 0 in
  let b = Signal.input ~name:"b" 0 in
  let left = chain 1 2 a in
  let right = chain 2 2 b in
  let joined =
    Signal.lift2 ~name:"join" (fun l r -> (l * 31) + r) left right
  in
  let root = Signal.foldp ~name:"sum" ( + ) 0 joined in
  { Explore.ug_root = root; ug_inputs = [| a; b |] }

let upgrade_events =
  List.init 8 (fun i -> (i mod 2, (2 * i) + 1))

(* Identity upgrade: the replacement is the same program text, so every
   slot matches and the never-upgraded trace is the exact answer at every
   upgrade point. Catches [Stale_slot_map] (rotated values diverge the
   trace) and [Leak_seam_mailbox] (pending injections vanish with the old
   queues: the promised pop crashes the drain). *)
let upgrade_victim () =
  Explore.upgrade_program ~name:"upgrade-identity-victim"
    ~classify:(fun v -> Some (v mod 2))
    ~show:string_of_int ~old_graph:upgrade_graph ~new_graph:upgrade_graph
    upgrade_events

(* State-migrating upgrade: the new program stores the foldp accumulator
   biased by +100 and un-biases it in a new view node, so with the
   migration applied it is observationally identical to the old program —
   and with [Skip_migration] planted every post-upgrade value is off by
   exactly the bias. *)
let migration_bias = 100

let migration_victim () =
  let new_graph () =
    let a = Signal.input ~name:"a" 0 in
    let b = Signal.input ~name:"b" 0 in
    let left = chain 1 2 a in
    let right = chain 2 2 b in
    let joined =
      Signal.lift2 ~name:"join" (fun l r -> (l * 31) + r) left right
    in
    let sum = Signal.foldp ~name:"sum" ( + ) migration_bias joined in
    let root = Signal.lift ~name:"view" (fun x -> x - migration_bias) sum in
    { Explore.ug_root = root; ug_inputs = [| a; b |] }
  in
  Explore.upgrade_program ~name:"upgrade-migration-victim"
    ~show:string_of_int
    ~migrate:(fun () ->
      [ Elm_core.Upgrade.migrate ~name:"sum" (fun (acc : int) -> acc + migration_bias) ])
    ~old_graph:upgrade_graph ~new_graph upgrade_events

let upgrade_catches ?domains () =
  List.map
    (fun planted ->
      let victim =
        match planted.spec with
        | Runtime.Skip_migration _ -> migration_victim ()
        | _ -> upgrade_victim ()
      in
      (planted, Explore.run_upgrade ?domains ~mutate:planted.spec victim))
    upgrade_all

let upgrade_all_caught ?domains () =
  List.for_all
    (fun (_, report) -> not (Explore.ok report))
    (upgrade_catches ?domains ())
