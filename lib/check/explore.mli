(** Schedule exploration for signal programs.

    The paper's correctness story (Sections 3.3-3.4) is that the CML
    translation preserves global event order {e regardless of how node
    threads interleave}. The rest of this repo runs one fixed FIFO
    interleaving; this module re-executes a signal program under many seeded
    chaos schedules ({!Cml.Scheduler.policy}) and checks, after each, that
    the observable behaviour still matches a FIFO reference run:

    - {b Trace equality} — the displayed change trace (values {e and}
      virtual timestamps) is bit-identical to the reference. Only demanded
      of [deterministic] programs, i.e. programs without [async]/[delay]
      sources: an async boundary deliberately re-registers inner changes as
      fresh global events, and when several async sources race, which one
      registers first is schedule-dependent. Only {e per-source} order is
      promised across an async boundary (see {!Per_source_order} and the
      DESIGN note).
    - {b Per-node output order} — every node stamps strictly increasing
      epochs on its output edge: no node ever processes global events out
      of order, under any schedule. For deterministic programs the full
      per-node epoch sequences must equal the reference's.
    - {b Message accounting} — [messages + elided = nodes * events],
      exactly: chaos may reorder work but never duplicates or drops a
      message.
    - {b No deadlock} — the run completes: no [Stuck], no crash, and as
      many events processed as the reference.

    On a violation the harness shrinks the recorded decision log to a
    minimal failing schedule prefix (binary search over [Replay] prefixes)
    and reports a replayable seed: [felmc run --sched-seed N] and
    [FELM_SCHED_SEED=N dune runtest] re-run under the same schedule.

    Must be called {e outside} [Cml.run]: the explorer owns the scheduler,
    running the program many times over. *)

type 'a session = {
  root : 'a Elm_core.Signal.t;  (** the graph to instantiate *)
  drive : 'a Elm_core.Runtime.t -> unit;
      (** injections (and virtual sleeps) performed by the main thread *)
}

type 'a program

val program :
  name:string ->
  ?deterministic:bool ->
  ?classify:('a -> int option) ->
  show:('a -> string) ->
  (unit -> 'a session) ->
  'a program
(** [program ~name ~show build] packages a signal program for exploration.
    [build] must construct a {e fresh} graph each time it is called — the
    explorer instantiates it once per schedule.

    [deterministic] (default [true]) asserts the program is async-free, so
    its full change trace is schedule-independent and {!Trace_equal}
    applies. Set it to [false] for programs with [async]/[delay] sources.

    [classify] enables {!Per_source_order} for async programs: it maps a
    displayed value to the async source class it originated from (or [None]
    to ignore it), and the per-class subsequences of the change trace must
    then match the reference — the operational statement of "only
    per-source order holds across an async boundary". *)

type invariant =
  | Trace_equal  (** change trace bit-identical to FIFO (deterministic) *)
  | Per_source_order  (** per-class change subsequences match ([classify]) *)
  | Node_epoch_order  (** per-node stamped epochs strictly increasing *)
  | Accounting  (** [messages + elided = nodes * events] *)
  | No_deadlock  (** run completes: no [Stuck], crash or lost events *)

type violation = {
  v_invariant : invariant;
  v_policy : Cml.Scheduler.policy;  (** schedule that exposed it *)
  v_detail : string;
  v_decisions : int list;
      (** shrunk failing schedule prefix (a {!Cml.Scheduler.decision_log}
          prefix, replayable with [Replay]); [[]] when the reference run
          itself violates *)
}

type report = {
  r_program : string;
  r_schedules : int;  (** chaos schedules executed, reference excluded *)
  r_violations : violation list;
}

val run :
  ?schedules:int ->
  ?seed:int ->
  ?invariants:invariant list ->
  ?backend:Elm_core.Runtime.backend ->
  ?mode:Elm_core.Runtime.mode ->
  ?dispatch:Elm_core.Runtime.dispatch ->
  ?fuse:bool ->
  ?on_node_error:Elm_core.Runtime.error_policy ->
  ?queue_capacity:int ->
  ?max_switches:int ->
  ?mutate:Elm_core.Runtime.mutation ->
  ?domains:int ->
  'a program ->
  report
(** [run prog] executes one FIFO reference run, then [schedules] (default
    [50]) seeded chaos runs — alternating [Seeded_random] and [Pct]
    policies derived from [seed] (default [0]) — checking [invariants]
    (default: every invariant applicable to the program) after each.

    [backend]/[mode]/[dispatch]/[fuse]/[on_node_error]/[queue_capacity] are
    passed to {!Elm_core.Runtime.start} unchanged, so the same program can
    be explored across the whole runtime matrix — including the compiled
    backend, whose region threads interleave under the same chaos
    schedules. [max_switches] (default [5_000_000])
    bounds each run, turning livelocks into {!No_deadlock} violations.
    [mutate] plants an ordering bug ({!Elm_core.Runtime.mutation}) in every
    run including the reference — used to prove the checker catches it.
    [domains] is the Domains exploration axis: every run (reference
    included) starts the runtime with intra-session parallel dispatch
    ([Runtime.start ~domains], compiled backend) — the oracle that change
    traces are independent of the domain count is the caller comparing
    reports/traces across domain values, since each [run] holds its
    [domains] fixed.

    The reference run is checked against the schedule-independent
    invariants ({!Accounting}, {!Node_epoch_order}, {!No_deadlock}); chaos
    runs are additionally compared to the reference. Each chaos violation
    is shrunk to a minimal failing prefix of its decision log. *)

val ok : report -> bool
(** [ok r] is [true] when [r] has no violations. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable report: schedule count, then one block per violation
    with the invariant, the detail, the shrunk schedule prefix and a
    replay hint. *)

val replay_hint : violation -> string
(** How to reproduce this violation outside the explorer, e.g.
    ["felmc run --sched-seed 7 ... / FELM_SCHED_SEED=7 dune runtest"]. *)

val pp_policy : Format.formatter -> Cml.Scheduler.policy -> unit
(** ["fifo"], ["random:<seed>"], ["pct:<seed>:<depth>"] or
    ["replay:<n decisions>"]. *)

val policy_of_env : unit -> Cml.Scheduler.policy option
(** The scheduler policy requested by the environment, if any:
    [FELM_SCHED_SEED=n] selects [Seeded_random n] and [FELM_SCHED_PCT=s:d]
    selects [Pct {seed = s; depth = d}]. This is how the replay seed printed
    by {!pp_report} reaches the test suite's shared graph harness
    ([Gen_graph.with_world]). Malformed values are ignored. *)

(** {1 Live-upgrade exploration}

    The serve layer admits upgrades only between event waves
    ([Serve.Dispatcher.upgrade_all]), so the schedule axis for upgrades is
    not thread interleaving but the {e upgrade point}: which prefix of the
    event stream has been injected — and whether it has drained — when the
    upgrade runs. {!run_upgrade} sweeps every split point in both styles
    and compares each session's change trace, per-source projections and
    accounting against a never-upgraded run of the old program: the
    replay-differential oracle. *)

type 'a ugraph = {
  ug_root : 'a Elm_core.Signal.t;  (** the graph to serve *)
  ug_inputs : int Elm_core.Signal.t array;
      (** its input nodes, the injection targets of the event list *)
}

type 'a uprogram

val upgrade_program :
  name:string ->
  ?classify:('a -> int option) ->
  show:('a -> string) ->
  ?migrate:(unit -> Elm_core.Upgrade.migration list) ->
  old_graph:(unit -> 'a ugraph) ->
  new_graph:(unit -> 'a ugraph) ->
  (int * int) list ->
  'a uprogram
(** [upgrade_program ~name ~show ~old_graph ~new_graph events] packages an
    upgrade scenario. Both builders must construct a {e fresh} graph per
    call (the explorer re-instantiates per upgrade point); input index [i]
    of the event list must denote the same logical input in both graphs'
    [ug_inputs]. The replacement must be {e observationally equivalent} to
    the old program under [migrate] — identity upgrades trivially are;
    state-migrating scenarios arrange it by construction (e.g. a re-biased
    [foldp] accumulator whose new view undoes the bias) — so that the
    never-upgraded reference trace is the correct answer at {e every}
    upgrade point. *)

val run_upgrade :
  ?fuse:bool ->
  ?mutate:Elm_core.Runtime.mutation ->
  ?domains:int ->
  'a uprogram ->
  report
(** Sweep upgrades across every event-split point [k = 0..n], each in both
    styles — {e quiescent} (prefix drained before upgrading) and
    {e pending} (prefix still queued, exercising the ready-queue and
    seam-mailbox remap) — over two sessions per run, then drain and check:
    {!Trace_equal} and (with [classify]) {!Per_source_order} against the
    never-upgraded reference, {!No_deadlock} (run completes, same events
    stepped), {!Accounting} (nothing pending, every session idle, zero
    dropped events). [fuse] defaults to [false]: fused composite state is
    re-created on upgrade (the {!Elm_core.Compile.clone_arena}
    approximation), so only unfused plans promise bit-identical traces.
    [mutate] plants an upgrade bug on every upgrade
    ({!Elm_core.Runtime.mutation}, occurrence counted per dispatcher);
    [domains] drains through a worker pool of that size. Violations carry
    [[k; style]] (style [1] = quiescent) in [v_decisions]. *)
