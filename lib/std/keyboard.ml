module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime

let left_arrow = 37
let up_arrow = 38
let right_arrow = 39
let down_arrow = 40
let shift_key = 16
let space = 32

let keys_down = Signal.input ~name:"Keyboard.keysDown" []
let last_pressed = Signal.input ~name:"Keyboard.lastPressed" 0

let arrows =
  Signal.lift ~name:"Keyboard.arrows"
    (fun keys ->
      let held k = List.mem k keys in
      let axis neg pos = (if held pos then 1 else 0) - (if held neg then 1 else 0) in
      (axis left_arrow right_arrow, axis down_arrow up_arrow))
    keys_down

let shift =
  Signal.lift ~name:"Keyboard.shift" (fun keys -> List.mem shift_key keys) keys_down

(* Held keys per runtime generation, so sequential sessions don't leak state
   into each other. Mutex-guarded: runtimes on different pool domains drive
   their keyboards concurrently, and an unsynchronized Hashtbl resize under
   that race corrupts the table. Entries are dropped by the [Runtime.stop]
   hook below — without it, session churn grows the table without bound. *)
let held : (int, int list) Hashtbl.t = Hashtbl.create 8
let held_lock = Mutex.create ()

let with_held f =
  Mutex.lock held_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock held_lock) f

let () = Runtime.on_stop (fun gen -> with_held (fun () -> Hashtbl.remove held gen))
let held_table_size () = with_held (fun () -> Hashtbl.length held)

let held_for rt =
  with_held (fun () ->
      Option.value ~default:[] (Hashtbl.find_opt held (Runtime.generation rt)))

let set_held rt keys =
  with_held (fun () -> Hashtbl.replace held (Runtime.generation rt) keys)

let press rt code =
  let keys = code :: List.filter (fun k -> k <> code) (held_for rt) in
  set_held rt keys;
  ignore (Runtime.try_inject rt keys_down keys);
  ignore (Runtime.try_inject rt last_pressed code)

let release rt code =
  let keys = List.filter (fun k -> k <> code) (held_for rt) in
  set_held rt keys;
  ignore (Runtime.try_inject rt keys_down keys)

let tap rt code =
  press rt code;
  release rt code
