(** Simulated HTTP (paper Example 3, Section 2).

    The paper fetches images from a web service "which may take significant
    time"; this container has no network, so a {!server} is a pure function
    plus a latency model on the virtual clock (see DESIGN.md
    substitutions). {!send_get} is the paper's [syncGet]: it issues each
    request from the requests signal and {e blocks the signal node} for the
    server's latency — which is exactly why one wraps it in
    [Signal.async]. *)

type response =
  | Waiting  (** Initial value, before any request completes. *)
  | Success of string
  | Failure of int * string

type server

val server : ?latency:(string -> float) -> (string -> (string, int * string) result) -> server
(** A simulated remote service. Default latency: 1 second per request. *)

val flaky :
  ?seed:int ->
  ?drop_rate:float ->
  ?spike_rate:float ->
  ?spike:float ->
  ?error_rate:float ->
  ?error_burst:int ->
  server ->
  server
(** A degraded-network wrapper: per attempt, with probability [drop_rate]
    the request is dropped (infinite latency — only observable under
    {!send_get}[ ~timeout]); otherwise with probability [spike_rate] the
    latency gains [spike] (default 10s) virtual seconds, and with
    probability [error_rate] the server answers [503] for [error_burst]
    (default 1) consecutive attempts. Faults come from a PRNG seeded with
    [seed] (default 42): the same seed and request sequence reproduce the
    same faults, so fault-injection benches are deterministic. The wrapper
    has its own {!request_count}; the wrapped server's stays untouched. *)

val flickr : server
(** The image-search service of Example 3: maps a tag query to a JSON
    response containing an image URL (the paper: "a signal of JSON objects
    returned by the server requests; the JSON objects contain image URLs").
    2s latency; unknown tags still succeed (deterministic synthetic URL). *)

val first_photo_url : string -> string option
(** Extract the first photo URL from a {!flickr}-style JSON response
    body. *)

val send_get :
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  server ->
  string Elm_core.Signal.t ->
  response Elm_core.Signal.t
(** [syncGet]: a signal of requests to a signal of responses, in request
    order, blocking for the latency of each. The node does not contact the
    server for the requests signal's {e construction-time} default
    computation (the session starts [Waiting]); a genuine event equal to
    the default value is served normally.

    [timeout] (virtual seconds) bounds each attempt: a slower — or dropped
    — response yields [Failure (0, "timeout")] after exactly [timeout]
    seconds. [retries] (default 0) re-issues the request after any
    [Failure], sleeping [backoff * 2^n] virtual seconds before retry [n]
    (zero-based; [backoff] defaults to 1s) — deterministic exponential
    backoff on the virtual clock. Each attempt counts in
    {!request_count}.
    @raise Invalid_argument on negative [retries]/[backoff] or a
    non-positive [timeout]. *)

val response_to_string : response -> string

val request_count : server -> int
(** How many requests the server has actually served (for tests that check
    memoization: unchanged inputs must not re-trigger requests). *)
