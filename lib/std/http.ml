module Signal = Elm_core.Signal

type response =
  | Waiting
  | Success of string
  | Failure of int * string

(* One function per request attempt, returning the modeled latency together
   with the result: the [flaky] wrapper needs both to covary (a dropped
   request has infinite latency and no useful result), and a single call
   keeps its PRNG consumption — hence determinism — per attempt. *)
type server = {
  handle : string -> float * (string, int * string) result;
  mutable served : int;
}

let server ?(latency = fun _ -> 1.0) respond =
  { handle = (fun req -> (latency req, respond req)); served = 0 }

(* Degraded-network wrapper around a server, driven by a seeded PRNG so runs
   are reproducible: same seed + same request sequence = same faults. Per
   attempt it draws, in a fixed order: drop? (infinite latency — model of a
   lost packet, only meaningful under [send_get ~timeout]), latency spike?,
   then 5xx? — where one unlucky draw opens a burst of [error_burst]
   consecutive 503s, the shape retry storms are made of. *)
let flaky ?(seed = 42) ?(drop_rate = 0.0) ?(spike_rate = 0.0) ?(spike = 10.0)
    ?(error_rate = 0.0) ?(error_burst = 1) srv =
  let rng = Random.State.make [| seed |] in
  let burst_left = ref 0 in
  {
    served = 0;
    handle =
      (fun req ->
        let lat, result = srv.handle req in
        if Random.State.float rng 1.0 < drop_rate then
          (Float.infinity, Error (0, "dropped"))
        else begin
          let lat =
            if Random.State.float rng 1.0 < spike_rate then lat +. spike
            else lat
          in
          if !burst_left > 0 then begin
            decr burst_left;
            (lat, Error (503, "service unavailable"))
          end
          else if Random.State.float rng 1.0 < error_rate then begin
            burst_left := error_burst - 1;
            (lat, Error (503, "service unavailable"))
          end
          else (lat, result)
        end);
  }

(* Example 3's image service: responses are JSON objects containing image
   URLs, exactly as the paper describes ("a signal of JSON objects returned
   by the server requests; the JSON objects contain image URLs"). *)
let flickr =
  server
    ~latency:(fun _ -> 2.0)
    (fun tag ->
      if tag = "" then Error (404, "no tag")
      else
        Ok
          (Json.to_string
             (Json.obj
                [
                  ("stat", Json.of_string "ok");
                  ( "photos",
                    Json.of_list
                      [
                        Json.obj
                          [
                            ("title", Json.of_string tag);
                            ( "url",
                              Json.of_string
                                (Printf.sprintf "http://img.example/%s.jpg" tag)
                            );
                          ];
                      ] );
                ])))

(* Pull the first photo URL out of a flickr-style JSON response. *)
let first_photo_url body =
  match Json.parse_opt body with
  | None -> None
  | Some v ->
    Option.bind (Json.member "photos" v) (Json.index 0)
    |> Fun.flip Option.bind (Json.member "url")
    |> Fun.flip Option.bind Json.get_string

(* One request attempt. With a [timeout], the caller waits [min lat timeout]
   and a too-slow (or dropped: infinite-latency) response is reported as
   [Failure (0, "timeout")] — status 0, like a client-side abort. Without
   one, the node waits the full modeled latency, however long. *)
let perform ?timeout srv req =
  srv.served <- srv.served + 1;
  let lat, result = srv.handle req in
  match timeout with
  | Some t when lat > t -> Cml.sleep t; Failure (0, "timeout")
  | Some _ | None -> (
    Cml.sleep lat;
    match result with
    | Ok body -> Success body
    | Error (code, msg) -> Failure (code, msg))

let send_get ?timeout ?(retries = 0) ?(backoff = 1.0) srv requests =
  if retries < 0 then invalid_arg "Http.send_get: negative retries";
  if backoff < 0.0 then invalid_arg "Http.send_get: negative backoff";
  (match timeout with
  | Some t when t <= 0.0 -> invalid_arg "Http.send_get: timeout must be > 0"
  | _ -> ());
  let rec attempt n req =
    match perform ?timeout srv req with
    | (Success _ | Waiting) as r -> r
    | Failure _ as r when n >= retries -> r
    | Failure _ ->
      (* Deterministic exponential backoff on the virtual clock. *)
      Cml.sleep (backoff *. (2.0 ** float_of_int n));
      attempt (n + 1) req
  in
  (* The default request must not hit the server: defaults are computed at
     graph construction (Section 3.1), and a session begins Waiting. That
     construction-time application is identified {e positionally} — it is
     the one [Signal.lift] performs before this function returns — not by
     comparing request values: a genuine event that happens to carry the
     same string as the default is a real request and must be served. *)
  let constructing = ref true in
  let result =
    Signal.lift ~name:"syncGet"
      (fun req -> if !constructing then Waiting else attempt 0 req)
      requests
  in
  constructing := false;
  result

let response_to_string = function
  | Waiting -> "waiting"
  | Success body -> "ok:" ^ body
  | Failure (code, msg) -> Printf.sprintf "error %d: %s" code msg

let request_count srv = srv.served
