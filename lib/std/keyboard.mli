(** Keyboard input signals (paper Fig. 13).

    Key codes are integers (ASCII-ish; arrows use the browser codes 37-40,
    shift is 16). [press]/[release] maintain the per-runtime set of held
    keys so that {!keys_down}, {!arrows} and {!shift} stay consistent. *)

val keys_down : int list Elm_core.Signal.t
(** List of keys that are currently pressed (most recent first). *)

val last_pressed : int Elm_core.Signal.t
(** The latest key that was pressed ([Keyboard.lastPressed] in the
    paper's foldp example, Section 3.1). *)

val arrows : (int * int) Elm_core.Signal.t
(** Arrow-key direction, e.g. up+right is [(1, 1)] (Fig. 13). *)

val shift : bool Elm_core.Signal.t
(** Is the shift key down? *)

(** {1 Key codes} *)

val left_arrow : int
val up_arrow : int
val right_arrow : int
val down_arrow : int
val shift_key : int
val space : int

(** {1 Drivers (the simulated user)} *)

val press : _ Elm_core.Runtime.t -> int -> unit
(** Add the key to the held set; fires both [keys_down] and
    [last_pressed] (two events, in that order). *)

val release : _ Elm_core.Runtime.t -> int -> unit
(** Remove the key from the held set; fires [keys_down]. *)

val tap : _ Elm_core.Runtime.t -> int -> unit
(** [press] then [release]. *)

val held_table_size : unit -> int
(** Number of runtime generations with driver state (test hook: after
    [Runtime.stop]ping every runtime this returns to its prior value —
    the stop hook frees the per-generation held-key entry). *)
