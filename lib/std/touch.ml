module Signal = Elm_core.Signal
module Runtime = Elm_core.Runtime

type touch = {
  id : int;
  x : int;
  y : int;
  x0 : int;
  y0 : int;
  t0 : float;
}

let touches = Signal.input ~name:"Touch.touches" []
let taps = Signal.input ~name:"Touch.taps" (0, 0)

(* Ongoing touches per runtime generation (same pattern as Keyboard.held:
   mutex against concurrent multi-domain drivers, entry dropped by the
   [Runtime.stop] hook so churn can't leak). *)
let ongoing : (int, touch list) Hashtbl.t = Hashtbl.create 8
let ongoing_lock = Mutex.create ()

let with_ongoing f =
  Mutex.lock ongoing_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock ongoing_lock) f

let () =
  Runtime.on_stop (fun gen -> with_ongoing (fun () -> Hashtbl.remove ongoing gen))

let ongoing_table_size () = with_ongoing (fun () -> Hashtbl.length ongoing)

let ongoing_for rt =
  with_ongoing (fun () ->
      Option.value ~default:[] (Hashtbl.find_opt ongoing (Runtime.generation rt)))

let set_ongoing rt ts =
  with_ongoing (fun () -> Hashtbl.replace ongoing (Runtime.generation rt) ts);
  ignore (Runtime.try_inject rt touches ts)

let touch_start rt ~id (x, y) =
  let t = { id; x; y; x0 = x; y0 = y; t0 = Cml.now () } in
  set_ongoing rt (t :: List.filter (fun t -> t.id <> id) (ongoing_for rt))

let touch_move rt ~id (x, y) =
  let ts =
    List.map (fun t -> if t.id = id then { t with x; y } else t) (ongoing_for rt)
  in
  set_ongoing rt ts

let touch_end rt ~id =
  set_ongoing rt (List.filter (fun t -> t.id <> id) (ongoing_for rt))

let tap rt pos = Runtime.inject rt taps pos
