(** Touch input signals (paper Fig. 13): ongoing touches for defining
    gestures, and the latest tap position. *)

type touch = {
  id : int;
  x : int;
  y : int;
  x0 : int;  (** Starting x of this touch. *)
  y0 : int;
  t0 : float;  (** Virtual time the touch started. *)
}

val touches : touch list Elm_core.Signal.t
(** List of ongoing touches. *)

val taps : (int * int) Elm_core.Signal.t
(** Position of the latest tap. *)

(** {1 Drivers (the simulated user)} *)

val touch_start : _ Elm_core.Runtime.t -> id:int -> int * int -> unit
val touch_move : _ Elm_core.Runtime.t -> id:int -> int * int -> unit
val touch_end : _ Elm_core.Runtime.t -> id:int -> unit
val tap : _ Elm_core.Runtime.t -> int * int -> unit

val ongoing_table_size : unit -> int
(** Number of runtime generations with driver state (test hook; see
    {!Keyboard.held_table_size}). *)
