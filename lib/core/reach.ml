(* Build-time source-reachability analysis over a signal DAG.

   For every node we compute the set of *runtime source* ids that can reach
   it through synchronous edges. Runtime sources are the nodes the global
   dispatcher can name in an event: inputs, constants, async and delay
   nodes, and degenerate dependency-free nodes (an empty lift_list behaves
   as a never-firing source). An async/delay node deliberately *cuts* the
   analysis: its inner subgraph reaches it only through the dispatcher (a
   change re-enters as a fresh global event carrying the async node's own
   source id), so the async node's reach set is just itself — exactly the
   Fig. 8(c) ordering boundary.

   The dispatcher uses [cone] to notify only the nodes an event can affect;
   everything outside the cone stays quiescent and its edges are
   epoch-compressed (see Event.stamped and Runtime). *)

module Int_set = Set.Make (Int)

type set = Int_set.t

type t = {
  order : Signal.packed list;  (* dependencies before dependents *)
  sets : (int, set) Hashtbl.t;  (* node id -> source ids reaching it *)
  srcs : int list;  (* runtime-source ids, topological order *)
  count : int;
}

let set_mem = Int_set.mem
let set_cardinal = Int_set.cardinal
let set_elements = Int_set.elements

(* A node the runtime registers with the dispatcher as a source: it answers
   events rather than edge messages. [Signal.is_source] covers
   input/constant/async/delay; a node with no dependencies (empty
   lift_list) is instantiated as a never-firing source. *)
let runtime_source (Signal.Pack s) =
  Signal.is_source s || Signal.deps s = []

let analyze root =
  let order = Signal.reachable root in
  let sets = Hashtbl.create 64 in
  let srcs = ref [] in
  List.iter
    (fun (Signal.Pack s as p) ->
      let id = Signal.id s in
      let set =
        if runtime_source p then begin
          srcs := id :: !srcs;
          Int_set.singleton id
        end
        else
          List.fold_left
            (fun acc (Signal.Pack d) ->
              match Hashtbl.find_opt sets (Signal.id d) with
              | Some ds -> Int_set.union acc ds
              | None -> acc)
            Int_set.empty (Signal.deps s)
      in
      Hashtbl.replace sets id set)
    order;
  { order; sets; srcs = List.rev !srcs; count = List.length order }

let node_count t = t.count

let order t = t.order

let sources t = t.srcs

let reaching t id =
  match Hashtbl.find_opt t.sets id with
  | Some s -> s
  | None -> Int_set.empty

let affects t ~source ~node = set_mem source (reaching t node)

let union_reaching t ids =
  List.fold_left (fun acc id -> Int_set.union acc (reaching t id)) Int_set.empty ids

let cone t source =
  List.filter
    (fun (Signal.Pack s) -> set_mem source (reaching t (Signal.id s)))
    t.order

let cone_size t source =
  List.fold_left
    (fun n (Signal.Pack s) ->
      if set_mem source (reaching t (Signal.id s)) then n + 1 else n)
    0 t.order

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (Signal.Pack s) ->
      Format.fprintf ppf "%d %s <- {%s}@,"
        (Signal.id s) (Signal.name s)
        (String.concat ","
           (List.map string_of_int (set_elements (reaching t (Signal.id s))))))
    t.order;
  Format.fprintf ppf "@]"
