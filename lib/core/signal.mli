(** Typed signal specifications: the node DAG of the paper's signal graphs.

    A ['a t] is a {e description} of a signal-graph node producing values of
    type ['a]. Nothing runs until {!Runtime.start} instantiates the graph
    (the Fig. 10 translation: one thread per node, one multicast channel per
    node output). Sharing is physical: using the same ['a t] twice gives one
    node with two subscribers, which is the paper's let/multicast semantics.

    Signals of signals are unrepresentable by construction, mirroring the
    FElm type system: the combinators below never produce a
    ['a t t]-shaped graph because node functions are ordinary pure OCaml
    functions over plain values.

    The core combinators are exactly FElm's primitives ({!constant} inputs
    aside): {!lift}..{!lift8}, {!foldp} and {!async}. The remaining
    combinators ({!merge}, {!drop_repeats}, {!sample_on}, ...) reproduce the
    Elm standard library of Section 4 and are definable within the per-event
    [Change]/[No_change] model. *)

type 'a t

(** {1 Construction} *)

val constant : ?name:string -> 'a -> 'a t
(** A source node that never changes: it answers every event notification
    with [No_change default]. *)

val input : ?name:string -> 'a -> 'a t
(** An external input signal with the given default value (every input
    signal "is required to have a default value", Section 3.1). New values
    are pushed with {!Runtime.inject}. *)

val lift : ?name:string -> ('a -> 'b) -> 'a t -> 'b t
(** [lift f s] applies [f] to every value of [s] (FElm's [lift1]). The
    node's default is [f default(s)], computed at construction — defaults
    for inner nodes are "induced" from input defaults, Section 3.1. *)

val lift2 : ?name:string -> ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
(** Combine two signals; recomputes when {e either} changes, synchronously
    with respect to the global event order. *)

val lift3 : ?name:string -> ('a -> 'b -> 'c -> 'd) -> 'a t -> 'b t -> 'c t -> 'd t
val lift4 :
  ?name:string -> ('a -> 'b -> 'c -> 'd -> 'e) -> 'a t -> 'b t -> 'c t -> 'd t -> 'e t

val lift5 :
  ?name:string ->
  ('a -> 'b -> 'c -> 'd -> 'e -> 'f) ->
  'a t -> 'b t -> 'c t -> 'd t -> 'e t -> 'f t

val lift6 :
  ?name:string ->
  ('a -> 'b -> 'c -> 'd -> 'e -> 'f -> 'g) ->
  'a t -> 'b t -> 'c t -> 'd t -> 'e t -> 'f t -> 'g t

val lift7 :
  ?name:string ->
  ('a -> 'b -> 'c -> 'd -> 'e -> 'f -> 'g -> 'h) ->
  'a t -> 'b t -> 'c t -> 'd t -> 'e t -> 'f t -> 'g t -> 'h t

val lift8 :
  ?name:string ->
  ('a -> 'b -> 'c -> 'd -> 'e -> 'f -> 'g -> 'h -> 'i) ->
  'a t -> 'b t -> 'c t -> 'd t -> 'e t -> 'f t -> 'g t -> 'h t -> 'i t

val lift_list : ?name:string -> ('a list -> 'b) -> 'a t list -> 'b t
(** Homogeneous n-ary lift. Used by the FElm interpreter, whose runtime
    values are untyped. [lift_list f []] is a constant. *)

val foldp : ?name:string -> ('a -> 'b -> 'b) -> 'b -> 'a t -> 'b t
(** [foldp step init s] folds over [s] "from the past" (Section 3.1): on each
    [Change v] of [s] the accumulator becomes [step v acc]; [No_change]
    rounds leave it untouched — which is why [No_change] is a correctness
    requirement, not only memoization. *)

val async : ?name:string -> 'a t -> 'a t
(** The paper's key novelty (Section 3.3.2). [async s] is a {e source} node:
    it answers every notification with [No_change], and whenever [s]
    produces a [Change] it registers a fresh global event carrying that
    value. Event order is maintained within the async subgraph and within
    the rest of the graph, but not between them, so a slow subgraph cannot
    delay the rest of the program. *)

(** {1 Elm standard-library combinators (Section 4)} *)

val merge : ?name:string -> 'a t -> 'a t -> 'a t
(** Emit changes from either signal; when both change on the same event the
    left signal wins. Default is the left default. *)

val drop_repeats : ?name:string -> ?eq:('a -> 'a -> bool) -> 'a t -> 'a t
(** Turn [Change v] into [No_change v] when [v] equals the previous value. *)

val sample_on : ?name:string -> 'a t -> 'b t -> 'b t
(** [sample_on ticks s] changes to the current value of [s] whenever [ticks]
    changes. *)

val keep_when : ?name:string -> bool t -> 'a -> 'a t -> 'a t
(** [keep_when gate base s] passes changes of [s] through only while [gate]
    is currently true; starts at [base] when the gate starts closed. Like
    Elm's [keepWhen], when the gate {e becomes} true the most recent value
    of [s] is propagated (rising-edge resync) — for gated event counting
    prefer [count_if ... (sample_on events gate)]. *)

val drop_when : ?name:string -> bool t -> 'a -> 'a t -> 'a t

val count : ?name:string -> 'a t -> int t
(** Number of changes seen (the paper's key-press counter, Section 3.1). *)

val count_if : ?name:string -> ('a -> bool) -> 'a t -> int t

val delay1 : ?name:string -> 'a -> 'a t -> 'a t
(** Shift a signal by one event: emits the previous changed value. *)

val pair : ?name:string -> 'a t -> 'b t -> ('a * 'b) t
(** [lift2 (fun a b -> (a, b))] — the paper's [(,)]. *)

val combine : ?name:string -> 'a t list -> 'a list t
(** Elm's [combine]: a signal of the current values of many signals,
    changing whenever any of them does. *)

val timestamp : ?name:string -> 'a t -> (float * 'a) t
(** Pair each change with the virtual time at which the node processed it. *)

val delay : ?name:string -> float -> 'a t -> 'a t
(** Elm's [delay]: the same changes, [d] seconds later on the virtual
    clock. Like [async], the node is a source — each delayed value re-enters
    through the global dispatcher as a fresh event, so a delayed subgraph
    never blocks the rest of the program. Order among the delayed changes is
    preserved. *)

(** {1 Introspection} *)

type packed = Pack : 'a t -> packed

val id : 'a t -> int
(** Unique node identifier (the paper's [guid]). *)

val name : 'a t -> string
(** Debug name ("lift", "foldp", ... when not user-supplied). *)

val default : 'a t -> 'a
(** The node's default/initial value. *)

val kind_name : 'a t -> string

val deps : 'a t -> packed list
(** Direct dependencies (incoming edges). [async]'s inner signal is reported
    as a dependency here even though at runtime the async node is a source. *)

val is_source : 'a t -> bool
(** True for [input], [constant] and [async] nodes. *)

val reachable : 'a t -> packed list
(** All nodes of the graph rooted here, each once, dependencies before
    dependents (topological order). *)

val to_dot : ?label:string -> 'a t -> string
(** Graphviz rendering in the style of the paper's Figures 7-8: the global
    event dispatcher with dashed edges to all source nodes, solid edges for
    signal flow, async subgraphs visually separated. *)

val dot_escape : string -> string
(** Escape a user-supplied name for use inside a double-quoted DOT string
    (quotes, backslashes, angle brackets, record specials). Shared with
    {!Compile.to_dot}. *)

(** {1 Runtime representation}

    Exposed for {!Runtime}; not intended for application code. *)

type 'a inst = {
  gen : int;  (** Runtime generation this instance belongs to. *)
  out : 'a Event.stamped Cml.Multicast.t;
      (** The node's output channel; messages are epoch-stamped so cone
          dispatch can elide quiescent rounds (see {!Event.stamped}). *)
  push : ('a -> unit) option;  (** Input nodes: deliver an external event. *)
}

type 'a kind =
  | Constant
  | Input
  | Lift1 : ('b -> 'a) * 'b t -> 'a kind
  | Lift2 : ('b -> 'c -> 'a) * 'b t * 'c t -> 'a kind
  | Lift3 : ('b -> 'c -> 'd -> 'a) * 'b t * 'c t * 'd t -> 'a kind
  | Lift4 : ('b -> 'c -> 'd -> 'e -> 'a) * 'b t * 'c t * 'd t * 'e t -> 'a kind
  | Lift_list : ('b list -> 'a) * 'b t list -> 'a kind
  | Foldp : ('b -> 'a -> 'a) * 'b t -> 'a kind
  | Async : 'a t -> 'a kind
  | Delay : float * 'a t -> 'a kind
  | Merge of 'a t * 'a t
  | Drop_repeats of ('a -> 'a -> bool) * 'a t
  | Sample_on : 'b t * 'a t -> 'a kind
  | Keep_when of bool t * 'a t * 'a
  | Composite : ('b, 'a) composite * 'b t -> 'a kind
      (** A fused chain of stateless nodes, produced by {!Fuse.fuse}; never
          built directly by the combinators above. Instantiates as one
          thread and one channel in place of [comp_size] originals. *)

and ('b, 'a) composite = {
  comp_make : unit -> 'b -> 'a option;
      (** Factory for the fused step function; called once per runtime
          instantiation so stateful stages (fused [drop_repeats]) get fresh
          state. The step returns [None] for "no change this round". *)
  comp_names : string list;
      (** Names of the fused nodes, input side first; the composite's
          display name joins them with ["∘"]. *)
  comp_size : int;  (** How many original nodes the composite replaces. *)
}

val kind : 'a t -> 'a kind
val get_inst : 'a t -> 'a inst option
val set_inst : 'a t -> 'a inst -> unit

val get_fused : 'a t -> 'a t option
(** The cached {!Fuse.fuse} result for the graph rooted at this node, if one
    was computed (see {!Fuse.fuse_cached}). Graphs are immutable and fusion
    is deterministic, so the slot carries no generation stamp: it is valid
    for the node's whole lifetime. Compiled-backend state no longer lives on
    the nodes at all — it moved to per-instance arenas ({!Compile.arena}),
    which is what lets many runtimes and sessions share one graph. *)

val set_fused : 'a t -> 'a t -> unit

val clear_fused : 'a t -> unit
(** Forget the memoised fusion result. Used only by {!Fuse.clear_memos} when
    the plan cache is invalidated (live upgrade): a root whose memo survived
    a cache reset would resolve to a stale fused graph and miss the plan
    cache forever after. *)

(** {2 Fusion support (used by {!Fuse})} *)

val composite : ?name:string -> default:'a -> ('b, 'a) composite -> 'b t -> 'a t
(** A fresh composite node. The default must equal the value the fused chain
    would have settled on from its input's default. *)

val with_kind : 'a t -> 'a kind -> 'a t
(** Copy a node with a new kind (rewired dependencies), keeping its id, name
    and default. The copy has no instance and no pending substitution. *)

val get_subst : 'a t -> pass:int -> 'a t option
(** The node this one was rewritten to during fusion pass [pass], if any.
    The slot is generation-stamped, so stale entries from earlier passes are
    invisible — a graph can be fused many times (one runtime per call). *)

val set_subst : 'a t -> pass:int -> 'a t -> unit
