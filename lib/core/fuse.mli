(** Build-time fusion of stateless signal-node chains.

    [fuse root] rewrites the DAG reachable from [root] so that every maximal
    chain of stateless, single-subscriber interior nodes — {!Signal.lift},
    {!Signal.drop_repeats}, and [lift2]/[lift3]/[lift4]/[lift_list] nodes
    whose other inputs are constants — collapses into one
    {!Signal.kind.Composite} node computing the composition of the chain.

    Fusion barriers, where chains stop: fan-out points (any node with more
    than one subscriber), [foldp], [async], [delay], [merge], [sample_on],
    [keep_when], inputs, constants, and the root (externally referenced by
    the display loop — it may head a chain but never vanishes into one).
    Sharing is therefore preserved: a node used twice is computed once per
    event, fused or not.

    The rewrite is type-preserving and non-destructive: original nodes are
    never mutated (beyond a generation-stamped memo slot), input nodes are
    reused as-is so {!Runtime.inject} on the original handles still works,
    and barrier nodes keep their ids. {!Runtime.start} applies the pass by
    default; the guarantee is that [changes], [current] and [on_change] are
    bit-identical with fusion on and off across [Pipelined]/[Sequential] ×
    [Flood]/[Cone] — provided chain functions take no virtual time (fusing
    serializes a chain into one node, so a chain of {e sleeping} stages
    loses pipelined overlap: values and order still agree, timestamps may
    not). Only message counts, switch counts and thread counts shrink. *)

val fuse : 'a Signal.t -> 'a Signal.t
(** Returns the fused graph's root: the original root node, a rebuilt copy
    of it (same id) with rewritten dependencies, or a composite headed by
    it. Safe to call repeatedly and on overlapping graphs; each call is an
    independent pass. *)

val fuse_cached : 'a Signal.t -> 'a Signal.t
(** Like {!fuse}, but memoised on the root node: repeated calls return the
    {e same} fused graph (physical equality), so downstream caches keyed on
    the fused root — {!Compile.plan_of} — hit. Used by [Runtime.start] and
    the session layer; call plain {!fuse} to force an independent pass. *)

val clear_memos : unit -> unit
(** Forget every {!fuse_cached} memo. Must accompany any
    {!Compile.clear_plan_cache}: a memo that outlives the plan cache resolves
    to a fused root whose plan is gone, so the next [fuse_cached] call keeps
    returning the stale root and every plan lookup after the reset misses
    (or, across a live upgrade, silently serves the pre-upgrade graph).
    [Compile.clear_plan_cache] calls this itself; exposed for tests. Roots
    are tracked weakly — clearing never revives or pins a dead graph. *)
