(* A small work-stealing pool of OCaml 5 domains.

   Two kinds of batch run here. The original serving shape is the session
   task: drain one session's inbox to quiescence. Tasks are independent
   (sessions share only the immutable plan), never block, and never spawn
   further tasks — async re-entries during a task append to the same
   session's inbox and are drained before the task returns. That shape lets
   the pool be much simpler than a general scheduler:

   - Each [run] distributes the task array round-robin into per-worker
     queues. A queue is an immutable slice of the task array plus an
     [Atomic.t] cursor; taking a task is one [Atomic.fetch_and_add] and a
     bounds check, so owners and thieves race lock-free without loss or
     duplication.
   - A worker drains its own queue, then probes the other queues in a
     seeded pseudo-random order, stealing from whichever still has work.
     The seed makes steal schedules reproducible: the interleaving checker
     replays many seeds and requires identical observable traces (the
     per-(session,source) FIFO argument — see DESIGN.md — says the traces
     cannot depend on which domain ran a task, and the seeds let a test
     actually vary that).
   - Workers are persistent: spawned once at [create], parked on a
     condition variable between runs, released by an epoch bump. [run] is
     a barrier — it returns only after every task of this batch finished.

   The second shape, [run_dag], serves intra-session parallel dispatch:
   tasks form a dependency DAG (region groups of one event wave) and a task
   may only start once all its predecessors finished. The slice/cursor
   scheme cannot express "not ready yet", so a DAG batch instead keeps one
   mutex-guarded ready queue seeded with the roots; finishing a task
   decrements its dependents' atomic unmet-counts and enqueues the ones
   that hit zero. Same barrier, same error capture, same persistent
   workers — only the claim path differs.

   No dependency on the serving layer: tasks are [int -> unit] closures
   (the argument is the executing worker's index, used by callers to bill
   per-domain stats). *)

type worker_stats = {
  ws_tasks : int;  (** Tasks this worker executed (own + stolen). *)
  ws_steals : int;  (** Tasks taken from another worker's queue. *)
  ws_idle_probes : int;
      (** Steal probes that found the victim's queue empty — a unitless
          proxy for idle time (the pool never sleeps mid-run, it probes). *)
}

(* One worker's view of the current sliced batch. [queues.(w)] is the
   slice of tasks initially assigned to worker [w]; [cursors.(w)] indexes
   the next unclaimed task in that slice. *)
type batch = {
  queues : (int -> unit) array array;
  cursors : int Atomic.t array;
  remaining : int Atomic.t;  (* tasks not yet finished (not just claimed) *)
  order : int array array;  (* order.(w) = seeded victim probe order for w *)
}

(* A dependency-DAG batch: tasks enter [d_ready] only once every
   predecessor finished. [d_unmet.(i)] counts unfinished predecessors of
   task [i]; the worker that drops a count to zero enqueues the task. *)
type dag = {
  d_tasks : (int -> unit) array;
  d_ready : int Queue.t;  (* guarded by d_lock *)
  d_lock : Mutex.t;
  d_unmet : int Atomic.t array;
  d_deps : int array array;  (* d_deps.(i) = tasks unblocked when i ends *)
  d_remaining : int Atomic.t;
}

type job = Slices of batch | Dag of dag

type t = {
  p_domains : int;
  mutable p_workers : Domain.id Domain.t array;
      (* the [p_domains - 1] spawned ones; filled right after [create]
         allocates the record (workers capture the record itself) *)
  p_lock : Mutex.t;
  p_cond : Condition.t;
  mutable p_epoch : int;  (* bumped once per [run]; workers wait for it *)
  mutable p_job : job option;
  mutable p_closing : bool;
  mutable p_running : bool;
  p_error : exn option Atomic.t;  (* first task exception, re-raised by run *)
  p_tasks : int array;  (* per-worker lifetime counters, owner-written *)
  p_steals : int array;
  p_idle_probes : int array;
}

let domains t = t.p_domains

(* Deterministic LCG so steal schedules depend only on the seed, never on
   wall-clock or allocation addresses. *)
let lcg s = ((s * 0x2545F4914F6CDD1D) + 0x9E3779B97F4A7C1) land max_int

(* A seeded permutation of the other workers' indices: worker [w]'s victim
   probe order. Fisher-Yates with the LCG stream. *)
let victim_order ~seed ~domains w =
  let victims = Array.init domains Fun.id in
  (* remove self by swapping w to the end and shrinking *)
  victims.(w) <- domains - 1;
  victims.(domains - 1) <- w;
  let n = domains - 1 in
  let order = Array.sub victims 0 n in
  let s = ref (lcg (seed + (w * 7919) + 1)) in
  for i = n - 1 downto 1 do
    s := lcg !s;
    let j = !s mod (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  order

(* Claim the next task of [q]/[cursor]: lock-free, returns [None] when the
   queue is drained. Over-claiming is impossible — fetch_and_add hands out
   each index exactly once; indices past the end are simply discarded. *)
let take queues cursors v =
  let q = queues.(v) in
  let i = Atomic.fetch_and_add cursors.(v) 1 in
  if i < Array.length q then Some q.(i) else None

let record_error t exn =
  (* Keep the first error; later ones lose the race and are dropped (the
     batch still runs to completion so [run]'s barrier stays simple). *)
  ignore (Atomic.compare_and_set t.p_error None (Some exn))

(* Run sliced batch [b] as worker [w] until no queue has work. Returns when
   the worker can no longer find a task; the batch is globally done only
   when [b.remaining] hits 0 (another worker may still be finishing a
   claimed task). *)
let work t b w =
  let tasks = ref 0 and steals = ref 0 and idle = ref 0 in
  let exec f =
    (try f w with exn -> record_error t exn);
    incr tasks;
    ignore (Atomic.fetch_and_add b.remaining (-1))
  in
  let rec own () =
    match take b.queues b.cursors w with
    | Some f ->
      exec f;
      own ()
    | None -> steal 0
  and steal i =
    if i < Array.length b.order.(w) then begin
      let v = b.order.(w).(i) in
      match take b.queues b.cursors v with
      | Some f ->
        incr steals;
        exec f;
        (* after a successful steal, the victim may have more: restart the
           probe sweep from our own (now surely empty) queue's victims *)
        steal 0
      | None ->
        incr idle;
        steal (i + 1)
    end
  in
  own ();
  t.p_tasks.(w) <- t.p_tasks.(w) + !tasks;
  t.p_steals.(w) <- t.p_steals.(w) + !steals;
  t.p_idle_probes.(w) <- t.p_idle_probes.(w) + !idle

(* Run DAG batch [d] as worker [w]: pop a ready task, run it, release the
   dependents whose last predecessor it was, until every task finished.
   Unlike the sliced batch there is no "my queue is drained" exit — a
   worker must keep probing until [d_remaining] hits zero, because a task
   still running elsewhere may be about to unblock more work. *)
let dag_work t d w =
  let tasks = ref 0 and idle = ref 0 in
  let rec loop () =
    if Atomic.get d.d_remaining > 0 then begin
      Mutex.lock d.d_lock;
      let next = Queue.take_opt d.d_ready in
      Mutex.unlock d.d_lock;
      (match next with
      | None ->
        incr idle;
        Domain.cpu_relax ()
      | Some i ->
        (try d.d_tasks.(i) w with exn -> record_error t exn);
        incr tasks;
        (* A failed task still releases its dependents: the first error is
           already captured, and running the rest keeps the barrier (and
           the unmet-count accounting) trivially correct. *)
        Array.iter
          (fun j ->
            if Atomic.fetch_and_add d.d_unmet.(j) (-1) = 1 then begin
              Mutex.lock d.d_lock;
              Queue.push j d.d_ready;
              Mutex.unlock d.d_lock
            end)
          d.d_deps.(i);
        ignore (Atomic.fetch_and_add d.d_remaining (-1)));
      loop ()
    end
  in
  loop ();
  t.p_tasks.(w) <- t.p_tasks.(w) + !tasks;
  t.p_idle_probes.(w) <- t.p_idle_probes.(w) + !idle

(* Body of a spawned worker domain: park until the epoch moves, run the
   published job, repeat; exit when the pool closes. *)
let worker_loop t w =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.p_lock;
    while t.p_epoch = !seen && not t.p_closing do
      Condition.wait t.p_cond t.p_lock
    done;
    let epoch = t.p_epoch and closing = t.p_closing in
    let job = t.p_job in
    Mutex.unlock t.p_lock;
    if epoch <> !seen then begin
      seen := epoch;
      (match job with
      | Some (Slices b) -> work t b w
      | Some (Dag d) -> dag_work t d w
      | None -> ());
      loop ()
    end
    else if not closing then loop ()
  in
  loop ()

let create ?domains () =
  let n =
    match domains with
    | Some n ->
      if n < 1 then invalid_arg "Pool.create: domains must be >= 1";
      n
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      p_domains = n;
      p_workers = [||];
      p_lock = Mutex.create ();
      p_cond = Condition.create ();
      p_epoch = 0;
      p_job = None;
      p_closing = false;
      p_running = false;
      p_error = Atomic.make None;
      p_tasks = Array.make n 0;
      p_steals = Array.make n 0;
      p_idle_probes = Array.make n 0;
    }
  in
  (* The calling domain is worker 0; spawn the other n-1. They capture
     [t] itself, so the workers array must be assigned into the same
     record, not a copy. *)
  t.p_workers <-
    Array.init (n - 1) (fun i ->
        Domain.spawn (fun () ->
            worker_loop t (i + 1);
            Domain.self ()));
  t

(* Publish [job], participate as worker 0, spin out the stragglers, then
   retire the job and re-raise the first captured task exception. *)
let run_job t job ~remaining ~self =
  Mutex.lock t.p_lock;
  t.p_job <- Some job;
  t.p_epoch <- t.p_epoch + 1;
  Condition.broadcast t.p_cond;
  Mutex.unlock t.p_lock;
  (* The caller participates as worker 0, then spins for stragglers — a
     worker that claimed a task just before we drained everything may
     still be running it. cpu_relax keeps the spin polite. *)
  self ();
  while Atomic.get remaining > 0 do
    Domain.cpu_relax ()
  done;
  Mutex.lock t.p_lock;
  t.p_job <- None;
  Mutex.unlock t.p_lock;
  t.p_running <- false;
  match Atomic.exchange t.p_error None with
  | Some exn -> raise exn
  | None -> ()

let run ?(seed = 0) t tasks =
  if t.p_closing then invalid_arg "Pool.run: pool is closed";
  if t.p_running then invalid_arg "Pool.run: already running a batch";
  let total = Array.length tasks in
  if total = 0 then ()
  else begin
    t.p_running <- true;
    let n = t.p_domains in
    (* Round-robin deal, rotated by the seed so the initial placement —
       not just the steal order — varies across seeds. *)
    let rot = if n = 0 then 0 else lcg seed mod n in
    let per = Array.make n 0 in
    Array.iteri (fun i _ -> per.((i + rot) mod n) <- per.((i + rot) mod n) + 1) tasks;
    let queues = Array.map (fun k -> Array.make k (fun _ -> ())) per in
    let fill = Array.make n 0 in
    Array.iteri
      (fun i f ->
        let w = (i + rot) mod n in
        queues.(w).(fill.(w)) <- f;
        fill.(w) <- fill.(w) + 1)
      tasks;
    let b =
      {
        queues;
        cursors = Array.init n (fun _ -> Atomic.make 0);
        remaining = Atomic.make total;
        order = Array.init n (fun w -> victim_order ~seed ~domains:n w);
      }
    in
    run_job t (Slices b) ~remaining:b.remaining ~self:(fun () -> work t b 0)
  end

let run_dag ?(seed = 0) t ~deps tasks =
  if t.p_closing then invalid_arg "Pool.run_dag: pool is closed";
  if t.p_running then invalid_arg "Pool.run_dag: already running a batch";
  let n = Array.length tasks in
  if Array.length deps <> n then
    invalid_arg "Pool.run_dag: deps and tasks length mismatch";
  if n = 0 then ()
  else begin
    (* Kahn pre-pass: reject cyclic dependency declarations up front, and
       validate predecessor indices, before any worker is woken. *)
    let unmet = Array.make n 0 in
    Array.iteri
      (fun i preds ->
        List.iter
          (fun p ->
            if p < 0 || p >= n then
              invalid_arg "Pool.run_dag: dependency index out of range";
            if p <> i then unmet.(i) <- unmet.(i) + 1)
          preds)
      deps;
    let succs = Array.make n [] in
    Array.iteri
      (fun i preds ->
        List.iter (fun p -> if p <> i then succs.(p) <- i :: succs.(p)) deps.(i);
        ignore preds)
      deps;
    let q = Queue.create () in
    let counts = Array.copy unmet in
    Array.iteri (fun i c -> if c = 0 then Queue.push i q) counts;
    let processed = ref 0 in
    while not (Queue.is_empty q) do
      let i = Queue.pop q in
      incr processed;
      List.iter
        (fun j ->
          counts.(j) <- counts.(j) - 1;
          if counts.(j) = 0 then Queue.push j q)
        succs.(i)
    done;
    if !processed <> n then invalid_arg "Pool.run_dag: cyclic dependencies";
    t.p_running <- true;
    let ready = Queue.create () in
    (* Seed the ready queue with the roots, rotated by [seed]: with the
       mutex-ordered queue the claim interleaving still races, but the
       deterministic part of the schedule (who is offered what first)
       varies across seeds exactly like [run]'s deal rotation. *)
    let roots =
      Array.to_list (Array.init n Fun.id)
      |> List.filter (fun i -> unmet.(i) = 0)
    in
    let nr = List.length roots in
    let rot = if nr = 0 then 0 else lcg seed mod nr in
    let roots = Array.of_list roots in
    for k = 0 to nr - 1 do
      Queue.push roots.((k + rot) mod nr) ready
    done;
    let d =
      {
        d_tasks = tasks;
        d_ready = ready;
        d_lock = Mutex.create ();
        d_unmet = Array.map Atomic.make unmet;
        d_deps = Array.map (fun l -> Array.of_list (List.rev l)) succs;
        d_remaining = Atomic.make n;
      }
    in
    run_job t (Dag d) ~remaining:d.d_remaining ~self:(fun () -> dag_work t d 0)
  end

let worker_stats t =
  Array.init t.p_domains (fun w ->
      {
        ws_tasks = t.p_tasks.(w);
        ws_steals = t.p_steals.(w);
        ws_idle_probes = t.p_idle_probes.(w);
      })

let reset_worker_stats t =
  Array.fill t.p_tasks 0 t.p_domains 0;
  Array.fill t.p_steals 0 t.p_domains 0;
  Array.fill t.p_idle_probes 0 t.p_domains 0

let total_steals t = Array.fold_left ( + ) 0 t.p_steals

let close t =
  if not t.p_closing then begin
    Mutex.lock t.p_lock;
    t.p_closing <- true;
    Condition.broadcast t.p_cond;
    Mutex.unlock t.p_lock;
    Array.iter (fun d -> ignore (Domain.join d)) t.p_workers
  end
