(** Counters instrumenting a runtime instance.

    These back the paper's efficiency claims: push-based evaluation avoids
    needless recomputation (Sections 1-2), and [No_change] propagation is the
    memoization that makes this observable. [recomputations] counts the extra
    function applications performed when memoization is disabled (the
    pull-style baseline of experiment B3).

    Affected-cone dispatch (see {!Runtime.dispatch}) adds the second family
    of counters: [elided_messages] are the [No_change] node emissions a
    flooding dispatcher would have paid and the cone dispatcher compressed
    into epoch gaps, so [messages + elided_messages] always equals the flood
    total, and [notified_nodes] counts dispatcher wakeups actually sent. *)

type t = {
  mutable events : int;  (** Events dispatched by the global dispatcher. *)
  mutable messages : int;  (** Edge messages actually sent by node threads. *)
  mutable elided_messages : int;
      (** Flood-equivalent [No_change] emissions skipped by cone dispatch:
          per event, the nodes outside the affected cone. Invariant:
          [messages + elided_messages = node_count * events]. *)
  mutable notified_nodes : int;
      (** Wakeups delivered by the dispatcher (cone sizes summed over
          events; [node_count * events] under flood dispatch). *)
  mutable applications : int;
      (** Lifted-function applications triggered by a [Change]. *)
  mutable recomputations : int;
      (** Applications forced only by [memoize:false] (all-[No_change] rounds). *)
  mutable fold_steps : int;  (** [foldp] accumulator updates. *)
  mutable async_events : int;  (** Events originating from [async] nodes. *)
  mutable switches : int;
      (** Scheduler context-switch count sampled at the last dispatched or
          displayed message; divide by [events] for switches per event. *)
  mutable fused_nodes : int;
      (** Nodes eliminated by the {!Fuse} pass before instantiation: set
          once at {!Runtime.start}. Invariant:
          [fused_nodes + node_count = original node count], and the elision
          invariant [messages + elided_messages = node_count * events] holds
          for the {e fused} node count. *)
  mutable compiled_regions : int;
      (** Synchronous regions instantiated by the {!Compile} backend: set
          once at {!Runtime.start}; 0 on pipelined runtimes. Per-node
          counters for region members are accounted through the region
          ([messages]/[elided_messages] still balance the elision
          invariant over the {e member} count, and the tracer reports one
          span per region step rather than stale zero rows per member). *)
  mutable region_steps : int;
      (** Region step-function executions (compiled backend): one per
          region wakeup, where the pipelined backend would have paid one
          thread wakeup {e per member node}. *)
  mutable node_failures : int;
      (** Exceptions caught inside node steps by the [Isolate]/[Restart]
          supervision policies (see {!Runtime.error_policy}); each failed
          round still emits a [No_change] of the node's last-good value, so
          the elision invariant is unaffected. Always 0 under [Propagate]. *)
  mutable node_restarts : int;
      (** Node re-initialisations performed by [Restart] (fresh [foldp]
          accumulator / composite step). Bounded by the policy's budget
          summed over failing nodes; at most [node_failures]. *)
}

val create : unit -> t

val pp : Format.formatter -> t -> unit
(** One line: every counter, then the [msg/ev] and [sw/ev] per-event ratios.
    Ratios print as [0.0] on an empty run (no division by zero). *)

val total_computations : t -> int
(** [applications + recomputations]: everything a pull system would pay. *)

val total_flood_messages : t -> int
(** [messages + elided_messages]: what a flooding dispatcher would send. *)

val per_event : int -> t -> float
(** [per_event total s] is [total / events] (0 when no events). *)

val copy : t -> t
(** An independent snapshot: mutating the copy never touches the original.
    Used by [Serve.Dispatcher.clone] so a cloned session's counters
    continue from its parent's. *)

val merge : t -> t -> unit
(** [merge dst src] adds every counter of [src] into [dst]. Exact: all
    counters are sums of per-event increments, so per-domain accumulators
    merged into one equal a single-domain run's totals (and the elision
    invariant [messages + elided_messages = node_count * events] survives
    the merge). Counters stay plain ints — a session is pinned to one
    domain while being stepped, so instances are never mutated
    concurrently; merging afterwards is the whole multi-domain story. *)

val add_delta : t -> before:t -> after:t -> unit
(** [add_delta dst ~before ~after] adds [after - before], field-wise, into
    [dst]. [before] and [after] are {!copy} snapshots of the same live
    instance; the pool uses this to attribute a step's work to the domain
    that ran it without disturbing the session's own totals. *)

val pp_labeled : string -> Format.formatter -> t -> unit
(** [pp_labeled label] prints [label: <pp>]. Use one label per instance
    (e.g. ["s3"] for session 3) when several runtimes or sessions report
    through one sink, so their rows do not collide. *)
