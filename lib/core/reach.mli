(** Build-time source-reachability analysis over a signal DAG.

    Computes, for each node of a graph, the set of {e runtime source} ids
    that can reach it through synchronous edges. This is what lets the
    {!Runtime} dispatcher notify only the affected cone of an event instead
    of flooding the whole graph (modal FRP systems obtain the same
    separation statically by typing; we recover it dynamically).

    Runtime sources are the nodes registered with the global dispatcher:
    inputs, constants, [async] and [delay] nodes, and dependency-free
    degenerate nodes. An [async]/[delay] node cuts reachability: its inner
    subgraph reaches the rest of the program only via the dispatcher, so
    the async node's reach set is the singleton of its own source id. *)

type t

type set
(** An immutable set of source node ids. *)

val analyze : 'a Signal.t -> t
(** Analyze the graph rooted at the given signal. Pure; runs in
    O(nodes * sources) time at build time. *)

val node_count : t -> int
(** Total nodes in the graph (= messages per event under flood dispatch). *)

val order : t -> Signal.packed list
(** All nodes, dependencies before dependents. *)

val sources : t -> int list
(** Ids of every runtime source, in topological order. Includes sources
    that never fire (constants, empty lifts). *)

val reaching : t -> int -> set
(** [reaching t id] is the set of source ids that can reach node [id].
    Empty for unknown ids. *)

val affects : t -> source:int -> node:int -> bool

val union_reaching : t -> int list -> set
(** Union of the reaching sets of the given nodes. This is a compiled
    region's wake test (see {!Compile}): the sources whose events can
    affect {e any} member of the region. *)

val cone : t -> int -> Signal.packed list
(** [cone t source] is the affected cone of an event fired by [source]:
    every node it can reach, in topological order. *)

val cone_size : t -> int -> int

val set_mem : int -> set -> bool
val set_cardinal : set -> int
val set_elements : set -> int list

val pp : Format.formatter -> t -> unit
(** One line per node: [id name <- {reaching source ids}]. *)
