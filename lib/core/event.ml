type 'a t =
  | Change of 'a
  | No_change of 'a

let is_change = function Change _ -> true | No_change _ -> false

let body = function Change v | No_change v -> v

let map f = function Change v -> Change (f v) | No_change v -> No_change (f v)

let pp pp_v ppf = function
  | Change v -> Format.fprintf ppf "Change %a" pp_v v
  | No_change v -> Format.fprintf ppf "NoChange %a" pp_v v

let equal eq a b =
  match a, b with
  | Change x, Change y | No_change x, No_change y -> eq x y
  | Change _, No_change _ | No_change _, Change _ -> false

type 'a stamped = {
  epoch : int;
  event : 'a t;
}

let stamp epoch event = { epoch; event }

let pp_stamped pp_v ppf s =
  Format.fprintf ppf "@[%d:%a@]" s.epoch (pp pp_v) s.event
