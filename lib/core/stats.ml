type t = {
  mutable events : int;
  mutable messages : int;
  mutable elided_messages : int;
  mutable notified_nodes : int;
  mutable applications : int;
  mutable recomputations : int;
  mutable fold_steps : int;
  mutable async_events : int;
  mutable switches : int;
  mutable fused_nodes : int;
  mutable compiled_regions : int;
  mutable region_steps : int;
  mutable node_failures : int;
  mutable node_restarts : int;
}

let create () =
  {
    events = 0;
    messages = 0;
    elided_messages = 0;
    notified_nodes = 0;
    applications = 0;
    recomputations = 0;
    fold_steps = 0;
    async_events = 0;
    switches = 0;
    fused_nodes = 0;
    compiled_regions = 0;
    region_steps = 0;
    node_failures = 0;
    node_restarts = 0;
  }

let total_computations s = s.applications + s.recomputations

let total_flood_messages s = s.messages + s.elided_messages

(* Every ratio printed or exported must go through this guard: an empty run
   (events = 0) prints 0.0 rather than raising Division_by_zero / nan. *)
let per_event total s =
  if s.events = 0 then 0.0 else float_of_int total /. float_of_int s.events

(* [regions=.../region_steps=...] appears only on compiled-backend runs:
   a pipelined runtime has no regions, and printing zeros for it would
   suggest per-node counters were absorbed somewhere when they were not. *)
let pp ppf s =
  Format.fprintf ppf
    "events=%d messages=%d elided=%d notified=%d applications=%d \
     recomputations=%d fold_steps=%d async_events=%d switches=%d fused=%d \
     failures=%d restarts=%d%t msg/ev=%.1f sw/ev=%.1f"
    s.events s.messages s.elided_messages s.notified_nodes s.applications
    s.recomputations s.fold_steps s.async_events s.switches s.fused_nodes
    s.node_failures s.node_restarts
    (fun ppf ->
      if s.compiled_regions > 0 then
        Format.fprintf ppf " regions=%d region_steps=%d" s.compiled_regions
          s.region_steps)
    (per_event s.messages s) (per_event s.switches s)

(* A plain record copy: counters are immediate ints, so the copy shares
   nothing with the original. Session cloning uses this so a clone's
   counters continue from the parent's history instead of resetting. *)
let copy s = { s with events = s.events }

(* Counters are plain ints, never atomics: each instance is only ever
   mutated by the one domain currently running its session (the pool pins a
   session to a domain for the whole task), so merging — not sharing — is
   the multi-domain story. [merge] folds a worker's accumulator into a
   global view after the parallel phase; field-wise addition is exact
   because every counter is a sum of per-event increments. *)
let merge dst src =
  dst.events <- dst.events + src.events;
  dst.messages <- dst.messages + src.messages;
  dst.elided_messages <- dst.elided_messages + src.elided_messages;
  dst.notified_nodes <- dst.notified_nodes + src.notified_nodes;
  dst.applications <- dst.applications + src.applications;
  dst.recomputations <- dst.recomputations + src.recomputations;
  dst.fold_steps <- dst.fold_steps + src.fold_steps;
  dst.async_events <- dst.async_events + src.async_events;
  dst.switches <- dst.switches + src.switches;
  dst.fused_nodes <- dst.fused_nodes + src.fused_nodes;
  dst.compiled_regions <- dst.compiled_regions + src.compiled_regions;
  dst.region_steps <- dst.region_steps + src.region_steps;
  dst.node_failures <- dst.node_failures + src.node_failures;
  dst.node_restarts <- dst.node_restarts + src.node_restarts

(* [add_delta dst ~before ~after] credits [dst] with the work done between
   two snapshots of the same live instance. This is how per-domain stats
   are attributed: a worker snapshots a session's counters ([copy]) before
   stepping it, steps it, and adds the difference to its own domain row —
   the session's counters themselves stay whole-session totals. *)
let add_delta dst ~before ~after =
  dst.events <- dst.events + (after.events - before.events);
  dst.messages <- dst.messages + (after.messages - before.messages);
  dst.elided_messages <-
    dst.elided_messages + (after.elided_messages - before.elided_messages);
  dst.notified_nodes <-
    dst.notified_nodes + (after.notified_nodes - before.notified_nodes);
  dst.applications <- dst.applications + (after.applications - before.applications);
  dst.recomputations <-
    dst.recomputations + (after.recomputations - before.recomputations);
  dst.fold_steps <- dst.fold_steps + (after.fold_steps - before.fold_steps);
  dst.async_events <- dst.async_events + (after.async_events - before.async_events);
  dst.switches <- dst.switches + (after.switches - before.switches);
  dst.fused_nodes <- dst.fused_nodes + (after.fused_nodes - before.fused_nodes);
  dst.compiled_regions <-
    dst.compiled_regions + (after.compiled_regions - before.compiled_regions);
  dst.region_steps <- dst.region_steps + (after.region_steps - before.region_steps);
  dst.node_failures <-
    dst.node_failures + (after.node_failures - before.node_failures);
  dst.node_restarts <-
    dst.node_restarts + (after.node_restarts - before.node_restarts)

(* The label disambiguates instances sharing one sink — per-session stats
   lines would otherwise be indistinguishable ("s3: events=..."). Partial
   application gives a [%a]-compatible printer. *)
let pp_labeled label ppf s = Format.fprintf ppf "%s: %a" label pp s
