type t = {
  mutable events : int;
  mutable messages : int;
  mutable elided_messages : int;
  mutable notified_nodes : int;
  mutable applications : int;
  mutable recomputations : int;
  mutable fold_steps : int;
  mutable async_events : int;
  mutable switches : int;
  mutable fused_nodes : int;
  mutable compiled_regions : int;
  mutable region_steps : int;
  mutable node_failures : int;
  mutable node_restarts : int;
}

let create () =
  {
    events = 0;
    messages = 0;
    elided_messages = 0;
    notified_nodes = 0;
    applications = 0;
    recomputations = 0;
    fold_steps = 0;
    async_events = 0;
    switches = 0;
    fused_nodes = 0;
    compiled_regions = 0;
    region_steps = 0;
    node_failures = 0;
    node_restarts = 0;
  }

let total_computations s = s.applications + s.recomputations

let total_flood_messages s = s.messages + s.elided_messages

(* Every ratio printed or exported must go through this guard: an empty run
   (events = 0) prints 0.0 rather than raising Division_by_zero / nan. *)
let per_event total s =
  if s.events = 0 then 0.0 else float_of_int total /. float_of_int s.events

(* [regions=.../region_steps=...] appears only on compiled-backend runs:
   a pipelined runtime has no regions, and printing zeros for it would
   suggest per-node counters were absorbed somewhere when they were not. *)
let pp ppf s =
  Format.fprintf ppf
    "events=%d messages=%d elided=%d notified=%d applications=%d \
     recomputations=%d fold_steps=%d async_events=%d switches=%d fused=%d \
     failures=%d restarts=%d%t msg/ev=%.1f sw/ev=%.1f"
    s.events s.messages s.elided_messages s.notified_nodes s.applications
    s.recomputations s.fold_steps s.async_events s.switches s.fused_nodes
    s.node_failures s.node_restarts
    (fun ppf ->
      if s.compiled_regions > 0 then
        Format.fprintf ppf " regions=%d region_steps=%d" s.compiled_regions
          s.region_steps)
    (per_event s.messages s) (per_event s.switches s)

(* A plain record copy: counters are immediate ints, so the copy shares
   nothing with the original. Session cloning uses this so a clone's
   counters continue from the parent's history instead of resetting. *)
let copy s = { s with events = s.events }

(* The label disambiguates instances sharing one sink — per-session stats
   lines would otherwise be indistinguishable ("s3: events=..."). Partial
   application gives a [%a]-compatible printer. *)
let pp_labeled label ppf s = Format.fprintf ppf "%s: %a" label pp s
