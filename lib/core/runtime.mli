(** Instantiation and execution of signal graphs.

    {!start} performs the paper's Fig. 10 translation at runtime: every node
    of the {!Signal.t} DAG gets its own green thread and a multicast output
    channel, and the Fig. 11 runtime loops — the global event dispatcher and
    the display loop — are spawned alongside. All of it runs on the {!Cml}
    cooperative scheduler and must therefore be called inside {!Cml.run}.

    {b Dispatch strategies.} The paper's Fig. 11 dispatcher {e floods}: every
    event is broadcast to every source and every node emits one
    [Change]/[No_change] message per event, costing O(nodes) messages and
    thread wakeups per event regardless of what the event can affect. The
    default [Cone] strategy instead runs a build-time source-reachability
    analysis ({!Reach}) and wakes only the firing source's affected cone.
    Edges out of quiescent nodes are {e epoch-compressed}: messages carry the
    global event number ({!Event.stamped}), and a receiver whose dependency
    was not in the cone synthesizes the elided [No_change] locally from the
    edge's last body. Observable behaviour ({!changes}, {!current},
    listeners, per-event alignment of [foldp]/[merge]) is identical to
    flooding; {!message_log} differs only in that display rounds whose event
    could not reach the root are elided. {!Stats.t.elided_messages} accounts
    for every send avoided this way: [messages + elided_messages] equals the
    flood total exactly.

    {b Execution modes.} The paper's semantics is synchronous but
    {e pipelined}: an event's value need not have fully propagated before the
    next event enters the graph, yet every node processes events in global
    order. That is [Pipelined], the default. [Sequential] is the
    non-pipelined baseline used by the Section 5 comparison: the dispatcher
    waits for the display loop to acknowledge each event before dispatching
    the next, so at most one event is in flight.

    [memoize:false] disables the [No_change] short-circuit in lift nodes
    (they re-apply their function on unchanged inputs, counted in
    {!Stats.t.recomputations}) while preserving output semantics; it is the
    pull-style recomputation baseline of experiment B3. Because that baseline
    exists to measure flood-shaped work, [memoize:false] defaults to [Flood]
    dispatch unless a strategy is given explicitly, and it also disables
    fusion (a fused composite's step is stateful and cannot be re-run on
    quiescent rounds).

    {b Fusion.} By default {!start} first runs the {!Fuse} pass: maximal
    chains of stateless single-subscriber nodes are collapsed into one
    composite node each, shrinking thread count, messages/event and context
    switches while leaving {!changes}, {!current} and {!on_change}
    bit-identical across [Pipelined]/[Sequential] × [Flood]/[Cone] (for
    chain functions that take no virtual time; a chain of {e sleeping}
    stages keeps its values and order but loses pipelined overlap, since
    the fused chain is one node). {!node_count}, {!Reach} cones, the
    elision invariant and {!Trace} spans all describe the fused graph;
    {!Stats.t.fused_nodes} records how many nodes were eliminated. Pass
    [~fuse:false] to instantiate the graph exactly as written. *)

(** How the graph between async boundaries is executed. Declared before
    {!mode} so the unqualified [Pipelined] keeps naming the execution mode
    at existing call sites; backend positions disambiguate by expected
    type.

    Both backends implement the same observable semantics: {!changes},
    {!current}, {!message_log}, listeners, supervision and the per-event
    alignment invariants are identical (the equivalence is
    property-checked across the shape catalogue and through the
    [Check.Explore] harness). [Compiled] requires memoization — under
    [memoize:false] it silently falls back to the threaded backend, like
    fusion does. *)
type backend =
  | Pipelined
      (** Fig. 10 verbatim: one green thread per node, one multicast
          channel per edge. Default. *)
  | Compiled
      (** Synchronous regions compiled to straight-line step functions
          (see {!Compile}): one thread per async/delay-delimited region,
          node state in a flat arena, [No_change] as a dirty-bit skip.
          Order-of-magnitude fewer context switches and messages per
          event; async boundaries keep their mailboxes and threads. *)

type mode =
  | Pipelined  (** Paper semantics: nodes run concurrently, FIFO edges. *)
  | Sequential  (** Baseline: one event fully displayed before the next. *)

type dispatch =
  | Flood  (** Fig. 11 verbatim: every node emits every event. *)
  | Cone
      (** Reachability-pruned dispatch: only the affected cone runs; elided
          [No_change] rounds are synthesized from epoch gaps. Default. *)

(** What a node does when its user-supplied function (lifted function,
    [foldp] step, [drop_repeats] equality, fused composite step) raises.

    Whatever the policy, per-event alignment is preserved: a failed round
    still emits exactly one message, and that message is [No_change] of the
    node's last-good value — precisely what a quiescent node would have
    sent, so downstream edge caches and the elision invariant are
    untouched. Failures are counted in {!Stats.t.node_failures} and, when a
    tracer is attached, recorded as [Node_fail] instants. *)
type error_policy =
  | Propagate
      (** Seed behaviour (default): the exception unwinds the node thread
          and surfaces out of {!Cml.run}, tearing the session down. *)
  | Isolate
      (** Catch the exception, emit [No_change last-good], keep the node's
          state (accumulator, composite step) as it was, and keep going. *)
  | Restart of int
      (** Like [Isolate], but additionally re-initialise the node's state —
          a fresh [foldp] accumulator from the signal default, a fresh
          composite step from the fusion factory — on each of the first [n]
          failures {e of that node} (counted in {!Stats.t.node_restarts});
          after the budget is spent the node degrades to [Isolate].
          [Restart 0] is equivalent to [Isolate]. *)

(** A planted ordering bug, injected with [start ?mutate] so the
    schedule-exploration checker ([Check.Explore] in [lib/check]) can
    prove it catches real protocol violations. Each breaks the per-event
    alignment discipline in one place; the [int] picks the nth occurrence
    (1-based), so the fault lands mid-run rather than at startup. Never used
    outside tests and benches. *)
type mutation =
  | Drop_no_change of int
      (** Swallow the nth [No_change] emission: the message is neither sent
          nor counted, starving one receiver of one round. *)
  | Skip_epoch of int
      (** Stamp the nth emission with the emitting node's {e previous}
          epoch, as if the stamp register had not been advanced. *)
  | Reorder_wakeup of int
      (** Hold the nth dispatcher wakeup admit and deliver it after the next
          round bound for the same node — an out-of-order mailbox admit. *)
  | Stale_slot_map of int
      (** {e Upgrade mutation} (applied by [Serve.Dispatcher.upgrade_all],
          not by this runtime): rotate the nth upgrade's matched-slot
          mapping by one position, as if the remap table were stale —
          values land in a neighbouring slot of the new arena layout. *)
  | Skip_migration of int
      (** {e Upgrade mutation}: apply the nth upgrade without running the
          user-supplied [?migrate] functions, so migrated state keeps its
          old representation under the new program's code. *)
  | Leak_seam_mailbox of int
      (** {e Upgrade mutation}: the nth upgrade forgets the old seam
          mailboxes (the sessions' pending-value queues) instead of
          transferring their contents onto the new slot layout, so the
          remapped ready-queue entries promise values that are gone — the
          next drain pops an empty queue. *)

type 'a t
(** A running instantiation of a signal graph with output type ['a]. *)

val start :
  ?backend:backend ->
  ?mode:mode ->
  ?dispatch:dispatch ->
  ?memoize:bool ->
  ?history:int ->
  ?tracer:Trace.t ->
  ?fuse:bool ->
  ?on_node_error:error_policy ->
  ?queue_capacity:int ->
  ?observer:(node:int -> epoch:int -> changed:bool -> unit) ->
  ?mutate:mutation ->
  ?domains:int ->
  ?pool:Pool.t ->
  'a Signal.t ->
  'a t
(** Instantiate the graph and spawn its threads. Must be called inside
    {!Cml.run}. A signal node belongs to at most one live runtime; starting a
    new runtime over the same nodes re-instantiates them (including, under
    the [Compiled] backend, re-initialising every arena cell from the
    signal defaults — [foldp] state never leaks across runtimes).

    [backend] selects the execution strategy between async boundaries
    (default [Pipelined], the paper's translation; [felmc run] defaults to
    [Compiled]). Under [Compiled], {!Stats.t.compiled_regions} and
    {!Stats.t.region_steps} are populated, the tracer records one span per
    region step instead of per-member rows, and {!message_log} /
    {!changes} are unchanged.

    [history] bounds the {!changes} / {!message_log} logs: absent keeps
    everything (the default, as tests expect), [~history:n] retains the [n]
    most recent entries (amortized O(1) per event), and [~history:0] disables
    logging entirely for long-running sessions — {!current}, {!stats} and
    {!on_change} listeners are unaffected.

    [tracer] enables per-node instrumentation (see {!Trace}): dispatch,
    node-round and display records with virtual-clock timestamps, plus
    queue-depth and context-switch probes installed process-wide for the
    duration of the run. Without it no instrumentation site allocates or
    sends a message, and observable behaviour ({!changes}, {!stats}) is
    identical either way. The cml probe is global, so of two runtimes
    started inside one {!Cml.run} only the most recent [?tracer] receives
    channel/switch records (per-node records are always routed to the
    runtime's own tracer).

    [on_node_error] selects the supervision policy applied to every node's
    user-function application (default {!Propagate}, the seed behaviour).
    The guard wraps only the fallible application — never the edge reads —
    so an internal alignment violation still fails loudly under any policy.
    A crash inside a fused chain isolates or restarts the whole composite
    as a unit.

    [queue_capacity] bounds every node wakeup and source value mailbox
    (default: unbounded, the seed behaviour). Overflow policy is
    {!Cml.Mailbox.Block}: a dispatcher or injector that outruns a node
    suspends until the node drains its backlog — real backpressure rather
    than unbounded buffering. Probe-observed queue depths (tracer
    [queue_peaks]) never exceed the capacity. Deadlock-free for signal
    graphs: node progress depends only on wakeups and upstream multicast
    edges, so a blocked sender always has a running reader downstream.
    [observer] is the reference-trace capture hook used by the
    schedule-exploration checker ([Check.Explore]): it is invoked
    synchronously for every message a node puts on the wire, with the node
    id, the epoch {e as stamped on the message} (so stamp mutations are
    visible), and whether the message was a [Change]. Without it the
    emission path is unchanged.

    [mutate] plants one ordering bug (see {!mutation}); only the checker's
    mutation-coverage tests and benches pass it.

    [domains]/[pool] enable {e intra-session parallel dispatch} on the
    compiled backend: the threaded region dispatcher is replaced by a
    coordinator that batches queued events into waves and runs each wave's
    data-independent region groups (the plan's SCC-condensed dependency
    DAG, {!Compile.group_deps}) concurrently on a domain pool, flushing
    async/delay/display effects afterwards in (admission epoch, group)
    order — change traces are bit-identical to the sequential dispatcher
    (property-checked by [Check.Explore]'s [Domains] policy and gated by
    bench B19). Region steps run atomically in virtual time: a step that
    charges virtual cost ([Cml.sleep] inside a lift) delays the whole
    wave's flush, so async programs with costly branches keep their
    values and per-source order but may stamp displays later than the
    threaded dispatcher would; such costs are only supported inline
    (single-group waves or [~domains:1]) — on a pool worker the
    scheduler is unavailable and the step fails under the node's
    supervision policy. [~domains:k] with [k > 1] creates a private pool closed by
    {!stop}; [~domains:1] runs waves inline with no pool (the sequential
    wave baseline); [~pool] borrows a caller-owned pool (never closed
    here) and takes precedence over [domains]. The wave coordinator
    applies only when [backend = Compiled] and neither [mutate] nor
    [queue_capacity] is given — otherwise the request silently falls back
    to the threaded dispatcher, as [Compiled] itself does under
    [memoize:false].
    @raise Invalid_argument outside a running scheduler, when [history]
    is negative, when a [Restart] budget is negative, when
    [queue_capacity < 1], when [domains < 1], or when a [mutate]
    occurrence is [< 1]. *)

val inject : _ t -> 'b Signal.t -> 'b -> unit
(** [inject rt input v] delivers an external event: the new value [v] for
    [input] (a node created with {!Signal.input}) is queued and a global
    event is registered with the dispatcher. Events are processed in
    injection order (the [newEvent] mailbox "is a FIFO queue, preserving the
    order of events", Fig. 11).
    @raise Invalid_argument if [input] is not an input node of this
    runtime. *)

val try_inject : _ t -> 'b Signal.t -> 'b -> bool
(** Like {!inject} but returns [false] when the node is not an input of
    this runtime. Input-library drivers use this: a browser fires mouse and
    key events whether or not the program subscribes to them. *)

val current : 'a t -> 'a
(** Latest displayed value (the default until the first change). *)

val changes : 'a t -> (float * 'a) list
(** Every [Change] received by the display loop, oldest first, with the
    virtual time of its arrival (at most [history] entries when a cap was
    given). This is the observable behaviour used throughout tests and
    benches: what the screen showed, and when. Identical under [Flood] and
    [Cone] dispatch. *)

val message_log : 'a t -> (float * 'a Event.t) list
(** Every message (including [No_change]) at the display loop, oldest
    first. Under [Flood] dispatch this is one entry per dispatched event
    (the "exactly one message per node per event" invariant); under [Cone]
    dispatch, events whose source cannot reach the root are elided, so the
    log is the flood log minus those synthesizable [No_change] rows. *)

val on_change : 'a t -> (float -> 'a -> unit) -> unit
(** Register a callback run by the display loop on each change. Callbacks
    run in registration order; both registration and per-change iteration
    are O(1) per callback. *)

val stats : _ t -> Stats.t

val generation : _ t -> int
(** A number unique to this runtime instance; used by input libraries that
    keep per-runtime driver state (e.g. the set of held keys). Minted
    atomically, so concurrent {!start}s from several domains never share a
    generation. *)

val fresh_generation : unit -> int
(** Mint a generation without starting a runtime — exposed for stress
    tests that assert mint uniqueness under concurrent domains. *)

val stop : _ t -> unit
(** Release the runtime's external resources: run every {!on_stop} hook
    with this runtime's generation (dropping per-generation driver state
    in the input libraries) and close the pool created by
    [start ~domains:k] (a caller-supplied [?pool] is never closed).
    Idempotent. The green threads themselves are owned by the enclosing
    {!Cml.run} and end with it, as before — long-lived processes that
    churn runtimes inside one scheduler must [stop] each one or driver
    tables grow without bound. *)

val on_stop : (int -> unit) -> unit
(** Register a global hook run (with the runtime's generation) by every
    {!stop}. Input-library drivers register one per module at init time to
    free per-generation state. Hooks must be reentrant and fast; they may
    run from whichever domain calls {!stop}. *)

val at_quiescence : _ t -> (unit -> unit) -> unit
(** Register a one-shot callback run by the dispatcher at its next
    quiescent point: after an event wave has run and flushed with no
    further global event queued (wave coordinator), or after a dispatched
    event with an empty [newEvent] queue (threaded dispatcher — under
    [Sequential] mode the displayed event has fully settled; under
    [Pipelined] node threads may still be propagating downstream, so only
    the event {e queue} is known empty). This is the seam where a live
    graph upgrade is safe to admit: no round is mid-wave, so arena slots
    and region state are not concurrently observed. Callbacks run on the
    dispatcher thread in registration order and are dropped once run; they
    must not block. If no further event ever arrives after registration,
    the callback runs after the {e next} event's wave completes — register
    before the final injection, or inject a dummy event to flush hooks. *)

val domain_stats : _ t -> Stats.t array
(** Per-worker-slot {!Stats} attribution under intra-session parallel
    dispatch ([start ~domains]/[~pool]): index [w] accumulates the deltas
    of region-group work executed by pool worker [w] (slot 0 doubles as
    the coordinator under [~domains:1]). Empty for threaded runtimes. *)

val source_ids : _ t -> (int * string) list
(** Identifier and name of every source node registered with the
    dispatcher. *)

val node_count : _ t -> int
(** Number of graph nodes instantiated: the per-event message cost of flood
    dispatch, and the denominator of the elision invariant
    [messages + elided_messages = node_count * events]. *)

val dispatch_of : _ t -> dispatch
(** The dispatch strategy this runtime is using. *)
