(** Per-event messages flowing along signal-graph edges (paper Fig. 9).

    For every dispatched event, {e every} node emits exactly one message:
    [Change v] when its value was recomputed, [No_change v] carrying the
    latest (unchanged) value otherwise. [No_change] is simultaneously a
    memoization device and a correctness requirement for [foldp] (Section
    3.3.2: a key-press counter must only step on actual key events). *)

type 'a t =
  | Change of 'a
  | No_change of 'a

val is_change : 'a t -> bool
(** The paper's [change] helper. *)

val body : 'a t -> 'a
(** The paper's [bodyOf] helper: the carried value either way. *)

val map : ('a -> 'b) -> 'a t -> 'b t

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool

(** {1 Epoch-stamped messages}

    Under affected-cone dispatch (see {!Runtime}), a node emits a message
    only for the global events (epochs) that can actually reach it. Each
    edge message therefore carries the epoch it belongs to; a receiver that
    observes a gap between consecutive epochs on an edge knows the producer
    was quiescent for the missing rounds and synthesizes the elided
    [No_change] messages locally from the edge's last body, preserving the
    paper's one-message-per-edge-per-event alignment without the sends. *)

type 'a stamped = {
  epoch : int;  (** Global event number this message answers. *)
  event : 'a t;
}

val stamp : int -> 'a t -> 'a stamped

val pp_stamped :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a stamped -> unit
