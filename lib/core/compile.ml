(* The compiled backend: synchronous regions as straight-line step functions,
   split into a shared *plan* and per-instance *arenas*.

   The paper's design isolates all asynchrony at explicit [async]/[delay]
   boundaries, which makes everything between two boundaries a deterministic
   synchronous region: within one global event, the region's nodes fire in
   dependency order with no interleaving freedom that could change the
   result. The pipelined backend (Fig. 10) nevertheless interprets such a
   region as one cooperative thread per node and one multicast channel per
   edge, paying a scheduler switch and a channel hop for every node of every
   event. Here we exploit the determinism instead:

   - [plan] partitions the graph into maximal synchronous regions by
     union-find over dependency edges, *cutting* the edge into every
     [async]/[delay] node (their inner subgraph reaches them only through
     the global dispatcher, so that edge carries no synchronous round), and
     compiles each region to a single array of op templates in topological
     order. The plan is immutable and carries no instance state: it is the
     per-graph-shape template, built once and cached ([plan_of]).

   - An [arena] is everything one running instance owns: a flat block of
     per-node value/stamp slots plus a few extra state slots ([foldp]
     restart flags, [keep_when] gate history, composite step closures).
     Opening an instance is ~an array copy ([new_arena]); cloning one is
     exactly that plus re-creating the non-copyable state ([clone_arena]).

   - An op template is [exec -> round -> unit]: it closes over slot
     *indices* and the node's typed functions, never over cells, so the
     same op array drives any number of concurrent arenas. The [exec]
     record carries the instance's arena and its environment hooks (value
     queues, display, async registration, supervision, accounting) — the
     runtime binds them to mailboxes and threads, the session layer
     ([Serve]) to plain queues stepped synchronously.

   Node state lives in the arena as [Obj.t]: the graph is heterogeneous,
   and moving cells out of the nodes (where a generation-stamped slot
   allowed only one live instance per graph) is the whole point. This is
   type-safe by construction: slot [i] of any arena for a given plan is
   only ever read and written by the ops compiled for node [i], inside the
   typed scope of that node's GADT arm — the plan that assigned the slot
   is the only code that touches it.

   [No_change] becomes a per-node dirty-bit test ([stamp = epoch]) instead
   of a message, and fan-out/merge become plain sequential reads. Only two
   kinds of real channel traffic survive in the runtime instantiation: the
   dispatcher's region wakeups and the root's display messages.

   Topological order within a region is inherited from [Signal.reachable]
   (the same deterministic deps-first DFS the pipelined build uses), so a
   compiled round computes exactly what a fully-settled pipelined round
   would: a node's op runs strictly after all its dependency ops, reading
   their freshly-written slots. Async taps are ordered right after their
   inner node's op via a secondary sort key, never before it.

   The module deliberately does not depend on [Runtime]; the runtime passes
   its accounting, supervision, and event-registration hooks in a [config],
   so mutations (Check.Mutate) and supervision policies behave identically
   in both backends. *)

module Mailbox = Cml.Mailbox
module Multicast = Cml.Multicast

(* One dispatcher round. [Runtime.round] re-exports this type; it lives here
   so region wakeup mailboxes and node wakeup mailboxes are interchangeable
   from the dispatcher's point of view (including the Reorder_wakeup
   mutation's held-round machinery). *)
type round = {
  epoch : int;
  source : int;
}

(* ------------------------------------------------------------------ *)
(* Region partitioning *)

type region = {
  rg_index : int;  (* dense index, in topological order of first member *)
  rg_rep : int;
      (* representative node id: the topologically last member (the
         region's output); used as the region's id for tracing *)
  rg_name : string;  (* the representative's name *)
  rg_members : Signal.packed list;  (* in topological order *)
  rg_member_ids : int list;
}

(* ------------------------------------------------------------------ *)
(* Instance state: arena + execution context *)

(* A node supervisor usable at the node's value type from inside the
   region's generic step code; the polymorphic field lets one record carry
   a per-node Restart budget while being applied at whatever type the
   node's slots have. *)
type guarded = {
  guard :
    'a.
    prev:'a -> reset:(unit -> unit) -> epoch:int -> (unit -> 'a Event.t) ->
    'a Event.t;
}

(* Everything one instance owns. [ar_values.(i)]/[ar_stamps.(i)] are node
   [i]'s last emitted body and the epoch that last changed it (the dirty
   bit is [stamp = epoch]). [ar_state] holds the few per-node extras that
   are not plain last-values: foldp restart flags and keep_when gate
   history (plain data, copied by [clone_arena]) and composite step
   closures (hidden mutable state, re-created from the plan on clone). *)
type arena = {
  ar_values : Obj.t array;
  ar_stamps : int array;
  ar_state : Obj.t array;
}

(* The per-instance execution context threaded through every op. One record
   per instance, not per round: ops allocate nothing on the steady path. *)
type exec = {
  x_arena : arena;
  x_flood : bool;  (* flood dispatch: every node active every round *)
  x_stats : Stats.t;
  x_guards : guarded array;  (* per slot; see {!config.cfg_guard} *)
  x_account :
    node:int -> epoch:int -> changed:bool -> real:bool -> int option;
  mutable x_root_stamp : int option;
      (* bridges the root's account result (possibly mutation-adjusted
         epoch, or a dropped emission) from its member op to the display
         op that runs right after it in the same region step *)
  x_pop : int -> Obj.t;  (* consume the pending value for a source slot *)
  x_push : int -> Obj.t -> unit;  (* enqueue a value for a source slot *)
  x_fire_async : int -> unit;  (* async boundary: register a global event *)
  x_delay : node:int -> slot:int -> seconds:float -> Obj.t -> unit;
      (* delay boundary: deliver the value to [slot] and register a global
         event for [node] after [seconds] *)
  x_display : epoch:int -> changed:bool -> Obj.t -> unit;
}

(* ------------------------------------------------------------------ *)
(* The plan: one immutable compiled template per graph shape *)

type plan = {
  p_regions : region list;
  p_region_of : (int, int) Hashtbl.t;  (* node id -> region index *)
  p_cuts : (int * int) list;
      (* (inner node id, async/delay node id): dependency edges that carry
         no synchronous round and were cut by the partition *)
  p_reach : Reach.t;
  p_root_id : int;
  p_root_slot : int;
  p_nodes : int;  (* slot count = live node count *)
  p_slot_of : (int, int) Hashtbl.t;  (* node id -> slot *)
  p_slot_ids : int array;  (* slot -> node id *)
  p_slot_names : string array;
  p_keys : string array;
      (* slot -> structural key: kind + name + dependency keys, occurrence-
         disambiguated. Node ids are minted fresh per graph build, so two
         builds of the same program share no ids — these keys are the
         stable cross-plan identity live upgrades match slots on. *)
  p_id_stride : int;
      (* 1 + max node id: offset multiplier for per-session trace ids *)
  p_defaults : Obj.t array;  (* slot -> default value *)
  p_n_state : int;
  p_state_init : (unit -> Obj.t) array;
  p_state_copy : bool array;
      (* true: plain data, [clone_arena] copies the slot; false: hidden
         mutable state (composite steps), re-initialised instead *)
  p_state_node : int array;
      (* state slot -> owning node id (each node allocates at most one);
         upgrades remap state through the owner's structural key *)
  p_ops : (exec -> round -> unit) array array;
      (* region index -> op templates in execution order *)
  p_region_sources : Reach.set array;
      (* region index -> sources reaching any member (the wake test) *)
  p_region_deps : (int * int) list;
      (* ordering edges between regions: (producer, consumer) for every
         async/delay seam whose endpoints live in different regions, plus
         shared-source constraints (two regions woken by one source must
         run in index order). See DESIGN.md "Region dependency DAG". *)
  p_group_of : int array;  (* region index -> group index *)
  p_group_regions : int list array;
      (* group index -> member region indices, ascending *)
  p_group_deps : (int * int) list;
      (* p_region_deps quotiented by the SCC condensation: a true DAG *)
  p_group_preds : int list array;  (* group index -> predecessor groups *)
  p_sources : (int * string) list;  (* runtime sources, topological order *)
  p_queue_slots : (int * int * bool) list;
      (* source nodes needing a pending-value queue: (id, slot, bounded).
         Async/delay queues are unbounded (bounded=false): their tap runs
         on the instance's own step path, so blocking it on a full queue
         could deadlock the instance (see DESIGN.md). *)
  p_inputs : Signal.packed list;  (* Input nodes, for external injection *)
}

(* Obj.t arrays must never be created from a float seed: [caml_make_vect]
   would specialise the block to a flat float array, and a later store of a
   non-float value would be reinterpreted as an unboxed double. Seeding
   with an immediate and filling afterwards keeps the generic
   representation whatever the signal value types are. *)
let obj_array n fill =
  let a = Array.make n (Obj.repr 0) in
  for i = 0 to n - 1 do
    a.(i) <- fill i
  done;
  a

let plan : type r. r Signal.t -> plan =
 fun root ->
  let order = Signal.reachable root in
  let root_id = Signal.id root in
  (* Union-find over node ids; path-halving find, arbitrary union. *)
  let parent = Hashtbl.create 64 in
  List.iter
    (fun (Signal.Pack s) -> Hashtbl.replace parent (Signal.id s) (Signal.id s))
    order;
  let rec find i =
    let p = Hashtbl.find parent i in
    if p = i then i
    else begin
      let r = find p in
      Hashtbl.replace parent i r;
      r
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then Hashtbl.replace parent ri rj
  in
  let cuts = ref [] in
  List.iter
    (fun (Signal.Pack s) ->
      match Signal.kind s with
      | Signal.Async inner | Signal.Delay (_, inner) ->
        cuts := (Signal.id inner, Signal.id s) :: !cuts
      | _ ->
        List.iter
          (fun (Signal.Pack d) -> union (Signal.id d) (Signal.id s))
          (Signal.deps s))
    order;
  let index_of_class = Hashtbl.create 16 in
  let region_of = Hashtbl.create 64 in
  let buckets = Hashtbl.create 16 in  (* region index -> members, reversed *)
  let count = ref 0 in
  List.iter
    (fun (Signal.Pack s as p) ->
      let id = Signal.id s in
      let cls = find id in
      let idx =
        match Hashtbl.find_opt index_of_class cls with
        | Some i -> i
        | None ->
          let i = !count in
          incr count;
          Hashtbl.replace index_of_class cls i;
          i
      in
      Hashtbl.replace region_of id idx;
      let prev = try Hashtbl.find buckets idx with Not_found -> [] in
      Hashtbl.replace buckets idx (p :: prev))
    order;
  let regions =
    List.init !count (fun i ->
        let rev_members = Hashtbl.find buckets i in
        let (Signal.Pack rep) = List.hd rev_members in
        let members = List.rev rev_members in
        {
          rg_index = i;
          rg_rep = Signal.id rep;
          rg_name = Signal.name rep;
          rg_members = members;
          rg_member_ids = List.map (fun (Signal.Pack s) -> Signal.id s) members;
        })
  in
  (* ---- template compilation ---- *)
  let reach = Reach.analyze root in
  let n = List.length order in
  let slot_of = Hashtbl.create n in
  List.iteri
    (fun i (Signal.Pack s) -> Hashtbl.replace slot_of (Signal.id s) i)
    order;
  let slot id = Hashtbl.find slot_of id in
  let order_arr = Array.of_list order in
  let slot_ids = Array.map (fun (Signal.Pack s) -> Signal.id s) order_arr in
  let slot_names = Array.map (fun (Signal.Pack s) -> Signal.name s) order_arr in
  let defaults =
    obj_array n (fun i ->
        let (Signal.Pack s) = order_arr.(i) in
        Obj.repr (Signal.default s))
  in
  let id_stride = Array.fold_left (fun a id -> max a (id + 1)) 1 slot_ids in
  (* Structural keys: the identity a slot keeps when the program is rebuilt
     (node ids are minted fresh per build, so they cannot serve). A key is
     kind + name + the dependency keys, computed deps-first over the same
     deterministic topological order everything else uses; repeated
     identical subtrees are disambiguated by an occurrence counter, which
     matches across builds because the traversal order does. Long keys
     (deep chains nest their whole ancestry) are digested to stay O(1) per
     slot while remaining deterministic. *)
  let keys =
    let key_of = Hashtbl.create n in
    let occurrences = Hashtbl.create n in
    Array.map
      (fun (Signal.Pack s) ->
        let dep_keys =
          List.map
            (fun (Signal.Pack d) -> Hashtbl.find key_of (Signal.id d))
            (Signal.deps s)
        in
        let extra =
          match Signal.kind s with
          | Signal.Delay (d, _) -> Printf.sprintf "@%h" d
          | Signal.Composite (c, _) ->
            "=" ^ String.concat "." c.Signal.comp_names
          | _ -> ""
        in
        let raw =
          Printf.sprintf "%s:%s%s(%s)" (Signal.kind_name s) (Signal.name s)
            extra
            (String.concat "," dep_keys)
        in
        let raw =
          if String.length raw <= 120 then raw
          else
            Printf.sprintf "%s:%s~%s" (Signal.kind_name s) (Signal.name s)
              (Digest.to_hex (Digest.string raw))
        in
        let occ =
          match Hashtbl.find_opt occurrences raw with Some k -> k | None -> 0
        in
        Hashtbl.replace occurrences raw (occ + 1);
        let key = if occ = 0 then raw else Printf.sprintf "%s#%d" raw occ in
        Hashtbl.replace key_of (Signal.id s) key;
        key)
      order_arr
  in
  let n_state = ref 0 in
  let state_inits = ref [] in
  let state_copies = ref [] in
  let state_nodes = ref [] in
  let state_slot ~node ~init ~copy =
    let k = !n_state in
    incr n_state;
    state_inits := init :: !state_inits;
    state_copies := copy :: !state_copies;
    state_nodes := node :: !state_nodes;
    k
  in
  let queue_slots = ref [] in
  let inputs = ref [] in
  (* Deterministic op order: primary key is the node's global topological
     position, secondary key orders a node's extra ops (async tap, display
     send) right after its member op. *)
  let pos = Hashtbl.create 64 in
  List.iteri (fun i (Signal.Pack s) -> Hashtbl.replace pos (Signal.id s) i) order;
  let acc : ((int * int) * (exec -> round -> unit)) list array =
    Array.make !count []
  in
  let add_op ~node ~rank op =
    let idx = Hashtbl.find region_of node in
    acc.(idx) <- ((Hashtbl.find pos node, rank), op) :: acc.(idx)
  in
  let finish (x : exec) ~id (r : round) ~changed =
    let stamped =
      x.x_account ~node:id ~epoch:r.epoch ~changed ~real:(id = root_id)
    in
    if id = root_id then x.x_root_stamp <- stamped
  in
  (* A member op: runs when the round reaches the node (always, under
     flood), computes whether the node changed, accounts the emission. *)
  let member ~id compute =
    let rs = Reach.reaching reach id in
    add_op ~node:id ~rank:0 (fun x r ->
        if x.x_flood || Reach.set_mem r.source rs then
          finish x ~id r ~changed:(compute x r))
  in
  (* A source member: woken rounds carrying its own source id consume one
     pending value; all other active rounds are quiescent. *)
  let source_member ~id ~bounded =
    let sl = slot id in
    queue_slots := (id, sl, bounded) :: !queue_slots;
    member ~id (fun x r ->
        if r.source = id then begin
          let ar = x.x_arena in
          ar.ar_values.(sl) <- x.x_pop sl;
          ar.ar_stamps.(sl) <- r.epoch;
          true
        end
        else false)
  in
  (* A computing member: recomputes when any dependency slot is dirty this
     epoch. The emitted body a pipelined consumer would cache as [e_last]
     is exactly [ar_values.(slot)]. Each arm reads and writes its own slot
     inside its typed GADT scope, which is what makes the [Obj] erasure
     safe: no other code ever touches that slot. *)
  let build_node : type x. x Signal.t -> unit =
   fun s ->
    let id = Signal.id s in
    match Signal.kind s with
    | Signal.Constant -> source_member ~id ~bounded:true
    | Signal.Lift_list (_, []) ->
      (* No incoming edges: behaves as a never-firing constant. *)
      source_member ~id ~bounded:true
    | Signal.Input ->
      source_member ~id ~bounded:true;
      inputs := Signal.Pack s :: !inputs
    | Signal.Async inner ->
      source_member ~id ~bounded:false;
      let sl = slot id and si = slot (Signal.id inner) in
      (* The tap replaces the pipelined forwarder thread: ordered right
         after the inner node's op, it sees the freshly written slot and
         registers a new global event per change — the Fig. 8(c) boundary.
         [stamp = epoch] iff the inner node changed this round. *)
      add_op ~node:(Signal.id inner) ~rank:1 (fun x r ->
          let ar = x.x_arena in
          if ar.ar_stamps.(si) = r.epoch then begin
            x.x_push sl ar.ar_values.(si);
            x.x_fire_async id
          end)
    | Signal.Delay (d, inner) ->
      source_member ~id ~bounded:false;
      let sl = slot id and si = slot (Signal.id inner) in
      add_op ~node:(Signal.id inner) ~rank:1 (fun x r ->
          let ar = x.x_arena in
          if ar.ar_stamps.(si) = r.epoch then
            x.x_delay ~node:id ~slot:sl ~seconds:d ar.ar_values.(si))
    | Signal.Lift1 (f, a) ->
      let sl = slot id and sa = slot (Signal.id a) in
      member ~id (fun x r ->
          let ar = x.x_arena in
          if ar.ar_stamps.(sa) = r.epoch then begin
            x.x_stats.Stats.applications <- x.x_stats.Stats.applications + 1;
            match
              x.x_guards.(sl).guard
                ~prev:(Obj.obj ar.ar_values.(sl) : x)
                ~reset:ignore ~epoch:r.epoch
                (fun () -> Event.Change (f (Obj.obj ar.ar_values.(sa))))
            with
            | Event.Change v ->
              ar.ar_values.(sl) <- Obj.repr v;
              ar.ar_stamps.(sl) <- r.epoch;
              true
            | Event.No_change _ -> false
          end
          else false)
    | Signal.Lift2 (f, a, b) ->
      let sl = slot id
      and sa = slot (Signal.id a)
      and sb = slot (Signal.id b) in
      member ~id (fun x r ->
          let ar = x.x_arena in
          if ar.ar_stamps.(sa) = r.epoch || ar.ar_stamps.(sb) = r.epoch then begin
            x.x_stats.Stats.applications <- x.x_stats.Stats.applications + 1;
            match
              x.x_guards.(sl).guard
                ~prev:(Obj.obj ar.ar_values.(sl) : x)
                ~reset:ignore ~epoch:r.epoch
                (fun () ->
                  Event.Change
                    (f (Obj.obj ar.ar_values.(sa)) (Obj.obj ar.ar_values.(sb))))
            with
            | Event.Change v ->
              ar.ar_values.(sl) <- Obj.repr v;
              ar.ar_stamps.(sl) <- r.epoch;
              true
            | Event.No_change _ -> false
          end
          else false)
    | Signal.Lift3 (f, a, b, d) ->
      let sl = slot id
      and sa = slot (Signal.id a)
      and sb = slot (Signal.id b)
      and sd = slot (Signal.id d) in
      member ~id (fun x r ->
          let ar = x.x_arena in
          if
            ar.ar_stamps.(sa) = r.epoch
            || ar.ar_stamps.(sb) = r.epoch
            || ar.ar_stamps.(sd) = r.epoch
          then begin
            x.x_stats.Stats.applications <- x.x_stats.Stats.applications + 1;
            match
              x.x_guards.(sl).guard
                ~prev:(Obj.obj ar.ar_values.(sl) : x)
                ~reset:ignore ~epoch:r.epoch
                (fun () ->
                  Event.Change
                    (f
                       (Obj.obj ar.ar_values.(sa))
                       (Obj.obj ar.ar_values.(sb))
                       (Obj.obj ar.ar_values.(sd))))
            with
            | Event.Change v ->
              ar.ar_values.(sl) <- Obj.repr v;
              ar.ar_stamps.(sl) <- r.epoch;
              true
            | Event.No_change _ -> false
          end
          else false)
    | Signal.Lift4 (f, a, b, d, e) ->
      let sl = slot id
      and sa = slot (Signal.id a)
      and sb = slot (Signal.id b)
      and sd = slot (Signal.id d)
      and se = slot (Signal.id e) in
      member ~id (fun x r ->
          let ar = x.x_arena in
          if
            ar.ar_stamps.(sa) = r.epoch
            || ar.ar_stamps.(sb) = r.epoch
            || ar.ar_stamps.(sd) = r.epoch
            || ar.ar_stamps.(se) = r.epoch
          then begin
            x.x_stats.Stats.applications <- x.x_stats.Stats.applications + 1;
            match
              x.x_guards.(sl).guard
                ~prev:(Obj.obj ar.ar_values.(sl) : x)
                ~reset:ignore ~epoch:r.epoch
                (fun () ->
                  Event.Change
                    (f
                       (Obj.obj ar.ar_values.(sa))
                       (Obj.obj ar.ar_values.(sb))
                       (Obj.obj ar.ar_values.(sd))
                       (Obj.obj ar.ar_values.(se))))
            with
            | Event.Change v ->
              ar.ar_values.(sl) <- Obj.repr v;
              ar.ar_stamps.(sl) <- r.epoch;
              true
            | Event.No_change _ -> false
          end
          else false)
    | Signal.Lift_list (f, ds) ->
      let sl = slot id in
      let sds = List.map (fun d -> slot (Signal.id d)) ds in
      member ~id (fun x r ->
          let ar = x.x_arena in
          if List.exists (fun sd -> ar.ar_stamps.(sd) = r.epoch) sds then begin
            x.x_stats.Stats.applications <- x.x_stats.Stats.applications + 1;
            match
              x.x_guards.(sl).guard
                ~prev:(Obj.obj ar.ar_values.(sl) : x)
                ~reset:ignore ~epoch:r.epoch
                (fun () ->
                  Event.Change
                    (f (List.map (fun sd -> Obj.obj ar.ar_values.(sd)) sds)))
            with
            | Event.Change v ->
              ar.ar_values.(sl) <- Obj.repr v;
              ar.ar_stamps.(sl) <- r.epoch;
              true
            | Event.No_change _ -> false
          end
          else false)
    | Signal.Foldp (f, src) ->
      let sl = slot id and ss = slot (Signal.id src) in
      let init = Signal.default s in
      (* A [Restart] re-seeds the accumulator slot at the top of the next
         round that reaches the node — the same observable schedule as the
         pipelined deferral: downstream reads keep the last-good value
         until the restarted fold runs again. The flag is a plain bool
         state slot, so clones inherit a pending restart faithfully. *)
      let k = state_slot ~node:id ~init:(fun () -> Obj.repr false) ~copy:true in
      member ~id (fun x r ->
          let ar = x.x_arena in
          if (Obj.obj ar.ar_state.(k) : bool) then begin
            ar.ar_state.(k) <- Obj.repr false;
            ar.ar_values.(sl) <- Obj.repr init
          end;
          if ar.ar_stamps.(ss) = r.epoch then begin
            x.x_stats.Stats.fold_steps <- x.x_stats.Stats.fold_steps + 1;
            match
              x.x_guards.(sl).guard
                ~prev:(Obj.obj ar.ar_values.(sl) : x)
                ~reset:(fun () -> ar.ar_state.(k) <- Obj.repr true)
                ~epoch:r.epoch
                (fun () ->
                  Event.Change
                    (f (Obj.obj ar.ar_values.(ss)) (Obj.obj ar.ar_values.(sl))))
            with
            | Event.Change v ->
              ar.ar_values.(sl) <- Obj.repr v;
              ar.ar_stamps.(sl) <- r.epoch;
              true
            | Event.No_change _ -> false
          end
          else false)
    | Signal.Merge (a, b) ->
      let sl = slot id
      and sa = slot (Signal.id a)
      and sb = slot (Signal.id b) in
      member ~id (fun x r ->
          let ar = x.x_arena in
          if ar.ar_stamps.(sa) = r.epoch then begin
            ar.ar_values.(sl) <- ar.ar_values.(sa);
            ar.ar_stamps.(sl) <- r.epoch;
            true
          end
          else if ar.ar_stamps.(sb) = r.epoch then begin
            ar.ar_values.(sl) <- ar.ar_values.(sb);
            ar.ar_stamps.(sl) <- r.epoch;
            true
          end
          else false)
    | Signal.Drop_repeats (eq, src) ->
      let sl = slot id and ss = slot (Signal.id src) in
      member ~id (fun x r ->
          let ar = x.x_arena in
          if ar.ar_stamps.(ss) = r.epoch then begin
            (* The user-supplied equality can raise too. *)
            match
              x.x_guards.(sl).guard
                ~prev:(Obj.obj ar.ar_values.(sl) : x)
                ~reset:ignore ~epoch:r.epoch
                (fun () ->
                  let prev : x = Obj.obj ar.ar_values.(sl) in
                  if eq (Obj.obj ar.ar_values.(ss)) prev then
                    Event.No_change prev
                  else Event.Change (Obj.obj ar.ar_values.(ss)))
            with
            | Event.Change v ->
              ar.ar_values.(sl) <- Obj.repr v;
              ar.ar_stamps.(sl) <- r.epoch;
              true
            | Event.No_change _ -> false
          end
          else false)
    | Signal.Sample_on (ticks, src) ->
      let sl = slot id
      and st = slot (Signal.id ticks)
      and ss = slot (Signal.id src) in
      member ~id (fun x r ->
          let ar = x.x_arena in
          if ar.ar_stamps.(st) = r.epoch then begin
            ar.ar_values.(sl) <- ar.ar_values.(ss);
            ar.ar_stamps.(sl) <- r.epoch;
            true
          end
          else false)
    | Signal.Keep_when (gate, src, _base) ->
      let sl = slot id
      and sg = slot (Signal.id gate)
      and ss = slot (Signal.id src) in
      (* Tracks the gate across the rounds that reach this node, exactly
         like the pipelined loop's [gate_prev] parameter: emit while open,
         and on the rising edge to resynchronize with the source. Plain
         bool state, copied on clone. *)
      let k =
        state_slot ~node:id
          ~init:(fun () -> Obj.repr (Signal.default gate))
          ~copy:true
      in
      member ~id (fun x r ->
          let ar = x.x_arena in
          let gate_now : bool = Obj.obj ar.ar_values.(sg) in
          let rising = gate_now && not (Obj.obj ar.ar_state.(k) : bool) in
          let changed =
            if gate_now && (ar.ar_stamps.(ss) = r.epoch || rising) then begin
              ar.ar_values.(sl) <- ar.ar_values.(ss);
              ar.ar_stamps.(sl) <- r.epoch;
              true
            end
            else false
          in
          ar.ar_state.(k) <- Obj.repr gate_now;
          changed)
    | Signal.Composite (comp, dep) ->
      let sl = slot id and sd = slot (Signal.id dep) in
      (* Fresh step per arena, as in the pipelined build: fused stateful
         stages never leak state across instances. A [Restart] swaps in a
         fresh step, re-seeding every fused stage. The closure hides its
         state, so [clone_arena] re-creates it rather than copying — the
         one approximation in an otherwise exact clone (see DESIGN.md). *)
      let k =
        state_slot ~node:id
          ~init:(fun () -> Obj.repr (comp.Signal.comp_make ()))
          ~copy:false
      in
      member ~id (fun x r ->
          let ar = x.x_arena in
          if ar.ar_stamps.(sd) = r.epoch then begin
            x.x_stats.Stats.applications <- x.x_stats.Stats.applications + 1;
            match
              x.x_guards.(sl).guard
                ~prev:(Obj.obj ar.ar_values.(sl) : x)
                ~reset:(fun () ->
                  ar.ar_state.(k) <- Obj.repr (comp.Signal.comp_make ()))
                ~epoch:r.epoch
                (fun () ->
                  let step : _ -> x option = Obj.obj ar.ar_state.(k) in
                  match step (Obj.obj ar.ar_values.(sd)) with
                  | Some w -> Event.Change w
                  | None -> Event.No_change (Obj.obj ar.ar_values.(sl)))
            with
            | Event.Change v ->
              ar.ar_values.(sl) <- Obj.repr v;
              ar.ar_stamps.(sl) <- r.epoch;
              true
            | Event.No_change _ -> false
          end
          else false)
  in
  List.iter (fun (Signal.Pack s) -> build_node s) order;
  (* The display send: one real emission per round that reaches the root,
     ordered right after the root's member op. [x_root_stamp] is [Some]
     exactly when that op ran, and carries the (possibly mutation-adjusted)
     wire epoch; [None] after a dropped emission skips the send, as the
     pipelined emit would have. *)
  let root_slot = slot root_id in
  add_op ~node:root_id ~rank:2 (fun x r ->
      match x.x_root_stamp with
      | None -> ()
      | Some epoch ->
        x.x_root_stamp <- None;
        let ar = x.x_arena in
        x.x_display ~epoch
          ~changed:(ar.ar_stamps.(root_slot) = r.epoch)
          ar.ar_values.(root_slot));
  let ops =
    Array.map
      (fun pending ->
        Array.of_list
          (List.map snd
             (List.sort (fun ((k1 : int * int), _) (k2, _) -> compare k1 k2)
                pending)))
      acc
  in
  let region_sources =
    Array.of_list
      (List.map (fun rg -> Reach.union_reaching reach rg.rg_member_ids) regions)
  in
  (* ---- region dependency DAG ----
     Edges that order region execution within one event wave. Seam edges:
     an async/delay cut whose inner node and boundary node landed in
     different regions makes the producer region a predecessor of the
     consumer's (the value crosses between them). Shared-source edges: if
     one source's cone ever spanned several regions, those regions would
     have to run in index (= topological) order, not concurrently — under
     the current partition a source's cone is synchronous and therefore
     region-local, so this adds nothing, but the constraint is encoded
     rather than assumed (see DESIGN.md). Cuts can point both ways between
     two regions (async in both directions), so the quotient graph may be
     cyclic; a Tarjan SCC condensation folds each cycle into one "group",
     and groups — numbered by smallest member region, which keeps the
     numbering topological-friendly and deterministic — form the DAG the
     pool executes. *)
  let nregions = !count in
  let edge_set = Hashtbl.create 16 in
  let raw_edges = ref [] in
  let add_edge a b =
    if a <> b && not (Hashtbl.mem edge_set (a, b)) then begin
      Hashtbl.replace edge_set (a, b) ();
      raw_edges := (a, b) :: !raw_edges
    end
  in
  List.iter
    (fun (inner, boundary) ->
      add_edge (Hashtbl.find region_of inner) (Hashtbl.find region_of boundary))
    (List.rev !cuts);
  List.iter
    (fun src ->
      let woken = ref [] in
      for i = nregions - 1 downto 0 do
        if Reach.set_mem src region_sources.(i) then woken := i :: !woken
      done;
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          add_edge a b;
          pairs rest
        | _ -> []
      in
      ignore (pairs !woken))
    (Reach.sources reach);
  let region_deps = List.rev !raw_edges in
  let succs = Array.make (max nregions 1) [] in
  List.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) region_deps;
  (* Iterative Tarjan over the region quotient graph. *)
  let sccs = ref [] in
  let index = Array.make (max nregions 1) (-1) in
  let lowlink = Array.make (max nregions 1) 0 in
  let on_stack = Array.make (max nregions 1) false in
  let stack = ref [] in
  let next_index = ref 0 in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      succs.(v);
    if lowlink.(v) = index.(v) then begin
      let rec popped acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else popped (w :: acc)
        | [] -> acc
      in
      sccs := popped [] :: !sccs
    end
  in
  for v = 0 to nregions - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  let sccs =
    List.map (fun c -> List.sort compare c) !sccs
    |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
  in
  let group_regions = Array.of_list sccs in
  let group_of = Array.make (max nregions 1) 0 in
  Array.iteri
    (fun g members -> List.iter (fun r -> group_of.(r) <- g) members)
    group_regions;
  let gedge_set = Hashtbl.create 16 in
  let group_deps =
    List.filter
      (fun (a, b) ->
        let ga = group_of.(a) and gb = group_of.(b) in
        ga <> gb
        &&
        if Hashtbl.mem gedge_set (ga, gb) then false
        else begin
          Hashtbl.replace gedge_set (ga, gb) ();
          true
        end)
      region_deps
    |> List.map (fun (a, b) -> (group_of.(a), group_of.(b)))
  in
  let group_preds = Array.make (Array.length group_regions) [] in
  List.iter
    (fun (ga, gb) -> group_preds.(gb) <- ga :: group_preds.(gb))
    group_deps;
  Array.iteri
    (fun g preds -> group_preds.(g) <- List.rev preds)
    group_preds;
  let name_of = Hashtbl.create 64 in
  List.iter
    (fun (Signal.Pack s) -> Hashtbl.replace name_of (Signal.id s) (Signal.name s))
    order;
  let sources =
    List.filter_map
      (fun sid -> Option.map (fun nm -> (sid, nm)) (Hashtbl.find_opt name_of sid))
      (Reach.sources reach)
  in
  let state_init = Array.of_list (List.rev !state_inits) in
  let state_copy = Array.of_list (List.rev !state_copies) in
  let state_node = Array.of_list (List.rev !state_nodes) in
  {
    p_regions = regions;
    p_region_of = region_of;
    p_cuts = List.rev !cuts;
    p_reach = reach;
    p_root_id = root_id;
    p_root_slot = root_slot;
    p_nodes = n;
    p_slot_of = slot_of;
    p_slot_ids = slot_ids;
    p_slot_names = slot_names;
    p_keys = keys;
    p_id_stride = id_stride;
    p_defaults = defaults;
    p_n_state = !n_state;
    p_state_init = state_init;
    p_state_copy = state_copy;
    p_state_node = state_node;
    p_ops = ops;
    p_region_sources = region_sources;
    p_region_deps = region_deps;
    p_group_of = group_of;
    p_group_regions = group_regions;
    p_group_deps = group_deps;
    p_group_preds = group_preds;
    p_sources = sources;
    p_queue_slots = List.rev !queue_slots;
    p_inputs = List.rev !inputs;
  }

let regions pl = pl.p_regions
let region_of pl id = Hashtbl.find_opt pl.p_region_of id
let cuts pl = pl.p_cuts
let reach pl = pl.p_reach
let root_id pl = pl.p_root_id
let node_count pl = pl.p_nodes
let id_stride pl = pl.p_id_stride
let sources pl = pl.p_sources
let inputs pl = pl.p_inputs
let slot_of pl id = Hashtbl.find_opt pl.p_slot_of id
let queue_slots pl = pl.p_queue_slots
let region_sources pl i = pl.p_region_sources.(i)
let slot_ids pl = pl.p_slot_ids
let slot_names pl = pl.p_slot_names
let slot_keys pl = pl.p_keys
let root_slot pl = pl.p_root_slot
let defaults pl = pl.p_defaults
let state_count pl = pl.p_n_state
let state_node pl k = pl.p_state_node.(k)
let state_copyable pl k = pl.p_state_copy.(k)
let state_initial pl k = pl.p_state_init.(k) ()
let region_deps pl = pl.p_region_deps
let group_count pl = Array.length pl.p_group_regions
let group_of pl i = pl.p_group_of.(i)
let group_regions pl g = pl.p_group_regions.(g)
let group_deps pl = pl.p_group_deps
let group_preds pl g = pl.p_group_preds.(g)

let pp_plan ppf pl =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun rg ->
      Format.fprintf ppf "region %d (rep %d %s): %s@," rg.rg_index rg.rg_rep
        rg.rg_name
        (String.concat " "
           (List.map
              (fun (Signal.Pack s) ->
                Printf.sprintf "%d:%s" (Signal.id s) (Signal.name s))
              rg.rg_members)))
    pl.p_regions;
  List.iter
    (fun (inner, src) ->
      Format.fprintf ppf "cut %d -> %d (async boundary)@," inner src)
    pl.p_cuts;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Plan cache *)

(* Keyed on the root node id: graphs are immutable after construction and
   [Fuse.fuse_cached] returns a stable fused root, so the id identifies the
   graph shape. Bounded crudely — a full reset at [max_cached_plans] — so
   test suites churning through thousands of generated graphs cannot grow
   the table (or pin their graphs against the GC) without bound.

   The table is shared by every domain (that sharing is the whole point of
   the plan/arena split), so lookups and inserts are serialised by
   [cache_lock] — a bare Hashtbl would be corrupted the moment two domains
   compile concurrently, e.g. two pool workers both opening dispatchers.
   The (pure, allocation-heavy) [plan] build itself runs *outside* the
   lock; a race that builds the same plan twice is resolved by keeping the
   first inserted plan, so every caller agrees on one canonical plan per
   root and per-plan state (arenas, slot indices) stays interchangeable. *)
let plan_cache : (int, plan) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()
let cache_hits = ref 0
let cache_misses = ref 0
let max_cached_plans = 256

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;
}

let plan_cache_stats () =
  Mutex.lock cache_lock;
  let s =
    {
      hits = !cache_hits;
      misses = !cache_misses;
      entries = Hashtbl.length plan_cache;
    }
  in
  Mutex.unlock cache_lock;
  s

let clear_plan_cache () =
  Mutex.lock cache_lock;
  Hashtbl.reset plan_cache;
  Mutex.unlock cache_lock;
  (* The fusion memos must fall with the plans: [fuse_cached] keyed the
     cache on fused roots, and a memo that survives the reset keeps
     resolving to a root whose plan is gone — every later [plan_of] on that
     graph misses (or, across a live upgrade, silently serves the
     pre-upgrade fused graph). Taken after [cache_lock] is released; the
     two locks are never held together, so no ordering cycle. *)
  Fuse.clear_memos ()

let plan_of root =
  let key = Signal.id root in
  Mutex.lock cache_lock;
  match Hashtbl.find_opt plan_cache key with
  | Some pl ->
    incr cache_hits;
    Mutex.unlock cache_lock;
    pl
  | None ->
    incr cache_misses;
    Mutex.unlock cache_lock;
    let pl = plan root in
    Mutex.lock cache_lock;
    let pl =
      match Hashtbl.find_opt plan_cache key with
      | Some winner -> winner (* another domain built it first: keep theirs *)
      | None ->
        if Hashtbl.length plan_cache >= max_cached_plans then
          Hashtbl.reset plan_cache;
        Hashtbl.replace plan_cache key pl;
        pl
    in
    Mutex.unlock cache_lock;
    pl

(* ------------------------------------------------------------------ *)
(* Arenas *)

let new_arena pl =
  {
    ar_values = Array.copy pl.p_defaults;
    ar_stamps = Array.make pl.p_nodes 0;
    ar_state = obj_array pl.p_n_state (fun i -> pl.p_state_init.(i) ());
  }

let clone_arena pl ar =
  {
    ar_values = Array.copy ar.ar_values;
    ar_stamps = Array.copy ar.ar_stamps;
    ar_state =
      obj_array pl.p_n_state (fun i ->
          if pl.p_state_copy.(i) then ar.ar_state.(i)
          else pl.p_state_init.(i) ());
  }

(* Runs all of one region's ops for one round, in compiled order. *)
let run_region pl x region_index r =
  let ops = pl.p_ops.(region_index) in
  for i = 0 to Array.length ops - 1 do
    (Array.unsafe_get ops i) x r
  done

(* ------------------------------------------------------------------ *)
(* DOT rendering with region clusters (felmc graph --compiled) *)

let to_dot ?(label = "signal graph (compiled regions)") root =
  let pl = plan_of root in
  let nodes = Signal.reachable root in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph signals {\n";
  pr "  label=\"%s\";\n" (Signal.dot_escape label);
  pr "  rankdir=TB;\n";
  pr "  dispatcher [label=\"Global Event\\nDispatcher\", shape=box, style=dashed];\n";
  List.iter
    (fun rg ->
      let n = List.length rg.rg_members in
      pr "  subgraph cluster_region_%d {\n" rg.rg_index;
      pr "    label=\"region %d: %s (%d node%s, 1 step)\";\n" rg.rg_index
        (Signal.dot_escape rg.rg_name) n (if n = 1 then "" else "s");
      pr "    style=dashed;\n";
      List.iter
        (fun (Signal.Pack s) ->
          match Signal.kind s with
          | Signal.Composite (c, _) ->
            pr "    n%d [label=\"%s\\n(%d nodes fused)\", shape=box3d];\n"
              (Signal.id s)
              (Signal.dot_escape (Signal.name s))
              c.Signal.comp_size
          | _ ->
            let shape = if Signal.is_source s then "ellipse" else "box" in
            pr "    n%d [label=\"%s\", shape=%s];\n" (Signal.id s)
              (Signal.dot_escape (Signal.name s))
              shape)
        rg.rg_members;
      pr "  }\n")
    pl.p_regions;
  List.iter
    (fun (Signal.Pack s) ->
      if Signal.is_source s || Signal.deps s = [] then
        pr "  dispatcher -> n%d [style=dashed];\n" (Signal.id s);
      match Signal.kind s with
      | Signal.Async inner | Signal.Delay (_, inner) ->
        pr "  n%d -> dispatcher [style=dotted, label=\"new event\"];\n"
          (Signal.id inner)
      | _ ->
        List.iter
          (fun (Signal.Pack d) -> pr "  n%d -> n%d;\n" (Signal.id d) (Signal.id s))
          (Signal.deps s))
    nodes;
  pr "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Runtime instantiation (threads + mailboxes) *)

type config = {
  cfg_gen : int;  (* runtime generation stamping the input insts *)
  cfg_flood : bool;  (* flood dispatch: every node active every round *)
  cfg_stats : Stats.t;
  cfg_tracer : Trace.t option;
  cfg_capacity : int option;  (* region wake / input value mailbox bound *)
  cfg_account :
    node:int -> epoch:int -> changed:bool -> real:bool -> int option;
      (* Per-node emission accounting (the runtime's [emit] minus the
         channel send): mutation hooks, observer, message/elided counters.
         Returns the epoch actually stamped, [None] if the emission was
         swallowed by a mutation. [real] marks the one emission per round
         that still leaves the region as a channel message (the root's). *)
  cfg_guard : int -> guarded;  (* per-node supervisor *)
  cfg_fire_async : int -> unit;  (* async/delay: register a global event *)
  cfg_notify : int -> unit;  (* input push: register a global event *)
}

type runtime_region = {
  rr_region : region;
  rr_wake : round Mailbox.t;
  rr_sources : Reach.set;
      (* sources reaching any member: the dispatcher's wake test *)
}

type 'a instance = {
  i_plan : plan;
  i_arena : arena;
  i_regions : runtime_region list;
  i_out : 'a Event.stamped Multicast.t;  (* the root's display channel *)
  i_sources : (int * string) list;  (* runtime sources, topological order *)
}

let instantiate : type r. config -> r Signal.t -> r instance =
 fun cfg root ->
  let pl = plan_of root in
  let arena = new_arena pl in
  let stats = cfg.cfg_stats in
  let out : r Event.stamped Multicast.t =
    Multicast.create
      ~name:(Printf.sprintf "out:%d:%s" pl.p_root_id (Signal.name root))
      ()
  in
  (* One pending-value mailbox per source slot; the op templates reach them
     through [x_pop]/[x_push] so the same plan drives mailbox-backed
     runtimes and queue-backed sessions alike. *)
  let value_mbs : Obj.t Mailbox.t option array = Array.make (max pl.p_nodes 1) None in
  List.iter
    (fun (id, sl, bounded) ->
      value_mbs.(sl) <-
        Some
          (Mailbox.create
             ?capacity:(if bounded then cfg.cfg_capacity else None)
             ~name:(Printf.sprintf "value:%d:%s" id pl.p_slot_names.(sl))
             ()))
    pl.p_queue_slots;
  let value_mb sl =
    match value_mbs.(sl) with
    | Some mb -> mb
    | None -> invalid_arg "Compile.instantiate: not a source slot"
  in
  let x =
    {
      x_arena = arena;
      x_flood = cfg.cfg_flood;
      x_stats = stats;
      x_guards = Array.map (fun id -> cfg.cfg_guard id) pl.p_slot_ids;
      x_account = cfg.cfg_account;
      x_root_stamp = None;
      x_pop = (fun sl -> Mailbox.recv (value_mb sl));
      x_push = (fun sl v -> Mailbox.send (value_mb sl) v);
      x_fire_async = cfg.cfg_fire_async;
      x_delay =
        (fun ~node ~slot ~seconds v ->
          Cml.spawn (fun () ->
              Cml.sleep seconds;
              Mailbox.send (value_mb slot) v;
              cfg.cfg_fire_async node));
      x_display =
        (fun ~epoch ~changed v ->
          let event =
            if changed then Event.Change (Obj.obj v : r)
            else Event.No_change (Obj.obj v : r)
          in
          Multicast.send out { Event.epoch; event });
    }
  in
  (* Wire the input pushes. Value first, notification second, as in the
     pipelined push: when the dispatcher wakes this source's cone, the
     region finds the value waiting. The inst's out channel is never read
     in compiled mode (display traffic flows through the display op); it
     exists so [Runtime.inject] finds the push through the usual
     generation-stamped slot. [Obj.repr] happens here, inside the typed
     scope of the input's [Pack]. *)
  List.iter
    (fun (Signal.Pack s) ->
      let id = Signal.id s in
      let sl = Hashtbl.find pl.p_slot_of id in
      let push v =
        Mailbox.send (value_mb sl) (Obj.repr v);
        cfg.cfg_notify id
      in
      Signal.set_inst s
        {
          Signal.gen = cfg.cfg_gen;
          out =
            Multicast.create ~name:(Printf.sprintf "in:%d:%s" id (Signal.name s)) ();
          push = Some push;
        })
    pl.p_inputs;
  (* Spawn each region's step thread: the entire pipelined cone of node
     wakeups, channel sends and context switches collapses to one wake and
     one array sweep over the shared op templates. *)
  let rregions =
    List.map
      (fun rg ->
        let wake =
          Mailbox.create ?capacity:cfg.cfg_capacity
            ~name:(Printf.sprintf "wake:r%d:%s" rg.rg_rep rg.rg_name)
            ()
        in
        let n = List.length rg.rg_member_ids in
        (match cfg.cfg_tracer with
        | None -> ()
        | Some tr ->
          (* Only the region is registered — absorbed members would
             otherwise show stale zero rows in the trace summary. *)
          Trace.register_node tr ~id:rg.rg_rep
            ~name:(Printf.sprintf "region:%s(%d)" rg.rg_name n));
        Cml.spawn (fun () ->
            let rec loop () =
              let r = Mailbox.recv wake in
              (match cfg.cfg_tracer with
              | None -> ()
              | Some tr -> Trace.node_start tr ~node:rg.rg_rep ~epoch:r.epoch);
              stats.Stats.region_steps <- stats.Stats.region_steps + 1;
              run_region pl x rg.rg_index r;
              (match cfg.cfg_tracer with
              | None -> ()
              | Some tr -> Trace.node_end tr ~node:rg.rg_rep ~epoch:r.epoch);
              loop ()
            in
            loop ());
        {
          rr_region = rg;
          rr_wake = wake;
          rr_sources = pl.p_region_sources.(rg.rg_index);
        })
      pl.p_regions
  in
  {
    i_plan = pl;
    i_arena = arena;
    i_regions = rregions;
    i_out = out;
    i_sources = pl.p_sources;
  }
