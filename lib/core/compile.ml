(* The compiled backend: synchronous regions as straight-line step functions.

   The paper's design isolates all asynchrony at explicit [async]/[delay]
   boundaries, which makes everything between two boundaries a deterministic
   synchronous region: within one global event, the region's nodes fire in
   dependency order with no interleaving freedom that could change the
   result. The pipelined backend (Fig. 10) nevertheless interprets such a
   region as one cooperative thread per node and one multicast channel per
   edge, paying a scheduler switch and a channel hop for every node of every
   event. Here we exploit the determinism instead:

   - [plan] partitions the graph into maximal synchronous regions by
     union-find over dependency edges, *cutting* the edge into every
     [async]/[delay] node (their inner subgraph reaches them only through
     the global dispatcher, so that edge carries no synchronous round).

   - [instantiate] compiles each region to a single array of ops executed in
     topological order by one thread: node state lives in flat mutable arena
     cells ({!Signal.cell}) instead of threads ([foldp] accumulators become
     slots), [No_change] becomes a per-node dirty-bit test
     ([cell_stamp = epoch]) instead of a message, and fan-out/merge become
     plain sequential reads instead of multicast sends. Only two kinds of
     real channel traffic survive: the dispatcher's region wakeups and the
     root's display messages.

   Topological order within a region is inherited from [Signal.reachable]
   (the same deterministic deps-first DFS the pipelined build uses), so a
   compiled round computes exactly what a fully-settled pipelined round
   would: a node's op runs strictly after all its dependency ops, reading
   their freshly-written cells. Async taps are ordered right after their
   inner node's op via a secondary sort key, never before it.

   The module deliberately does not depend on [Runtime]; the runtime passes
   its accounting, supervision, and event-registration hooks in a [config],
   so mutations (Check.Mutate) and supervision policies behave identically
   in both backends. *)

module Mailbox = Cml.Mailbox
module Multicast = Cml.Multicast

(* One dispatcher round. [Runtime.round] re-exports this type; it lives here
   so region wakeup mailboxes and node wakeup mailboxes are interchangeable
   from the dispatcher's point of view (including the Reorder_wakeup
   mutation's held-round machinery). *)
type round = {
  epoch : int;
  source : int;
}

(* ------------------------------------------------------------------ *)
(* Region partitioning *)

type region = {
  rg_index : int;  (* dense index, in topological order of first member *)
  rg_rep : int;
      (* representative node id: the topologically last member (the
         region's output); used as the region's id for tracing *)
  rg_name : string;  (* the representative's name *)
  rg_members : Signal.packed list;  (* in topological order *)
  rg_member_ids : int list;
}

type plan = {
  p_regions : region list;
  p_region_of : (int, int) Hashtbl.t;  (* node id -> region index *)
  p_cuts : (int * int) list;
      (* (inner node id, async/delay node id): dependency edges that carry
         no synchronous round and were cut by the partition *)
}

let plan root =
  let order = Signal.reachable root in
  (* Union-find over node ids; path-halving find, arbitrary union. *)
  let parent = Hashtbl.create 64 in
  List.iter
    (fun (Signal.Pack s) -> Hashtbl.replace parent (Signal.id s) (Signal.id s))
    order;
  let rec find i =
    let p = Hashtbl.find parent i in
    if p = i then i
    else begin
      let r = find p in
      Hashtbl.replace parent i r;
      r
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then Hashtbl.replace parent ri rj
  in
  let cuts = ref [] in
  List.iter
    (fun (Signal.Pack s) ->
      match Signal.kind s with
      | Signal.Async inner | Signal.Delay (_, inner) ->
        cuts := (Signal.id inner, Signal.id s) :: !cuts
      | _ ->
        List.iter
          (fun (Signal.Pack d) -> union (Signal.id d) (Signal.id s))
          (Signal.deps s))
    order;
  let index_of_class = Hashtbl.create 16 in
  let region_of = Hashtbl.create 64 in
  let buckets = Hashtbl.create 16 in  (* region index -> members, reversed *)
  let count = ref 0 in
  List.iter
    (fun (Signal.Pack s as p) ->
      let id = Signal.id s in
      let cls = find id in
      let idx =
        match Hashtbl.find_opt index_of_class cls with
        | Some i -> i
        | None ->
          let i = !count in
          incr count;
          Hashtbl.replace index_of_class cls i;
          i
      in
      Hashtbl.replace region_of id idx;
      let prev = try Hashtbl.find buckets idx with Not_found -> [] in
      Hashtbl.replace buckets idx (p :: prev))
    order;
  let regions =
    List.init !count (fun i ->
        let rev_members = Hashtbl.find buckets i in
        let (Signal.Pack rep) = List.hd rev_members in
        let members = List.rev rev_members in
        {
          rg_index = i;
          rg_rep = Signal.id rep;
          rg_name = Signal.name rep;
          rg_members = members;
          rg_member_ids = List.map (fun (Signal.Pack s) -> Signal.id s) members;
        })
  in
  { p_regions = regions; p_region_of = region_of; p_cuts = List.rev !cuts }

let regions pl = pl.p_regions
let region_of pl id = Hashtbl.find_opt pl.p_region_of id
let cuts pl = pl.p_cuts

let pp_plan ppf pl =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun rg ->
      Format.fprintf ppf "region %d (rep %d %s): %s@," rg.rg_index rg.rg_rep
        rg.rg_name
        (String.concat " "
           (List.map
              (fun (Signal.Pack s) ->
                Printf.sprintf "%d:%s" (Signal.id s) (Signal.name s))
              rg.rg_members)))
    pl.p_regions;
  List.iter
    (fun (inner, src) ->
      Format.fprintf ppf "cut %d -> %d (async boundary)@," inner src)
    pl.p_cuts;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* DOT rendering with region clusters (felmc graph --compiled) *)

let to_dot ?(label = "signal graph (compiled regions)") root =
  let pl = plan root in
  let nodes = Signal.reachable root in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph signals {\n";
  pr "  label=\"%s\";\n" (Signal.dot_escape label);
  pr "  rankdir=TB;\n";
  pr "  dispatcher [label=\"Global Event\\nDispatcher\", shape=box, style=dashed];\n";
  List.iter
    (fun rg ->
      let n = List.length rg.rg_members in
      pr "  subgraph cluster_region_%d {\n" rg.rg_index;
      pr "    label=\"region %d: %s (%d node%s, 1 step)\";\n" rg.rg_index
        (Signal.dot_escape rg.rg_name) n (if n = 1 then "" else "s");
      pr "    style=dashed;\n";
      List.iter
        (fun (Signal.Pack s) ->
          match Signal.kind s with
          | Signal.Composite (c, _) ->
            pr "    n%d [label=\"%s\\n(%d nodes fused)\", shape=box3d];\n"
              (Signal.id s)
              (Signal.dot_escape (Signal.name s))
              c.Signal.comp_size
          | _ ->
            let shape = if Signal.is_source s then "ellipse" else "box" in
            pr "    n%d [label=\"%s\", shape=%s];\n" (Signal.id s)
              (Signal.dot_escape (Signal.name s))
              shape)
        rg.rg_members;
      pr "  }\n")
    pl.p_regions;
  List.iter
    (fun (Signal.Pack s) ->
      if Signal.is_source s || Signal.deps s = [] then
        pr "  dispatcher -> n%d [style=dashed];\n" (Signal.id s);
      match Signal.kind s with
      | Signal.Async inner | Signal.Delay (_, inner) ->
        pr "  n%d -> dispatcher [style=dotted, label=\"new event\"];\n"
          (Signal.id inner)
      | _ ->
        List.iter
          (fun (Signal.Pack d) -> pr "  n%d -> n%d;\n" (Signal.id d) (Signal.id s))
          (Signal.deps s))
    nodes;
  pr "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Instantiation *)

(* A node supervisor usable at the node's value type from inside the
   region's generic step code; the polymorphic field lets one record carry
   a per-node Restart budget while being applied at whatever type the
   node's cells have. *)
type guarded = {
  guard :
    'a.
    prev:'a -> reset:(unit -> unit) -> epoch:int -> (unit -> 'a Event.t) ->
    'a Event.t;
}

type config = {
  cfg_gen : int;  (* runtime generation stamping the arena cells *)
  cfg_flood : bool;  (* flood dispatch: every node active every round *)
  cfg_reach : Reach.t;
  cfg_stats : Stats.t;
  cfg_tracer : Trace.t option;
  cfg_capacity : int option;  (* region wake / input value mailbox bound *)
  cfg_account :
    node:int -> epoch:int -> changed:bool -> real:bool -> int option;
      (* Per-node emission accounting (the runtime's [emit] minus the
         channel send): mutation hooks, observer, message/elided counters.
         Returns the epoch actually stamped, [None] if the emission was
         swallowed by a mutation. [real] marks the one emission per round
         that still leaves the region as a channel message (the root's). *)
  cfg_guard : int -> guarded;  (* per-node supervisor *)
  cfg_fire_async : int -> unit;  (* async/delay: register a global event *)
  cfg_notify : int -> unit;  (* input push: register a global event *)
}

type runtime_region = {
  rr_region : region;
  rr_wake : round Mailbox.t;
  rr_sources : Reach.set;
      (* sources reaching any member: the dispatcher's wake test *)
}

type 'a instance = {
  i_plan : plan;
  i_regions : runtime_region list;
  i_out : 'a Event.stamped Multicast.t;  (* the root's display channel *)
  i_sources : (int * string) list;  (* runtime sources, topological order *)
}

let instantiate : type r. config -> r Signal.t -> r instance =
 fun cfg root ->
  let pl = plan root in
  let gen = cfg.cfg_gen in
  let stats = cfg.cfg_stats in
  let reach = cfg.cfg_reach in
  let root_id = Signal.id root in
  let order = Signal.reachable root in
  (* Pass 1: one arena cell per node, seeded with the signal default. Cells
     must all exist before ops are built because an async tap in one region
     reads the inner node's cell of another. *)
  List.iter
    (fun (Signal.Pack s) ->
      Signal.set_cell s ~gen
        { Signal.cell_value = Signal.default s; cell_stamp = 0 })
    order;
  let cell : type x. x Signal.t -> x Signal.cell =
   fun s ->
    match Signal.get_cell s ~gen with
    | Some c -> c
    | None -> invalid_arg "Compile.instantiate: node outside the planned graph"
  in
  let out : r Event.stamped Multicast.t =
    Multicast.create
      ~name:(Printf.sprintf "out:%d:%s" root_id (Signal.name root))
      ()
  in
  (* Deterministic op order: primary key is the node's global topological
     position, secondary key orders a node's extra ops (async tap, display
     send) right after its member op. *)
  let pos = Hashtbl.create 64 in
  List.iteri (fun i (Signal.Pack s) -> Hashtbl.replace pos (Signal.id s) i) order;
  let n_regions = List.length pl.p_regions in
  let acc : ((int * int) * (round -> unit)) list array = Array.make n_regions [] in
  let add_op ~node ~rank op =
    let idx = Hashtbl.find pl.p_region_of node in
    acc.(idx) <- ((Hashtbl.find pos node, rank), op) :: acc.(idx)
  in
  let active_of id =
    if cfg.cfg_flood then fun (_ : round) -> true
    else begin
      let rs = Reach.reaching reach id in
      fun (r : round) -> Reach.set_mem r.source rs
    end
  in
  (* Bridges the root's account result (possibly mutation-adjusted epoch,
     or a dropped emission) from its member op to the display-send op that
     runs right after it in the same region step. *)
  let root_stamp = ref None in
  let finish ~id (r : round) ~changed =
    let stamped =
      cfg.cfg_account ~node:id ~epoch:r.epoch ~changed ~real:(id = root_id)
    in
    if id = root_id then root_stamp := stamped
  in
  (* A source member: woken rounds carrying its own source id consume one
     value from the value mailbox; all other active rounds are quiescent.
     Async/delay value mailboxes stay unbounded: their tap runs on a region
     thread that may also host the async source itself, so blocking it on a
     full mailbox could deadlock the region (the pipelined forwarder thread
     can block there safely; see DESIGN.md). *)
  let source_op : type x. x Signal.t -> bounded:bool -> x Mailbox.t =
   fun s ~bounded ->
    let id = Signal.id s in
    let c = cell s in
    let value_mb =
      Mailbox.create
        ?capacity:(if bounded then cfg.cfg_capacity else None)
        ~name:(Printf.sprintf "value:%d:%s" id (Signal.name s))
        ()
    in
    let active = active_of id in
    add_op ~node:id ~rank:0 (fun r ->
        if active r then begin
          let changed =
            if r.source = id then begin
              c.Signal.cell_value <- Mailbox.recv value_mb;
              c.Signal.cell_stamp <- r.epoch;
              true
            end
            else false
          in
          finish ~id r ~changed
        end);
    value_mb
  in
  (* A computing member: runs when the round reaches it; recomputes when
     any dependency cell is dirty this epoch. The emitted body a pipelined
     consumer would cache as [e_last] is exactly [cell_value]. *)
  let build_node : type x. x Signal.t -> unit =
   fun s ->
    let id = Signal.id s in
    match Signal.kind s with
    | Signal.Constant -> ignore (source_op s ~bounded:true)
    | Signal.Lift_list (_, []) ->
      (* No incoming edges: behaves as a never-firing constant. *)
      ignore (source_op s ~bounded:true)
    | Signal.Input ->
      let value_mb = source_op s ~bounded:true in
      (* Value first, notification second, as in the pipelined push: when
         the dispatcher wakes this source's cone, the region finds the
         value waiting. The inst's out channel is never read in compiled
         mode (display traffic flows through the region's display op); it
         exists so [Runtime.inject] finds the push through the usual
         generation-stamped slot. *)
      let push v =
        Mailbox.send value_mb v;
        cfg.cfg_notify id
      in
      Signal.set_inst s
        {
          Signal.gen;
          out =
            Multicast.create ~name:(Printf.sprintf "in:%d:%s" id (Signal.name s)) ();
          push = Some push;
        }
    | Signal.Async inner ->
      let value_mb = source_op s ~bounded:false in
      let ci = cell inner in
      (* The tap replaces the pipelined forwarder thread: ordered right
         after the inner node's op, it sees the freshly written cell and
         registers a new global event per change — the Fig. 8(c) boundary.
         [cell_stamp = epoch] iff the inner node changed this round. *)
      add_op ~node:(Signal.id inner) ~rank:1 (fun r ->
          if ci.Signal.cell_stamp = r.epoch then begin
            Mailbox.send value_mb ci.Signal.cell_value;
            cfg.cfg_fire_async id
          end)
    | Signal.Delay (d, inner) ->
      let value_mb = source_op s ~bounded:false in
      let ci = cell inner in
      add_op ~node:(Signal.id inner) ~rank:1 (fun r ->
          if ci.Signal.cell_stamp = r.epoch then begin
            let v = ci.Signal.cell_value in
            Cml.spawn (fun () ->
                Cml.sleep d;
                Mailbox.send value_mb v;
                cfg.cfg_fire_async id)
          end)
    | Signal.Lift1 (f, a) ->
      let c = cell s and ca = cell a in
      let active = active_of id in
      let g = cfg.cfg_guard id in
      add_op ~node:id ~rank:0 (fun r ->
          if active r then begin
            let changed =
              if ca.Signal.cell_stamp = r.epoch then begin
                stats.Stats.applications <- stats.Stats.applications + 1;
                match
                  g.guard ~prev:c.Signal.cell_value ~reset:ignore ~epoch:r.epoch
                    (fun () -> Event.Change (f ca.Signal.cell_value))
                with
                | Event.Change v ->
                  c.Signal.cell_value <- v;
                  c.Signal.cell_stamp <- r.epoch;
                  true
                | Event.No_change _ -> false
              end
              else false
            in
            finish ~id r ~changed
          end)
    | Signal.Lift2 (f, a, b) ->
      let c = cell s and ca = cell a and cb = cell b in
      let active = active_of id in
      let g = cfg.cfg_guard id in
      add_op ~node:id ~rank:0 (fun r ->
          if active r then begin
            let changed =
              if
                ca.Signal.cell_stamp = r.epoch || cb.Signal.cell_stamp = r.epoch
              then begin
                stats.Stats.applications <- stats.Stats.applications + 1;
                match
                  g.guard ~prev:c.Signal.cell_value ~reset:ignore ~epoch:r.epoch
                    (fun () ->
                      Event.Change (f ca.Signal.cell_value cb.Signal.cell_value))
                with
                | Event.Change v ->
                  c.Signal.cell_value <- v;
                  c.Signal.cell_stamp <- r.epoch;
                  true
                | Event.No_change _ -> false
              end
              else false
            in
            finish ~id r ~changed
          end)
    | Signal.Lift3 (f, a, b, d) ->
      let c = cell s and ca = cell a and cb = cell b and cd = cell d in
      let active = active_of id in
      let g = cfg.cfg_guard id in
      add_op ~node:id ~rank:0 (fun r ->
          if active r then begin
            let changed =
              if
                ca.Signal.cell_stamp = r.epoch || cb.Signal.cell_stamp = r.epoch
                || cd.Signal.cell_stamp = r.epoch
              then begin
                stats.Stats.applications <- stats.Stats.applications + 1;
                match
                  g.guard ~prev:c.Signal.cell_value ~reset:ignore ~epoch:r.epoch
                    (fun () ->
                      Event.Change
                        (f ca.Signal.cell_value cb.Signal.cell_value
                           cd.Signal.cell_value))
                with
                | Event.Change v ->
                  c.Signal.cell_value <- v;
                  c.Signal.cell_stamp <- r.epoch;
                  true
                | Event.No_change _ -> false
              end
              else false
            in
            finish ~id r ~changed
          end)
    | Signal.Lift4 (f, a, b, d, e) ->
      let c = cell s
      and ca = cell a
      and cb = cell b
      and cd = cell d
      and ce = cell e in
      let active = active_of id in
      let g = cfg.cfg_guard id in
      add_op ~node:id ~rank:0 (fun r ->
          if active r then begin
            let changed =
              if
                ca.Signal.cell_stamp = r.epoch || cb.Signal.cell_stamp = r.epoch
                || cd.Signal.cell_stamp = r.epoch
                || ce.Signal.cell_stamp = r.epoch
              then begin
                stats.Stats.applications <- stats.Stats.applications + 1;
                match
                  g.guard ~prev:c.Signal.cell_value ~reset:ignore ~epoch:r.epoch
                    (fun () ->
                      Event.Change
                        (f ca.Signal.cell_value cb.Signal.cell_value
                           cd.Signal.cell_value ce.Signal.cell_value))
                with
                | Event.Change v ->
                  c.Signal.cell_value <- v;
                  c.Signal.cell_stamp <- r.epoch;
                  true
                | Event.No_change _ -> false
              end
              else false
            in
            finish ~id r ~changed
          end)
    | Signal.Lift_list (f, ds) ->
      let c = cell s in
      let cds = List.map cell ds in
      let active = active_of id in
      let g = cfg.cfg_guard id in
      add_op ~node:id ~rank:0 (fun r ->
          if active r then begin
            let changed =
              if
                List.exists
                  (fun cd -> cd.Signal.cell_stamp = r.epoch)
                  cds
              then begin
                stats.Stats.applications <- stats.Stats.applications + 1;
                match
                  g.guard ~prev:c.Signal.cell_value ~reset:ignore ~epoch:r.epoch
                    (fun () ->
                      Event.Change
                        (f (List.map (fun cd -> cd.Signal.cell_value) cds)))
                with
                | Event.Change v ->
                  c.Signal.cell_value <- v;
                  c.Signal.cell_stamp <- r.epoch;
                  true
                | Event.No_change _ -> false
              end
              else false
            in
            finish ~id r ~changed
          end)
    | Signal.Foldp (f, src) ->
      let c = cell s and cs = cell src in
      let active = active_of id in
      let g = cfg.cfg_guard id in
      let init = Signal.default s in
      (* A [Restart] re-seeds the accumulator cell at the top of the next
         round that reaches the node — the same observable schedule as the
         pipelined deferral: downstream reads keep the last-good value
         until the restarted fold runs again. *)
      let restart = ref false in
      add_op ~node:id ~rank:0 (fun r ->
          if active r then begin
            if !restart then begin
              restart := false;
              c.Signal.cell_value <- init
            end;
            let changed =
              if cs.Signal.cell_stamp = r.epoch then begin
                stats.Stats.fold_steps <- stats.Stats.fold_steps + 1;
                match
                  g.guard ~prev:c.Signal.cell_value
                    ~reset:(fun () -> restart := true)
                    ~epoch:r.epoch
                    (fun () ->
                      Event.Change (f cs.Signal.cell_value c.Signal.cell_value))
                with
                | Event.Change v ->
                  c.Signal.cell_value <- v;
                  c.Signal.cell_stamp <- r.epoch;
                  true
                | Event.No_change _ -> false
              end
              else false
            in
            finish ~id r ~changed
          end)
    | Signal.Merge (a, b) ->
      let c = cell s and ca = cell a and cb = cell b in
      let active = active_of id in
      add_op ~node:id ~rank:0 (fun r ->
          if active r then begin
            let changed =
              if ca.Signal.cell_stamp = r.epoch then begin
                c.Signal.cell_value <- ca.Signal.cell_value;
                c.Signal.cell_stamp <- r.epoch;
                true
              end
              else if cb.Signal.cell_stamp = r.epoch then begin
                c.Signal.cell_value <- cb.Signal.cell_value;
                c.Signal.cell_stamp <- r.epoch;
                true
              end
              else false
            in
            finish ~id r ~changed
          end)
    | Signal.Drop_repeats (eq, src) ->
      let c = cell s and cs = cell src in
      let active = active_of id in
      let g = cfg.cfg_guard id in
      add_op ~node:id ~rank:0 (fun r ->
          if active r then begin
            let changed =
              if cs.Signal.cell_stamp = r.epoch then begin
                (* The user-supplied equality can raise too. *)
                match
                  g.guard ~prev:c.Signal.cell_value ~reset:ignore ~epoch:r.epoch
                    (fun () ->
                      if eq cs.Signal.cell_value c.Signal.cell_value then
                        Event.No_change c.Signal.cell_value
                      else Event.Change cs.Signal.cell_value)
                with
                | Event.Change v ->
                  c.Signal.cell_value <- v;
                  c.Signal.cell_stamp <- r.epoch;
                  true
                | Event.No_change _ -> false
              end
              else false
            in
            finish ~id r ~changed
          end)
    | Signal.Sample_on (ticks, src) ->
      let c = cell s and ct = cell ticks and cs = cell src in
      let active = active_of id in
      add_op ~node:id ~rank:0 (fun r ->
          if active r then begin
            let changed =
              if ct.Signal.cell_stamp = r.epoch then begin
                c.Signal.cell_value <- cs.Signal.cell_value;
                c.Signal.cell_stamp <- r.epoch;
                true
              end
              else false
            in
            finish ~id r ~changed
          end)
    | Signal.Keep_when (gate, src, _base) ->
      let c = cell s and cg = cell gate and cs = cell src in
      let active = active_of id in
      (* Tracks the gate across the rounds that reach this node, exactly
         like the pipelined loop's [gate_prev] parameter: emit while open,
         and on the rising edge to resynchronize with the source. *)
      let gate_prev = ref (Signal.default gate) in
      add_op ~node:id ~rank:0 (fun r ->
          if active r then begin
            let gate_now = cg.Signal.cell_value in
            let rising = gate_now && not !gate_prev in
            let changed =
              if gate_now && (cs.Signal.cell_stamp = r.epoch || rising) then begin
                c.Signal.cell_value <- cs.Signal.cell_value;
                c.Signal.cell_stamp <- r.epoch;
                true
              end
              else false
            in
            gate_prev := gate_now;
            finish ~id r ~changed
          end)
    | Signal.Composite (comp, dep) ->
      let c = cell s and cd = cell dep in
      let active = active_of id in
      let g = cfg.cfg_guard id in
      (* Fresh step per instantiation, as in the pipelined build: fused
         stateful stages never leak state across runtimes. A [Restart]
         swaps in a fresh step, re-seeding every fused stage. *)
      let step = ref (comp.Signal.comp_make ()) in
      add_op ~node:id ~rank:0 (fun r ->
          if active r then begin
            let changed =
              if cd.Signal.cell_stamp = r.epoch then begin
                stats.Stats.applications <- stats.Stats.applications + 1;
                match
                  g.guard ~prev:c.Signal.cell_value
                    ~reset:(fun () -> step := comp.Signal.comp_make ())
                    ~epoch:r.epoch
                    (fun () ->
                      match !step cd.Signal.cell_value with
                      | Some w -> Event.Change w
                      | None -> Event.No_change c.Signal.cell_value)
                with
                | Event.Change v ->
                  c.Signal.cell_value <- v;
                  c.Signal.cell_stamp <- r.epoch;
                  true
                | Event.No_change _ -> false
              end
              else false
            in
            finish ~id r ~changed
          end)
  in
  List.iter (fun (Signal.Pack s) -> build_node s) order;
  (* The display send: one real channel message per round that reaches the
     root, ordered right after the root's member op. [root_stamp] is [Some]
     exactly when that op ran, and carries the (possibly mutation-adjusted)
     wire epoch; [None] after a dropped emission skips the send, as the
     pipelined emit would have. *)
  let root_cell = cell root in
  add_op ~node:root_id ~rank:2 (fun r ->
      match !root_stamp with
      | None -> ()
      | Some epoch ->
        root_stamp := None;
        let event =
          if root_cell.Signal.cell_stamp = r.epoch then
            Event.Change root_cell.Signal.cell_value
          else Event.No_change root_cell.Signal.cell_value
        in
        Multicast.send out { Event.epoch; event });
  (* Freeze each region's ops into execution order and spawn its step
     thread: the entire pipelined cone of node wakeups, channel sends and
     context switches collapses to one wake and one array sweep. *)
  let name_of = Hashtbl.create 64 in
  List.iter
    (fun (Signal.Pack s) -> Hashtbl.replace name_of (Signal.id s) (Signal.name s))
    order;
  let rregions =
    List.map
      (fun rg ->
        let ops =
          Array.of_list
            (List.map snd
               (List.sort
                  (fun ((k1 : int * int), _) (k2, _) -> compare k1 k2)
                  acc.(rg.rg_index)))
        in
        let wake =
          Mailbox.create ?capacity:cfg.cfg_capacity
            ~name:(Printf.sprintf "wake:r%d:%s" rg.rg_rep rg.rg_name)
            ()
        in
        let n = List.length rg.rg_member_ids in
        (match cfg.cfg_tracer with
        | None -> ()
        | Some tr ->
          (* Only the region is registered — absorbed members would
             otherwise show stale zero rows in the trace summary. *)
          Trace.register_node tr ~id:rg.rg_rep
            ~name:(Printf.sprintf "region:%s(%d)" rg.rg_name n));
        Cml.spawn (fun () ->
            let rec loop () =
              let r = Mailbox.recv wake in
              (match cfg.cfg_tracer with
              | None -> ()
              | Some tr -> Trace.node_start tr ~node:rg.rg_rep ~epoch:r.epoch);
              stats.Stats.region_steps <- stats.Stats.region_steps + 1;
              for i = 0 to Array.length ops - 1 do
                (Array.unsafe_get ops i) r
              done;
              (match cfg.cfg_tracer with
              | None -> ()
              | Some tr -> Trace.node_end tr ~node:rg.rg_rep ~epoch:r.epoch);
              loop ()
            in
            loop ());
        {
          rr_region = rg;
          rr_wake = wake;
          rr_sources = Reach.union_reaching reach rg.rg_member_ids;
        })
      pl.p_regions
  in
  let i_sources =
    List.filter_map
      (fun sid ->
        Option.map (fun n -> (sid, n)) (Hashtbl.find_opt name_of sid))
      (Reach.sources reach)
  in
  { i_plan = pl; i_regions = rregions; i_out = out; i_sources }
